// Quickstart: the paper's running example (Figure 1, Examples 1.1–2.4)
// end to end — build the MVisit c-table with its missing values, bound
// it by Patientm master data through containment constraints, and ask
// the three completeness questions for the paper's queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/paperex"
	"relcomplete/internal/query"
)

func main() {
	fmt.Println("== Figure 1: the MVisit c-table (missing values x, z, w, u) ==")
	full := paperex.Full()
	for _, row := range full.T.Table("MVisit").Rows() {
		fmt.Println("  ", row)
	}
	fmt.Println("\nMaster data (Patientm — complete for Edinburgh patients born after 1990):")
	fmt.Println("  ", full.Dm.Relation("Patientm"))
	fmt.Printf("\nContainment constraints: %d (Edinburgh/year bounds + the FD NHS → name, GD)\n",
		full.CCs.Len())

	// Cheap analyses run on the full eight-attribute table.
	p, err := full.Problem(full.Q1, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	consistent, err := p.Consistent(full.T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIs Figure 1 consistent (Mod(T, Dm, V) ≠ ∅)?  %v\n", consistent)

	// The completeness judgements of Examples 1.1–2.3, on the reduced
	// four-attribute scenario (same verdicts, decider-sized input).
	fmt.Println("\n== Examples 1.1–2.3 on the reduced scenario ==")
	s := paperex.Reduced()

	ask := func(label string, q *query.Query, ci *ctable.CInstance, m core.Model) {
		prob, err := s.Problem(q, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ok, cex, err := prob.RCDPExplain(ci, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-52s %v\n", label, ok)
		if !ok && cex != nil {
			fmt.Printf("      counterexample: extend %v\n", cex.Extension)
			fmt.Printf("      new answers:    %v\n", cex.Gained)
		}
	}

	fmt.Println("\nQ1 — names of patient 915-15-335 (Edinburgh, born 2000):")
	ask("strongly complete?", s.Q1, s.T, core.Strong)

	fmt.Println("\nQ2 — names of patient 915-15-321 (not yet recorded):")
	ask("strongly complete?", s.Q2, s.T, core.Strong)
	withAnna, err := s.WithRow(ctable.Row{Terms: []query.Term{
		query.C("915-15-321"), query.C("Anna"), query.C("LON"), query.C("2000")}})
	if err != nil {
		log.Fatal(err)
	}
	ask("after adding the 915-15-321 tuple: complete?", s.Q2, withAnna, core.Strong)

	fmt.Println("\nQ4 — all Edinburgh patients born 2000, with a row missing name and year:")
	withVar, err := s.WithRow(ctable.Row{
		Terms: []query.Term{query.C("915-15-336"), query.V("x"), query.C("EDI"), query.V("z")},
		Cond:  ctable.Cond(ctable.CNeq(query.V("z"), query.C("2001"))),
	})
	if err != nil {
		log.Fatal(err)
	}
	ask("viably complete?  (some way to fill x, z works)", s.Q4, withVar, core.Viable)
	ask("weakly complete?  (certain answers already present)", s.Q4, withVar, core.Weak)
	ask("strongly complete? (every way to fill x, z works)", s.Q4, withVar, core.Strong)

	// Example 2.4: minimality.
	fmt.Println("\n== Example 2.4: minimality ==")
	probQ1, _ := s.Problem(s.Q1, core.Options{})
	minimal, err := probQ1.MINP(s.T, core.Strong)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  single John row minimal for Q1?                      %v\n", minimal)
	withJack, _ := s.WithRow(ctable.Row{Terms: []query.Term{
		query.C("915-15-358"), query.C("Jack"), query.C("LON"), query.C("2000")}})
	minimal, err = probQ1.MINP(withJack, core.Strong)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with the unrelated Jack row added: still minimal?    %v\n", minimal)
}
