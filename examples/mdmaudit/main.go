// MDM completeness audit: given an enterprise database that is
// partially closed by master data (the Master Data Management setting
// the paper models), decide for every query of a workload whether the
// data on hand can be trusted — i.e. whether the database is complete
// for the query in each of the paper's three models — and report the
// certain answers where it is not.
//
//	go run ./examples/mdmaudit
package main

import (
	"errors"
	"fmt"
	"log"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func main() {
	// Enterprise schema: Customer is bounded by master data (the
	// company knows all its customers); Order is open-world (sales
	// keep arriving).
	customer := relation.MustSchema("Customer",
		relation.Attr("cid", nil), relation.Attr("tier", nil))
	order := relation.MustSchema("Order",
		relation.Attr("cid", nil), relation.Attr("sku", nil))
	schema := relation.MustDBSchema(customer, order)

	customerM := relation.MustSchema("CustomerM",
		relation.Attr("cid", nil), relation.Attr("tier", nil))
	masterSchema := relation.MustDBSchema(customerM)
	dm := relation.NewDatabase(masterSchema)
	dm.MustInsert("CustomerM", relation.T("c1", "gold"))
	dm.MustInsert("CustomerM", relation.T("c2", "gold"))
	dm.MustInsert("CustomerM", relation.T("c3", "silver"))

	// V: every Customer row must be a master row; orders may only
	// reference master customers.
	ccs := cc.NewSet(
		cc.MustParse("cust_bound", "q(c, t) := Customer(c, t)", "p(c, t) := CustomerM(c, t)"),
		cc.MustParse("order_refs", "q(c) := Order(c, s)", "p(c) := exists t: CustomerM(c, t)"),
	)

	// The database on hand: two customers ingested (one with a missing
	// tier), one order.
	ci := ctable.NewCInstance(schema)
	ci.MustAddRow("Customer", ctable.Row{Terms: []query.Term{query.C("c1"), query.C("gold")}})
	ci.MustAddRow("Customer", ctable.Row{Terms: []query.Term{query.C("c2"), query.V("t")}})
	ci.MustAddRow("Order", ctable.Row{Terms: []query.Term{query.C("c1"), query.C("sku-7")}})

	fmt.Println("Database under audit:")
	fmt.Println("  ", ci)
	fmt.Println("Master data:")
	fmt.Println("  ", dm.Relation("CustomerM"))
	fmt.Println()

	workload := []struct {
		label string
		src   string
	}{
		{"tier of customer c1", "Q(t) := Customer('c1', t)"},
		{"all gold customers", "Q(c) := Customer(c, 'gold')"},
		{"skus ordered by c1", "Q(s) := Order('c1', s)"},
		{"gold customers with an order", "Q(c) := Customer(c, 'gold') & (exists s: Order(c, s))"},
	}

	for _, w := range workload {
		q, err := query.ParseQuery(w.src)
		if err != nil {
			log.Fatal(err)
		}
		p, err := core.NewProblem(schema, core.CalcQuery(q), dm, ccs, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("── %s\n   %s\n", w.label, w.src)
		for _, m := range []core.Model{core.Strong, core.Weak, core.Viable} {
			ok, err := p.RCDP(ci, m)
			switch {
			case errors.Is(err, core.ErrUndecidable):
				fmt.Printf("   %-7v : undecidable for this query language\n", m)
				continue
			case err != nil:
				log.Fatal(err)
			}
			trust := "DO NOT TRUST"
			if ok {
				trust = "trust"
			}
			fmt.Printf("   %-7v : complete=%-5v → %s\n", m, ok, trust)
		}
		certain, err := p.CertainAnswers(ci)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   certain answers regardless of the missing values: %v\n\n", certain)
	}

	fmt.Println("Audit summary: master-bounded queries (tiers, gold customers) are safe;")
	fmt.Println("order-derived queries are open-world and must not be treated as complete.")
}
