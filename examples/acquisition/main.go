// Counterexample-guided data acquisition: when a database is NOT
// relatively complete for a query, the RCDP decider's counterexample
// names concrete tuples whose absence the answer still depends on.
// Feeding those tuples back as acquisition targets and re-deciding
// converges to a complete database — a practical loop the paper's
// machinery enables for MDM curation teams.
//
//	go run ./examples/acquisition
package main

import (
	"fmt"
	"log"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func main() {
	// Asset registry bounded by a master inventory; the audit query
	// needs the full list of assets at the Edinburgh site.
	asset := relation.MustSchema("Asset",
		relation.Attr("id", nil), relation.Attr("site", nil))
	schema := relation.MustDBSchema(asset)
	assetM := relation.MustSchema("AssetM",
		relation.Attr("id", nil), relation.Attr("site", nil))
	masterSchema := relation.MustDBSchema(assetM)
	dm := relation.NewDatabase(masterSchema)
	for _, t := range []relation.Tuple{
		{"a1", "EDI"}, {"a2", "EDI"}, {"a3", "EDI"}, {"a4", "LON"}, {"a5", "LON"},
	} {
		dm.MustInsert("AssetM", t)
	}
	ccs := cc.NewSet(cc.MustParse("asset_bound",
		"q(i, s) := Asset(i, s)", "p(i, s) := AssetM(i, s)"))
	q := query.MustParseQuery("Q(i) := Asset(i, 'EDI')")
	p, err := core.NewProblem(schema, core.CalcQuery(q), dm, ccs, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The registry currently knows one Edinburgh asset.
	db := relation.NewDatabase(schema)
	db.MustInsert("Asset", relation.T("a1", "EDI"))
	fmt.Println("audit query:   ", q)
	fmt.Println("initial data:  ", db)
	fmt.Println()

	for round := 1; ; round++ {
		ok, cex, err := p.RCDPExplain(ctable.FromDatabase(db), core.Strong)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("round %d: COMPLETE — the answer %s can be trusted\n",
				round, mustAnswers(p, db))
			break
		}
		// The counterexample's extension names the tuples whose absence
		// still matters: acquire exactly those.
		fmt.Printf("round %d: incomplete — answers could still gain %v\n", round, cex.Gained)
		acquired := 0
		for _, loc := range cex.Extension.AllTuples() {
			if !db.Relation(loc.Rel).Contains(loc.Tuple) {
				fmt.Printf("         acquiring %s%v\n", loc.Rel, loc.Tuple)
				db.MustInsert(loc.Rel, loc.Tuple)
				acquired++
			}
		}
		if acquired == 0 {
			log.Fatal("no progress — counterexample added nothing")
		}
	}
	fmt.Println("\nfinal data:    ", db)
	fmt.Println("(only Edinburgh assets were acquired: the London rows never mattered)")
}

func mustAnswers(p *core.Problem, db *relation.Database) string {
	ans, err := p.CertainAnswers(ctable.FromDatabase(db))
	if err != nil {
		log.Fatal(err)
	}
	return fmt.Sprint(ans)
}
