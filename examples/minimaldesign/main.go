// Minimal database design: the paper's MINP motivation — a developer
// wants to know the least data to collect so a query workload finds
// complete answers. Starting from the master-saturated instance, this
// example greedily removes tuples while preserving strong completeness
// for every query of the workload, then certifies the result with the
// MINP decider per query.
//
//	go run ./examples/minimaldesign
package main

import (
	"fmt"
	"log"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func main() {
	// Reference data: a device registry bounded by master data.
	device := relation.MustSchema("Device",
		relation.Attr("id", nil), relation.Attr("model", nil))
	schema := relation.MustDBSchema(device)
	deviceM := relation.MustSchema("DeviceM",
		relation.Attr("id", nil), relation.Attr("model", nil))
	masterSchema := relation.MustDBSchema(deviceM)
	dm := relation.NewDatabase(masterSchema)
	for _, t := range []relation.Tuple{
		{"d1", "alpha"}, {"d2", "alpha"}, {"d3", "beta"}, {"d4", "gamma"},
	} {
		dm.MustInsert("DeviceM", t)
	}
	ccs := cc.NewSet(cc.MustParse("dev_bound",
		"q(i, m) := Device(i, m)", "p(i, m) := DeviceM(i, m)"))

	// The workload the database must answer completely.
	workload := []string{
		"Q(i) := Device(i, 'alpha')", // which devices are alphas?
		"Q(m) := Device('d3', m)",    // what model is d3?
	}
	problems := make([]*core.Problem, len(workload))
	for i, src := range workload {
		q, err := query.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		problems[i], err = core.NewProblem(schema, core.CalcQuery(q), dm, ccs, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
	}

	completeForAll := func(db *relation.Database) (bool, error) {
		for _, p := range problems {
			ok, _, err := p.GroundComplete(db)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}

	// Start from the only guaranteed-complete instance: the master
	// image itself (saturating the CC bound).
	db := relation.NewDatabase(schema)
	for _, t := range dm.Relation("DeviceM").Tuples() {
		db.MustInsert("Device", t)
	}
	ok, err := completeForAll(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master-saturated instance (%d tuples) complete for the workload: %v\n", db.Size(), ok)

	// Greedy minimisation: drop any tuple whose removal preserves
	// completeness for every workload query.
	fmt.Println("\ngreedy minimisation:")
	for changed := true; changed; {
		changed = false
		for _, loc := range db.AllTuples() {
			smaller := db.WithoutTuple(loc.Rel, loc.Tuple)
			ok, err := completeForAll(smaller)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				fmt.Printf("  − %s%v is excess data\n", loc.Rel, loc.Tuple)
				db = smaller
				changed = true
				break
			}
		}
	}
	fmt.Printf("\nminimal design (%d tuples): %v\n", db.Size(), db)

	// Certify per query with the MINP decider on the ground result.
	fmt.Println("\ncertification:")
	ci := ctable.FromDatabase(db)
	for i, p := range problems {
		complete, err := p.RCDP(ci, core.Strong)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s complete=%v", workload[i], complete)
		minimal, err := p.MINP(ci, core.Strong)
		if err != nil {
			log.Fatal(err)
		}
		// Per-query minimality can be false even though the set is
		// minimal for the WORKLOAD: another query may need the tuple.
		fmt.Printf("  minimal-for-this-query=%v\n", minimal)
	}
	fmt.Println("\n(the design is minimal for the workload as a whole: removing any")
	fmt.Println(" tuple breaks completeness of at least one query)")
}
