package relcomplete_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - lazy disjunct enumeration versus materialising the full DNF of an
//     ∃FO+ query (the Theorem 4.1 algorithms depend on avoiding the
//     exponential unfolding);
//   - join-based evaluation of the positive fragment versus active-
//     domain model checking (the two evaluator paths in internal/eval);
//   - the single-tuple candidate pre-filter that turns the Lemma 4.2
//     bound check from Adom^|vars| valuations into lattice-pruned
//     backtracking (measured through its cache: cold vs warm).

import (
	"fmt"
	"strings"
	"testing"

	"relcomplete/internal/core"
	"relcomplete/internal/eval"
	"relcomplete/internal/paperex"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// nestedDisjunctionQuery builds Q(x) := (A(x)|B(x)) & ... & (A(x)|B(x))
// with n binary disjunctions: 2^n disjuncts in DNF.
func nestedDisjunctionQuery(n int) *query.Query {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = "(A(x) | B(x))"
	}
	return query.MustParseQuery("Q(x) := " + strings.Join(parts, " & "))
}

func BenchmarkAblationDisjuncts(b *testing.B) {
	for _, n := range []int{6, 10, 14} {
		q := nestedDisjunctionQuery(n)
		b.Run(fmt.Sprintf("materialise/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if ds := query.Disjuncts(q); len(ds) != 1<<uint(n) {
					b.Fatal("unexpected disjunct count")
				}
			}
		})
		b.Run(fmt.Sprintf("iterate_first/n=%d", n), func(b *testing.B) {
			// The deciders stop at the first counterexample-producing
			// disjunct; lazy enumeration pays only for what it uses.
			for i := 0; i < b.N; i++ {
				it := query.NewDisjunctIterator(q)
				if it.Next() == nil {
					b.Fatal("no disjunct")
				}
			}
		})
	}
}

func BenchmarkAblationEvaluators(b *testing.B) {
	// Same positive query across the three evaluator tiers: the compiled
	// indexed-join plans (the default), the original nested-loop
	// map-binding evaluator (Options.NaiveJoin), and the body forced
	// through the FO model checker (wrapped in a double negation:
	// semantically identical, classified FO). The indexed run compiles
	// once, as core.Problem does for the decision searches.
	for _, n := range []int{12, 48} {
		schema := relation.MustDBSchema(
			relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		)
		db := relation.NewDatabase(schema)
		for i := 0; i < n; i++ {
			db.MustInsert("R", relation.T(
				relation.Value(fmt.Sprintf("n%d", i)),
				relation.Value(fmt.Sprintf("n%d", (i+1)%n))))
		}
		positive := query.MustParseQuery("Q(x, z) := R(x, y) & R(y, z)")
		fo := query.MustQuery("Q", positive.Head, query.Neg(query.Neg(positive.Body)))

		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			plan := eval.MustCompile(positive)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := plan.Answers(db, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive_join/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Answers(db, positive, eval.Options{NaiveJoin: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fo_model_checking/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eval.Answers(db, fo, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationCandidateCache(b *testing.B) {
	// The bounded check's single-tuple candidate lattice is cached per
	// problem: the first decider call pays for |Adom|^arity closure
	// tests, later calls reuse them. Cold constructs a fresh Problem
	// each iteration; warm reuses one.
	s := paperex.Reduced()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := s.Problem(s.Q1, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := p.RCDP(s.T, core.Strong); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		p, err := s.Problem(s.Q1, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.RCDP(s.T, core.Strong); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RCDP(s.T, core.Strong); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationFPEvaluation(b *testing.B) {
	// Semi-naive versus naive inflational fixpoint on a long chain,
	// where naive re-derives the whole closure every round.
	for _, n := range []int{16, 32, 64} {
		schema := relation.MustDBSchema(relation.MustSchema("edge",
			relation.Attr("A", nil), relation.Attr("B", nil)))
		db := relation.NewDatabase(schema)
		for i := 0; i < n; i++ {
			db.MustInsert("edge", relation.T(
				relation.Value(fmt.Sprintf("n%d", i)),
				relation.Value(fmt.Sprintf("n%d", i+1))))
		}
		prog := query.MustParseProgram("reach", schema, `
			reach(x, y) :- edge(x, y).
			reach(x, z) :- reach(x, y), edge(y, z).
			output reach.
		`)
		b.Run(fmt.Sprintf("seminaive/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.FPAnswers(db, prog, eval.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive/chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eval.FPAnswers(db, prog, eval.Options{NaiveFP: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationTypedDomains(b *testing.B) {
	// Typed compatibility-class domains versus the flat Adom on the
	// reduced patient scenario's weak-model check.
	s := paperex.Reduced()
	run := func(b *testing.B, opts core.Options) {
		p, err := core.NewProblem(s.Data, core.CalcQuery(s.Q4), s.Dm, s.CCs, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RCDP(s.T, core.Weak); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("typed", func(b *testing.B) { run(b, core.Options{}) })
	b.Run("untyped", func(b *testing.B) { run(b, core.Options{NoTypedDomains: true}) })
}
