package search

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"relcomplete/internal/obs"
)

// intRange yields 0..n-1.
func intRange(n int) Generator[int] {
	return func(yield func(int) bool) {
		for i := 0; i < n; i++ {
			if !yield(i) {
				return
			}
		}
	}
}

// jitter sleeps a few microseconds to shuffle goroutine scheduling.
// The top-level rand functions are safe for concurrent probes.
func jitter() {
	time.Sleep(time.Duration(rand.Intn(50)) * time.Microsecond)
}

func TestFirstHitMatchesSequentialOnRandomInstances(t *testing.T) {
	// The workers=1 path IS the sequential loop; every other worker
	// count must return bit-identical results on randomized instances.
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(80)
		hits := map[int]bool{}
		for i := 0; i < n; i++ {
			if r.Intn(6) == 0 {
				hits[i] = true
			}
		}
		probe := func(ctx context.Context, idx int, item int) (string, bool, error) {
			return fmt.Sprintf("r%d", item), hits[item], nil
		}
		seqHit, seqFound, seqErr := FirstHit(context.Background(), 1, nil, intRange(n), probe)
		if seqErr != nil {
			t.Fatal(seqErr)
		}
		for _, workers := range []int{2, 4, 8} {
			got, found, err := FirstHit(context.Background(), workers, nil, intRange(n), probe)
			if err != nil {
				t.Fatal(err)
			}
			if found != seqFound || got != seqHit {
				t.Fatalf("trial %d workers=%d: got (%v, %v), sequential (%v, %v)",
					trial, workers, got, found, seqHit, seqFound)
			}
		}
	}
}

func TestFirstHitDeterministicUnderScheduling(t *testing.T) {
	// Several hits at different indices, probes with randomized delays:
	// the lowest-index hit must win on every run.
	hits := map[int]bool{7: true, 23: true, 31: true, 58: true}
	for run := 0; run < 25; run++ {
		var probed atomic.Int64
		probe := func(ctx context.Context, idx int, item int) (int, bool, error) {
			probed.Add(1)
			jitter()
			return item * 10, hits[item], nil
		}
		hit, found, err := FirstHit(context.Background(), 8, nil, intRange(64), probe)
		if err != nil || !found {
			t.Fatal(found, err)
		}
		if hit.Index != 7 || hit.Value != 70 {
			t.Fatalf("run %d: got %+v, want index 7 value 70", run, hit)
		}
	}
}

func TestFirstHitStopsGeneratorOnHit(t *testing.T) {
	// An unbounded generator must not be exhausted: the first hit has
	// to cancel generation. The generator's own return proves the
	// engine told it to stop (FirstHit joins all goroutines, so genDone
	// is closed by the time it returns).
	for _, workers := range []int{1, 4} {
		genDone := make(chan struct{})
		var dispatched atomic.Int64
		gen := Generator[int](func(yield func(int) bool) {
			defer close(genDone)
			for i := 0; ; i++ {
				dispatched.Add(1)
				if !yield(i) {
					return
				}
			}
		})
		probe := func(ctx context.Context, idx int, item int) (struct{}, bool, error) {
			return struct{}{}, item == 10, nil
		}
		hit, found, err := FirstHit(context.Background(), workers, nil, gen, probe)
		if err != nil || !found || hit.Index != 10 {
			t.Fatalf("workers=%d: %+v %v %v", workers, hit, found, err)
		}
		select {
		case <-genDone:
		default:
			t.Fatalf("workers=%d: generator still running after FirstHit returned", workers)
		}
	}
}

func TestFirstHitPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		probe := func(ctx context.Context, idx int, item int) (int, bool, error) {
			if item == 13 {
				panic("boom on 13")
			}
			return 0, false, nil
		}
		_, found, err := FirstHit(context.Background(), workers, nil, intRange(40), probe)
		if found {
			t.Fatalf("workers=%d: unexpected hit", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want PanicError, got %v", workers, err)
		}
		if pe.Index != 13 {
			t.Fatalf("workers=%d: panic index %d, want 13", workers, pe.Index)
		}
	}
}

func TestFirstHitLowestIndexOutcomeWins(t *testing.T) {
	sentinel := errors.New("probe failed")
	cases := []struct {
		name     string
		errAt    int
		hitAt    int
		wantHit  bool
		wantErrs bool
	}{
		{"hit_before_error", 50, 3, true, false},
		{"error_before_hit", 2, 40, false, true},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 6} {
			probe := func(ctx context.Context, idx int, item int) (int, bool, error) {
				if item == tc.errAt {
					return 0, false, sentinel
				}
				return item, item == tc.hitAt, nil
			}
			hit, found, err := FirstHit(context.Background(), workers, nil, intRange(64), probe)
			if tc.wantHit {
				if !found || hit.Index != tc.hitAt || err != nil {
					t.Fatalf("%s workers=%d: %+v %v %v", tc.name, workers, hit, found, err)
				}
			}
			if tc.wantErrs {
				if found || !errors.Is(err, sentinel) {
					t.Fatalf("%s workers=%d: %+v %v %v", tc.name, workers, hit, found, err)
				}
			}
		}
	}
}

func TestFirstHitContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var probed atomic.Int64
		gen := Generator[int](func(yield func(int) bool) {
			for i := 0; ; i++ {
				if !yield(i) {
					return
				}
			}
		})
		probe := func(ctx context.Context, idx int, item int) (struct{}, bool, error) {
			if probed.Add(1) == 20 {
				cancel()
			}
			return struct{}{}, false, nil
		}
		_, found, err := FirstHit(ctx, workers, nil, gen, probe)
		cancel()
		if found || !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: found=%v err=%v, want context.Canceled", workers, found, err)
		}
	}
}

func TestFirstHitNoCandidates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, found, err := FirstHit(context.Background(), workers, nil, intRange(0),
			func(ctx context.Context, idx int, item int) (int, bool, error) { return 0, true, nil })
		if found || err != nil {
			t.Fatalf("workers=%d: %v %v", workers, found, err)
		}
	}
}

func TestForEachOrderedDeliversInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		var got []int
		stopped, err := ForEachOrdered(context.Background(), workers, nil, intRange(100),
			func(ctx context.Context, idx int, item int) (int, error) {
				jitter()
				return item * 2, nil
			},
			func(idx int, v int) (bool, error) {
				got = append(got, v)
				return true, nil
			})
		if err != nil || stopped {
			t.Fatalf("workers=%d: stopped=%v err=%v", workers, stopped, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("workers=%d: out of order at %d: %d", workers, i, v)
			}
		}
	}
}

func TestForEachOrderedEarlyStopSeesSequentialPrefix(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var got []int
		stopped, err := ForEachOrdered(context.Background(), workers, nil, intRange(1000),
			func(ctx context.Context, idx int, item int) (int, error) { return item, nil },
			func(idx int, v int) (bool, error) {
				got = append(got, v)
				return v < 5, nil
			})
		if err != nil || !stopped {
			t.Fatalf("workers=%d: stopped=%v err=%v", workers, stopped, err)
		}
		want := []int{0, 1, 2, 3, 4, 5}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: consumed %v, want %v", workers, got, want)
		}
	}
}

func TestForEachOrderedErrorAtIndexAfterCleanPrefix(t *testing.T) {
	sentinel := errors.New("probe failed")
	for _, workers := range []int{1, 4} {
		consumed := 0
		stopped, err := ForEachOrdered(context.Background(), workers, nil, intRange(64),
			func(ctx context.Context, idx int, item int) (int, error) {
				if item == 9 {
					return 0, sentinel
				}
				return item, nil
			},
			func(idx int, v int) (bool, error) {
				consumed++
				return true, nil
			})
		if stopped || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: stopped=%v err=%v", workers, stopped, err)
		}
		if consumed != 9 {
			t.Fatalf("workers=%d: consumed %d before the error, want 9", workers, consumed)
		}
	}
}

func TestForEachOrderedPanicCaptured(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := ForEachOrdered(context.Background(), workers, nil, intRange(32),
			func(ctx context.Context, idx int, item int) (int, error) {
				if item == 4 {
					panic("reduce boom")
				}
				return item, nil
			},
			func(idx int, v int) (bool, error) { return true, nil })
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 4 {
			t.Fatalf("workers=%d: want PanicError at 4, got %v", workers, err)
		}
	}
}

func TestFirstHitStressRace(t *testing.T) {
	// Exercised with -race in CI: many concurrent searches over shared
	// read-only state, each must return the canonical lowest hit.
	gen := intRange(200)
	probe := func(ctx context.Context, idx int, item int) (int, bool, error) {
		return item, item%37 == 36, nil // lowest hit at 36
	}
	for i := 0; i < 30; i++ {
		hit, found, err := FirstHit(context.Background(), 8, nil, gen, probe)
		if err != nil || !found || hit.Index != 36 {
			t.Fatalf("iteration %d: %+v %v %v", i, hit, found, err)
		}
	}
}

func TestFirstHitMetrics(t *testing.T) {
	for _, workers := range []int{1, 8} {
		m := obs.NewMetrics()
		hit, found, err := FirstHit(context.Background(), workers, m, intRange(64),
			func(ctx context.Context, idx int, item int) (int, bool, error) {
				return item, item == 20, nil
			})
		if err != nil || !found || hit.Index != 20 {
			t.Fatalf("workers=%d: hit=%v found=%v err=%v", workers, hit, found, err)
		}
		// At least candidates 0..20 were probed; the engine may probe a
		// few more speculatively before the stop signal lands.
		if got := m.Get(obs.SearchItems); got < 21 || got > 64 {
			t.Errorf("workers=%d: SearchItems = %d, want in [21, 64]", workers, got)
		}
		if workers > 1 {
			if got := m.Get(obs.SearchCancellations); got != 1 {
				t.Errorf("workers=%d: SearchCancellations = %d, want 1", workers, got)
			}
			if got := m.Get(obs.SearchCancelNs); got <= 0 {
				t.Errorf("workers=%d: SearchCancelNs = %d, want > 0", workers, got)
			}
		}
	}
}

func TestForEachOrderedMetrics(t *testing.T) {
	m := obs.NewMetrics()
	stopped, err := ForEachOrdered(context.Background(), 4, m, intRange(100),
		func(ctx context.Context, idx int, item int) (int, error) { return item, nil },
		func(idx int, r int) (bool, error) { return r < 10, nil })
	if err != nil || !stopped {
		t.Fatalf("stopped=%v err=%v", stopped, err)
	}
	if got := m.Get(obs.SearchItems); got < 11 {
		t.Errorf("SearchItems = %d, want >= 11", got)
	}
	if got := m.Get(obs.SearchCancellations); got != 1 {
		t.Errorf("SearchCancellations = %d, want 1", got)
	}
}

func TestFirstHitGeneratorPanicContained(t *testing.T) {
	// A generator that crashes mid-enumeration must surface as a
	// PanicError with Index -1 after the pool drains — never a deadlock
	// or an unrecovered panic on an engine goroutine.
	for _, workers := range []int{1, 4, 8} {
		gen := Generator[int](func(yield func(int) bool) {
			for i := 0; i < 5; i++ {
				if !yield(i) {
					return
				}
			}
			panic("generator exploded")
		})
		probe := func(ctx context.Context, idx int, item int) (int, bool, error) {
			jitter()
			return item, false, nil
		}
		_, found, err := FirstHit(context.Background(), workers, nil, gen, probe)
		if found {
			t.Fatalf("workers=%d: unexpected hit", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want PanicError, got %v", workers, err)
		}
		if pe.Index != -1 {
			t.Fatalf("workers=%d: panic index %d, want -1", workers, pe.Index)
		}
	}
}

func TestFirstHitHitBeatsGeneratorPanic(t *testing.T) {
	// A decisive hit found before the generator crashed wins: the
	// sequential loop would have exited before reaching the crash.
	for _, workers := range []int{1, 4} {
		gen := Generator[int](func(yield func(int) bool) {
			for i := 0; i < 3; i++ {
				if !yield(i) {
					return
				}
			}
			panic("too far")
		})
		probe := func(ctx context.Context, idx int, item int) (int, bool, error) {
			return item, item == 1, nil
		}
		hit, found, err := FirstHit(context.Background(), workers, nil, gen, probe)
		if err != nil || !found || hit.Index != 1 {
			t.Fatalf("workers=%d: %+v %v %v", workers, hit, found, err)
		}
	}
}

func TestForEachOrderedGeneratorPanicContained(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		gen := Generator[int](func(yield func(int) bool) {
			for i := 0; i < 4; i++ {
				if !yield(i) {
					return
				}
			}
			panic("enumeration bug")
		})
		probe := func(ctx context.Context, idx int, item int) (int, error) {
			jitter()
			return item, nil
		}
		var got []int
		stopped, err := ForEachOrdered(context.Background(), workers, nil, gen, probe,
			func(idx int, r int) (bool, error) {
				got = append(got, r)
				return true, nil
			})
		if stopped {
			t.Fatalf("workers=%d: unexpected stop", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != -1 {
			t.Fatalf("workers=%d: want generator PanicError, got %v", workers, err)
		}
		// Everything dispatched before the crash is still delivered in
		// order (the prefix semantics hold even on a crashing generator).
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: out-of-order delivery %v", workers, got)
			}
		}
	}
}

func TestForEachOrderedConsumerStopBeatsGeneratorPanic(t *testing.T) {
	// The consumer stopping is the sequential loop's early exit; a
	// generator crash beyond the stop point is unobservable.
	for _, workers := range []int{1, 4} {
		gen := Generator[int](func(yield func(int) bool) {
			for i := 0; i < 3; i++ {
				if !yield(i) {
					return
				}
			}
			panic("past the stop")
		})
		probe := func(ctx context.Context, idx int, item int) (int, error) { return item, nil }
		stopped, err := ForEachOrdered(context.Background(), workers, nil, gen, probe,
			func(idx int, r int) (bool, error) { return idx < 1, nil })
		if err != nil || !stopped {
			t.Fatalf("workers=%d: stopped=%v err=%v, want clean stop", workers, stopped, err)
		}
	}
}
