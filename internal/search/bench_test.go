package search

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// BenchmarkFirstHitLatencyBound models probes dominated by waiting
// (I/O, lock contention): fan-out overlaps the waits, so the speedup
// shows even on a single CPU.
func BenchmarkFirstHitLatencyBound(b *testing.B) {
	const (
		candidates = 64
		hitAt      = 63
		probeDelay = 200 * time.Microsecond
	)
	probe := func(ctx context.Context, idx int, item int) (int, bool, error) {
		time.Sleep(probeDelay)
		return item, item == hitAt, nil
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				hit, found, err := FirstHit(context.Background(), workers, nil, intRange(candidates), probe)
				if err != nil || !found || hit.Index != hitAt {
					b.Fatal(hit, found, err)
				}
			}
		})
	}
}

// BenchmarkFirstHitCPUBound exercises compute-heavy probes; the
// speedup here scales with available cores.
func BenchmarkFirstHitCPUBound(b *testing.B) {
	const (
		candidates = 64
		hitAt      = 63
	)
	probe := func(ctx context.Context, idx int, item int) (uint64, bool, error) {
		h := uint64(item) + 0x9e3779b97f4a7c15
		for i := 0; i < 20000; i++ {
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
		}
		return h, item == hitAt, nil
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, found, err := FirstHit(context.Background(), workers, nil, intRange(candidates), probe)
				if err != nil || !found {
					b.Fatal(found, err)
				}
			}
		})
	}
}

// BenchmarkForEachOrderedLatencyBound measures the ordered fan-out
// pipeline against the inline sequential loop.
func BenchmarkForEachOrderedLatencyBound(b *testing.B) {
	const (
		candidates = 64
		probeDelay = 200 * time.Microsecond
	)
	probe := func(ctx context.Context, idx int, item int) (int, error) {
		time.Sleep(probeDelay)
		return item, nil
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sum := 0
				stopped, err := ForEachOrdered(context.Background(), workers, nil, intRange(candidates), probe,
					func(idx int, v int) (bool, error) { sum += v; return true, nil })
				if err != nil || stopped || sum != candidates*(candidates-1)/2 {
					b.Fatal(stopped, err, sum)
				}
			}
		})
	}
}
