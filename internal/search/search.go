// Package search provides the parallel candidate-search engine the
// deciders are built on. The paper's procedures are small-model
// searches: they enumerate bounded candidate instances, valuations and
// extensions until a counterexample or witness is found, and the
// candidates are independent of one another — an embarrassingly
// parallel workload. This package fans those enumerations out over a
// bounded worker pool while keeping every observable result exactly
// what the sequential enumeration would produce.
//
// The determinism contract, shared by both entry points:
//
//   - Candidates are numbered by generation order. FirstHit returns the
//     outcome of the lowest-index decisive candidate (a hit or a probe
//     error), regardless of goroutine scheduling: every candidate with
//     a smaller index is fully probed before a decisive outcome is
//     accepted, so repeated runs — and runs at different worker counts
//     — return bit-identical results.
//   - ForEachOrdered probes candidates concurrently but delivers the
//     results to the consumer strictly in generation order, so stateful
//     reductions (certain-answer intersections) observe the sequential
//     order.
//   - workers <= 1 short-circuits to a plain inline loop: generation,
//     probing and early exit interleave exactly as a hand-written
//     sequential search would, with no goroutines at all.
//
// Probe panics are captured and surface as a *PanicError carrying the
// candidate index and stack; with several workers in flight, the
// engine still reports the lowest-index failure only, exactly as the
// sequential loop would have. Generator panics are contained too: they
// surface as a *PanicError with Index -1 after every dispatched
// candidate has been probed and drained, so a crashing enumeration
// never leaks goroutines or deadlocks the pool. A decisive outcome
// found before the generator crashed still wins — the sequential loop
// would have exited before reaching the crash point.
package search

import (
	"context"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"

	"relcomplete/internal/obs"
)

// Generator enumerates candidates in a canonical order, calling yield
// for each; it must stop when yield returns false. Generators run on a
// single goroutine: they may close over mutable state (deduplication
// sets, budgets) without synchronisation, but must not touch state the
// probes mutate.
type Generator[T any] func(yield func(T) bool)

// Probe evaluates one candidate. hit marks the candidate decisive (the
// search stops dispatching new work); a non-nil error is decisive too.
// Probes run concurrently with one another and with the generator: they
// must only use shared state that is safe for concurrent use.
type Probe[T, R any] func(ctx context.Context, idx int, item T) (R, bool, error)

// Hit is a decisive probe result and the candidate index it came from.
type Hit[R any] struct {
	Index int
	Value R
}

// PanicError wraps a panic recovered from a probe or from the
// generator. Index is the candidate the probe was evaluating, or -1
// when the generator itself panicked (the fault then lies in candidate
// enumeration, not in any particular candidate).
type PanicError struct {
	Index     int
	Recovered any
	Stack     []byte
}

func (e *PanicError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("search: generator panicked: %v\n%s", e.Recovered, e.Stack)
	}
	return fmt.Sprintf("search: probe panicked on candidate %d: %v\n%s", e.Index, e.Recovered, e.Stack)
}

// outcome is one probed candidate's result.
type outcome[R any] struct {
	idx int
	val R
	hit bool
	err error
}

func (o outcome[R]) decisive() bool { return o.hit || o.err != nil }

// runProbe invokes the probe with panic capture.
func runProbe[T, R any](ctx context.Context, probe Probe[T, R], idx int, item T) (o outcome[R]) {
	o.idx = idx
	defer func() {
		if r := recover(); r != nil {
			o.hit = false
			o.err = &PanicError{Index: idx, Recovered: r, Stack: debug.Stack()}
		}
	}()
	o.val, o.hit, o.err = probe(ctx, idx, item)
	return o
}

// runGen invokes the generator with panic capture, mirroring runProbe.
func runGen(gen func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: -1, Recovered: r, Stack: debug.Stack()}
		}
	}()
	gen()
	return nil
}

// FirstHit probes the generator's candidates on up to workers
// goroutines and returns the lowest-index decisive outcome — the same
// one a sequential loop with early exit would return. found is false
// when no candidate hit. A decisive candidate cancels further
// generation; candidates already dispatched are probed to completion
// (so a lower-index hit still in flight can win), and all goroutines
// have exited before FirstHit returns.
//
// When ctx is cancelled before a decisive outcome, ctx.Err() is
// returned. A probe error wins over a later (higher-index) hit and
// loses to an earlier one, exactly as in the sequential loop.
//
// m (nil allowed) receives engine metrics: items probed, early-stop
// signals, decisive-outcome races resolved by the lowest-index rule
// and the latency between the stop signal and full worker drain.
func FirstHit[T, R any](ctx context.Context, workers int, m *obs.Metrics, gen Generator[T], probe Probe[T, R]) (Hit[R], bool, error) {
	if sp := obs.SpanFromContext(ctx).StartChild("search.first_hit"); sp != nil {
		sp.SetAttr("workers", workers)
		ctx = obs.ContextWithSpan(ctx, sp)
		defer sp.End()
	}
	var zero Hit[R]
	if workers <= 1 {
		best := outcome[R]{idx: -1}
		idx := 0
		genErr := runGen(func() {
			gen(func(item T) bool {
				if ctx.Err() != nil {
					best = outcome[R]{idx: idx, err: ctx.Err()}
					return false
				}
				o := runProbe(ctx, probe, idx, item)
				idx++
				if o.decisive() {
					best = o
					return false
				}
				return true
			})
		})
		m.Add(obs.SearchItems, int64(idx))
		if best.idx < 0 {
			if genErr != nil {
				return zero, false, genErr
			}
			return zero, false, nil
		}
		if best.err != nil {
			return zero, false, best.err
		}
		m.Observe(obs.SearchItemsPerHit, int64(idx))
		return Hit[R]{Index: best.idx, Value: best.val}, true, nil
	}

	type task struct {
		idx  int
		item T
	}
	dispatch := make(chan task)
	results := make(chan outcome[R])
	stop := make(chan struct{})
	var stopOnce sync.Once
	var haltedAt time.Time
	halt := func() {
		stopOnce.Do(func() {
			haltedAt = time.Now()
			close(stop)
			m.Inc(obs.SearchCancellations)
		})
	}

	// Dispatcher: runs the generator, numbering candidates. It stops
	// when a decisive outcome halts the search or ctx is cancelled;
	// candidates already handed to a worker are always probed. A
	// generator panic is captured into genErr, which is safe to read
	// once results has closed: the assignment happens before the
	// deferred close(dispatch), which happens before the workers exit,
	// which happens before close(results).
	var genErr error
	go func() {
		defer close(dispatch)
		idx := 0
		genErr = runGen(func() {
			gen(func(item T) bool {
				select {
				case <-stop:
					return false
				case <-ctx.Done():
					return false
				case dispatch <- task{idx: idx, item: item}:
					idx++
					return true
				}
			})
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Adopt the caller's pprof labels (problem/decider/trace_id
			// under a served decide), so CPU profiles attribute worker
			// time to the tenant that spawned the search.
			pprof.SetGoroutineLabels(ctx)
			for t := range dispatch {
				o := runProbe(ctx, probe, t.idx, t.item)
				if o.decisive() {
					halt()
				}
				results <- o
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Collect every probed outcome and keep the lowest-index decisive
	// one. All candidates below any dispatched index were dispatched
	// (dispatch is in order) and all dispatched candidates are probed,
	// so the minimum over decisive outcomes equals the sequential
	// first-exit point.
	best := outcome[R]{idx: -1}
	probed := int64(0)
	races := int64(0)
	for o := range results {
		probed++
		if o.decisive() {
			if best.idx >= 0 {
				// Two decisive outcomes raced; the lowest index wins.
				races++
			}
			if best.idx < 0 || o.idx < best.idx {
				best = o
			}
		}
	}
	m.Add(obs.SearchItems, probed)
	m.Add(obs.SearchRacesResolved, races)
	if !haltedAt.IsZero() {
		// results is closed, so every worker has drained.
		m.Add(obs.SearchCancelNs, time.Since(haltedAt).Nanoseconds())
	}
	if best.idx < 0 {
		if genErr != nil {
			return zero, false, genErr
		}
		if err := ctx.Err(); err != nil {
			return zero, false, err
		}
		return zero, false, nil
	}
	if best.err != nil {
		return zero, false, best.err
	}
	m.Observe(obs.SearchItemsPerHit, probed)
	return Hit[R]{Index: best.idx, Value: best.val}, true, nil
}

// ReduceProbe evaluates one candidate for ForEachOrdered; unlike Probe
// it carries no hit flag — stopping is the consumer's decision.
type ReduceProbe[T, R any] func(ctx context.Context, idx int, item T) (R, error)

// Consumer receives probe results strictly in generation order; it
// returns false to stop the search (candidates beyond the current
// index may already have been probed speculatively, but their results
// are discarded, so the consumer observes a strict sequential prefix).
type Consumer[R any] func(idx int, r R) (bool, error)

// ForEachOrdered probes the generator's candidates on up to workers
// goroutines and feeds the results to consume in generation order:
// the consumer sees exactly the prefix a sequential probe-then-consume
// loop would see, in the same order. The error returned is the
// sequentially-first failure: a probe error for candidate k is
// reported only after candidates 0..k-1 were consumed without
// stopping. stopped reports whether consume ended the search (as
// opposed to the generator running dry), so callers can distinguish
// "early verdict" from "exhausted" — the sequential loop's two exits.
func ForEachOrdered[T, R any](ctx context.Context, workers int, m *obs.Metrics, gen Generator[T], probe ReduceProbe[T, R], consume Consumer[R]) (stopped bool, err error) {
	if sp := obs.SpanFromContext(ctx).StartChild("search.for_each"); sp != nil {
		sp.SetAttr("workers", workers)
		ctx = obs.ContextWithSpan(ctx, sp)
		defer sp.End()
	}
	if workers <= 1 {
		idx := 0
		var loopErr error
		stopped := false
		genErr := runGen(func() {
			gen(func(item T) bool {
				if ctx.Err() != nil {
					loopErr = ctx.Err()
					return false
				}
				o := runProbe(ctx, func(ctx context.Context, i int, it T) (R, bool, error) {
					r, err := probe(ctx, i, it)
					return r, false, err
				}, idx, item)
				if o.err != nil {
					loopErr = o.err
					return false
				}
				cont, err := consume(idx, o.val)
				idx++
				if err != nil {
					loopErr = err
					return false
				}
				if !cont {
					stopped = true
					return false
				}
				return true
			})
		})
		m.Add(obs.SearchItems, int64(idx))
		if loopErr == nil && !stopped && genErr != nil {
			loopErr = genErr
		}
		return stopped, loopErr
	}

	type task struct {
		idx  int
		item T
	}
	// The window bounds how far probing may run ahead of consumption,
	// so the pending reorder buffer stays small.
	window := 4 * workers
	tokens := make(chan struct{}, window)
	dispatch := make(chan task)
	results := make(chan outcome[R])
	stop := make(chan struct{})
	var stopOnce sync.Once
	var haltedAt time.Time
	halt := func() {
		stopOnce.Do(func() {
			haltedAt = time.Now()
			close(stop)
			m.Inc(obs.SearchCancellations)
		})
	}

	// genErr is safe to read once results has closed; see the FirstHit
	// dispatcher for the happens-before chain.
	var genErr error
	go func() {
		defer close(dispatch)
		idx := 0
		genErr = runGen(func() {
			gen(func(item T) bool {
				select {
				case <-stop:
					return false
				case <-ctx.Done():
					return false
				case tokens <- struct{}{}:
				}
				select {
				case <-stop:
					return false
				case <-ctx.Done():
					return false
				case dispatch <- task{idx: idx, item: item}:
					idx++
					return true
				}
			})
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pprof.SetGoroutineLabels(ctx) // see the FirstHit worker pool
			for t := range dispatch {
				results <- runProbe(ctx, func(ctx context.Context, i int, it T) (R, bool, error) {
					r, err := probe(ctx, i, it)
					return r, false, err
				}, t.idx, t.item)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	pending := map[int]outcome[R]{}
	next := 0
	var firstErr error
	consuming := true
	probed := int64(0)
	for o := range results {
		probed++
		select {
		case <-tokens:
		default:
		}
		pending[o.idx] = o
		for consuming {
			cur, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if cur.err != nil {
				firstErr = cur.err
				consuming = false
				halt()
				break
			}
			cont, err := consume(next, cur.val)
			next++
			if err != nil {
				firstErr = err
				consuming = false
				halt()
				break
			}
			if !cont {
				stopped = true
				consuming = false
				halt()
				break
			}
		}
	}
	m.Add(obs.SearchItems, probed)
	if !haltedAt.IsZero() {
		m.Add(obs.SearchCancelNs, time.Since(haltedAt).Nanoseconds())
	}
	if firstErr != nil {
		return false, firstErr
	}
	if !stopped {
		if genErr != nil {
			return false, genErr
		}
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	return stopped, nil
}
