// Package workload generates the deterministic, seeded inputs the
// benchmark harness and property tests run on: scaling families of QBF
// instances for the reduction-based experiments (Table I cells), and
// scaling partially closed databases with fixed queries and CCs for
// the data-complexity experiments (Section 7).
package workload

import (
	"fmt"
	"math/rand"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/sat"
)

// ForallExistsFamily returns a ∀*∃*3SAT instance with the given block
// sizes, deterministically derived from the seed.
func ForallExistsFamily(nX, nY, clauses int, seed int64) *sat.QBF {
	cls := randomClauses(nX+nY, clauses, seed)
	q, err := sat.ForallExists(nX, nY, cls)
	if err != nil {
		panic(err)
	}
	return q
}

// ExistsForallExistsFamily returns an ∃*∀*∃*3SAT instance.
func ExistsForallExistsFamily(nX, nY, nZ, clauses int, seed int64) *sat.QBF {
	cls := randomClauses(nX+nY+nZ, clauses, seed)
	q, err := sat.ExistsForallExists(nX, nY, nZ, cls)
	if err != nil {
		panic(err)
	}
	return q
}

// SATUNSATFamily returns a SAT-UNSAT instance over the given variable
// counts.
func SATUNSATFamily(vars, clauses int, seed int64) sat.SATUNSAT {
	return sat.SATUNSAT{
		Phi: sat.RandomCNF(vars, clauses, seed),
		Psi: sat.RandomCNF(vars, clauses+1, seed+7919),
	}
}

// CircuitFamily returns a circuit with roughly `size` gates over
// `inputs` input gates; taut forces a tautology (C ∨ ¬C).
func CircuitFamily(inputs, size int, taut bool, seed int64) *sat.Circuit {
	clauses := size/4 + 1
	base := sat.FromCNF(sat.RandomCNF(inputs, clauses, seed))
	return sat.OrNot(base, taut)
}

func randomClauses(vars, clauses int, seed int64) []sat.Clause {
	r := rand.New(rand.NewSource(seed))
	out := make([]sat.Clause, clauses)
	for i := range out {
		c := make(sat.Clause, 3)
		for j := range c {
			v := r.Intn(vars) + 1
			if r.Intn(2) == 0 {
				c[j] = sat.Literal(v)
			} else {
				c[j] = sat.Literal(-v)
			}
		}
		out[i] = c
	}
	return out
}

// BoundedScenario is a fixed-query, fixed-CC "orders bounded by master
// catalogue" setting whose instance size scales: data relation
// Order(item, qty) is constrained by item ⊆ Catalog(item), and the
// query asks for quantities of one item. It drives the Section 7
// data-complexity experiments: the c-instance grows while Q and V stay
// fixed.
type BoundedScenario struct {
	Schema  *relation.DBSchema
	Master  *relation.DBSchema
	Dm      *relation.Database
	CCs     *cc.Set
	Query   *query.Query
	Problem *core.Problem
}

// NewBoundedScenario builds the scenario with a master catalogue of
// the given size.
func NewBoundedScenario(catalogue int, opts core.Options) *BoundedScenario {
	order := relation.MustSchema("Order", relation.Attr("item", nil), relation.Attr("qty", nil))
	catalog := relation.MustSchema("Catalog", relation.Attr("item", nil))
	schema := relation.MustDBSchema(order)
	masterSchema := relation.MustDBSchema(catalog)
	dm := relation.NewDatabase(masterSchema)
	for i := 0; i < catalogue; i++ {
		dm.MustInsert("Catalog", relation.T(itemName(i)))
	}
	v := cc.NewSet(cc.MustParse("item_bound",
		"q(i) := Order(i, q)", "p(i) := Catalog(i)"))
	q := query.MustParseQuery("Q(q) := Order('item0', q)")
	p := core.MustProblem(schema, core.CalcQuery(q), dm, v, opts)
	return &BoundedScenario{Schema: schema, Master: masterSchema, Dm: dm, CCs: v, Query: q, Problem: p}
}

func itemName(i int) relation.Value { return relation.Value(fmt.Sprintf("item%d", i)) }

// Instance builds a c-instance with `rows` ground rows over the
// catalogue and `vars` variable rows (variables in the qty column so
// the variable count is the knob of Corollary 7.1).
func (s *BoundedScenario) Instance(rows, vars int, seed int64) *ctable.CInstance {
	r := rand.New(rand.NewSource(seed))
	catalogue := s.Dm.Relation("Catalog").Len()
	ci := ctable.NewCInstance(s.Schema)
	for i := 0; i < rows; i++ {
		ci.MustAddRow("Order", ctable.Row{Terms: []query.Term{
			query.C(itemName(r.Intn(catalogue))),
			query.C(relation.Value(fmt.Sprintf("q%d", r.Intn(5)))),
		}})
	}
	for i := 0; i < vars; i++ {
		ci.MustAddRow("Order", ctable.Row{Terms: []query.Term{
			query.C(itemName(r.Intn(catalogue))),
			query.V(fmt.Sprintf("v%d", i)),
		}})
	}
	return ci
}

// RandomProblemCase is one randomised (problem, c-instance) pair over
// Boolean-domain relations, small enough for the reference oracles —
// the shared shape of the cross-validation suites.
type RandomProblemCase struct {
	Problem *core.Problem
	CI      *ctable.CInstance
}

// RandomBooleanCases generates n randomised cases over R(A, B) with a
// full-containment CC against a random master relation, mirroring the
// core cross-validation fixtures so other packages can reuse them.
func RandomBooleanCases(n int, seed int64, queries []string) []RandomProblemCase {
	r := rand.New(rand.NewSource(seed))
	if len(queries) == 0 {
		queries = []string{
			"Q(x) := R(x, y)",
			"Q(x, y) := R(x, y)",
			"Q(x) := R(x, y) & x != y",
			"Q() := exists x: R(x, x)",
		}
	}
	schema := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", relation.Bool()), relation.Attr("B", relation.Bool())))
	masterSchema := relation.MustDBSchema(
		relation.MustSchema("M", relation.Attr("A", relation.Bool()), relation.Attr("B", relation.Bool())))
	bools := []relation.Value{"0", "1"}
	var out []RandomProblemCase
	for len(out) < n {
		dm := relation.NewDatabase(masterSchema)
		for _, a := range bools {
			for _, b := range bools {
				if r.Intn(2) == 0 {
					dm.MustInsert("M", relation.T(a, b))
				}
			}
		}
		v := cc.NewSet(cc.MustParse("rm", "q(x, y) := R(x, y)", "p(x, y) := M(x, y)"))
		q := core.CalcQuery(query.MustParseQuery(queries[r.Intn(len(queries))]))
		p := core.MustProblem(schema, q, dm, v, core.Options{})
		ci := ctable.NewCInstance(schema)
		for i := 0; i < r.Intn(3); i++ {
			terms := make([]query.Term, 2)
			for j := range terms {
				if r.Intn(3) == 0 {
					terms[j] = query.V(fmt.Sprintf("w%d", r.Intn(2)))
				} else {
					terms[j] = query.C(bools[r.Intn(2)])
				}
			}
			ci.MustAddRow("R", ctable.Row{Terms: terms})
		}
		out = append(out, RandomProblemCase{Problem: p, CI: ci})
	}
	return out
}
