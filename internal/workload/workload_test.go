package workload

import (
	"testing"

	"relcomplete/internal/core"
	"relcomplete/internal/sat"
)

func TestQBFFamiliesDeterministic(t *testing.T) {
	a := ForallExistsFamily(2, 2, 4, 7)
	b := ForallExistsFamily(2, 2, 4, 7)
	if a.String() != b.String() {
		t.Fatal("same seed must give the same instance")
	}
	c := ForallExistsFamily(2, 2, 4, 8)
	if a.String() == c.String() {
		t.Fatal("different seeds should give different instances")
	}
	if a.Eval() != b.Eval() {
		t.Fatal("evaluation must be deterministic")
	}
}

func TestEFEFamilyShape(t *testing.T) {
	q := ExistsForallExistsFamily(1, 2, 1, 3, 5)
	if len(q.Blocks) != 3 || q.Blocks[0].Q != sat.Exists || q.Blocks[1].Q != sat.ForAll {
		t.Fatalf("blocks wrong: %v", q.Blocks)
	}
	if q.Matrix.Vars != 4 || len(q.Matrix.Clauses) != 3 {
		t.Fatalf("matrix wrong: %v", q.Matrix)
	}
}

func TestSATUNSATFamily(t *testing.T) {
	inst := SATUNSATFamily(3, 4, 11)
	if inst.Phi == nil || inst.Psi == nil || inst.Phi.Vars != 3 {
		t.Fatal("family shape wrong")
	}
	// Deterministic.
	if SATUNSATFamily(3, 4, 11).Eval() != inst.Eval() {
		t.Fatal("evaluation must be deterministic")
	}
}

func TestCircuitFamily(t *testing.T) {
	taut := CircuitFamily(3, 12, true, 3)
	ok, err := taut.Tautology()
	if err != nil || !ok {
		t.Fatal("forced tautology must be a tautology")
	}
	if taut.Inputs != 3 {
		t.Fatalf("inputs = %d", taut.Inputs)
	}
}

func TestBoundedScenarioInstance(t *testing.T) {
	s := NewBoundedScenario(4, core.Options{})
	ci := s.Instance(6, 2, 1)
	if ci.Size() != 8 {
		t.Fatalf("Size = %d", ci.Size())
	}
	if len(ci.Vars()) != 2 {
		t.Fatalf("Vars = %v", ci.Vars())
	}
	// Every generated instance is consistent: items come from the
	// catalogue and quantities are unconstrained.
	ok, err := s.Problem.Consistent(ci)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("generated instance should be consistent")
	}
}

func TestBoundedScenarioDecidersRun(t *testing.T) {
	s := NewBoundedScenario(3, core.Options{})
	ci := s.Instance(4, 1, 2)
	for _, m := range []core.Model{core.Strong, core.Weak, core.Viable} {
		if _, err := s.Problem.RCDP(ci, m); err != nil {
			t.Fatalf("RCDP(%v): %v", m, err)
		}
	}
}

func TestRandomBooleanCases(t *testing.T) {
	cases := RandomBooleanCases(10, 3, nil)
	if len(cases) != 10 {
		t.Fatalf("want 10 cases, got %d", len(cases))
	}
	for i, c := range cases {
		if c.Problem == nil || c.CI == nil {
			t.Fatalf("case %d incomplete", i)
		}
		if _, err := c.Problem.Consistent(c.CI); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}
