package sat

import "fmt"

// QBF is a quantified Boolean formula in prenex normal form with a CNF
// matrix. Blocks alternate; Blocks[i] owns a contiguous range of the
// matrix's variables.
type QBF struct {
	Blocks []Block
	Matrix *CNF
}

// Quantifier is ∀ or ∃.
type Quantifier int

// The two quantifiers.
const (
	ForAll Quantifier = iota
	Exists
)

// String renders the quantifier.
func (q Quantifier) String() string {
	if q == ForAll {
		return "∀"
	}
	return "∃"
}

// Block is one quantifier block over variables [From, To] (1-based,
// inclusive).
type Block struct {
	Q        Quantifier
	From, To int
}

// NewQBF builds a prenex QBF and validates that the blocks partition
// the matrix's variables in order.
func NewQBF(matrix *CNF, blocks ...Block) (*QBF, error) {
	if err := matrix.Validate(); err != nil {
		return nil, err
	}
	next := 1
	for i, b := range blocks {
		if b.From != next || b.To < b.From-1 {
			return nil, fmt.Errorf("sat: block %d covers [%d,%d], expected to start at %d", i, b.From, b.To, next)
		}
		next = b.To + 1
	}
	if next != matrix.Vars+1 {
		return nil, fmt.Errorf("sat: blocks cover %d variables, matrix has %d", next-1, matrix.Vars)
	}
	return &QBF{Blocks: blocks, Matrix: matrix}, nil
}

// MustQBF is NewQBF that panics on error.
func MustQBF(matrix *CNF, blocks ...Block) *QBF {
	q, err := NewQBF(matrix, blocks...)
	if err != nil {
		panic(err)
	}
	return q
}

// Eval decides the QBF by brute force — the oracle for the paper's
// reductions. Exponential in the variable count; intended for small
// instances only.
func (q *QBF) Eval() bool {
	a := make(Assignment, q.Matrix.Vars+1)
	return q.evalBlock(0, a)
}

func (q *QBF) evalBlock(bi int, a Assignment) bool {
	if bi == len(q.Blocks) {
		return q.Matrix.Eval(a)
	}
	b := q.Blocks[bi]
	var rec func(v int) bool
	rec = func(v int) bool {
		if v > b.To {
			return q.evalBlock(bi+1, a)
		}
		a[v] = false
		first := rec(v + 1)
		if b.Q == Exists && first {
			return true
		}
		if b.Q == ForAll && !first {
			return false
		}
		a[v] = true
		return rec(v + 1)
	}
	return rec(b.From)
}

// String renders the QBF.
func (q *QBF) String() string {
	out := ""
	for _, b := range q.Blocks {
		out += fmt.Sprintf("%sx%d..x%d ", b.Q, b.From, b.To)
	}
	return out + q.Matrix.String()
}

// ForallExists builds ∀x1..xn ∃y1..ym ψ — the Πp2-complete ∀*∃*3SAT
// form of Proposition 3.3.
func ForallExists(nForall, nExists int, clauses []Clause) (*QBF, error) {
	matrix := &CNF{Vars: nForall + nExists, Clauses: clauses}
	return NewQBF(matrix,
		Block{Q: ForAll, From: 1, To: nForall},
		Block{Q: Exists, From: nForall + 1, To: nForall + nExists},
	)
}

// ExistsForallExists builds ∃X ∀Y ∃Z ψ — the Σp3-complete ∃*∀*∃*3SAT
// form of Theorems 4.8, 5.1 and 6.1.
func ExistsForallExists(nX, nY, nZ int, clauses []Clause) (*QBF, error) {
	matrix := &CNF{Vars: nX + nY + nZ, Clauses: clauses}
	return NewQBF(matrix,
		Block{Q: Exists, From: 1, To: nX},
		Block{Q: ForAll, From: nX + 1, To: nX + nY},
		Block{Q: Exists, From: nX + nY + 1, To: nX + nY + nZ},
	)
}

// ForallExistsForallExists builds ∀X ∃Y ∀Z ∃W ψ — the Πp4-complete
// form of Theorem 5.6.
func ForallExistsForallExists(nX, nY, nZ, nW int, clauses []Clause) (*QBF, error) {
	matrix := &CNF{Vars: nX + nY + nZ + nW, Clauses: clauses}
	return NewQBF(matrix,
		Block{Q: ForAll, From: 1, To: nX},
		Block{Q: Exists, From: nX + 1, To: nX + nY},
		Block{Q: ForAll, From: nX + nY + 1, To: nX + nY + nZ},
		Block{Q: Exists, From: nX + nY + nZ + 1, To: nX + nY + nZ + nW},
	)
}

// SATUNSAT is an instance of the DP-complete SAT-UNSAT problem of
// Theorem 5.6(4): decide whether Phi is satisfiable AND Psi is not.
type SATUNSAT struct {
	Phi, Psi *CNF
}

// Eval decides the instance by DPLL.
func (s SATUNSAT) Eval() bool {
	_, sat1 := s.Phi.Solve()
	_, sat2 := s.Psi.Solve()
	return sat1 && !sat2
}
