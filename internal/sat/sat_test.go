package sat

import (
	"strings"
	"testing"
)

func c(lits ...Literal) Clause { return Clause(lits) }

func TestLiteral(t *testing.T) {
	if Literal(3).Var() != 3 || Literal(-3).Var() != 3 {
		t.Fatal("Var wrong")
	}
	if !Literal(3).Positive() || Literal(-3).Positive() {
		t.Fatal("Positive wrong")
	}
	if Literal(-2).String() != "¬x2" || Literal(2).String() != "x2" {
		t.Fatal("String wrong")
	}
}

func TestCNFEval(t *testing.T) {
	// (x1 ∨ ¬x2) ∧ (x2 ∨ x3)
	f := &CNF{Vars: 3, Clauses: []Clause{c(1, -2), c(2, 3)}}
	if !f.Eval(Assignment{false, true, true, false}) {
		t.Fatal("x1 ∧ x2 satisfies")
	}
	if f.Eval(Assignment{false, false, true, false}) {
		t.Fatal("¬x1 ∧ x2 ∧ ¬x3 falsifies first clause")
	}
}

func TestCNFValidate(t *testing.T) {
	if err := (&CNF{Vars: 1, Clauses: []Clause{{}}}).Validate(); err == nil {
		t.Fatal("empty clause should fail")
	}
	if err := (&CNF{Vars: 1, Clauses: []Clause{c(2)}}).Validate(); err == nil {
		t.Fatal("out-of-range variable should fail")
	}
	if err := (&CNF{Vars: 2, Clauses: []Clause{c(1, -2)}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDPLLKnownInstances(t *testing.T) {
	sat := &CNF{Vars: 3, Clauses: []Clause{c(1, 2, 3), c(-1, -2), c(-3, 1)}}
	a, ok := sat.Solve()
	if !ok {
		t.Fatal("satisfiable instance reported unsat")
	}
	if !sat.Eval(a) {
		t.Fatalf("returned assignment %v does not satisfy", a)
	}

	unsat := &CNF{Vars: 1, Clauses: []Clause{c(1), c(-1)}}
	if _, ok := unsat.Solve(); ok {
		t.Fatal("x ∧ ¬x reported sat")
	}

	// Pigeonhole-ish: 2 vars, all 4 sign patterns.
	unsat2 := &CNF{Vars: 2, Clauses: []Clause{c(1, 2), c(1, -2), c(-1, 2), c(-1, -2)}}
	if _, ok := unsat2.Solve(); ok {
		t.Fatal("all sign patterns reported sat")
	}
}

func TestDPLLAgreesWithBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f := RandomCNF(5, 3+int(seed%15), seed)
		a, got := f.Solve()
		want := f.BruteForceSAT()
		if got != want {
			t.Fatalf("seed %d: DPLL %v vs brute force %v on %s", seed, got, want, f)
		}
		if got && !f.Eval(a) {
			t.Fatalf("seed %d: assignment does not satisfy", seed)
		}
	}
}

func TestQBFValidation(t *testing.T) {
	m := &CNF{Vars: 2, Clauses: []Clause{c(1, 2)}}
	if _, err := NewQBF(m, Block{Q: ForAll, From: 1, To: 1}); err == nil {
		t.Fatal("uncovered variable should fail")
	}
	if _, err := NewQBF(m, Block{Q: ForAll, From: 2, To: 2}, Block{Q: Exists, From: 1, To: 1}); err == nil {
		t.Fatal("out-of-order blocks should fail")
	}
	if _, err := NewQBF(&CNF{Vars: 1, Clauses: []Clause{{}}}, Block{Q: ForAll, From: 1, To: 1}); err == nil {
		t.Fatal("invalid matrix should fail")
	}
}

func TestQBFKnownInstances(t *testing.T) {
	// ∀x ∃y (x ∨ y) ∧ (¬x ∨ ¬y): y = ¬x works — true.
	q := MustQBF(&CNF{Vars: 2, Clauses: []Clause{c(1, 2), c(-1, -2)}},
		Block{Q: ForAll, From: 1, To: 1}, Block{Q: Exists, From: 2, To: 2})
	if !q.Eval() {
		t.Fatal("∀x∃y (x∨y)∧(¬x∨¬y) is true")
	}
	// ∃y ∀x (x ∨ y) ∧ (¬x ∨ ¬y): no single y works — false.
	q2 := MustQBF(&CNF{Vars: 2, Clauses: []Clause{c(2, 1), c(-2, -1)}},
		Block{Q: Exists, From: 1, To: 1}, Block{Q: ForAll, From: 2, To: 2})
	if q2.Eval() {
		t.Fatal("∃y∀x (x∨y)∧(¬x∨¬y) is false")
	}
	if !strings.Contains(q.String(), "∀") {
		t.Fatal("String should show quantifiers")
	}
}

func TestQBFBlockEdgeCases(t *testing.T) {
	// Empty ∀ block (From > To) then all-∃ — equivalent to SAT.
	f := &CNF{Vars: 2, Clauses: []Clause{c(1), c(2)}}
	q := MustQBF(f, Block{Q: ForAll, From: 1, To: 0}, Block{Q: Exists, From: 1, To: 2})
	if !q.Eval() {
		t.Fatal("x1 ∧ x2 is satisfiable")
	}
}

func TestForallExistsConstructor(t *testing.T) {
	// ∀x1 ∃x2: x2 ↔ x1 i.e. (¬x1∨x2)∧(x1∨¬x2) — true.
	q, err := ForallExists(1, 1, []Clause{c(-1, 2), c(1, -2)})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Eval() {
		t.Fatal("should be true")
	}
	// ∀x1 ∃x2: x1 alone — false (x1 = false kills it).
	q2, _ := ForallExists(1, 1, []Clause{c(1), c(2, -2)})
	if q2.Eval() {
		t.Fatal("should be false")
	}
}

func TestExistsForallExistsConstructor(t *testing.T) {
	// ∃x ∀y ∃z: (x) ∧ (y ∨ z) ∧ (¬y ∨ ¬z): x=1; z=¬y — true.
	q, err := ExistsForallExists(1, 1, 1, []Clause{c(1), c(2, 3), c(-2, -3)})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Eval() {
		t.Fatal("should be true")
	}
	// ∃x ∀y: (x ∨ y) ∧ (¬x ∨ ¬y) with dummy z — false.
	q2, _ := ExistsForallExists(1, 1, 1, []Clause{c(1, 2), c(-1, -2), c(3, -3)})
	if q2.Eval() {
		t.Fatal("should be false")
	}
}

func TestForallExistsForallExistsConstructor(t *testing.T) {
	// ∀x ∃y ∀z ∃w: (y ↔ x) ∧ (w ↔ z) — true.
	q, err := ForallExistsForallExists(1, 1, 1, 1, []Clause{
		c(-1, 2), c(1, -2), c(-3, 4), c(3, -4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Eval() {
		t.Fatal("should be true")
	}
	// ∀x ∃y ∀z ∃w: (w ↔ z) ∧ x — false.
	q2, _ := ForallExistsForallExists(1, 1, 1, 1, []Clause{
		c(-3, 4), c(3, -4), c(1),
	})
	if q2.Eval() {
		t.Fatal("should be false")
	}
}

func TestSATUNSAT(t *testing.T) {
	sat := &CNF{Vars: 1, Clauses: []Clause{c(1)}}
	unsat := &CNF{Vars: 1, Clauses: []Clause{c(1), c(-1)}}
	if !(SATUNSAT{Phi: sat, Psi: unsat}).Eval() {
		t.Fatal("(sat, unsat) should be a yes-instance")
	}
	if (SATUNSAT{Phi: sat, Psi: sat}).Eval() {
		t.Fatal("(sat, sat) should be a no-instance")
	}
	if (SATUNSAT{Phi: unsat, Psi: unsat}).Eval() {
		t.Fatal("(unsat, unsat) should be a no-instance")
	}
}

func TestCircuitEval(t *testing.T) {
	// (in0 ∧ in1) ∨ ¬in0
	circ := MustCircuit(
		Gate{Kind: GateIn},              // 0
		Gate{Kind: GateIn},              // 1
		Gate{Kind: GateAnd, L: 0, R: 1}, // 2
		Gate{Kind: GateNot, L: 0},       // 3
		Gate{Kind: GateOr, L: 2, R: 3},  // 4
	)
	cases := map[[2]bool]bool{
		{false, false}: true,
		{false, true}:  true,
		{true, false}:  false,
		{true, true}:   true,
	}
	for in, want := range cases {
		got, err := circ.Eval([]bool{in[0], in[1]})
		if err != nil || got != want {
			t.Fatalf("Eval(%v) = %v, want %v", in, got, want)
		}
	}
	taut, err := circ.Tautology()
	if err != nil || taut {
		t.Fatal("not a tautology (fails on 1,0)")
	}
	if _, err := circ.Eval([]bool{true}); err == nil {
		t.Fatal("wrong input arity should fail")
	}
}

func TestCircuitValidation(t *testing.T) {
	if _, err := NewCircuit(nil); err == nil {
		t.Fatal("empty circuit should fail")
	}
	if _, err := NewCircuit([]Gate{{Kind: GateNot, L: 0}}); err == nil {
		t.Fatal("forward wire should fail")
	}
	if _, err := NewCircuit([]Gate{{Kind: GateIn}, {Kind: GateAnd, L: 0, R: 1}}); err == nil {
		t.Fatal("self wire should fail")
	}
}

func TestFromCNFMatchesEval(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		f := RandomCNF(4, 5, seed)
		circ := FromCNF(f)
		// Exhaustively compare on all 16 inputs.
		for bits := 0; bits < 16; bits++ {
			in := make([]bool, 4)
			a := make(Assignment, 5)
			for i := 0; i < 4; i++ {
				in[i] = bits&(1<<uint(i)) != 0
				a[i+1] = in[i]
			}
			got, err := circ.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			if got != f.Eval(a) {
				t.Fatalf("seed %d bits %d: circuit %v vs CNF %v", seed, bits, got, f.Eval(a))
			}
		}
	}
}

func TestOrNotTautology(t *testing.T) {
	f := RandomCNF(4, 6, 9)
	base := FromCNF(f)
	taut := OrNot(base, true)
	ok, err := taut.Tautology()
	if err != nil || !ok {
		t.Fatal("C ∨ ¬C must be a tautology")
	}
	same := OrNot(base, false)
	if len(same.Gates) != len(base.Gates) {
		t.Fatal("OrNot(false) should return the circuit unchanged")
	}
}
