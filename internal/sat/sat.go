// Package sat provides the propositional-logic substrate for the
// paper's reductions: 3SAT/CNF structures, a DPLL solver, brute-force
// evaluators for the quantified Boolean formula classes the paper
// reduces from (∀*∃*3SAT — Πp2, ∃*∀*∃*3SAT — Σp3, ∀*∃*∀*∃*3SAT — Πp4,
// SAT-UNSAT — DP), and Boolean circuits for the SUCCINCT-TAUT gadget
// (coNEXPTIME). These serve as independent oracles when the test-suite
// validates the iff-statements of the paper's reduction proofs.
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Literal is a propositional literal: a 1-based variable index, negated
// when the value is negative. Variable numbering is global across the
// quantifier blocks of a QBF.
type Literal int

// Var returns the literal's variable (1-based).
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Positive reports whether the literal is positive.
func (l Literal) Positive() bool { return l > 0 }

// String renders the literal as x3 or ¬x3.
func (l Literal) String() string {
	if l < 0 {
		return fmt.Sprintf("¬x%d", -l)
	}
	return fmt.Sprintf("x%d", l)
}

// Clause is a disjunction of literals.
type Clause []Literal

// String renders the clause.
func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// CNF is a conjunction of clauses over variables 1..Vars.
type CNF struct {
	Vars    int
	Clauses []Clause
}

// String renders the formula.
func (f *CNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Validate checks that every literal references a declared variable and
// no clause is empty.
func (f *CNF) Validate() error {
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("sat: clause %d is empty", i)
		}
		for _, l := range c {
			if l == 0 || l.Var() > f.Vars {
				return fmt.Errorf("sat: clause %d: literal %d out of range", i, l)
			}
		}
	}
	return nil
}

// Assignment maps variable index (1-based) to truth value. Index 0 is
// unused.
type Assignment []bool

// Eval evaluates the CNF under a total assignment.
func (f *CNF) Eval(a Assignment) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if a[l.Var()] == l.Positive() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// BruteForceSAT decides satisfiability by exhaustive enumeration; the
// independent oracle against which DPLL is validated.
func (f *CNF) BruteForceSAT() bool {
	a := make(Assignment, f.Vars+1)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i > f.Vars {
			return f.Eval(a)
		}
		a[i] = false
		if rec(i + 1) {
			return true
		}
		a[i] = true
		return rec(i + 1)
	}
	return rec(1)
}

// Solve decides satisfiability with DPLL (unit propagation + pure
// literal elimination + splitting) and returns a satisfying assignment
// when one exists.
func (f *CNF) Solve() (Assignment, bool) {
	clauses := make([]Clause, len(f.Clauses))
	copy(clauses, f.Clauses)
	assign := make(map[int]bool)
	if !dpll(clauses, assign) {
		return nil, false
	}
	out := make(Assignment, f.Vars+1)
	for v, val := range assign {
		if v <= f.Vars {
			out[v] = val
		}
	}
	return out, true
}

// dpll runs the classic procedure on a clause set, accumulating the
// satisfying assignment.
func dpll(clauses []Clause, assign map[int]bool) bool {
	// Simplify under the current assignment.
	var live []Clause
	for _, c := range clauses {
		satisfied := false
		var rest Clause
		for _, l := range c {
			if val, ok := assign[l.Var()]; ok {
				if val == l.Positive() {
					satisfied = true
					break
				}
				continue // literal is false; drop it
			}
			rest = append(rest, l)
		}
		if satisfied {
			continue
		}
		if len(rest) == 0 {
			return false // empty clause: conflict
		}
		live = append(live, rest)
	}
	if len(live) == 0 {
		return true
	}
	// Unit propagation.
	for _, c := range live {
		if len(c) == 1 {
			assign[c[0].Var()] = c[0].Positive()
			if dpll(live, assign) {
				return true
			}
			delete(assign, c[0].Var())
			return false
		}
	}
	// Pure literal elimination.
	polarity := map[int]int{} // 1 pos, 2 neg, 3 both
	for _, c := range live {
		for _, l := range c {
			if l.Positive() {
				polarity[l.Var()] |= 1
			} else {
				polarity[l.Var()] |= 2
			}
		}
	}
	for v, pol := range polarity {
		if pol == 1 || pol == 2 {
			assign[v] = pol == 1
			if dpll(live, assign) {
				return true
			}
			delete(assign, v)
			return false
		}
	}
	// Split on the first variable of the first clause.
	v := live[0][0].Var()
	for _, val := range []bool{true, false} {
		assign[v] = val
		if dpll(live, assign) {
			return true
		}
		delete(assign, v)
	}
	return false
}

// RandomCNF generates a random 3-CNF with the given variable and
// clause counts, seeded deterministically.
func RandomCNF(vars, clauses int, seed int64) *CNF {
	r := rand.New(rand.NewSource(seed))
	f := &CNF{Vars: vars}
	for i := 0; i < clauses; i++ {
		c := make(Clause, 3)
		for j := range c {
			v := r.Intn(vars) + 1
			if r.Intn(2) == 0 {
				c[j] = Literal(v)
			} else {
				c[j] = Literal(-v)
			}
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}
