package sat

import "fmt"

// Boolean circuits as in the SUCCINCT-TAUT problem of Theorem 5.1(2):
// a circuit C is a sequence of gates g1..gM; gate i is an input gate,
// or ∧/∨ over two earlier gates, or ¬ over one earlier gate. C defines
// fC : {0,1}^n → {0,1} where n is the number of input gates;
// SUCCINCT-TAUT asks whether fC ≡ 1.

// GateKind is the type of a circuit gate.
type GateKind int

// The gate kinds.
const (
	GateIn GateKind = iota
	GateAnd
	GateOr
	GateNot
)

// String names the gate kind.
func (k GateKind) String() string {
	switch k {
	case GateIn:
		return "in"
	case GateAnd:
		return "∧"
	case GateOr:
		return "∨"
	default:
		return "¬"
	}
}

// Gate is one circuit gate; L and R are 0-based indices of earlier
// gates (R unused for ¬, both unused for inputs).
type Gate struct {
	Kind GateKind
	L, R int
}

// Circuit is a gate list; the last gate is the output.
type Circuit struct {
	Gates  []Gate
	Inputs int // number of GateIn gates, in order of appearance
}

// NewCircuit validates gate wiring.
func NewCircuit(gates []Gate) (*Circuit, error) {
	c := &Circuit{Gates: gates}
	if len(gates) == 0 {
		return nil, fmt.Errorf("sat: empty circuit")
	}
	for i, g := range gates {
		switch g.Kind {
		case GateIn:
			c.Inputs++
		case GateNot:
			if g.L >= i || g.L < 0 {
				return nil, fmt.Errorf("sat: gate %d: ¬ wires to %d", i, g.L)
			}
		case GateAnd, GateOr:
			if g.L >= i || g.R >= i || g.L < 0 || g.R < 0 {
				return nil, fmt.Errorf("sat: gate %d: wires to %d, %d", i, g.L, g.R)
			}
		default:
			return nil, fmt.Errorf("sat: gate %d: unknown kind", i)
		}
	}
	return c, nil
}

// MustCircuit is NewCircuit that panics on error.
func MustCircuit(gates ...Gate) *Circuit {
	c, err := NewCircuit(gates)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval computes fC(input); input length must equal the input count.
func (c *Circuit) Eval(input []bool) (bool, error) {
	if len(input) != c.Inputs {
		return false, fmt.Errorf("sat: circuit wants %d inputs, got %d", c.Inputs, len(input))
	}
	vals := make([]bool, len(c.Gates))
	in := 0
	for i, g := range c.Gates {
		switch g.Kind {
		case GateIn:
			vals[i] = input[in]
			in++
		case GateAnd:
			vals[i] = vals[g.L] && vals[g.R]
		case GateOr:
			vals[i] = vals[g.L] || vals[g.R]
		case GateNot:
			vals[i] = !vals[g.L]
		}
	}
	return vals[len(vals)-1], nil
}

// Tautology decides SUCCINCT-TAUT by brute force over all 2^n inputs.
func (c *Circuit) Tautology() (bool, error) {
	n := c.Inputs
	input := make([]bool, n)
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == n {
			return c.Eval(input)
		}
		for _, v := range []bool{false, true} {
			input[i] = v
			ok, err := rec(i + 1)
			if err != nil || !ok {
				return ok, err
			}
		}
		return true, nil
	}
	return rec(0)
}

// FromCNF compiles a CNF into an equivalent circuit (useful to generate
// non-trivial tautology instances: a CNF ∨ its negation is one).
func FromCNF(f *CNF) *Circuit {
	gates := make([]Gate, 0, f.Vars+len(f.Clauses)*4)
	varGate := make([]int, f.Vars+1)
	for v := 1; v <= f.Vars; v++ {
		varGate[v] = len(gates)
		gates = append(gates, Gate{Kind: GateIn})
	}
	litGate := func(l Literal) int {
		g := varGate[l.Var()]
		if l.Positive() {
			return g
		}
		gates = append(gates, Gate{Kind: GateNot, L: g})
		return len(gates) - 1
	}
	clauseOut := make([]int, 0, len(f.Clauses))
	for _, cl := range f.Clauses {
		cur := litGate(cl[0])
		for _, l := range cl[1:] {
			g := litGate(l)
			gates = append(gates, Gate{Kind: GateOr, L: cur, R: g})
			cur = len(gates) - 1
		}
		clauseOut = append(clauseOut, cur)
	}
	cur := clauseOut[0]
	for _, g := range clauseOut[1:] {
		gates = append(gates, Gate{Kind: GateAnd, L: cur, R: g})
		cur = len(gates) - 1
	}
	return MustCircuit(gates...)
}

// OrNot returns the circuit C ∨ ¬C' where C and C' both compute c —
// a guaranteed tautology with non-trivial structure — when taut is
// true; otherwise it returns c unchanged (generally not a tautology).
func OrNot(c *Circuit, taut bool) *Circuit {
	if !taut {
		return c
	}
	gates := append([]Gate(nil), c.Gates...)
	out := len(gates) - 1
	gates = append(gates, Gate{Kind: GateNot, L: out})
	gates = append(gates, Gate{Kind: GateOr, L: out, R: len(gates) - 1})
	return MustCircuit(gates...)
}
