package tractable

import (
	"errors"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func fixture(t testing.TB, qsrc string) (*core.Problem, *relation.DBSchema) {
	t.Helper()
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	masterSchema := relation.MustDBSchema(relation.MustSchema("M", relation.Attr("A", nil)))
	dm := relation.NewDatabase(masterSchema)
	dm.MustInsert("M", relation.T("1"))
	dm.MustInsert("M", relation.T("2"))
	v := cc.NewSet(cc.MustParse("rm", "q(x) := R(x)", "p(x) := M(x)"))
	p := core.MustProblem(schema, core.CalcQuery(query.MustParseQuery(qsrc)), dm, v, core.Options{})
	return p, schema
}

func ci(schema *relation.DBSchema, terms ...query.Term) *ctable.CInstance {
	out := ctable.NewCInstance(schema)
	for _, tm := range terms {
		out.MustAddRow("R", ctable.Row{Terms: []query.Term{tm}})
	}
	return out
}

func TestRCDPTractableAgreesWithCore(t *testing.T) {
	p, schema := fixture(t, "Q(x) := R(x)")
	inst := ci(schema, query.C("1"), query.C("2"))
	for _, m := range []core.Model{core.Strong, core.Weak, core.Viable} {
		want, err := p.RCDP(inst, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RCDP(p, inst, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("model %v: tractable %v vs core %v", m, got, want)
		}
	}
}

func TestRCDPVarBudget(t *testing.T) {
	p, schema := fixture(t, "Q(x) := R(x)")
	many := ci(schema, query.V("a"), query.V("b"), query.V("c"), query.V("d"))
	if _, err := RCDP(p, many, core.Strong, 3); !errors.Is(err, ErrNotTractable) {
		t.Fatalf("4 variables over a bound of 3: want ErrNotTractable, got %v", err)
	}
	if _, err := RCDP(p, many, core.Strong, 4); err != nil {
		t.Fatalf("4 variables within a bound of 4 should run: %v", err)
	}
}

func TestRCDPLanguageGuards(t *testing.T) {
	foP, schema := fixture(t, "Q(x) := ! R(x)")
	inst := ci(schema)
	for _, m := range []core.Model{core.Strong, core.Weak, core.Viable} {
		if _, err := RCDP(foP, inst, m, 0); !errors.Is(err, ErrNotTractable) {
			t.Fatalf("FO model %v: want ErrNotTractable, got %v", m, err)
		}
	}
	// FP: tractable in the weak model only.
	fpSchema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	prog := query.MustParseProgram("p", fpSchema, "r(x) :- R(x). output r.")
	fpP := core.MustProblem(fpSchema, core.FPQuery(prog), nil, nil, core.Options{})
	fpInst := ctable.NewCInstance(fpSchema)
	if _, err := RCDP(fpP, fpInst, core.Weak, 0); err != nil {
		t.Fatalf("FP weak should be tractable: %v", err)
	}
	if _, err := RCDP(fpP, fpInst, core.Strong, 0); !errors.Is(err, ErrNotTractable) {
		t.Fatal("FP strong should be rejected")
	}
}

func TestMINPGuards(t *testing.T) {
	p, schema := fixture(t, "Q(x) := R(x)")
	inst := ci(schema, query.C("1"), query.C("2"))
	ok, err := MINP(p, inst, core.Strong, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := p.MINP(inst, core.Strong)
	if ok != want {
		t.Fatal("tractable MINP disagrees with core")
	}
	// Weak MINP only for CQ.
	ucqP, _ := fixture(t, "Q(x) := R(x) | R(x)")
	if _, err := MINP(ucqP, inst, core.Weak, 0); !errors.Is(err, ErrNotTractable) {
		t.Fatal("weak MINP beyond CQ should be rejected")
	}
	if _, err := MINP(p, inst, core.Weak, 0); err != nil {
		t.Fatalf("weak MINP for CQ should run: %v", err)
	}
	foP, _ := fixture(t, "Q(x) := ! R(x)")
	if _, err := MINP(foP, inst, core.Viable, 0); !errors.Is(err, ErrNotTractable) {
		t.Fatal("FO viable MINP should be rejected")
	}
}

func TestRCQPGuards(t *testing.T) {
	// Projection CCs: tractable in all models.
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)))
	masterSchema := relation.MustDBSchema(relation.MustSchema("M", relation.Attr("K", nil)))
	dm := relation.NewDatabase(masterSchema)
	dm.MustInsert("M", relation.T("1"))
	ind := cc.IND{FromRel: "R", FromAttrs: []string{"A"}, ToRel: "M", ToAttrs: []string{"K"}}
	c, err := ind.AsCC(schema, masterSchema)
	if err != nil {
		t.Fatal(err)
	}
	p := core.MustProblem(schema, core.CalcQuery(query.MustParseQuery("Q(x) := R(x, y)")), dm, cc.NewSet(c), core.Options{})
	ok, err := RCQP(p, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("bounded query under INDs: complete database exists")
	}
	if _, err := RCQP(p, core.Weak); err != nil {
		t.Fatal("weak RCQP should be O(1)")
	}

	// Non-projection CC: rejected in strong/viable models.
	sel := cc.MustParse("sel", "q(x) := R(x, y) & y = '1'", "p(x) := M(x)")
	p2 := core.MustProblem(schema, core.CalcQuery(query.MustParseQuery("Q(x) := R(x, y)")), dm, cc.NewSet(sel), core.Options{})
	if _, err := RCQP(p2, core.Strong); !errors.Is(err, ErrNotTractable) {
		t.Fatalf("selection CC should be rejected: %v", err)
	}
	if _, err := RCQP(p2, core.Weak); err != nil {
		t.Fatal("weak RCQP is O(1) regardless of CC shape")
	}

	// FO is rejected everywhere; FP in strong/viable.
	foP := core.MustProblem(schema, core.CalcQuery(query.MustParseQuery("Q(x) := ! R(x, x)")), dm, nil, core.Options{})
	if _, err := RCQP(foP, core.Weak); !errors.Is(err, ErrNotTractable) {
		t.Fatal("FO weak RCQP should be rejected")
	}
	if _, err := RCQP(foP, core.Strong); !errors.Is(err, ErrNotTractable) {
		t.Fatal("FO strong RCQP should be rejected")
	}
}

func TestConsistentGuard(t *testing.T) {
	p, schema := fixture(t, "Q(x) := R(x)")
	inst := ci(schema, query.V("a"))
	ok, err := Consistent(p, inst, 0)
	if err != nil || !ok {
		t.Fatalf("consistent instance: %v %v", ok, err)
	}
	many := ci(schema, query.V("a"), query.V("b"), query.V("c"), query.V("d"))
	if _, err := Consistent(p, many, 2); !errors.Is(err, ErrNotTractable) {
		t.Fatal("variable budget should be enforced")
	}
}
