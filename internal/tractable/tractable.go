// Package tractable exposes the paper's Section 7 special cases with
// polynomial data complexity, as guarded entry points over the exact
// deciders of internal/core:
//
//   - Corollary 7.1 — RCDPs/RCDPv in PTIME for CQ, UCQ and ∃FO+, and
//     RCDPw additionally for FP, on c-instances with a constant number
//     of variables when the query Q and the CC set V are fixed;
//   - Corollary 7.2 — RCQPs/RCQPv in PTIME for fixed queries when all
//     CCs are INDs (projection-shaped), and RCQPw in O(1);
//   - Corollary 7.3 — MINPs/MINPv in PTIME under the Corollary 7.1
//     conditions, and MINPw for CQ.
//
// The guards make the tractability contract explicit: a call outside
// the corollary's conditions fails with ErrNotTractable rather than
// silently running the exponential general case. Under the conditions,
// the general algorithms ARE the PTIME algorithms — the number of
// valuations is |Adom|^k for constant k, and |Adom| is linear in the
// input — which the benchmark harness demonstrates by scaling the
// instance size at fixed (Q, V).
package tractable

import (
	"errors"
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
)

// ErrNotTractable flags a call outside the conditions of the
// corollary backing the entry point.
var ErrNotTractable = errors.New("tractable: input outside the corollary's tractable conditions")

// DefaultMaxVars is the default bound on c-instance variables for the
// "constant number of variables" conditions of Corollaries 7.1/7.3.
const DefaultMaxVars = 3

// checkVarBudget enforces the constant-variable condition.
func checkVarBudget(ci *ctable.CInstance, maxVars int) error {
	if maxVars <= 0 {
		maxVars = DefaultMaxVars
	}
	if n := len(ci.Vars()); n > maxVars {
		return fmt.Errorf("%w: c-instance has %d variables, bound is %d (Corollary 7.1/7.3)",
			ErrNotTractable, n, maxVars)
	}
	return nil
}

// checkLangRCDP enforces the language conditions of Corollary 7.1.
func checkLangRCDP(p *core.Problem, m core.Model) error {
	lang := p.Query.Lang()
	switch m {
	case core.Strong, core.Viable:
		if lang == core.FO || lang == core.FP {
			return fmt.Errorf("%w: RCDP %s model supports CQ/UCQ/∃FO+, got %s", ErrNotTractable, m, lang)
		}
	case core.Weak:
		if lang == core.FO {
			return fmt.Errorf("%w: RCDP weak model supports CQ/UCQ/∃FO+/FP, got FO", ErrNotTractable)
		}
	}
	return nil
}

// RCDP is the Corollary 7.1 entry point: decide RCDP for a c-instance
// with at most maxVars variables (0 = DefaultMaxVars). PTIME in the
// size of the c-instance and master data at fixed (Q, V).
func RCDP(p *core.Problem, ci *ctable.CInstance, m core.Model, maxVars int) (bool, error) {
	if err := checkLangRCDP(p, m); err != nil {
		return false, err
	}
	if err := checkVarBudget(ci, maxVars); err != nil {
		return false, err
	}
	return p.RCDP(ci, m)
}

// MINP is the Corollary 7.3 entry point: decide MINP for a c-instance
// with at most maxVars variables. The weak model is tractable for CQ
// only (the paper's coDP fragment); strong/viable follow Corollary 7.1
// languages.
func MINP(p *core.Problem, ci *ctable.CInstance, m core.Model, maxVars int) (bool, error) {
	lang := p.Query.Lang()
	switch m {
	case core.Strong, core.Viable:
		if lang == core.FO || lang == core.FP {
			return false, fmt.Errorf("%w: MINP %s model supports CQ/UCQ/∃FO+, got %s", ErrNotTractable, m, lang)
		}
	case core.Weak:
		if lang != core.CQ {
			return false, fmt.Errorf("%w: MINP weak model is tractable for CQ only, got %s", ErrNotTractable, lang)
		}
	}
	if err := checkVarBudget(ci, maxVars); err != nil {
		return false, err
	}
	return p.MINP(ci, m)
}

// RCQP is the Corollary 7.2 entry point. In the weak model it is O(1)
// for the monotone languages; in the strong/viable models every CC
// must be an IND (projection-shaped), in which case the boundedness
// characterisation decides the problem without any witness search.
func RCQP(p *core.Problem, m core.Model) (bool, error) {
	lang := p.Query.Lang()
	switch m {
	case core.Weak:
		if lang == core.FO {
			return false, fmt.Errorf("%w: RCQP weak model supports CQ/UCQ/∃FO+/FP, got FO", ErrNotTractable)
		}
		return p.RCQP(core.Weak)
	default:
		if lang == core.FO || lang == core.FP {
			return false, fmt.Errorf("%w: RCQP %s model supports CQ/UCQ/∃FO+, got %s", ErrNotTractable, m, lang)
		}
		if p.CCs != nil {
			for _, c := range p.CCs.Constraints {
				if !cc.IsProjectionCC(c) {
					return false, fmt.Errorf("%w: CC %s is not an IND (Corollary 7.2 needs projection CCs)",
						ErrNotTractable, c.Name)
				}
			}
		}
		return p.RCQP(m)
	}
}

// Consistent guards the Σp2 consistency check of Proposition 3.3 under
// the constant-variable condition, where it becomes PTIME.
func Consistent(p *core.Problem, ci *ctable.CInstance, maxVars int) (bool, error) {
	if err := checkVarBudget(ci, maxVars); err != nil {
		return false, err
	}
	return p.Consistent(ci)
}
