package adom

import (
	"errors"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func testSchema() *relation.DBSchema {
	return relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", relation.Bool())),
	)
}

func testCInstance() *ctable.CInstance {
	ci := ctable.NewCInstance(testSchema())
	ci.MustAddRow("R", ctable.Row{
		Terms: []query.Term{query.V("x"), query.V("b")},
		Cond:  ctable.Cond(ctable.CNeq(query.V("x"), query.C("k"))),
	})
	ci.MustAddRow("R", ctable.Row{Terms: []query.Term{query.C("c1"), query.C("0")}})
	return ci
}

func TestBuildCollectsSNewDf(t *testing.T) {
	ci := testCInstance()
	master := relation.NewDatabase(relation.MustDBSchema(
		relation.MustSchema("M", relation.Attr("W", nil))))
	master.MustInsert("M", relation.T("m1"))
	v := cc.NewSet(cc.MustParse("c", "q(a) := R(a, b) & a != 'vc'", "p(a) := M(a)"))

	a := NewBuilder().AddCInstance(ci).AddDatabase(master).AddCCs(v).Build()

	// S: c1, 0 (data), k (condition), m1 (master), vc (CC).
	for _, want := range []relation.Value{"c1", "0", "k", "m1", "vc"} {
		if !a.Contains(want) {
			t.Fatalf("Adom missing constant %s: %v", want, a.Values())
		}
	}
	// df: Boolean domain of attribute B.
	if !a.Contains("1") {
		t.Fatal("finite domain value 1 missing (df)")
	}
	// New: fresh per variable of T and of V's left sides.
	if a.Fresh("x") == "" || a.Fresh("b") == "" {
		t.Fatal("fresh values for c-instance variables missing")
	}
	// Fresh values are pairwise distinct and outside S.
	if a.Fresh("x") == a.Fresh("b") {
		t.Fatal("fresh values must be distinct")
	}
}

func TestFreshAvoidsCollisions(t *testing.T) {
	b := NewBuilder()
	b.AddConstants(relation.NewValueSet("•x")) // adversarial constant
	b.AddVars([]string{"x"})
	a := b.Build()
	if a.Fresh("x") == "•x" {
		t.Fatal("fresh value collided with existing constant")
	}
	if !a.Contains(a.Fresh("x")) {
		t.Fatal("fresh value must be in the domain")
	}
}

func TestEnumerateRespectsFiniteDomains(t *testing.T) {
	ci := testCInstance()
	a := NewBuilder().AddCInstance(ci).Build()
	doms := ci.VarDomains()

	countB := map[relation.Value]int{}
	total := 0
	err := a.Enumerate([]string{"x", "b"}, doms, 0, func(mu ctable.Valuation) (bool, error) {
		total++
		countB[mu["b"]]++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// b is Boolean: only 0/1 ever assigned.
	if len(countB) != 2 || countB["0"] == 0 || countB["1"] == 0 {
		t.Fatalf("b assignments = %v", countB)
	}
	want := len(a.Values()) * 2
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if got := a.Count([]string{"x", "b"}, doms, 1_000_000); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	a := NewBuilder().AddConstants(relation.NewValueSet("1", "2", "3")).Build()
	calls := 0
	err := a.Enumerate([]string{"x"}, nil, 0, func(mu ctable.Valuation) (bool, error) {
		calls++
		return false, nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("early stop failed: calls=%d err=%v", calls, err)
	}
}

func TestEnumerateBudget(t *testing.T) {
	a := NewBuilder().AddConstants(relation.NewValueSet("1", "2", "3")).Build()
	err := a.Enumerate([]string{"x", "y"}, nil, 4, func(mu ctable.Valuation) (bool, error) {
		return true, nil
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestEnumerateNoVars(t *testing.T) {
	a := NewBuilder().AddConstants(relation.NewValueSet("1")).Build()
	calls := 0
	err := a.Enumerate(nil, nil, 0, func(mu ctable.Valuation) (bool, error) {
		calls++
		if len(mu) != 0 {
			t.Fatal("empty valuation expected")
		}
		return true, nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("no-var enumeration should call fn once: %d %v", calls, err)
	}
}

func TestCountOverflowCap(t *testing.T) {
	vals := relation.NewValueSet()
	for i := 0; i < 20; i++ {
		vals.Add(relation.Value(rune('a' + i)))
	}
	a := NewBuilder().AddConstants(vals).Build()
	vars := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	if got := a.Count(vars, nil, 1000); got != 1001 {
		t.Fatalf("Count should cap at limit+1, got %d", got)
	}
}

func TestCountZeroWhenEmptyFiniteDomain(t *testing.T) {
	a := NewBuilder().AddConstants(relation.NewValueSet("1")).Build()
	doms := map[string]*relation.Domain{"x": relation.Finite("empty")}
	if got := a.Count([]string{"x"}, doms, 10); got != 0 {
		t.Fatalf("Count with empty domain = %d", got)
	}
}
