// Package adom implements the active-domain construction of the paper
// (Proposition 3.3 and the upper-bound proofs of Theorems 4.1, 5.1):
//
//	Adom = S ∪ New ∪ df
//
// where S is the set of constants appearing in the c-instance T, the
// master data Dm, the CC set V (and, where the algorithm needs it, the
// query Q); New holds one fresh constant per variable; and df collects
// the members of every finite attribute domain of the data schema.
//
// The paper proves that valuations drawing values from Adom suffice for
// all of its decision procedures, which is what makes the exhaustive
// deciders in internal/core exact rather than heuristic.
package adom

import (
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/relation"
)

// ErrBudget is returned when an enumeration exceeds the configured cap.
var ErrBudget = fmt.Errorf("adom: valuation budget exceeded")

// Adom is a materialised active domain.
type Adom struct {
	values []relation.Value
	set    *relation.ValueSet
	fresh  map[string]relation.Value // variable -> its dedicated New value
}

// Builder accumulates the ingredients of an active domain.
type Builder struct {
	consts *relation.ValueSet
	vars   []string
	seen   map[string]bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{consts: relation.NewValueSet(), seen: map[string]bool{}}
}

// AddCInstance contributes the constants and variables of T, plus the
// finite domains of its schema (the paper's df).
func (b *Builder) AddCInstance(ci *ctable.CInstance) *Builder {
	if ci == nil {
		return b
	}
	ci.Constants(b.consts)
	for _, v := range ci.Vars() {
		b.addVar(v)
	}
	b.AddSchemaFiniteDomains(ci.Schema())
	return b
}

// AddDatabase contributes the active domain of a ground database.
func (b *Builder) AddDatabase(db *relation.Database) *Builder {
	db.ActiveDomain(b.consts)
	return b
}

// AddSchemaFiniteDomains contributes df for a schema.
func (b *Builder) AddSchemaFiniteDomains(sch *relation.DBSchema) *Builder {
	if sch == nil {
		return b
	}
	for _, r := range sch.Relations() {
		for _, a := range r.Attrs {
			if a.Domain.IsFinite() {
				for _, v := range a.Domain.Values() {
					b.consts.Add(v)
				}
			}
		}
	}
	return b
}

// AddCCs contributes the constants of V. The paper's Adom also mints a
// fresh value per variable of V, but those values are never consulted:
// CC satisfaction q(I) ⊆ p(Dm) is evaluated on concrete instances, so
// only the variables of T (and, where a procedure instantiates query
// tableaux, of Q) need New values for the small-model property to
// hold. Omitting V's variables keeps Adom — and every |Adom|^k
// enumeration — at its useful size; the decider cross-validation tests
// confirm the answers are unchanged.
func (b *Builder) AddCCs(v *cc.Set) *Builder {
	if v == nil {
		return b
	}
	v.Constants(b.consts)
	return b
}

// AddConstants contributes extra constants.
func (b *Builder) AddConstants(vs *relation.ValueSet) *Builder {
	b.consts.AddAll(vs)
	return b
}

// AddVars contributes extra variables (e.g. the variables of a query's
// tableau, per the Theorem 4.1 construction).
func (b *Builder) AddVars(vars []string) *Builder {
	for _, v := range vars {
		b.addVar(v)
	}
	return b
}

func (b *Builder) addVar(v string) {
	if !b.seen[v] {
		b.seen[v] = true
		b.vars = append(b.vars, v)
	}
}

// Build materialises the active domain, minting two fresh constants
// per contributed variable, guaranteed distinct from every constant
// seen. Two (rather than the paper's one) keeps intersection-based
// certain-answer computations exact: a tuple mentioning a fresh value
// is always cancelled by the twin's isomorphic instance, so no
// spurious "generic" tuple survives a certain-answer intersection —
// for the ∀-style checks of the strong model, extra constants only
// enlarge the family of instances inspected and preserve exactness.
func (b *Builder) Build() *Adom {
	a := &Adom{set: b.consts.Clone(), fresh: make(map[string]relation.Value, len(b.vars))}
	mint := func(base string) relation.Value {
		candidate := relation.Value("•" + base)
		for i := 0; a.set.Contains(candidate); i++ {
			candidate = relation.Value(fmt.Sprintf("•%s_%d", base, i))
		}
		a.set.Add(candidate)
		return candidate
	}
	for _, v := range b.vars {
		a.fresh[v] = mint(v)
		mint(v + "ʹ") // interchangeable twin
	}
	a.values = a.set.Values()
	return a
}

// Values returns the members of the domain in sorted order.
func (a *Adom) Values() []relation.Value { return a.values }

// Set returns the domain as a value set (shared; do not mutate).
func (a *Adom) Set() *relation.ValueSet { return a.set }

// Len returns the domain size.
func (a *Adom) Len() int { return len(a.values) }

// Fresh returns the New constant minted for a variable, or "" when the
// variable was not contributed.
func (a *Adom) Fresh(varName string) relation.Value { return a.fresh[varName] }

// Contains reports domain membership.
func (a *Adom) Contains(v relation.Value) bool { return a.set.Contains(v) }

// CandidatesFor returns the values a variable may take: the members of
// its finite attribute domain if it has one (the paper requires
// valuations of finite-domain variables to stay inside that domain —
// those values are part of Adom), otherwise the whole domain.
func (a *Adom) CandidatesFor(dom *relation.Domain) []relation.Value {
	if dom.IsFinite() {
		return dom.Values()
	}
	return a.values
}

// Enumerate calls fn with every total valuation of vars over the
// domain (respecting per-variable finite domains in doms). Enumeration
// stops early when fn returns false or an error. maxValuations > 0
// caps the number of valuations tried (ErrBudget beyond).
func (a *Adom) Enumerate(vars []string, doms map[string]*relation.Domain, maxValuations int,
	fn func(ctable.Valuation) (bool, error)) error {
	mu := make(ctable.Valuation, len(vars))
	tried := 0
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(vars) {
			tried++
			if maxValuations > 0 && tried > maxValuations {
				return false, fmt.Errorf("%w (> %d valuations)", ErrBudget, maxValuations)
			}
			return fn(mu)
		}
		v := vars[i]
		for _, val := range a.CandidatesFor(doms[v]) {
			mu[v] = val
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		delete(mu, v)
		return true, nil
	}
	_, err := rec(0)
	return err
}

// Count returns the number of total valuations Enumerate would try,
// capped at limit (returns limit+1 when the true count exceeds it).
func (a *Adom) Count(vars []string, doms map[string]*relation.Domain, limit int) int {
	total := 1
	for _, v := range vars {
		n := len(a.CandidatesFor(doms[v]))
		if n == 0 {
			return 0
		}
		if total > limit/n+1 {
			return limit + 1
		}
		total *= n
		if total > limit {
			return limit + 1
		}
	}
	return total
}
