package httpx

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"relcomplete/internal/obs"
)

// The /metrics route negotiates the OpenMetrics exposition: an Accept
// header or ?format=openmetrics selects it (with exemplars and the
// # EOF terminator), anything else keeps the classic Prometheus text.
func TestMetricsOpenMetricsNegotiation(t *testing.T) {
	m := obs.NewMetrics()
	m.ObserveExemplar(obs.DeciderWallNs, 5e6, "aaaabbbbccccddddaaaabbbbccccdddd")
	s, err := Serve("127.0.0.1:0", NewDebugMux(m))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr().String()

	get := func(url, accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest("GET", url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get(base+"/metrics", "application/openmetrics-text; version=1.0.0")
	if ctype != obs.ContentTypeOpenMetrics {
		t.Fatalf("Accept negotiation Content-Type = %q", ctype)
	}
	if err := obs.ValidateOpenMetricsText([]byte(body)); err != nil {
		t.Fatalf("negotiated OpenMetrics body invalid: %v", err)
	}
	if !strings.Contains(body, `# {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"}`) {
		t.Fatal("OpenMetrics body missing the recorded exemplar")
	}

	body, ctype = get(base+"/metrics?format=openmetrics", "")
	if ctype != obs.ContentTypeOpenMetrics || !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("?format=openmetrics served Content-Type %q", ctype)
	}

	body, ctype = get(base+"/metrics", "")
	if ctype != obs.ContentTypePrometheus {
		t.Fatalf("default Content-Type = %q", ctype)
	}
	if err := obs.ValidatePrometheusText([]byte(body)); err != nil {
		t.Fatalf("default body failed the Prometheus grammar: %v", err)
	}
	if strings.Contains(body, "# {") {
		t.Fatal("exemplar syntax leaked into the Prometheus exposition")
	}
}

func TestRegisterPlans(t *testing.T) {
	mux := http.NewServeMux()
	var gotK int
	RegisterPlans(mux, func(k int) any {
		gotK = k
		return []map[string]any{{"query": "Q", "runs": 7}}
	})
	s, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr().String()

	resp, err := http.Get(base + "/debug/plans")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Plans []struct {
			Query string `json:"query"`
		} `json:"plans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if gotK != 10 {
		t.Fatalf("default k = %d, want 10", gotK)
	}
	if len(out.Plans) != 1 || out.Plans[0].Query != "Q" {
		t.Fatalf("plans payload = %+v", out)
	}

	if resp, err = http.Get(base + "/debug/plans?k=3"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gotK != 3 {
		t.Fatalf("k=3 parsed as %d", gotK)
	}

	if resp, err = http.Get(base + "/debug/plans?k=zero"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k answered %d, want 400", resp.StatusCode)
	}
}

// captureSink retains every exported span for assertions.
type captureSink struct {
	mu    sync.Mutex
	spans []obs.SpanData
}

func (s *captureSink) Export(batch []obs.SpanData) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spans = append(s.spans, batch...)
	return nil
}

func (s *captureSink) Close() error { return nil }

func TestAccessLogExport(t *testing.T) {
	sink := &captureSink{}
	exporter := obs.NewSpanExporter(sink, obs.ExporterConfig{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A handler-side child proves the whole tree is exported, not
		// just the root.
		child := obs.SpanFromContext(r.Context()).StartChild("decide")
		child.End()
		w.WriteHeader(http.StatusOK)
	})
	s, err := Serve("127.0.0.1:0", AccessLogExport(nil, exporter, inner))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	req, err := http.NewRequest("GET", "http://"+s.Addr().String()+"/v1/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	echoed := resp.Header.Get("traceparent")
	if !strings.Contains(echoed, "0123456789abcdef0123456789abcdef") {
		t.Fatalf("response traceparent %q does not carry the client's trace id", echoed)
	}

	// Close drains the queue, so after it the sink holds the tree.
	if err := exporter.Close(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.spans) != 2 {
		t.Fatalf("exported %d spans, want child + root", len(sink.spans))
	}
	names := map[string]bool{}
	for _, sp := range sink.spans {
		if sp.TraceID != "0123456789abcdef0123456789abcdef" {
			t.Fatalf("span %q exported under trace %q, want the client's", sp.Name, sp.TraceID)
		}
		names[sp.Name] = true
	}
	if !names["decide"] || !names["GET /v1/x"] {
		t.Fatalf("exported span names = %v", names)
	}
}

// AccessLog without an exporter is byte-for-byte the old middleware: a
// nil exporter drops nothing and exports nothing.
func TestAccessLogNilExporter(t *testing.T) {
	h := AccessLogExport(nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	s, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr().String() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent || resp.Header.Get("traceparent") == "" {
		t.Fatalf("status=%d traceparent=%q", resp.StatusCode, resp.Header.Get("traceparent"))
	}
}
