// Package httpx is the HTTP plumbing shared by cmd/rcbench's debug
// endpoint and the cmd/rcserved daemon: an eagerly-bound server with
// one graceful-shutdown discipline (context-bounded Shutdown, hard
// Close on expiry, idempotent under double shutdown) and the standard
// debug mux (/metrics Prometheus exposition, /debug/vars expvar,
// /debug/pprof). Keeping the shutdown path in one place means a fix to
// the drain logic reaches both binaries.
package httpx

import (
	"context"
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"time"

	"relcomplete/internal/obs"
)

// CloseTimeout bounds Close's graceful-drain phase; past it the server
// hard-closes its connections.
const CloseTimeout = 2 * time.Second

// Server wraps net.Listener + http.Server with a graceful shutdown
// path: Drain stops accepting, lets in-flight requests finish within
// the context's deadline, then hard-closes whatever remains. A scrape
// or decide racing the process's end is completed, not cut
// mid-response.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when Serve returns

	shutdownOnce sync.Once
	shutdownErr  error
}

// Serve binds addr eagerly — a bad address fails the caller instead of
// silently serving nothing — and serves h in the background until
// Drain or Close.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, done: make(chan struct{})}
	go func() {
		s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Drain gracefully shuts the server down: no new connections, in-flight
// requests run to completion until ctx expires, then hard close. It
// returns nil on a clean drain and ctx's error when the deadline cut
// requests short. Drain and Close are idempotent — concurrent or
// repeated calls share one shutdown and return its result.
func (s *Server) Drain(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		err := s.srv.Shutdown(ctx)
		if err != nil {
			s.srv.Close()
		}
		<-s.done
		s.shutdownErr = err
	})
	return s.shutdownErr
}

// Close is Drain with the default CloseTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), CloseTimeout)
	defer cancel()
	return s.Drain(ctx)
}

// RegisterDebug mounts the shared debug routes on mux: the Prometheus
// exposition of m under /metrics, expvar under /debug/vars and the Go
// profiler under /debug/pprof/.
func RegisterDebug(mux *http.ServeMux, m *obs.Metrics) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		m.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// NewDebugMux is RegisterDebug on a fresh mux.
func NewDebugMux(m *obs.Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, m)
	return mux
}

var (
	publishMu sync.Mutex
	published = map[string]bool{}
)

// PublishSnapshot publishes m's stats snapshot as the expvar variable
// name. expvar.Publish panics on duplicate names; this wrapper makes
// republishing (a second run() in the same test process, both binaries'
// packages under one test run) a no-op — the first metrics instance
// wins for the life of the process.
func PublishSnapshot(name string, m *obs.Metrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
