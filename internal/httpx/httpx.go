// Package httpx is the HTTP plumbing shared by cmd/rcbench's debug
// endpoint and the cmd/rcserved daemon: an eagerly-bound server with
// one graceful-shutdown discipline (context-bounded Shutdown, hard
// Close on expiry, idempotent under double shutdown) and the standard
// debug mux (/metrics Prometheus exposition, /debug/vars expvar,
// /debug/pprof). Keeping the shutdown path in one place means a fix to
// the drain logic reaches both binaries.
package httpx

import (
	"context"
	"encoding/json"
	"expvar"
	"log/slog"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"sync"
	"time"

	"relcomplete/internal/obs"
)

// CloseTimeout bounds Close's graceful-drain phase; past it the server
// hard-closes its connections.
const CloseTimeout = 2 * time.Second

// Server wraps net.Listener + http.Server with a graceful shutdown
// path: Drain stops accepting, lets in-flight requests finish within
// the context's deadline, then hard-closes whatever remains. A scrape
// or decide racing the process's end is completed, not cut
// mid-response.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // closed when Serve returns

	shutdownOnce sync.Once
	shutdownErr  error
}

// Serve binds addr eagerly — a bad address fails the caller instead of
// silently serving nothing — and serves h in the background until
// Drain or Close.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, done: make(chan struct{})}
	go func() {
		s.srv.Serve(ln)
		close(s.done)
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Drain gracefully shuts the server down: no new connections, in-flight
// requests run to completion until ctx expires, then hard close. It
// returns nil on a clean drain and ctx's error when the deadline cut
// requests short. Drain and Close are idempotent — concurrent or
// repeated calls share one shutdown and return its result.
func (s *Server) Drain(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		err := s.srv.Shutdown(ctx)
		if err != nil {
			s.srv.Close()
		}
		<-s.done
		s.shutdownErr = err
	})
	return s.shutdownErr
}

// Close is Drain with the default CloseTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), CloseTimeout)
	defer cancel()
	return s.Drain(ctx)
}

// RegisterDebug mounts the shared debug routes on mux: the metrics
// exposition of m under /metrics (Prometheus text by default,
// OpenMetrics with exemplars when the client asks via an Accept header
// or ?format=openmetrics), expvar under /debug/vars and the Go
// profiler under /debug/pprof/.
func RegisterDebug(mux *http.ServeMux, m *obs.Metrics) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if obs.WantsOpenMetrics(r.Header.Get("Accept"), r.URL.Query().Get("format")) {
			w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
			m.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", obs.ContentTypePrometheus)
		m.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}

// NewDebugMux is RegisterDebug on a fresh mux.
func NewDebugMux(m *obs.Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, m)
	return mux
}

// RegisterPlans mounts a GET /debug/plans endpoint serving top(k) as
// {"plans": ...} JSON. top is called with the requested k (query
// parameter ?k=, default 10) and returns a JSON-marshalable slice of
// plan-profile stats; keeping it a callback lets callers hand in
// eval.ProfileRegistry.Top without this package depending on the
// evaluator.
func RegisterPlans(mux *http.ServeMux, top func(k int) any) {
	mux.HandleFunc("GET /debug/plans", func(w http.ResponseWriter, r *http.Request) {
		k := 10
		if s := r.URL.Query().Get("k"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				http.Error(w, "bad k", http.StatusBadRequest)
				return
			}
			k = n
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"plans": top(k)})
	})
}

// statusWriter captures the response status and byte count for the
// access log without interposing on the body path.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it streams.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps next with request tracing and a structured access
// log: each request gets a root span (adopting the client's W3C
// traceparent header when present, minting fresh ids otherwise)
// carried on the request context, the response echoes the request's
// identity in a traceparent header, and one JSON line per request goes
// to l with the trace id, method, path, status, response bytes and
// wall time. A request arriving with a span already on its context
// (nested middleware) is logged against that span instead of opening a
// second trace. l may be nil, which disables the logging but keeps the
// tracing.
func AccessLog(l *slog.Logger, next http.Handler) http.Handler {
	return AccessLogExport(l, nil, next)
}

// AccessLogExport is AccessLog with an optional span export pipeline:
// when exporter is non-nil and this middleware opened the request's
// root span, the finished span tree is enqueued on the exporter after
// the root ends. Enqueue never blocks, so a slow or wedged sink costs
// dropped spans, not request latency. A nil exporter makes this
// exactly AccessLog.
func AccessLogExport(l *slog.Logger, exporter *obs.SpanExporter, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		root := obs.SpanFromContext(r.Context())
		if root == nil {
			rec := obs.NewSpanRecorder(0)
			root = rec.Root(r.Method+" "+r.URL.Path, r.Header.Get("traceparent"))
			defer func() {
				root.End()
				exporter.Enqueue(rec.Spans())
			}()
			r = r.WithContext(obs.ContextWithSpan(r.Context(), root))
		}
		w.Header().Set("traceparent", root.Traceparent())
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		if l != nil {
			l.LogAttrs(r.Context(), slog.LevelInfo, "access",
				slog.String("trace_id", root.Trace().String()),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Float64("duration_ms", float64(time.Since(start).Nanoseconds())/1e6),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

var (
	publishMu sync.Mutex
	published = map[string]bool{}
)

// PublishSnapshot publishes m's stats snapshot as the expvar variable
// name. expvar.Publish panics on duplicate names; this wrapper makes
// republishing (a second run() in the same test process, both binaries'
// packages under one test run) a no-op — the first metrics instance
// wins for the life of the process.
func PublishSnapshot(name string, m *obs.Metrics) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
