package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"relcomplete/internal/obs"
)

// The debug mux end to end: /metrics must pass the in-repo Prometheus
// grammar check, /debug/vars must expose the published snapshot, and
// /debug/pprof/ must answer.
func TestDebugMux(t *testing.T) {
	m := obs.NewMetrics()
	m.Inc(obs.ModelsChecked)
	PublishSnapshot("httpx_test_solver", m)
	s, err := Serve("127.0.0.1:0", NewDebugMux(m))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr().String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentTypePrometheus {
		t.Fatalf("Content-Type = %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheusText(body); err != nil {
		t.Fatalf("/metrics failed the exposition grammar: %v", err)
	}
	if !strings.Contains(string(body), "relcomplete_models_checked_total") {
		t.Fatalf("/metrics missing counter family:\n%s", body)
	}

	respV, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	err = json.NewDecoder(respV.Body).Decode(&vars)
	respV.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vars["httpx_test_solver"]; !ok {
		t.Fatalf("published snapshot missing from expvar: %v", vars)
	}

	respP, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	respP.Body.Close()
	if respP.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", respP.StatusCode)
	}
}

// A second bind on a taken address must fail eagerly.
func TestBindFailure(t *testing.T) {
	s, err := Serve("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Serve(s.Addr().String(), http.NewServeMux()); err == nil {
		t.Fatal("bind on a taken address should succeed for exactly one server")
	}
}

// Close must be idempotent: a double (and concurrent) shutdown shares
// one result, and the listener answers nothing afterwards.
func TestDoubleShutdown(t *testing.T) {
	s, err := Serve("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Close #%d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// Drain must let an in-flight request finish, and report the context
// error when the deadline cuts one short.
func TestDrainWaitsForInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "done")
	})
	s, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr().String() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- string(body)
	}()
	<-entered
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with room to finish: %v", err)
	}
	if body := <-got; body != "done" {
		t.Fatalf("in-flight request cut short: %q", body)
	}
}

func TestDrainDeadlineExpired(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	s, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	go http.Get("http://" + s.Addr().String() + "/stuck")
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain past its deadline should report the context error")
	}
}

func TestPublishSnapshotIdempotent(t *testing.T) {
	m := obs.NewMetrics()
	PublishSnapshot("httpx_test_dup", m)
	PublishSnapshot("httpx_test_dup", m) // must not panic
}

// AccessLog: root-span management (traceparent adoption and echo), the
// status/byte capture, and the JSON access-log line itself.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}), nil))

	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if obs.SpanFromContext(r.Context()) == nil {
			t.Error("no span on the handler context")
		}
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "short and stout")
	})
	srv, err := Serve("127.0.0.1:0", AccessLog(logger, inner))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, _ := http.NewRequest(http.MethodGet, "http://"+srv.Addr().String()+"/brew", nil)
	req.Header.Set("traceparent", tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("traceparent"); !strings.HasPrefix(got, "00-0af7651916cd43dd8448eb211c80319c-") {
		t.Errorf("response traceparent = %q, client trace not adopted", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	var rec map[string]any
	for {
		mu.Lock()
		raw := buf.String()
		mu.Unlock()
		if line := strings.TrimSpace(raw); line != "" {
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("access line not JSON: %v (%q)", err, line)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no access log line")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rec["msg"] != "access" || rec["trace_id"] != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("access line: %v", rec)
	}
	if rec["method"] != "GET" || rec["path"] != "/brew" {
		t.Errorf("access line: %v", rec)
	}
	if st, _ := rec["status"].(float64); int(st) != http.StatusTeapot {
		t.Errorf("status = %v", rec["status"])
	}
	if n, _ := rec["bytes"].(float64); int(n) != len("short and stout") {
		t.Errorf("bytes = %v", rec["bytes"])
	}
	if _, ok := rec["duration_ms"].(float64); !ok {
		t.Errorf("duration_ms missing: %v", rec)
	}
}

// A nil logger keeps the tracing (traceparent echo) without logging;
// a handler that never calls WriteHeader logs status 200.
func TestAccessLogNilLogger(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	srv, err := Serve("127.0.0.1:0", AccessLog(nil, inner))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if tp := resp.Header.Get("traceparent"); len(tp) != 55 {
		t.Errorf("traceparent = %q, want a minted 55-char header", tp)
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
