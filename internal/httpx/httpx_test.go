package httpx

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"relcomplete/internal/obs"
)

// The debug mux end to end: /metrics must pass the in-repo Prometheus
// grammar check, /debug/vars must expose the published snapshot, and
// /debug/pprof/ must answer.
func TestDebugMux(t *testing.T) {
	m := obs.NewMetrics()
	m.Inc(obs.ModelsChecked)
	PublishSnapshot("httpx_test_solver", m)
	s, err := Serve("127.0.0.1:0", NewDebugMux(m))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr().String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != obs.ContentTypePrometheus {
		t.Fatalf("Content-Type = %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheusText(body); err != nil {
		t.Fatalf("/metrics failed the exposition grammar: %v", err)
	}
	if !strings.Contains(string(body), "relcomplete_models_checked_total") {
		t.Fatalf("/metrics missing counter family:\n%s", body)
	}

	respV, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	err = json.NewDecoder(respV.Body).Decode(&vars)
	respV.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vars["httpx_test_solver"]; !ok {
		t.Fatalf("published snapshot missing from expvar: %v", vars)
	}

	respP, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	respP.Body.Close()
	if respP.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", respP.StatusCode)
	}
}

// A second bind on a taken address must fail eagerly.
func TestBindFailure(t *testing.T) {
	s, err := Serve("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := Serve(s.Addr().String(), http.NewServeMux()); err == nil {
		t.Fatal("bind on a taken address should succeed for exactly one server")
	}
}

// Close must be idempotent: a double (and concurrent) shutdown shares
// one result, and the listener answers nothing afterwards.
func TestDoubleShutdown(t *testing.T) {
	s, err := Serve("127.0.0.1:0", http.NewServeMux())
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Close #%d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// Drain must let an in-flight request finish, and report the context
// error when the deadline cuts one short.
func TestDrainWaitsForInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "done")
	})
	s, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr().String() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- string(body)
	}()
	<-entered
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain with room to finish: %v", err)
	}
	if body := <-got; body != "done" {
		t.Fatalf("in-flight request cut short: %q", body)
	}
}

func TestDrainDeadlineExpired(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	s, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	go http.Get("http://" + s.Addr().String() + "/stuck")
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain past its deadline should report the context error")
	}
}

func TestPublishSnapshotIdempotent(t *testing.T) {
	m := obs.NewMetrics()
	PublishSnapshot("httpx_test_dup", m)
	PublishSnapshot("httpx_test_dup", m) // must not panic
}
