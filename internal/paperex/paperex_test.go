package paperex

import (
	"testing"

	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/eval"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// ---------------------------------------------------------------------------
// Full Figure 1: structure and cheap analyses.
// ---------------------------------------------------------------------------

func TestFullFigure1Shape(t *testing.T) {
	s := Full()
	if s.T.Size() != 5 {
		t.Fatalf("Figure 1 has 5 rows, got %d", s.T.Size())
	}
	vars := s.T.Vars()
	if len(vars) != 4 { // x, z, w, u
		t.Fatalf("Figure 1 has variables x, z, w, u; got %v", vars)
	}
	if s.T.IsGround() {
		t.Fatal("Figure 1 is not ground")
	}
}

func TestFullFigure1ValuationJudgements(t *testing.T) {
	s := Full()
	p, err := s.Problem(s.Q1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Example 1.1's reading of t2/t3 conditions: a valuation violating
	// t2's z ≠ 2001 drops the row.
	mu := ctable.Valuation{"x": "Grace", "z": "2001", "w": "LON", "u": "05"}
	db, err := s.T.Apply(mu)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("MVisit").Len() != 4 {
		t.Fatalf("t2 should be dropped under z = 2001: %d rows", db.Relation("MVisit").Len())
	}
	closed, err := p.PartiallyClosed(db)
	if err != nil {
		t.Fatal(err)
	}
	if !closed {
		t.Fatal("the valuation should be partially closed")
	}
	// Q1 returns John on every partially closed valuation.
	ans, err := eval.Answers(db, s.Q1, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Equal(relation.T("John")) {
		t.Fatalf("Q1 = %v, want {John}", ans)
	}
}

func TestFullFigure1FDViolationDetected(t *testing.T) {
	s := Full()
	p, err := s.Problem(s.Q1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A second name for NHS 915-15-335 violates the FD CCs.
	mu := ctable.Valuation{"x": "Grace", "z": "2000", "w": "LON", "u": "05"}
	db, err := s.T.Apply(mu)
	if err != nil {
		t.Fatal(err)
	}
	db.MustInsert("MVisit", relation.T("915-15-335", "NotJohn", "LON", "2000", "M", "16/03/2015", "Flu", "09"))
	closed, err := p.PartiallyClosed(db)
	if err != nil {
		t.Fatal(err)
	}
	if closed {
		t.Fatal("FD violation must break partial closure")
	}
}

func TestFullFigure1EDIBoundViolationDetected(t *testing.T) {
	s := Full()
	p, err := s.Problem(s.Q1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mu := ctable.Valuation{"x": "Grace", "z": "2000", "w": "LON", "u": "05"}
	db, _ := s.T.Apply(mu)
	// An Edinburgh patient born 2000 missing from master data violates
	// the Example 2.1 CC.
	db.MustInsert("MVisit", relation.T("999-99-999", "Ghost", "EDI", "2000", "M", "16/03/2015", "Flu", "09"))
	closed, err := p.PartiallyClosed(db)
	if err != nil {
		t.Fatal(err)
	}
	if closed {
		t.Fatal("master bound violation must break partial closure")
	}
}

func TestFullFigure1Consistent(t *testing.T) {
	// Mod(T) is non-empty: early termination finds a model without
	// exhausting the Adom^4 valuation space.
	s := Full()
	p, err := s.Problem(s.Q1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Consistent(s.T)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Figure 1 is consistent")
	}
}

// ---------------------------------------------------------------------------
// Reduced scenario: the Example 1.1–2.3 completeness judgements.
// ---------------------------------------------------------------------------

func TestReducedQ1StronglyComplete(t *testing.T) {
	// Example 1.1/2.3: the John row makes the database complete for Q1
	// — the FD pins the name, the CC pins Edinburgh-2000 rows to Dm.
	s := Reduced()
	p, err := s.Problem(s.Q1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.RCDP(s.T, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("T should be strongly complete for Q1")
	}
}

func TestReducedQ2IncompleteThenCompletable(t *testing.T) {
	// Example 2.2: T is not complete for Q2 (NHS 915-15-321 absent),
	// and becomes complete after adding a single tuple for that NHS —
	// the FD guarantees no second name can ever appear.
	s := Reduced()
	p, err := s.Problem(s.Q2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.RCDP(s.T, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("T should not be complete for Q2")
	}
	ext, err := s.WithRow(ctable.Row{Terms: []query.Term{
		query.C("915-15-321"), query.C("Anna"), query.C("LON"), query.C("2000")}})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = p.RCDP(ext, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("adding the 915-15-321 tuple should make T complete for Q2")
	}
}

func TestReducedQ4CompletenessAcrossModels(t *testing.T) {
	// Example 2.3 (adapted to the reduced schema): with a missing name
	// x and a missing year z on the Bob row, T is viably complete for
	// Q4 (µ = {x ↦ Bob, z ↦ 2000}) and weakly complete, but not
	// strongly complete.
	s := Reduced()
	withVar, err := s.WithRow(ctable.Row{
		Terms: []query.Term{query.C("915-15-336"), query.V("x"), query.C("EDI"), query.V("z")},
		Cond:  ctable.Cond(ctable.CNeq(query.V("z"), query.C("2001"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Problem(s.Q4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	viable, err := p.RCDP(withVar, core.Viable)
	if err != nil {
		t.Fatal(err)
	}
	if !viable {
		t.Fatal("T should be viably complete for Q4 (Example 2.3)")
	}
	weak, err := p.RCDP(withVar, core.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !weak {
		t.Fatal("T should be weakly complete for Q4 (Example 2.3)")
	}
	strong, err := p.RCDP(withVar, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if strong {
		t.Fatal("T should NOT be strongly complete for Q4 (Example 2.3)")
	}
}

func TestReducedQ1MinimalityExample24(t *testing.T) {
	// Example 2.4: Figure 1's T is strongly complete for Q1 but not
	// minimal — the John row alone suffices. In the reduced scenario
	// T is exactly that single row, so it IS minimal; adding an
	// unrelated row breaks minimality.
	s := Reduced()
	p, err := s.Problem(s.Q1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.MINP(s.T, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("the single John row should be minimally complete for Q1")
	}
	bigger, err := s.WithRow(ctable.Row{Terms: []query.Term{
		query.C("915-15-358"), query.C("Jack"), query.C("LON"), query.C("2000")}})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = p.MINP(bigger, core.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the Jack row is excess data for Q1: not minimal")
	}
}

// ---------------------------------------------------------------------------
// Example 5.5: in the weak model, minimality cannot be decided by
// single-tuple removals.
// ---------------------------------------------------------------------------

func TestExample55WeakMinimality(t *testing.T) {
	schema := relation.MustDBSchema(
		relation.MustSchema("R1", relation.Attr("A", nil)),
		relation.MustSchema("R2", relation.Attr("B", nil)),
	)
	q := query.MustParseQuery("Q(x) := exists y, z: R1(y) & R2(z) & x = 'a'")
	p := core.MustProblem(schema, core.CalcQuery(q), nil, nil, core.Options{})

	i0 := ctable.NewCInstance(schema)
	i0.MustAddRow("R1", ctable.Row{Terms: []query.Term{query.C("0")}})
	i0.MustAddRow("R2", ctable.Row{Terms: []query.Term{query.C("1")}})

	// I0 is weakly complete: every extension answers {a} already.
	ok, err := p.RCDP(i0, core.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("I0 should be weakly complete (Example 5.5)")
	}
	// The empty instance is weakly complete too (extensions disagree on
	// emptiness of R1/R2, so certain answers over extensions are ∅).
	empty := ctable.NewCInstance(schema)
	ok, err = p.RCDP(empty, core.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("∅ should be weakly complete (Example 5.5)")
	}
	// Hence I0 is not minimal.
	ok, err = p.MINP(i0, core.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("I0 is not minimal: ∅ is weakly complete (Example 5.5)")
	}
}

// ---------------------------------------------------------------------------
// Example 5.3: the FO query distinguishing I1 ⊆ I2 from I1 ⊄ I2, at
// the evaluation level, and the RCQP dichotomy at the API level.
// ---------------------------------------------------------------------------

func TestExample53FOQueryEvaluation(t *testing.T) {
	schema := relation.MustDBSchema(
		relation.MustSchema("R1", relation.Attr("A", nil)),
		relation.MustSchema("R2", relation.Attr("B", nil)),
	)
	// Q(v) = {(a)} if R1 ⊆ R2, {(b)} otherwise.
	q := query.MustParseQuery(
		"Q(v) := (v = 'a' & (forall y: (! R1(y) | R2(y)))) | (v = 'b' & ! (forall y: (! R1(y) | R2(y))))")
	db := relation.NewDatabase(schema)
	db.MustInsert("R1", relation.T("1"))
	db.MustInsert("R2", relation.T("1"))
	db.MustInsert("R2", relation.T("2"))
	ans, err := eval.Answers(db, q, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Equal(relation.T("a")) {
		t.Fatalf("R1 ⊆ R2: Q = %v, want {a}", ans)
	}
	db.MustInsert("R1", relation.T("9"))
	ans, err = eval.Answers(db, q, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Equal(relation.T("b")) {
		t.Fatalf("R1 ⊄ R2: Q = %v, want {b}", ans)
	}

	// The API reflects the Example 5.3 dichotomy: RCQPw(FO) is
	// undecidable for ground instances and open for c-instances.
	p := core.MustProblem(schema, core.CalcQuery(q), nil, nil, core.Options{})
	if _, err := p.RCQPGround(core.Weak); err == nil {
		t.Fatal("ground RCQPw(FO) must be refused")
	}
	if _, err := p.RCQP(core.Weak); err == nil {
		t.Fatal("c-instance RCQPw(FO) must be refused (open problem)")
	}
}
