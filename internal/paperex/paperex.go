// Package paperex materialises the paper's running example: the
// Figure 1 c-table of UK patient visits (MVisit), the Patientm master
// data, the containment constraints of Example 2.1 (year-range
// containment plus the FD NHS → name, GD encoded as CCs), and the
// queries Q1–Q4 of Examples 1.1–2.3.
//
// Two scenarios are provided. Full is Figure 1 verbatim — eight
// attributes, five rows, the t2/t3 conditions — used by the quickstart
// example and by tests of the cheap analyses (partial closure, CC
// violation detection, query evaluation under chosen valuations).
// Reduced keeps the four attributes the examples' queries actually
// touch (NHS, name, city, yob), which keeps the exponential deciders
// within unit-test budgets while preserving every judgement the paper
// makes about Q1, Q2 and Q4.
package paperex

import (
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Scenario bundles one instantiation of the patient example.
type Scenario struct {
	Data   *relation.DBSchema
	MVisit *relation.Schema
	Master *relation.DBSchema
	Dm     *relation.Database
	CCs    *cc.Set
	T      *ctable.CInstance // the Figure 1 c-table
	Q1     *query.Query      // Example 1.1
	Q2     *query.Query      // Example 2.2
	Q4     *query.Query      // Example 2.3
}

// Problem assembles a core.Problem for one of the scenario's queries.
func (s *Scenario) Problem(q *query.Query, opts core.Options) (*core.Problem, error) {
	return core.NewProblem(s.Data, core.CalcQuery(q), s.Dm, s.CCs, opts)
}

// Full is Figure 1 verbatim.
func Full() *Scenario {
	mvisit := relation.MustSchema("MVisit",
		relation.Attr("NHS", nil), relation.Attr("name", nil), relation.Attr("city", nil),
		relation.Attr("yob", nil), relation.Attr("GD", nil), relation.Attr("Date", nil),
		relation.Attr("Diag", nil), relation.Attr("DrID", nil))
	patientm := relation.MustSchema("Patientm",
		relation.Attr("NHS", nil), relation.Attr("name", nil), relation.Attr("yob", nil),
		relation.Attr("zip", nil), relation.Attr("GD", nil))
	mempty := relation.MustSchema("Mempty", relation.Attr("W", nil))

	data := relation.MustDBSchema(mvisit)
	master := relation.MustDBSchema(patientm, mempty)
	dm := relation.NewDatabase(master)
	// The two Edinburgh patients born in 2000 of Example 2.3 plus the
	// record behind Example 2.2's Q2.
	dm.MustInsert("Patientm", relation.T("915-15-335", "John", "2000", "EH8 9AB", "M"))
	dm.MustInsert("Patientm", relation.T("915-15-336", "Bob", "2000", "EH8 9AB", "M"))
	dm.MustInsert("Patientm", relation.T("915-15-321", "Anna", "2000", "EH1 1AA", "F"))

	v := cc.NewSet()
	// Example 2.1: for each year y in range, Edinburgh visits are
	// bounded by master data. The paper ranges over 1991–2014; the
	// years relevant to the queries suffice for every judgement.
	for _, year := range []relation.Value{"1999", "2000", "2001"} {
		v.Add(yearCC(mvisit, patientm, year))
	}
	// The FD NHS → name, GD as CCs against the empty master relation.
	fdCCs, err := cc.FD{Rel: "MVisit", LHS: []string{"NHS"}, RHS: []string{"name", "GD"}}.AsCCs(data, mempty)
	if err != nil {
		panic(err)
	}
	v.Add(fdCCs...)

	t := ctable.NewCInstance(data)
	row := func(vals ...query.Term) ctable.Row { return ctable.Row{Terms: vals} }
	condRow := func(cond ctable.Condition, vals ...query.Term) ctable.Row {
		return ctable.Row{Terms: vals, Cond: cond}
	}
	c := func(v relation.Value) query.Term { return query.C(v) }
	// Figure 1, rows t1–t5.
	t.MustAddRow("MVisit", row(c("915-15-335"), c("John"), c("EDI"), c("2000"), c("M"), c("15/03/2015"), c("Flu"), c("01")))
	t.MustAddRow("MVisit", condRow(
		ctable.Cond(ctable.CNeq(query.V("z"), query.C("2001"))),
		c("915-15-356"), query.V("x"), c("EDI"), query.V("z"), c("F"), c("15/03/2015"), c("Diabetes"), c("01")))
	t.MustAddRow("MVisit", condRow(
		ctable.Cond(ctable.CNeq(query.V("w"), query.C("EDI"))),
		c("915-15-357"), c("Mary"), query.V("w"), c("2000"), c("F"), c("15/03/2015"), c("Influenza"), query.V("u")))
	t.MustAddRow("MVisit", row(c("915-15-358"), c("Jack"), c("LON"), c("2000"), c("M"), c("15/03/2015"), c("Influenza"), c("02")))
	t.MustAddRow("MVisit", row(c("915-15-359"), c("Louis"), c("LON"), c("2000"), c("M"), c("15/03/2015"), c("Diabetes"), c("03")))

	return &Scenario{
		Data: data, MVisit: mvisit, Master: master, Dm: dm, CCs: v, T: t,
		Q1: query.MustParseQuery(
			"Q1(na) := exists c, g, d, di, i: MVisit('915-15-335', na, c, '2000', g, d, di, i) & c = 'EDI'"),
		Q2: query.MustParseQuery(
			"Q2(na) := exists c, g, d, di, i: MVisit('915-15-321', na, c, '2000', g, d, di, i)"),
		Q4: query.MustParseQuery(
			"Q4(na) := exists n, g, di, i: MVisit(n, na, 'EDI', '2000', g, '15/03/2015', di, i)"),
	}
}

// yearCC is the Example 2.1 constraint for one year over the full
// 8-attribute schema.
func yearCC(mvisit, patientm *relation.Schema, year relation.Value) *cc.Constraint {
	left := query.MustQuery("q"+string(year),
		[]query.Term{query.V("n"), query.V("na"), query.V("g")},
		query.Ex([]string{"c", "d", "di", "i"}, query.Conj(
			query.NewAtom(mvisit.Name,
				query.V("n"), query.V("na"), query.V("c"), query.C(year),
				query.V("g"), query.V("d"), query.V("di"), query.V("i")),
			query.EqT(query.V("c"), query.C("EDI")))))
	right := query.MustQuery("p"+string(year),
		[]query.Term{query.V("n"), query.V("na"), query.V("g")},
		query.Ex([]string{"z"}, query.NewAtom(patientm.Name,
			query.V("n"), query.V("na"), query.C(year), query.V("z"), query.V("g"))))
	return cc.Must("edi_"+string(year), left, right)
}

// Reduced is the four-attribute projection of Figure 1: MVisit(NHS,
// name, city, yob), the same master patients, the year-2000 CC and the
// FD NHS → name. Every Example 1.1–2.4 judgement about Q1, Q2 and Q4
// carries over; the decider inputs shrink from |Adom|^4 valuations
// over ~40 constants to a unit-test-sized search.
func Reduced() *Scenario {
	mvisit := relation.MustSchema("MVisit",
		relation.Attr("NHS", nil), relation.Attr("name", nil),
		relation.Attr("city", nil), relation.Attr("yob", nil))
	patientm := relation.MustSchema("Patientm",
		relation.Attr("NHS", nil), relation.Attr("name", nil), relation.Attr("yob", nil))
	mempty := relation.MustSchema("Mempty", relation.Attr("W", nil))

	data := relation.MustDBSchema(mvisit)
	master := relation.MustDBSchema(patientm, mempty)
	dm := relation.NewDatabase(master)
	dm.MustInsert("Patientm", relation.T("915-15-335", "John", "2000"))
	dm.MustInsert("Patientm", relation.T("915-15-336", "Bob", "2000"))

	v := cc.NewSet()
	v.Add(cc.Must("edi_2000",
		query.MustQuery("q", []query.Term{query.V("n"), query.V("na")},
			query.Ex([]string{"c"}, query.Conj(
				query.NewAtom("MVisit", query.V("n"), query.V("na"), query.V("c"), query.C("2000")),
				query.EqT(query.V("c"), query.C("EDI"))))),
		query.MustQuery("p", []query.Term{query.V("n"), query.V("na")},
			query.NewAtom("Patientm", query.V("n"), query.V("na"), query.C("2000")))))
	fdCCs, err := cc.FD{Rel: "MVisit", LHS: []string{"NHS"}, RHS: []string{"name"}}.AsCCs(data, mempty)
	if err != nil {
		panic(err)
	}
	v.Add(fdCCs...)

	t := ctable.NewCInstance(data)
	t.MustAddRow("MVisit", ctable.Row{Terms: []query.Term{
		query.C("915-15-335"), query.C("John"), query.C("EDI"), query.C("2000")}})

	return &Scenario{
		Data: data, MVisit: mvisit, Master: master, Dm: dm, CCs: v, T: t,
		Q1: query.MustParseQuery("Q1(na) := exists c: MVisit('915-15-335', na, c, '2000') & c = 'EDI'"),
		Q2: query.MustParseQuery("Q2(na) := exists c: MVisit('915-15-321', na, c, '2000')"),
		Q4: query.MustParseQuery("Q4(na) := exists n: MVisit(n, na, 'EDI', '2000')"),
	}
}

// WithRow returns a copy of the scenario's c-instance extended by one
// MVisit row; a convenience for examples.
func (s *Scenario) WithRow(r ctable.Row) (*ctable.CInstance, error) {
	out := s.T.Clone()
	if err := out.AddRow("MVisit", r); err != nil {
		return nil, fmt.Errorf("paperex: %w", err)
	}
	return out, nil
}
