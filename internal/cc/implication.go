package cc

import (
	"fmt"
	"sort"

	"relcomplete/internal/relation"
)

// This file implements implication reasoning for functional
// dependencies over a single relation via Armstrong's axioms
// (attribute-set closure). FD-only implication is decidable in linear
// time; adding INDs makes it undecidable — which is exactly why
// Proposition 3.1 shows RCDP/RCQP undecidable under FD+IND integrity
// constraints. The closure here serves as the ground-truth oracle for
// the finite families the Proposition 3.1 gadget is exercised on.

// FDClosure computes the closure X⁺ of an attribute set under a set of
// FDs (all on the same relation).
func FDClosure(fds []FD, rel string, attrs []string) []string {
	closure := map[string]bool{}
	for _, a := range attrs {
		closure[a] = true
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			if fd.Rel != rel {
				continue
			}
			all := true
			for _, a := range fd.LHS {
				if !closure[a] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, a := range fd.RHS {
				if !closure[a] {
					closure[a] = true
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(closure))
	for a := range closure {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// FDImplies decides Θ ⊨ φ for FD sets via attribute closure: φ's RHS
// must lie in the closure of its LHS.
func FDImplies(theta []FD, phi FD) bool {
	closure := FDClosure(theta, phi.Rel, phi.LHS)
	in := map[string]bool{}
	for _, a := range closure {
		in[a] = true
	}
	for _, a := range phi.RHS {
		if !in[a] {
			return false
		}
	}
	return true
}

// FDCounterexample builds the classic two-tuple Armstrong witness for
// Θ ⊭ φ: two tuples agreeing exactly on the closure of φ's LHS. It
// returns nil when Θ ⊨ φ. The witness satisfies every FD of Θ and
// violates φ.
func FDCounterexample(theta []FD, phi FD, sch *relation.Schema) (*relation.Instance, error) {
	if FDImplies(theta, phi) {
		return nil, nil
	}
	closure := map[string]bool{}
	for _, a := range FDClosure(theta, phi.Rel, phi.LHS) {
		closure[a] = true
	}
	t1 := make(relation.Tuple, sch.Arity())
	t2 := make(relation.Tuple, sch.Arity())
	for i, a := range sch.AttrNames() {
		t1[i] = "0"
		if closure[a] {
			t2[i] = "0"
		} else {
			t2[i] = "1"
		}
	}
	inst, err := relation.InstanceOf(sch, t1, t2)
	if err != nil {
		return nil, fmt.Errorf("cc: counterexample construction: %w", err)
	}
	return inst, nil
}
