package cc

import (
	"testing"

	"relcomplete/internal/eval"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func TestFDHolds(t *testing.T) {
	sch := relation.MustSchema("R",
		relation.Attr("NHS", nil), relation.Attr("name", nil), relation.Attr("GD", nil))
	fd := FD{Rel: "R", LHS: []string{"NHS"}, RHS: []string{"name", "GD"}}

	ok, err := fd.Holds(relation.MustInstance(sch,
		relation.T("1", "john", "M"), relation.T("2", "mary", "F")))
	if err != nil || !ok {
		t.Fatalf("FD should hold: %v %v", ok, err)
	}

	ok, _ = fd.Holds(relation.MustInstance(sch,
		relation.T("1", "john", "M"), relation.T("1", "jack", "M")))
	if ok {
		t.Fatal("name differs on same NHS: FD must fail")
	}

	if _, err := (FD{Rel: "R", LHS: []string{"nope"}, RHS: []string{"name"}}).Holds(
		relation.MustInstance(sch)); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

// Example 2.1: the FD NHS -> name, GD encoded as CCs against an empty
// master relation detects exactly the violating instances.
func TestFDAsCCs(t *testing.T) {
	data := relation.MustDBSchema(relation.MustSchema("R",
		relation.Attr("NHS", nil), relation.Attr("name", nil), relation.Attr("GD", nil)))
	master := relation.MustDBSchema(relation.MustSchema("Empty", relation.Attr("W", nil)))
	dm := relation.NewDatabase(master)

	fd := FD{Rel: "R", LHS: []string{"NHS"}, RHS: []string{"name", "GD"}}
	ccs, err := fd.AsCCs(data, master.Relation("Empty"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ccs) != 2 {
		t.Fatalf("want one CC per RHS attribute, got %d", len(ccs))
	}
	v := NewSet(ccs...)

	good := relation.NewDatabase(data)
	good.MustInsert("R", relation.T("1", "john", "M"))
	good.MustInsert("R", relation.T("2", "mary", "F"))
	ok, err := v.Satisfied(good, dm, eval.Options{})
	if err != nil || !ok {
		t.Fatalf("satisfying instance flagged: %v %v", ok, err)
	}

	bad := good.WithTuple("R", relation.T("1", "jack", "M"))
	ok, _ = v.Satisfied(bad, dm, eval.Options{})
	if ok {
		t.Fatal("violating instance accepted")
	}

	// Cross-check CC encoding against direct FD checking on random data.
	holds, _ := fd.Holds(bad.Relation("R"))
	if holds {
		t.Fatal("direct check disagrees")
	}
}

func TestFDAsCCsValidation(t *testing.T) {
	data := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	master := relation.MustDBSchema(relation.MustSchema("Empty", relation.Attr("W", nil)))
	if _, err := (FD{Rel: "X", LHS: []string{"A"}, RHS: []string{"A"}}).AsCCs(data, master.Relation("Empty")); err == nil {
		t.Fatal("unknown relation should fail")
	}
	if _, err := (FD{Rel: "R", LHS: []string{"A"}, RHS: []string{"Z"}}).AsCCs(data, master.Relation("Empty")); err == nil {
		t.Fatal("unknown RHS attribute should fail")
	}
}

func TestDenialAsCC(t *testing.T) {
	data := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)))
	master := relation.MustDBSchema(relation.MustSchema("Empty", relation.Attr("W", nil)))
	dm := relation.NewDatabase(master)

	// Denial: no tuple may have A = B.
	viol := query.MustParseQuery("v() := exists x: R(x, x)")
	c, err := DenialAsCC("noloop", viol, master.Relation("Empty"))
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDatabase(data)
	db.MustInsert("R", relation.T("1", "2"))
	ok, _ := c.Satisfied(db, dm, eval.Options{})
	if !ok {
		t.Fatal("no violation yet")
	}
	db.MustInsert("R", relation.T("3", "3"))
	ok, _ = c.Satisfied(db, dm, eval.Options{})
	if ok {
		t.Fatal("loop tuple should violate the denial")
	}

	if _, err := DenialAsCC("bad", query.MustParseQuery("v(x) := R(x, x)"), master.Relation("Empty")); err == nil {
		t.Fatal("non-Boolean violation query should fail")
	}
}

func TestINDHoldsWithin(t *testing.T) {
	sch := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("X", nil)),
	)
	db := relation.NewDatabase(sch)
	ind := IND{FromRel: "R", FromAttrs: []string{"B"}, ToRel: "S", ToAttrs: []string{"X"}}

	db.MustInsert("R", relation.T("1", "2"))
	ok, err := ind.HoldsWithin(db)
	if err != nil || ok {
		t.Fatal("2 not in S: IND must fail")
	}
	db.MustInsert("S", relation.T("2"))
	ok, _ = ind.HoldsWithin(db)
	if !ok {
		t.Fatal("IND should hold now")
	}

	bad := IND{FromRel: "R", FromAttrs: []string{"B"}, ToRel: "Gone", ToAttrs: []string{"X"}}
	if _, err := bad.HoldsWithin(db); err == nil {
		t.Fatal("missing relation should error")
	}
}

func TestINDAsCC(t *testing.T) {
	data := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)))
	master := relation.MustDBSchema(relation.MustSchema("M", relation.Attr("K", nil)))
	ind := IND{FromRel: "R", FromAttrs: []string{"A"}, ToRel: "M", ToAttrs: []string{"K"}}
	c, err := ind.AsCC(data, master)
	if err != nil {
		t.Fatal(err)
	}
	if !IsProjectionCC(c) {
		t.Fatal("IND CC should have projection shape")
	}
	db := relation.NewDatabase(data)
	dm := relation.NewDatabase(master)
	db.MustInsert("R", relation.T("k1", "v"))
	ok, _ := c.Satisfied(db, dm, eval.Options{})
	if ok {
		t.Fatal("k1 not in master")
	}
	dm.MustInsert("M", relation.T("k1"))
	ok, _ = c.Satisfied(db, dm, eval.Options{})
	if !ok {
		t.Fatal("should hold now")
	}
}

func TestINDValidate(t *testing.T) {
	data := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	master := relation.MustDBSchema(relation.MustSchema("M", relation.Attr("K", nil)))
	cases := []IND{
		{FromRel: "R", FromAttrs: []string{"A", "A"}, ToRel: "M", ToAttrs: []string{"K"}},
		{FromRel: "R", FromAttrs: nil, ToRel: "M", ToAttrs: nil},
		{FromRel: "R", FromAttrs: []string{"Z"}, ToRel: "M", ToAttrs: []string{"K"}},
		{FromRel: "R", FromAttrs: []string{"A"}, ToRel: "M", ToAttrs: []string{"Z"}},
	}
	for _, ind := range cases {
		if _, err := ind.AsCC(data, master); err == nil {
			t.Errorf("IND %v should fail validation", ind)
		}
	}
	if _, err := (IND{FromRel: "X", FromAttrs: []string{"A"}, ToRel: "M", ToAttrs: []string{"K"}}).AsCC(data, master); err == nil {
		t.Error("unknown data relation should fail")
	}
	if _, err := (IND{FromRel: "R", FromAttrs: []string{"A"}, ToRel: "X", ToAttrs: []string{"K"}}).AsCC(data, master); err == nil {
		t.Error("unknown master relation should fail")
	}
}

func TestIsProjectionCC(t *testing.T) {
	notProj := MustParse("c", "q(x) := R(x, y) & x != y", "p(x) := exists k: M(x, k)")
	if IsProjectionCC(notProj) {
		t.Fatal("comparison should disqualify projection shape")
	}
	alsoNot := MustParse("c", "q(x) := R(x, x)", "p(x) := M(x)")
	if IsProjectionCC(alsoNot) {
		t.Fatal("repeated variable should disqualify projection shape")
	}
	constHead := MustParse("c", "q('k') := R(x, y)", "p('k') := M(z)")
	if IsProjectionCC(constHead) {
		t.Fatal("constant head should disqualify projection shape")
	}
}
