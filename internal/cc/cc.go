// Package cc implements the containment constraints (CCs) of the paper:
// expressions q(R) ⊆ p(Rm) where q is a conjunctive query (with = and ≠)
// over the database schema R and p is a projection query over the master
// data schema Rm. A ground instance I and master data Dm satisfy the CC
// when q(I) ⊆ p(Dm).
//
// The package also provides the constraint classes the paper discusses
// alongside CCs: functional dependencies and denial constraints (which
// CCs can encode, Example 2.1), and inclusion dependencies (which CCs in
// CQ cannot, Proposition 3.1 — they are kept as a separate type used by
// the undecidability gadget and by the tractable RCQP case of
// Corollary 7.2).
package cc

import (
	"fmt"
	"strings"
	"sync"

	"relcomplete/internal/eval"
	"relcomplete/internal/obs"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Constraint is one containment constraint q(R) ⊆ p(Rm).
type Constraint struct {
	Name  string
	Left  *query.Query // q, over the data schema; must be CQ
	Right *query.Query // p, over the master schema; must be CQ (projection queries are the paper's case)

	// planMu guards the lazily compiled plans and the per-master RHS
	// answer cache. The deciders check the same CC against thousands of
	// candidate instances from worker goroutines while Dm stays fixed,
	// so both sides compile once and p(Dm) is keyed by the master
	// database identity.
	planMu    sync.Mutex
	planTried bool
	leftPlan  *eval.Plan
	rightPlan *eval.Plan
	rhsCache  map[*relation.Database]*rhsEntry
}

// rhsEntry memoises p(Dm) for one master database. Databases mutate in
// place only by growing (inserts and SetRelation; deletion always
// copies), so the snapshot of instance identities and row counts
// detects every stale entry.
type rhsEntry struct {
	insts []*relation.Instance
	lens  []int
	set   map[string]bool
}

func (e *rhsEntry) fresh(db *relation.Database) bool {
	rels := db.Schema().Relations()
	if len(rels) != len(e.insts) {
		return false
	}
	for i, r := range rels {
		inst := db.Relation(r.Name)
		if inst != e.insts[i] || inst.Len() != e.lens[i] {
			return false
		}
	}
	return true
}

func snapshotEntry(db *relation.Database, set map[string]bool) *rhsEntry {
	rels := db.Schema().Relations()
	e := &rhsEntry{insts: make([]*relation.Instance, len(rels)), lens: make([]int, len(rels)), set: set}
	for i, r := range rels {
		inst := db.Relation(r.Name)
		e.insts[i] = inst
		e.lens[i] = inst.Len()
	}
	return e
}

// New validates and builds a CC. Both sides must be conjunctive
// (allowing = and ≠) and have equal output arity.
func New(name string, left, right *query.Query) (*Constraint, error) {
	if left == nil || right == nil {
		return nil, fmt.Errorf("cc %s: nil side", name)
	}
	if cls := query.Classify(left); cls != query.ClassCQ {
		return nil, fmt.Errorf("cc %s: left side is %v, want CQ", name, cls)
	}
	if cls := query.Classify(right); cls != query.ClassCQ {
		return nil, fmt.Errorf("cc %s: right side is %v, want CQ", name, cls)
	}
	if left.Arity() != right.Arity() {
		return nil, fmt.Errorf("cc %s: arity mismatch %d vs %d", name, left.Arity(), right.Arity())
	}
	return &Constraint{Name: name, Left: left, Right: right}, nil
}

// Must is New that panics on error.
func Must(name string, left, right *query.Query) *Constraint {
	c, err := New(name, left, right)
	if err != nil {
		panic(err)
	}
	return c
}

// Parse builds a CC from the text forms of its two queries.
func Parse(name, left, right string) (*Constraint, error) {
	l, err := query.ParseQuery(left)
	if err != nil {
		return nil, fmt.Errorf("cc %s: left: %w", name, err)
	}
	r, err := query.ParseQuery(right)
	if err != nil {
		return nil, fmt.Errorf("cc %s: right: %w", name, err)
	}
	return New(name, l, r)
}

// MustParse is Parse that panics on error.
func MustParse(name, left, right string) *Constraint {
	c, err := Parse(name, left, right)
	if err != nil {
		panic(err)
	}
	return c
}

// Satisfied reports (I, Dm) ⊨ φ, i.e. q(I) ⊆ p(Dm). The compiled path
// streams q(I) and stops at the first tuple outside p(Dm) instead of
// materialising and sorting both answer sets.
func (c *Constraint) Satisfied(db, master *relation.Database, opts eval.Options) (bool, error) {
	lp, rp := c.plans(opts)
	if opts.NaiveJoin || lp == nil || rp == nil {
		return c.satisfiedNaive(db, master, opts)
	}
	// p(Dm) is materialised lazily, on the first q-tuple: an empty left
	// side must not evaluate (or demand relations of) the right side,
	// exactly as the two-phase check behaved.
	var inRHS map[string]bool
	var rhsErr error
	ok := true
	keyBuf := make([]byte, 0, 64)
	err := lp.ForEach(db, opts, func(t relation.Tuple) error {
		if inRHS == nil {
			if inRHS, rhsErr = c.rhsSet(rp, master, opts); rhsErr != nil {
				return eval.Stop
			}
		}
		keyBuf = t.AppendKey(keyBuf[:0])
		if !inRHS[string(keyBuf)] {
			ok = false
			return eval.Stop
		}
		return nil
	})
	if err == nil {
		err = rhsErr
	}
	if err != nil {
		return false, fmt.Errorf("cc %s: %w", c.Name, err)
	}
	return ok, nil
}

// satisfiedNaive is the original materialise-both-sides check, kept as
// the NaiveJoin oracle and the fallback for uncompilable sides.
func (c *Constraint) satisfiedNaive(db, master *relation.Database, opts eval.Options) (bool, error) {
	lhs, err := eval.Answers(db, c.Left, opts)
	if err != nil {
		return false, fmt.Errorf("cc %s: %w", c.Name, err)
	}
	if len(lhs) == 0 {
		return true, nil
	}
	rhs, err := eval.Answers(master, c.Right, opts)
	if err != nil {
		return false, fmt.Errorf("cc %s: %w", c.Name, err)
	}
	inRHS := make(map[string]bool, len(rhs))
	for _, t := range rhs {
		inRHS[t.Key()] = true
	}
	for _, t := range lhs {
		if !inRHS[t.Key()] {
			return false, nil
		}
	}
	return true, nil
}

// plans compiles both sides once. Compilation of a validated CC (both
// sides CQ) cannot fail; a nil result routes to the naive path anyway.
func (c *Constraint) plans(opts eval.Options) (*eval.Plan, *eval.Plan) {
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if !c.planTried {
		c.planTried = true
		c.leftPlan, _ = eval.Compile(c.Left)
		c.rightPlan, _ = eval.Compile(c.Right)
		if c.leftPlan != nil {
			opts.Obs.Inc(obs.PlanCompilations)
		}
		if c.rightPlan != nil {
			opts.Obs.Inc(obs.PlanCompilations)
		}
	} else if c.leftPlan != nil || c.rightPlan != nil {
		opts.Obs.Inc(obs.PlanCacheHits)
	}
	return c.leftPlan, c.rightPlan
}

// rhsCacheMax bounds the number of distinct master databases memoised
// per constraint; a decision run uses one.
const rhsCacheMax = 8

// rhsSet returns the key set of p(Dm), memoised per master database.
// ExtraDomain can change answer sets (via ≠ and unbound comparisons
// ranging over the active domain), so runs that set it bypass the memo.
func (c *Constraint) rhsSet(rp *eval.Plan, master *relation.Database, opts eval.Options) (map[string]bool, error) {
	cacheable := opts.ExtraDomain == nil
	if cacheable {
		c.planMu.Lock()
		if e, ok := c.rhsCache[master]; ok {
			if e.fresh(master) {
				c.planMu.Unlock()
				opts.Obs.Inc(obs.RHSCacheHits)
				return e.set, nil
			}
			opts.Obs.Inc(obs.RHSCacheInvalidations)
		}
		c.planMu.Unlock()
		opts.Obs.Inc(obs.RHSCacheMisses)
	}
	set := make(map[string]bool)
	keyBuf := make([]byte, 0, 64)
	err := rp.ForEach(master, opts, func(t relation.Tuple) error {
		keyBuf = t.AppendKey(keyBuf[:0])
		set[string(keyBuf)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	if cacheable {
		c.planMu.Lock()
		if len(c.rhsCache) >= rhsCacheMax {
			c.rhsCache = nil
		}
		if c.rhsCache == nil {
			c.rhsCache = make(map[*relation.Database]*rhsEntry, 1)
		}
		c.rhsCache[master] = snapshotEntry(master, set)
		c.planMu.Unlock()
	}
	return set, nil
}

// String renders the CC.
func (c *Constraint) String() string {
	return fmt.Sprintf("%s: %s ⊆ %s", c.Name, c.Left, c.Right)
}

// Set is a collection V of CCs.
type Set struct {
	Constraints []*Constraint
}

// NewSet builds a CC set.
func NewSet(cs ...*Constraint) *Set { return &Set{Constraints: cs} }

// Add appends constraints to the set.
func (s *Set) Add(cs ...*Constraint) { s.Constraints = append(s.Constraints, cs...) }

// Len returns the number of constraints.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Constraints)
}

// Satisfied reports (I, Dm) ⊨ V.
func (s *Set) Satisfied(db, master *relation.Database, opts eval.Options) (bool, error) {
	if s == nil {
		return true, nil
	}
	for _, c := range s.Constraints {
		ok, err := c.Satisfied(db, master, opts)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// Violations returns the constraints violated by (db, master), in order.
func (s *Set) Violations(db, master *relation.Database, opts eval.Options) ([]*Constraint, error) {
	if s == nil {
		return nil, nil
	}
	var out []*Constraint
	for _, c := range s.Constraints {
		ok, err := c.Satisfied(db, master, opts)
		if err != nil {
			return nil, err
		}
		if !ok {
			out = append(out, c)
		}
	}
	return out, nil
}

// Constants collects the constants mentioned by all CCs of the set.
func (s *Set) Constants(dst *relation.ValueSet) *relation.ValueSet {
	if dst == nil {
		dst = relation.NewValueSet()
	}
	if s == nil {
		return dst
	}
	for _, c := range s.Constraints {
		query.QueryConstants(c.Left, dst)
		query.QueryConstants(c.Right, dst)
	}
	return dst
}

// Vars counts the distinct variables across the left sides — used for
// Adom sizing.
func (s *Set) Vars() []string {
	seen := map[string]bool{}
	if s != nil {
		for _, c := range s.Constraints {
			for _, v := range query.AllVars(c.Left.Body) {
				seen[c.Name+"/"+v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

// String renders the set.
func (s *Set) String() string {
	parts := make([]string, s.Len())
	for i, c := range s.Constraints {
		parts[i] = c.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Merge rewrites every left side for the merged single-relation schema
// of Lemma 3.2 (the paper's fC); right sides address master data and are
// unchanged.
func (s *Set) Merge(m *relation.Merger) (*Set, error) {
	out := &Set{Constraints: make([]*Constraint, s.Len())}
	for i, c := range s.Constraints {
		left, err := query.MergeQuery(m, c.Left)
		if err != nil {
			return nil, fmt.Errorf("cc %s: %w", c.Name, err)
		}
		out.Constraints[i] = &Constraint{Name: c.Name, Left: left, Right: c.Right}
	}
	return out, nil
}

// FullContainment builds the CC R ⊆ Rm stating that the whole data
// relation is bounded by a master relation of the same arity — the
// workhorse of the paper's reductions (e.g. R(0,1) ⊆ Rm(0,1)).
func FullContainment(name string, dataRel *relation.Schema, masterRel *relation.Schema) (*Constraint, error) {
	if dataRel.Arity() != masterRel.Arity() {
		return nil, fmt.Errorf("cc %s: arity mismatch %d vs %d", name, dataRel.Arity(), masterRel.Arity())
	}
	head := make([]query.Term, dataRel.Arity())
	for i := range head {
		head[i] = query.V(fmt.Sprintf("x%d", i+1))
	}
	left := query.MustQuery(name+"_q", head, query.NewAtom(dataRel.Name, head...))
	right := query.MustQuery(name+"_p", head, query.NewAtom(masterRel.Name, head...))
	return New(name, left, right)
}

// MustFullContainment is FullContainment that panics on error.
func MustFullContainment(name string, dataRel, masterRel *relation.Schema) *Constraint {
	c, err := FullContainment(name, dataRel, masterRel)
	if err != nil {
		panic(c)
	}
	return c
}
