package cc

import (
	"fmt"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// FD is a functional dependency X → Y on one relation, with X and Y
// lists of attribute names.
type FD struct {
	Rel string
	LHS []string
	RHS []string
}

// String renders the FD.
func (fd FD) String() string {
	return fmt.Sprintf("%s: %v -> %v", fd.Rel, fd.LHS, fd.RHS)
}

// Holds reports whether the instance satisfies the FD.
func (fd FD) Holds(inst *relation.Instance) (bool, error) {
	sch := inst.Schema()
	lhsIdx, err := attrIndexes(sch, fd.LHS)
	if err != nil {
		return false, err
	}
	rhsIdx, err := attrIndexes(sch, fd.RHS)
	if err != nil {
		return false, err
	}
	seen := map[string]relation.Tuple{}
	for _, t := range inst.Tuples() {
		key := projectKey(t, lhsIdx)
		if prev, ok := seen[key]; ok {
			for _, i := range rhsIdx {
				if prev[i] != t[i] {
					return false, nil
				}
			}
		} else {
			seen[key] = t
		}
	}
	return true, nil
}

// AsCCs encodes the FD as containment constraints against an empty
// master relation (Example 2.1): one CC per right-hand attribute, each
// with a Boolean violation query that must stay empty. emptyMaster must
// be an (always empty) relation of the master schema.
func (fd FD) AsCCs(dataSchema *relation.DBSchema, emptyMaster *relation.Schema) ([]*Constraint, error) {
	rel := dataSchema.Relation(fd.Rel)
	if rel == nil {
		return nil, fmt.Errorf("fd: unknown relation %s", fd.Rel)
	}
	lhsIdx, err := attrIndexes(rel, fd.LHS)
	if err != nil {
		return nil, err
	}
	var out []*Constraint
	for _, rhsAttr := range fd.RHS {
		rhsI := rel.AttrIndex(rhsAttr)
		if rhsI < 0 {
			return nil, fmt.Errorf("fd: relation %s has no attribute %s", fd.Rel, rhsAttr)
		}
		// Two copies of the relation sharing the LHS variables, with
		// distinct variables in the RHS position that must differ.
		t1 := make([]query.Term, rel.Arity())
		t2 := make([]query.Term, rel.Arity())
		shared := map[int]bool{}
		for _, i := range lhsIdx {
			shared[i] = true
		}
		for i := 0; i < rel.Arity(); i++ {
			switch {
			case shared[i]:
				v := query.V(fmt.Sprintf("k%d", i))
				t1[i], t2[i] = v, v
			case i == rhsI:
				t1[i], t2[i] = query.V("a1"), query.V("a2")
			default:
				t1[i], t2[i] = query.V(fmt.Sprintf("u%d", i)), query.V(fmt.Sprintf("v%d", i))
			}
		}
		body := query.Conj(
			query.NewAtom(rel.Name, t1...),
			query.NewAtom(rel.Name, t2...),
			query.NeqT(query.V("a1"), query.V("a2")),
		)
		name := fmt.Sprintf("fd_%s_%s", fd.Rel, rhsAttr)
		left := query.MustQuery(name+"_q", nil, body)
		right := query.MustQuery(name+"_p", nil,
			query.Ex(varNames(emptyMaster.Arity()), query.NewAtom(emptyMaster.Name, emptyTerms(emptyMaster.Arity())...)))
		c, err := New(name, left, right)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

func emptyTerms(arity int) []query.Term {
	ts := make([]query.Term, arity)
	for i := range ts {
		ts[i] = query.V(fmt.Sprintf("w%d", i))
	}
	return ts
}

// DenialAsCC encodes a denial constraint — a Boolean CQ that must have
// an empty answer — as a CC against an empty master relation.
func DenialAsCC(name string, violation *query.Query, emptyMaster *relation.Schema) (*Constraint, error) {
	if !violation.IsBoolean() {
		return nil, fmt.Errorf("denial %s: violation query must be Boolean", name)
	}
	right := query.MustQuery(name+"_p", nil,
		query.Ex(varNames(emptyMaster.Arity()), query.NewAtom(emptyMaster.Name, emptyTerms(emptyMaster.Arity())...)))
	return New(name, violation, right)
}

func varNames(arity int) []string {
	vs := make([]string, arity)
	for i := range vs {
		vs[i] = fmt.Sprintf("w%d", i)
	}
	return vs
}

// IND is an inclusion dependency R1[X] ⊆ R2[Y]. The paper shows INDs
// are not expressible as CCs in CQ (they need FO), and that admitting
// them as integrity constraints makes RCDP/RCQP undecidable
// (Proposition 3.1); they are also the constraint class under which
// RCQP becomes tractable when used *as* CCs from data to master
// (Corollary 7.2).
type IND struct {
	FromRel   string
	FromAttrs []string
	ToRel     string
	ToAttrs   []string
}

// String renders the IND.
func (ind IND) String() string {
	return fmt.Sprintf("%s%v ⊆ %s%v", ind.FromRel, ind.FromAttrs, ind.ToRel, ind.ToAttrs)
}

// Validate checks the attribute lists against the schemas holding the
// two relations.
func (ind IND) Validate(from, to *relation.Schema) error {
	if len(ind.FromAttrs) != len(ind.ToAttrs) || len(ind.FromAttrs) == 0 {
		return fmt.Errorf("ind %s: attribute lists must be non-empty and equal length", ind)
	}
	if _, err := attrIndexes(from, ind.FromAttrs); err != nil {
		return err
	}
	if _, err := attrIndexes(to, ind.ToAttrs); err != nil {
		return err
	}
	return nil
}

// HoldsWithin reports whether a single database satisfies the IND (both
// relations in db) — used by the Proposition 3.1 gadget where INDs are
// integrity constraints on the database itself.
func (ind IND) HoldsWithin(db *relation.Database) (bool, error) {
	from := db.Relation(ind.FromRel)
	to := db.Relation(ind.ToRel)
	if from == nil || to == nil {
		return false, fmt.Errorf("ind %s: missing relation", ind)
	}
	fromIdx, err := attrIndexes(from.Schema(), ind.FromAttrs)
	if err != nil {
		return false, err
	}
	toIdx, err := attrIndexes(to.Schema(), ind.ToAttrs)
	if err != nil {
		return false, err
	}
	avail := map[string]bool{}
	for _, t := range to.Tuples() {
		avail[projectKey(t, toIdx)] = true
	}
	for _, t := range from.Tuples() {
		if !avail[projectKey(t, fromIdx)] {
			return false, nil
		}
	}
	return true, nil
}

// AsCC encodes the IND as a data-to-master CC (q and p both projection
// queries): FromRel is a data relation, ToRel a master relation. This
// is the shape Corollary 7.2 makes tractable.
func (ind IND) AsCC(dataSchema *relation.DBSchema, masterSchema *relation.DBSchema) (*Constraint, error) {
	from := dataSchema.Relation(ind.FromRel)
	if from == nil {
		return nil, fmt.Errorf("ind %s: unknown data relation %s", ind, ind.FromRel)
	}
	to := masterSchema.Relation(ind.ToRel)
	if to == nil {
		return nil, fmt.Errorf("ind %s: unknown master relation %s", ind, ind.ToRel)
	}
	if err := ind.Validate(from, to); err != nil {
		return nil, err
	}
	name := fmt.Sprintf("ind_%s_%s", ind.FromRel, ind.ToRel)
	left := projectionQuery(name+"_q", from, ind.FromAttrs)
	right := projectionQuery(name+"_p", to, ind.ToAttrs)
	return New(name, left, right)
}

// IsProjectionCC reports whether the constraint has the IND shape of
// Corollary 7.2: both sides are pure projection queries (a single atom
// with pairwise-distinct variables, no comparisons, head a subset of
// the atom's variables).
func IsProjectionCC(c *Constraint) bool {
	return isProjectionQuery(c.Left) && isProjectionQuery(c.Right)
}

func isProjectionQuery(q *query.Query) bool {
	tab, err := query.TableauOf(q)
	if err != nil || len(tab.Atoms) != 1 || len(tab.Compares) != 0 {
		return false
	}
	seen := map[string]bool{}
	for _, t := range tab.Atoms[0].Terms {
		if !t.IsVar || seen[t.Name] {
			return false
		}
		seen[t.Name] = true
	}
	for _, h := range q.Head {
		if !h.IsVar || !seen[h.Name] {
			return false
		}
	}
	return true
}

// projectionQuery builds π_attrs(rel) as a query.
func projectionQuery(name string, rel *relation.Schema, attrs []string) *query.Query {
	terms := make([]query.Term, rel.Arity())
	for i := range terms {
		terms[i] = query.V(fmt.Sprintf("x%d", i))
	}
	head := make([]query.Term, len(attrs))
	for i, a := range attrs {
		head[i] = terms[rel.AttrIndex(a)]
	}
	return query.MustQuery(name, head, query.NewAtom(rel.Name, terms...))
}

func attrIndexes(sch *relation.Schema, attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		idx := sch.AttrIndex(a)
		if idx < 0 {
			return nil, fmt.Errorf("relation %s has no attribute %s", sch.Name, a)
		}
		out[i] = idx
	}
	return out, nil
}

func projectKey(t relation.Tuple, idx []int) string {
	sub := make(relation.Tuple, len(idx))
	for i, j := range idx {
		sub[i] = t[j]
	}
	return sub.Key()
}
