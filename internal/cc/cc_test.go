package cc

import (
	"strings"
	"testing"

	"relcomplete/internal/eval"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Fixture: data schema R(A,B), S(C); master schema Rm(A,B), Empty(W).
type fixture struct {
	data, master *relation.DBSchema
	db, dm       *relation.Database
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	data := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("C", nil)),
	)
	master := relation.MustDBSchema(
		relation.MustSchema("Rm", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("Empty", relation.Attr("W", nil)),
	)
	return &fixture{data: data, master: master,
		db: relation.NewDatabase(data), dm: relation.NewDatabase(master)}
}

func TestConstraintValidation(t *testing.T) {
	if _, err := Parse("c", "q(x) := R(x, y) | S(x)", "p(x) := Rm(x, y)"); err == nil {
		t.Fatal("UCQ left side should be rejected")
	}
	if _, err := Parse("c", "q(x) := R(x, y)", "p(x, y) := Rm(x, y)"); err == nil {
		t.Fatal("arity mismatch should be rejected")
	}
	if _, err := Parse("c", "q(x) := R(x, y)", "p(x) := not Rm(x, x)"); err == nil {
		t.Fatal("FO right side should be rejected")
	}
	if _, err := New("c", nil, nil); err == nil {
		t.Fatal("nil sides should be rejected")
	}
}

func TestConstraintSatisfied(t *testing.T) {
	f := newFixture(t)
	c := MustParse("bound", "q(x, y) := R(x, y)", "p(x, y) := Rm(x, y)")

	// Empty data: trivially satisfied.
	ok, err := c.Satisfied(f.db, f.dm, eval.Options{})
	if err != nil || !ok {
		t.Fatalf("empty data should satisfy: %v %v", ok, err)
	}

	f.db.MustInsert("R", relation.T("1", "2"))
	ok, _ = c.Satisfied(f.db, f.dm, eval.Options{})
	if ok {
		t.Fatal("R tuple not in master: should violate")
	}

	f.dm.MustInsert("Rm", relation.T("1", "2"))
	ok, _ = c.Satisfied(f.db, f.dm, eval.Options{})
	if !ok {
		t.Fatal("master now covers the tuple")
	}
}

func TestConstraintWithSelectionAndProjection(t *testing.T) {
	// Example 2.1 shape: q selects Edinburgh patients and projects, the
	// master side projects Patientm.
	data := relation.MustDBSchema(relation.MustSchema("MVisit",
		relation.Attr("NHS", nil), relation.Attr("city", nil), relation.Attr("yob", nil)))
	master := relation.MustDBSchema(relation.MustSchema("Patientm",
		relation.Attr("NHS", nil), relation.Attr("yob", nil), relation.Attr("zip", nil)))
	db := relation.NewDatabase(data)
	dm := relation.NewDatabase(master)
	c := MustParse("edi",
		"q(n, y) := MVisit(n, c, y) & c = 'EDI'",
		"p(n, y) := exists z: Patientm(n, y, z)")

	db.MustInsert("MVisit", relation.T("915", "EDI", "2000"))
	db.MustInsert("MVisit", relation.T("916", "LON", "1990")) // not selected
	ok, err := c.Satisfied(db, dm, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("EDI patient missing from master")
	}
	dm.MustInsert("Patientm", relation.T("915", "2000", "EH8"))
	ok, _ = c.Satisfied(db, dm, eval.Options{})
	if !ok {
		t.Fatal("selected tuple covered; LON tuple must not matter")
	}
}

func TestSetSatisfiedAndViolations(t *testing.T) {
	f := newFixture(t)
	c1 := MustParse("c1", "q(x, y) := R(x, y)", "p(x, y) := Rm(x, y)")
	c2 := MustParse("c2", "q(x) := S(x)", "p(x) := exists y: Rm(x, y)")
	v := NewSet(c1, c2)
	if v.Len() != 2 {
		t.Fatal("Len wrong")
	}

	f.db.MustInsert("S", relation.T("7"))
	ok, err := v.Satisfied(f.db, f.dm, eval.Options{})
	if err != nil || ok {
		t.Fatal("c2 should be violated")
	}
	viol, err := v.Violations(f.db, f.dm, eval.Options{})
	if err != nil || len(viol) != 1 || viol[0].Name != "c2" {
		t.Fatalf("Violations = %v", viol)
	}

	f.dm.MustInsert("Rm", relation.T("7", "z"))
	ok, _ = v.Satisfied(f.db, f.dm, eval.Options{})
	if !ok {
		t.Fatal("all constraints satisfied now")
	}
}

func TestNilSetIsSatisfied(t *testing.T) {
	f := newFixture(t)
	var v *Set
	ok, err := v.Satisfied(f.db, f.dm, eval.Options{})
	if err != nil || !ok {
		t.Fatal("nil set should be satisfied")
	}
	if v.Len() != 0 {
		t.Fatal("nil set Len should be 0")
	}
}

// Lemma 4.7(a): CC satisfaction is antimonotone in the data — removing
// tuples cannot introduce a violation.
func TestSatisfactionAntimonotone(t *testing.T) {
	f := newFixture(t)
	c := MustParse("c", "q(x, y) := R(x, y) & x != y", "p(x, y) := Rm(x, y)")
	f.dm.MustInsert("Rm", relation.T("1", "2"))
	f.db.MustInsert("R", relation.T("1", "2"))
	f.db.MustInsert("R", relation.T("3", "3")) // filtered out by x != y
	v := NewSet(c)
	ok, _ := v.Satisfied(f.db, f.dm, eval.Options{})
	if !ok {
		t.Fatal("setup should satisfy")
	}
	for _, loc := range f.db.AllTuples() {
		smaller := f.db.WithoutTuple(loc.Rel, loc.Tuple)
		ok, err := v.Satisfied(smaller, f.dm, eval.Options{})
		if err != nil || !ok {
			t.Fatalf("removing %v broke satisfaction", loc)
		}
	}
}

func TestSetConstantsAndString(t *testing.T) {
	c := MustParse("c", "q(x) := R(x, y) & y = 'k'", "p(x) := exists y: Rm(x, y)")
	v := NewSet(c)
	if !v.Constants(nil).Contains("k") {
		t.Fatal("constant lost")
	}
	if !strings.Contains(v.String(), "⊆") {
		t.Fatalf("String = %q", v.String())
	}
	if len(v.Vars()) == 0 {
		t.Fatal("Vars should report left-side variables")
	}
}

func TestFullContainment(t *testing.T) {
	f := newFixture(t)
	c, err := FullContainment("full", f.data.Relation("R"), f.master.Relation("Rm"))
	if err != nil {
		t.Fatal(err)
	}
	f.db.MustInsert("R", relation.T("1", "2"))
	ok, _ := c.Satisfied(f.db, f.dm, eval.Options{})
	if ok {
		t.Fatal("should be violated")
	}
	f.dm.MustInsert("Rm", relation.T("1", "2"))
	ok, _ = c.Satisfied(f.db, f.dm, eval.Options{})
	if !ok {
		t.Fatal("should be satisfied")
	}
	// Arity mismatch.
	if _, err := FullContainment("bad", f.data.Relation("R"), f.master.Relation("Empty")); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestMergeConstraints(t *testing.T) {
	f := newFixture(t)
	m, err := relation.NewMerger(f.data)
	if err != nil {
		t.Fatal(err)
	}
	v := NewSet(
		MustParse("c1", "q(x, y) := R(x, y)", "p(x, y) := Rm(x, y)"),
		MustParse("c2", "q(x) := S(x)", "p(x) := exists y: Rm(x, y)"),
	)
	mv, err := v.Merge(m)
	if err != nil {
		t.Fatal(err)
	}

	// Lemma 3.2(b): satisfaction is preserved through the encoding.
	f.db.MustInsert("R", relation.T("1", "2"))
	f.db.MustInsert("S", relation.T("1"))
	f.dm.MustInsert("Rm", relation.T("1", "2"))

	enc, err := m.Encode(f.db)
	if err != nil {
		t.Fatal(err)
	}
	mergedDB := relation.NewDatabase(relation.MustDBSchema(m.Merged()))
	for _, tup := range enc.Tuples() {
		mergedDB.MustInsert(m.Merged().Name, tup)
	}
	ok1, err := v.Satisfied(f.db, f.dm, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := mv.Satisfied(mergedDB, f.dm, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok1 != ok2 {
		t.Fatalf("Lemma 3.2(b) violated: %v vs %v", ok1, ok2)
	}

	// And for a violating database.
	f.db.MustInsert("S", relation.T("99"))
	enc, _ = m.Encode(f.db)
	mergedDB = relation.NewDatabase(relation.MustDBSchema(m.Merged()))
	for _, tup := range enc.Tuples() {
		mergedDB.MustInsert(m.Merged().Name, tup)
	}
	ok1, _ = v.Satisfied(f.db, f.dm, eval.Options{})
	ok2, _ = mv.Satisfied(mergedDB, f.dm, eval.Options{})
	if ok1 || ok2 {
		t.Fatalf("both should be violated: %v vs %v", ok1, ok2)
	}
}

func TestConstraintErrorPropagation(t *testing.T) {
	f := newFixture(t)
	c := MustParse("c", "q(x) := Nope(x)", "p(x) := exists y: Rm(x, y)")
	if _, err := c.Satisfied(f.db, f.dm, eval.Options{}); err == nil {
		t.Fatal("unknown relation should error")
	}
	q := query.MustParseQuery("q(x) := S(x)")
	p := query.MustParseQuery("p(x) := Gone(x)")
	c2 := Must("c2", q, p)
	f.db.MustInsert("S", relation.T("1"))
	if _, err := c2.Satisfied(f.db, f.dm, eval.Options{}); err == nil {
		t.Fatal("unknown master relation should error")
	}
}
