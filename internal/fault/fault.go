// Package fault is a deterministic fault-injection harness for the
// robustness test-suite. Production code never arms it: a nil *Plan is
// the default everywhere and costs one pointer test per instrumented
// site.
//
// The deciders are long-running searches built from many small
// operations — query evaluations, index probes, per-candidate model
// checks. Each such operation class is an instrumented *site* (a plain
// string name, see the Site constants) that calls Plan.Visit before
// doing its work. A Plan maps sites to rules; when a rule fires, the
// site returns an injected error, sleeps, or panics — deterministically,
// keyed on the site's visit count, so a failing chaos seed replays
// exactly.
//
// The harness answers one question: does every decider either return a
// correct verdict or a typed error (BudgetError, DeadlineError, an
// injected *Injected, a contained *search.PanicError) — never a
// deadlock, a goroutine leak or a wrong answer?
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Kind selects what an armed rule does when it fires.
type Kind int

const (
	// KindError makes the site return an *Injected error.
	KindError Kind = iota
	// KindDelay makes the site sleep for the rule's Delay.
	KindDelay
	// KindPanic makes the site panic with a PanicValue.
	KindPanic
	// KindShortWrite makes a filesystem write site persist only a
	// prefix of its buffer before failing — the injected analogue of a
	// crash (or full disk) mid-write, leaving a torn record on disk.
	// Non-filesystem sites treat it as KindError.
	KindShortWrite
	// KindCorrupt makes a filesystem read site flip a byte in the data
	// it just read — the injected analogue of silent media corruption,
	// which the WAL's CRCs must catch. Non-filesystem sites treat it as
	// KindError.
	KindCorrupt
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindPanic:
		return "panic"
	case KindShortWrite:
		return "short_write"
	case KindCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// ErrInjected is the sentinel every injected error unwraps to, so
// tests can separate injected failures from genuine ones with one
// errors.Is check.
var ErrInjected = errors.New("fault: injected error")

// Injected is the error an Error-kind (or filesystem-kind) rule
// returns, carrying the site, the visit count it fired on and the
// rule's kind. Filesystem sites inspect Kind to act out the fault —
// KindShortWrite persists a prefix before failing, KindCorrupt flips a
// byte in read data — while plain sites only propagate the error.
type Injected struct {
	Site  string
	Visit int64
	Kind  Kind
}

func (e *Injected) Error() string {
	return fmt.Sprintf("fault: injected %s at %s (visit %d)", e.Kind, e.Site, e.Visit)
}

// Unwrap exposes ErrInjected for errors.Is.
func (e *Injected) Unwrap() error { return ErrInjected }

// PanicValue is the payload of an injected panic. The search engine's
// panic containment recovers it into a *search.PanicError; the chaos
// suite asserts the recovered value is exactly this type.
type PanicValue struct {
	Site  string
	Visit int64
}

func (v PanicValue) String() string {
	return fmt.Sprintf("fault: injected panic at %s (visit %d)", v.Site, v.Visit)
}

// Rule arms one fault at one site. The rule fires on visits
// After+1, After+1+Every, After+1+2·Every, ... (Every <= 1 means every
// visit past After).
type Rule struct {
	Site  string
	Kind  Kind
	After int64         // skip this many visits before the first firing
	Every int64         // then fire every Every-th visit (<= 1: every visit)
	Delay time.Duration // sleep duration for KindDelay
}

// armed is one rule with its visit counter. The counter is the only
// mutable state in a Plan, and it is atomic: sites are visited from
// worker goroutines.
type armed struct {
	rule   Rule
	visits atomic.Int64
}

// Plan is an immutable set of armed rules indexed by site. Built once
// by NewPlan (the map is never written afterwards), visited
// concurrently. A nil *Plan is inert.
type Plan struct {
	sites map[string][]*armed
}

// NewPlan arms the rules. Multiple rules may share a site; each keeps
// its own visit counter and all are consulted per visit (the first
// firing Error rule wins; Delay rules sleep before that decision).
func NewPlan(rules ...Rule) *Plan {
	p := &Plan{sites: map[string][]*armed{}}
	for _, r := range rules {
		p.sites[r.Site] = append(p.sites[r.Site], &armed{rule: r})
	}
	return p
}

// Visit is called by an instrumented site before its real work. It
// returns nil when no Error-kind rule fires; Delay rules sleep in
// place and Panic rules panic with a PanicValue. Nil receivers and
// unarmed sites return nil immediately.
func (p *Plan) Visit(site string) error {
	if p == nil {
		return nil
	}
	for _, a := range p.sites[site] {
		n := a.visits.Add(1)
		if n <= a.rule.After {
			continue
		}
		if e := a.rule.Every; e > 1 && (n-a.rule.After-1)%e != 0 {
			continue
		}
		switch a.rule.Kind {
		case KindDelay:
			time.Sleep(a.rule.Delay)
		case KindPanic:
			panic(PanicValue{Site: site, Visit: n})
		default:
			return &Injected{Site: site, Visit: n, Kind: a.rule.Kind}
		}
	}
	return nil
}

// Visits reports how many times site has been visited (the maximum
// over its rules' counters; 0 for unarmed sites and nil receivers).
func (p *Plan) Visits(site string) int64 {
	if p == nil {
		return 0
	}
	var max int64
	for _, a := range p.sites[site] {
		if n := a.visits.Load(); n > max {
			max = n
		}
	}
	return max
}

// The instrumented sites of this code base (see DESIGN.md §5.10).
const (
	// SiteEvalAnswers is every relational-calculus query evaluation:
	// eval.Answers, eval.Bool and the compiled Plan.Answers/Plan.Bool.
	SiteEvalAnswers = "eval.answers"
	// SiteEvalFP is every FP fixpoint evaluation (eval.FPAnswers).
	SiteEvalFP = "eval.fp"
	// SiteRelationProbe is every hash-index probe
	// (relation.Instance.LookupIndexed). An injected error degrades the
	// probe to "not indexable" — the caller falls back to a scan and the
	// verdict is unaffected; delays and panics hit the probe directly.
	SiteRelationProbe = "relation.probe"
	// SiteSearchWorker is every candidate-model admission check
	// (core.Problem.checkModel), the per-candidate work unit of the
	// parallel searches.
	SiteSearchWorker = "search.worker"

	// The filesystem sites of internal/durable's write-ahead log and
	// snapshot paths. Error-kind rules model I/O errors (a failed fsync
	// at SiteWALFsync is the classic "fsyncgate" fault), KindShortWrite
	// models a crash mid-write, KindCorrupt models silent media
	// corruption surfacing on read.
	SiteWALAppend     = "wal.append"
	SiteWALFsync      = "wal.fsync"
	SiteWALRead       = "wal.read"
	SiteSnapshotWrite = "snapshot.write"
	SiteSnapshotRead  = "snapshot.read"
)

// KnownSites lists every named engine injection site, in a fixed order
// so seeded chaos plans are reproducible. The filesystem sites are
// listed separately (FSSites): engine chaos plans must not perturb
// durability, and vice versa.
func KnownSites() []string {
	return []string{SiteEvalAnswers, SiteEvalFP, SiteRelationProbe, SiteSearchWorker}
}

// FSSites lists the filesystem injection sites of the durable layer,
// in a fixed order so seeded chaos plans are reproducible.
func FSSites() []string {
	return []string{SiteWALAppend, SiteWALFsync, SiteWALRead, SiteSnapshotWrite, SiteSnapshotRead}
}

// Chaos builds a deterministic pseudo-random plan from a seed: each
// known site independently stays clean or gets a rule with random
// kind, warm-up and cadence. The same seed always builds the same
// plan, so a failing chaos run replays exactly.
func Chaos(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	var rules []Rule
	for _, site := range KnownSites() {
		if rng.Intn(3) == 0 {
			continue // leave the site clean this round
		}
		r := Rule{
			Site:  site,
			Kind:  Kind(rng.Intn(3)),
			After: int64(rng.Intn(20)),
			Every: int64(1 + rng.Intn(8)),
		}
		if r.Kind == KindDelay {
			r.Delay = time.Duration(1+rng.Intn(200)) * time.Microsecond
		}
		rules = append(rules, r)
	}
	return NewPlan(rules...)
}

// ChaosFS builds a deterministic pseudo-random plan over the
// filesystem sites: each independently stays clean or gets an I/O
// error, a short write, a read corruption or a delay (panics are
// excluded — the durable layer's contract is typed errors, and a panic
// mid-write says nothing a short write does not). The same seed always
// builds the same plan, so a failing crash-recovery run replays
// exactly.
func ChaosFS(seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{KindError, KindDelay, KindShortWrite, KindCorrupt}
	var rules []Rule
	for _, site := range FSSites() {
		if rng.Intn(3) == 0 {
			continue // leave the site clean this round
		}
		r := Rule{
			Site:  site,
			Kind:  kinds[rng.Intn(len(kinds))],
			After: int64(rng.Intn(8)),
			Every: int64(1 + rng.Intn(6)),
		}
		if r.Kind == KindDelay {
			r.Delay = time.Duration(1+rng.Intn(200)) * time.Microsecond
		}
		rules = append(rules, r)
	}
	return NewPlan(rules...)
}
