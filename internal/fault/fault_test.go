package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if err := p.Visit(SiteEvalAnswers); err != nil {
		t.Fatalf("nil plan injected: %v", err)
	}
	if n := p.Visits(SiteEvalAnswers); n != 0 {
		t.Fatalf("nil plan counted visits: %d", n)
	}
}

func TestErrorRuleCadence(t *testing.T) {
	p := NewPlan(Rule{Site: "s", Kind: KindError, After: 2, Every: 3})
	var fired []int64
	for i := int64(1); i <= 12; i++ {
		if err := p.Visit("s"); err != nil {
			var inj *Injected
			if !errors.As(err, &inj) {
				t.Fatalf("visit %d: not an *Injected: %v", i, err)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("visit %d: does not unwrap to ErrInjected", i)
			}
			if inj.Site != "s" || inj.Visit != i {
				t.Fatalf("visit %d: wrong detail %+v", i, inj)
			}
			fired = append(fired, i)
		}
	}
	// After=2, Every=3: fires on visits 3, 6, 9, 12.
	want := []int64{3, 6, 9, 12}
	if len(fired) != len(want) {
		t.Fatalf("fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on %v, want %v", fired, want)
		}
	}
	if p.Visits("s") != 12 {
		t.Fatalf("Visits = %d, want 12", p.Visits("s"))
	}
}

func TestPanicRule(t *testing.T) {
	p := NewPlan(Rule{Site: "s", Kind: KindPanic})
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok {
			t.Fatalf("recovered %T, want PanicValue", r)
		}
		if pv.Site != "s" || pv.Visit != 1 {
			t.Fatalf("wrong payload %+v", pv)
		}
	}()
	p.Visit("s")
	t.Fatal("panic rule did not fire")
}

func TestDelayRuleSleeps(t *testing.T) {
	p := NewPlan(Rule{Site: "s", Kind: KindDelay, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := p.Visit("s"); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("slept only %v", elapsed)
	}
}

func TestUnarmedSiteClean(t *testing.T) {
	p := NewPlan(Rule{Site: "other", Kind: KindError})
	for i := 0; i < 5; i++ {
		if err := p.Visit("s"); err != nil {
			t.Fatalf("unarmed site injected: %v", err)
		}
	}
}

func TestVisitConcurrencySafe(t *testing.T) {
	p := NewPlan(Rule{Site: "s", Kind: KindError, After: 1 << 40}) // counts, never fires
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Visit("s")
			}
		}()
	}
	wg.Wait()
	if n := p.Visits("s"); n != 8000 {
		t.Fatalf("Visits = %d, want 8000", n)
	}
}

func TestChaosDeterministic(t *testing.T) {
	// The same seed must drive the same plan: compare firing patterns.
	pattern := func(seed int64) []string {
		p := Chaos(seed)
		var out []string
		for _, site := range KnownSites() {
			for i := 0; i < 50; i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							out = append(out, "panic:"+site)
						}
					}()
					if err := p.Visit(site); err != nil {
						out = append(out, "err:"+site)
					}
				}()
			}
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	if len(a) != len(b) {
		t.Fatalf("seed 42 non-deterministic: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at event %d: %s vs %s", i, a[i], b[i])
		}
	}
}
