// Package durable makes rcserved's problem registry crash-safe: a
// write-ahead log of registry mutations plus periodic snapshots, both
// stored in one data directory and replayed on boot.
//
// Layout of the data directory:
//
//	wal.log        append-only mutation log (PUT/DELETE records)
//	snapshot.json  latest registry snapshot (atomic temp-file + rename)
//	snapshot.tmp   in-progress snapshot (abandoned on crash, harmless)
//
// The WAL starts with an 8-byte magic+version header. Each record is
// length-prefixed and checksummed:
//
//	[4-byte big-endian payload length]
//	[4-byte big-endian CRC32 (IEEE) of the payload]
//	[payload: one JSON-encoded Record]
//
// Append fsyncs before returning, so a mutation is acknowledged only
// once it is on disk — "committed" below always means "Append
// returned nil". Recovery (Open) replays snapshot then WAL in order.
// A torn or CRC-corrupt tail — the residue of a crash mid-write — is
// discarded with a warn log and the file is truncated back to its
// longest valid prefix; everything before the tear is returned intact.
// Replaying snapshot+WAL is idempotent (PUT is an upsert, DELETE of a
// missing name is a no-op), so a crash between the snapshot rename and
// the WAL truncation only double-applies records, never corrupts.
//
// Failure discipline: a short write, a corrupt write or a failed fsync
// leaves the on-disk tail in an unknown state, so the log marks itself
// broken (Healthy reports false, further appends fail fast with
// ErrBroken) and the caller must restart to recover — acknowledging a
// mutation after a failed commit is the one unforgivable lie. A clean
// error *before* any byte hit the disk leaves the log usable.
//
// All filesystem faults of internal/fault's FS sites (wal.append,
// wal.fsync, wal.read, snapshot.write, snapshot.read) are honoured in
// these paths, which is how the crash-recovery chaos suite drives
// torn tails, fsync errors and silent corruption deterministically.
package durable

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

const (
	walFile      = "wal.log"
	snapshotFile = "snapshot.json"
	snapshotTmp  = "snapshot.tmp"

	// walVersion is byte 6 of the WAL header; bump on any framing
	// change so recovery refuses to misparse an old log.
	walVersion = 1
	// snapshotVersion is the "version" field of snapshot.json.
	snapshotVersion = 1
)

// walMagic is the 8-byte WAL file header: magic, version, newline (the
// newline keeps `head -c8 wal.log` readable).
var walMagic = []byte{'r', 'c', 'w', 'a', 'l', '0' + walVersion, '\n', 0}

// Op is the kind of one logged registry mutation.
type Op string

const (
	// OpPut loads (or replaces) a named problem document.
	OpPut Op = "put"
	// OpDelete unloads a named problem.
	OpDelete Op = "delete"
)

// Record is one registry mutation, the unit of WAL append and of
// recovery replay. Raw is the exact acknowledged document bytes for
// OpPut (empty for OpDelete) — stored base64 in the JSON payload so
// recovery restores byte-identical documents.
type Record struct {
	Op   Op     `json:"op"`
	Name string `json:"name"`
	Raw  []byte `json:"raw,omitempty"`
}

// Options tunes one Log.
type Options struct {
	// NoFsync skips the per-commit fsync (and its fault site). Tests
	// only: without fsync the "committed means on disk" contract holds
	// only until the OS page cache is lost.
	NoFsync bool
	// Logger receives recovery and truncation warnings (nil disables).
	Logger *slog.Logger
	// Metrics receives wal_appends, wal_fsync_seconds, snapshots_written,
	// recoveries, recovery_discards and wal_replayed (nil is inert).
	Metrics *obs.Metrics
	// Faults arms the filesystem fault-injection sites — chaos tests
	// only, nil always in production.
	Faults *fault.Plan
}

// ErrIO is the sentinel every storage-layer failure wraps, so callers
// can map "the durability layer failed" to one HTTP status with a
// single errors.Is.
var ErrIO = errors.New("durable: storage failure")

// ErrBroken reports an append refused because an earlier write or
// fsync failed and the on-disk tail is in an unknown state; the
// process must restart (re-running recovery) before accepting new
// mutations. Unwraps to ErrIO.
var ErrBroken = fmt.Errorf("%w: write-ahead log broken by an earlier failed commit; restart to recover", ErrIO)

// ErrClosed reports an operation on a closed log. Unwraps to ErrIO.
var ErrClosed = fmt.Errorf("%w: log closed", ErrIO)

// VersionError reports a snapshot or WAL written by an incompatible
// format version. Recovery refuses to guess: the operator must migrate
// or discard the data directory explicitly.
type VersionError struct {
	What      string // "wal" or "snapshot"
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("durable: %s format version %d, this binary reads version %d",
		e.What, e.Got, e.Want)
}

// Unwrap exposes ErrIO for errors.Is.
func (e *VersionError) Unwrap() error { return ErrIO }

// Log is the durable registry store: one WAL handle plus the snapshot
// machinery. Safe for concurrent use; Append serialises internally.
// Snapshot additionally requires the caller to guarantee that the
// record set it is handed is consistent with the WAL at call time — in
// rcserved the registry holds its own mutex across collect+Snapshot,
// so no Append can interleave (see Registry.SnapshotNow).
type Log struct {
	dir string
	opt Options

	mu     sync.Mutex
	f      *os.File
	off    int64 // current append offset (end of last good record)
	broken bool
	closed bool
}

// Open opens (creating if needed) the data directory, runs recovery —
// snapshot first, then the WAL's longest valid prefix — and returns
// the log positioned for appends plus the recovered records in apply
// order. A torn or corrupt WAL tail is discarded with a warning and
// truncated away; a version mismatch or unreadable snapshot is a hard
// error (never guess at durable state).
func Open(dir string, opt Options) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("%w: %w", ErrIO, err)
	}
	l := &Log{dir: dir, opt: opt}

	recs, err := l.loadSnapshot()
	if err != nil {
		return nil, nil, err
	}

	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: open wal: %w", ErrIO, err)
	}
	l.f = f
	walRecs, err := l.recoverWAL()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs = append(recs, walRecs...)
	opt.Metrics.Inc(obs.Recoveries)
	opt.Metrics.Add(obs.WALReplayed, int64(len(walRecs)))
	return l, recs, nil
}

// Dir returns the data directory this log lives in.
func (l *Log) Dir() string { return l.dir }

// Healthy reports whether the log can accept appends: open, and no
// commit has failed since recovery. rcserved's /readyz gates on this —
// a daemon whose WAL cannot commit must stop advertising readiness.
func (l *Log) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.broken && !l.closed
}

// Close syncs and closes the WAL handle. Further appends fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if !l.opt.NoFsync && !l.broken {
		l.f.Sync()
	}
	return l.f.Close()
}

func (l *Log) warn(msg string, attrs ...slog.Attr) {
	if l.opt.Logger != nil {
		l.opt.Logger.LogAttrs(context.Background(), slog.LevelWarn, msg, attrs...)
	}
}

func (l *Log) info(msg string, attrs ...slog.Attr) {
	if l.opt.Logger != nil {
		l.opt.Logger.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
	}
}
