package durable

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"relcomplete/internal/fault"
)

// durableChaosSeeds mirrors the repo-wide seed policy: a fixed in-repo
// matrix plus RELCOMPLETE_CHAOS_SEED from the environment (CI's chaos
// job sets it per matrix leg).
func durableChaosSeeds(t *testing.T) []int64 {
	seeds := []int64{101, 211, 307}
	if s := os.Getenv("RELCOMPLETE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("RELCOMPLETE_CHAOS_SEED: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// TestChaosCrashRecovery is the kill-and-restart suite: a workload of
// PUT/DELETE/snapshot operations runs against a log armed with a
// seeded filesystem fault plan (short writes, corrupt writes, fsync
// errors, read corruption). Whenever a commit breaks the log the
// process "crashes" — the log is dropped mid-state and reopened
// fault-free on the same directory. The invariant, checked after every
// recovery and at the end:
//
//   - every acknowledged mutation is present in the recovered state
//     (committed means durable), and
//   - every recovered document is byte-identical to one the workload
//     actually wrote (no mangled or invented state) — recovered state
//     is bounded between the acked state and acked+last-attempted.
func TestChaosCrashRecovery(t *testing.T) {
	for _, seed := range durableChaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()

			// acked is the authoritative committed state; attempted holds
			// the one mutation that may have failed mid-commit and can
			// legitimately surface after recovery without having been acked.
			acked := map[string][]byte{}
			var attempted *Record

			l, recs, err := Open(dir, Options{Faults: fault.ChaosFS(seed)})
			if err != nil {
				t.Fatalf("initial open: %v", err)
			}
			checkState(t, "initial", recs, acked, nil)

			const ops = 400
			crashes := 0
			for i := 0; i < ops; i++ {
				name := fmt.Sprintf("p%d", rng.Intn(9))
				var rec Record
				if rng.Intn(4) == 0 {
					rec = Record{Op: OpDelete, Name: name}
				} else {
					rec = Record{Op: OpPut, Name: name, Raw: doc(int(seed)*1000 + i)}
				}

				if rng.Intn(25) == 0 {
					// Periodic snapshot of the acked state. Failure is
					// acceptable — the old snapshot stays authoritative.
					var srecs []Record
					for n, raw := range acked {
						srecs = append(srecs, Record{Op: OpPut, Name: n, Raw: raw})
					}
					l.Snapshot(srecs)
				}

				attempted = &rec
				err := l.Append(rec)
				if err == nil {
					attempted = nil
					applyRecord(acked, rec)
					continue
				}
				if !errors.Is(err, ErrIO) {
					t.Fatalf("op %d: untyped append failure: %v", i, err)
				}
				if l.Healthy() {
					// Clean refusal (ENOSPC-style): nothing landed, carry on
					// with the same log.
					attempted = nil
					continue
				}

				// Broken log: crash and restart. Recovery runs fault-free —
				// the bytes on disk are whatever the faulty run left there.
				crashes++
				l.Close()
				l2, recs, err := Open(dir, Options{})
				if err != nil {
					t.Fatalf("op %d: recovery failed: %v", i, err)
				}
				checkState(t, fmt.Sprintf("op %d", i), recs, acked, attempted)
				// Recovered state becomes the new acked baseline (the
				// unacked survivor, if any, is now durable fact).
				acked = replay(recs)
				attempted = nil
				l = l2
			}
			l.Close()

			if crashes == 0 {
				// The seed drew a plan with no log-breaking rule. Force one
				// deterministic crash cycle so every run proves recovery.
				torn := fault.NewPlan(fault.Rule{Site: fault.SiteWALAppend, Kind: fault.KindShortWrite})
				lf, recs, err := Open(dir, Options{Faults: torn})
				if err != nil {
					t.Fatalf("forced-crash open: %v", err)
				}
				acked = replay(recs)
				rec := Record{Op: OpPut, Name: "torn", Raw: doc(-1)}
				if err := lf.Append(rec); err == nil {
					t.Fatal("forced short write did not fail")
				}
				attempted = &rec
				lf.Close()
				crashes++
			}

			// Final restart, fault-free, double-checks end-state integrity.
			l3, recs, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("final recovery: %v", err)
			}
			checkState(t, "final", recs, acked, attempted)
			l3.Close()
			t.Logf("seed %d: %d crash-recovery cycles", seed, crashes)
		})
	}
}

func applyRecord(state map[string][]byte, rec Record) {
	switch rec.Op {
	case OpPut:
		state[rec.Name] = rec.Raw
	case OpDelete:
		delete(state, rec.Name)
	}
}

func replay(recs []Record) map[string][]byte {
	state := map[string][]byte{}
	for _, r := range recs {
		applyRecord(state, r)
	}
	return state
}

// checkState asserts the recovered records reproduce every acked
// mutation, allowing exactly the in-flight record (a commit that
// reached the disk but failed before acknowledging) as the one
// permitted divergence.
func checkState(t *testing.T, label string, recs []Record, acked map[string][]byte, attempted *Record) {
	t.Helper()
	got := replay(recs)

	for n, raw := range acked {
		g, ok := got[n]
		if !ok {
			// Only tolerable if the in-flight op was a delete of n that
			// made it to disk without an ack.
			if attempted != nil && attempted.Op == OpDelete && attempted.Name == n {
				continue
			}
			t.Fatalf("%s: committed problem %q lost after recovery", label, n)
		}
		if !bytes.Equal(g, raw) {
			if attempted != nil && attempted.Op == OpPut && attempted.Name == n && bytes.Equal(g, attempted.Raw) {
				continue // unacked overwrite that reached the platter
			}
			t.Fatalf("%s: problem %q recovered with wrong bytes: %q != %q", label, n, g, raw)
		}
	}
	for n, g := range got {
		if raw, ok := acked[n]; ok && bytes.Equal(g, raw) {
			continue
		}
		if attempted != nil && attempted.Op == OpPut && attempted.Name == n && bytes.Equal(g, attempted.Raw) {
			continue
		}
		t.Fatalf("%s: recovered problem %q matches neither acked nor in-flight state", label, n)
	}
}
