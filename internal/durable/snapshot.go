package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// snapshotDoc is the on-disk snapshot format: a version fence and the
// resident problems oldest-first, so replaying the PUTs reproduces the
// registry's LRU recency order.
type snapshotDoc struct {
	Version  int           `json:"version"`
	Written  time.Time     `json:"written"`
	Problems []snapshotRow `json:"problems"`
}

type snapshotRow struct {
	Name string `json:"name"`
	Raw  []byte `json:"raw"`
}

// Snapshot atomically replaces the on-disk snapshot with recs (the
// full resident state, oldest-first) and truncates the WAL: temp file,
// fsync, rename, directory fsync, then WAL truncation back to its
// header. A crash at any point is safe — before the rename the old
// snapshot+WAL still recover everything; between the rename and the
// truncation, recovery double-applies the WAL over the new snapshot,
// which replay idempotence absorbs.
//
// The caller must guarantee no Append runs between collecting recs and
// this call returning (rcserved's registry holds its mutex across
// both); otherwise the truncation could drop a record committed after
// the collection.
func (l *Log) Snapshot(recs []Record) error {
	doc := snapshotDoc{Version: snapshotVersion, Written: time.Now().UTC()}
	for _, r := range recs {
		if r.Op != OpPut {
			return fmt.Errorf("%w: snapshot records must be puts, got %q", ErrIO, r.Op)
		}
		doc.Problems = append(doc.Problems, snapshotRow{Name: r.Name, Raw: r.Raw})
	}
	buf, err := json.Marshal(&doc)
	if err != nil {
		return fmt.Errorf("%w: encode snapshot: %w", ErrIO, err)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}

	if err := l.opt.Faults.Visit(fault.SiteSnapshotWrite); err != nil {
		var inj *fault.Injected
		if errors.As(err, &inj) {
			switch inj.Kind {
			case fault.KindShortWrite:
				// Crash mid-snapshot: a torn temp file is left behind and
				// simply never renamed — the old snapshot stays authoritative.
				os.WriteFile(filepath.Join(l.dir, snapshotTmp), buf[:len(buf)/2], 0o644)
			case fault.KindCorrupt:
				bad := bytes.Clone(buf)
				bad[len(bad)/2] ^= 0xff
				os.WriteFile(filepath.Join(l.dir, snapshotTmp), bad, 0o644)
			}
		}
		return fmt.Errorf("%w: snapshot write: %w", ErrIO, err)
	}

	tmp := filepath.Join(l.dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("%w: snapshot temp: %w", ErrIO, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("%w: snapshot write: %w", ErrIO, err)
	}
	if !l.opt.NoFsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("%w: snapshot fsync: %w", ErrIO, err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%w: snapshot close: %w", ErrIO, err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotFile)); err != nil {
		return fmt.Errorf("%w: snapshot rename: %w", ErrIO, err)
	}
	if !l.opt.NoFsync {
		fsyncDir(l.dir)
	}

	// The snapshot now owns the state; the WAL records it folds in are
	// dead weight. A failed truncation is only a warning: recovery
	// replays snapshot + stale WAL, and replay idempotence makes that
	// correct (just slower).
	if l.broken {
		// After a failed commit the append offset is untrustworthy; the
		// snapshot itself is still good, so leave the WAL for recovery.
		l.warn("wal: skipping truncation on broken log (snapshot still valid)")
	} else if err := l.f.Truncate(int64(len(walMagic))); err != nil {
		l.warn("wal: truncation after snapshot failed; recovery will double-replay",
			slog.String("error", err.Error()))
	} else {
		l.off = int64(len(walMagic))
		if !l.opt.NoFsync {
			l.f.Sync()
		}
	}
	l.opt.Metrics.Inc(obs.SnapshotsWritten)
	l.info("snapshot written",
		slog.Int("problems", len(doc.Problems)),
		slog.Int("bytes", len(buf)))
	return nil
}

// loadSnapshot reads snapshot.json into replay records (all OpPut,
// oldest-first). A missing snapshot is an empty start; an unreadable,
// corrupt or version-skewed one is a hard error — durable state is
// never guessed at.
func (l *Log) loadSnapshot() ([]Record, error) {
	path := filepath.Join(l.dir, snapshotFile)
	buf, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("%w: read snapshot: %w", ErrIO, err)
	}
	if err := l.opt.Faults.Visit(fault.SiteSnapshotRead); err != nil {
		var inj *fault.Injected
		if errors.As(err, &inj) && inj.Kind == fault.KindCorrupt && len(buf) > 0 {
			buf = bytes.Clone(buf)
			buf[len(buf)/2] ^= 0xff
		} else {
			return nil, fmt.Errorf("%w: snapshot read: %w", ErrIO, err)
		}
	}
	var doc snapshotDoc
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%w: snapshot corrupt: %w", ErrIO, err)
	}
	if doc.Version != snapshotVersion {
		return nil, &VersionError{What: "snapshot", Got: doc.Version, Want: snapshotVersion}
	}
	recs := make([]Record, 0, len(doc.Problems))
	for _, p := range doc.Problems {
		recs = append(recs, Record{Op: OpPut, Name: p.Name, Raw: p.Raw})
	}
	return recs, nil
}
