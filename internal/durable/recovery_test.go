package durable

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeWAL builds a data dir whose WAL holds recs, committed through
// the real append path, then closes the log and returns the WAL path.
func writeWAL(t *testing.T, recs ...Record) (dir, walPath string) {
	t.Helper()
	dir = t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	return dir, filepath.Join(dir, walFile)
}

// Truncating the WAL at every possible byte offset — inside the
// header of a frame, inside its payload, mid-CRC — must always recover
// the longest valid record prefix, never error, and never yield a
// mangled record. This is the exhaustive torn-tail sweep.
func TestTornTailEveryOffset(t *testing.T) {
	all := []Record{
		{Op: OpPut, Name: "a", Raw: doc(1)},
		{Op: OpPut, Name: "b", Raw: doc(2)},
		{Op: OpDelete, Name: "a"},
	}
	dir, walPath := writeWAL(t, all...)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries: header, then each frame end.
	bounds := []int{len(walMagic)}
	off := len(walMagic)
	for range all {
		plen := int(uint32(full[off])<<24 | uint32(full[off+1])<<16 | uint32(full[off+2])<<8 | uint32(full[off+3]))
		off += frameHeaderLen + plen
		bounds = append(bounds, off)
	}
	if off != len(full) {
		t.Fatalf("frame walk ended at %d, file is %d bytes", off, len(full))
	}

	for cut := len(walMagic); cut < len(full); cut++ {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, walFile), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		// Number of whole records below the cut.
		want := 0
		for want < len(all) && bounds[want+1] <= cut {
			want++
		}
		wantRecords(t, recs, all[:want]...)
		// The tail was truncated away and the log accepts new commits.
		if err := l.AppendPut("post", doc(99)); err != nil {
			t.Fatalf("cut=%d append after recovery: %v", cut, err)
		}
		l.Close()
		_ = dir
	}
}

// A CRC-corrupt record in the middle of the log poisons everything
// from that record on: prefix-consistency means records after the
// corruption cannot be trusted to be the ones that were committed.
func TestCRCCorruptMidLog(t *testing.T) {
	all := []Record{
		{Op: OpPut, Name: "a", Raw: doc(1)},
		{Op: OpPut, Name: "b", Raw: doc(2)},
		{Op: OpPut, Name: "c", Raw: doc(3)},
	}
	dir, walPath := writeWAL(t, all...)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside record b's payload (second frame).
	off := len(walMagic)
	plen0 := int(uint32(full[off])<<24 | uint32(full[off+1])<<16 | uint32(full[off+2])<<8 | uint32(full[off+3]))
	frame1 := off + frameHeaderLen + plen0
	full[frame1+frameHeaderLen+2] ^= 0xff
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs := openT(t, dir, Options{})
	wantRecords(t, recs, all[0])
}

// A WAL written by a future format version is refused outright with a
// typed VersionError — recovery never guesses at unknown framing.
func TestWALVersionSkew(t *testing.T) {
	dir, walPath := writeWAL(t, Record{Op: OpPut, Name: "a", Raw: doc(1)})
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	full[5] = '9' // version byte
	if err := os.WriteFile(walPath, full, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, Options{})
	var ve *VersionError
	if !errors.As(err, &ve) || ve.What != "wal" || ve.Got != 9 || ve.Want != walVersion {
		t.Fatalf("err = %v, want wal VersionError got=9", err)
	}
	if !errors.Is(err, ErrIO) {
		t.Fatal("VersionError must unwrap to ErrIO")
	}
}

// A file that is not an rcwal log at all (someone pointed -data-dir at
// the wrong directory) is refused, not silently truncated to nothing.
func TestWALForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte("#!/bin/sh\necho not a wal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{})
	if err == nil || !errors.Is(err, ErrIO) {
		t.Fatalf("foreign wal accepted: %v", err)
	}
}

// A snapshot with a future version field is refused the same way.
func TestSnapshotVersionSkew(t *testing.T) {
	dir := t.TempDir()
	snap, err := json.Marshal(map[string]any{"version": snapshotVersion + 1, "problems": []any{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir, Options{})
	var ve *VersionError
	if !errors.As(err, &ve) || ve.What != "snapshot" || ve.Got != snapshotVersion+1 {
		t.Fatalf("err = %v, want snapshot VersionError", err)
	}
}

// A snapshot that does not parse as JSON is a hard error, not an empty
// start: pretending a corrupt snapshot is absent would resurrect
// deleted problems and drop committed ones.
func TestSnapshotCorruptIsHardError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte(`{"version": 1, "problems": [truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{})
	if err == nil || !errors.Is(err, ErrIO) {
		t.Fatalf("corrupt snapshot accepted: %v", err)
	}
}

// An abandoned snapshot.tmp (crash mid-snapshot, before the rename) is
// ignored by recovery: the old snapshot + WAL remain authoritative.
func TestAbandonedSnapshotTmpIgnored(t *testing.T) {
	dir, _ := writeWAL(t, Record{Op: OpPut, Name: "a", Raw: doc(1)})
	if err := os.WriteFile(filepath.Join(dir, snapshotTmp), []byte("torn snapsho"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, dir, Options{})
	wantRecords(t, recs, Record{Op: OpPut, Name: "a", Raw: doc(1)})
}

// Implausible length prefixes (a corrupt frame header pointing past
// any sane record size) stop the scan at that point instead of
// attempting a giant allocation.
func TestImplausibleLengthPrefix(t *testing.T) {
	dir, walPath := writeWAL(t, Record{Op: OpPut, Name: "a", Raw: doc(1)})
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(bad); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, recs := openT(t, dir, Options{})
	wantRecords(t, recs, Record{Op: OpPut, Name: "a", Raw: doc(1)})
}

// doc payloads with embedded newlines, non-UTF8 bytes and nested JSON
// survive the round trip byte-identically — the framing is binary-safe
// and Raw is never re-encoded.
func TestBinarySafePayloads(t *testing.T) {
	raw := append([]byte(`{"x":"`), 0x00, 0xff, '\n', '"', '}')
	dir, _ := writeWAL(t, Record{Op: OpPut, Name: "bin\nname", Raw: raw})
	_, recs := openT(t, dir, Options{})
	if len(recs) != 1 || recs[0].Name != "bin\nname" || !bytes.Equal(recs[0].Raw, raw) {
		t.Fatalf("binary payload mangled: %+v", recs)
	}
}

// Many records across several snapshot cycles: the final recovered
// sequence must reproduce exactly the post-snapshot state plus tail.
func TestSnapshotCycles(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	state := map[string][]byte{}
	order := []string{}
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("p%d", i%7)
		if i%5 == 4 {
			if err := l.AppendDelete(name); err != nil {
				t.Fatal(err)
			}
			delete(state, name)
		} else {
			if err := l.AppendPut(name, doc(i)); err != nil {
				t.Fatal(err)
			}
			state[name] = doc(i)
		}
		if i%10 == 9 {
			order = order[:0]
			for n := range state {
				order = append(order, n)
			}
			var recs []Record
			for _, n := range order {
				recs = append(recs, Record{Op: OpPut, Name: n, Raw: state[n]})
			}
			if err := l.Snapshot(recs); err != nil {
				t.Fatal(err)
			}
		}
	}
	l.Close()

	_, recs := openT(t, dir, Options{})
	got := map[string][]byte{}
	for _, r := range recs {
		switch r.Op {
		case OpPut:
			got[r.Name] = r.Raw
		case OpDelete:
			delete(got, r.Name)
		}
	}
	if len(got) != len(state) {
		t.Fatalf("recovered %d problems, want %d", len(got), len(state))
	}
	for n, raw := range state {
		if !bytes.Equal(got[n], raw) {
			t.Fatalf("problem %s: recovered %q, want %q", n, got[n], raw)
		}
	}
}
