package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"time"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// frameHeaderLen is the per-record framing overhead: 4-byte length +
// 4-byte CRC32.
const frameHeaderLen = 8

// maxRecordLen bounds one record's payload so a corrupt length prefix
// cannot make recovery allocate gigabytes. Registry documents are
// already capped well below this by the server's MaxBodyBytes.
const maxRecordLen = 1 << 28 // 256 MiB

// Append commits one mutation: frame, write, fsync, acknowledge. The
// record is durable when Append returns nil. On a short or corrupt
// write, or a failed fsync, the on-disk tail is in an unknown state:
// the log marks itself broken and every later Append fails fast with
// ErrBroken until the process restarts and recovery truncates the
// tear. A clean failure before any byte was written leaves the log
// usable.
func (l *Log) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("%w: encode record: %w", ErrIO, err)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed:
		return ErrClosed
	case l.broken:
		return ErrBroken
	}

	// Injected filesystem faults: a clean error refuses the commit
	// before any byte lands; a short write persists a torn prefix; a
	// corrupt write flips a payload byte after the CRC was computed.
	// Both of the latter leave an unknown tail, so they break the log —
	// exactly like their real-world counterparts.
	if err := l.opt.Faults.Visit(fault.SiteWALAppend); err != nil {
		var inj *fault.Injected
		if errors.As(err, &inj) {
			switch inj.Kind {
			case fault.KindShortWrite:
				l.f.WriteAt(frame[:len(frame)/2], l.off)
				l.broken = true
				return fmt.Errorf("%w: wal append: %w", ErrIO, err)
			case fault.KindCorrupt:
				bad := bytes.Clone(frame)
				bad[frameHeaderLen+len(payload)/2] ^= 0xff
				l.f.WriteAt(bad, l.off)
				l.broken = true
				return fmt.Errorf("%w: wal append: %w", ErrIO, err)
			}
		}
		return fmt.Errorf("%w: wal append: %w", ErrIO, err)
	}

	if _, err := l.f.WriteAt(frame, l.off); err != nil {
		// A real (possibly partial) write failure: try to cut the torn
		// tail back off. If even that fails the tail is unknown — broken.
		if terr := l.f.Truncate(l.off); terr != nil {
			l.broken = true
		}
		return fmt.Errorf("%w: wal write: %w", ErrIO, err)
	}

	if !l.opt.NoFsync {
		if err := l.opt.Faults.Visit(fault.SiteWALFsync); err != nil {
			l.broken = true
			return fmt.Errorf("%w: wal fsync: %w", ErrIO, err)
		}
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			// fsyncgate discipline: after a failed fsync the kernel may
			// have dropped the dirty pages; nothing short of restart +
			// recovery re-establishes what is on disk.
			l.broken = true
			return fmt.Errorf("%w: wal fsync: %w", ErrIO, err)
		}
		l.opt.Metrics.ObserveDuration(obs.WALFsyncNs, time.Since(start))
	}

	l.off += int64(len(frame))
	l.opt.Metrics.Inc(obs.WALAppends)
	return nil
}

// AppendPut commits a PUT of raw under name.
func (l *Log) AppendPut(name string, raw []byte) error {
	return l.Append(Record{Op: OpPut, Name: name, Raw: raw})
}

// AppendDelete commits a DELETE of name.
func (l *Log) AppendDelete(name string) error {
	return l.Append(Record{Op: OpDelete, Name: name})
}

// recoverWAL scans the WAL from the start, validates the header,
// parses records up to the first torn or corrupt frame, truncates the
// file back to that longest valid prefix and positions the append
// offset there. Called once from Open with the handle private.
func (l *Log) recoverWAL() ([]Record, error) {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return nil, fmt.Errorf("%w: read wal: %w", ErrIO, err)
	}
	if err := l.opt.Faults.Visit(fault.SiteWALRead); err != nil {
		var inj *fault.Injected
		if errors.As(err, &inj) && inj.Kind == fault.KindCorrupt && len(data) > len(walMagic) {
			// Silent media corruption: flip a byte somewhere past the
			// header. The CRC scan below must catch it and stop there.
			data = bytes.Clone(data)
			data[len(walMagic)+(len(data)-len(walMagic))/2] ^= 0xff
		} else {
			return nil, fmt.Errorf("%w: wal read: %w", ErrIO, err)
		}
	}

	if len(data) == 0 {
		// Fresh log: write the header so torn-header detection below
		// stays unambiguous for every later open.
		if _, err := l.f.WriteAt(walMagic, 0); err != nil {
			return nil, fmt.Errorf("%w: write wal header: %w", ErrIO, err)
		}
		if !l.opt.NoFsync {
			if err := l.f.Sync(); err != nil {
				return nil, fmt.Errorf("%w: sync wal header: %w", ErrIO, err)
			}
		}
		l.off = int64(len(walMagic))
		return nil, nil
	}
	if len(data) < len(walMagic) || !bytes.Equal(data[:5], walMagic[:5]) {
		return nil, fmt.Errorf("%w: wal header is not an rcwal file", ErrIO)
	}
	if !bytes.Equal(data[:len(walMagic)], walMagic) {
		return nil, &VersionError{What: "wal", Got: int(data[5] - '0'), Want: walVersion}
	}

	var recs []Record
	off := len(walMagic)
	valid := off
	discarded := 0
	var reason string
	for off < len(data) {
		if off+frameHeaderLen > len(data) {
			reason, discarded = "torn frame header", len(data)-off
			break
		}
		plen := int(binary.BigEndian.Uint32(data[off : off+4]))
		if plen > maxRecordLen {
			reason, discarded = "implausible record length (corrupt prefix)", len(data)-off
			break
		}
		if off+frameHeaderLen+plen > len(data) {
			reason, discarded = "torn record payload", len(data)-off
			break
		}
		payload := data[off+frameHeaderLen : off+frameHeaderLen+plen]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[off+4:off+8]) {
			reason, discarded = "CRC mismatch", len(data)-off
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			reason, discarded = "unparsable record payload", len(data)-off
			break
		}
		recs = append(recs, rec)
		off += frameHeaderLen + plen
		valid = off
	}
	if discarded > 0 {
		// The residue of a crash mid-commit (or of silent corruption):
		// nothing past this point was ever acknowledged as committed —
		// or, if corrupted in place, can no longer be trusted — so the
		// only sound move is to drop it, loudly.
		l.warn("wal: discarding torn/corrupt tail",
			slog.String("reason", reason),
			slog.Int("bytes_discarded", discarded),
			slog.Int("records_recovered", len(recs)),
			slog.Int64("valid_prefix_bytes", int64(valid)),
		)
		l.opt.Metrics.Inc(obs.RecoveryDiscards)
		if err := l.f.Truncate(int64(valid)); err != nil {
			return nil, fmt.Errorf("%w: truncate torn wal tail: %w", ErrIO, err)
		}
		if !l.opt.NoFsync {
			if err := l.f.Sync(); err != nil {
				return nil, fmt.Errorf("%w: sync truncated wal: %w", ErrIO, err)
			}
		}
	}
	l.off = int64(valid)
	return recs, nil
}

// fsyncDir syncs a directory so a just-renamed file's directory entry
// is durable. Best effort on platforms where directories cannot be
// fsynced.
func fsyncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
