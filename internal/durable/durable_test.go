package durable

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// openT opens dir, failing the test on error.
func openT(t *testing.T, dir string, opt Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs
}

func doc(i int) []byte {
	return []byte(fmt.Sprintf(`{"problem": %d}`, i))
}

func wantRecords(t *testing.T, got []Record, want ...Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Name != want[i].Name || !bytes.Equal(got[i].Raw, want[i].Raw) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// An empty data directory is a valid cold start: no records, appends
// accepted, and the directory is created on demand.
func TestEmptyDataDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "does", "not", "exist", "yet")
	l, recs := openT(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("cold start recovered %d records", len(recs))
	}
	if !l.Healthy() {
		t.Fatal("fresh log not healthy")
	}
	if err := l.AppendPut("a", doc(1)); err != nil {
		t.Fatal(err)
	}
}

// Committed records survive close + reopen byte-identically and in
// order; a second recovery replays the identical sequence (replay is
// read-only and idempotent).
func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics()
	l, _ := openT(t, dir, Options{Metrics: m})
	if err := l.AppendPut("a", doc(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPut("b", doc(2)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPut("a", doc(3)); err != nil { // replace
		t.Fatal(err)
	}
	if err := l.AppendDelete("b"); err != nil {
		t.Fatal(err)
	}
	if got := m.Get(obs.WALAppends); got != 4 {
		t.Fatalf("wal_appends = %d, want 4", got)
	}
	if m.HistoCount(obs.WALFsyncNs) != 4 {
		t.Fatalf("wal_fsync_seconds count = %d, want 4", m.HistoCount(obs.WALFsyncNs))
	}
	l.Close()

	want := []Record{
		{Op: OpPut, Name: "a", Raw: doc(1)},
		{Op: OpPut, Name: "b", Raw: doc(2)},
		{Op: OpPut, Name: "a", Raw: doc(3)},
		{Op: OpDelete, Name: "b"},
	}
	m2 := obs.NewMetrics()
	l2, recs := openT(t, dir, Options{Metrics: m2})
	wantRecords(t, recs, want...)
	if m2.Get(obs.Recoveries) != 1 || m2.Get(obs.WALReplayed) != 4 {
		t.Fatalf("recovery counters: recoveries=%d wal_replayed=%d",
			m2.Get(obs.Recoveries), m2.Get(obs.WALReplayed))
	}
	l2.Close()

	// Double replay: recovering again yields the identical sequence.
	l3, recs2 := openT(t, dir, Options{})
	wantRecords(t, recs2, want...)
	l3.Close()
}

// A snapshot folds the WAL into snapshot.json, truncates the log, and
// recovery replays snapshot-then-WAL in order.
func TestSnapshotThenAppend(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics()
	l, _ := openT(t, dir, Options{Metrics: m})
	if err := l.AppendPut("a", doc(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPut("b", doc(2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]Record{
		{Op: OpPut, Name: "a", Raw: doc(1)},
		{Op: OpPut, Name: "b", Raw: doc(2)},
	}); err != nil {
		t.Fatal(err)
	}
	if m.Get(obs.SnapshotsWritten) != 1 {
		t.Fatalf("snapshots_written = %d", m.Get(obs.SnapshotsWritten))
	}
	// The WAL is back to its bare header.
	fi, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(walMagic)) {
		t.Fatalf("wal size after snapshot = %d, want %d", fi.Size(), len(walMagic))
	}
	// Mutations after the snapshot land in the (fresh) WAL.
	if err := l.AppendDelete("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPut("c", doc(3)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, recs := openT(t, dir, Options{})
	wantRecords(t, recs,
		Record{Op: OpPut, Name: "a", Raw: doc(1)},
		Record{Op: OpPut, Name: "b", Raw: doc(2)},
		Record{Op: OpDelete, Name: "a"},
		Record{Op: OpPut, Name: "c", Raw: doc(3)},
	)
}

// A crash between the snapshot rename and the WAL truncation leaves
// both the new snapshot and the full WAL: recovery double-applies,
// which must be observationally idempotent (PUT upserts, DELETE of a
// missing name no-ops) — asserted here at the record level by checking
// the replay yields snapshot records followed by every WAL record.
func TestSnapshotWithoutTruncationDoubleReplays(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	if err := l.AppendPut("a", doc(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPut("b", doc(2)); err != nil {
		t.Fatal(err)
	}
	// Snapshot, then resurrect the pre-snapshot WAL bytes to simulate
	// the crash-before-truncate window.
	walPath := filepath.Join(dir, walFile)
	pre, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]Record{
		{Op: OpPut, Name: "a", Raw: doc(1)},
		{Op: OpPut, Name: "b", Raw: doc(2)},
	}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.WriteFile(walPath, pre, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs := openT(t, dir, Options{})
	wantRecords(t, recs,
		Record{Op: OpPut, Name: "a", Raw: doc(1)},
		Record{Op: OpPut, Name: "b", Raw: doc(2)},
		Record{Op: OpPut, Name: "a", Raw: doc(1)},
		Record{Op: OpPut, Name: "b", Raw: doc(2)},
	)
}

// An injected fsync failure refuses the commit and breaks the log:
// the un-acknowledged record may or may not be on disk, every further
// append fails fast with ErrBroken, and Healthy reports false (the
// /readyz signal). After restart, recovery accepts whichever prefix
// is intact — committed records are all present.
func TestFsyncFaultBreaksLog(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan(fault.Rule{Site: fault.SiteWALFsync, Kind: fault.KindError, After: 1, Every: 1})
	l, _ := openT(t, dir, Options{Faults: plan})
	if err := l.AppendPut("a", doc(1)); err != nil {
		t.Fatal(err)
	}
	err := l.AppendPut("b", doc(2))
	if err == nil {
		t.Fatal("fsync fault not surfaced")
	}
	if !errors.Is(err, ErrIO) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrIO wrapping the injected fault", err)
	}
	if l.Healthy() {
		t.Fatal("log still healthy after failed fsync")
	}
	if err := l.AppendPut("c", doc(3)); !errors.Is(err, ErrBroken) {
		t.Fatalf("append on broken log = %v, want ErrBroken", err)
	}
	l.Close()

	_, recs := openT(t, dir, Options{})
	if len(recs) < 1 || recs[0].Name != "a" {
		t.Fatalf("committed record lost: %+v", recs)
	}
	for _, r := range recs {
		if r.Name == "c" {
			t.Fatal("never-written record resurrected")
		}
	}
}

// An injected short write leaves a torn tail: the failed record was
// never acknowledged, and recovery truncates it away while keeping
// every committed record.
func TestShortWriteFaultTornTail(t *testing.T) {
	dir := t.TempDir()
	logBuf := &bytes.Buffer{}
	plan := fault.NewPlan(fault.Rule{Site: fault.SiteWALAppend, Kind: fault.KindShortWrite, After: 1, Every: 1})
	l, _ := openT(t, dir, Options{Faults: plan})
	if err := l.AppendPut("a", doc(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPut("b", doc(2)); err == nil {
		t.Fatal("short write not surfaced")
	}
	if l.Healthy() {
		t.Fatal("log still healthy after torn write")
	}
	l.Close()

	m := obs.NewMetrics()
	_, recs := openT(t, dir, Options{
		Logger:  slog.New(slog.NewJSONHandler(logBuf, nil)),
		Metrics: m,
	})
	wantRecords(t, recs, Record{Op: OpPut, Name: "a", Raw: doc(1)})
	if !bytes.Contains(logBuf.Bytes(), []byte("discarding torn/corrupt tail")) {
		t.Fatalf("no torn-tail warning logged: %s", logBuf)
	}
	if m.Get(obs.RecoveryDiscards) != 1 {
		t.Fatalf("recovery_discards = %d", m.Get(obs.RecoveryDiscards))
	}
}

// An injected corrupt write (bit rot between CRC computation and the
// platter) also refuses the ack; the CRC scan drops the record on
// recovery.
func TestCorruptWriteFaultDetectedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan(fault.Rule{Site: fault.SiteWALAppend, Kind: fault.KindCorrupt, After: 1, Every: 1})
	l, _ := openT(t, dir, Options{Faults: plan})
	if err := l.AppendPut("a", doc(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPut("b", doc(2)); err == nil {
		t.Fatal("corrupt write not surfaced")
	}
	l.Close()

	_, recs := openT(t, dir, Options{})
	wantRecords(t, recs, Record{Op: OpPut, Name: "a", Raw: doc(1)})
}

// A clean injected error at the append site (ENOSPC-style, nothing
// written) fails the one commit but leaves the log usable.
func TestCleanAppendErrorKeepsLogUsable(t *testing.T) {
	dir := t.TempDir()
	plan := fault.NewPlan(fault.Rule{Site: fault.SiteWALAppend, Kind: fault.KindError, After: 1, Every: 1 << 30})
	l, _ := openT(t, dir, Options{Faults: plan})
	if err := l.AppendPut("a", doc(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendPut("b", doc(2)); err == nil {
		t.Fatal("injected error not surfaced")
	}
	if !l.Healthy() {
		t.Fatal("clean error must not break the log")
	}
	if err := l.AppendPut("c", doc(3)); err != nil {
		t.Fatalf("append after clean error: %v", err)
	}
	l.Close()

	_, recs := openT(t, dir, Options{})
	wantRecords(t, recs,
		Record{Op: OpPut, Name: "a", Raw: doc(1)},
		Record{Op: OpPut, Name: "c", Raw: doc(3)},
	)
}

// Close fences every later operation with ErrClosed.
func TestClosedLog(t *testing.T) {
	l, _ := openT(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := l.AppendPut("a", doc(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v", err)
	}
	if err := l.Snapshot(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after close = %v", err)
	}
	if l.Healthy() {
		t.Fatal("closed log reports healthy")
	}
}
