package query

import (
	"fmt"

	"relcomplete/internal/relation"
)

// This file is the query half fQ of Lemma 3.2: rewriting a query over a
// multi-relation schema R = (R1, ..., Rn) into an equivalent query over
// the merged single-relation schema, substituting
// R_merged('Ri', x⃗, ⊥, ..., ⊥) for every occurrence of Ri(x⃗).
//
// The test Q(I) = fQ(Q)(fD(I)) of Lemma 3.2(a) is verified in
// merge_test.go against the evaluation engine.

// mergeAtom rewrites a single source atom.
func mergeAtom(m *relation.Merger, a *Atom) (*Atom, error) {
	src := m.Source().Relation(a.Rel)
	if src == nil {
		return nil, fmt.Errorf("merge: unknown relation %s", a.Rel)
	}
	if len(a.Terms) != src.Arity() {
		return nil, fmt.Errorf("merge: atom %s has arity %d, want %d", a, len(a.Terms), src.Arity())
	}
	pad, err := m.PadWidth(a.Rel)
	if err != nil {
		return nil, err
	}
	terms := make([]Term, 0, 1+len(a.Terms)+pad)
	terms = append(terms, C(relation.Value(a.Rel)))
	terms = append(terms, a.Terms...)
	for i := 0; i < pad; i++ {
		terms = append(terms, C(relation.Pad))
	}
	return &Atom{Rel: m.Merged().Name, Terms: terms}, nil
}

// MergeFormula rewrites every atom of the formula for the merged schema.
func MergeFormula(m *relation.Merger, f Formula) (Formula, error) {
	switch x := f.(type) {
	case *Atom:
		return mergeAtom(m, x)
	case *Compare:
		return x, nil
	case *And:
		kids := make([]Formula, len(x.Kids))
		for i, k := range x.Kids {
			mk, err := MergeFormula(m, k)
			if err != nil {
				return nil, err
			}
			kids[i] = mk
		}
		return &And{Kids: kids}, nil
	case *Or:
		kids := make([]Formula, len(x.Kids))
		for i, k := range x.Kids {
			mk, err := MergeFormula(m, k)
			if err != nil {
				return nil, err
			}
			kids[i] = mk
		}
		return &Or{Kids: kids}, nil
	case *Not:
		sub, err := MergeFormula(m, x.Sub)
		if err != nil {
			return nil, err
		}
		return &Not{Sub: sub}, nil
	case *Exists:
		sub, err := MergeFormula(m, x.Sub)
		if err != nil {
			return nil, err
		}
		return &Exists{Vars: x.Vars, Sub: sub}, nil
	case *Forall:
		sub, err := MergeFormula(m, x.Sub)
		if err != nil {
			return nil, err
		}
		return &Forall{Vars: x.Vars, Sub: sub}, nil
	}
	return nil, fmt.Errorf("merge: unknown formula node %T", f)
}

// MergeQuery rewrites a query for the merged schema (the paper's fQ).
func MergeQuery(m *relation.Merger, q *Query) (*Query, error) {
	body, err := MergeFormula(m, q.Body)
	if err != nil {
		return nil, fmt.Errorf("merge query %s: %w", q.Name, err)
	}
	return &Query{Name: q.Name, Head: q.Head, Body: body}, nil
}
