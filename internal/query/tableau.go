package query

import (
	"fmt"
	"sort"

	"relcomplete/internal/relation"
)

// Tableau is the tableau representation (TQ, uQ) of a conjunctive
// query: the relation atoms of the body (rows that may contain
// variables), the comparison conditions, and the output summary uQ.
// The paper treats TQ as a c-table without local conditions; the
// comparisons are carried alongside so queries with ≠ keep their exact
// semantics.
type Tableau struct {
	Head     []Term
	Atoms    []*Atom
	Compares []*Compare
	Vars     []string // every variable of the atoms/compares/head, sorted
}

// TableauOf extracts the tableau of a CQ. The query body must be
// disjunction- and negation-free (quantifiers are stripped: under
// set semantics a CQ's existential variables and free variables are
// handled uniformly by valuations).
func TableauOf(q *Query) (*Tableau, error) {
	t := &Tableau{Head: q.Head}
	if err := t.collect(q.Body); err != nil {
		return nil, fmt.Errorf("tableau of %s: %w", q.Name, err)
	}
	seen := map[string]bool{}
	add := func(tm Term) {
		if tm.IsVar {
			seen[tm.Name] = true
		}
	}
	for _, a := range t.Atoms {
		for _, tm := range a.Terms {
			add(tm)
		}
	}
	for _, c := range t.Compares {
		add(c.L)
		add(c.R)
	}
	for _, h := range t.Head {
		add(h)
	}
	for v := range seen {
		t.Vars = append(t.Vars, v)
	}
	sort.Strings(t.Vars)
	return t, nil
}

func (t *Tableau) collect(f Formula) error {
	switch x := f.(type) {
	case *Atom:
		t.Atoms = append(t.Atoms, x)
	case *Compare:
		t.Compares = append(t.Compares, x)
	case *And:
		for _, k := range x.Kids {
			if err := t.collect(k); err != nil {
				return err
			}
		}
	case *Exists:
		return t.collect(x.Sub)
	default:
		return fmt.Errorf("formula %s is not conjunctive", f)
	}
	return nil
}

// SatisfiedBy reports whether a total valuation of the tableau's
// variables satisfies every comparison condition.
func (t *Tableau) SatisfiedBy(val map[string]relation.Value) bool {
	for _, c := range t.Compares {
		l, okL := termValue(c.L, val)
		r, okR := termValue(c.R, val)
		if !okL || !okR {
			return false
		}
		if (c.Op == Eq) != (l == r) {
			return false
		}
	}
	return true
}

// Instantiate applies a total valuation to the tableau's atoms and
// returns the resulting facts as (relation, tuple) pairs. It fails when
// a variable is unassigned.
func (t *Tableau) Instantiate(val map[string]relation.Value) ([]relation.Located, error) {
	out := make([]relation.Located, 0, len(t.Atoms))
	for _, a := range t.Atoms {
		tup := make(relation.Tuple, len(a.Terms))
		for i, tm := range a.Terms {
			v, ok := termValue(tm, val)
			if !ok {
				return nil, fmt.Errorf("tableau: variable %s unassigned", tm.Name)
			}
			tup[i] = v
		}
		out = append(out, relation.Located{Rel: a.Rel, Tuple: tup})
	}
	return out, nil
}

// HeadTuple applies a total valuation to the output summary uQ.
func (t *Tableau) HeadTuple(val map[string]relation.Value) (relation.Tuple, error) {
	out := make(relation.Tuple, len(t.Head))
	for i, tm := range t.Head {
		v, ok := termValue(tm, val)
		if !ok {
			return nil, fmt.Errorf("tableau: head variable %s unassigned", tm.Name)
		}
		out[i] = v
	}
	return out, nil
}

func termValue(t Term, val map[string]relation.Value) (relation.Value, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	v, ok := val[t.Name]
	return v, ok
}

// RenameVars returns a copy of the formula with every variable x
// (free and bound) renamed to prefix+x, guaranteeing disjointness from
// any namespace not using the prefix.
func RenameVars(f Formula, prefix string) Formula {
	ren := func(t Term) Term {
		if t.IsVar {
			return V(prefix + t.Name)
		}
		return t
	}
	switch x := f.(type) {
	case *Atom:
		terms := make([]Term, len(x.Terms))
		for i, tm := range x.Terms {
			terms[i] = ren(tm)
		}
		return &Atom{Rel: x.Rel, Terms: terms}
	case *Compare:
		return &Compare{Op: x.Op, L: ren(x.L), R: ren(x.R)}
	case *And:
		kids := make([]Formula, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = RenameVars(k, prefix)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Formula, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = RenameVars(k, prefix)
		}
		return &Or{Kids: kids}
	case *Not:
		return &Not{Sub: RenameVars(x.Sub, prefix)}
	case *Exists:
		vars := make([]string, len(x.Vars))
		for i, v := range x.Vars {
			vars[i] = prefix + v
		}
		return &Exists{Vars: vars, Sub: RenameVars(x.Sub, prefix)}
	case *Forall:
		vars := make([]string, len(x.Vars))
		for i, v := range x.Vars {
			vars[i] = prefix + v
		}
		return &Forall{Vars: vars, Sub: RenameVars(x.Sub, prefix)}
	}
	return f
}

// RenameQuery renames every variable of the query (head and body) with
// the prefix.
func RenameQuery(q *Query, prefix string) *Query {
	head := make([]Term, len(q.Head))
	for i, t := range q.Head {
		if t.IsVar {
			head[i] = V(prefix + t.Name)
		} else {
			head[i] = t
		}
	}
	return &Query{Name: q.Name, Head: head, Body: RenameVars(q.Body, prefix)}
}

// Substitute replaces free occurrences of variables by constants
// according to the (partial) valuation. Bound variables are untouched.
func Substitute(f Formula, val map[string]relation.Value) Formula {
	sub := func(t Term, bound map[string]bool) Term {
		if t.IsVar && !bound[t.Name] {
			if v, ok := val[t.Name]; ok {
				return C(v)
			}
		}
		return t
	}
	var walk func(Formula, map[string]bool) Formula
	walk = func(g Formula, bound map[string]bool) Formula {
		switch x := g.(type) {
		case *Atom:
			terms := make([]Term, len(x.Terms))
			for i, tm := range x.Terms {
				terms[i] = sub(tm, bound)
			}
			return &Atom{Rel: x.Rel, Terms: terms}
		case *Compare:
			return &Compare{Op: x.Op, L: sub(x.L, bound), R: sub(x.R, bound)}
		case *And:
			kids := make([]Formula, len(x.Kids))
			for i, k := range x.Kids {
				kids[i] = walk(k, bound)
			}
			return &And{Kids: kids}
		case *Or:
			kids := make([]Formula, len(x.Kids))
			for i, k := range x.Kids {
				kids[i] = walk(k, bound)
			}
			return &Or{Kids: kids}
		case *Not:
			return &Not{Sub: walk(x.Sub, bound)}
		case *Exists:
			return &Exists{Vars: x.Vars, Sub: walk(x.Sub, withBound(bound, x.Vars))}
		case *Forall:
			return &Forall{Vars: x.Vars, Sub: walk(x.Sub, withBound(bound, x.Vars))}
		}
		return g
	}
	return walk(f, map[string]bool{})
}

// RenameSpecific renames every occurrence (term positions and binder
// lists) of the listed variable names throughout the formula. Because
// binders of a renamed name are renamed consistently, the rewriting
// preserves semantics whenever the listed names are bound at the point
// the caller strips (e.g. alpha-renaming an Exists binder).
func RenameSpecific(f Formula, ren map[string]string) Formula {
	sub := func(t Term) Term {
		if t.IsVar {
			if n, ok := ren[t.Name]; ok {
				return V(n)
			}
		}
		return t
	}
	subVars := func(vars []string) []string {
		out := make([]string, len(vars))
		for i, v := range vars {
			if n, ok := ren[v]; ok {
				out[i] = n
			} else {
				out[i] = v
			}
		}
		return out
	}
	switch x := f.(type) {
	case *Atom:
		terms := make([]Term, len(x.Terms))
		for i, tm := range x.Terms {
			terms[i] = sub(tm)
		}
		return &Atom{Rel: x.Rel, Terms: terms}
	case *Compare:
		return &Compare{Op: x.Op, L: sub(x.L), R: sub(x.R)}
	case *And:
		kids := make([]Formula, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = RenameSpecific(k, ren)
		}
		return &And{Kids: kids}
	case *Or:
		kids := make([]Formula, len(x.Kids))
		for i, k := range x.Kids {
			kids[i] = RenameSpecific(k, ren)
		}
		return &Or{Kids: kids}
	case *Not:
		return &Not{Sub: RenameSpecific(x.Sub, ren)}
	case *Exists:
		return &Exists{Vars: subVars(x.Vars), Sub: RenameSpecific(x.Sub, ren)}
	case *Forall:
		return &Forall{Vars: subVars(x.Vars), Sub: RenameSpecific(x.Sub, ren)}
	}
	return f
}
