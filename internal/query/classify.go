package query

// Class identifies the smallest language tier of the paper a query
// belongs to, by syntax: CQ ⊆ UCQ ⊆ ∃FO+ ⊆ FO. FP programs are a
// separate type (Program).
type Class int

// The language tiers, ordered by inclusion.
const (
	ClassCQ Class = iota
	ClassUCQ
	ClassEFOPlus
	ClassFO
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case ClassCQ:
		return "CQ"
	case ClassUCQ:
		return "UCQ"
	case ClassEFOPlus:
		return "∃FO+"
	default:
		return "FO"
	}
}

// Includes reports whether language c contains language d.
func (c Class) Includes(d Class) bool { return d <= c }

// Monotone reports whether every query of the class is monotone
// (preserved under instance extension). CQ, UCQ and ∃FO+ are; FO is not.
func (c Class) Monotone() bool { return c != ClassFO }

// Classify returns the smallest tier containing the query.
func Classify(q *Query) Class { return classifyFormula(q.Body) }

func classifyFormula(f Formula) Class {
	switch x := f.(type) {
	case *Atom, *Compare:
		return ClassCQ
	case *And:
		c := ClassCQ
		for _, k := range x.Kids {
			if kc := classifyFormula(k); kc > c {
				c = kc
			}
		}
		// A conjunction containing a disjunction is ∃FO+, not UCQ,
		// until it is normalised.
		if c == ClassUCQ {
			c = ClassEFOPlus
		}
		return c
	case *Or:
		c := ClassCQ
		for _, k := range x.Kids {
			kc := classifyFormula(k)
			if kc > c {
				c = kc
			}
		}
		switch c {
		case ClassCQ:
			return ClassUCQ
		case ClassUCQ, ClassEFOPlus:
			return ClassEFOPlus
		default:
			return ClassFO
		}
	case *Exists:
		c := classifyFormula(x.Sub)
		if c == ClassUCQ {
			// ∃ over a union is ∃FO+ syntactically; Disjuncts can
			// normalise it back to UCQ.
			return ClassEFOPlus
		}
		return c
	case *Not, *Forall:
		return ClassFO
	}
	return ClassFO
}

// IsPositiveExistential reports whether the query is in ∃FO+
// (equivalently: no negation and no universal quantification).
func IsPositiveExistential(q *Query) bool { return Classify(q) <= ClassEFOPlus }

// Disjuncts converts an ∃FO+ query into its union-of-conjunctive-queries
// form: a slice of CQ queries with the same head whose union is
// equivalent. For a CQ it returns the query itself (normalised); for a
// UCQ its disjuncts; for general ∃FO+ it distributes ∧ over ∨ and pushes
// ∃ inward, which may grow the query exponentially — exactly the blowup
// the paper avoids in its Πp2 algorithms. Callers that must avoid the
// blowup (the RCDP deciders) should use DisjunctIterator instead.
//
// Disjuncts returns nil when the query is not in ∃FO+.
func Disjuncts(q *Query) []*Query {
	if !IsPositiveExistential(q) {
		return nil
	}
	bodies := dnf(q.Body)
	out := make([]*Query, 0, len(bodies))
	for i, b := range bodies {
		name := q.Name
		if len(bodies) > 1 {
			name = q.Name + "#" + string(rune('0'+i%10))
		}
		out = append(out, &Query{Name: name, Head: q.Head, Body: b})
	}
	return out
}

// dnf rewrites a positive existential formula into a list of
// disjunction-free formulas whose union is equivalent.
func dnf(f Formula) []Formula {
	switch x := f.(type) {
	case *Atom, *Compare:
		return []Formula{f}
	case *Or:
		var out []Formula
		for _, k := range x.Kids {
			out = append(out, dnf(k)...)
		}
		return out
	case *And:
		// Cartesian product of the kids' disjunct lists.
		acc := []([]Formula){nil}
		for _, k := range x.Kids {
			kd := dnf(k)
			next := make([][]Formula, 0, len(acc)*len(kd))
			for _, pre := range acc {
				for _, d := range kd {
					row := make([]Formula, len(pre), len(pre)+1)
					copy(row, pre)
					next = append(next, append(row, d))
				}
			}
			acc = next
		}
		out := make([]Formula, len(acc))
		for i, row := range acc {
			out[i] = Conj(row...)
		}
		return out
	case *Exists:
		sub := dnf(x.Sub)
		out := make([]Formula, len(sub))
		for i, s := range sub {
			out[i] = Ex(x.Vars, s)
		}
		return out
	default:
		// Not / Forall: caller guarantees ∃FO+; be defensive.
		return []Formula{f}
	}
}

// CountDisjuncts returns how many CQ disjuncts Disjuncts would produce,
// without materialising them.
func CountDisjuncts(f Formula) int {
	switch x := f.(type) {
	case *Atom, *Compare:
		return 1
	case *Or:
		n := 0
		for _, k := range x.Kids {
			n += CountDisjuncts(k)
		}
		return n
	case *And:
		n := 1
		for _, k := range x.Kids {
			n *= CountDisjuncts(k)
		}
		return n
	case *Exists:
		return CountDisjuncts(x.Sub)
	default:
		return 1
	}
}

// DisjunctIterator enumerates the CQ disjuncts of an ∃FO+ query one at
// a time without materialising the full DNF: it mirrors the paper's
// "guess one of the component queries / guess disjunctions in Q" step
// in the Πp2 algorithms of Theorem 4.1. Next returns nil when the
// enumeration is exhausted.
type DisjunctIterator struct {
	head   []Term
	name   string
	bodies []Formula // lazily expanded frontier, depth-first
}

// NewDisjunctIterator prepares the enumeration; it returns nil when the
// query is not positive existential.
func NewDisjunctIterator(q *Query) *DisjunctIterator {
	if !IsPositiveExistential(q) {
		return nil
	}
	return &DisjunctIterator{head: q.Head, name: q.Name, bodies: []Formula{q.Body}}
}

// Next returns the next CQ disjunct, or nil when done.
func (it *DisjunctIterator) Next() *Query {
	for len(it.bodies) > 0 {
		f := it.bodies[len(it.bodies)-1]
		it.bodies = it.bodies[:len(it.bodies)-1]
		expanded, done := stepDNF(f)
		if done {
			return &Query{Name: it.name, Head: it.head, Body: f}
		}
		it.bodies = append(it.bodies, expanded...)
	}
	return nil
}

// stepDNF performs a single outermost Or-elimination step; done is true
// when f contains no Or and is therefore a CQ body.
func stepDNF(f Formula) ([]Formula, bool) {
	if !containsOr(f) {
		return nil, true
	}
	switch x := f.(type) {
	case *Or:
		return append([]Formula(nil), x.Kids...), false
	case *And:
		for i, k := range x.Kids {
			if containsOr(k) {
				kd, done := stepDNF(k)
				if done {
					continue
				}
				out := make([]Formula, 0, len(kd))
				for _, d := range kd {
					kids := make([]Formula, len(x.Kids))
					copy(kids, x.Kids)
					kids[i] = d
					out = append(out, Conj(kids...))
				}
				return out, false
			}
		}
		return nil, true
	case *Exists:
		kd, done := stepDNF(x.Sub)
		if done {
			return nil, true
		}
		out := make([]Formula, 0, len(kd))
		for _, d := range kd {
			out = append(out, Ex(x.Vars, d))
		}
		return out, false
	default:
		return nil, true
	}
}

func containsOr(f Formula) bool {
	switch x := f.(type) {
	case *Or:
		return true
	case *And:
		for _, k := range x.Kids {
			if containsOr(k) {
				return true
			}
		}
	case *Exists:
		return containsOr(x.Sub)
	case *Not:
		return containsOr(x.Sub)
	case *Forall:
		return containsOr(x.Sub)
	}
	return false
}
