package query

import (
	"fmt"
	"strings"
	"unicode"

	"relcomplete/internal/relation"
)

// This file implements a text syntax for the paper's query languages.
//
// Queries:
//
//	Q(x, y) := R(x, z) & S(z, 'EDI') & x != y
//	Q2(n)   := exists c, y: MVisit(n, c, y) & y = '2000'
//	Q3()    := ! (exists x: R(x, x))            -- FO
//	Q4(x)   := R(x) | S(x)                      -- UCQ
//
// Conventions: identifiers beginning with a lowercase letter or '_'
// are variables; quoted tokens ('...'), numbers and identifiers
// beginning with an uppercase letter are constants. Relation names in
// atom position may be any identifier. '&' and ',' both mean ∧; '|'
// means ∨; '!' and 'not' mean ¬; 'exists v1, v2: F' and
// 'forall v: F' quantify (their scope extends as far right as
// possible).
//
// FP programs (ParseProgram):
//
//	reach(x, y) :- edge(x, y).
//	reach(x, z) :- reach(x, y), edge(y, z).
//	output reach.

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokConst // quoted string or number
	tokLParen
	tokRParen
	tokComma
	tokColon
	tokPipe
	tokAmp
	tokBang
	tokEq
	tokNeq
	tokAssign // :=
	tokArrow  // :-
	tokDot
	tokSlash
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '%' || (c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-'):
			// Comment to end of line.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '|':
			l.emit(tokPipe, "|")
		case c == '&':
			l.emit(tokAmp, "&")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '/':
			l.emit(tokSlash, "/")
		case c == '=':
			l.emit(tokEq, "=")
		case c == '!':
			if l.peek(1) == '=' {
				l.emitN(tokNeq, "!=", 2)
			} else {
				l.emit(tokBang, "!")
			}
		case c == ':':
			switch l.peek(1) {
			case '=':
				l.emitN(tokAssign, ":=", 2)
			case '-':
				l.emitN(tokArrow, ":-", 2)
			default:
				l.emit(tokColon, ":")
			}
		case c == '\'':
			end := l.pos + 1
			for end < len(l.src) && l.src[end] != '\'' {
				end++
			}
			if end >= len(l.src) {
				return nil, fmt.Errorf("query: unterminated string at %d", l.pos)
			}
			l.toks = append(l.toks, token{kind: tokConst, text: l.src[l.pos+1 : end], pos: l.pos})
			l.pos = end + 1
		case isIdentStart(rune(c)) || unicode.IsDigit(rune(c)):
			end := l.pos
			for end < len(l.src) && isIdentPart(rune(l.src[end])) {
				end++
			}
			word := l.src[l.pos:end]
			l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: l.pos})
			l.pos = end
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: len(src)})
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) { l.emitN(k, text, 1) }
func (l *lexer) emitN(k tokKind, text string, n int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
	l.pos += n
}

func (l *lexer) peek(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// isVariableName implements the variable/constant convention.
func isVariableName(word string) bool {
	r := rune(word[0])
	return unicode.IsLower(r) || r == '_'
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expect(k tokKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, fmt.Errorf("query: expected %s at %d, got %q", what, p.cur().pos, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) keyword(word string) bool {
	if p.cur().kind == tokIdent && p.cur().text == word {
		p.next()
		return true
	}
	return false
}

// ParseQuery parses "Name(t1, ..., tk) := formula".
func ParseQuery(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	nameTok, err := p.expect(tokIdent, "query name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var head []Term
	if p.cur().kind != tokRParen {
		for {
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			head = append(head, t)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign, ":="); err != nil {
		return nil, err
	}
	body, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokDot {
		p.next()
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("query: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return NewQuery(nameTok.text, head, body)
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// parseFormula = disjunction.
func (p *parser) parseFormula() (Formula, error) {
	left, err := p.parseConjunction()
	if err != nil {
		return nil, err
	}
	kids := []Formula{left}
	for p.cur().kind == tokPipe || (p.cur().kind == tokIdent && p.cur().text == "or") {
		p.next()
		k, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	return Disj(kids...), nil
}

func (p *parser) parseConjunction() (Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Formula{left}
	for {
		switch {
		case p.cur().kind == tokAmp || p.cur().kind == tokComma:
			p.next()
		case p.cur().kind == tokIdent && p.cur().text == "and":
			p.next()
		default:
			return Conj(kids...), nil
		}
		k, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
}

func (p *parser) parseUnary() (Formula, error) {
	switch {
	case p.cur().kind == tokBang:
		p.next()
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Neg(sub), nil
	case p.cur().kind == tokIdent && p.cur().text == "not":
		p.next()
		sub, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Neg(sub), nil
	case p.cur().kind == tokIdent && (p.cur().text == "exists" || p.cur().text == "forall"):
		word := p.next().text
		vars, err := p.parseVarList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon, ":"); err != nil {
			return nil, err
		}
		sub, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if word == "exists" {
			return Ex(vars, sub), nil
		}
		return All(vars, sub), nil
	case p.cur().kind == tokLParen:
		p.next()
		sub, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return sub, nil
	default:
		return p.parseAtomOrCompare()
	}
}

func (p *parser) parseVarList() ([]string, error) {
	var vars []string
	for {
		t, err := p.expect(tokIdent, "variable")
		if err != nil {
			return nil, err
		}
		if !isVariableName(t.text) {
			return nil, fmt.Errorf("query: %q at %d is not a variable (variables start lowercase)", t.text, t.pos)
		}
		vars = append(vars, t.text)
		if p.cur().kind != tokComma {
			return vars, nil
		}
		p.next()
	}
}

// parseAtomOrCompare handles R(t, ...), t = t and t != t.
func (p *parser) parseAtomOrCompare() (Formula, error) {
	// An atom starts with IDENT '('.
	if p.cur().kind == tokIdent && p.toks[p.i+1].kind == tokLParen {
		rel := p.next().text
		p.next() // (
		var terms []Term
		if p.cur().kind != tokRParen {
			for {
				t, err := p.parseTerm()
				if err != nil {
					return nil, err
				}
				terms = append(terms, t)
				if p.cur().kind != tokComma {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return &Atom{Rel: rel, Terms: terms}, nil
	}
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	var op CmpOp
	switch p.cur().kind {
	case tokEq:
		op = Eq
	case tokNeq:
		op = Neq
	default:
		return nil, fmt.Errorf("query: expected = or != at %d, got %q", p.cur().pos, p.cur().text)
	}
	p.next()
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &Compare{Op: op, L: l, R: r}, nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.cur()
	switch t.kind {
	case tokConst:
		p.next()
		return C(relation.Value(t.text)), nil
	case tokIdent:
		p.next()
		if isVariableName(t.text) && !isNumeric(t.text) {
			return V(t.text), nil
		}
		return C(relation.Value(t.text)), nil
	default:
		return Term{}, fmt.Errorf("query: expected term at %d, got %q", t.pos, t.text)
	}
}

func isNumeric(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}

// ParseProgram parses an FP program: datalog rules terminated by '.'
// and a final "output NAME." directive (an optional "/arity" suffix is
// checked against the rules). schema may be nil to skip EDB validation.
func ParseProgram(name string, schema *relation.DBSchema, src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var rules []Rule
	output := ""
	declaredArity := -1
	for p.cur().kind != tokEOF {
		if p.keyword("output") {
			t, err := p.expect(tokIdent, "output predicate")
			if err != nil {
				return nil, err
			}
			output = t.text
			if p.cur().kind == tokSlash {
				p.next()
				a, err := p.expect(tokIdent, "arity")
				if err != nil {
					return nil, err
				}
				declaredArity = 0
				for _, r := range a.text {
					declaredArity = declaredArity*10 + int(r-'0')
				}
			}
			if _, err := p.expect(tokDot, "."); err != nil {
				return nil, err
			}
			continue
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	if output == "" {
		return nil, fmt.Errorf("fp %s: missing output directive", name)
	}
	prog, err := NewProgram(name, schema, output, rules...)
	if err != nil {
		return nil, err
	}
	if declaredArity >= 0 && prog.OutputArity() != declaredArity {
		return nil, fmt.Errorf("fp %s: output %s has arity %d, declared %d", name, output, prog.OutputArity(), declaredArity)
	}
	return prog, nil
}

// MustParseProgram is ParseProgram that panics on error.
func MustParseProgram(name string, schema *relation.DBSchema, src string) *Program {
	p, err := ParseProgram(name, schema, src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) parseRule() (Rule, error) {
	headF, err := p.parseAtomOrCompare()
	if err != nil {
		return Rule{}, err
	}
	head, ok := headF.(*Atom)
	if !ok {
		return Rule{}, fmt.Errorf("fp: rule head must be an atom, got %s", headF)
	}
	if _, err := p.expect(tokArrow, ":-"); err != nil {
		return Rule{}, err
	}
	var body []Literal
	for {
		lit, err := p.parseAtomOrCompare()
		if err != nil {
			return Rule{}, err
		}
		switch x := lit.(type) {
		case *Atom:
			body = append(body, LitAtom(x))
		case *Compare:
			body = append(body, LitCmp(x))
		}
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokDot, "."); err != nil {
		return Rule{}, err
	}
	return Rule{Head: *head, Body: body}, nil
}

// FormatTuples renders a set of answer tuples deterministically, one
// per line; a convenience for examples and golden tests.
func FormatTuples(ts []relation.Tuple) string {
	lines := make([]string, len(ts))
	for i, t := range ts {
		lines[i] = t.String()
	}
	return strings.Join(lines, "\n")
}
