package query

import (
	"reflect"
	"testing"

	"relcomplete/internal/relation"
)

func TestTableauOf(t *testing.T) {
	q := MustParseQuery("Q(x) := exists y: R(x, y) & S(y, 'c') & x != y")
	tab, err := TableauOf(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Atoms) != 2 || len(tab.Compares) != 1 {
		t.Fatalf("tableau shape wrong: %d atoms, %d compares", len(tab.Atoms), len(tab.Compares))
	}
	if !reflect.DeepEqual(tab.Vars, []string{"x", "y"}) {
		t.Fatalf("Vars = %v", tab.Vars)
	}
}

func TestTableauRejectsNonCQ(t *testing.T) {
	if _, err := TableauOf(MustParseQuery("Q(x) := R(x) | S(x)")); err == nil {
		t.Fatal("UCQ should be rejected")
	}
	if _, err := TableauOf(MustParseQuery("Q(x) := R(x) & ! S(x)")); err == nil {
		t.Fatal("negation should be rejected")
	}
}

func TestTableauSatisfiedBy(t *testing.T) {
	q := MustParseQuery("Q(x) := R(x, y) & x != y & y = 'a'")
	tab, _ := TableauOf(q)
	if !tab.SatisfiedBy(map[string]relation.Value{"x": "b", "y": "a"}) {
		t.Fatal("satisfying valuation rejected")
	}
	if tab.SatisfiedBy(map[string]relation.Value{"x": "a", "y": "a"}) {
		t.Fatal("x != y violated but accepted")
	}
	if tab.SatisfiedBy(map[string]relation.Value{"x": "b", "y": "c"}) {
		t.Fatal("y = 'a' violated but accepted")
	}
	if tab.SatisfiedBy(map[string]relation.Value{"x": "b"}) {
		t.Fatal("partial valuation must not satisfy")
	}
}

func TestTableauInstantiateAndHead(t *testing.T) {
	q := MustParseQuery("Q(x) := R(x, y) & S(y)")
	tab, _ := TableauOf(q)
	val := map[string]relation.Value{"x": "1", "y": "2"}
	facts, err := tab.Instantiate(val)
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Located{
		{Rel: "R", Tuple: relation.T("1", "2")},
		{Rel: "S", Tuple: relation.T("2")},
	}
	if !reflect.DeepEqual(facts, want) {
		t.Fatalf("Instantiate = %v", facts)
	}
	h, err := tab.HeadTuple(val)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(relation.T("1")) {
		t.Fatalf("HeadTuple = %v", h)
	}
	if _, err := tab.Instantiate(map[string]relation.Value{"x": "1"}); err == nil {
		t.Fatal("unassigned variable should fail")
	}
}

func TestRenameVars(t *testing.T) {
	f := Ex([]string{"y"}, Conj(NewAtom("R", V("x"), V("y")), NeqT(V("x"), C("c"))))
	g := RenameVars(f, "q_")
	free := FreeVars(g)
	if !free["q_x"] || free["x"] {
		t.Fatalf("rename failed: free = %v", free)
	}
	vars := AllVars(g)
	for _, v := range vars {
		if v[:2] != "q_" {
			t.Fatalf("variable %s not renamed", v)
		}
	}
	// Constants untouched.
	if !Constants(g, nil).Contains("c") {
		t.Fatal("constant lost in rename")
	}
}

func TestRenameQuery(t *testing.T) {
	q := MustParseQuery("Q(x, 'k') := R(x, y)")
	r := RenameQuery(q, "p_")
	if !r.Head[0].Equal(V("p_x")) || !r.Head[1].Equal(C("k")) {
		t.Fatalf("head rename wrong: %v", r.Head)
	}
}

func TestSubstitute(t *testing.T) {
	f := Conj(NewAtom("R", V("x"), V("y")), NeqT(V("x"), V("z")))
	g := Substitute(f, map[string]relation.Value{"x": "1", "z": "2"})
	want := "(R('1', y) & '1' != '2')"
	if g.String() != want {
		t.Fatalf("Substitute = %s, want %s", g, want)
	}
}

func TestSubstituteRespectsBinding(t *testing.T) {
	// exists x: R(x) — the bound x must not be substituted.
	f := Conj(NewAtom("S", V("x")), Ex([]string{"x"}, NewAtom("R", V("x"))))
	g := Substitute(f, map[string]relation.Value{"x": "1"})
	want := "(S('1') & exists x: R(x))"
	if g.String() != want {
		t.Fatalf("Substitute = %s, want %s", g, want)
	}
	// Forall binding as well.
	h := Substitute(All([]string{"x"}, NewAtom("R", V("x"))), map[string]relation.Value{"x": "1"})
	if h.String() != "forall x: R(x)" {
		t.Fatalf("Substitute under forall = %s", h)
	}
}
