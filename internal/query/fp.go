package query

import (
	"fmt"
	"sort"
	"strings"

	"relcomplete/internal/relation"
)

// This file defines FP, the paper's extension of ∃FO+ with an
// inflational fixpoint operator: a query is a collection of rules
//
//	p(x⃗) ← p1(x⃗1), ..., pm(x⃗m)
//
// where each pi is an atomic formula (over the database schema), an IDB
// predicate, or a comparison (= / ≠). Evaluation (in internal/eval) is
// the inflational fixpoint: facts are only ever added, so FP is
// monotone in the EDB — the property the weak-model results rely on.

// Literal is one body element of an FP rule: exactly one of Atom or Cmp
// is set.
type Literal struct {
	Atom *Atom
	Cmp  *Compare
}

// LitAtom wraps an atom as a literal.
func LitAtom(a *Atom) Literal { return Literal{Atom: a} }

// LitCmp wraps a comparison as a literal.
func LitCmp(c *Compare) Literal { return Literal{Cmp: c} }

// String renders the literal.
func (l Literal) String() string {
	if l.Atom != nil {
		return l.Atom.String()
	}
	return l.Cmp.String()
}

// Rule is head ← body.
type Rule struct {
	Head Atom
	Body []Literal
}

// String renders the rule in datalog syntax.
func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s :- %s", r.Head.String(), strings.Join(parts, ", "))
}

// Program is an FP query: rules plus a distinguished output IDB
// predicate. The answer of the program on an instance I is the value of
// Output in the inflational fixpoint.
type Program struct {
	Name   string
	Rules  []Rule
	Output string
}

// NewProgram validates and builds an FP program: every rule head must
// be an IDB predicate (it may not name an EDB relation of schema),
// every head variable must occur in a positive body atom (safety), and
// the output predicate must be an IDB with consistent arity.
func NewProgram(name string, schema *relation.DBSchema, output string, rules ...Rule) (*Program, error) {
	p := &Program{Name: name, Rules: rules, Output: output}
	arity := map[string]int{}
	for i, r := range rules {
		if schema != nil && schema.Relation(r.Head.Rel) != nil {
			return nil, fmt.Errorf("fp %s: rule %d: head %s is an EDB relation", name, i, r.Head.Rel)
		}
		if a, ok := arity[r.Head.Rel]; ok && a != len(r.Head.Terms) {
			return nil, fmt.Errorf("fp %s: IDB %s used with arities %d and %d", name, r.Head.Rel, a, len(r.Head.Terms))
		}
		arity[r.Head.Rel] = len(r.Head.Terms)
		// Safety: a variable is safe when it occurs in a positive body
		// atom, or is equated (transitively) to a safe variable or a
		// constant. Equality propagation admits the paper's gate rules
		// of the form Gi(B, x⃗) ← RX(x⃗), B = xi.
		safe := map[string]bool{}
		for _, l := range r.Body {
			if l.Atom == nil && l.Cmp == nil {
				return nil, fmt.Errorf("fp %s: rule %d: empty literal", name, i)
			}
			if l.Atom != nil {
				for _, t := range l.Atom.Terms {
					if t.IsVar {
						safe[t.Name] = true
					}
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for _, l := range r.Body {
				if l.Cmp == nil || l.Cmp.Op != Eq {
					continue
				}
				lSafe := !l.Cmp.L.IsVar || safe[l.Cmp.L.Name]
				rSafe := !l.Cmp.R.IsVar || safe[l.Cmp.R.Name]
				if lSafe && l.Cmp.R.IsVar && !safe[l.Cmp.R.Name] {
					safe[l.Cmp.R.Name] = true
					changed = true
				}
				if rSafe && l.Cmp.L.IsVar && !safe[l.Cmp.L.Name] {
					safe[l.Cmp.L.Name] = true
					changed = true
				}
			}
		}
		for _, t := range r.Head.Terms {
			if t.IsVar && !safe[t.Name] {
				return nil, fmt.Errorf("fp %s: rule %d: head variable %s not bound by a body atom or equality", name, i, t.Name)
			}
		}
		for _, l := range r.Body {
			if l.Cmp == nil {
				continue
			}
			for _, t := range []Term{l.Cmp.L, l.Cmp.R} {
				if t.IsVar && !safe[t.Name] {
					return nil, fmt.Errorf("fp %s: rule %d: comparison variable %s not bound by a body atom or equality", name, i, t.Name)
				}
			}
		}
	}
	if _, ok := arity[output]; !ok {
		return nil, fmt.Errorf("fp %s: output predicate %s has no rule", name, output)
	}
	return p, nil
}

// MustProgram is NewProgram that panics on error.
func MustProgram(name string, schema *relation.DBSchema, output string, rules ...Rule) *Program {
	p, err := NewProgram(name, schema, output, rules...)
	if err != nil {
		panic(err)
	}
	return p
}

// IDBArity returns the arity of each IDB predicate.
func (p *Program) IDBArity() map[string]int {
	arity := map[string]int{}
	for _, r := range p.Rules {
		arity[r.Head.Rel] = len(r.Head.Terms)
	}
	return arity
}

// OutputArity returns the arity of the program's answer relation.
func (p *Program) OutputArity() int { return p.IDBArity()[p.Output] }

// IsIDB reports whether the predicate is defined by some rule.
func (p *Program) IsIDB(rel string) bool {
	_, ok := p.IDBArity()[rel]
	return ok
}

// EDBRelations returns the names of the (extensional) relations the
// program reads, sorted.
func (p *Program) EDBRelations() []string {
	idb := p.IDBArity()
	seen := map[string]bool{}
	for _, r := range p.Rules {
		for _, l := range r.Body {
			if l.Atom != nil {
				if _, isIDB := idb[l.Atom.Rel]; !isIDB {
					seen[l.Atom.Rel] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Constants collects the constants mentioned by the program.
func (p *Program) Constants(dst *relation.ValueSet) *relation.ValueSet {
	if dst == nil {
		dst = relation.NewValueSet()
	}
	addTerm := func(t Term) {
		if !t.IsVar {
			dst.Add(t.Const)
		}
	}
	for _, r := range p.Rules {
		for _, t := range r.Head.Terms {
			addTerm(t)
		}
		for _, l := range r.Body {
			if l.Atom != nil {
				for _, t := range l.Atom.Terms {
					addTerm(t)
				}
			}
			if l.Cmp != nil {
				addTerm(l.Cmp.L)
				addTerm(l.Cmp.R)
			}
		}
	}
	return dst
}

// String renders the program as datalog rules plus an output directive.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteString(".\n")
	}
	fmt.Fprintf(&b, "output %s/%d.", p.Output, p.OutputArity())
	return b.String()
}

// MergeProgram rewrites an FP program for the merged single-relation
// schema of Lemma 3.2 (fQ for FP): every EDB atom Ri(x⃗) becomes
// R_merged('Ri', x⃗, ⊥, ..., ⊥); IDB atoms are untouched.
func MergeProgram(m *relation.Merger, p *Program) (*Program, error) {
	idb := p.IDBArity()
	rules := make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		body := make([]Literal, len(r.Body))
		for j, l := range r.Body {
			if l.Atom == nil {
				body[j] = l
				continue
			}
			if _, isIDB := idb[l.Atom.Rel]; isIDB {
				body[j] = l
				continue
			}
			ma, err := mergeAtom(m, l.Atom)
			if err != nil {
				return nil, fmt.Errorf("fp %s: rule %d: %w", p.Name, i, err)
			}
			body[j] = LitAtom(ma)
		}
		rules[i] = Rule{Head: r.Head, Body: body}
	}
	return &Program{Name: p.Name, Rules: rules, Output: p.Output}, nil
}
