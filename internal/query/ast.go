// Package query defines the query languages of the paper — CQ, UCQ,
// ∃FO+ and FO with equality and inequality, plus FP (an extension of
// ∃FO+ with an inflational fixpoint operator) — together with syntactic
// classification, free-variable analysis, tableau representations of
// conjunctive queries, the query-rewriting half fQ of Lemma 3.2, and a
// text parser for a datalog-style surface syntax.
package query

import (
	"fmt"
	"sort"
	"strings"

	"relcomplete/internal/relation"
)

// Term is either a variable or a constant.
type Term struct {
	IsVar bool
	Name  string         // variable name when IsVar
	Const relation.Value // constant value otherwise
}

// V returns a variable term.
func V(name string) Term { return Term{IsVar: true, Name: name} }

// C returns a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// Equal reports syntactic equality of terms.
func (t Term) Equal(u Term) bool {
	if t.IsVar != u.IsVar {
		return false
	}
	if t.IsVar {
		return t.Name == u.Name
	}
	return t.Const == u.Const
}

// String renders the term; constants are single-quoted.
func (t Term) String() string {
	if t.IsVar {
		return t.Name
	}
	return "'" + string(t.Const) + "'"
}

// CmpOp is the comparison operator of a Compare formula.
type CmpOp int

// The two comparison operators supported by all languages of the paper.
const (
	Eq CmpOp = iota
	Neq
)

// String renders the operator.
func (op CmpOp) String() string {
	if op == Eq {
		return "="
	}
	return "!="
}

// Formula is a first-order formula over relation atoms, (in)equalities,
// ∧, ∨, ¬, ∃ and ∀.
type Formula interface {
	fmt.Stringer
	isFormula()
}

// Atom is a relation atom R(t1, ..., tk).
type Atom struct {
	Rel   string
	Terms []Term
}

// Compare is t1 = t2 or t1 != t2.
type Compare struct {
	Op   CmpOp
	L, R Term
}

// And is an n-ary conjunction.
type And struct{ Kids []Formula }

// Or is an n-ary disjunction.
type Or struct{ Kids []Formula }

// Not is negation.
type Not struct{ Sub Formula }

// Exists is ∃ v1, ..., vk (Sub).
type Exists struct {
	Vars []string
	Sub  Formula
}

// Forall is ∀ v1, ..., vk (Sub).
type Forall struct {
	Vars []string
	Sub  Formula
}

func (*Atom) isFormula()    {}
func (*Compare) isFormula() {}
func (*And) isFormula()     {}
func (*Or) isFormula()      {}
func (*Not) isFormula()     {}
func (*Exists) isFormula()  {}
func (*Forall) isFormula()  {}

// Constructors keep call sites compact in reductions and tests.

// NewAtom builds a relation atom.
func NewAtom(rel string, terms ...Term) *Atom { return &Atom{Rel: rel, Terms: terms} }

// EqT builds the equality t1 = t2.
func EqT(l, r Term) *Compare { return &Compare{Op: Eq, L: l, R: r} }

// NeqT builds the inequality t1 != t2.
func NeqT(l, r Term) *Compare { return &Compare{Op: Neq, L: l, R: r} }

// Conj builds a conjunction, flattening nested Ands and eliding
// singletons.
func Conj(kids ...Formula) Formula {
	flat := make([]Formula, 0, len(kids))
	for _, k := range kids {
		if a, ok := k.(*And); ok {
			flat = append(flat, a.Kids...)
		} else if k != nil {
			flat = append(flat, k)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &And{Kids: flat}
}

// Disj builds a disjunction, flattening nested Ors and eliding
// singletons.
func Disj(kids ...Formula) Formula {
	flat := make([]Formula, 0, len(kids))
	for _, k := range kids {
		if o, ok := k.(*Or); ok {
			flat = append(flat, o.Kids...)
		} else if k != nil {
			flat = append(flat, k)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Or{Kids: flat}
}

// Neg builds a negation.
func Neg(sub Formula) Formula { return &Not{Sub: sub} }

// Ex builds an existential quantifier; with no variables it returns sub
// unchanged.
func Ex(vars []string, sub Formula) Formula {
	if len(vars) == 0 {
		return sub
	}
	return &Exists{Vars: vars, Sub: sub}
}

// All builds a universal quantifier; with no variables it returns sub
// unchanged.
func All(vars []string, sub Formula) Formula {
	if len(vars) == 0 {
		return sub
	}
	return &Forall{Vars: vars, Sub: sub}
}

func (a *Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Rel, strings.Join(parts, ", "))
}

func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

func joinFormulas(kids []Formula, sep string) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func (a *And) String() string { return joinFormulas(a.Kids, " & ") }
func (o *Or) String() string  { return joinFormulas(o.Kids, " | ") }
func (n *Not) String() string { return "!" + n.Sub.String() }

func (e *Exists) String() string {
	return fmt.Sprintf("exists %s: %s", strings.Join(e.Vars, ", "), e.Sub)
}

func (f *Forall) String() string {
	return fmt.Sprintf("forall %s: %s", strings.Join(f.Vars, ", "), f.Sub)
}

// Query is a relational-calculus query: output terms (the head) over a
// body formula. A Boolean query has an empty head; its answer is either
// {()} (true) or ∅ (false).
type Query struct {
	Name string // optional, for diagnostics
	Head []Term
	Body Formula
}

// NewQuery builds a query and validates that every head variable occurs
// free in the body.
func NewQuery(name string, head []Term, body Formula) (*Query, error) {
	q := &Query{Name: name, Head: head, Body: body}
	if body == nil {
		return nil, fmt.Errorf("query %s: nil body", name)
	}
	free := FreeVars(body)
	for _, h := range head {
		if h.IsVar && !free[h.Name] {
			return nil, fmt.Errorf("query %s: head variable %s not free in body", name, h.Name)
		}
	}
	return q, nil
}

// MustQuery is NewQuery that panics on error.
func MustQuery(name string, head []Term, body Formula) *Query {
	q, err := NewQuery(name, head, body)
	if err != nil {
		panic(err)
	}
	return q
}

// Arity returns the output arity of the query.
func (q *Query) Arity() int { return len(q.Head) }

// IsBoolean reports whether the query has an empty head.
func (q *Query) IsBoolean() bool { return len(q.Head) == 0 }

// String renders the query as Name(head) := body.
func (q *Query) String() string {
	parts := make([]string, len(q.Head))
	for i, t := range q.Head {
		parts[i] = t.String()
	}
	name := q.Name
	if name == "" {
		name = "Q"
	}
	return fmt.Sprintf("%s(%s) := %s", name, strings.Join(parts, ", "), q.Body)
}

// FreeVars computes the set of free variables of a formula.
func FreeVars(f Formula) map[string]bool {
	out := make(map[string]bool)
	collectFree(f, map[string]bool{}, out)
	return out
}

func collectFree(f Formula, bound map[string]bool, out map[string]bool) {
	switch x := f.(type) {
	case *Atom:
		for _, t := range x.Terms {
			if t.IsVar && !bound[t.Name] {
				out[t.Name] = true
			}
		}
	case *Compare:
		for _, t := range []Term{x.L, x.R} {
			if t.IsVar && !bound[t.Name] {
				out[t.Name] = true
			}
		}
	case *And:
		for _, k := range x.Kids {
			collectFree(k, bound, out)
		}
	case *Or:
		for _, k := range x.Kids {
			collectFree(k, bound, out)
		}
	case *Not:
		collectFree(x.Sub, bound, out)
	case *Exists:
		collectFree(x.Sub, withBound(bound, x.Vars), out)
	case *Forall:
		collectFree(x.Sub, withBound(bound, x.Vars), out)
	}
}

func withBound(bound map[string]bool, vars []string) map[string]bool {
	next := make(map[string]bool, len(bound)+len(vars))
	for v := range bound {
		next[v] = true
	}
	for _, v := range vars {
		next[v] = true
	}
	return next
}

// AllVars collects every variable occurring in the formula, free or
// bound, in sorted order.
func AllVars(f Formula) []string {
	seen := make(map[string]bool)
	var walk func(Formula)
	walk = func(g Formula) {
		switch x := g.(type) {
		case *Atom:
			for _, t := range x.Terms {
				if t.IsVar {
					seen[t.Name] = true
				}
			}
		case *Compare:
			for _, t := range []Term{x.L, x.R} {
				if t.IsVar {
					seen[t.Name] = true
				}
			}
		case *And:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Not:
			walk(x.Sub)
		case *Exists:
			for _, v := range x.Vars {
				seen[v] = true
			}
			walk(x.Sub)
		case *Forall:
			for _, v := range x.Vars {
				seen[v] = true
			}
			walk(x.Sub)
		}
	}
	walk(f)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Constants collects every constant occurring in the formula into dst
// (allocating when nil) and returns dst.
func Constants(f Formula, dst *relation.ValueSet) *relation.ValueSet {
	if dst == nil {
		dst = relation.NewValueSet()
	}
	var walk func(Formula)
	walk = func(g Formula) {
		switch x := g.(type) {
		case *Atom:
			for _, t := range x.Terms {
				if !t.IsVar {
					dst.Add(t.Const)
				}
			}
		case *Compare:
			for _, t := range []Term{x.L, x.R} {
				if !t.IsVar {
					dst.Add(t.Const)
				}
			}
		case *And:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Not:
			walk(x.Sub)
		case *Exists:
			walk(x.Sub)
		case *Forall:
			walk(x.Sub)
		}
	}
	walk(f)
	return dst
}

// QueryConstants collects the constants of a query (head and body).
func QueryConstants(q *Query, dst *relation.ValueSet) *relation.ValueSet {
	dst = Constants(q.Body, dst)
	for _, t := range q.Head {
		if !t.IsVar {
			dst.Add(t.Const)
		}
	}
	return dst
}

// Atoms collects the relation atoms of a formula in syntactic order.
func Atoms(f Formula) []*Atom {
	var out []*Atom
	var walk func(Formula)
	walk = func(g Formula) {
		switch x := g.(type) {
		case *Atom:
			out = append(out, x)
		case *And:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Or:
			for _, k := range x.Kids {
				walk(k)
			}
		case *Not:
			walk(x.Sub)
		case *Exists:
			walk(x.Sub)
		case *Forall:
			walk(x.Sub)
		case *Compare:
		}
	}
	walk(f)
	return out
}

// RelationsUsed returns the names of relations mentioned by the query,
// sorted.
func RelationsUsed(q *Query) []string {
	seen := make(map[string]bool)
	for _, a := range Atoms(q.Body) {
		seen[a.Rel] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
