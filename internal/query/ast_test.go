package query

import (
	"reflect"
	"testing"

	"relcomplete/internal/relation"
)

func TestTermEqualString(t *testing.T) {
	if !V("x").Equal(V("x")) || V("x").Equal(V("y")) || V("x").Equal(C("x")) {
		t.Fatal("Term.Equal wrong")
	}
	if V("x").String() != "x" || C("a").String() != "'a'" {
		t.Fatal("Term.String wrong")
	}
}

func TestConjDisjFlatten(t *testing.T) {
	a := NewAtom("R", V("x"))
	b := NewAtom("S", V("y"))
	c := NewAtom("T", V("z"))

	f := Conj(Conj(a, b), c)
	and, ok := f.(*And)
	if !ok || len(and.Kids) != 3 {
		t.Fatalf("Conj did not flatten: %v", f)
	}
	if Conj(a) != Formula(a) {
		t.Fatal("singleton Conj should elide")
	}

	g := Disj(Disj(a, b), c)
	or, ok := g.(*Or)
	if !ok || len(or.Kids) != 3 {
		t.Fatalf("Disj did not flatten: %v", g)
	}
	if Disj(b) != Formula(b) {
		t.Fatal("singleton Disj should elide")
	}
}

func TestExAllElideEmpty(t *testing.T) {
	a := NewAtom("R", V("x"))
	if Ex(nil, a) != Formula(a) || All(nil, a) != Formula(a) {
		t.Fatal("empty quantifier should elide")
	}
}

func TestFreeVars(t *testing.T) {
	// exists y: R(x, y) & y != z  — free: x, z
	f := Ex([]string{"y"}, Conj(NewAtom("R", V("x"), V("y")), NeqT(V("y"), V("z"))))
	free := FreeVars(f)
	if !free["x"] || !free["z"] || free["y"] {
		t.Fatalf("FreeVars = %v", free)
	}
}

func TestFreeVarsShadowing(t *testing.T) {
	// R(x) & exists x: S(x) — x free (from R), the bound x is separate.
	f := Conj(NewAtom("R", V("x")), Ex([]string{"x"}, NewAtom("S", V("x"))))
	free := FreeVars(f)
	if !free["x"] || len(free) != 1 {
		t.Fatalf("FreeVars = %v", free)
	}
	// forall binds too.
	g := All([]string{"x"}, NewAtom("R", V("x")))
	if len(FreeVars(g)) != 0 {
		t.Fatal("forall should bind")
	}
}

func TestAllVars(t *testing.T) {
	f := Ex([]string{"y"}, Conj(NewAtom("R", V("x"), V("y")), EqT(V("z"), C("c"))))
	if got := AllVars(f); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Fatalf("AllVars = %v", got)
	}
}

func TestConstants(t *testing.T) {
	f := Conj(NewAtom("R", C("a"), V("x")), NeqT(V("x"), C("b")), Neg(NewAtom("S", C("c"))))
	got := Constants(f, nil).Values()
	want := []relation.Value{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Constants = %v", got)
	}
}

func TestQueryConstantsIncludesHead(t *testing.T) {
	q := MustQuery("Q", []Term{C("h"), V("x")}, NewAtom("R", V("x")))
	got := QueryConstants(q, nil)
	if !got.Contains("h") {
		t.Fatal("head constant missing")
	}
}

func TestNewQueryRejectsUnboundHead(t *testing.T) {
	if _, err := NewQuery("Q", []Term{V("y")}, NewAtom("R", V("x"))); err == nil {
		t.Fatal("head variable not free in body should fail")
	}
	if _, err := NewQuery("Q", []Term{V("x")}, Ex([]string{"x"}, NewAtom("R", V("x")))); err == nil {
		t.Fatal("head variable bound in body should fail")
	}
	if _, err := NewQuery("Q", nil, nil); err == nil {
		t.Fatal("nil body should fail")
	}
}

func TestQueryBasics(t *testing.T) {
	q := MustQuery("Q", []Term{V("x")}, NewAtom("R", V("x")))
	if q.Arity() != 1 || q.IsBoolean() {
		t.Fatal("arity wrong")
	}
	b := MustQuery("B", nil, NewAtom("R", C("a")))
	if !b.IsBoolean() {
		t.Fatal("Boolean query misdetected")
	}
	if q.String() != "Q(x) := R(x)" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestAtomsOrder(t *testing.T) {
	f := Conj(NewAtom("A", V("x")), Disj(NewAtom("B", V("x")), NewAtom("C", V("x"))))
	atoms := Atoms(f)
	if len(atoms) != 3 || atoms[0].Rel != "A" || atoms[1].Rel != "B" || atoms[2].Rel != "C" {
		t.Fatalf("Atoms = %v", atoms)
	}
}

func TestRelationsUsed(t *testing.T) {
	q := MustQuery("Q", nil, Conj(NewAtom("B", C("1")), NewAtom("A", C("2")), NewAtom("B", C("3"))))
	if got := RelationsUsed(q); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("RelationsUsed = %v", got)
	}
}

func TestFormulaStrings(t *testing.T) {
	f := Conj(NewAtom("R", V("x"), C("a")), NeqT(V("x"), C("b")))
	if f.String() != "(R(x, 'a') & x != 'b')" {
		t.Fatalf("String = %q", f.String())
	}
	g := Neg(Ex([]string{"x"}, NewAtom("R", V("x"))))
	if g.String() != "!exists x: R(x)" {
		t.Fatalf("String = %q", g.String())
	}
	h := All([]string{"x", "y"}, Disj(NewAtom("R", V("x")), NewAtom("S", V("y"))))
	if h.String() != "forall x, y: (R(x) | S(y))" {
		t.Fatalf("String = %q", h.String())
	}
}
