package query

import (
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		src  string
		want Class
	}{
		{"Q(x) := R(x, y)", ClassCQ},
		{"Q(x) := R(x, y) & x != y", ClassCQ},
		{"Q(x) := exists y: R(x, y) & S(y)", ClassCQ},
		{"Q(x) := R(x) | S(x)", ClassUCQ},
		{"Q(x) := (R(x) & T(x)) | S(x)", ClassUCQ},
		{"Q(x) := T(x) & (R(x) | S(x))", ClassEFOPlus},
		{"Q(x) := exists y: (R(x, y) | S(x, y))", ClassEFOPlus},
		{"Q(x) := R(x) & ! S(x)", ClassFO},
		{"Q(x) := R(x) & (forall y: S(y))", ClassFO},
		{"Q(x) := R(x) | ! S(x)", ClassFO},
	}
	for _, c := range cases {
		q := MustParseQuery(c.src)
		if got := Classify(q); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if ClassCQ.String() != "CQ" || ClassUCQ.String() != "UCQ" ||
		ClassEFOPlus.String() != "∃FO+" || ClassFO.String() != "FO" {
		t.Fatal("Class.String wrong")
	}
}

func TestClassIncludesMonotone(t *testing.T) {
	if !ClassFO.Includes(ClassCQ) || ClassCQ.Includes(ClassUCQ) {
		t.Fatal("Includes wrong")
	}
	if !ClassCQ.Monotone() || !ClassEFOPlus.Monotone() || ClassFO.Monotone() {
		t.Fatal("Monotone wrong")
	}
}

func TestDisjunctsCQ(t *testing.T) {
	q := MustParseQuery("Q(x) := R(x, y)")
	ds := Disjuncts(q)
	if len(ds) != 1 || Classify(ds[0]) != ClassCQ {
		t.Fatalf("Disjuncts of CQ = %v", ds)
	}
}

func TestDisjunctsUCQ(t *testing.T) {
	q := MustParseQuery("Q(x) := R(x) | S(x) | T(x)")
	ds := Disjuncts(q)
	if len(ds) != 3 {
		t.Fatalf("want 3 disjuncts, got %d", len(ds))
	}
	for _, d := range ds {
		if Classify(d) != ClassCQ {
			t.Fatalf("disjunct %v not CQ", d)
		}
	}
}

func TestDisjunctsDistributes(t *testing.T) {
	// (A|B) & (C|D) has 4 disjuncts.
	q := MustParseQuery("Q(x) := (A(x) | B(x)) & (C(x) | D(x))")
	ds := Disjuncts(q)
	if len(ds) != 4 {
		t.Fatalf("want 4 disjuncts, got %d", len(ds))
	}
	if n := CountDisjuncts(q.Body); n != 4 {
		t.Fatalf("CountDisjuncts = %d", n)
	}
}

func TestDisjunctsUnderExists(t *testing.T) {
	q := MustParseQuery("Q(x) := exists y: (R(x, y) | S(x, y))")
	ds := Disjuncts(q)
	if len(ds) != 2 {
		t.Fatalf("want 2 disjuncts, got %d", len(ds))
	}
	for _, d := range ds {
		if _, ok := d.Body.(*Exists); !ok {
			t.Fatalf("exists not preserved on disjunct %v", d)
		}
	}
}

func TestDisjunctsFOIsNil(t *testing.T) {
	q := MustParseQuery("Q(x) := ! R(x)")
	if Disjuncts(q) != nil {
		t.Fatal("FO query has no UCQ form")
	}
}

func TestDisjunctIteratorMatchesDisjuncts(t *testing.T) {
	srcs := []string{
		"Q(x) := R(x, y)",
		"Q(x) := R(x) | S(x)",
		"Q(x) := (A(x) | B(x)) & (C(x) | D(x))",
		"Q(x) := exists y: ((A(x,y) | B(x,y)) & C(y))",
	}
	for _, src := range srcs {
		q := MustParseQuery(src)
		want := map[string]bool{}
		for _, d := range Disjuncts(q) {
			want[d.Body.String()] = true
		}
		it := NewDisjunctIterator(q)
		got := map[string]bool{}
		n := 0
		for d := it.Next(); d != nil; d = it.Next() {
			got[d.Body.String()] = true
			n++
		}
		if n != len(want) {
			t.Fatalf("%s: iterator yielded %d, Disjuncts %d", src, n, len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("%s: iterator missed disjunct %s", src, k)
			}
		}
	}
}

func TestDisjunctIteratorRejectsFO(t *testing.T) {
	if NewDisjunctIterator(MustParseQuery("Q(x) := ! R(x)")) != nil {
		t.Fatal("iterator should reject FO")
	}
}

func TestCountDisjunctsExponentialShape(t *testing.T) {
	// n binary disjunctions conjoined => 2^n disjuncts.
	q := MustParseQuery("Q(x) := (A(x)|B(x)) & (A(x)|B(x)) & (A(x)|B(x)) & (A(x)|B(x)) & (A(x)|B(x))")
	if n := CountDisjuncts(q.Body); n != 32 {
		t.Fatalf("CountDisjuncts = %d, want 32", n)
	}
}
