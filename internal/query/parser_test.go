package query

import (
	"math/rand"
	"strings"
	"testing"

	"relcomplete/internal/relation"
)

func TestParseQuerySimple(t *testing.T) {
	q, err := ParseQuery("Q(x, y) := R(x, z), S(z, 'lit'), x != y")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "Q" || q.Arity() != 2 {
		t.Fatalf("head wrong: %v", q)
	}
	tab, err := TableauOf(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Atoms) != 2 || len(tab.Compares) != 1 {
		t.Fatalf("body shape wrong")
	}
	if !tab.Atoms[1].Terms[1].Equal(C("lit")) {
		t.Fatalf("quoted constant wrong: %v", tab.Atoms[1])
	}
}

func TestParseVariableConstantConvention(t *testing.T) {
	q := MustParseQuery("Q(x) := R(x, EDI, 2000, '915-15-335')")
	a := Atoms(q.Body)[0]
	if !a.Terms[0].IsVar {
		t.Fatal("lowercase should be a variable")
	}
	if a.Terms[1].IsVar || a.Terms[1].Const != "EDI" {
		t.Fatal("uppercase should be a constant")
	}
	if a.Terms[2].IsVar || a.Terms[2].Const != "2000" {
		t.Fatal("number should be a constant")
	}
	if a.Terms[3].IsVar || a.Terms[3].Const != "915-15-335" {
		t.Fatal("quoted should be a constant")
	}
}

func TestParseQuantifiersAndBooleans(t *testing.T) {
	q := MustParseQuery("Q() := exists x, y: R(x, y) & x != y")
	if !q.IsBoolean() {
		t.Fatal("empty head should be Boolean")
	}
	ex, ok := q.Body.(*Exists)
	if !ok || len(ex.Vars) != 2 {
		t.Fatalf("exists parse wrong: %v", q.Body)
	}
	q2 := MustParseQuery("Q() := forall x: (R(x) | ! S(x))")
	if Classify(q2) != ClassFO {
		t.Fatal("forall/negation should classify FO")
	}
}

func TestParsePrecedenceAndOr(t *testing.T) {
	// & binds tighter than |.
	q := MustParseQuery("Q(x) := A(x) & B(x) | C(x)")
	or, ok := q.Body.(*Or)
	if !ok || len(or.Kids) != 2 {
		t.Fatalf("precedence wrong: %v", q.Body)
	}
	if _, ok := or.Kids[0].(*And); !ok {
		t.Fatalf("left disjunct should be conjunction: %v", or.Kids[0])
	}
}

func TestParseParenGrouping(t *testing.T) {
	q := MustParseQuery("Q(x) := A(x) & (B(x) | C(x))")
	and, ok := q.Body.(*And)
	if !ok {
		t.Fatalf("grouping wrong: %v", q.Body)
	}
	if _, ok := and.Kids[1].(*Or); !ok {
		t.Fatalf("parenthesised disjunction lost: %v", and.Kids[1])
	}
}

func TestParseWordOperators(t *testing.T) {
	q := MustParseQuery("Q(x) := A(x) and B(x) or not C(x)")
	if Classify(q) != ClassFO {
		t.Fatalf("word operators misparsed: %v", q.Body)
	}
}

func TestParseComments(t *testing.T) {
	q := MustParseQuery("Q(x) := -- leading comment\n A(x) % trailing\n & B(x)")
	if len(Atoms(q.Body)) != 2 {
		t.Fatalf("comments broke parse: %v", q.Body)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q(x)",
		"Q(x) := ",
		"Q(x) := R(x",
		"Q(x) := R(x) extra",
		"Q(x) := 'unterminated",
		"Q(x) := x !",
		"Q(x) := exists X: R(X)", // uppercase cannot be quantified
		"Q(y) := R(x)",           // head var not free in body
		"Q(x) := R(x) ?",
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) should fail", src)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	srcs := []string{
		"Q(x, y) := (R(x, z) & S(z, 'lit') & x != y)",
		"Q(x) := (R(x) | S(x))",
		"Q() := !exists x: R(x, x)",
	}
	for _, src := range srcs {
		q := MustParseQuery(src)
		again := MustParseQuery(q.String())
		if q.Body.String() != again.Body.String() {
			t.Errorf("round trip changed %q -> %q", q.Body, again.Body)
		}
	}
}

func TestParseProgram(t *testing.T) {
	sch := relation.MustDBSchema(relation.MustSchema("edge", relation.Attr("A", nil), relation.Attr("B", nil)))
	p, err := ParseProgram("reach", sch, `
		reach(x, y) :- edge(x, y).
		reach(x, z) :- reach(x, y), edge(y, z).
		output reach/2.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Output != "reach" || p.OutputArity() != 2 {
		t.Fatalf("program head wrong: %v", p)
	}
	if got := p.EDBRelations(); len(got) != 1 || got[0] != "edge" {
		t.Fatalf("EDBRelations = %v", got)
	}
	if !p.IsIDB("reach") || p.IsIDB("edge") {
		t.Fatal("IDB detection wrong")
	}
}

func TestParseProgramErrors(t *testing.T) {
	sch := relation.MustDBSchema(relation.MustSchema("edge", relation.Attr("A", nil), relation.Attr("B", nil)))
	bad := []string{
		"output reach.",                                        // no rules
		"reach(x) :- edge(x, y).",                              // missing output
		"edge(x, y) :- edge(x, y). output edge.",               // head is EDB
		"r(x) :- edge(x, y). r(x, y) :- edge(x, y). output r.", // arity clash
		"r(x) :- x != y, edge(y, z). output r.",                // unsafe head var
		"r(x) :- edge(x, y). output r/3.",                      // arity mismatch
		"r(x) :- edge(x, y) output r.",                         // missing dot
	}
	for _, src := range bad {
		if _, err := ParseProgram("p", sch, src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestProgramString(t *testing.T) {
	sch := relation.MustDBSchema(relation.MustSchema("e", relation.Attr("A", nil), relation.Attr("B", nil)))
	p := MustParseProgram("p", sch, "r(x, y) :- e(x, y), x != y. output r.")
	s := p.String()
	if !strings.Contains(s, "r(x, y) :- e(x, y), x != y.") || !strings.Contains(s, "output r/2.") {
		t.Fatalf("Program.String = %q", s)
	}
}

func TestProgramConstants(t *testing.T) {
	sch := relation.MustDBSchema(relation.MustSchema("e", relation.Attr("A", nil), relation.Attr("B", nil)))
	p := MustParseProgram("p", sch, "r(x) :- e(x, '1'), x != Zero. output r.")
	cs := p.Constants(nil)
	if !cs.Contains("1") || !cs.Contains("Zero") {
		t.Fatalf("Constants = %v", cs)
	}
}

func TestFormatTuples(t *testing.T) {
	got := FormatTuples([]relation.Tuple{relation.T("a", "b"), relation.T("c")})
	if got != "(a, b)\n(c)" {
		t.Fatalf("FormatTuples = %q", got)
	}
}

// Robustness sweep: the parser must never panic, whatever the input.
func TestParserNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	alphabet := []byte("Qq(),:=!&|'xyzRS exists forall not 0123?§\\n\t")
	for trial := 0; trial < 2000; trial++ {
		n := r.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[r.Intn(len(alphabet))]
		}
		src := string(buf)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ParseQuery(%q) panicked: %v", src, rec)
				}
			}()
			_, _ = ParseQuery(src)
			_, _ = ParseProgram("p", nil, src)
		}()
	}
	// Mutations of valid inputs.
	valid := "Q(x) := R(x, y) & S(y, 'lit') & x != y"
	for trial := 0; trial < 2000; trial++ {
		b := []byte(valid)
		b[r.Intn(len(b))] = alphabet[r.Intn(len(alphabet))]
		src := string(b)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("ParseQuery(%q) panicked: %v", src, rec)
				}
			}()
			_, _ = ParseQuery(src)
		}()
	}
}
