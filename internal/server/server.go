// Package server implements rcserved's HTTP/JSON service layer: a
// multi-tenant problem registry (PUT/GET/DELETE /v1/problems/{name}
// loading probjson documents under a resident-bytes cap), a decide
// endpoint running the engine's deciders under per-request deadlines
// and budgets, and a bounded admission controller in front of them.
// The handlers live behind a plain http.Handler so every path is
// unit-testable without a socket; cmd/rcserved wires the handler to a
// listener, the debug mux and the signal-driven drain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"relcomplete/internal/core"
	"relcomplete/internal/durable"
	"relcomplete/internal/eval"
	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
	"relcomplete/internal/probjson"
)

// Config tunes one Server.
type Config struct {
	// Workers feeds Options.Parallelism of every loaded problem whose
	// document does not pin its own (0 = GOMAXPROCS). Total decider
	// threads ≈ MaxConcurrent × Workers; size them together.
	Workers int
	// MaxConcurrent is the admission concurrency cap: how many decide
	// calls run at once (default 4).
	MaxConcurrent int
	// MaxQueue is the bounded admission queue depth; a request beyond
	// MaxConcurrent+MaxQueue is answered 429 (default 64).
	MaxQueue int
	// MaxResidentBytes caps the registry's total raw-document bytes,
	// evicting least-recently-used problems (default 256 MiB; < 0 =
	// unlimited).
	MaxResidentBytes int64
	// MaxBodyBytes caps one PUT body (default 32 MiB).
	MaxBodyBytes int64
	// DefaultTimeout bounds a decide with no timeout_ms of its own
	// (default 30s); MaxTimeout caps what a request may ask for
	// (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Metrics receives the solver and server counters (nil = fresh).
	Metrics *obs.Metrics
	// FaultPlan arms the deterministic fault-injection harness on every
	// loaded problem — chaos tests only, nil always in production.
	FaultPlan *fault.Plan
	// Logger receives the structured decision log (one JSON line per
	// decide: trace_id, problem, decider, verdict, queue wait, wall,
	// outcome kind) and the warn-level operational events (registry
	// eviction, admission overflow). nil disables logging.
	Logger *slog.Logger
	// SlowOpThreshold arms the slow-op dump on every loaded problem: a
	// decider call exceeding it writes the flight-recorder/histogram
	// incident record (tagged with the request's trace id) to
	// SlowOpSink (default os.Stderr). 0 disables.
	SlowOpThreshold time.Duration
	SlowOpSink      io.Writer
	// RequestRingSize bounds the /debug/requests recent-request ring
	// (0 = DefaultRequestRing).
	RequestRingSize int
	// Durable, when non-nil, write-ahead-logs every registry mutation
	// and gates /readyz on the log's health. The server starts not
	// ready; the caller replays recovered records with Restore, which
	// flips readiness (rcserved does this between Open and serving).
	Durable *durable.Log
	// QueueTarget arms delay-based admission shedding: new decide
	// requests are rejected 429 while the median recent queue wait
	// exceeds it. 0 leaves only the hard queue cap.
	QueueTarget time.Duration
	// Tenant configures per-problem rate limiting and circuit breaking
	// (zero value: both off).
	Tenant TenantLimits
	// TraceExporter, when non-nil, receives every finished request span
	// tree (rcserved -trace-export). The server only uses it on the
	// bare-Server path where it owns the root span itself; under
	// httpx.AccessLog the middleware owns the root and the export.
	TraceExporter *obs.SpanExporter
}

func (c *Config) fill() {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxResidentBytes == 0 {
		c.MaxResidentBytes = 256 << 20
	} else if c.MaxResidentBytes < 0 {
		c.MaxResidentBytes = 0 // registry's "unlimited"
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Server is the service layer: registry + admission + handlers.
type Server struct {
	cfg       Config
	metrics   *obs.Metrics
	logger    *slog.Logger
	registry  *Registry
	admission *Admission
	tenants   *Tenants // nil: per-tenant governance off
	requests  *RequestRing
	mux       *http.ServeMux
	draining  chan struct{} // closed when the drain begins
	// ready flips once recovery replay (Restore) has completed — or
	// immediately, when the server has no durability. /readyz gates on
	// it so a load balancer never routes to a half-recovered registry.
	ready atomic.Bool

	// Per-tenant attribution families on the server-wide metrics:
	// unlike the unlabelled samples (which keep their PR-6 semantics),
	// these count every terminal decide outcome after decode — an
	// overloaded or timed-out request is attributed to its problem and
	// decider too, which is what makes 429s and 408s explicable per
	// tenant from /metrics alone.
	decideVec *obs.CounterVec
	wallVec   *obs.HistogramVec
}

// New builds a server from cfg (zero fields take the documented
// defaults).
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		metrics:  cfg.Metrics,
		logger:   cfg.Logger,
		requests: NewRequestRing(cfg.RequestRingSize),
		draining: make(chan struct{}),
	}
	s.decideVec = cfg.Metrics.LabeledCounter(obs.ServerDecides, "problem", "decider", "outcome")
	s.wallVec = cfg.Metrics.LabeledHisto(obs.DeciderWallNs, "problem")
	base := func() core.Options {
		return core.Options{
			Parallelism:     cfg.Workers,
			Obs:             cfg.Metrics,
			SlowOpThreshold: cfg.SlowOpThreshold,
			SlowOpSink:      cfg.SlowOpSink,
			FaultPlan:       cfg.FaultPlan,
		}
	}
	s.registry = NewRegistry(cfg.MaxResidentBytes, base, cfg.Metrics)
	s.registry.SetLogger(cfg.Logger)
	s.admission = NewAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.Metrics)
	s.admission.SetLogger(cfg.Logger)
	s.admission.SetTarget(cfg.QueueTarget)
	s.tenants = NewTenants(cfg.Tenant, cfg.Metrics, cfg.Logger)
	if cfg.Durable != nil {
		s.registry.AttachDurable(cfg.Durable)
		// Not ready until the caller replays recovery with Restore.
	} else {
		s.ready.Store(true)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/problems", s.handleList)
	mux.HandleFunc("PUT /v1/problems/{name}", s.handlePut)
	mux.HandleFunc("GET /v1/problems/{name}", s.handleGetInfo)
	mux.HandleFunc("DELETE /v1/problems/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/problems/{name}/decide", s.handleDecide)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/plans", s.handleDebugPlans)
	s.mux = mux
	return s
}

// handleDebugPlans serves the top-K-slowest-plans profile across every
// resident problem: each problem's sampled plan-profile registry
// (eval.ProfileRegistry, fed by the plan executor whenever metrics are
// on) is snapshotted, tagged with the problem name and merged into one
// ranking by estimated total wall time. ?k= bounds the result
// (default 10).
func (s *Server) handleDebugPlans(w http.ResponseWriter, r *http.Request) {
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, KindBadRequest, "k must be a positive integer")
			return
		}
		k = n
	}
	plans := []eval.PlanProfileStat{} // non-nil: the endpoint always serves an array
	for _, e := range s.registry.Entries() {
		for _, st := range e.Problem.PlanProfiles().Top(k) {
			st.Problem = e.Name
			plans = append(plans, st)
		}
	}
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].EstWallMS > plans[j].EstWallMS })
	if len(plans) > k {
		plans = plans[:k]
	}
	writeJSON(w, http.StatusOK, map[string]any{"plans": plans})
}

// Requests exposes the recent-request ring (tests, introspection).
func (s *Server) Requests() *RequestRing { return s.requests }

// Registry exposes the problem store (tests, introspection).
func (s *Server) Registry() *Registry { return s.registry }

// Admission exposes the admission controller (tests, introspection).
func (s *Server) Admission() *Admission { return s.admission }

// Restore replays recovered durable records into the registry (no
// re-logging) and flips the server ready. rcserved calls it between
// durable.Open and serving; harmless with an empty record set.
func (s *Server) Restore(recs []durable.Record) (applied, skipped int) {
	applied, skipped = s.registry.Restore(recs)
	s.ready.Store(true)
	return applied, skipped
}

// SnapshotNow folds the resident registry state into a durable
// snapshot (no-op without durability). rcserved calls it on a timer
// and once at drain.
func (s *Server) SnapshotNow() error { return s.registry.SnapshotNow() }

// Metrics exposes the server-wide solver metrics.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// StartDrain flips the server into draining mode: /healthz turns 503
// so load balancers stop routing here, while in-flight (and already
// accepted) requests run to completion under httpx.Server.Drain.
// Idempotent.
func (s *Server) StartDrain() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// ServeHTTP dispatches to the /v1 handlers, counting every API request.
// Each request runs under a root span: one already on the context
// (httpx.AccessLog upstream) is reused, otherwise the server opens its
// own, adopting the client's traceparent header and echoing the
// request identity back in a traceparent response header — so a bare
// Server (no middleware) still yields correlated traces.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.Inc(obs.ServerRequests)
	if obs.SpanFromContext(r.Context()) == nil {
		rec := obs.NewSpanRecorder(0)
		root := rec.Root(r.Method+" "+r.URL.Path, r.Header.Get("traceparent"))
		defer func() {
			root.End()
			s.cfg.TraceExporter.Enqueue(rec.Spans()) // nil exporter is inert
		}()
		w.Header().Set("traceparent", root.Traceparent())
		r = r.WithContext(obs.ContextWithSpan(r.Context(), root))
	}
	s.mux.ServeHTTP(w, r)
}

// nameRE keeps problem names URL- and log-friendly.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Kind: kind})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, KindDraining, "draining: not accepting new work")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"problems":       s.registry.Len(),
		"resident_bytes": s.registry.ResidentBytes(),
		"in_flight":      s.admission.InFlight(),
		"queued":         s.admission.Queued(),
	})
}

// handleReadyz is the readiness probe, distinct from /healthz's
// liveness: not ready until recovery replay has completed, not ready
// once draining has begun, and not ready while the write-ahead log
// cannot commit (a registry that cannot durably acknowledge mutations
// must stop advertising itself). Load balancers route on this;
// /healthz only says the process is alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.Draining():
		writeError(w, http.StatusServiceUnavailable, KindDraining, "draining: not accepting new work")
	case !s.ready.Load():
		writeError(w, http.StatusServiceUnavailable, KindNotReady, "recovery replay not yet complete")
	case s.cfg.Durable != nil && !s.cfg.Durable.Healthy():
		writeError(w, http.StatusServiceUnavailable, KindStorage,
			"write-ahead log cannot commit; restart to recover")
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ready",
			"problems": s.registry.Len(),
			"durable":  s.cfg.Durable != nil,
		})
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{
		Problems:      s.registry.List(),
		ResidentBytes: s.registry.ResidentBytes(),
	})
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !nameRE.MatchString(name) {
		writeError(w, http.StatusBadRequest, KindBadRequest,
			"problem name must match [A-Za-z0-9._-]{1,128}")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, KindTooLarge, err.Error())
		} else {
			writeError(w, http.StatusBadRequest, KindBadRequest, err.Error())
		}
		return
	}
	e, replaced, err := s.registry.Put(name, raw)
	if err != nil {
		status, kind := http.StatusBadRequest, KindBadRequest
		var tooLarge *ErrTooLarge
		switch {
		case errors.As(err, &tooLarge):
			status, kind = http.StatusRequestEntityTooLarge, KindTooLarge
		case errors.Is(err, durable.ErrIO):
			// The WAL refused the commit: the mutation did not happen and
			// was not acknowledged. 503 tells the client to retry
			// elsewhere (or after a restart), not that its document is bad.
			status, kind = http.StatusServiceUnavailable, KindStorage
		}
		writeError(w, status, kind, err.Error())
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, PutResponse{
		Name:          e.Name,
		Bytes:         e.Bytes,
		Replaced:      replaced,
		ResidentBytes: s.registry.ResidentBytes(),
		Problems:      s.registry.Len(),
	})
}

func (s *Server) handleGetInfo(w http.ResponseWriter, r *http.Request) {
	e, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, KindNotFound, "no such problem")
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ok, err := s.registry.Delete(name)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, KindStorage, err.Error())
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, KindNotFound, "no such problem")
		return
	}
	s.tenants.Forget(name)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	began := time.Now()
	root := obs.SpanFromContext(r.Context())
	var traceID string
	if t := root.Trace(); !t.IsZero() {
		traceID = t.String()
	}
	wantTrace := r.URL.Query().Get("trace") == "1"

	resp := DecideResponse{Problem: name, TraceID: traceID}
	var req DecideRequest
	var queueWait, wall time.Duration
	ran := false // a decider actually executed (wall is meaningful)

	// finish is the single exit: per-tenant labelled metrics, the
	// structured decision log, the /debug/requests ring record, the
	// optional ?trace=1 span tree, and the response itself.
	finish := func(status int) {
		decider := req.Property
		if resp.Model != "" {
			decider += "_" + resp.Model
		}
		outcome := resp.Kind
		if outcome == "" {
			outcome = "ok"
		}
		if req.Property != "" {
			s.decideVec.Inc(name, decider, outcome)
		}
		if ran {
			// The per-tenant wall series carries the request's trace id
			// as its bucket exemplar in the OpenMetrics exposition.
			s.wallVec.ObserveExemplar(wall.Nanoseconds(), traceID, name)
		}
		var spans []obs.SpanData
		var spansDropped int64
		if rec := root.Recorder(); rec != nil {
			spans = rec.Spans()
			spansDropped = rec.Dropped()
		}
		if wantTrace {
			resp.Trace = &TraceInfo{TraceID: traceID, Spans: spans, Dropped: spansDropped}
		}
		resp.QueueWaitMS = float64(queueWait.Nanoseconds()) / 1e6
		s.requests.Add(RequestRecord{
			Time:         began,
			TraceID:      traceID,
			Problem:      name,
			Property:     req.Property,
			Decider:      decider,
			Status:       status,
			Kind:         resp.Kind,
			Verdict:      resp.Verdict,
			QueueWaitMS:  resp.QueueWaitMS,
			WallMS:       float64(wall.Nanoseconds()) / 1e6,
			Spans:        spans,
			SpansDropped: spansDropped,
		})
		if s.logger != nil {
			verdict := "unknown"
			if resp.Verdict != nil {
				verdict = fmt.Sprintf("%t", *resp.Verdict)
			}
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "decide",
				slog.String("trace_id", traceID),
				slog.String("problem", name),
				slog.String("decider", decider),
				slog.String("verdict", verdict),
				slog.String("outcome", outcome),
				slog.Int("status", status),
				slog.Float64("queue_wait_ms", resp.QueueWaitMS),
				slog.Float64("wall_ms", float64(wall.Nanoseconds())/1e6),
				slog.Int64("spans_dropped", spansDropped),
			)
		}
		if resp.RetryAfterMS > 0 {
			w.Header().Set("Retry-After",
				fmt.Sprintf("%d", (resp.RetryAfterMS+999)/1000))
		}
		writeJSON(w, status, resp)
	}
	fail := func(status int, kind string, err error) {
		resp.Kind = kind
		resp.decorate(err)
		resp.Stats = s.metrics.Snapshot()
		finish(status)
	}

	// Decide bodies are bounded like PUT bodies: a decide carrying a
	// multi-gigabyte query override must die at the transport, not in
	// the JSON decoder's allocator.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			fail(http.StatusRequestEntityTooLarge, KindTooLarge, fmt.Errorf("decide request: %w", err))
			return
		}
		fail(http.StatusBadRequest, KindBadRequest, fmt.Errorf("decide request: %w", err))
		return
	}
	resp.Property = req.Property
	e, ok := s.registry.Get(name)
	if !ok {
		fail(http.StatusNotFound, KindNotFound, fmt.Errorf("no such problem %q", name))
		return
	}

	// Per-tenant gate: this problem's circuit breaker and token bucket.
	// Checked before admission so a rate-limited or broken tenant never
	// consumes a queue position other tenants could use.
	if err := s.tenants.Admit(name); err != nil {
		status, kind := classify(err)
		fail(status, kind, err)
		return
	}

	// Admission: claim a decide slot (bounded queue, 429 past it). The
	// request context cancels a queued wait on client disconnect.
	qStart := time.Now()
	release, err := s.admission.Acquire(r.Context())
	queueWait = time.Since(qStart)
	if err != nil {
		status, kind := classify(err)
		fail(status, kind, err)
		return
	}
	defer release()
	s.metrics.Inc(obs.ServerDecides)

	// The decide executes under pprof labels, so a CPU (or goroutine)
	// profile taken from /debug/pprof segments samples by tenant,
	// decider and request trace — goroutines the deciders spawn inherit
	// the label set.
	start := time.Now()
	var result decideResult
	pprof.Do(r.Context(), pprof.Labels(
		"problem", name,
		"decider", req.Property,
		"trace_id", traceID,
	), func(ctx context.Context) {
		result, err = s.runDecide(ctx, e, &req)
	})
	wall = time.Since(start)
	ran = true
	resp.Model = result.Model
	resp.ElapsedMS = float64(wall.Microseconds()) / 1000
	if err != nil {
		status, kind := classify(err)
		// The breaker counts only failures the server blames on itself:
		// panics, injected faults and internal errors. Deadlines, budget
		// expiries and undecidable fragments are the tenant asking hard
		// questions, not the tenant breaking the server.
		s.tenants.Observe(name, kind == KindPanic || kind == KindInjected || kind == KindInternal)
		fail(status, kind, err)
		return
	}
	s.tenants.Observe(name, false)
	resp.Verdict = result.Verdict
	resp.Counterexample = result.Counterexample
	resp.CertainAnswers = result.CertainAnswers
	resp.Stats = s.metrics.Snapshot()
	finish(http.StatusOK)
}

// decideResult is runDecide's payload, separate from the wire DTO so
// the handler owns status codes and stats.
type decideResult struct {
	Model          string
	Verdict        *bool
	Counterexample string
	CertainAnswers []string
}

// badRequestError marks client-side decide failures (unknown property,
// bad model, unparsable query override).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// panicError is a decide panic contained at the service boundary. The
// parallel searches already recover probe panics into typed errors
// (search.PanicError); sequential decider paths let them propagate by
// design, and here — one layer before the connection — is where a
// serving process must stop them: the request answers 500 with a typed
// body instead of an aborted response, and the daemon lives on.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("decide panicked: %v", e.val)
}

// runDecide resolves the problem (shared resident instance, or a fresh
// build when the request overrides query/budget), applies the deadline
// and dispatches the property.
func (s *Server) runDecide(ctx context.Context, e *Entry, req *DecideRequest) (res decideResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	p, ci := e.Problem, e.CInstance
	if req.overridden() {
		doc := *e.Doc
		if req.Query != "" {
			doc.Query = probjson.QueryDoc{Calc: req.Query}
		}
		if b := req.Budget; b != nil {
			if b.MaxValuations != 0 {
				doc.Options.MaxValuations = b.MaxValuations
			}
			if b.MaxSubsets != 0 {
				doc.Options.MaxSubsets = b.MaxSubsets
			}
			if b.RCQPSizeBound != 0 {
				doc.Options.RCQPSizeBound = b.RCQPSizeBound
			}
			if b.MaxDerived != 0 {
				doc.Options.MaxDerived = b.MaxDerived
			}
		}
		var err error
		p, ci, err = s.registry.build(&doc)
		if err != nil {
			return res, &badRequestError{msg: err.Error()}
		}
		// The rebuilt problem is private to this request, so it can
		// carry a per-request metrics instance; the counters it gathers
		// are folded into the server-wide set when the decide returns.
		// (The shared resident path keeps writing the server-wide
		// metrics directly — its Options must not be touched.)
		reqM := obs.NewMetrics()
		p.Options.Obs = reqM
		defer s.metrics.Merge(reqM)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	model := core.Strong
	switch req.Property {
	case "rcdp", "rcqp", "minp":
		switch req.Model {
		case "", "strong":
			model = core.Strong
		case "weak":
			model = core.Weak
		case "viable":
			model = core.Viable
		default:
			return res, &badRequestError{msg: fmt.Sprintf("unknown model %q", req.Model)}
		}
		res.Model = model.String()
	}

	verdict := func(v bool) { res.Verdict = &v }
	switch req.Property {
	case "consistency":
		ok, err := p.ConsistentCtx(ctx, ci)
		if err != nil {
			return res, err
		}
		verdict(ok)
	case "extensibility":
		db, err := p.AnyModelCtx(ctx, ci)
		if err != nil {
			return res, err
		}
		if db == nil {
			return res, core.ErrInconsistent
		}
		ok, err := p.ExtensibleCtx(ctx, db)
		if err != nil {
			return res, err
		}
		verdict(ok)
	case "rcdp":
		ok, cex, err := p.RCDPExplainCtx(ctx, ci, model)
		if err != nil {
			return res, err
		}
		verdict(ok)
		if !ok && cex != nil {
			res.Counterexample = cex.String()
		}
	case "rcqp":
		ok, err := p.RCQPCtx(ctx, model)
		if err != nil {
			return res, err
		}
		verdict(ok)
	case "minp":
		ok, err := p.MINPCtx(ctx, ci, model)
		if err != nil {
			return res, err
		}
		verdict(ok)
	case "certain":
		ans, err := p.CertainAnswersCtx(ctx, ci)
		if err != nil {
			return res, err
		}
		res.CertainAnswers = []string{}
		for _, t := range ans {
			res.CertainAnswers = append(res.CertainAnswers, t.String())
		}
	default:
		return res, &badRequestError{msg: fmt.Sprintf("unknown property %q", req.Property)}
	}
	return res, nil
}
