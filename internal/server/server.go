// Package server implements rcserved's HTTP/JSON service layer: a
// multi-tenant problem registry (PUT/GET/DELETE /v1/problems/{name}
// loading probjson documents under a resident-bytes cap), a decide
// endpoint running the engine's deciders under per-request deadlines
// and budgets, and a bounded admission controller in front of them.
// The handlers live behind a plain http.Handler so every path is
// unit-testable without a socket; cmd/rcserved wires the handler to a
// listener, the debug mux and the signal-driven drain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"runtime/debug"
	"time"

	"relcomplete/internal/core"
	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
	"relcomplete/internal/probjson"
)

// Config tunes one Server.
type Config struct {
	// Workers feeds Options.Parallelism of every loaded problem whose
	// document does not pin its own (0 = GOMAXPROCS). Total decider
	// threads ≈ MaxConcurrent × Workers; size them together.
	Workers int
	// MaxConcurrent is the admission concurrency cap: how many decide
	// calls run at once (default 4).
	MaxConcurrent int
	// MaxQueue is the bounded admission queue depth; a request beyond
	// MaxConcurrent+MaxQueue is answered 429 (default 64).
	MaxQueue int
	// MaxResidentBytes caps the registry's total raw-document bytes,
	// evicting least-recently-used problems (default 256 MiB; < 0 =
	// unlimited).
	MaxResidentBytes int64
	// MaxBodyBytes caps one PUT body (default 32 MiB).
	MaxBodyBytes int64
	// DefaultTimeout bounds a decide with no timeout_ms of its own
	// (default 30s); MaxTimeout caps what a request may ask for
	// (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Metrics receives the solver and server counters (nil = fresh).
	Metrics *obs.Metrics
	// FaultPlan arms the deterministic fault-injection harness on every
	// loaded problem — chaos tests only, nil always in production.
	FaultPlan *fault.Plan
}

func (c *Config) fill() {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxResidentBytes == 0 {
		c.MaxResidentBytes = 256 << 20
	} else if c.MaxResidentBytes < 0 {
		c.MaxResidentBytes = 0 // registry's "unlimited"
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// Server is the service layer: registry + admission + handlers.
type Server struct {
	cfg       Config
	metrics   *obs.Metrics
	registry  *Registry
	admission *Admission
	mux       *http.ServeMux
	draining  chan struct{} // closed when the drain begins
}

// New builds a server from cfg (zero fields take the documented
// defaults).
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{cfg: cfg, metrics: cfg.Metrics, draining: make(chan struct{})}
	base := func() core.Options {
		return core.Options{
			Parallelism: cfg.Workers,
			Obs:         cfg.Metrics,
			FaultPlan:   cfg.FaultPlan,
		}
	}
	s.registry = NewRegistry(cfg.MaxResidentBytes, base, cfg.Metrics)
	s.admission = NewAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.Metrics)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/problems", s.handleList)
	mux.HandleFunc("PUT /v1/problems/{name}", s.handlePut)
	mux.HandleFunc("GET /v1/problems/{name}", s.handleGetInfo)
	mux.HandleFunc("DELETE /v1/problems/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/problems/{name}/decide", s.handleDecide)
	s.mux = mux
	return s
}

// Registry exposes the problem store (tests, introspection).
func (s *Server) Registry() *Registry { return s.registry }

// Admission exposes the admission controller (tests, introspection).
func (s *Server) Admission() *Admission { return s.admission }

// Metrics exposes the server-wide solver metrics.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// StartDrain flips the server into draining mode: /healthz turns 503
// so load balancers stop routing here, while in-flight (and already
// accepted) requests run to completion under httpx.Server.Drain.
// Idempotent.
func (s *Server) StartDrain() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// ServeHTTP dispatches to the /v1 handlers, counting every API request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.Inc(obs.ServerRequests)
	s.mux.ServeHTTP(w, r)
}

// nameRE keeps problem names URL- and log-friendly.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Kind: kind})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, KindDraining, "draining: not accepting new work")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"problems":       s.registry.Len(),
		"resident_bytes": s.registry.ResidentBytes(),
		"in_flight":      s.admission.InFlight(),
		"queued":         s.admission.Queued(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{
		Problems:      s.registry.List(),
		ResidentBytes: s.registry.ResidentBytes(),
	})
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !nameRE.MatchString(name) {
		writeError(w, http.StatusBadRequest, KindBadRequest,
			"problem name must match [A-Za-z0-9._-]{1,128}")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, KindTooLarge, err.Error())
		} else {
			writeError(w, http.StatusBadRequest, KindBadRequest, err.Error())
		}
		return
	}
	e, replaced, err := s.registry.Put(name, raw)
	if err != nil {
		status, kind := http.StatusBadRequest, KindBadRequest
		var tooLarge *ErrTooLarge
		if errors.As(err, &tooLarge) {
			status, kind = http.StatusRequestEntityTooLarge, KindTooLarge
		}
		writeError(w, status, kind, err.Error())
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, PutResponse{
		Name:          e.Name,
		Bytes:         e.Bytes,
		Replaced:      replaced,
		ResidentBytes: s.registry.ResidentBytes(),
		Problems:      s.registry.Len(),
	})
}

func (s *Server) handleGetInfo(w http.ResponseWriter, r *http.Request) {
	e, ok := s.registry.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, KindNotFound, "no such problem")
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.registry.Delete(r.PathValue("name")) {
		writeError(w, http.StatusNotFound, KindNotFound, "no such problem")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resp := DecideResponse{Problem: name}
	fail := func(status int, kind string, err error) {
		resp.Kind = kind
		resp.decorate(err)
		resp.Stats = s.metrics.Snapshot()
		if resp.RetryAfterMS > 0 {
			w.Header().Set("Retry-After",
				fmt.Sprintf("%d", (resp.RetryAfterMS+999)/1000))
		}
		writeJSON(w, status, resp)
	}

	var req DecideRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, KindBadRequest, fmt.Errorf("decide request: %w", err))
		return
	}
	resp.Property = req.Property
	e, ok := s.registry.Get(name)
	if !ok {
		fail(http.StatusNotFound, KindNotFound, fmt.Errorf("no such problem %q", name))
		return
	}

	// Admission: claim a decide slot (bounded queue, 429 past it). The
	// request context cancels a queued wait on client disconnect.
	release, err := s.admission.Acquire(r.Context())
	if err != nil {
		status, kind := classify(err)
		fail(status, kind, err)
		return
	}
	defer release()
	s.metrics.Inc(obs.ServerDecides)

	start := time.Now()
	result, err := s.runDecide(r.Context(), e, &req)
	resp.Model = result.Model
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		status, kind := classify(err)
		fail(status, kind, err)
		return
	}
	resp.Verdict = result.Verdict
	resp.Counterexample = result.Counterexample
	resp.CertainAnswers = result.CertainAnswers
	resp.Stats = s.metrics.Snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// decideResult is runDecide's payload, separate from the wire DTO so
// the handler owns status codes and stats.
type decideResult struct {
	Model          string
	Verdict        *bool
	Counterexample string
	CertainAnswers []string
}

// badRequestError marks client-side decide failures (unknown property,
// bad model, unparsable query override).
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

// panicError is a decide panic contained at the service boundary. The
// parallel searches already recover probe panics into typed errors
// (search.PanicError); sequential decider paths let them propagate by
// design, and here — one layer before the connection — is where a
// serving process must stop them: the request answers 500 with a typed
// body instead of an aborted response, and the daemon lives on.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("decide panicked: %v", e.val)
}

// runDecide resolves the problem (shared resident instance, or a fresh
// build when the request overrides query/budget), applies the deadline
// and dispatches the property.
func (s *Server) runDecide(ctx context.Context, e *Entry, req *DecideRequest) (res decideResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	p, ci := e.Problem, e.CInstance
	if req.overridden() {
		doc := *e.Doc
		if req.Query != "" {
			doc.Query = probjson.QueryDoc{Calc: req.Query}
		}
		if b := req.Budget; b != nil {
			if b.MaxValuations != 0 {
				doc.Options.MaxValuations = b.MaxValuations
			}
			if b.MaxSubsets != 0 {
				doc.Options.MaxSubsets = b.MaxSubsets
			}
			if b.RCQPSizeBound != 0 {
				doc.Options.RCQPSizeBound = b.RCQPSizeBound
			}
			if b.MaxDerived != 0 {
				doc.Options.MaxDerived = b.MaxDerived
			}
		}
		var err error
		p, ci, err = s.registry.build(&doc)
		if err != nil {
			return res, &badRequestError{msg: err.Error()}
		}
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	model := core.Strong
	switch req.Property {
	case "rcdp", "rcqp", "minp":
		switch req.Model {
		case "", "strong":
			model = core.Strong
		case "weak":
			model = core.Weak
		case "viable":
			model = core.Viable
		default:
			return res, &badRequestError{msg: fmt.Sprintf("unknown model %q", req.Model)}
		}
		res.Model = model.String()
	}

	verdict := func(v bool) { res.Verdict = &v }
	switch req.Property {
	case "consistency":
		ok, err := p.ConsistentCtx(ctx, ci)
		if err != nil {
			return res, err
		}
		verdict(ok)
	case "extensibility":
		db, err := p.AnyModelCtx(ctx, ci)
		if err != nil {
			return res, err
		}
		if db == nil {
			return res, core.ErrInconsistent
		}
		ok, err := p.ExtensibleCtx(ctx, db)
		if err != nil {
			return res, err
		}
		verdict(ok)
	case "rcdp":
		ok, cex, err := p.RCDPExplainCtx(ctx, ci, model)
		if err != nil {
			return res, err
		}
		verdict(ok)
		if !ok && cex != nil {
			res.Counterexample = cex.String()
		}
	case "rcqp":
		ok, err := p.RCQPCtx(ctx, model)
		if err != nil {
			return res, err
		}
		verdict(ok)
	case "minp":
		ok, err := p.MINPCtx(ctx, ci, model)
		if err != nil {
			return res, err
		}
		verdict(ok)
	case "certain":
		ans, err := p.CertainAnswersCtx(ctx, ci)
		if err != nil {
			return res, err
		}
		res.CertainAnswers = []string{}
		for _, t := range ans {
			res.CertainAnswers = append(res.CertainAnswers, t.String())
		}
	default:
		return res, &badRequestError{msg: fmt.Sprintf("unknown property %q", req.Property)}
	}
	return res, nil
}
