package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"relcomplete/internal/obs"
)

func TestAdmissionConcurrencyCap(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAdmission(2, 0, m)

	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 2 {
		t.Fatalf("in flight = %d", a.InFlight())
	}

	// Queue is zero: the third caller bounces immediately.
	_, err = a.Acquire(context.Background())
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("overload must advise a retry delay: %+v", ov)
	}
	if got := m.Get(obs.ServerOverloads); got != 1 {
		t.Fatalf("overloads = %d", got)
	}

	// Releasing a slot lets the next caller in.
	r1()
	r1() // idempotent: double release must not mint an extra slot
	r3, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.InFlight() != 2 {
		t.Fatalf("in flight after re-acquire = %d", a.InFlight())
	}
	r2()
	r3()
	if a.InFlight() != 0 {
		t.Fatalf("in flight after all released = %d", a.InFlight())
	}
}

func TestAdmissionQueueing(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAdmission(1, 2, m)

	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Two callers fit the queue; they block until the slot frees.
	var wg sync.WaitGroup
	acquired := make(chan func(), 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := a.Acquire(context.Background())
			if err != nil {
				t.Errorf("queued acquire: %v", err)
				return
			}
			acquired <- release
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Queued() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want 2", a.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	// A third queued caller overflows.
	if _, err := a.Acquire(context.Background()); err == nil {
		t.Fatal("overflow accepted")
	}

	r1()
	release := <-acquired
	release()
	(<-acquired)()
	wg.Wait()
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Fatalf("drained state: inflight=%d queued=%d", a.InFlight(), a.Queued())
	}
	if m.HistoCount(obs.QueueWaitNs) < 3 {
		t.Fatalf("queue wait observations = %d, want >= 3", m.HistoCount(obs.QueueWaitNs))
	}
}

func TestAdmissionContextCancel(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAdmission(1, 4, m)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()

	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx)
		errs <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.Queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("caller never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if a.Queued() != 0 {
		t.Fatalf("queued after cancel = %d", a.Queued())
	}
}
