package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"relcomplete/internal/obs"
)

// warnRecords decodes every warn-level JSON line in raw.
func warnRecords(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(raw, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["level"] == "WARN" {
			out = append(out, rec)
		}
	}
	return out
}

// Registry eviction emits a structured warn event naming the victim,
// its size and the problem it made room for — the after-the-fact
// explanation for "where did my problem go".
func TestRegistryEvictionLogged(t *testing.T) {
	doc := paddedDoc(t, 1000)
	unit := chargeOf(t, doc)
	r, _ := newRegistry(unit + unit/2) // room for one doc only
	var logs syncBuffer
	r.SetLogger(slog.New(slog.NewJSONHandler(&logs, nil)))

	if _, _, err := r.Put("first", doc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Put("second", doc); err != nil {
		t.Fatal(err)
	}

	warns := warnRecords(t, logs.String())
	if len(warns) != 1 {
		t.Fatalf("warn lines = %d, want 1:\n%s", len(warns), logs.String())
	}
	ev := warns[0]
	if ev["msg"] != "problem evicted" || ev["problem"] != "first" || ev["evicted_for"] != "second" {
		t.Errorf("eviction event: %v", ev)
	}
	if b, _ := ev["bytes"].(float64); int64(b) != unit {
		t.Errorf("eviction event bytes = %v, want %d", ev["bytes"], unit)
	}
}

// Admission overflow emits a structured warn event with the request's
// trace id and the queue shape, so a 429 is explicable from the log
// stream alone.
func TestAdmissionOverflowLogged(t *testing.T) {
	var logs syncBuffer
	a := NewAdmission(1, 0, obs.NewMetrics())
	a.SetLogger(slog.New(slog.NewJSONHandler(&logs, nil)))

	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	rec := obs.NewSpanRecorder(0)
	root := rec.Root("decide", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	defer root.End()
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, err := a.Acquire(ctx); err == nil {
		t.Fatal("second acquire must overflow")
	}

	warns := warnRecords(t, logs.String())
	if len(warns) != 1 {
		t.Fatalf("warn lines = %d, want 1:\n%s", len(warns), logs.String())
	}
	ov := warns[0]
	if ov["msg"] != "admission queue full" || ov["trace_id"] != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("overflow event: %v", ov)
	}
	if q, _ := ov["queue_cap"].(float64); int(q) != 0 {
		t.Errorf("overflow event queue_cap = %v", ov["queue_cap"])
	}
}
