// Request/response DTOs of the /v1 API and the mapping from the
// engine's typed errors to HTTP statuses. The decide response carries
// the same verdict + stats shape as rcheck -json, so a client can move
// between the CLI and the service without re-parsing.
package server

import (
	"errors"
	"net/http"
	"time"

	"relcomplete/internal/adom"
	"relcomplete/internal/core"
	"relcomplete/internal/durable"
	"relcomplete/internal/eval"
	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
	"relcomplete/internal/search"
)

// DecideRequest is the POST /v1/problems/{name}/decide body.
type DecideRequest struct {
	// Property selects the decision problem: consistency,
	// extensibility, rcdp, rcqp, minp or certain.
	Property string `json:"property"`
	// Model is the completeness model for rcdp/rcqp/minp:
	// strong (default), weak or viable.
	Model string `json:"model,omitempty"`
	// Query, when set, overrides the loaded document's calculus query
	// for this request only (the resident problem is untouched). The
	// decide runs on a freshly built problem, so it pays plan
	// compilation once per request.
	Query string `json:"query,omitempty"`
	// TimeoutMS bounds the decision; expiry answers 408 with a deadline
	// object. 0 means the server's default timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Budget, when set, overrides the document's enumeration caps for
	// this request only (also a fresh problem build).
	Budget *BudgetRequest `json:"budget,omitempty"`
}

// BudgetRequest mirrors probjson.OptionsDoc's enumeration caps.
type BudgetRequest struct {
	MaxValuations int `json:"max_valuations,omitempty"`
	MaxSubsets    int `json:"max_subsets,omitempty"`
	RCQPSizeBound int `json:"rcqp_size_bound,omitempty"`
	MaxDerived    int `json:"max_derived,omitempty"`
}

// overridden reports whether the request needs a problem rebuilt from
// the document instead of the shared resident one.
func (r *DecideRequest) overridden() bool {
	return r.Query != "" || r.Budget != nil
}

// DecideResponse is the decide endpoint's JSON body — also used for
// error answers, where Verdict stays null and Error/Kind carry the
// typed failure. Stats is the server-cumulative solver snapshot (the
// same obs.Stats object rcheck -json prints).
type DecideResponse struct {
	Problem        string `json:"problem"`
	Property       string `json:"property"`
	Model          string `json:"model,omitempty"`
	Verdict        *bool  `json:"verdict,omitempty"`
	Counterexample string `json:"counterexample,omitempty"`
	// CertainAnswers is null unless the property was "certain", in
	// which case it is a (possibly empty, never null) list.
	CertainAnswers []string      `json:"certain_answers"`
	Error          string        `json:"error,omitempty"`
	Kind           string        `json:"kind,omitempty"`
	Budget         *BudgetInfo   `json:"budget,omitempty"`
	Deadline       *DeadlineInfo `json:"deadline,omitempty"`
	RetryAfterMS   int64         `json:"retry_after_ms,omitempty"`
	ElapsedMS      float64       `json:"elapsed_ms"`
	// QueueWaitMS is the time the request spent in the admission queue
	// before claiming a decide slot.
	QueueWaitMS float64   `json:"queue_wait_ms"`
	Stats       obs.Stats `json:"stats"`
	// TraceID is the request's W3C trace id (the one from the client's
	// traceparent header when it sent one), present on every decide
	// answer so any response correlates with the logs.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the bounded span tree of this decide, present only when
	// the request asked for it with ?trace=1.
	Trace *TraceInfo `json:"trace,omitempty"`
}

// TraceInfo is the ?trace=1 payload: the request's finished spans
// (decider phases, eval/search sub-steps) with per-phase timings.
// Dropped counts spans discarded over the recorder's cap.
type TraceInfo struct {
	TraceID string         `json:"trace_id"`
	Spans   []obs.SpanData `json:"spans"`
	Dropped int64          `json:"dropped,omitempty"`
}

// BudgetInfo mirrors core.BudgetError.
type BudgetInfo struct {
	Op       string `json:"op"`
	Cap      string `json:"cap"`
	Limit    int64  `json:"limit"`
	Consumed int64  `json:"consumed"`
}

// DeadlineInfo mirrors core.DeadlineError.
type DeadlineInfo struct {
	Op                   string `json:"op"`
	Elapsed              string `json:"elapsed"`
	Partial              string `json:"partial,omitempty"`
	ModelsChecked        int64  `json:"models_checked"`
	ModelsAdmitted       int64  `json:"models_admitted"`
	ModelsPruned         int64  `json:"models_pruned"`
	ValuationsEnumerated int64  `json:"valuations_enumerated"`
	ExtensionsTested     int64  `json:"extensions_tested"`
}

// PutResponse answers PUT /v1/problems/{name}.
type PutResponse struct {
	Name          string `json:"name"`
	Bytes         int64  `json:"bytes"`
	Replaced      bool   `json:"replaced"`
	ResidentBytes int64  `json:"resident_bytes"`
	Problems      int    `json:"problems"`
}

// ListResponse answers GET /v1/problems.
type ListResponse struct {
	Problems      []Info `json:"problems"`
	ResidentBytes int64  `json:"resident_bytes"`
}

// ErrorResponse is the body of non-decide error answers.
type ErrorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// Error kinds: every non-2xx answer names which typed failure it is,
// so clients (and the chaos suite) can distinguish "the engine said
// no such thing is decidable" from "a fault was injected" without
// string-matching.
const (
	KindBadRequest   = "bad_request"
	KindNotFound     = "not_found"
	KindTooLarge     = "too_large"
	KindOverload     = "overload"
	KindRateLimited  = "rate_limited"
	KindBreakerOpen  = "breaker_open"
	KindDeadline     = "deadline"
	KindBudget       = "budget"
	KindUndecidable  = "undecidable"
	KindInconsistent = "inconsistent"
	KindInjected     = "injected"
	KindPanic        = "panic"
	KindDraining     = "draining"
	KindNotReady     = "not_ready"
	KindStorage      = "storage"
	KindInternal     = "internal"
)

// classify maps a decider error to its HTTP status and typed kind.
// The deadline check precedes the budget check for the same reason
// rcheck's exit codes do: a cancelled search may trip a budget on the
// way out, and the deadline is the root cause. Fault-injection
// errors and contained panics come last so a typed engine error never
// masquerades as an injected one.
func classify(err error) (status int, kind string) {
	var overload *OverloadError
	var rateLimited *RateLimitError
	var breakerOpen *BreakerOpenError
	var tooLarge *ErrTooLarge
	var panicErr *search.PanicError
	var contained *panicError
	var badReq *badRequestError
	switch {
	case errors.As(err, &badReq):
		return http.StatusBadRequest, KindBadRequest
	case errors.As(err, &overload):
		return http.StatusTooManyRequests, KindOverload
	case errors.As(err, &rateLimited):
		return http.StatusTooManyRequests, KindRateLimited
	case errors.As(err, &breakerOpen):
		return http.StatusServiceUnavailable, KindBreakerOpen
	case errors.As(err, &tooLarge):
		return http.StatusRequestEntityTooLarge, KindTooLarge
	case errors.Is(err, durable.ErrIO):
		return http.StatusServiceUnavailable, KindStorage
	case errors.Is(err, core.ErrDeadline):
		return http.StatusRequestTimeout, KindDeadline
	case errors.Is(err, core.ErrBudget), errors.Is(err, core.ErrInconclusive),
		errors.Is(err, adom.ErrBudget), errors.Is(err, eval.ErrBudget):
		return http.StatusUnprocessableEntity, KindBudget
	case errors.Is(err, core.ErrUndecidable), errors.Is(err, core.ErrOpen):
		return http.StatusUnprocessableEntity, KindUndecidable
	case errors.Is(err, core.ErrInconsistent):
		return http.StatusConflict, KindInconsistent
	case errors.Is(err, fault.ErrInjected):
		return http.StatusInternalServerError, KindInjected
	case errors.As(err, &panicErr), errors.As(err, &contained):
		return http.StatusInternalServerError, KindPanic
	default:
		return http.StatusInternalServerError, KindInternal
	}
}

// decorate fills the typed detail objects of an error response.
func (resp *DecideResponse) decorate(err error) {
	resp.Error = err.Error()
	var be *core.BudgetError
	if errors.As(err, &be) {
		resp.Budget = &BudgetInfo{Op: be.Op, Cap: be.Cap, Limit: be.Limit, Consumed: be.Consumed}
	}
	var de *core.DeadlineError
	if errors.As(err, &de) {
		resp.Deadline = &DeadlineInfo{
			Op:                   de.Op,
			Elapsed:              de.Elapsed.String(),
			Partial:              de.Partial,
			ModelsChecked:        de.Progress.ModelsChecked,
			ModelsAdmitted:       de.Progress.ModelsAdmitted,
			ModelsPruned:         de.Progress.ModelsPruned,
			ValuationsEnumerated: de.Progress.ValuationsEnumerated,
			ExtensionsTested:     de.Progress.ExtensionsTested,
		}
	}
	var ov *OverloadError
	if errors.As(err, &ov) {
		resp.RetryAfterMS = ov.RetryAfter.Milliseconds()
	}
	var rl *RateLimitError
	if errors.As(err, &rl) {
		resp.RetryAfterMS = ceilMS(rl.RetryAfter)
	}
	var bo *BreakerOpenError
	if errors.As(err, &bo) {
		resp.RetryAfterMS = ceilMS(bo.RetryAfter)
	}
}

// ceilMS rounds a duration up to whole milliseconds so a sub-ms
// Retry-After never truncates to "retry immediately".
func ceilMS(d time.Duration) int64 {
	ms := d.Milliseconds()
	if d > time.Duration(ms)*time.Millisecond {
		ms++
	}
	return ms
}
