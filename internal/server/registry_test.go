package server

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"relcomplete/internal/obs"
)

// paddedDoc returns the orders document inflated to roughly n bytes by
// widening the catalog (extra rows are semantically harmless and keep
// the document valid).
func paddedDoc(t *testing.T, n int) []byte {
	t.Helper()
	raw, err := os.ReadFile("../../examples/orders_rcdp.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) >= n {
		return raw
	}
	// Pad with trailing spaces — JSON decoders ignore trailing
	// whitespace, and the registry charges raw length.
	pad := make([]byte, n-len(raw))
	for i := range pad {
		pad[i] = ' '
	}
	return append(raw, pad...)
}

func newRegistry(cap int64) (*Registry, *obs.Metrics) {
	m := obs.NewMetrics()
	return NewRegistry(cap, nil, m), m
}

func TestRegistryLRUEviction(t *testing.T) {
	doc := paddedDoc(t, 1000)
	r, m := newRegistry(2500) // room for two 1000-byte docs, not three

	for _, name := range []string{"a", "b"} {
		if _, _, err := r.Put(name, doc); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 2 || r.ResidentBytes() != 2000 {
		t.Fatalf("len=%d bytes=%d", r.Len(), r.ResidentBytes())
	}

	// Touch a so b becomes the LRU victim.
	if _, ok := r.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if _, _, err := r.Put("c", doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("a (recently used) must survive")
	}
	if _, ok := r.Get("c"); !ok {
		t.Fatal("c (newcomer) must be resident")
	}
	if got := m.Get(obs.ServerEvictions); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := m.Get(obs.ServerProblemsLoaded); got != 3 {
		t.Fatalf("loads = %d, want 3", got)
	}
	if r.ResidentBytes() != 2000 {
		t.Fatalf("bytes after eviction = %d", r.ResidentBytes())
	}

	// The list is MRU-first and accounts every survivor.
	lst := r.List()
	if len(lst) != 2 || lst[0].Name != "c" || lst[1].Name != "a" {
		t.Fatalf("list order: %+v", lst)
	}
}

func TestRegistryTooLarge(t *testing.T) {
	doc := paddedDoc(t, 1000)
	r, _ := newRegistry(500)
	_, _, err := r.Put("big", doc)
	var tooLarge *ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if r.Len() != 0 {
		t.Fatal("rejected document must not become resident")
	}
}

func TestRegistryReplaceAndDelete(t *testing.T) {
	small := paddedDoc(t, 100)
	big := paddedDoc(t, 1000)
	r, _ := newRegistry(0) // unlimited

	if _, replaced, err := r.Put("p", small); err != nil || replaced {
		t.Fatalf("first put: replaced=%v err=%v", replaced, err)
	}
	e, replaced, err := r.Put("p", big)
	if err != nil || !replaced {
		t.Fatalf("second put: replaced=%v err=%v", replaced, err)
	}
	if r.ResidentBytes() != e.Bytes || r.Len() != 1 {
		t.Fatalf("replace must swap the byte charge: bytes=%d len=%d", r.ResidentBytes(), r.Len())
	}
	if !r.Delete("p") || r.Delete("p") {
		t.Fatal("delete must succeed once")
	}
	if r.ResidentBytes() != 0 || r.Len() != 0 {
		t.Fatalf("after delete: bytes=%d len=%d", r.ResidentBytes(), r.Len())
	}
}

func TestRegistryRejectsGarbage(t *testing.T) {
	r, _ := newRegistry(0)
	for _, raw := range []string{"{nope", `{"unknown_top_level": 1}`} {
		if _, _, err := r.Put("bad", []byte(raw)); err == nil {
			t.Fatalf("%q accepted", raw)
		}
	}
	if r.Len() != 0 {
		t.Fatal("garbage must not become resident")
	}
}

// Eviction can claim several victims when the newcomer is large.
func TestRegistryMultiEviction(t *testing.T) {
	small := paddedDoc(t, 300)
	big := paddedDoc(t, 900)
	r, m := newRegistry(1000)
	for i := 0; i < 3; i++ {
		if _, _, err := r.Put(fmt.Sprintf("s%d", i), small); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := r.Put("big", big); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.ResidentBytes() != 900 {
		t.Fatalf("len=%d bytes=%d", r.Len(), r.ResidentBytes())
	}
	if got := m.Get(obs.ServerEvictions); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
}
