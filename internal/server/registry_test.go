package server

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"relcomplete/internal/obs"
)

// paddedDoc returns the orders document inflated to roughly n bytes by
// appending trailing whitespace (JSON decoders ignore it, and the
// registry charges raw length as part of the resident size).
func paddedDoc(t *testing.T, n int) []byte {
	t.Helper()
	raw, err := os.ReadFile("../../examples/orders_rcdp.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) >= n {
		return raw
	}
	pad := make([]byte, n-len(raw))
	for i := range pad {
		pad[i] = ' '
	}
	return append(raw, pad...)
}

func newRegistry(cap int64) (*Registry, *obs.Metrics) {
	m := obs.NewMetrics()
	return NewRegistry(cap, nil, m), m
}

// chargeOf measures the resident-size charge one document costs, by
// loading it into a throwaway unlimited registry. Tests size their caps
// in units of this charge so they keep pinning eviction behaviour
// exactly without hard-coding the accounting formula.
func chargeOf(t *testing.T, raw []byte) int64 {
	t.Helper()
	r, _ := newRegistry(0)
	e, _, err := r.Put("probe", raw)
	if err != nil {
		t.Fatal(err)
	}
	return e.Bytes
}

// The resident charge is the raw document plus the built master data's
// interned representation — never just the raw length, and identical
// for identical documents.
func TestRegistryChargesInternedRepresentation(t *testing.T) {
	raw := paddedDoc(t, 0)
	r, _ := newRegistry(0)
	e, _, err := r.Put("orders", raw)
	if err != nil {
		t.Fatal(err)
	}
	master := e.Problem.Master.ResidentBytes()
	if master <= 0 {
		t.Fatalf("master resident bytes = %d, want > 0", master)
	}
	if e.Bytes != int64(len(raw))+master {
		t.Fatalf("charge = %d, want raw %d + master %d", e.Bytes, len(raw), master)
	}
	e2, _, err := r.Put("orders2", raw)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Bytes != e.Bytes {
		t.Fatalf("identical documents must charge identically: %d vs %d", e2.Bytes, e.Bytes)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	doc := paddedDoc(t, 1000)
	unit := chargeOf(t, doc)
	r, m := newRegistry(2*unit + unit/2) // room for two docs, not three

	for _, name := range []string{"a", "b"} {
		if _, _, err := r.Put(name, doc); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 2 || r.ResidentBytes() != 2*unit {
		t.Fatalf("len=%d bytes=%d want bytes=%d", r.Len(), r.ResidentBytes(), 2*unit)
	}

	// Touch a so b becomes the LRU victim.
	if _, ok := r.Get("a"); !ok {
		t.Fatal("a missing")
	}
	if _, _, err := r.Put("c", doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("a (recently used) must survive")
	}
	if _, ok := r.Get("c"); !ok {
		t.Fatal("c (newcomer) must be resident")
	}
	if got := m.Get(obs.ServerEvictions); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := m.Get(obs.ServerProblemsLoaded); got != 3 {
		t.Fatalf("loads = %d, want 3", got)
	}
	if r.ResidentBytes() != 2*unit {
		t.Fatalf("bytes after eviction = %d, want %d", r.ResidentBytes(), 2*unit)
	}

	// The list is MRU-first and accounts every survivor.
	lst := r.List()
	if len(lst) != 2 || lst[0].Name != "c" || lst[1].Name != "a" {
		t.Fatalf("list order: %+v", lst)
	}
}

func TestRegistryTooLarge(t *testing.T) {
	doc := paddedDoc(t, 1000)
	r, _ := newRegistry(chargeOf(t, doc) / 2)
	_, _, err := r.Put("big", doc)
	var tooLarge *ErrTooLarge
	if !errors.As(err, &tooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if r.Len() != 0 {
		t.Fatal("rejected document must not become resident")
	}
}

func TestRegistryReplaceAndDelete(t *testing.T) {
	small := paddedDoc(t, 100)
	big := paddedDoc(t, 1000)
	r, _ := newRegistry(0) // unlimited

	if _, replaced, err := r.Put("p", small); err != nil || replaced {
		t.Fatalf("first put: replaced=%v err=%v", replaced, err)
	}
	e, replaced, err := r.Put("p", big)
	if err != nil || !replaced {
		t.Fatalf("second put: replaced=%v err=%v", replaced, err)
	}
	if r.ResidentBytes() != e.Bytes || r.Len() != 1 {
		t.Fatalf("replace must swap the byte charge: bytes=%d len=%d", r.ResidentBytes(), r.Len())
	}
	if ok, err := r.Delete("p"); !ok || err != nil {
		t.Fatalf("delete must succeed once: ok=%v err=%v", ok, err)
	}
	if ok, err := r.Delete("p"); ok || err != nil {
		t.Fatalf("second delete must miss: ok=%v err=%v", ok, err)
	}
	if r.ResidentBytes() != 0 || r.Len() != 0 {
		t.Fatalf("after delete: bytes=%d len=%d", r.ResidentBytes(), r.Len())
	}
}

func TestRegistryRejectsGarbage(t *testing.T) {
	r, _ := newRegistry(0)
	for _, raw := range []string{"{nope", `{"unknown_top_level": 1}`} {
		if _, _, err := r.Put("bad", []byte(raw)); err == nil {
			t.Fatalf("%q accepted", raw)
		}
	}
	if r.Len() != 0 {
		t.Fatal("garbage must not become resident")
	}
}

// Eviction can claim several victims when the newcomer is large.
func TestRegistryMultiEviction(t *testing.T) {
	small := paddedDoc(t, 300)
	smallUnit := chargeOf(t, small)
	// Pad the big document until its charge exactly equals the cap for
	// three small ones: inserting it must evict all three residents.
	// Padding only moves the raw-length part of the charge, so the
	// target raw size is solvable from the small document's numbers.
	cap := 3 * smallUnit
	big := paddedDoc(t, int(cap-(smallUnit-300)))
	r, m := newRegistry(cap)
	for i := 0; i < 3; i++ {
		if _, _, err := r.Put(fmt.Sprintf("s%d", i), small); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 || r.ResidentBytes() != 3*smallUnit {
		t.Fatalf("len=%d bytes=%d want bytes=%d", r.Len(), r.ResidentBytes(), 3*smallUnit)
	}
	e, _, err := r.Put("big", big)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.ResidentBytes() != e.Bytes {
		t.Fatalf("len=%d bytes=%d want bytes=%d", r.Len(), r.ResidentBytes(), e.Bytes)
	}
	if got := m.Get(obs.ServerEvictions); got != 3 {
		t.Fatalf("evictions = %d, want 3", got)
	}
}
