package server

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"relcomplete/internal/obs"
)

const (
	// waitRingSize is how many recent queue waits feed the p50 estimate
	// behind delay-based shedding.
	waitRingSize = 64
	// drainRingSize is how many recent slot releases feed the drain-rate
	// estimate behind Retry-After.
	drainRingSize = 32
	// retryAfterMin/Max clamp the computed client back-off.
	retryAfterMin = 250 * time.Millisecond
	retryAfterMax = 30 * time.Second
)

// Admission is the admission controller in front of the deciders: at
// most Concurrency decide calls run at once — each of which fans out
// to Options.Parallelism workers, so concurrency × parallelism is the
// server's total decider-thread budget — and at most Queue more wait
// for a slot. Beyond the hard queue cap, a CoDel-style delay gate
// sheds newcomers earlier: when the median of recent queue waits
// exceeds the target (SetTarget), the queue is by definition backed up
// past what the deciders can drain, and admitting more requests only
// grows everyone's latency. Rejected requests get an OverloadError
// (HTTP 429) whose Retry-After is computed from the live queue depth
// and the observed drain rate, with jitter so a synchronized client
// herd doesn't return as a synchronized retry herd.
type Admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
	metrics  *obs.Metrics
	logger   *slog.Logger

	// target is the queue-delay shedding threshold in ns; 0 disables
	// the delay gate and leaves only the hard queue cap.
	target atomic.Int64

	// waits is a ring of recent queue waits (ns). Fast-path admissions
	// record 0, so an idle server's median decays back to nothing and
	// the gate reopens — the ring is self-healing.
	waitIdx   atomic.Int64
	waitCount atomic.Int64
	waits     [waitRingSize]atomic.Int64

	// releases is a ring of recent slot-release times (unix ns), the
	// drain-rate observation window.
	relIdx   atomic.Int64
	relCount atomic.Int64
	releases [drainRingSize]atomic.Int64
}

// SetLogger installs the structured logger overflow warnings go to
// (nil disables them). Call before serving.
func (a *Admission) SetLogger(l *slog.Logger) { a.logger = l }

// SetTarget arms queue-delay shedding: reject newcomers while the
// median recent queue wait exceeds d. Zero disables the gate. Call
// before serving.
func (a *Admission) SetTarget(d time.Duration) { a.target.Store(int64(d)) }

// NewAdmission builds a controller with the given concurrency cap
// (≥ 1 enforced) and queue depth (≥ 0). Delay-based shedding is off
// until SetTarget arms it.
func NewAdmission(concurrency, queue int, m *obs.Metrics) *Admission {
	if concurrency < 1 {
		concurrency = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, concurrency),
		maxQueue: int64(queue),
		metrics:  m,
	}
}

// OverloadError reports a request rejected at the door, either because
// the queue hit its hard cap ("queue_full") or because the delay gate
// judged the queue unhealthy ("queue_delay"). RetryAfter is the
// suggested client back-off, derived from queue depth and drain rate.
type OverloadError struct {
	Queued, QueueCap int64
	Reason           string
	RetryAfter       time.Duration
}

func (e *OverloadError) Error() string {
	if e.Reason == "queue_delay" {
		return fmt.Sprintf("server overloaded: queue delay over target (%d queued, cap %d), retry after %v",
			e.Queued, e.QueueCap, e.RetryAfter)
	}
	return fmt.Sprintf("server overloaded: %d requests already queued (cap %d), retry after %v",
		e.Queued, e.QueueCap, e.RetryAfter)
}

// Acquire claims a decide slot, waiting in the bounded queue if all
// slots are busy. It returns the release function on success; an
// *OverloadError when the queue is full or its delay is over target;
// ctx.Err() when the caller gave up (client disconnect, deadline)
// while queued. Queue wait time is recorded in the queue_wait_seconds
// histogram and in the shedding gate's observation ring.
func (a *Admission) Acquire(ctx context.Context) (func(), error) {
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.metrics.Observe(obs.QueueWaitNs, 0)
		a.recordWait(0)
		return a.releaseFunc(), nil
	default:
	}
	// Delay gate: if recent arrivals sat in the queue longer than the
	// target, the backlog exceeds drain capacity — shed before joining.
	if target := a.target.Load(); target > 0 {
		if p50 := a.waitP50(); p50 > target {
			a.metrics.Inc(obs.ShedTotal)
			return nil, a.reject(ctx, "queue_delay", p50)
		}
	}
	// Hard cap: the increment-then-check keeps the race window harmless
	// — a burst may momentarily overshoot the cap by the number of
	// racing requests, every one of which is then rejected, never
	// silently queued past the cap.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, a.reject(ctx, "queue_full", 0)
	}
	start := time.Now()
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		wait := time.Since(start)
		a.metrics.ObserveDuration(obs.QueueWaitNs, wait)
		a.recordWait(int64(wait))
		return a.releaseFunc(), nil
	case <-ctx.Done():
		a.recordWait(int64(time.Since(start)))
		return nil, ctx.Err()
	}
}

// reject builds the 429, logging it with the reason and live queue
// shape.
func (a *Admission) reject(ctx context.Context, reason string, p50 int64) *OverloadError {
	a.metrics.Inc(obs.ServerOverloads)
	retry := a.retryAfter()
	if a.logger != nil {
		var traceID string
		if t := obs.SpanFromContext(ctx).Trace(); !t.IsZero() {
			traceID = t.String()
		}
		msg := "admission queue full"
		if reason == "queue_delay" {
			msg = "admission queue delay over target"
		}
		a.logger.LogAttrs(ctx, slog.LevelWarn, msg,
			slog.String("reason", reason),
			slog.String("trace_id", traceID),
			slog.Int64("queued", a.queued.Load()),
			slog.Int64("queue_cap", a.maxQueue),
			slog.Int("in_flight", len(a.slots)),
			slog.Int64("queue_wait_p50_ms", p50/1e6),
			slog.Int64("retry_after_ms", retry.Milliseconds()),
		)
	}
	return &OverloadError{
		Queued:     a.queued.Load(),
		QueueCap:   a.maxQueue,
		Reason:     reason,
		RetryAfter: retry,
	}
}

func (a *Admission) releaseFunc() func() {
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			<-a.slots
			i := a.relIdx.Add(1) - 1
			a.releases[i%drainRingSize].Store(time.Now().UnixNano())
			a.relCount.Add(1)
		}
	}
}

func (a *Admission) recordWait(ns int64) {
	i := a.waitIdx.Add(1) - 1
	a.waits[i%waitRingSize].Store(ns)
	a.waitCount.Add(1)
}

// waitP50 is the median of the recorded queue waits (0 until anything
// was recorded).
func (a *Admission) waitP50() int64 {
	n := a.waitCount.Load()
	if n > waitRingSize {
		n = waitRingSize
	}
	if n == 0 {
		return 0
	}
	buf := make([]int64, n)
	for i := int64(0); i < n; i++ {
		buf[i] = a.waits[i].Load()
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[n/2]
}

// retryAfter estimates when a retry is likely to be admitted: the
// time to drain the current queue at the observed release rate,
// jittered ±20% and clamped to [250ms, 30s]. With no drain history
// (cold server) it falls back to one second.
func (a *Admission) retryAfter() time.Duration {
	retry := time.Second
	n := a.relCount.Load()
	if n > drainRingSize {
		n = drainRingSize
	}
	if n >= 2 {
		oldest := int64(1<<63 - 1)
		newest := int64(0)
		for i := int64(0); i < n; i++ {
			ts := a.releases[i].Load()
			if ts < oldest {
				oldest = ts
			}
			if ts > newest {
				newest = ts
			}
		}
		if span := newest - oldest; span > 0 {
			perSlot := span / (n - 1) // mean ns between releases
			retry = time.Duration(perSlot * (a.queued.Load() + 1))
		}
	}
	// ±20% jitter de-synchronizes retry herds.
	jitter := 0.8 + 0.4*rand.Float64()
	retry = time.Duration(float64(retry) * jitter)
	if retry < retryAfterMin {
		retry = retryAfterMin
	}
	if retry > retryAfterMax {
		retry = retryAfterMax
	}
	return retry
}

// Queued reports how many requests are currently waiting.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// InFlight reports how many decide slots are currently held.
func (a *Admission) InFlight() int { return len(a.slots) }
