package server

import (
	"context"
	"fmt"
	"log/slog"
	"sync/atomic"
	"time"

	"relcomplete/internal/obs"
)

// Admission is the bounded admission controller in front of the
// deciders: at most Concurrency decide calls run at once — each of
// which fans out to Options.Parallelism workers, so concurrency ×
// parallelism is the server's total decider-thread budget — and at
// most Queue more wait for a slot. A request beyond both caps is
// rejected immediately with an OverloadError (HTTP 429) instead of
// piling onto an unbounded queue: under sustained overload the server
// sheds load at the door and keeps serving the admitted requests at
// full speed.
type Admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
	metrics  *obs.Metrics
	logger   *slog.Logger
}

// SetLogger installs the structured logger overflow warnings go to
// (nil disables them). Call before serving.
func (a *Admission) SetLogger(l *slog.Logger) { a.logger = l }

// NewAdmission builds a controller with the given concurrency cap
// (≥ 1 enforced) and queue depth (≥ 0).
func NewAdmission(concurrency, queue int, m *obs.Metrics) *Admission {
	if concurrency < 1 {
		concurrency = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Admission{
		slots:    make(chan struct{}, concurrency),
		maxQueue: int64(queue),
		metrics:  m,
	}
}

// OverloadError reports a request rejected at the door: the queue was
// already full. RetryAfter is the suggested client back-off.
type OverloadError struct {
	Queued, QueueCap int64
	RetryAfter       time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server overloaded: %d requests already queued (cap %d), retry after %v",
		e.Queued, e.QueueCap, e.RetryAfter)
}

// Acquire claims a decide slot, waiting in the bounded queue if all
// slots are busy. It returns the release function on success; an
// *OverloadError when the queue is full; ctx.Err() when the caller
// gave up (client disconnect, deadline) while queued. Queue wait time
// is recorded in the queue_wait_seconds histogram.
func (a *Admission) Acquire(ctx context.Context) (func(), error) {
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.metrics.Observe(obs.QueueWaitNs, 0)
		return a.releaseFunc(), nil
	default:
	}
	// Slow path: join the bounded queue. The increment-then-check keeps
	// the race window harmless — a burst may momentarily overshoot the
	// cap by the number of racing requests, every one of which is then
	// rejected, never silently queued past the cap.
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.metrics.Inc(obs.ServerOverloads)
		if a.logger != nil {
			var traceID string
			if t := obs.SpanFromContext(ctx).Trace(); !t.IsZero() {
				traceID = t.String()
			}
			a.logger.LogAttrs(ctx, slog.LevelWarn, "admission queue full",
				slog.String("trace_id", traceID),
				slog.Int64("queue_cap", a.maxQueue),
				slog.Int("in_flight", len(a.slots)),
			)
		}
		return nil, &OverloadError{
			Queued:     a.maxQueue,
			QueueCap:   a.maxQueue,
			RetryAfter: time.Second,
		}
	}
	start := time.Now()
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.metrics.ObserveDuration(obs.QueueWaitNs, time.Since(start))
		return a.releaseFunc(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *Admission) releaseFunc() func() {
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			<-a.slots
		}
	}
}

// Queued reports how many requests are currently waiting.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// InFlight reports how many decide slots are currently held.
func (a *Admission) InFlight() int { return len(a.slots) }
