package server

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/durable"
	"relcomplete/internal/obs"
	"relcomplete/internal/probjson"
)

// Entry is one resident problem: the decoded probjson document, the
// built core.Problem (shared by every request that does not override
// the query or budgets — its plan and lattice caches are what make the
// hot serving path cheap) and the c-instance. Entries are immutable
// after load; a PUT on an existing name atomically replaces the entry.
type Entry struct {
	Name      string
	Problem   *core.Problem
	CInstance *ctable.CInstance
	Doc       *probjson.Document // retained for per-request rebuilds
	// Bytes is the resident-size charge: the raw document (retained in
	// Doc for rebuilds) plus the built master data's interned
	// representation — value table, flat id rows and membership maps —
	// as measured by relation.Database.ResidentBytes. The charge is
	// deterministic and platform-independent, so eviction behaviour
	// under a byte cap is reproducible.
	Bytes  int64
	Loaded time.Time
	// Raw is the exact acknowledged document — the bytes the WAL and
	// snapshots carry, so recovery restores documents byte-identically.
	Raw []byte
}

// Info is the JSON metadata served for one registry entry.
type Info struct {
	Name      string `json:"name"`
	Bytes     int64  `json:"bytes"`
	Relations int    `json:"relations"`
	CRows     int    `json:"cinstance_rows"`
	Loaded    string `json:"loaded"`
}

func (e *Entry) info() Info {
	return Info{
		Name:      e.Name,
		Bytes:     e.Bytes,
		Relations: len(e.Doc.Schema.Relations),
		CRows:     len(e.Doc.CInstance.Rows),
		Loaded:    e.Loaded.UTC().Format(time.RFC3339),
	}
}

// Registry is the multi-tenant problem store: named probjson instances
// kept resident under a total byte cap, evicted least-recently-used.
// Get and Put touch recency; Delete and eviction drop entries. All
// methods are safe for concurrent use; returned entries stay valid
// (and decidable) after eviction — eviction only stops the registry
// from keeping them resident for future requests.
type Registry struct {
	maxBytes int64
	base     func() core.Options // server-wide options overlay for loaded problems
	metrics  *obs.Metrics
	logger   *slog.Logger

	mu      sync.Mutex
	bytes   int64
	entries map[string]*list.Element // value: *Entry
	lru     *list.List               // front = most recently used

	// durable, when set, write-ahead-logs every Put/Delete before the
	// in-memory mutation: a mutation is acknowledged only once committed.
	// Guarded by mu for ordering (the lock order is r.mu → log.mu,
	// both here and in SnapshotNow).
	durable *durable.Log
}

// SetLogger installs the structured logger eviction warnings go to
// (nil disables them). Call before serving; not synchronised with
// concurrent Puts.
func (r *Registry) SetLogger(l *slog.Logger) { r.logger = l }

// NewRegistry builds a registry holding at most maxBytes of resident
// problems (raw document plus built master representation, see
// Entry.Bytes; 0 = unlimited). base, when non-nil, is applied to every
// loaded problem's Options after the document's own options — the
// server owns parallelism and observability, the document owns budgets.
func NewRegistry(maxBytes int64, base func() core.Options, m *obs.Metrics) *Registry {
	return &Registry{
		maxBytes: maxBytes,
		base:     base,
		metrics:  m,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
	}
}

// DecodeDocument parses raw strictly (unknown fields are errors, as in
// probjson.Decode) but keeps the document so decide-time overrides can
// rebuild the problem.
func DecodeDocument(raw []byte) (*probjson.Document, error) {
	var doc probjson.Document
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("probjson: %w", err)
	}
	return &doc, nil
}

// build assembles doc into a problem carrying the server-wide options
// overlay.
func (r *Registry) build(doc *probjson.Document) (*core.Problem, *ctable.CInstance, error) {
	p, ci, err := probjson.Build(doc)
	if err != nil {
		return nil, nil, err
	}
	if r.base != nil {
		base := r.base()
		if doc.Options.Parallelism == 0 {
			p.Options.Parallelism = base.Parallelism
		}
		p.Options.Obs = base.Obs
		p.Options.Trace = base.Trace
		p.Options.FlightRecorder = base.FlightRecorder
		p.Options.SlowOpThreshold = base.SlowOpThreshold
		p.Options.SlowOpSink = base.SlowOpSink
		p.Options.FaultPlan = base.FaultPlan
	}
	return p, ci, nil
}

// ErrTooLarge reports a document that can never fit under the cap.
type ErrTooLarge struct {
	Bytes, Cap int64
}

func (e *ErrTooLarge) Error() string {
	return fmt.Sprintf("document of %d bytes exceeds the registry cap of %d", e.Bytes, e.Cap)
}

// AttachDurable arms write-ahead logging: every later Put/Delete is
// committed to l before it mutates the in-memory state. Call before
// serving (and before Restore).
func (r *Registry) AttachDurable(l *durable.Log) {
	r.mu.Lock()
	r.durable = l
	r.mu.Unlock()
}

// Put loads raw under name, evicting least-recently-used entries until
// the new total fits the byte cap. With durability attached the
// mutation is WAL-committed first — a storage failure leaves the
// in-memory registry untouched and surfaces as a typed 503. It returns
// the loaded entry and whether an entry of that name was replaced.
func (r *Registry) Put(name string, raw []byte) (*Entry, bool, error) {
	return r.put(name, raw, true)
}

// put is Put with the WAL append optional: recovery replay (Restore)
// re-applies already-committed records and must not re-log them.
func (r *Registry) put(name string, raw []byte, persist bool) (*Entry, bool, error) {
	doc, err := DecodeDocument(raw)
	if err != nil {
		return nil, false, err
	}
	p, ci, err := r.build(doc)
	if err != nil {
		return nil, false, err
	}
	e := &Entry{
		Name: name, Problem: p, CInstance: ci, Doc: doc,
		Bytes: int64(len(raw)) + p.Master.ResidentBytes(), Loaded: time.Now(),
		Raw: raw,
	}
	if r.maxBytes > 0 && e.Bytes > r.maxBytes {
		return nil, false, &ErrTooLarge{Bytes: e.Bytes, Cap: r.maxBytes}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if persist && r.durable != nil {
		// Commit before mutate: if the WAL refuses, the PUT never
		// happened — the caller gets a storage error and the previous
		// entry (if any) stays resident and authoritative.
		if err := r.durable.AppendPut(name, raw); err != nil {
			return nil, false, err
		}
	}
	replaced := false
	if el, ok := r.entries[name]; ok {
		r.bytes -= el.Value.(*Entry).Bytes
		r.lru.Remove(el)
		delete(r.entries, name)
		replaced = true
	}
	// Evict from the cold end until the newcomer fits. The newcomer is
	// not yet on the list, so it can never evict itself.
	for r.maxBytes > 0 && r.bytes+e.Bytes > r.maxBytes {
		oldest := r.lru.Back()
		victim := oldest.Value.(*Entry)
		r.bytes -= victim.Bytes
		r.lru.Remove(oldest)
		delete(r.entries, victim.Name)
		r.metrics.Inc(obs.ServerEvictions)
		if r.logger != nil {
			r.logger.LogAttrs(context.Background(), slog.LevelWarn, "problem evicted",
				slog.String("problem", victim.Name),
				slog.Int64("bytes", victim.Bytes),
				slog.String("evicted_for", name),
				slog.Int64("resident_bytes", r.bytes),
				slog.Int64("max_bytes", r.maxBytes),
			)
		}
	}
	r.entries[name] = r.lru.PushFront(e)
	r.bytes += e.Bytes
	r.metrics.Inc(obs.ServerProblemsLoaded)
	return e, replaced, nil
}

// Get returns the named entry and marks it most recently used.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	r.lru.MoveToFront(el)
	return el.Value.(*Entry), true
}

// Delete drops the named entry, reporting whether it existed. With
// durability attached the delete is WAL-committed first; a storage
// failure leaves the entry resident and surfaces as a typed 503.
func (r *Registry) Delete(name string) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[name]
	if !ok {
		return false, nil
	}
	if r.durable != nil {
		if err := r.durable.AppendDelete(name); err != nil {
			return false, err
		}
	}
	r.bytes -= el.Value.(*Entry).Bytes
	r.lru.Remove(el)
	delete(r.entries, name)
	return true, nil
}

// Restore replays recovered records into the registry without logging
// them again (they are already durable). A record whose document no
// longer builds — a schema change across versions, say — is skipped
// with a warning rather than failing the boot: serving the restorable
// problems beats serving none. Returns how many records were applied
// and how many skipped.
func (r *Registry) Restore(recs []durable.Record) (applied, skipped int) {
	for _, rec := range recs {
		switch rec.Op {
		case durable.OpPut:
			if _, _, err := r.put(rec.Name, rec.Raw, false); err != nil {
				skipped++
				if r.logger != nil {
					r.logger.LogAttrs(context.Background(), slog.LevelWarn,
						"recovery: skipping unrestorable problem",
						slog.String("problem", rec.Name),
						slog.String("error", err.Error()),
					)
				}
				continue
			}
			applied++
		case durable.OpDelete:
			r.mu.Lock()
			if el, ok := r.entries[rec.Name]; ok {
				r.bytes -= el.Value.(*Entry).Bytes
				r.lru.Remove(el)
				delete(r.entries, rec.Name)
			}
			r.mu.Unlock()
			applied++
		}
	}
	return applied, skipped
}

// SnapshotNow folds the current resident state into a durable
// snapshot, truncating the WAL. The registry mutex is held across
// collecting the records and writing the snapshot, so no Put/Delete
// can commit in the window between them (lock order r.mu → log.mu,
// same as Put). No-op without durability attached.
//
// Note eviction is not a durable delete: an entry evicted by the byte
// cap is still in the WAL and comes back on restart (then gets
// re-evicted). Snapshots garbage-collect that dead weight — the
// snapshot holds only the resident set.
func (r *Registry) SnapshotNow() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.durable == nil {
		return nil
	}
	recs := make([]durable.Record, 0, r.lru.Len())
	for el := r.lru.Back(); el != nil; el = el.Prev() { // oldest first
		e := el.Value.(*Entry)
		recs = append(recs, durable.Record{Op: durable.OpPut, Name: e.Name, Raw: e.Raw})
	}
	return r.durable.Snapshot(recs)
}

// List returns metadata for every resident entry, most recently used
// first.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry).info())
	}
	return out
}

// Entries returns every resident entry, most recently used first,
// without touching the LRU order (introspection endpoints: a debug
// scrape must not perturb eviction).
func (r *Registry) Entries() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Entry, 0, r.lru.Len())
	for el := r.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry))
	}
	return out
}

// Len is the number of resident entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// ResidentBytes is the total resident-size charge (see Entry.Bytes)
// across resident entries.
func (r *Registry) ResidentBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}
