package server

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"relcomplete/internal/fault"
)

// Chaos suite for the service layer: with a deterministic fault plan
// armed on every loaded problem, concurrent decide requests must answer
// either the fault-free verdict (200) or a typed 4xx/5xx error body —
// never a wrong verdict, a torn response or a leaked goroutine. This is
// the HTTP-shaped restatement of the engine's graceful-degradation
// contract in internal/core's robustness suite.

// serverChaosSeeds mirrors internal/core's seed policy: a fixed in-repo
// matrix plus RELCOMPLETE_CHAOS_SEED from the environment (CI's chaos
// job sets it per matrix leg).
func serverChaosSeeds(t *testing.T) []int64 {
	seeds := []int64{11, 29, 53}
	if s := os.Getenv("RELCOMPLETE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("RELCOMPLETE_CHAOS_SEED: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// typedFailureKinds are the error kinds the chaos contract accepts in
// place of a verdict: injected faults, contained injected panics, and
// the engine's own resource-pressure errors (a fault-injected delay can
// legitimately push a decide over its deadline).
var typedFailureKinds = map[string]bool{
	KindInjected: true,
	KindPanic:    true,
	KindDeadline: true,
	KindBudget:   true,
}

func TestChaosServerTypedErrorsNeverWrongVerdicts(t *testing.T) {
	base := runtime.NumGoroutine()

	// Fault-free oracle verdicts for the orders instance (asserted
	// independently in TestDecideRoundTrip).
	oracle := map[string]bool{
		"rcdp/strong": false,
		"rcdp/weak":   false,
		"consistency": true,
		"minp/strong": false,
	}

	for _, seed := range serverChaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Deep queue: admission must never bounce a request, so every
			// one of them reaches a decider under the armed plan.
			_, ts := newTestServer(t, Config{
				Workers:       2,
				MaxConcurrent: 4,
				MaxQueue:      1024,
				FaultPlan:     fault.Chaos(seed),
			})
			putOrders(t, ts.URL, "orders")

			reqs := []DecideRequest{
				{Property: "rcdp", Model: "strong"},
				{Property: "rcdp", Model: "weak"},
				{Property: "consistency"},
				{Property: "minp", Model: "strong"},
				{Property: "certain"},
			}
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				for _, req := range reqs {
					wg.Add(1)
					go func(req DecideRequest) {
						defer wg.Done()
						resp, dr := decide(t, ts.URL, "orders", req)
						key := req.Property
						if req.Model != "" {
							key += "/" + req.Model
						}
						switch {
						case resp.StatusCode == http.StatusOK:
							if req.Property == "certain" {
								if dr.CertainAnswers == nil || len(dr.CertainAnswers) != 0 {
									t.Errorf("%s: wrong certain answers %#v", key, dr.CertainAnswers)
								}
								return
							}
							if dr.Verdict == nil || *dr.Verdict != oracle[key] {
								t.Errorf("%s: WRONG VERDICT under chaos: got %v want %v",
									key, dr.Verdict, oracle[key])
							}
						default:
							if !typedFailureKinds[dr.Kind] {
								t.Errorf("%s: status %d with untyped kind %q (error=%s)",
									key, resp.StatusCode, dr.Kind, dr.Error)
							}
							if dr.Error == "" {
								t.Errorf("%s: typed failure with empty error", key)
							}
							if dr.Verdict != nil {
								t.Errorf("%s: error answer must not carry a verdict", key)
							}
						}
					}(req)
				}
			}
			wg.Wait()
			http.DefaultClient.CloseIdleConnections()
		})
	}

	http.DefaultClient.CloseIdleConnections()
	assertServerNoGoroutineLeak(t, base)
}

// A plan injecting an error at the relation-probe site must degrade to
// scans — verdicts unaffected, no error surfaced (the engine swallows
// it by design). This pins the CI chaos matrix's "faults surface as
// typed errors, never wrong verdicts" at its most subtle point: a
// fault that is *supposed* to be absorbed.
func TestChaosRelationProbeFaultAbsorbed(t *testing.T) {
	plan := fault.NewPlan(fault.Rule{
		Site: fault.SiteRelationProbe, Kind: fault.KindError, Every: 1,
	})
	_, ts := newTestServer(t, Config{FaultPlan: plan})
	putOrders(t, ts.URL, "orders")
	resp, dr := decide(t, ts.URL, "orders", DecideRequest{Property: "rcdp", Model: "strong"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe-site faults must degrade, not fail: status=%d error=%s",
			resp.StatusCode, dr.Error)
	}
	if dr.Verdict == nil || *dr.Verdict {
		t.Fatalf("degraded decide changed the verdict: %+v", dr.Verdict)
	}
}

// assertServerNoGoroutineLeak is internal/core's leak assertion,
// restated here: poll until the goroutine count settles back to the
// baseline plus runtime slack, else dump all stacks.
func assertServerNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, base, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
