package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"relcomplete/internal/fault"
	"relcomplete/internal/httpx"
	"relcomplete/internal/obs"
)

// The full observability identity contract of one decide: a client
// traceparent must surface, under the same trace id, in (1) the span
// file the export pipeline writes, (2) a histogram exemplar in the
// OpenMetrics exposition, and (3) the pprof label set of the goroutines
// doing the work while the request is in flight.
func TestObsIdentityEndToEnd(t *testing.T) {
	const (
		clientTP = "00-feedfacecafebeeffeedfacecafebeef-00f067aa0ba902b7-01"
		wantID   = "feedfacecafebeeffeedfacecafebeef"
	)

	spanFile := filepath.Join(t.TempDir(), "spans.jsonl")
	sink, err := obs.OpenJSONLFile(spanFile)
	if err != nil {
		t.Fatal(err)
	}
	exporter := obs.NewSpanExporter(sink, obs.ExporterConfig{})

	metrics := obs.NewMetrics()
	s := New(Config{
		Metrics: metrics,
		// Deterministically slow every query evaluation a little, so the
		// decide stays in flight long enough for the goroutine-profile
		// poller to observe its pprof labels.
		FaultPlan: fault.NewPlan(fault.Rule{
			Site: fault.SiteEvalAnswers, Kind: fault.KindDelay, Every: 1, Delay: 2 * time.Millisecond,
		}),
	})
	ts := httptest.NewServer(httpx.AccessLogExport(nil, exporter, s))
	defer ts.Close()
	putOrders(t, ts.URL, "orders")

	// Poll the runtime's goroutine profile (debug=1 renders each stack's
	// pprof labels) for the decide's trace id while the request runs.
	stop := make(chan struct{})
	labelLine := make(chan string, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			for _, line := range strings.Split(buf.String(), "\n") {
				if strings.Contains(line, wantID) {
					select {
					case labelLine <- line:
					default:
					}
					return
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	body, _ := json.Marshal(DecideRequest{Property: "rcdp", Model: "strong"})
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/problems/orders/decide", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", clientTP)
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dr DecideResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	close(stop)
	if httpResp.StatusCode != http.StatusOK || dr.TraceID != wantID {
		t.Fatalf("decide status=%d trace_id=%q", httpResp.StatusCode, dr.TraceID)
	}

	// (3) pprof labels: the sampled goroutine must carry the request's
	// full identity — problem, decider and trace id.
	select {
	case line := <-labelLine:
		for _, want := range []string{
			`"problem":"orders"`, `"decider":"rcdp"`, `"trace_id":"` + wantID + `"`,
		} {
			if !strings.Contains(line, want) {
				t.Errorf("goroutine label set %q missing %s", line, want)
			}
		}
	default:
		t.Error("goroutine profile never showed the decide's pprof labels")
	}

	// (1) The exported span file: the middleware enqueues the tree when
	// the root ends, the worker drains it, Close flushes. The PUT's own
	// trace is in the file too — only the decide's spans matter here.
	waitFor(t, "span export", func() bool {
		raw, _ := os.ReadFile(spanFile)
		return bytes.Contains(raw, []byte(wantID))
	})
	if err := exporter.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(spanFile)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		var sp obs.SpanData
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("span file line is not JSON: %v\n%s", err, sc.Text())
		}
		if sp.TraceID == wantID {
			names = append(names, sp.Name)
		}
	}
	if len(names) < 2 {
		t.Fatalf("span file holds %d spans of trace %s (%v), want the request tree", len(names), wantID, names)
	}
	if !strings.Contains(strings.Join(names, " "), "POST /v1/problems/orders/decide") {
		t.Errorf("span file %v missing the request root span", names)
	}

	// (2) The histogram exemplar: the decide's wall-time observation
	// attached the trace id to its bucket, and the OpenMetrics
	// exposition renders it — on the plain histogram and the per-tenant
	// labelled series.
	om := metrics.OpenMetricsText()
	if err := obs.ValidateOpenMetricsText([]byte(om)); err != nil {
		t.Fatalf("OpenMetrics exposition invalid: %v", err)
	}
	if !strings.Contains(om, `# {trace_id="`+wantID+`"}`) {
		t.Error("OpenMetrics exposition has no exemplar with the request's trace id")
	}
	idx := strings.Index(om, `problem="orders"`)
	if idx < 0 || !strings.Contains(om[idx:], `# {trace_id="`+wantID+`"}`) {
		t.Error("per-tenant wall-time series missing the request's exemplar")
	}
}

// /debug/plans serves the sampled plan profiles of resident problems,
// tagged with the tenant name and ranked by estimated wall time.
func TestDebugPlansEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putOrders(t, ts.URL, "orders")
	if resp, _ := decide(t, ts.URL, "orders", DecideRequest{Property: "rcdp", Model: "strong"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("decide status = %d", resp.StatusCode)
	}

	var out struct {
		Plans []struct {
			Problem   string  `json:"problem"`
			Query     string  `json:"query"`
			Runs      int64   `json:"runs"`
			Sampled   int64   `json:"sampled"`
			EstWallMS float64 `json:"est_wall_ms"`
			Explain   string  `json:"explain"`
		} `json:"plans"`
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/debug/plans", nil, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/plans status = %d", resp.StatusCode)
	}
	if len(out.Plans) == 0 {
		t.Fatal("no plan profiles after a decide")
	}
	top := out.Plans[0]
	if top.Problem != "orders" {
		t.Errorf("top plan attributed to %q, want orders", top.Problem)
	}
	if top.Runs < 1 || top.Sampled < 1 {
		t.Errorf("top plan runs=%d sampled=%d, want the first run sampled", top.Runs, top.Sampled)
	}
	if !strings.Contains(top.Explain, "execs=") {
		t.Errorf("plan explain missing node stats:\n%s", top.Explain)
	}
	for i := 1; i < len(out.Plans); i++ {
		if out.Plans[i].EstWallMS > out.Plans[i-1].EstWallMS {
			t.Errorf("plans not ranked by est_wall_ms: %v before %v",
				out.Plans[i-1].EstWallMS, out.Plans[i].EstWallMS)
		}
	}

	// Bounded and validated k.
	if resp := doJSON(t, http.MethodGet, ts.URL+"/debug/plans?k=1", nil, &out); resp.StatusCode != http.StatusOK || len(out.Plans) > 1 {
		t.Fatalf("/debug/plans?k=1 status=%d plans=%d", resp.StatusCode, len(out.Plans))
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/debug/plans?k=bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad k answered %d, want 400", resp.StatusCode)
	}
}
