// Per-tenant isolation for the decide path. Each loaded problem is a
// tenant: one tenant's traffic burst or poisonous document must not
// starve or crash-loop the others. Two mechanisms, both scoped to the
// problem name:
//
//   - a token bucket caps each tenant's decide rate; over-rate
//     requests answer 429 rate_limited with a Retry-After telling the
//     client when the next token lands, and
//   - a circuit breaker watches for consecutive server-side failures
//     (contained panics, injected faults, internal errors) on one
//     problem and, once tripped, answers 503 breaker_open immediately
//     instead of burning a decide slot on a request that history says
//     will die. After a cooldown one probe request is let through
//     (half-open); success closes the breaker, failure re-opens it.
//
// Client-caused failures (bad requests, budget/deadline expiries,
// undecidable fragments) never count against the breaker — a tenant
// sending hard problems is healthy, a tenant whose decides keep
// panicking is not.
package server

import (
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"relcomplete/internal/obs"
)

// TenantLimits configures the per-problem governor. The zero value
// disables both mechanisms.
type TenantLimits struct {
	// Rate is the sustained decide-per-second budget per problem;
	// 0 disables rate limiting.
	Rate float64
	// Burst is the bucket depth (instantaneous burst allowance),
	// defaulted to max(1, Rate) when unset.
	Burst float64
	// BreakerThreshold is how many consecutive server-side failures
	// trip the breaker; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before
	// letting one probe through.
	BreakerCooldown time.Duration
}

// RateLimitError reports a decide rejected by a tenant's token bucket.
type RateLimitError struct {
	Problem    string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("problem %q over its decide rate limit, retry after %v", e.Problem, e.RetryAfter)
}

// BreakerOpenError reports a decide short-circuited by a tenant's open
// circuit breaker.
type BreakerOpenError struct {
	Problem    string
	Failures   int
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("problem %q circuit breaker open after %d consecutive failures, retry after %v",
		e.Problem, e.Failures, e.RetryAfter)
}

// tenantState is one problem's bucket + breaker. Guarded by
// Tenants.mu — the critical sections are a handful of float ops, far
// cheaper than sharding the map would be worth at the registry's size.
type tenantState struct {
	tokens   float64   // current bucket fill
	lastFill time.Time // last refill instant

	failures  int       // consecutive server-side failures
	openUntil time.Time // breaker open until (zero: closed)
	probing   bool      // half-open probe in flight
	lastSeen  time.Time // for idle pruning
}

// Tenants is the per-problem governor. Safe for concurrent use. A nil
// *Tenants admits everything.
type Tenants struct {
	cfg     TenantLimits
	metrics *obs.Metrics
	logger  *slog.Logger
	now     func() time.Time

	mu    sync.Mutex
	state map[string]*tenantState
}

// NewTenants builds a governor; returns nil (admit-everything) when
// both mechanisms are disabled.
func NewTenants(cfg TenantLimits, m *obs.Metrics, logger *slog.Logger) *Tenants {
	if cfg.Rate <= 0 && cfg.BreakerThreshold <= 0 {
		return nil
	}
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(1, cfg.Rate)
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	return &Tenants{
		cfg:     cfg,
		metrics: m,
		logger:  logger,
		now:     time.Now,
		state:   map[string]*tenantState{},
	}
}

// Admit gates one decide on problem name: breaker first (a tripped
// tenant shouldn't spend its rate budget on guaranteed failures), then
// the token bucket. A nil error admits the request; the caller must
// report the outcome with Observe so the breaker sees it.
func (t *Tenants) Admit(name string) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	ts := t.lookup(name, now)

	if t.cfg.BreakerThreshold > 0 && !ts.openUntil.IsZero() {
		if now.Before(ts.openUntil) {
			t.metrics.Inc(obs.BreakerShortCircuits)
			return &BreakerOpenError{
				Problem:    name,
				Failures:   ts.failures,
				RetryAfter: ts.openUntil.Sub(now),
			}
		}
		// Cooldown over: half-open. Exactly one probe goes through; the
		// rest keep getting 503 until the probe reports back.
		if ts.probing {
			t.metrics.Inc(obs.BreakerShortCircuits)
			return &BreakerOpenError{
				Problem:    name,
				Failures:   ts.failures,
				RetryAfter: t.cfg.BreakerCooldown,
			}
		}
		ts.probing = true
		return nil
	}

	if t.cfg.Rate > 0 {
		// Lazy refill: tokens accrued since the last look.
		ts.tokens = math.Min(t.cfg.Burst, ts.tokens+now.Sub(ts.lastFill).Seconds()*t.cfg.Rate)
		ts.lastFill = now
		if ts.tokens < 1 {
			t.metrics.Inc(obs.RateLimited)
			wait := time.Duration((1 - ts.tokens) / t.cfg.Rate * float64(time.Second))
			return &RateLimitError{Problem: name, RetryAfter: wait}
		}
		ts.tokens--
	}
	return nil
}

// Observe reports one admitted decide's outcome. serverFailure is true
// for 5xx-class answers the server blames on itself (panic, injected
// fault, internal error) — those advance the breaker; everything else
// resets it.
func (t *Tenants) Observe(name string, serverFailure bool) {
	if t == nil || t.cfg.BreakerThreshold <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	ts := t.lookup(name, now)

	if !serverFailure {
		ts.failures = 0
		ts.openUntil = time.Time{}
		ts.probing = false
		return
	}
	ts.failures++
	ts.probing = false
	if ts.failures >= t.cfg.BreakerThreshold {
		wasOpen := !ts.openUntil.IsZero()
		ts.openUntil = now.Add(t.cfg.BreakerCooldown)
		if !wasOpen {
			t.metrics.Inc(obs.BreakerOpens)
			if t.logger != nil {
				t.logger.Warn("tenant circuit breaker opened",
					slog.String("problem", name),
					slog.Int("consecutive_failures", ts.failures),
					slog.Duration("cooldown", t.cfg.BreakerCooldown),
				)
			}
		}
	}
}

// Forget drops a tenant's state (called when its problem is deleted,
// so a reloaded problem starts with a clean record).
func (t *Tenants) Forget(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.state, name)
	t.mu.Unlock()
}

// lookup returns (creating if needed) name's state, opportunistically
// pruning tenants idle long enough that their bucket is full and their
// breaker expired — the map stays proportional to the active set, not
// to everything ever decided. Caller holds t.mu.
func (t *Tenants) lookup(name string, now time.Time) *tenantState {
	if len(t.state) > 64 {
		idle := 10 * time.Minute
		if t.cfg.BreakerCooldown > idle {
			idle = t.cfg.BreakerCooldown
		}
		for n, s := range t.state {
			if n != name && now.Sub(s.lastSeen) > idle {
				delete(t.state, n)
			}
		}
	}
	ts := t.state[name]
	if ts == nil {
		ts = &tenantState{tokens: t.cfg.Burst, lastFill: now}
		t.state[name] = ts
	}
	ts.lastSeen = now
	return ts
}
