package server

import (
	"net/http"
	"testing"

	"relcomplete/internal/durable"
	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// openDurable opens a data dir for a test server, failing on error.
func openDurable(t *testing.T, dir string, opt durable.Options) (*durable.Log, []durable.Record) {
	t.Helper()
	l, recs, err := durable.Open(dir, opt)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, recs
}

// The whole point of the durable registry: stop the process after
// acknowledged mutations, start a fresh server on the same data dir,
// and everything is back — same problems, same verdicts, byte-identical
// documents.
func TestDurableRestartRestoresProblemsAndVerdicts(t *testing.T) {
	dir := t.TempDir()

	// First life: load two problems, take a verdict, delete one.
	log1, recs := openDurable(t, dir, durable.Options{})
	s1, ts1 := newTestServer(t, Config{Durable: log1})
	if a, sk := s1.Restore(recs); a != 0 || sk != 0 {
		t.Fatalf("cold restore: applied=%d skipped=%d", a, sk)
	}
	putOrders(t, ts1.URL, "orders")
	putOrders(t, ts1.URL, "doomed")
	resp, dr := decide(t, ts1.URL, "orders", DecideRequest{Property: "rcdp", Model: "strong"})
	if resp.StatusCode != http.StatusOK || dr.Verdict == nil {
		t.Fatalf("first-life decide: status=%d %+v", resp.StatusCode, dr)
	}
	firstVerdict := *dr.Verdict
	firstCex := dr.Counterexample
	if resp := doJSON(t, http.MethodDelete, ts1.URL+"/v1/problems/doomed", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	ts1.Close()
	log1.Close() // crash stand-in; recovery tolerates dirtier exits (see internal/durable)

	// Second life: same dir, fresh process state.
	log2, recs2 := openDurable(t, dir, durable.Options{})
	s2, ts2 := newTestServer(t, Config{Durable: log2})
	applied, skipped := s2.Restore(recs2)
	if skipped != 0 {
		t.Fatalf("restore skipped %d records", skipped)
	}
	if applied == 0 {
		t.Fatal("restore applied nothing")
	}
	if s2.Registry().Len() != 1 {
		t.Fatalf("restored %d problems, want 1 (orders; doomed was deleted)", s2.Registry().Len())
	}
	e, ok := s2.Registry().Get("orders")
	if !ok {
		t.Fatal("orders lost across restart")
	}
	if string(e.Raw) != string(ordersDoc(t)) {
		t.Fatal("restored document is not byte-identical")
	}
	resp, dr = decide(t, ts2.URL, "orders", DecideRequest{Property: "rcdp", Model: "strong"})
	if resp.StatusCode != http.StatusOK || dr.Verdict == nil {
		t.Fatalf("second-life decide: status=%d error=%s", resp.StatusCode, dr.Error)
	}
	if *dr.Verdict != firstVerdict || dr.Counterexample != firstCex {
		t.Fatalf("verdict changed across restart: %v/%q != %v/%q",
			*dr.Verdict, dr.Counterexample, firstVerdict, firstCex)
	}
}

// /readyz is the full lifecycle gate: 503 not_ready before recovery
// replay, 200 after Restore, 503 draining once the drain begins.
// /healthz (liveness) stays 200 while not ready — the process is alive,
// just not routable.
func TestReadyzLifecycle(t *testing.T) {
	dir := t.TempDir()
	log1, recs := openDurable(t, dir, durable.Options{})
	s, ts := newTestServer(t, Config{Durable: log1})

	var er ErrorResponse
	resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &er)
	if resp.StatusCode != http.StatusServiceUnavailable || er.Kind != KindNotReady {
		t.Fatalf("pre-restore readyz: status=%d kind=%q", resp.StatusCode, er.Kind)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while not ready: %d", resp.StatusCode)
	}

	s.Restore(recs)
	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore readyz: %d", resp.StatusCode)
	}

	s.StartDrain()
	resp = doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &er)
	if resp.StatusCode != http.StatusServiceUnavailable || er.Kind != KindDraining {
		t.Fatalf("draining readyz: status=%d kind=%q", resp.StatusCode, er.Kind)
	}
}

// A server without durability is ready the moment it is up.
func TestReadyzWithoutDurability(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
}

// A failed WAL commit refuses the PUT with a typed 503 storage error,
// leaves the registry untouched, and flips /readyz to 503 — the
// fsyncgate discipline surfaced at the HTTP layer.
func TestPutStorageFailure503(t *testing.T) {
	dir := t.TempDir()
	// First append commits, every later one hits an fsync fault.
	plan := fault.NewPlan(fault.Rule{Site: fault.SiteWALFsync, Kind: fault.KindError, After: 1, Every: 1})
	m := obs.NewMetrics()
	log1, recs := openDurable(t, dir, durable.Options{Faults: plan, Metrics: m})
	s, ts := newTestServer(t, Config{Durable: log1, Metrics: m})
	s.Restore(recs)

	putOrders(t, ts.URL, "orders") // append 1: committed

	var er ErrorResponse
	resp := doJSON(t, http.MethodPut, ts.URL+"/v1/problems/victim", ordersDoc(t), &er)
	if resp.StatusCode != http.StatusServiceUnavailable || er.Kind != KindStorage {
		t.Fatalf("storage-failure put: status=%d kind=%q err=%s", resp.StatusCode, er.Kind, er.Error)
	}
	if s.Registry().Len() != 1 {
		t.Fatalf("failed put mutated the registry: %d problems", s.Registry().Len())
	}
	resp = doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &er)
	if resp.StatusCode != http.StatusServiceUnavailable || er.Kind != KindStorage {
		t.Fatalf("readyz on broken wal: status=%d kind=%q", resp.StatusCode, er.Kind)
	}
	// The resident problem still serves decides: readiness is for the
	// balancer; admitted work and reads keep flowing.
	if resp, dr := decide(t, ts.URL, "orders", DecideRequest{Property: "consistency"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("decide on broken wal: status=%d error=%s", resp.StatusCode, dr.Error)
	}
}

// Deletes are as durable as puts: a deleted problem must not
// resurrect on restart (regression guard for replay ordering).
func TestDurableDeleteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	log1, recs := openDurable(t, dir, durable.Options{})
	s1, ts1 := newTestServer(t, Config{Durable: log1})
	s1.Restore(recs)
	putOrders(t, ts1.URL, "a")
	if resp := doJSON(t, http.MethodDelete, ts1.URL+"/v1/problems/a", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	putOrders(t, ts1.URL, "a") // reload after delete: latest PUT wins
	ts1.Close()
	log1.Close()

	log2, recs2 := openDurable(t, dir, durable.Options{})
	s2, _ := newTestServer(t, Config{Durable: log2})
	s2.Restore(recs2)
	if s2.Registry().Len() != 1 {
		t.Fatalf("restored %d problems, want 1", s2.Registry().Len())
	}
	if _, ok := s2.Registry().Get("a"); !ok {
		t.Fatal("reloaded problem lost")
	}
}

// SnapshotNow folds state into the snapshot; a restart replays from it
// (plus the emptied WAL) with nothing lost.
func TestServerSnapshotNow(t *testing.T) {
	dir := t.TempDir()
	m := obs.NewMetrics()
	log1, recs := openDurable(t, dir, durable.Options{Metrics: m})
	s1, ts1 := newTestServer(t, Config{Durable: log1, Metrics: m})
	s1.Restore(recs)
	putOrders(t, ts1.URL, "a")
	putOrders(t, ts1.URL, "b")
	if err := s1.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if m.Get(obs.SnapshotsWritten) != 1 {
		t.Fatalf("snapshots_written = %d", m.Get(obs.SnapshotsWritten))
	}
	putOrders(t, ts1.URL, "c") // post-snapshot WAL tail
	ts1.Close()
	log1.Close()

	log2, recs2 := openDurable(t, dir, durable.Options{})
	s2, _ := newTestServer(t, Config{Durable: log2})
	if applied, skipped := s2.Restore(recs2); skipped != 0 || applied != 3 {
		t.Fatalf("restore applied=%d skipped=%d, want 3/0", applied, skipped)
	}
	for _, name := range []string{"a", "b", "c"} {
		if _, ok := s2.Registry().Get(name); !ok {
			t.Fatalf("problem %s lost across snapshot+restart", name)
		}
	}
}
