package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// A tenant over its token bucket answers 429 rate_limited with a
// Retry-After — and only that tenant: the bucket is per problem name.
func TestDecideRateLimited429(t *testing.T) {
	m := obs.NewMetrics()
	_, ts := newTestServer(t, Config{
		Metrics: m,
		Tenant:  TenantLimits{Rate: 0.001, Burst: 1}, // one decide, then a very slow refill
	})
	putOrders(t, ts.URL, "greedy")
	putOrders(t, ts.URL, "modest")

	if resp, dr := decide(t, ts.URL, "greedy", DecideRequest{Property: "consistency"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("first decide: status=%d error=%s", resp.StatusCode, dr.Error)
	}
	resp, dr := decide(t, ts.URL, "greedy", DecideRequest{Property: "consistency"})
	if resp.StatusCode != http.StatusTooManyRequests || dr.Kind != KindRateLimited {
		t.Fatalf("over-rate decide: status=%d kind=%q", resp.StatusCode, dr.Kind)
	}
	if dr.RetryAfterMS <= 0 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("rate-limited answer must carry a back-off: retry_after_ms=%d header=%q",
			dr.RetryAfterMS, resp.Header.Get("Retry-After"))
	}
	if m.Get(obs.RateLimited) != 1 {
		t.Fatalf("rate_limited counter = %d", m.Get(obs.RateLimited))
	}
	// The other tenant's bucket is untouched.
	if resp, dr := decide(t, ts.URL, "modest", DecideRequest{Property: "consistency"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant rate-limited too: status=%d error=%s", resp.StatusCode, dr.Error)
	}
}

// A tenant whose decides keep dying server-side trips its breaker:
// later requests answer 503 breaker_open without reaching a decider,
// while other tenants keep deciding. An injected search-worker fault
// makes every decide on the armed plan fail as 500 injected — a
// server-side failure in the breaker's book.
func TestBreakerOpensAndIsolates(t *testing.T) {
	m := obs.NewMetrics()
	plan := fault.NewPlan(fault.Rule{Site: fault.SiteSearchWorker, Kind: fault.KindError, Every: 1})
	_, ts := newTestServer(t, Config{
		Metrics:   m,
		FaultPlan: plan,
		Tenant:    TenantLimits{BreakerThreshold: 2, BreakerCooldown: time.Hour},
	})
	putOrders(t, ts.URL, "poison")
	putOrders(t, ts.URL, "bystander")

	// Two consecutive 500s on "poison" trip its breaker.
	for i := 0; i < 2; i++ {
		resp, dr := decide(t, ts.URL, "poison", DecideRequest{Property: "consistency"})
		if resp.StatusCode != http.StatusInternalServerError || dr.Kind != KindInjected {
			t.Fatalf("decide %d: status=%d kind=%q", i, resp.StatusCode, dr.Kind)
		}
	}
	if m.Get(obs.BreakerOpens) != 1 {
		t.Fatalf("breaker_opens = %d", m.Get(obs.BreakerOpens))
	}

	decides := m.Get(obs.ServerDecides)
	resp, dr := decide(t, ts.URL, "poison", DecideRequest{Property: "consistency"})
	if resp.StatusCode != http.StatusServiceUnavailable || dr.Kind != KindBreakerOpen {
		t.Fatalf("tripped tenant: status=%d kind=%q", resp.StatusCode, dr.Kind)
	}
	if dr.RetryAfterMS <= 0 {
		t.Fatal("breaker answer must carry a back-off")
	}
	if m.Get(obs.ServerDecides) != decides {
		t.Fatal("short-circuited request consumed a decide slot")
	}
	if m.Get(obs.BreakerShortCircuits) != 1 {
		t.Fatalf("breaker_short_circuits = %d", m.Get(obs.BreakerShortCircuits))
	}

	// The bystander still reaches its decider (it fails 500 under the
	// same global fault plan, but it is admitted — its own breaker has
	// only begun counting).
	resp, dr = decide(t, ts.URL, "bystander", DecideRequest{Property: "consistency"})
	if resp.StatusCode != http.StatusInternalServerError || dr.Kind != KindInjected {
		t.Fatalf("bystander gated by poison's breaker: status=%d kind=%q", resp.StatusCode, dr.Kind)
	}
}

// Breaker state machine at the unit level: open → half-open probe
// after cooldown (exactly one) → closed on success, re-open on failure.
func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(1000, 0)
	tn := NewTenants(TenantLimits{BreakerThreshold: 2, BreakerCooldown: time.Minute}, nil, nil)
	tn.now = func() time.Time { return now }

	fail := func() {
		if err := tn.Admit("p"); err != nil {
			t.Fatalf("admit before trip: %v", err)
		}
		tn.Observe("p", true)
	}
	fail()
	fail() // trips

	if err := tn.Admit("p"); err == nil {
		t.Fatal("open breaker admitted a request")
	}

	// Cooldown elapses: exactly one probe goes through.
	now = now.Add(2 * time.Minute)
	if err := tn.Admit("p"); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := tn.Admit("p"); err == nil {
		t.Fatal("second concurrent probe admitted")
	}

	// Probe fails: re-open for another cooldown.
	tn.Observe("p", true)
	if err := tn.Admit("p"); err == nil {
		t.Fatal("breaker closed after failed probe")
	}

	// Next probe succeeds: breaker closes fully.
	now = now.Add(2 * time.Minute)
	if err := tn.Admit("p"); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	tn.Observe("p", false)
	if err := tn.Admit("p"); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	if err := tn.Admit("p"); err != nil {
		t.Fatalf("closed breaker refused again: %v", err)
	}
}

// The delay gate: once recent queue waits sit over the target, new
// arrivals are shed with reason queue_delay even though the hard queue
// cap has room — and the fast path's zero-wait samples heal the gate
// once the queue drains.
func TestAdmissionDelayShedding(t *testing.T) {
	m := obs.NewMetrics()
	a := NewAdmission(1, 64, m)
	a.SetTarget(time.Millisecond)

	// Saturate the slot, then simulate a history of slow queue waits.
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < waitRingSize; i++ {
		a.recordWait(int64(50 * time.Millisecond))
	}

	_, err = a.Acquire(context.Background())
	var ov *OverloadError
	if !errors.As(err, &ov) || ov.Reason != "queue_delay" {
		t.Fatalf("err = %v, want queue_delay OverloadError", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatal("shed answer must carry a back-off")
	}
	if m.Get(obs.ShedTotal) != 1 || m.Get(obs.ServerOverloads) != 1 {
		t.Fatalf("counters: shed=%d overloads=%d", m.Get(obs.ShedTotal), m.Get(obs.ServerOverloads))
	}

	// Drain and let fast-path zero-wait samples pull the median down.
	release()
	for i := 0; i < waitRingSize/2+1; i++ {
		rel, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatalf("healing acquire %d: %v", i, err)
		}
		rel()
	}
	rel, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("gate failed to heal: %v", err)
	}
	rel()
}

// Retry-After derives from drain history and stays inside its clamp.
func TestRetryAfterBounds(t *testing.T) {
	a := NewAdmission(1, 4, obs.NewMetrics())
	// No history: the cold fallback, jittered around one second.
	if ra := a.retryAfter(); ra < retryAfterMin || ra > retryAfterMax {
		t.Fatalf("cold retry-after %v out of bounds", ra)
	}
	// Build drain history with quick acquire/release cycles.
	for i := 0; i < 8; i++ {
		rel, err := a.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
		rel()
	}
	for i := 0; i < 32; i++ {
		if ra := a.retryAfter(); ra < retryAfterMin || ra > retryAfterMax {
			t.Fatalf("retry-after %v out of bounds", ra)
		}
	}
}

// Decide bodies are bounded like PUT bodies: an oversized request dies
// 413 too_large at the transport.
func TestDecideBodyTooLarge413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	putOrders(t, ts.URL, "orders")

	body, err := json.Marshal(DecideRequest{
		Property: "rcdp",
		Query:    strings.Repeat("x", 4096),
	})
	if err != nil {
		t.Fatal(err)
	}
	var dr DecideResponse
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/problems/orders/decide", body, &dr)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || dr.Kind != KindTooLarge {
		t.Fatalf("oversized decide: status=%d kind=%q", resp.StatusCode, dr.Kind)
	}
}
