package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"relcomplete/internal/httpx"
	"relcomplete/internal/obs"

	"log/slog"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the slog handler and the
// slow-op sink write from request goroutines while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls cond until it holds or the deadline lapses (the access
// log line is written after the handler returns, so it can trail the
// client's view of the response by a scheduler beat).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// logLines decodes every JSON log line with the given msg value.
func logLines(t *testing.T, raw, msg string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(raw, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == msg {
			out = append(out, rec)
		}
	}
	return out
}

// The end-to-end correlation contract of DESIGN §5.9: one decide with a
// client-supplied traceparent, and the same trace id must surface in
// the JSON access log, the decision log, the /debug/requests record,
// the ?trace=1 response body and the slow-op dump.
func TestTraceCorrelationEndToEnd(t *testing.T) {
	const (
		clientTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
		wantID   = "4bf92f3577b34da6a3ce929d0e0e4736"
	)
	var logs, slowops syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logs, nil))
	s := New(Config{
		Logger:          logger,
		SlowOpThreshold: time.Nanosecond, // every decider call "slow"
		SlowOpSink:      &slowops,
	})
	ts := httptest.NewServer(httpx.AccessLog(logger, s))
	defer ts.Close()

	putOrders(t, ts.URL, "orders")
	slowops.mu.Lock()
	slowops.b.Reset() // drop dumps from the PUT's validation decide, if any
	slowops.mu.Unlock()

	body, _ := json.Marshal(DecideRequest{Property: "rcdp", Model: "strong"})
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/problems/orders/decide?trace=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", clientTP)
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dr DecideResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("decide status = %d", httpResp.StatusCode)
	}

	// 0. The response itself: echoed traceparent header and trace_id.
	if tp := httpResp.Header.Get("traceparent"); !strings.Contains(tp, wantID) {
		t.Errorf("response traceparent = %q, want trace %s", tp, wantID)
	}
	if dr.TraceID != wantID {
		t.Errorf("response trace_id = %q, want %s", dr.TraceID, wantID)
	}

	// 1. The ?trace=1 span tree: same trace, with the decider phase span.
	if dr.Trace == nil || dr.Trace.TraceID != wantID {
		t.Fatalf("trace block = %+v, want trace %s", dr.Trace, wantID)
	}
	var sawPhase bool
	for _, sp := range dr.Trace.Spans {
		if sp.TraceID != wantID {
			t.Errorf("span %s carries trace %s", sp.Name, sp.TraceID)
		}
		if sp.Name == "rcdp_strong" {
			sawPhase = true
			if sp.DurationMS < 0 {
				t.Errorf("phase span has negative duration: %+v", sp)
			}
		}
	}
	if !sawPhase {
		t.Errorf("no rcdp_strong phase span in %+v", dr.Trace.Spans)
	}

	// 2. The decision log line.
	waitFor(t, "decision log line", func() bool {
		return len(logLines(t, logs.String(), "decide")) > 0
	})
	dec := logLines(t, logs.String(), "decide")[0]
	if dec["trace_id"] != wantID {
		t.Errorf("decision log trace_id = %v", dec["trace_id"])
	}
	if dec["problem"] != "orders" || dec["decider"] != "rcdp_strong" {
		t.Errorf("decision log attribution: %v", dec)
	}
	if dec["verdict"] != "false" || dec["outcome"] != "ok" {
		t.Errorf("decision log verdict/outcome: %v", dec)
	}
	if _, ok := dec["wall_ms"].(float64); !ok {
		t.Errorf("decision log wall_ms missing: %v", dec)
	}

	// 3. The access log line for the decide POST.
	waitFor(t, "access log line", func() bool {
		for _, al := range logLines(t, logs.String(), "access") {
			if al["trace_id"] == wantID {
				return true
			}
		}
		return false
	})
	var access map[string]any
	for _, al := range logLines(t, logs.String(), "access") {
		if al["trace_id"] == wantID {
			access = al
		}
	}
	if access["method"] != "POST" || access["path"] != "/v1/problems/orders/decide" {
		t.Errorf("access log line: %v", access)
	}
	if st, _ := access["status"].(float64); int(st) != http.StatusOK {
		t.Errorf("access log status = %v", access["status"])
	}

	// 4. The /debug/requests record.
	var dbg DebugRequestsResponse
	if resp := doJSON(t, http.MethodGet, ts.URL+"/debug/requests", nil, &dbg); resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests status = %d", resp.StatusCode)
	}
	if dbg.Total < 1 || len(dbg.Requests) < 1 {
		t.Fatalf("/debug/requests empty: %+v", dbg)
	}
	rec := dbg.Requests[0] // most recent first
	if rec.TraceID != wantID || rec.Problem != "orders" || rec.Decider != "rcdp_strong" {
		t.Errorf("ring record: %+v", rec)
	}
	if rec.Status != http.StatusOK || rec.Verdict == nil || *rec.Verdict {
		t.Errorf("ring record outcome: %+v", rec)
	}
	if len(rec.Spans) == 0 {
		t.Errorf("ring record kept no spans: %+v", rec)
	}

	// 5. The slow-op dump (threshold 1ns: the decide must have tripped it).
	waitFor(t, "slow-op dump", func() bool {
		return strings.Contains(slowops.String(), "=== SLOW OP ")
	})
	dump := slowops.String()
	if !strings.Contains(dump, "trace_id="+wantID) {
		t.Errorf("slow-op dump lost the trace id:\n%s", dump)
	}
	if !strings.Contains(dump, "op=rcdp_strong") {
		t.Errorf("slow-op dump names no rcdp_strong op:\n%s", dump)
	}

	// 6. Per-tenant labelled metrics, through the exposition validator.
	text := s.Metrics().PrometheusText()
	if err := obs.ValidatePrometheusText([]byte(text)); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	if !strings.Contains(text,
		`relcomplete_server_decides_total{problem="orders",decider="rcdp_strong",outcome="ok"} 1`) {
		t.Errorf("labelled decide counter missing:\n%s", grepLines(text, "server_decides"))
	}
	if !strings.Contains(text, `relcomplete_decider_wall_seconds_count{problem="orders"} 1`) {
		t.Errorf("labelled wall histogram missing:\n%s", grepLines(text, "decider_wall"))
	}
}

// grepLines filters text to lines containing sub, for focused failure
// output.
func grepLines(text, sub string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// A bare Server (no AccessLog middleware) still opens a root span:
// it adopts the client's traceparent and echoes one back.
func TestServerMintsRootSpanWithoutMiddleware(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putOrders(t, ts.URL, "orders")

	const clientTP = "00-aaaabbbbccccddddeeeeffff00001111-1234567812345678-01"
	body, _ := json.Marshal(DecideRequest{Property: "consistency"})
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/problems/orders/decide", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", clientTP)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var dr DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dr.TraceID != "aaaabbbbccccddddeeeeffff00001111" {
		t.Errorf("trace_id = %q, client traceparent not adopted", dr.TraceID)
	}
	if tp := resp.Header.Get("traceparent"); !strings.HasPrefix(tp, "00-aaaabbbbccccddddeeeeffff00001111-") {
		t.Errorf("response traceparent = %q", tp)
	}

	// Without a traceparent the server mints a fresh trace.
	resp2, dr2 := decide(t, ts.URL, "orders", DecideRequest{Property: "consistency"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp2.StatusCode)
	}
	if dr2.TraceID == "" || dr2.TraceID == dr.TraceID {
		t.Errorf("minted trace_id = %q (previous %q)", dr2.TraceID, dr.TraceID)
	}
}

// Failed decides are recorded too: the ring and the labelled counter
// attribute errors to the tenant and outcome kind.
func TestTraceRecordsFailures(t *testing.T) {
	var logs syncBuffer
	s := New(Config{Logger: slog.New(slog.NewJSONHandler(&logs, nil))})
	ts := httptest.NewServer(s)
	defer ts.Close()
	putOrders(t, ts.URL, "orders")

	resp, dr := decide(t, ts.URL, "orders", DecideRequest{Property: "nonsense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if dr.TraceID == "" {
		t.Error("error response carries no trace_id")
	}

	var dbg DebugRequestsResponse
	doJSON(t, http.MethodGet, ts.URL+"/debug/requests", nil, &dbg)
	if len(dbg.Requests) == 0 {
		t.Fatal("failed decide not recorded")
	}
	rec := dbg.Requests[0]
	if rec.Kind != KindBadRequest || rec.Status != http.StatusBadRequest || rec.Verdict != nil {
		t.Errorf("failure record: %+v", rec)
	}
	if got := s.decideVec.Get("orders", "nonsense", KindBadRequest); got != 1 {
		t.Errorf("labelled failure counter = %d, want 1", got)
	}

	decs := logLines(t, logs.String(), "decide")
	if len(decs) != 1 || decs[0]["outcome"] != KindBadRequest || decs[0]["verdict"] != "unknown" {
		t.Errorf("decision log for failure: %v", decs)
	}
}

// The request ring caps retention and keeps counting.
func TestRequestRingBounds(t *testing.T) {
	r := NewRequestRing(3)
	for i := 0; i < 5; i++ {
		r.Add(RequestRecord{Status: 200 + i})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len=%d Total=%d", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	if snap[0].Status != 204 || snap[1].Status != 203 || snap[2].Status != 202 {
		t.Errorf("snapshot order: %+v", snap)
	}
	var nilRing *RequestRing
	nilRing.Add(RequestRecord{})
	if nilRing.Len() != 0 || nilRing.Total() != 0 || nilRing.Snapshot() != nil {
		t.Error("nil ring not inert")
	}
}
