package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// ordersDoc loads the repo's smoke instance: RCDP(strong) = false with
// a counterexample, consistency = true, certain answers = [].
func ordersDoc(t *testing.T) []byte {
	t.Helper()
	raw, err := os.ReadFile("../../examples/orders_rcdp.json")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// newTestServer stands a service up behind a real socket.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, method, url string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding body: %v", method, url, err)
		}
	}
	return resp
}

func putOrders(t *testing.T, base, name string) PutResponse {
	t.Helper()
	var pr PutResponse
	resp := doJSON(t, http.MethodPut, base+"/v1/problems/"+name, ordersDoc(t), &pr)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	return pr
}

func decide(t *testing.T, base, name string, req DecideRequest) (*http.Response, DecideResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var dr DecideResponse
	resp := doJSON(t, http.MethodPost, base+"/v1/problems/"+name+"/decide", body, &dr)
	return resp, dr
}

// The registry CRUD round trip over the wire.
func TestProblemCRUD(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	pr := putOrders(t, ts.URL, "orders")
	if pr.Name != "orders" || pr.Bytes == 0 || pr.Replaced {
		t.Fatalf("put response: %+v", pr)
	}

	// Replacing answers 200, not 201.
	var pr2 PutResponse
	resp := doJSON(t, http.MethodPut, ts.URL+"/v1/problems/orders", ordersDoc(t), &pr2)
	if resp.StatusCode != http.StatusOK || !pr2.Replaced {
		t.Fatalf("replace: status=%d %+v", resp.StatusCode, pr2)
	}

	var info Info
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/problems/orders", nil, &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	if info.Name != "orders" || info.Relations != 1 || info.CRows != 1 {
		t.Fatalf("info: %+v", info)
	}

	var lst ListResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/problems", nil, &lst)
	if len(lst.Problems) != 1 || lst.ResidentBytes != pr2.Bytes {
		t.Fatalf("list: %+v", lst)
	}

	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/problems/orders", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	var er ErrorResponse
	if resp := doJSON(t, http.MethodDelete, ts.URL+"/v1/problems/orders", nil, &er); resp.StatusCode != http.StatusNotFound || er.Kind != KindNotFound {
		t.Fatalf("second DELETE: status=%d %+v", resp.StatusCode, er)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var er ErrorResponse
	resp := doJSON(t, http.MethodPut, ts.URL+"/v1/problems/ok%20not", ordersDoc(t), &er)
	if resp.StatusCode != http.StatusBadRequest || er.Kind != KindBadRequest {
		t.Fatalf("bad name: status=%d %+v", resp.StatusCode, er)
	}
	resp = doJSON(t, http.MethodPut, ts.URL+"/v1/problems/bad", []byte(`{"nope": 1}`), &er)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status=%d", resp.StatusCode)
	}
	if !strings.Contains(er.Error, "probjson") {
		t.Fatalf("error should name the decoder: %+v", er)
	}
}

// The decide round trip: decode → decide → encode, verdicts matching
// the engine's own (see the probe oracle values asserted below), with
// the stats object carried along like rcheck -json.
func TestDecideRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	putOrders(t, ts.URL, "orders")

	cases := []struct {
		req     DecideRequest
		verdict bool
	}{
		{DecideRequest{Property: "rcdp", Model: "strong"}, false},
		{DecideRequest{Property: "rcdp", Model: "weak"}, false},
		{DecideRequest{Property: "consistency"}, true},
		{DecideRequest{Property: "minp", Model: "strong"}, false},
		{DecideRequest{Property: "rcqp", Model: "strong"}, true},
	}
	for _, c := range cases {
		resp, dr := decide(t, ts.URL, "orders", c.req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%+v: status=%d error=%s", c.req, resp.StatusCode, dr.Error)
		}
		if dr.Verdict == nil || *dr.Verdict != c.verdict {
			t.Fatalf("%+v: verdict=%v want %v", c.req, dr.Verdict, c.verdict)
		}
		if dr.Problem != "orders" || dr.Property != c.req.Property {
			t.Fatalf("%+v: echo fields wrong: %+v", c.req, dr)
		}
		if dr.Stats.Counters["models_checked"] == 0 {
			t.Fatalf("%+v: stats missing solver counters", c.req)
		}
	}

	// The failing RCDP must carry its counterexample.
	_, dr := decide(t, ts.URL, "orders", DecideRequest{Property: "rcdp", Model: "strong"})
	if dr.Counterexample == "" {
		t.Fatal("rcdp strong = false must explain itself")
	}

	// Certain answers: empty list, not null.
	resp, dr := decide(t, ts.URL, "orders", DecideRequest{Property: "certain"})
	if resp.StatusCode != http.StatusOK || dr.CertainAnswers == nil || len(dr.CertainAnswers) != 0 {
		t.Fatalf("certain: status=%d answers=%#v", resp.StatusCode, dr.CertainAnswers)
	}
}

// 400s: malformed body, unknown property, unknown model, unknown
// fields; 404: missing problem.
func TestDecideBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putOrders(t, ts.URL, "orders")

	var dr DecideResponse
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/problems/orders/decide", []byte(`{nope`), &dr)
	if resp.StatusCode != http.StatusBadRequest || dr.Kind != KindBadRequest {
		t.Fatalf("malformed: status=%d %+v", resp.StatusCode, dr)
	}

	for _, body := range []string{
		`{"property": "frobnicate"}`,
		`{"property": "rcdp", "model": "quantum"}`,
		`{"property": "rcdp", "unknown_field": 1}`,
		`{"property": "rcdp", "query": "Q(i) := NoSuchRel(i)"}`,
	} {
		var dr DecideResponse
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/problems/orders/decide", []byte(body), &dr)
		if resp.StatusCode != http.StatusBadRequest || dr.Kind != KindBadRequest || dr.Error == "" {
			t.Fatalf("%s: status=%d kind=%q", body, resp.StatusCode, dr.Kind)
		}
	}

	resp, dr2 := decide(t, ts.URL, "ghost", DecideRequest{Property: "rcdp"})
	if resp.StatusCode != http.StatusNotFound || dr2.Kind != KindNotFound {
		t.Fatalf("missing problem: status=%d %+v", resp.StatusCode, dr2)
	}
}

// An exhausted enumeration budget answers 422 with the BudgetError
// detail, verdict null — the same contract as rcheck exit code 2.
func TestDecideBudget422(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putOrders(t, ts.URL, "orders")
	resp, dr := decide(t, ts.URL, "orders", DecideRequest{
		Property: "rcdp", Model: "strong",
		Budget: &BudgetRequest{MaxValuations: 1},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (error=%s)", resp.StatusCode, dr.Error)
	}
	if dr.Kind != KindBudget || dr.Verdict != nil {
		t.Fatalf("kind=%q verdict=%v", dr.Kind, dr.Verdict)
	}
	if dr.Budget == nil || dr.Budget.Cap != "MaxValuations" || dr.Budget.Limit != 1 {
		t.Fatalf("budget detail: %+v", dr.Budget)
	}
	// The budget override must not have touched the resident problem.
	resp, dr = decide(t, ts.URL, "orders", DecideRequest{Property: "rcdp", Model: "strong"})
	if resp.StatusCode != http.StatusOK || dr.Verdict == nil || *dr.Verdict {
		t.Fatalf("resident problem polluted: status=%d %+v", resp.StatusCode, dr)
	}
}

// An expired per-request deadline answers 408 with the DeadlineError
// detail. An injected 5ms delay on every query evaluation makes the
// 1ms deadline deterministic without a heavyweight instance.
func TestDecideDeadline408(t *testing.T) {
	plan := fault.NewPlan(fault.Rule{
		Site: fault.SiteEvalAnswers, Kind: fault.KindDelay, Delay: 5 * time.Millisecond, Every: 1,
	})
	_, ts := newTestServer(t, Config{FaultPlan: plan})
	putOrders(t, ts.URL, "orders")
	resp, dr := decide(t, ts.URL, "orders", DecideRequest{
		Property: "rcdp", Model: "strong", TimeoutMS: 1,
	})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status = %d (error=%s)", resp.StatusCode, dr.Error)
	}
	if dr.Kind != KindDeadline || dr.Verdict != nil {
		t.Fatalf("kind=%q verdict=%v", dr.Kind, dr.Verdict)
	}
	if dr.Deadline == nil || dr.Deadline.Op == "" || dr.Deadline.Elapsed == "" {
		t.Fatalf("deadline detail: %+v", dr.Deadline)
	}
}

// A full admission queue answers 429 with Retry-After and the typed
// overload body. Concurrency 1 + queue 0: the first decide (slowed by
// an injected delay) holds the only slot, everything else bounces.
func TestDecideOverload429(t *testing.T) {
	plan := fault.NewPlan(fault.Rule{
		Site: fault.SiteEvalAnswers, Kind: fault.KindDelay, Delay: 30 * time.Millisecond, Every: 1,
	})
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1, FaultPlan: plan})
	putOrders(t, ts.URL, "orders")

	first := make(chan DecideResponse, 1)
	go func() {
		_, dr := decide(t, ts.URL, "orders", DecideRequest{Property: "rcdp", Model: "strong"})
		first <- dr
	}()
	// Wait until the slow decide holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Admission().InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first decide never claimed a slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, dr := decide(t, ts.URL, "orders", DecideRequest{Property: "consistency"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (error=%s)", resp.StatusCode, dr.Error)
	}
	if dr.Kind != KindOverload || dr.RetryAfterMS == 0 {
		t.Fatalf("overload body: %+v", dr)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if got := s.Metrics().Get(obs.ServerOverloads); got == 0 {
		t.Fatal("overload counter not incremented")
	}

	if dr := <-first; dr.Verdict == nil || *dr.Verdict {
		t.Fatalf("slow decide corrupted by the rejected one: %+v", dr)
	}
}

// A query override decides on a fresh build and leaves the resident
// problem untouched. Q(i) := Order('zzz') can never produce answers —
// the CC pins Order inside the catalog — so it is strongly complete.
func TestDecideQueryOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putOrders(t, ts.URL, "orders")
	resp, dr := decide(t, ts.URL, "orders", DecideRequest{
		Property: "rcdp", Model: "strong", Query: "Q(i) := Order(i) & Order('zzz')",
	})
	if resp.StatusCode != http.StatusOK || dr.Verdict == nil {
		t.Fatalf("override: status=%d error=%s", resp.StatusCode, dr.Error)
	}
	if !*dr.Verdict {
		t.Fatalf("unsatisfiable-query RCDP should hold, got %v", *dr.Verdict)
	}
	resp, dr = decide(t, ts.URL, "orders", DecideRequest{Property: "rcdp", Model: "strong"})
	if resp.StatusCode != http.StatusOK || dr.Verdict == nil || *dr.Verdict {
		t.Fatalf("resident problem polluted: status=%d %+v", resp.StatusCode, dr)
	}
}

// Draining: /healthz flips to 503 so load balancers route away, while
// the API keeps answering in-flight work.
func TestHealthzDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var body map[string]any
	if resp := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	s.StartDrain()
	s.StartDrain() // idempotent
	var er ErrorResponse
	if resp := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &er); resp.StatusCode != http.StatusServiceUnavailable || er.Kind != KindDraining {
		t.Fatalf("draining healthz: status=%d %+v", resp.StatusCode, er)
	}
}

// The error DTOs must round-trip through JSON: what the handler
// encodes, a client decodes back field for field.
func TestErrorBodyRoundTrip(t *testing.T) {
	in := DecideResponse{
		Problem: "p", Property: "rcdp", Model: "strong",
		Error: "boom", Kind: KindDeadline,
		Deadline: &DeadlineInfo{Op: "rcdp_strong", Elapsed: "1ms", ModelsChecked: 7},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out DecideResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Deadline == nil || out.Deadline.ModelsChecked != 7 {
		t.Fatalf("round trip lost fields: %+v", out)
	}
	if out.Verdict != nil {
		t.Fatal("null verdict must stay null")
	}
	for _, req := range []DecideRequest{
		{Property: "rcdp", Model: "weak", TimeoutMS: 250},
		{Property: "minp", Budget: &BudgetRequest{MaxValuations: 9}},
	} {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		var back DecideRequest
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		raw2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("request round trip: %s != %s", raw2, raw)
		}
	}
}
