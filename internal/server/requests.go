// The recent-request ring behind GET /debug/requests: a bounded,
// concurrency-safe record of the last N decide requests — trace id,
// tenant, outcome, queue-wait/wall durations and the finished span
// tree — so a 429 or a slow decide is explicable minutes later
// without having run the request with tracing enabled.
package server

import (
	"net/http"
	"sync"
	"time"

	"relcomplete/internal/obs"
)

// DefaultRequestRing is the request-ring depth when Config leaves
// RequestRingSize zero.
const DefaultRequestRing = 128

// RequestRecord is one completed decide request as kept in the ring
// and served by /debug/requests.
type RequestRecord struct {
	Time         time.Time      `json:"time"`
	TraceID      string         `json:"trace_id,omitempty"`
	Problem      string         `json:"problem"`
	Property     string         `json:"property,omitempty"`
	Decider      string         `json:"decider,omitempty"`
	Status       int            `json:"status"`
	Kind         string         `json:"kind,omitempty"`
	Verdict      *bool          `json:"verdict,omitempty"`
	QueueWaitMS  float64        `json:"queue_wait_ms"`
	WallMS       float64        `json:"wall_ms"`
	Spans        []obs.SpanData `json:"spans,omitempty"`
	SpansDropped int64          `json:"spans_dropped,omitempty"`
}

// RequestRing retains the most recent capN request records. All
// methods are safe for concurrent use; a nil *RequestRing is inert.
type RequestRing struct {
	mu    sync.Mutex
	recs  []RequestRecord
	next  int
	total int64
	capN  int
}

// NewRequestRing builds a ring keeping capN records (capN <= 0 →
// DefaultRequestRing).
func NewRequestRing(capN int) *RequestRing {
	if capN <= 0 {
		capN = DefaultRequestRing
	}
	return &RequestRing{capN: capN}
}

// Add records one completed request, overwriting the oldest past the
// cap.
func (r *RequestRing) Add(rec RequestRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.recs) < r.capN {
		r.recs = append(r.recs, rec)
	} else {
		r.recs[r.next] = rec
	}
	r.next = (r.next + 1) % r.capN
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained records, most recent first.
func (r *RequestRing) Snapshot() []RequestRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RequestRecord, 0, len(r.recs))
	// Walk backwards from the slot before next, wrapping once.
	for i := 0; i < len(r.recs); i++ {
		idx := (r.next - 1 - i + len(r.recs)) % len(r.recs)
		out = append(out, r.recs[idx])
	}
	return out
}

// Len is the number of retained records; Total counts every record
// ever added.
func (r *RequestRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

func (r *RequestRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// DebugRequestsResponse is the GET /debug/requests body.
type DebugRequestsResponse struct {
	Total    int64           `json:"total"`
	Requests []RequestRecord `json:"requests"`
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DebugRequestsResponse{
		Total:    s.requests.Total(),
		Requests: s.requests.Snapshot(),
	})
}
