package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"relcomplete/internal/httpx"
	"relcomplete/internal/obs"
)

// End-to-end load test: the full rcserved stack — httpx listener,
// debug mux, service handlers, admission, registry, engine — under
// 8 concurrent clients × 200 decide requests each. Asserts zero wrong
// verdicts, zero goroutine leaks, a sane p99 decider latency read from
// the obs histogram, and a grammatically valid /metrics scrape, then
// drains cleanly.
func TestLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped in -short mode")
	}
	base := runtime.NumGoroutine()

	metrics := obs.NewMetrics()
	svc := New(Config{
		Workers:       2,
		MaxConcurrent: 4,
		MaxQueue:      4096, // deep enough that admission never rejects this run
		Metrics:       metrics,
	})
	mux := http.NewServeMux()
	mux.Handle("/", svc)
	httpx.RegisterDebug(mux, metrics)
	srv, err := httpx.Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	baseURL := "http://" + srv.Addr().String()

	client := &http.Client{}
	defer client.CloseIdleConnections()

	raw, err := os.ReadFile("../../examples/orders_rcdp.json")
	if err != nil {
		t.Fatal(err)
	}
	putReq, _ := http.NewRequest(http.MethodPut, baseURL+"/v1/problems/orders", bytes.NewReader(raw))
	putResp, err := client.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", putResp.StatusCode)
	}

	// Pre-burst goroutine level, read the way an operator would: from
	// the relcomplete_go_goroutines gauge on /metrics.
	gaugeBase, ok := scrapeGauge(t, client, baseURL, obs.MetricPrefix+"go_goroutines")
	if !ok {
		t.Fatal("/metrics exposes no goroutine gauge")
	}

	// The request mix and its fault-free oracle (verdict pointer nil
	// means the property answers via certain_answers instead).
	type step struct {
		req     DecideRequest
		verdict *bool
	}
	vf, vt := false, true
	mix := []step{
		{DecideRequest{Property: "rcdp", Model: "strong"}, &vf},
		{DecideRequest{Property: "rcdp", Model: "weak"}, &vf},
		{DecideRequest{Property: "consistency"}, &vt},
		{DecideRequest{Property: "certain"}, nil},
	}

	const clients = 8
	const perClient = 200
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				s := mix[(c+i)%len(mix)]
				body, _ := json.Marshal(s.req)
				resp, err := client.Post(
					baseURL+"/v1/problems/orders/decide", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- fmt.Errorf("client %d req %d: %w", c, i, err)
					return
				}
				var dr DecideResponse
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if decErr != nil {
					errCh <- fmt.Errorf("client %d req %d: decode: %w", c, i, decErr)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("client %d req %d (%s): status %d kind=%s error=%s",
						c, i, s.req.Property, resp.StatusCode, dr.Kind, dr.Error)
					return
				}
				if s.verdict != nil {
					if dr.Verdict == nil || *dr.Verdict != *s.verdict {
						errCh <- fmt.Errorf("client %d req %d (%s/%s): WRONG VERDICT %v, want %v",
							c, i, s.req.Property, s.req.Model, dr.Verdict, *s.verdict)
						return
					}
				} else if dr.CertainAnswers == nil || len(dr.CertainAnswers) != 0 {
					errCh <- fmt.Errorf("client %d req %d: wrong certain answers %#v",
						c, i, dr.CertainAnswers)
					return
				}
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every decide ran exactly one decider entry point; p99 comes from
	// the obs histogram, the same number /metrics exposes. The bound is
	// deliberately loose (1s) — the orders instance decides in well
	// under a millisecond; the assertion catches pathologies (lock
	// convoys, queue collapse), not micro-regressions.
	snap := metrics.Snapshot()
	var wall *obs.HistogramStat
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "decider_wall_seconds" {
			wall = &snap.Histograms[i]
		}
	}
	if wall == nil {
		t.Fatal("decider_wall_seconds histogram missing from snapshot")
	}
	if wall.Count < clients*perClient {
		t.Fatalf("decider calls = %d, want >= %d", wall.Count, clients*perClient)
	}
	p99, ok := wall.Quantile(0.99)
	if !ok {
		t.Fatal("p99 unavailable")
	}
	if p99 > 1.0 {
		t.Fatalf("p99 decider latency = %v s, want <= 1s", p99)
	}
	t.Logf("load: %d decides, p99 <= %gs, queued-peak=%d",
		wall.Count, p99, svc.Admission().Queued())

	// The live /metrics scrape must stay within the exposition grammar
	// and carry the server counters this run incremented.
	mresp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err := obs.ValidatePrometheusText(mbody); err != nil {
		t.Fatalf("/metrics under load: %v\n%s", err, mbody)
	}
	if !bytes.Contains(mbody, []byte(obs.MetricPrefix+"server_decides_total")) {
		t.Fatal("/metrics missing server_decides_total")
	}
	if got := metrics.Get(obs.ServerDecides); got != clients*perClient {
		t.Fatalf("server_decides = %d, want %d", got, clients*perClient)
	}
	if got := metrics.Get(obs.ServerOverloads); got != 0 {
		t.Fatalf("load run must not shed: overloads = %d", got)
	}

	// Leak-freedom from the outside: once the burst drains and the
	// client keep-alives are gone, the goroutine gauge on /metrics must
	// settle back to its pre-burst level plus scheduler slack (the
	// scrape's own connection and a GC worker or two).
	client.CloseIdleConnections()
	settleDeadline := time.Now().Add(3 * time.Second)
	for {
		g, ok := scrapeGauge(t, client, baseURL, obs.MetricPrefix+"go_goroutines")
		if ok && g <= gaugeBase+8 {
			break
		}
		if time.Now().After(settleDeadline) {
			t.Fatalf("goroutine gauge stuck at %v after burst, baseline %v", g, gaugeBase)
		}
		time.Sleep(10 * time.Millisecond)
		client.CloseIdleConnections() // each scrape opens a fresh conn
	}

	// Clean drain — every server conn is genuinely idle now — then no
	// goroutine may outlive the server (in-process backstop; /metrics is
	// gone once the listener closes).
	if err := srv.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	assertServerNoGoroutineLeak(t, base)
}

// scrapeGauge fetches /metrics and returns the value of the named
// unlabelled sample.
func scrapeGauge(t *testing.T, client *http.Client, baseURL, name string) (float64, bool) {
	t.Helper()
	resp, err := client.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(body), "\n") {
		val, found := strings.CutPrefix(line, name+" ")
		if !found {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			t.Fatalf("gauge %s has unparsable value %q", name, val)
		}
		return f, true
	}
	return 0, false
}

// Queue-wait visibility: a load spike beyond the concurrency cap must
// show up in queue_wait_seconds, the operator's signal to raise
// MaxConcurrent before raising MaxQueue.
func TestLoadQueueWaitObserved(t *testing.T) {
	metrics := obs.NewMetrics()
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 64, Metrics: metrics})
	putOrders(t, ts.URL, "orders")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			decide(t, ts.URL, "orders", DecideRequest{Property: "consistency"})
		}()
	}
	wg.Wait()
	if metrics.HistoCount(obs.QueueWaitNs) < 8 {
		t.Fatalf("queue wait observations = %d, want >= 8", metrics.HistoCount(obs.QueueWaitNs))
	}
}
