package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// findHisto pulls one histogram out of a snapshot by name.
func findHisto(t *testing.T, st Stats, name string) HistogramStat {
	t.Helper()
	for _, h := range st.Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %s not in snapshot: %+v", name, st.Histograms)
	return HistogramStat{}
}

func TestHistogramNilSafe(t *testing.T) {
	var m *Metrics
	m.Observe(DeciderWallNs, 42)
	m.ObserveDuration(PlanExecNs, time.Second)
	m.Merge(NewMetrics())
	NewMetrics().Merge(nil)
	if m.HistoCount(DeciderWallNs) != 0 {
		t.Fatal("nil metrics should count nothing")
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	m := NewMetrics()
	// Bounds of models_admitted_per_call start 0,1,2,4: an observation
	// lands in the first bucket whose bound is >= the value.
	m.Observe(ModelsAdmittedPerCall, 0)     // le=0
	m.Observe(ModelsAdmittedPerCall, 1)     // le=1
	m.Observe(ModelsAdmittedPerCall, 3)     // le=4
	m.Observe(ModelsAdmittedPerCall, 1<<40) // +Inf

	st, ok := m.histoStat(ModelsAdmittedPerCall)
	if !ok || st.Count != 4 {
		t.Fatalf("count = %d ok=%v, want 4", st.Count, ok)
	}
	want := map[string]int64{"0": 1, "1": 2, "2": 2, "4": 3, "+Inf": 4}
	for _, b := range st.Buckets {
		if c, tracked := want[b.LE]; tracked && b.Count != c {
			t.Errorf("bucket le=%s count = %d, want %d", b.LE, b.Count, c)
		}
	}
	if last := st.Buckets[len(st.Buckets)-1]; last.LE != "+Inf" || last.Count != st.Count {
		t.Fatalf("final bucket = %+v, want +Inf count %d", last, st.Count)
	}
	// Cumulative counts never decrease.
	prev := int64(0)
	for _, b := range st.Buckets {
		if b.Count < prev {
			t.Fatalf("bucket counts not cumulative: %+v", st.Buckets)
		}
		prev = b.Count
	}
}

func TestHistogramDurationScaling(t *testing.T) {
	m := NewMetrics()
	m.ObserveDuration(DeciderWallNs, 1500*time.Millisecond)
	st, _ := m.histoStat(DeciderWallNs)
	if st.Sum != 1.5 {
		t.Fatalf("sum = %v s, want 1.5", st.Sum)
	}
	// 1.5e9 ns sits above the 1e9 bound, below 1e10 (exposed as "10").
	for _, b := range st.Buckets {
		switch b.LE {
		case "1":
			if b.Count != 0 {
				t.Fatalf("le=1s bucket = %d, want 0", b.Count)
			}
		case "10":
			if b.Count != 1 {
				t.Fatalf("le=10s bucket = %d, want 1", b.Count)
			}
		}
	}
}

func TestHistogramSnapshotAndJSON(t *testing.T) {
	m := NewMetrics()
	if st := m.Snapshot(); len(st.Histograms) != 0 {
		t.Fatalf("empty metrics should omit histograms, got %+v", st.Histograms)
	}
	m.Observe(SearchItemsPerHit, 7)
	st := m.Snapshot()
	h := findHisto(t, st, "search_items_per_hit")
	if h.Count != 1 {
		t.Fatalf("count = %d", h.Count)
	}

	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if findHisto(t, back, "search_items_per_hit").Count != 1 {
		t.Fatal("histogram lost in JSON round trip")
	}
}

func TestMetricsMerge(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Add(ModelsChecked, 3)
	b.Add(ModelsChecked, 4)
	a.Observe(IndexProbeRows, 2)
	b.Observe(IndexProbeRows, 2)
	b.Observe(IndexProbeRows, 100)
	done := b.StartPhase("merge_phase")
	done()

	a.Merge(b)
	if got := a.Get(ModelsChecked); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := a.HistoCount(IndexProbeRows); got != 3 {
		t.Fatalf("merged histogram count = %d, want 3", got)
	}
	st, _ := a.histoStat(IndexProbeRows)
	if st.Sum != 104 {
		t.Fatalf("merged sum = %v, want 104", st.Sum)
	}
	phases := a.Snapshot().Phases
	if len(phases) != 1 || phases[0].Name != "merge_phase" || phases[0].Count != 1 {
		t.Fatalf("merged phases = %+v", phases)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	const goroutines, each = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Observe(PlanExecNs, int64(g*i))
			}
		}(g)
	}
	wg.Wait()
	if got := m.HistoCount(PlanExecNs); got != goroutines*each {
		t.Fatalf("count = %d, want %d", got, goroutines*each)
	}
}

// TestHistoInventoryExhaustive iterates every histogram constant:
// a histogram added without a name, help text, bounds, or with too
// many buckets for the flat array fails here (and so in CI).
func TestHistoInventoryExhaustive(t *testing.T) {
	seen := map[string]bool{}
	for h := Histo(0); h < numHistos; h++ {
		d := &histoDefs[h]
		if d.name == "" || d.help == "" {
			t.Errorf("histogram %d lacks a name or help text", h)
			continue
		}
		if seen[d.name] {
			t.Errorf("duplicate histogram name %q", d.name)
		}
		seen[d.name] = true
		if d.div == 0 {
			t.Errorf("%s: zero divisor", d.name)
		}
		if len(d.bounds)+1 > maxHistoBuckets {
			t.Errorf("%s: %d bounds exceed maxHistoBuckets", d.name, len(d.bounds))
		}
		for i := 1; i < len(d.bounds); i++ {
			if d.bounds[i] <= d.bounds[i-1] {
				t.Errorf("%s: bounds not strictly increasing at %d", d.name, i)
			}
		}
		if h.String() != d.name {
			t.Errorf("String() = %q, want %q", h.String(), d.name)
		}
		back, ok := HistoByName(d.name)
		if !ok || back != h {
			t.Errorf("HistoByName(%q) = %v,%v, want %v", d.name, back, ok, h)
		}
	}
	if Histo(-1).String() != "unknown" || numHistos.String() != "unknown" {
		t.Error("out-of-range histos should stringify as unknown")
	}
	if _, ok := HistoByName("nope"); ok {
		t.Error("HistoByName should reject unknown names")
	}
}
