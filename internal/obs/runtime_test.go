package obs

import (
	"math"
	"testing"

	"runtime/metrics"
)

// histogramSum must handle the runtime's unbounded edge buckets: -Inf
// lower bounds fall back to the finite upper boundary, +Inf upper
// bounds to the finite lower one, and empty buckets cost nothing.
func TestHistogramSum(t *testing.T) {
	if got := histogramSum(nil); got != 0 {
		t.Errorf("nil histogram sum = %v", got)
	}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{2, 0, 3, 1},
		Buckets: []float64{math.Inf(-1), 1, 2, 4, math.Inf(1)},
	}
	// 2 pauses in (-Inf,1] → 2×1; 0 in (1,2]; 3 in (2,4] → 3×3;
	// 1 in (4,+Inf) → 1×4.
	want := 2.0*1 + 3*3 + 1*4
	if got := histogramSum(h); got != want {
		t.Errorf("histogramSum = %v, want %v", got, want)
	}
}
