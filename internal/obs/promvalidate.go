package obs

// This file is a small in-repo validator for the Prometheus text
// exposition format (0.0.4): enough grammar to catch a malformed
// /metrics document in CI without importing a client library. It
// checks line syntax (HELP/TYPE comments, sample lines with optional
// labels and timestamps), metric and label name grammar, duplicate
// label detection, float parsability, family grouping (one TYPE per
// family, declared before its samples, samples not interleaved across
// families), and the histogram invariants (cumulative non-decreasing
// buckets, a +Inf bucket, _count equal to the +Inf bucket) — tracked
// per label-set, since a labelled histogram family exposes one
// independent bucket sequence per label combination.
//
// ValidateOpenMetricsText runs the same validator in OpenMetrics 1.0
// mode, which additionally requires the `# EOF` terminator (and
// nothing after it), requires counter samples to carry the _total (or
// _created) suffix on a bare-named family, accepts float timestamps,
// and accepts-and-checks `# {labels} value [ts]` exemplars — only on
// histogram _bucket and counter _total samples, with a valid label
// set within the 128-rune budget.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ValidatePrometheusText checks data against the Prometheus text
// exposition grammar and the histogram consistency rules. It returns
// nil when the document would be accepted by a Prometheus scraper.
func ValidatePrometheusText(data []byte) error {
	return validateExposition(data, false)
}

// ValidateOpenMetricsText checks data against the OpenMetrics 1.0 text
// exposition grammar: the shared Prometheus rules plus the OpenMetrics
// deltas documented on the package comment above (EOF terminator,
// counter sample suffixes, exemplar syntax).
func ValidateOpenMetricsText(data []byte) error {
	return validateExposition(data, true)
}

func validateExposition(data []byte, om bool) error {
	v := &promValidator{
		om:       om,
		types:    map[string]string{},
		finished: map[string]bool{},
		hists:    map[string]*histCheck{},
	}
	for i, line := range strings.Split(string(data), "\n") {
		if err := v.line(line); err != nil {
			return fmt.Errorf("line %d: %w (%q)", i+1, err, line)
		}
	}
	return v.finish()
}

// histCheck accumulates one histogram family's samples for the final
// consistency check, keyed by label-set (the labels minus le): each
// label combination of a labelled histogram is its own bucket
// sequence with its own +Inf and _count.
type histCheck struct {
	sets map[string]*histSetCheck
}

func (hc *histCheck) set(key string) *histSetCheck {
	if hc.sets == nil {
		hc.sets = map[string]*histSetCheck{}
	}
	s := hc.sets[key]
	if s == nil {
		s = &histSetCheck{}
		hc.sets[key] = s
	}
	return s
}

type histSetCheck struct {
	prev     float64 // last cumulative bucket value
	prevLE   float64 // last bucket bound
	hasInf   bool
	infCount float64
	count    float64
	hasCount bool
	buckets  int
}

type promValidator struct {
	om       bool              // OpenMetrics mode
	sawEOF   bool              // the # EOF terminator has been seen
	types    map[string]string // family → declared TYPE
	finished map[string]bool   // families whose sample block has ended
	current  string            // family currently emitting samples
	hists    map[string]*histCheck
}

func (v *promValidator) line(line string) error {
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if v.om && v.sawEOF {
		return fmt.Errorf("content after # EOF")
	}
	if v.om && strings.TrimSpace(line) == "# EOF" {
		v.sawEOF = true
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return v.comment(line)
	}
	return v.sample(line)
}

func (v *promValidator) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("HELP needs a valid metric name")
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE needs a metric name and a type")
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if _, dup := v.types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if v.finished[name] || v.current == name {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		v.types[name] = typ
		if typ == "histogram" {
			v.hists[name] = &histCheck{}
		}
	}
	return nil
}

func (v *promValidator) sample(line string) error {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	rest = strings.TrimSpace(rest)
	exemplar := ""
	hasExemplar := false
	if v.om {
		// An OpenMetrics sample may trail ` # {labels} value [ts]`.
		// The value/timestamp part cannot contain '#', so the first
		// " # " begins the exemplar.
		if i := strings.Index(rest, " # "); i >= 0 {
			exemplar, hasExemplar = strings.TrimSpace(rest[i+3:]), true
			rest = strings.TrimSpace(rest[:i])
		}
	}
	valStr, _, hasTS := strings.Cut(rest, " ")
	val, err := parsePromFloat(valStr)
	if err != nil {
		return fmt.Errorf("bad sample value %q", valStr)
	}
	if hasTS {
		ts := strings.TrimSpace(rest[len(valStr):])
		if v.om {
			// OpenMetrics timestamps are seconds, possibly fractional.
			if _, err := strconv.ParseFloat(ts, 64); err != nil {
				return fmt.Errorf("bad timestamp %q", ts)
			}
		} else if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", ts)
		}
	}

	fam := v.familyOf(name)
	if v.om {
		if t := v.types[fam]; t == "counter" && name != fam+"_total" && name != fam+"_created" {
			return fmt.Errorf("counter %s sample %s lacks the _total suffix", fam, name)
		}
	}
	if hasExemplar {
		if err := v.checkExemplar(fam, name, exemplar); err != nil {
			return err
		}
	}
	if v.finished[fam] {
		return fmt.Errorf("samples of family %s are not contiguous", fam)
	}
	if v.current != fam {
		if v.current != "" {
			v.finished[v.current] = true
		}
		v.current = fam
	}
	if hc := v.hists[fam]; hc != nil {
		return v.histSample(fam, hc, name, labels, val)
	}
	return nil
}

// checkExemplar validates one ` # {labels} value [ts]` exemplar
// suffix: allowed only on histogram _bucket and counter _total
// samples, with a well-formed label set within OpenMetrics' 128-rune
// budget and a parseable value (and optional float timestamp).
func (v *promValidator) checkExemplar(fam, name, ex string) error {
	typ := v.types[fam]
	allowed := (typ == "histogram" && name == fam+"_bucket") ||
		(typ == "counter" && name == fam+"_total")
	if !allowed {
		return fmt.Errorf("exemplar on %s (only histogram buckets and counter totals may carry one)", name)
	}
	if ex == "" || ex[0] != '{' {
		return fmt.Errorf("exemplar must start with a label set")
	}
	labels, n, err := scanLabels(ex)
	if err != nil {
		return fmt.Errorf("exemplar labels: %w", err)
	}
	var runes int
	for k, val := range labels {
		runes += len([]rune(k)) + len([]rune(val))
	}
	if runes > 128 {
		return fmt.Errorf("exemplar label set exceeds 128 runes")
	}
	fields := strings.Fields(ex[n:])
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("exemplar needs a value and at most a timestamp")
	}
	if _, err := parsePromFloat(fields[0]); err != nil {
		return fmt.Errorf("bad exemplar value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("bad exemplar timestamp %q", fields[1])
		}
	}
	return nil
}

func (v *promValidator) histSample(fam string, hc *histCheck, name string, labels map[string]string, val float64) error {
	switch name {
	case fam + "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("histogram bucket without le label")
		}
		bound, err := parsePromFloat(le)
		if err != nil {
			return fmt.Errorf("bad le bound %q", le)
		}
		sc := hc.set(labelSetKey(labels, "le"))
		if sc.buckets > 0 && bound <= sc.prevLE {
			return fmt.Errorf("bucket bounds not increasing (%q after %v)", le, sc.prevLE)
		}
		if val < sc.prev {
			return fmt.Errorf("bucket counts not cumulative (%v after %v)", val, sc.prev)
		}
		if le == "+Inf" {
			sc.hasInf = true
			sc.infCount = val
		}
		sc.prev, sc.prevLE = val, bound
		sc.buckets++
	case fam + "_sum":
		// Any float is fine.
	case fam + "_count":
		sc := hc.set(labelSetKey(labels, "le"))
		sc.count, sc.hasCount = val, true
	case fam:
		return fmt.Errorf("histogram family %s exposes a bare sample", fam)
	}
	return nil
}

func (v *promValidator) finish() error {
	if v.om && !v.sawEOF {
		return fmt.Errorf("openmetrics document missing the # EOF terminator")
	}
	for fam, hc := range v.hists {
		for key, sc := range hc.sets {
			if sc.buckets == 0 && !sc.hasCount {
				continue // declared but never sampled
			}
			at := ""
			if key != "" {
				at = fmt.Sprintf(" {%s}", key)
			}
			if !sc.hasInf {
				return fmt.Errorf("histogram %s%s has no +Inf bucket", fam, at)
			}
			if sc.hasCount && sc.count != sc.infCount {
				return fmt.Errorf("histogram %s%s: count %v != +Inf bucket %v", fam, at, sc.count, sc.infCount)
			}
		}
	}
	return nil
}

// labelSetKey canonicalises a sample's labels (minus the excluded
// name, the histogram le bound) into a deterministic key.
func labelSetKey(labels map[string]string, exclude string) string {
	if len(labels) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(labels))
	for k, val := range labels {
		if k == exclude {
			continue
		}
		pairs = append(pairs, k+"="+val)
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// familyOf maps a sample name to its metric family: histogram and
// summary component suffixes fold into the declared family name, and
// in OpenMetrics mode the counter sample suffixes fold too (the
// family is declared bare, the samples carry _total).
func (v *promValidator) familyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t := v.types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	if v.om {
		for _, suffix := range []string{"_total", "_created"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && v.types[base] == "counter" {
				return base
			}
		}
	}
	return name
}

// splitSample parses `name{labels} value [ts]` into its parts; labels
// is nil when absent.
func splitSample(line string) (name string, labels map[string]string, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("sample has no value")
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] == ' ' {
		return name, nil, line[i+1:], nil
	}
	labels, n, err := scanLabels(line[i:])
	if err != nil {
		return "", nil, "", err
	}
	pos := i + n
	if pos >= len(line) || line[pos] != ' ' {
		return "", nil, "", fmt.Errorf("missing value after labels")
	}
	return name, labels, line[pos+1:], nil
}

// scanLabels parses a {name="value",...} label set starting at
// s[0] == '{'; n is the number of bytes consumed including braces.
// Shared by sample parsing and exemplar validation.
func scanLabels(s string) (labels map[string]string, n int, err error) {
	labels = map[string]string{}
	pos := 1
	for {
		for pos < len(s) && (s[pos] == ' ' || s[pos] == ',') {
			pos++
		}
		if pos >= len(s) {
			return nil, 0, fmt.Errorf("unterminated label set")
		}
		if s[pos] == '}' {
			pos++
			break
		}
		eq := strings.Index(s[pos:], "=")
		if eq < 0 {
			return nil, 0, fmt.Errorf("label without =")
		}
		lname := strings.TrimSpace(s[pos : pos+eq])
		if !validLabelName(lname) {
			return nil, 0, fmt.Errorf("invalid label name %q", lname)
		}
		pos += eq + 1
		if pos >= len(s) || s[pos] != '"' {
			return nil, 0, fmt.Errorf("label value not quoted")
		}
		val, m, err := scanQuoted(s[pos:])
		if err != nil {
			return nil, 0, err
		}
		if _, dup := labels[lname]; dup {
			return nil, 0, fmt.Errorf("duplicate label %q", lname)
		}
		labels[lname] = val
		pos += m
	}
	return labels, pos, nil
}

// scanQuoted reads a double-quoted, backslash-escaped string starting
// at s[0] == '"'; n is the number of bytes consumed including quotes.
func scanQuoted(s string) (val string, n int, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// parsePromFloat accepts the exposition format's float syntax,
// including the +Inf/-Inf/NaN spellings.
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return float64(1 << 62), nil // only compared for order; magnitude is moot
	case "-Inf":
		return -float64(1 << 62), nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s == "__name__" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
