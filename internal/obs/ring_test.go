package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func ev(kind string) Event { return Event{Kind: kind} }

func TestRingSinkOverwritesOldest(t *testing.T) {
	r := NewRingSink(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		r.Emit(ev(k))
	}
	var kinds []string
	for _, e := range r.Events() {
		kinds = append(kinds, e.Kind)
	}
	if got := strings.Join(kinds, ""); got != "cdef" {
		t.Fatalf("retained = %q, want oldest-first cdef", got)
	}
	if r.Len() != 4 || r.Total() != 6 || r.Dropped() != 2 {
		t.Fatalf("len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
}

func TestRingSinkDefaultSize(t *testing.T) {
	if got := NewRingSink(0).Cap(); got != DefaultRingSize {
		t.Fatalf("default cap = %d, want %d", got, DefaultRingSize)
	}
}

func TestRingSinkConcurrent(t *testing.T) {
	r := NewRingSink(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Emit(ev("x"))
			}
		}()
	}
	wg.Wait()
	if r.Total() != 1600 || r.Len() != 16 {
		t.Fatalf("total=%d len=%d", r.Total(), r.Len())
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("empty tee should be nil")
	}
	r := NewRingSink(4)
	if got := Tee(nil, r); got != Sink(r) {
		t.Fatal("single-sink tee should return the sink itself")
	}
	c := &CollectSink{}
	Tee(r, c).Emit(ev("both"))
	if r.Len() != 1 || len(c.Kinds()) != 1 {
		t.Fatal("tee did not fan out")
	}
}

func TestFlightTracerVerbosity(t *testing.T) {
	if NewFlightTracer(nil) != nil || NewTracer(nil) != nil {
		t.Fatal("nil sink should yield a nil tracer")
	}
	ring := NewRingSink(8)
	ft := NewFlightTracer(ring)
	if !ft.Enabled() || ft.Verbose() {
		t.Fatal("flight tracer must be enabled but not verbose")
	}
	vt := NewTracer(ring)
	if !vt.Enabled() || !vt.Verbose() {
		t.Fatal("NewTracer must be verbose")
	}
	var nilT *Tracer
	if nilT.Enabled() || nilT.Verbose() {
		t.Fatal("nil tracer must report disabled")
	}
	ft.Emit("model", F("n", 1))
	if ring.Len() != 1 {
		t.Fatal("flight tracer did not record")
	}
}

func TestCollectSinkCap(t *testing.T) {
	s := &CollectSink{Cap: 2}
	for i := 0; i < 5; i++ {
		s.Emit(ev("e"))
	}
	if len(s.Events) != 2 || s.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d, want 2/3", len(s.Events), s.Dropped())
	}

	// The zero value applies the documented default cap.
	d := &CollectSink{}
	d.Emit(ev("one"))
	if d.Dropped() != 0 || len(d.Events) != 1 {
		t.Fatal("default-cap sink dropped too early")
	}
	d.Events = make([]Event, DefaultCollectCap)
	d.Emit(ev("overflow"))
	if d.Dropped() != 1 {
		t.Fatalf("dropped = %d at the default cap, want 1", d.Dropped())
	}
}

func TestWriteSlowOpDisabled(t *testing.T) {
	var b strings.Builder
	WriteSlowOp(&b, "rcdp_strong", "", 2*time.Second, time.Second, nil, nil)
	out := b.String()
	for _, want := range []string{
		"=== SLOW OP op=rcdp_strong elapsed=2s threshold=1s trace_id=- ===",
		"flight recorder: disabled",
		"histograms: disabled",
		"=== END SLOW OP op=rcdp_strong ===",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
