package obs

// Histogram exemplars tie the aggregate view back to individual
// requests: each histogram bucket can remember the most recent traced
// observation that landed in it, so a p99 spike in
// relcomplete_decider_wall_seconds carries the trace id of a request
// that actually sat in the tail bucket. Exemplars are recorded only
// when a trace id is present — untraced observations go through the
// plain atomic Observe path and pay nothing — and are exposed only by
// the OpenMetrics exposition (openmetrics.go); the Prometheus 0.0.4
// text format has no exemplar syntax.

import (
	"sync/atomic"
	"time"
)

// Exemplar is one traced observation attached to a histogram bucket:
// the trace id of the request that produced it, the observed value in
// the histogram's exposed unit (seconds for duration histograms), and
// when it was recorded. Stored per bucket behind an atomic pointer;
// each new traced observation in a bucket replaces the previous
// exemplar, so a bucket always carries its most recent traced sample.
type Exemplar struct {
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	Time    time.Time `json:"time"`
}

// bucket returns the index of the bucket value v falls into: the first
// bound ≥ v, or the implicit +Inf bucket past the last bound.
func (d *histoDef) bucket(v int64) int {
	i := 0
	for i < len(d.bounds) && v > d.bounds[i] {
		i++
	}
	return i
}

// observe records v into hg under def d, attaching traceID as the
// bucket's exemplar when non-empty. Shared by Metrics.Observe(Exemplar)
// and HistogramVec.Observe(Exemplar).
func (hg *histo) observe(d *histoDef, v int64, traceID string) {
	i := d.bucket(v)
	hg.counts[i].Add(1)
	hg.sum.Add(v)
	if traceID != "" {
		hg.exemplars[i].Store(&Exemplar{
			TraceID: traceID,
			Value:   float64(v) / d.div,
			Time:    time.Now(),
		})
	}
}

// ObserveExemplar is Observe with trace attribution: value v is
// recorded into histogram h and, when traceID is non-empty, the bucket
// it lands in remembers {traceID, v, now} as its exemplar. With an
// empty traceID it is exactly Observe. No-op on a nil receiver.
func (m *Metrics) ObserveExemplar(h Histo, v int64, traceID string) {
	if m == nil {
		return
	}
	m.histos[h].observe(&histoDefs[h], v, traceID)
}

// ObserveExemplar is HistogramVec.Observe with trace attribution; see
// Metrics.ObserveExemplar. No-op on a nil receiver.
func (v *HistogramVec) ObserveExemplar(value int64, traceID string, labelValues ...string) {
	if v == nil {
		return
	}
	v.seriesFor(labelValues).h.observe(v.def, value, traceID)
}

// BucketExemplar returns histogram h's exemplar for the bucket value v
// would fall into, ok reporting whether one has been recorded. Nil
// receivers and exemplar-free buckets return ok=false.
func (m *Metrics) BucketExemplar(h Histo, v int64) (Exemplar, bool) {
	if m == nil {
		return Exemplar{}, false
	}
	return loadExemplar(&m.histos[h].exemplars[histoDefs[h].bucket(v)])
}

func loadExemplar(p *atomic.Pointer[Exemplar]) (Exemplar, bool) {
	if ex := p.Load(); ex != nil {
		return *ex, true
	}
	return Exemplar{}, false
}
