package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// The slow-op dump is an operator-facing format that gets grepped out
// of service logs, so its exact rendering is pinned by a golden file.
func TestWriteSlowOpGolden(t *testing.T) {
	ring := NewRingSink(3)
	// One more event than capacity, so the dump shows an overwrite.
	ring.Emit(Event{Time: 1200 * time.Microsecond, Kind: "model", Fields: []Field{F("idx", 0)}})
	ring.Emit(Event{Time: 2500 * time.Microsecond, Depth: 1, Kind: "model_pruned", Fields: []Field{F("cc", "onlyStocked")}})
	ring.Emit(Event{Time: 4000 * time.Microsecond, Kind: "verdict", Fields: []Field{F("holds", false)}})
	ring.Emit(Event{Time: 5250 * time.Microsecond, Kind: "counterexample", Fields: []Field{F("tuple", "Order(a1, 23)")}})

	m := NewMetrics()
	m.ObserveDuration(DeciderWallNs, 250*time.Millisecond)
	m.ObserveDuration(DeciderWallNs, 2*time.Second)
	m.Observe(ModelsAdmittedPerCall, 3)

	var b strings.Builder
	WriteSlowOp(&b, "rcdp_strong", "4bf92f3577b34da6a3ce929d0e0e4736", 2*time.Second, 100*time.Millisecond, ring, m)
	got := b.String()

	path := filepath.Join("testdata", "slowop.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("slow-op dump drifted from golden (rerun with -update):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// The trace id in the header is what lets an operator jump from a
// slow-op dump to the access/decision log lines of the same request:
// the exact id must round-trip, and an untraced call must still render
// the field (as "-") so greps for "trace_id=" always hit.
func TestWriteSlowOpTraceID(t *testing.T) {
	const id = "4bf92f3577b34da6a3ce929d0e0e4736"
	var b strings.Builder
	WriteSlowOp(&b, "rcqp", id, time.Second, time.Millisecond, nil, nil)
	if !strings.Contains(b.String(), " trace_id="+id+" ===") {
		t.Errorf("trace id did not round-trip:\n%s", b.String())
	}
	b.Reset()
	WriteSlowOp(&b, "rcqp", "", time.Second, time.Millisecond, nil, nil)
	if !strings.Contains(b.String(), " trace_id=- ===") {
		t.Errorf("untraced dump lost the trace_id field:\n%s", b.String())
	}
}

// A dump over an empty ring (enabled but nothing recorded yet) must
// render a zero-event flight-recorder section, not panic or pretend
// the recorder is disabled.
func TestWriteSlowOpEmptyRing(t *testing.T) {
	var b strings.Builder
	WriteSlowOp(&b, "rcdp_weak", "", time.Second, time.Millisecond, NewRingSink(4), NewMetrics())
	out := b.String()
	if !strings.Contains(out, "flight recorder: 0 event(s) retained, 0 overwritten") {
		t.Errorf("empty ring not rendered:\n%s", out)
	}
	if !strings.Contains(out, "histograms: 0 with observations") {
		t.Errorf("empty metrics not rendered:\n%s", out)
	}
	if strings.Contains(out, "disabled") {
		t.Errorf("enabled-but-empty instruments rendered as disabled:\n%s", out)
	}
}

// Concurrent dumps into one shared sink (the rcserved stderr case:
// several decide calls crossing the threshold at once) must not race
// on the ring or the metrics. Interleaving between writers is
// acceptable; data races are not (this test runs under -race in CI).
func TestWriteSlowOpConcurrent(t *testing.T) {
	ring := NewRingSink(8)
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				ring.Emit(Event{Kind: "model", Fields: []Field{F("idx", j)}})
				m.ObserveDuration(DeciderWallNs, time.Millisecond)
				var b strings.Builder
				WriteSlowOp(&b, "rcdp_strong", "", time.Second, time.Millisecond, ring, m)
				if !strings.HasPrefix(b.String(), "=== SLOW OP op=rcdp_strong ") {
					t.Errorf("writer %d: malformed dump header", i)
				}
			}
		}(i)
	}
	wg.Wait()
}
