package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// The slow-op dump is an operator-facing format that gets grepped out
// of service logs, so its exact rendering is pinned by a golden file.
func TestWriteSlowOpGolden(t *testing.T) {
	ring := NewRingSink(3)
	// One more event than capacity, so the dump shows an overwrite.
	ring.Emit(Event{Time: 1200 * time.Microsecond, Kind: "model", Fields: []Field{F("idx", 0)}})
	ring.Emit(Event{Time: 2500 * time.Microsecond, Depth: 1, Kind: "model_pruned", Fields: []Field{F("cc", "onlyStocked")}})
	ring.Emit(Event{Time: 4000 * time.Microsecond, Kind: "verdict", Fields: []Field{F("holds", false)}})
	ring.Emit(Event{Time: 5250 * time.Microsecond, Kind: "counterexample", Fields: []Field{F("tuple", "Order(a1, 23)")}})

	m := NewMetrics()
	m.ObserveDuration(DeciderWallNs, 250*time.Millisecond)
	m.ObserveDuration(DeciderWallNs, 2*time.Second)
	m.Observe(ModelsAdmittedPerCall, 3)

	var b strings.Builder
	WriteSlowOp(&b, "rcdp_strong", 2*time.Second, 100*time.Millisecond, ring, m)
	got := b.String()

	path := filepath.Join("testdata", "slowop.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("slow-op dump drifted from golden (rerun with -update):\ngot:\n%s\nwant:\n%s", got, want)
	}
}
