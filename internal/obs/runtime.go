package obs

// Runtime gauges for the exposition: goroutine count, live heap bytes
// and total GC pause time, read from runtime/metrics at scrape time.
// They let a load test assert leak-freedom from /metrics ("goroutines
// back to baseline after the burst") instead of poking runtime
// internals from inside the process, and they give an operator the
// three "is the process itself healthy?" numbers next to the solver
// counters.

import (
	"fmt"
	"math"
	"runtime/metrics"
)

// The runtime/metrics sample names the exposition reads. Kinds as of
// go1.22: goroutines and heap bytes are KindUint64; the GC pause total
// is a KindFloat64Histogram, reduced below.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
)

// runtimeGauge is one exposed gauge: name suffix (MetricPrefix is
// prepended), help text, and the reducer from its sample.
type runtimeGauge struct {
	name   string
	help   string
	render func(metrics.Sample) (string, bool)
}

var runtimeGauges = []runtimeGauge{
	{
		name: "go_goroutines",
		help: "current number of live goroutines",
		render: func(s metrics.Sample) (string, bool) {
			if s.Value.Kind() != metrics.KindUint64 {
				return "", false
			}
			return fmt.Sprintf("%d", s.Value.Uint64()), true
		},
	},
	{
		name: "go_heap_objects_bytes",
		help: "bytes of live heap memory occupied by objects",
		render: func(s metrics.Sample) (string, bool) {
			if s.Value.Kind() != metrics.KindUint64 {
				return "", false
			}
			return fmt.Sprintf("%d", s.Value.Uint64()), true
		},
	},
	{
		name: "go_gc_pause_seconds_total",
		help: "approximate total stop-the-world GC pause time",
		render: func(s metrics.Sample) (string, bool) {
			if s.Value.Kind() != metrics.KindFloat64Histogram {
				return "", false
			}
			return formatBound(histogramSum(s.Value.Float64Histogram())), true
		},
	},
}

// histogramSum reduces a runtime/metrics float64 histogram to an
// approximate total: count-weighted bucket midpoints. The runtime only
// publishes pause *distributions*, so the scalar total is approximate
// by construction; the error is bounded by half a bucket width per
// pause, which is far below operator-visible resolution. Unbounded
// edge buckets fall back to their finite boundary.
func histogramSum(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, count := range h.Counts {
		if count == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if math.IsInf(lo, -1) {
			mid = hi
		} else if math.IsInf(hi, 1) {
			mid = lo
		}
		total += float64(count) * mid
	}
	return total
}

// writeRuntimeGauges appends the runtime gauge families to the
// exposition. A sample whose kind differs from the expectation (a
// future Go runtime reshaping a metric) is skipped rather than
// mis-rendered, keeping the document valid either way.
func writeRuntimeGauges(w *errWriter) {
	samples := []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapBytes},
		{Name: rmGCPauses},
	}
	metrics.Read(samples)
	for i, g := range runtimeGauges {
		v, ok := g.render(samples[i])
		if !ok {
			continue
		}
		name := MetricPrefix + g.name
		fmt.Fprintf(w, "# HELP %s %s\n", name, g.help)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %s\n", name, v)
	}
}
