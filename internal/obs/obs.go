// Package obs is the solver's observability layer: cheap atomic
// counters, per-phase wall-clock timings and a structured decision
// trace, shared by core, eval, relation, cc, search and the CLIs.
//
// The package is built around one invariant: a nil *Metrics (and a nil
// *Tracer) is a valid, fully inert instance. Every method nil-checks
// its receiver, so instrumented code paths never branch on "is
// observability on?" — they unconditionally call m.Add(...) and pay a
// single predictable nil test when disabled. Hot loops go one step
// further and accumulate into plain local integers, flushing once per
// run; the disabled-path overhead budget (≤2% on the headline
// benchmarks) is enforced by BenchmarkObsOverhead at the repo root.
package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one monotonic counter in a Metrics instance. The
// inventory below is the single source of truth: Stats field names,
// expvar keys and DESIGN.md §5.9 all derive from it.
type Counter int

const (
	// core: enumeration-shaped decision procedures.
	ValuationsEnumerated Counter = iota // total valuations of c-table variables tried
	ModelsChecked                       // candidate models tested against the CCs
	ModelsAdmitted                      // candidates that satisfied every CC
	ExtensionsTested                    // candidate extensions tested (RCDP/MINP searches)
	CounterexamplesFound                // witnesses of relative incompleteness found
	CCChecks                            // containment-constraint evaluations
	CCViolations                        // CC evaluations that failed
	BudgetErrors                        // searches aborted by a budget cap

	// eval: compiled query plans.
	PlanCompilations // query plans compiled
	PlanCacheHits    // plan reuses from a problem- or CC-level cache
	PlanRuns         // executions of a compiled plan
	RowsProbed       // rows fetched by atom nodes (scan or index probe)
	RowsEmitted      // rows that survived an atom node's binding checks
	ShortCircuits    // first-witness short-circuits (Bool / ∃ / ∨)
	NaiveEvaluations // evaluations through the naive (non-plan) evaluator
	DerivedTuples    // tuples derived by FP fixpoint evaluation

	// relation: lazy per-position hash indexes.
	IndexBuilds      // hash indexes built from scratch
	IndexInserts     // incremental index maintenance inserts
	IndexProbes      // LookupIndexed probes answered from an index
	IndexProbeHits   // probes that found at least one row
	IndexProbeMisses // probes that found none

	// relation: the interned value domain.
	ValuesInterned // distinct values admitted into an interner
	InternHits     // intern calls answered by an existing id

	// cc: memoised RHS answer sets.
	RHSCacheHits          // RHS answer-set reuses
	RHSCacheMisses        // RHS answer sets computed fresh
	RHSCacheInvalidations // cached RHS answer sets dropped as stale

	// search: parallel first-hit engine.
	SearchItems         // items handed to workers
	SearchRacesResolved // hits discarded for a lower-index winner
	SearchCancellations // early-stop signals issued
	SearchCancelNs      // total ns between stop signal and worker drain

	// robustness: deadline-aware deciders.
	DeadlineErrors // decisions aborted by context deadline or cancellation

	// server: the rcserved HTTP daemon (internal/server).
	ServerRequests       // HTTP API requests received
	ServerDecides        // decide calls that reached a decider
	ServerOverloads      // decide requests rejected by admission control (429)
	ServerProblemsLoaded // problems loaded into the registry
	ServerEvictions      // problems evicted by the resident-bytes cap

	// durability & isolation: the crash-safe registry and per-tenant
	// overload control (internal/durable, internal/server).
	WALAppends           // registry mutations committed to the write-ahead log
	WALReplayed          // WAL records applied during recovery replay
	SnapshotsWritten     // registry snapshots written (periodic + drain)
	Recoveries           // successful snapshot+WAL recovery replays
	RecoveryDiscards     // torn/corrupt WAL tail records discarded at recovery
	BreakerOpens         // per-tenant circuit breakers tripped open
	BreakerShortCircuits // decide requests answered 503 by an open breaker
	RateLimited          // decide requests rejected by a per-tenant token bucket
	ShedTotal            // decide requests shed by queue-delay overload control

	numCounters
)

// counterNames maps counters to their snake_case JSON / expvar names.
var counterNames = [numCounters]string{
	ValuationsEnumerated:  "valuations_enumerated",
	ModelsChecked:         "models_checked",
	ModelsAdmitted:        "models_admitted",
	ExtensionsTested:      "extensions_tested",
	CounterexamplesFound:  "counterexamples_found",
	CCChecks:              "cc_checks",
	CCViolations:          "cc_violations",
	BudgetErrors:          "budget_errors",
	PlanCompilations:      "plan_compilations",
	PlanCacheHits:         "plan_cache_hits",
	PlanRuns:              "plan_runs",
	RowsProbed:            "rows_probed",
	RowsEmitted:           "rows_emitted",
	ShortCircuits:         "short_circuits",
	NaiveEvaluations:      "naive_evaluations",
	DerivedTuples:         "derived_tuples",
	IndexBuilds:           "index_builds",
	IndexInserts:          "index_inserts",
	IndexProbes:           "index_probes",
	IndexProbeHits:        "index_probe_hits",
	IndexProbeMisses:      "index_probe_misses",
	ValuesInterned:        "values_interned",
	InternHits:            "intern_hits",
	RHSCacheHits:          "rhs_cache_hits",
	RHSCacheMisses:        "rhs_cache_misses",
	RHSCacheInvalidations: "rhs_cache_invalidations",
	SearchItems:           "search_items",
	SearchRacesResolved:   "search_races_resolved",
	SearchCancellations:   "search_cancellations",
	SearchCancelNs:        "search_cancel_ns",
	DeadlineErrors:        "deadline_errors",
	ServerRequests:        "server_requests",
	ServerDecides:         "server_decides",
	ServerOverloads:       "server_overloads",
	ServerProblemsLoaded:  "server_problems_loaded",
	ServerEvictions:       "server_evictions",
	WALAppends:            "wal_appends",
	WALReplayed:           "wal_replayed",
	SnapshotsWritten:      "snapshots_written",
	Recoveries:            "recoveries",
	RecoveryDiscards:      "recovery_discards",
	BreakerOpens:          "breaker_opens",
	BreakerShortCircuits:  "breaker_short_circuits",
	RateLimited:           "rate_limited",
	ShedTotal:             "shed_total",
}

// String returns the counter's canonical snake_case name.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "unknown"
	}
	return counterNames[c]
}

// CounterByName is the inverse of Counter.String.
func CounterByName(name string) (Counter, bool) {
	for c := Counter(0); c < numCounters; c++ {
		if counterNames[c] == name {
			return c, true
		}
	}
	return 0, false
}

// Metrics is a set of atomic counters, fixed-boundary histograms and
// named phase timings. The zero value is ready to use; a nil *Metrics
// is inert. All methods are safe for concurrent use.
type Metrics struct {
	counters [numCounters]atomic.Int64
	histos   [numHistos]histo

	phaseMu sync.Mutex
	phases  map[string]*phaseAgg

	// Labelled extensions of counter/histogram families (labeled.go).
	// Lazily allocated by LabeledCounter/LabeledHisto so a plain
	// Metrics (the common case) stays one flat allocation.
	vecMu       sync.Mutex
	counterVecs map[Counter]*CounterVec
	histoVecs   map[Histo]*HistogramVec
}

// histo is one histogram's storage: per-bucket observation counts
// (bucket i counts values ≤ bounds[i]; the bucket after the last bound
// is +Inf), the running sum of observed values, and an optional
// per-bucket exemplar — the most recent traced observation that landed
// in the bucket (exemplar.go). Bounds live in histoDefs, so the
// storage is a flat array of atomics.
type histo struct {
	counts    [maxHistoBuckets]atomic.Int64
	sum       atomic.Int64
	exemplars [maxHistoBuckets]atomic.Pointer[Exemplar]
}

type phaseAgg struct {
	count int64
	ns    int64
}

// NewMetrics returns an empty metrics instance.
func NewMetrics() *Metrics { return &Metrics{} }

// Add increments counter c by n. No-op on a nil receiver.
func (m *Metrics) Add(c Counter, n int64) {
	if m == nil {
		return
	}
	m.counters[c].Add(n)
}

// Inc increments counter c by one. No-op on a nil receiver.
func (m *Metrics) Inc(c Counter) {
	if m == nil {
		return
	}
	m.counters[c].Add(1)
}

// Get returns the current value of counter c (0 on a nil receiver).
func (m *Metrics) Get(c Counter) int64 {
	if m == nil {
		return 0
	}
	return m.counters[c].Load()
}

// StartPhase begins timing a named solver phase and returns the
// function that ends it. On a nil receiver both halves are no-ops.
//
//	defer m.StartPhase("rcdp/strong")()
func (m *Metrics) StartPhase(name string) func() {
	if m == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		d := time.Since(start)
		m.phaseMu.Lock()
		if m.phases == nil {
			m.phases = map[string]*phaseAgg{}
		}
		agg := m.phases[name]
		if agg == nil {
			agg = &phaseAgg{}
			m.phases[name] = agg
		}
		agg.count++
		agg.ns += d.Nanoseconds()
		m.phaseMu.Unlock()
	}
}

// PhaseStat is one named phase's aggregate in a Stats snapshot.
type PhaseStat struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Ms    float64 `json:"ms"`
}

// Stats is a point-in-time snapshot of a Metrics instance, shaped for
// encoding/json (rcheck -json, the rcbench debug endpoint) and for
// human summaries.
type Stats struct {
	Counters   map[string]int64 `json:"counters"`
	Phases     []PhaseStat      `json:"phases,omitempty"`
	Histograms []HistogramStat  `json:"histograms,omitempty"`
}

// Snapshot captures the current counter, histogram and phase values.
// Zero-valued counters and observation-free histograms are omitted so
// the JSON stays readable. A nil receiver yields an empty (but
// non-nil-map) snapshot.
func (m *Metrics) Snapshot() Stats {
	s := Stats{Counters: map[string]int64{}}
	if m == nil {
		return s
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := m.counters[c].Load(); v != 0 {
			s.Counters[c.String()] = v
		}
	}
	for h := Histo(0); h < numHistos; h++ {
		if st, ok := m.histoStat(h); ok {
			s.Histograms = append(s.Histograms, st)
		}
	}
	m.phaseMu.Lock()
	for name, agg := range m.phases {
		s.Phases = append(s.Phases, PhaseStat{
			Name:  name,
			Count: agg.count,
			Ms:    float64(agg.ns) / 1e6,
		})
	}
	m.phaseMu.Unlock()
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Name < s.Phases[j].Name })
	return s
}

// MarshalJSON serialises the snapshot of m, making a *Metrics directly
// usable as an expvar.Var-style JSON value.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}

// String renders the snapshot as JSON; together with MarshalJSON this
// makes *Metrics implement expvar.Var, so a live instance can be
// published under /debug/vars directly.
func (m *Metrics) String() string {
	b, err := m.MarshalJSON()
	if err != nil {
		return "{}"
	}
	return string(b)
}
