package obs

// This file is the span export pipeline: finished request traces leave
// the process through an asynchronous, bounded SpanExporter instead of
// dying in the SpanRecorder ring. The design constraint is the same one
// the rest of the package lives under — the decide hot path must never
// block on telemetry. Enqueue is a non-blocking channel send: when the
// queue is full the batch is dropped and counted, never waited on. One
// background goroutine drains the queue into a SpanSink, retrying
// transient sink failures with exponential backoff before counting the
// batch as dropped.
//
// Two sinks cover the operational cases: JSONLSink writes one span per
// line (rcheck -trace-out, rcserved -trace-export <file>), and
// OTLPSink POSTs OTLP/HTTP-shaped JSON trace batches to a collector
// endpoint (rcserved -trace-export http://collector:4318/v1/traces).
//
// A nil *SpanExporter is fully inert, matching the package invariant:
// instrumented code enqueues unconditionally and pays one pointer test
// when exporting is off.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SpanSink receives exported span batches. Export is called from the
// exporter's single worker goroutine, so sinks need no internal
// synchronisation against the exporter itself (only against other
// writers they may share an io.Writer with). An error return is treated
// as transient and retried; a batch still failing after the retry
// budget is dropped and counted.
type SpanSink interface {
	Export(batch []SpanData) error
	Close() error
}

// ExporterConfig tunes a SpanExporter. The zero value takes the
// documented defaults.
type ExporterConfig struct {
	// QueueSize bounds the number of in-flight batches (default 64).
	// Enqueue past the bound drops the batch and increments Dropped.
	QueueSize int
	// MaxRetries is how many times a failed Export is retried before
	// the batch is dropped (default 3).
	MaxRetries int
	// RetryBackoff is the initial retry delay, doubled per attempt
	// (default 50ms).
	RetryBackoff time.Duration
}

func (c *ExporterConfig) fill() {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
}

// SpanExporter drains span batches to a sink on a background goroutine.
// All methods are safe for concurrent use; a nil *SpanExporter is
// inert.
type SpanExporter struct {
	sink    SpanSink
	queue   chan []SpanData
	done    chan struct{} // closed when the worker exits
	retries int
	backoff time.Duration

	closeOnce sync.Once
	closed    atomic.Bool

	enqueued atomic.Int64
	exported atomic.Int64
	dropped  atomic.Int64
	retried  atomic.Int64

	// sleep is swapped by tests to avoid real backoff waits.
	sleep func(time.Duration)
}

// NewSpanExporter starts the exporter's worker goroutine. Call Close to
// flush and stop it.
func NewSpanExporter(sink SpanSink, cfg ExporterConfig) *SpanExporter {
	cfg.fill()
	e := &SpanExporter{
		sink:    sink,
		queue:   make(chan []SpanData, cfg.QueueSize),
		done:    make(chan struct{}),
		retries: cfg.MaxRetries,
		backoff: cfg.RetryBackoff,
		sleep:   time.Sleep,
	}
	go e.run()
	return e
}

// Enqueue hands a batch of finished spans to the exporter without
// blocking: a full queue (or a closed exporter) drops the batch,
// increments Dropped and returns false. The exporter takes ownership of
// the slice; callers must not mutate it afterwards (SpanRecorder.Spans
// already returns a fresh copy). Empty batches are ignored. No-op
// (returning false) on a nil receiver.
func (e *SpanExporter) Enqueue(batch []SpanData) bool {
	if e == nil || len(batch) == 0 {
		return false
	}
	if e.closed.Load() {
		e.dropped.Add(int64(len(batch)))
		return false
	}
	select {
	case e.queue <- batch:
		e.enqueued.Add(int64(len(batch)))
		return true
	default:
		e.dropped.Add(int64(len(batch)))
		return false
	}
}

// Enqueued returns how many spans were accepted into the queue.
func (e *SpanExporter) Enqueued() int64 {
	if e == nil {
		return 0
	}
	return e.enqueued.Load()
}

// Exported returns how many spans the sink accepted.
func (e *SpanExporter) Exported() int64 {
	if e == nil {
		return 0
	}
	return e.exported.Load()
}

// Dropped returns how many spans were discarded: queue-full drops plus
// batches abandoned after the retry budget.
func (e *SpanExporter) Dropped() int64 {
	if e == nil {
		return 0
	}
	return e.dropped.Load()
}

// Retried returns how many Export retry attempts were made.
func (e *SpanExporter) Retried() int64 {
	if e == nil {
		return 0
	}
	return e.retried.Load()
}

// run is the worker loop: it drains the queue until Close.
func (e *SpanExporter) run() {
	defer close(e.done)
	for batch := range e.queue {
		e.export(batch)
	}
}

// export pushes one batch through the sink with retry/backoff; a batch
// still failing after the budget is counted dropped.
func (e *SpanExporter) export(batch []SpanData) {
	err := e.sink.Export(batch)
	for attempt := 0; err != nil && attempt < e.retries; attempt++ {
		e.retried.Add(1)
		e.sleep(e.backoff << attempt)
		err = e.sink.Export(batch)
	}
	if err != nil {
		e.dropped.Add(int64(len(batch)))
		return
	}
	e.exported.Add(int64(len(batch)))
}

// Close stops accepting new batches, drains the already-queued ones,
// and closes the sink. Idempotent; no-op on a nil receiver.
func (e *SpanExporter) Close() error {
	if e == nil {
		return nil
	}
	var err error
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		close(e.queue)
		<-e.done
		err = e.sink.Close()
	})
	return err
}

// ---------------------------------------------------------------------------
// JSONL sink.
// ---------------------------------------------------------------------------

// JSONLSink writes each exported span as one JSON object per line — the
// grep/jq-friendly shape used by rcheck -trace-out and rcserved
// -trace-export when given a file path.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink wraps w. Close closes w when it is an io.Closer.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// OpenJSONLFile creates (truncating) a JSONL sink on path.
func OpenJSONLFile(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// Export writes the batch, one span per line.
func (s *JSONLSink) Export(batch []SpanData) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, sp := range batch {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.w.Write(buf.Bytes())
	return err
}

// Close closes the underlying writer when it supports it.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// ---------------------------------------------------------------------------
// OTLP/HTTP sink.
// ---------------------------------------------------------------------------

// OTLPSink POSTs span batches as OTLP/HTTP JSON (the
// opentelemetry-collector's /v1/traces shape) so exported traces land
// in any OTLP-compatible backend without a client library. Only the
// fields the span model carries are emitted; ids are the W3C hex forms
// OTLP JSON expects.
type OTLPSink struct {
	url     string
	service string
	client  *http.Client
}

// NewOTLPSink builds a sink POSTing to url (e.g.
// http://collector:4318/v1/traces), attributing spans to the named
// service. A nil client uses a 5s-timeout default.
func NewOTLPSink(url, service string, client *http.Client) *OTLPSink {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &OTLPSink{url: url, service: service, client: client}
}

// otlp* mirror the OTLP JSON wire shape, local to this file: the
// exporter speaks the protocol, it does not adopt its object model.
type otlpKV struct {
	Key   string `json:"key"`
	Value struct {
		StringValue string `json:"stringValue"`
	} `json:"value"`
}

func otlpAttr(k, v string) otlpKV {
	kv := otlpKV{Key: k}
	kv.Value.StringValue = v
	return kv
}

type otlpStatus struct {
	Message string `json:"message,omitempty"`
	Code    int    `json:"code"`
}

type otlpSpan struct {
	TraceID      string      `json:"traceId"`
	SpanID       string      `json:"spanId"`
	ParentSpanID string      `json:"parentSpanId,omitempty"`
	Name         string      `json:"name"`
	StartTime    string      `json:"startTimeUnixNano"`
	EndTime      string      `json:"endTimeUnixNano"`
	Attributes   []otlpKV    `json:"attributes,omitempty"`
	Status       *otlpStatus `json:"status,omitempty"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpPayload struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

// Export POSTs the batch; any non-2xx status is an error (and so
// retried by the exporter).
func (s *OTLPSink) Export(batch []SpanData) error {
	spans := make([]otlpSpan, 0, len(batch))
	for _, sp := range batch {
		start := sp.Start.UnixNano()
		end := start + int64(sp.DurationMS*1e6)
		o := otlpSpan{
			TraceID:      sp.TraceID,
			SpanID:       sp.SpanID,
			ParentSpanID: sp.ParentID,
			Name:         sp.Name,
			StartTime:    fmt.Sprintf("%d", start),
			EndTime:      fmt.Sprintf("%d", end),
		}
		for k, v := range sp.Attrs {
			o.Attributes = append(o.Attributes, otlpAttr(k, v))
		}
		if sp.Status != "" {
			code := 1 // STATUS_CODE_OK
			if sp.Status != "ok" {
				code = 2 // STATUS_CODE_ERROR
			}
			o.Status = &otlpStatus{Message: sp.Status, Code: code}
		}
		spans = append(spans, o)
	}
	payload := otlpPayload{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{otlpAttr("service.name", s.service)}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "relcomplete/internal/obs"},
			Spans: spans,
		}},
	}}}

	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	resp, err := s.client.Post(s.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("obs: OTLP export: %s returned %s", s.url, resp.Status)
	}
	return nil
}

// Close is a no-op; the HTTP client owns no resources to release.
func (s *OTLPSink) Close() error { return nil }
