package obs

// This file is the request-scoped tracing layer: a context-carried
// span model (trace_id / span_id / parent links, attributes, status)
// with W3C traceparent ingestion and emission. Spans complement the
// two existing signal kinds — counters/histograms aggregate across
// requests, the decision trace records solver events — by attributing
// wall time to one request: rcserved starts a root span per HTTP
// request, the core deciders hang their phase spans off it (see
// core.Problem.span), and the search/eval layers add sub-spans, so a
// slow decide yields a tree saying where its time went.
//
// The same inertness invariant as Metrics and Tracer applies: a nil
// *Span is valid and every method nil-checks its receiver, so
// instrumented code calls span methods unconditionally and pays one
// pointer test when no request trace is active. Finished spans land in
// a bounded SpanRecorder (overflow is counted, never allocated), so a
// pathological decide cannot turn the recorder into a memory leak.

import (
	"context"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace identifier shared by every span of
// one request.
type TraceID [16]byte

// SpanID is the 8-byte identifier of one span.
type SpanID [8]byte

// IsZero reports whether the trace id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the span id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the span id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// randTraceID and randSpanID draw process-unique identifiers. The ids
// carry no security weight (they correlate log lines, they do not
// authenticate), so the shared math/rand/v2 generator is enough and
// stays cheap on the per-request path.
func randTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			t[i] = byte(a >> (8 * i))
			t[8+i] = byte(b >> (8 * i))
		}
	}
	return t
}

func randSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		v := rand.Uint64()
		for i := 0; i < 8; i++ {
			s[i] = byte(v >> (8 * i))
		}
	}
	return s
}

// ParseTraceparent parses a W3C trace-context traceparent header
// (version "00": version-traceid-parentid-flags). sampled reflects bit
// 0 of the flags. The all-zero trace and parent ids are invalid per
// the spec and rejected.
func ParseTraceparent(h string) (t TraceID, parent SpanID, sampled bool, err error) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return t, parent, false, fmt.Errorf("traceparent: want version-traceid-parentid-flags, got %q", h)
	}
	if h[:2] == "ff" {
		return t, parent, false, fmt.Errorf("traceparent: invalid version %q", h[:2])
	}
	if _, err := hex.Decode(make([]byte, 1), []byte(h[:2])); err != nil {
		return t, parent, false, fmt.Errorf("traceparent: bad version: %w", err)
	}
	if _, err := hex.Decode(t[:], []byte(h[3:35])); err != nil {
		return TraceID{}, parent, false, fmt.Errorf("traceparent: bad trace id: %w", err)
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, fmt.Errorf("traceparent: bad parent id: %w", err)
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, SpanID{}, false, fmt.Errorf("traceparent: bad flags: %w", err)
	}
	if t.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false, fmt.Errorf("traceparent: all-zero trace or parent id")
	}
	return t, parent, flags[0]&1 == 1, nil
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(t TraceID, s SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + t.String() + "-" + s.String() + "-" + flags
}

// SpanData is one finished span, shaped for encoding/json (the
// ?trace=1 decide response and the /debug/requests ring).
type SpanData struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_span_id,omitempty"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Status     string            `json:"status,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// DefaultSpanCap bounds a zero-configured SpanRecorder. One span per
// decider phase plus one per search/eval sub-step is tens of spans for
// a normal decide; the cap exists for pathological ones (an FP query
// evaluated on thousands of candidate models), which overflow into a
// counter instead of memory.
const DefaultSpanCap = 256

// SpanRecorder collects the finished spans of one trace, up to a cap.
// All methods are safe for concurrent use — search workers end spans
// from many goroutines.
type SpanRecorder struct {
	traceID TraceID
	remote  SpanID // parent carried in from the traceparent header, if any
	sampled bool
	cap     int

	mu      sync.Mutex
	spans   []SpanData
	dropped int64
}

// NewSpanRecorder returns a recorder retaining up to capN finished
// spans (capN <= 0 → DefaultSpanCap).
func NewSpanRecorder(capN int) *SpanRecorder {
	if capN <= 0 {
		capN = DefaultSpanCap
	}
	return &SpanRecorder{cap: capN}
}

// Root starts the trace's root span, adopting the trace id (and remote
// parent link) of traceparent when it parses, and fresh random ids
// when it is absent or malformed — a client error must never fail the
// request it decorates. Call Root once per recorder.
func (r *SpanRecorder) Root(name, traceparent string) *Span {
	t, parent, sampled, err := ParseTraceparent(traceparent)
	if err != nil {
		t, parent, sampled = randTraceID(), SpanID{}, true
	}
	r.traceID, r.remote, r.sampled = t, parent, sampled
	return &Span{
		rec:    r,
		id:     randSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// TraceID returns the recorder's trace id (zero before Root).
func (r *SpanRecorder) TraceID() TraceID { return r.traceID }

// Cap returns the recorder's span capacity.
func (r *SpanRecorder) Cap() int { return r.cap }

// Spans returns the finished spans in end order.
func (r *SpanRecorder) Spans() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, len(r.spans))
	copy(out, r.spans)
	return out
}

// Dropped returns how many finished spans were discarded over the cap.
func (r *SpanRecorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

func (r *SpanRecorder) record(d SpanData) {
	r.mu.Lock()
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, d)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Span is one in-flight operation of a request trace. A nil *Span is
// inert: every method nil-checks its receiver and StartChild of nil is
// nil, so an instrumented call path with no active trace costs pointer
// tests only.
type Span struct {
	rec    *SpanRecorder
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Field
	status string
	ended  bool
}

// StartChild starts a sub-span of s. On a nil receiver it returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{rec: s.rec, id: randSpanID(), parent: s.id, name: name, start: time.Now()}
}

// Recorder returns the SpanRecorder the span reports into (nil on a
// nil receiver). Handlers use it to read back the finished span tree
// of the request they own.
func (s *Span) Recorder() *SpanRecorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// ID returns the span's id (zero on a nil receiver).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Trace returns the trace id the span belongs to (zero on nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.rec.traceID
}

// Traceparent renders the outbound traceparent header naming s as the
// parent ("" on a nil receiver).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return FormatTraceparent(s.rec.traceID, s.id, s.rec.sampled)
}

// SetAttr attaches one key/value attribute (formatted with %v) to the
// span. No-op on a nil receiver.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, F(key, value))
	s.mu.Unlock()
}

// SetStatus sets the span's status slug ("ok", "deadline", ...).
// No-op on a nil receiver.
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.status = status
	s.mu.Unlock()
}

// End finishes the span and records it into the trace's recorder.
// Idempotent; no-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	d := SpanData{
		TraceID:    s.rec.traceID.String(),
		SpanID:     s.id.String(),
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(end.Sub(s.start).Nanoseconds()) / 1e6,
		Status:     s.status,
	}
	if !s.parent.IsZero() {
		d.ParentID = s.parent.String()
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, f := range s.attrs {
			d.Attrs[f.Key] = f.Value
		}
	}
	s.mu.Unlock()
	s.rec.record(d)
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp as the active span. A nil sp
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span of ctx, or nil when the
// request is untraced (including a nil ctx).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}
