package obs

// This file adds labelled series to the exposition: a counter or
// histogram family from the fixed inventory can carry an additional
// set of labelled series (per tenant, per decider, per outcome) next
// to its unlabelled process-wide sample. rcserved uses this for
// per-tenant attribution: relcomplete_server_decides_total{problem=,
// decider=,outcome=} and relcomplete_decider_wall_seconds{problem=}.
//
// Label cardinality is bounded by construction: each vec admits at
// most maxSeries distinct label-value combinations, and every later
// combination folds into one reserved overflow series whose label
// values are all "other". A misbehaving tenant namespace (thousands of
// problem names) therefore costs one extra series, not an unbounded
// scrape document.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultMaxLabelSeries bounds the distinct label-value combinations a
// vec admits before folding new ones into the "other" overflow series.
const DefaultMaxLabelSeries = 64

// OverflowLabelValue is the label value of every label on the
// overflow series.
const OverflowLabelValue = "other"

// labelKey joins label values into one map key. 0x1f (unit separator)
// cannot collide with itself inside a value in a way that merges two
// distinct tuples unless a value itself contains the separator, which
// the escaping below preserves in the exposition anyway; the key is
// only an interning handle.
func labelKey(values []string) string {
	return strings.Join(values, "\x1f")
}

// promEscape renders a label value per the text exposition format:
// backslash, double quote and newline are escaped, everything else is
// passed through.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// labelPairs renders {name="value",...} for a series, with extra
// pairs (the histogram le bound) appended last.
func labelPairs(names, values []string, extra ...string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, promEscape(values[i]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extra[i], promEscape(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// CounterVec is a labelled extension of one counter family. The zero
// value is not usable; obtain one from Metrics.LabeledCounter. A nil
// *CounterVec is inert.
type CounterVec struct {
	labels    []string
	maxSeries int

	mu     sync.Mutex
	series map[string]*counterSeries
}

type counterSeries struct {
	values []string
	n      atomic.Int64
}

// SetMaxSeries adjusts the cardinality cap (n <= 0 leaves it
// unchanged) and returns the vec for chaining at registration time.
// Lowering the cap below the current series count only affects new
// combinations. No-op on a nil receiver.
func (v *CounterVec) SetMaxSeries(n int) *CounterVec {
	if v == nil || n <= 0 {
		return v
	}
	v.mu.Lock()
	v.maxSeries = n
	v.mu.Unlock()
	return v
}

// Add increments the series identified by labelValues by n, creating
// it on first use (or folding into the overflow series past the
// cardinality cap). len(labelValues) must match the vec's label names.
// No-op on a nil receiver.
func (v *CounterVec) Add(n int64, labelValues ...string) {
	if v == nil {
		return
	}
	v.seriesFor(labelValues).n.Add(n)
}

// Inc is Add(1, labelValues...).
func (v *CounterVec) Inc(labelValues ...string) { v.Add(1, labelValues...) }

// Get returns the current value of the series identified by
// labelValues (0 when absent or on a nil receiver). It never creates
// a series.
func (v *CounterVec) Get(labelValues ...string) int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if s := v.series[labelKey(labelValues)]; s != nil {
		return s.n.Load()
	}
	return 0
}

// Series returns the number of live series (including the overflow
// series once used).
func (v *CounterVec) Series() int {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.series)
}

func (v *CounterVec) seriesFor(labelValues []string) *counterSeries {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("obs: CounterVec got %d label values for %d labels", len(labelValues), len(v.labels)))
	}
	key := labelKey(labelValues)
	v.mu.Lock()
	defer v.mu.Unlock()
	if s := v.series[key]; s != nil {
		return s
	}
	values := labelValues
	if len(v.series) >= v.maxSeries {
		values = overflowValues(len(v.labels))
		key = labelKey(values)
		if s := v.series[key]; s != nil {
			return s
		}
	}
	s := &counterSeries{values: append([]string(nil), values...)}
	v.series[key] = s
	return s
}

// write emits the vec's series as samples of family name, label keys
// sorted for a stable document.
func (v *CounterVec) write(w *errWriter, name string) {
	if v == nil {
		return
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		n      int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		s := v.series[k]
		rows = append(rows, row{labelPairs(v.labels, s.values), s.n.Load()})
	}
	v.mu.Unlock()
	for _, r := range rows {
		fmt.Fprintf(w, "%s%s %d\n", name, r.labels, r.n)
	}
}

// HistogramVec is a labelled extension of one histogram family,
// sharing the family's fixed bucket bounds. Obtain one from
// Metrics.LabeledHisto; a nil *HistogramVec is inert.
type HistogramVec struct {
	def       *histoDef
	labels    []string
	maxSeries int

	mu     sync.Mutex
	series map[string]*histoSeries
}

type histoSeries struct {
	values []string
	h      histo
}

// SetMaxSeries adjusts the cardinality cap; see CounterVec.SetMaxSeries.
func (v *HistogramVec) SetMaxSeries(n int) *HistogramVec {
	if v == nil || n <= 0 {
		return v
	}
	v.mu.Lock()
	v.maxSeries = n
	v.mu.Unlock()
	return v
}

// Observe records value (in the family's native unit) into the series
// identified by labelValues, with the same creation and overflow rules
// as CounterVec.Add. No-op on a nil receiver.
func (v *HistogramVec) Observe(value int64, labelValues ...string) {
	if v == nil {
		return
	}
	v.seriesFor(labelValues).h.observe(v.def, value, "")
}

// SeriesCount returns the observation count of the series identified
// by labelValues (0 when absent). It never creates a series.
func (v *HistogramVec) SeriesCount(labelValues ...string) int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	s := v.series[labelKey(labelValues)]
	v.mu.Unlock()
	if s == nil {
		return 0
	}
	var total int64
	for i := 0; i <= len(v.def.bounds); i++ {
		total += s.h.counts[i].Load()
	}
	return total
}

// Series returns the number of live series.
func (v *HistogramVec) Series() int {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.series)
}

func (v *HistogramVec) seriesFor(labelValues []string) *histoSeries {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("obs: HistogramVec got %d label values for %d labels", len(labelValues), len(v.labels)))
	}
	key := labelKey(labelValues)
	v.mu.Lock()
	defer v.mu.Unlock()
	if s := v.series[key]; s != nil {
		return s
	}
	values := labelValues
	if len(v.series) >= v.maxSeries {
		values = overflowValues(len(v.labels))
		key = labelKey(values)
		if s := v.series[key]; s != nil {
			return s
		}
	}
	s := &histoSeries{values: append([]string(nil), values...)}
	v.series[key] = s
	return s
}

// write emits every series' _bucket/_sum/_count samples for family
// name, series sorted by label key.
func (v *HistogramVec) write(w *errWriter, name string) {
	v.writeSeries(w, name, false)
}

// writeExemplars is write for the OpenMetrics exposition: bucket
// samples trail their recorded exemplar, when one exists.
func (v *HistogramVec) writeExemplars(w *errWriter, name string) {
	v.writeSeries(w, name, true)
}

func (v *HistogramVec) writeSeries(w *errWriter, name string, exemplars bool) {
	if v == nil {
		return
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.series))
	for k := range v.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		values []string
		counts []int64
		exs    []*Exemplar
		sum    int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		s := v.series[k]
		counts := make([]int64, len(v.def.bounds)+1)
		var exs []*Exemplar
		if exemplars {
			exs = make([]*Exemplar, len(counts))
		}
		for i := range counts {
			counts[i] = s.h.counts[i].Load()
			if exemplars {
				exs[i] = s.h.exemplars[i].Load()
			}
		}
		rows = append(rows, row{values: s.values, counts: counts, exs: exs, sum: s.h.sum.Load()})
	}
	v.mu.Unlock()
	for _, r := range rows {
		var cum int64
		for i, c := range r.counts {
			cum += c
			le := "+Inf"
			if i < len(v.def.bounds) {
				le = formatBound(float64(v.def.bounds[i]) / v.def.div)
			}
			fmt.Fprintf(w, "%s_bucket%s %d", name, labelPairs(v.labels, r.values, "le", le), cum)
			if r.exs != nil && r.exs[i] != nil {
				writeExemplar(w, *r.exs[i])
			}
			fmt.Fprint(w, "\n")
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", name, labelPairs(v.labels, r.values), formatBound(float64(r.sum)/v.def.div))
		fmt.Fprintf(w, "%s_count%s %d\n", name, labelPairs(v.labels, r.values), cum)
	}
}

func overflowValues(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = OverflowLabelValue
	}
	return out
}

// LabeledCounter returns (creating on first use) the labelled
// extension of counter c's exposition family. The labelled series are
// emitted inside the same family block as the unlabelled process-wide
// sample, so the family keeps one TYPE declaration; the unlabelled
// sample remains the all-up total and the labelled series are its
// attribution breakdown. Subsequent calls return the existing vec and
// must pass the same label names. Returns nil on a nil receiver.
func (m *Metrics) LabeledCounter(c Counter, labelNames ...string) *CounterVec {
	if m == nil {
		return nil
	}
	for _, n := range labelNames {
		if !validLabelName(n) {
			panic(fmt.Sprintf("obs: invalid label name %q", n))
		}
	}
	m.vecMu.Lock()
	defer m.vecMu.Unlock()
	if m.counterVecs == nil {
		m.counterVecs = map[Counter]*CounterVec{}
	}
	if v := m.counterVecs[c]; v != nil {
		if strings.Join(v.labels, ",") != strings.Join(labelNames, ",") {
			panic(fmt.Sprintf("obs: counter %s already labelled with %v", c, v.labels))
		}
		return v
	}
	v := &CounterVec{
		labels:    append([]string(nil), labelNames...),
		maxSeries: DefaultMaxLabelSeries,
		series:    map[string]*counterSeries{},
	}
	m.counterVecs[c] = v
	return v
}

// LabeledHisto is LabeledCounter for a histogram family: the labelled
// series share the family's bucket bounds and TYPE declaration.
// Returns nil on a nil receiver.
func (m *Metrics) LabeledHisto(h Histo, labelNames ...string) *HistogramVec {
	if m == nil {
		return nil
	}
	for _, n := range labelNames {
		if !validLabelName(n) {
			panic(fmt.Sprintf("obs: invalid label name %q", n))
		}
	}
	m.vecMu.Lock()
	defer m.vecMu.Unlock()
	if m.histoVecs == nil {
		m.histoVecs = map[Histo]*HistogramVec{}
	}
	if v := m.histoVecs[h]; v != nil {
		if strings.Join(v.labels, ",") != strings.Join(labelNames, ",") {
			panic(fmt.Sprintf("obs: histogram %s already labelled with %v", h, v.labels))
		}
		return v
	}
	v := &HistogramVec{
		def:       &histoDefs[h],
		labels:    append([]string(nil), labelNames...),
		maxSeries: DefaultMaxLabelSeries,
		series:    map[string]*histoSeries{},
	}
	m.histoVecs[h] = v
	return v
}

// counterVec and histoVec return the registered vec for a family, or
// nil; used by the exposition writer.
func (m *Metrics) counterVec(c Counter) *CounterVec {
	if m == nil {
		return nil
	}
	m.vecMu.Lock()
	defer m.vecMu.Unlock()
	return m.counterVecs[c]
}

func (m *Metrics) histoVec(h Histo) *HistogramVec {
	if m == nil {
		return nil
	}
	m.vecMu.Lock()
	defer m.vecMu.Unlock()
	return m.histoVecs[h]
}
