package obs

// This file renders the slow-op dump: the post-hoc incident record a
// decider writes when one call exceeds the configured threshold. The
// dump is the flight recorder's payoff — the last N decision events
// before the stall plus the histogram distributions at that moment —
// and its format is pinned by a golden test (testdata/slowop.golden),
// because operators grep these out of service logs.

import (
	"fmt"
	"io"
	"time"
)

// WriteSlowOp writes the incident dump for one slow decider call: a
// header naming the operation, its elapsed time, the threshold it
// crossed and the request trace id (traceID; "-" when the call was
// untraced, so log-correlation greps always find the field); the
// flight-recorder contents (oldest first, TextSink format); and the
// non-empty histogram snapshots of m. ring and m may each be nil
// (rendered as "disabled"). The dump is bracketed by grep-able
// "=== SLOW OP" / "=== END SLOW OP" markers.
func WriteSlowOp(w io.Writer, op, traceID string, elapsed, threshold time.Duration, ring *RingSink, m *Metrics) {
	if traceID == "" {
		traceID = "-"
	}
	fmt.Fprintf(w, "=== SLOW OP op=%s elapsed=%v threshold=%v trace_id=%s ===\n", op, elapsed, threshold, traceID)
	if ring == nil {
		fmt.Fprintln(w, "flight recorder: disabled")
	} else {
		evs := ring.Events()
		fmt.Fprintf(w, "flight recorder: %d event(s) retained, %d overwritten\n", len(evs), ring.Dropped())
		ts := NewTextSink(w)
		for _, ev := range evs {
			ts.Emit(ev)
		}
	}
	if m == nil {
		fmt.Fprintln(w, "histograms: disabled")
	} else {
		hists := m.Snapshot().Histograms
		fmt.Fprintf(w, "histograms: %d with observations\n", len(hists))
		for _, h := range hists {
			fmt.Fprintf(w, "  %s count=%d sum=%s\n", h.Name, h.Count, formatBound(h.Sum))
			for _, b := range h.Buckets {
				fmt.Fprintf(w, "    le=%s %d\n", b.LE, b.Count)
			}
		}
	}
	fmt.Fprintf(w, "=== END SLOW OP op=%s ===\n", op)
}
