package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

const sampleTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestParseTraceparent(t *testing.T) {
	tr, parent, sampled, err := ParseTraceparent(sampleTraceparent)
	if err != nil {
		t.Fatal(err)
	}
	if tr.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace id = %s", tr)
	}
	if parent.String() != "00f067aa0ba902b7" {
		t.Errorf("parent id = %s", parent)
	}
	if !sampled {
		t.Error("sampled flag lost")
	}
	if got := FormatTraceparent(tr, parent, sampled); got != sampleTraceparent {
		t.Errorf("round trip = %q", got)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := []struct {
		name string
		h    string
	}{
		{"empty", ""},
		{"short", "00-abc-def-01"},
		{"bad separators", strings.ReplaceAll(sampleTraceparent, "-", "_")},
		{"version ff", "ff" + sampleTraceparent[2:]},
		{"bad hex in trace id", "00-zzzz2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"bad hex in parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-zzf067aa0ba902b7-01"},
		{"bad flags", sampleTraceparent[:53] + "zz"},
		{"zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"zero parent id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
	}
	for _, c := range cases {
		if _, _, _, err := ParseTraceparent(c.h); err == nil {
			t.Errorf("%s: accepted %q", c.name, c.h)
		}
	}
}

func TestSpanTree(t *testing.T) {
	rec := NewSpanRecorder(0)
	root := rec.Root("POST /decide", sampleTraceparent)
	if rec.TraceID().String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("recorder did not adopt the client trace id: %s", rec.TraceID())
	}
	phase := root.StartChild("rcdp_strong")
	phase.SetAttr("models_checked", 7)
	phase.SetStatus("ok")
	inner := phase.StartChild("search.first_hit")
	inner.End()
	phase.End()
	phase.End() // idempotent
	root.End()

	spans := rec.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
		if s.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("span %s carries trace id %s", s.Name, s.TraceID)
		}
	}
	if byName["search.first_hit"].ParentID != byName["rcdp_strong"].SpanID {
		t.Error("inner span not parented to the phase span")
	}
	if byName["rcdp_strong"].ParentID != byName["POST /decide"].SpanID {
		t.Error("phase span not parented to the root")
	}
	// The root's parent is the remote span from the traceparent header.
	if byName["POST /decide"].ParentID != "00f067aa0ba902b7" {
		t.Errorf("root parent = %q, want the remote parent", byName["POST /decide"].ParentID)
	}
	if byName["rcdp_strong"].Attrs["models_checked"] != "7" {
		t.Errorf("attrs = %v", byName["rcdp_strong"].Attrs)
	}
	if byName["rcdp_strong"].Status != "ok" {
		t.Errorf("status = %q", byName["rcdp_strong"].Status)
	}
}

func TestSpanRootWithoutTraceparent(t *testing.T) {
	rec := NewSpanRecorder(0)
	root := rec.Root("op", "")
	if rec.TraceID().IsZero() {
		t.Fatal("no trace id minted")
	}
	if got := root.Traceparent(); len(got) != 55 || !strings.HasPrefix(got, "00-") {
		t.Errorf("traceparent = %q", got)
	}
	root.End()
	if spans := rec.Spans(); len(spans) != 1 || spans[0].ParentID != "" {
		t.Errorf("spans = %+v", spans)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	if c := sp.StartChild("x"); c != nil {
		t.Error("StartChild of nil != nil")
	}
	sp.SetAttr("k", "v")
	sp.SetStatus("ok")
	sp.End()
	if sp.Traceparent() != "" {
		t.Error("nil Traceparent not empty")
	}
	if !sp.Trace().IsZero() || !sp.ID().IsZero() {
		t.Error("nil ids not zero")
	}
	if sp.Recorder() != nil {
		t.Error("nil Recorder not nil")
	}
	ctx := context.Background()
	if ContextWithSpan(ctx, nil) != ctx {
		t.Error("nil span changed the context")
	}
	if SpanFromContext(ctx) != nil {
		t.Error("empty context yields a span")
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	rec := NewSpanRecorder(0)
	root := rec.Root("op", "")
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Fatalf("got %v", got)
	}
}

func TestSpanRecorderCapAndConcurrency(t *testing.T) {
	rec := NewSpanRecorder(8)
	root := rec.Root("op", "")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				root.StartChild("child").End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(rec.Spans()); got != 8 {
		t.Errorf("retained %d spans, want cap 8", got)
	}
	// 41 spans ended (40 children + root), 8 retained.
	if got := rec.Dropped(); got != 33 {
		t.Errorf("dropped = %d, want 33", got)
	}
}

func TestSpanRecorderCap(t *testing.T) {
	if got := NewSpanRecorder(0).Cap(); got != DefaultSpanCap {
		t.Errorf("default cap = %d, want %d", got, DefaultSpanCap)
	}
	if got := NewSpanRecorder(7).Cap(); got != 7 {
		t.Errorf("cap = %d, want 7", got)
	}
}
