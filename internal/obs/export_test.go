package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// memSink is an in-memory SpanSink with a programmable failure budget:
// the first failN Export calls error, later ones succeed.
type memSink struct {
	mu     sync.Mutex
	spans  []SpanData
	calls  int
	failN  int
	closed bool
}

func (s *memSink) Export(batch []SpanData) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.calls <= s.failN {
		return errors.New("transient sink failure")
	}
	s.spans = append(s.spans, batch...)
	return nil
}

func (s *memSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *memSink) snapshot() []SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanData, len(s.spans))
	copy(out, s.spans)
	return out
}

// blockingSink parks every Export on a channel so tests can wedge the
// worker and fill the queue deterministically.
type blockingSink struct {
	release chan struct{}
	entered chan struct{}
}

func (s *blockingSink) Export(batch []SpanData) error {
	s.entered <- struct{}{}
	<-s.release
	return nil
}

func (s *blockingSink) Close() error { return nil }

func batchOf(n int, trace string) []SpanData {
	out := make([]SpanData, n)
	for i := range out {
		out[i] = SpanData{TraceID: trace, SpanID: fmt.Sprintf("%016x", i+1), Name: "op"}
	}
	return out
}

func TestExporterCloseFlushes(t *testing.T) {
	sink := &memSink{}
	e := NewSpanExporter(sink, ExporterConfig{QueueSize: 8})
	for i := 0; i < 5; i++ {
		if !e.Enqueue(batchOf(2, "aa")) {
			t.Fatalf("Enqueue %d rejected with a free queue", i)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := len(sink.snapshot()); got != 10 {
		t.Fatalf("exported %d spans, want 10", got)
	}
	if e.Exported() != 10 || e.Enqueued() != 10 || e.Dropped() != 0 {
		t.Fatalf("counters exported=%d enqueued=%d dropped=%d, want 10/10/0",
			e.Exported(), e.Enqueued(), e.Dropped())
	}
	if !sink.closed {
		t.Fatal("Close did not close the sink")
	}
	// Idempotent close, and enqueues after close are counted drops.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if e.Enqueue(batchOf(3, "bb")) {
		t.Fatal("Enqueue accepted after Close")
	}
	if e.Dropped() != 3 {
		t.Fatalf("post-close Dropped = %d, want 3", e.Dropped())
	}
}

func TestExporterBackpressureNeverBlocks(t *testing.T) {
	sink := &blockingSink{release: make(chan struct{}), entered: make(chan struct{}, 16)}
	e := NewSpanExporter(sink, ExporterConfig{QueueSize: 2})

	// First batch is taken by the worker and parks inside Export; two
	// more fill the queue.
	if !e.Enqueue(batchOf(1, "aa")) {
		t.Fatal("first Enqueue rejected")
	}
	<-sink.entered
	for i := 0; i < 2; i++ {
		if !e.Enqueue(batchOf(1, "aa")) {
			t.Fatalf("Enqueue %d rejected with queue space left", i)
		}
	}

	// The queue is full and the worker is wedged: Enqueue must return
	// false promptly instead of waiting for the sink.
	done := make(chan bool, 1)
	go func() { done <- e.Enqueue(batchOf(4, "bb")) }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Enqueue accepted a batch past the queue bound")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Enqueue blocked on a full queue")
	}
	if e.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4 (the rejected batch)", e.Dropped())
	}

	close(sink.release)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if e.Exported() != 3 {
		t.Fatalf("Exported = %d, want the 3 accepted spans", e.Exported())
	}
}

func TestExporterRetryBackoff(t *testing.T) {
	sink := &memSink{failN: 2}
	e := NewSpanExporter(sink, ExporterConfig{MaxRetries: 3, RetryBackoff: 10 * time.Millisecond})
	var mu sync.Mutex
	var slept []time.Duration
	e.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	e.Enqueue(batchOf(1, "aa"))
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if e.Exported() != 1 || e.Dropped() != 0 {
		t.Fatalf("exported=%d dropped=%d, want 1/0", e.Exported(), e.Dropped())
	}
	if e.Retried() != 2 {
		t.Fatalf("Retried = %d, want 2", e.Retried())
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want doubling %v", slept, want)
	}
}

func TestExporterDropsAfterRetryBudget(t *testing.T) {
	sink := &memSink{failN: 1 << 30}
	e := NewSpanExporter(sink, ExporterConfig{MaxRetries: 2, RetryBackoff: time.Nanosecond})
	e.sleep = func(time.Duration) {}
	e.Enqueue(batchOf(5, "aa"))
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if e.Exported() != 0 {
		t.Fatalf("Exported = %d from an always-failing sink", e.Exported())
	}
	if e.Dropped() != 5 {
		t.Fatalf("Dropped = %d, want the whole batch (5)", e.Dropped())
	}
	if e.Retried() != 2 {
		t.Fatalf("Retried = %d, want the retry budget (2)", e.Retried())
	}
}

func TestExporterNilIsInert(t *testing.T) {
	var e *SpanExporter
	if e.Enqueue(batchOf(1, "aa")) {
		t.Fatal("nil exporter accepted a batch")
	}
	if e.Enqueued() != 0 || e.Exported() != 0 || e.Dropped() != 0 || e.Retried() != 0 {
		t.Fatal("nil exporter reported nonzero counters")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

func TestExporterConcurrentEnqueue(t *testing.T) {
	sink := &memSink{}
	e := NewSpanExporter(sink, ExporterConfig{QueueSize: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				e.Enqueue(batchOf(1, "aa"))
			}
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Every span is accounted for exactly once: exported or dropped.
	if e.Exported()+e.Dropped() != 400 {
		t.Fatalf("exported %d + dropped %d != 400 enqueue attempts", e.Exported(), e.Dropped())
	}
	if int64(len(sink.snapshot())) != e.Exported() {
		t.Fatalf("sink holds %d spans, exporter counted %d", len(sink.snapshot()), e.Exported())
	}
}

func TestJSONLSinkShape(t *testing.T) {
	var buf strings.Builder
	rec := NewSpanRecorder(0)
	root := rec.Root("GET /v1/decide", "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	child := root.StartChild("decide")
	child.SetAttr("problem", "orders")
	child.End()
	root.End()

	e := NewSpanExporter(NewJSONLSink(&buf), ExporterConfig{})
	e.Enqueue(rec.Spans())
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var lines []SpanData
	for sc.Scan() {
		var d SpanData
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d is not a JSON span: %v\n%s", len(lines)+1, err, sc.Text())
		}
		lines = append(lines, d)
	}
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2 (child, root)", len(lines))
	}
	for _, d := range lines {
		if d.TraceID != "0123456789abcdef0123456789abcdef" {
			t.Fatalf("span %q exported trace %q, want the client's traceparent id", d.Name, d.TraceID)
		}
	}
	if lines[0].Name != "decide" || lines[0].Attrs["problem"] != "orders" {
		t.Fatalf("child span exported as %+v", lines[0])
	}
	if lines[1].ParentID != "" && lines[1].ParentID != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %q, want the remote parent", lines[1].ParentID)
	}
}

func TestOTLPSinkPostsAndRetriesNon2xx(t *testing.T) {
	var calls atomic.Int64
	var gotBody atomic.Pointer[[]byte]
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		body := make([]byte, r.ContentLength)
		r.Body.Read(body)
		gotBody.Store(&body)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	e := NewSpanExporter(NewOTLPSink(srv.URL, "rcserved", srv.Client()), ExporterConfig{RetryBackoff: time.Nanosecond})
	e.sleep = func(time.Duration) {}
	batch := batchOf(2, "0123456789abcdef0123456789abcdef")
	batch[0].Status = "ok"
	batch[1].Status = "deadline"
	e.Enqueue(batch)
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if e.Exported() != 2 || e.Retried() != 1 {
		t.Fatalf("exported=%d retried=%d, want 2 spans after one 503 retry", e.Exported(), e.Retried())
	}

	var payload struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Spans []struct {
					TraceID string `json:"traceId"`
					Status  *struct {
						Code int `json:"code"`
					} `json:"status"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(*gotBody.Load(), &payload); err != nil {
		t.Fatalf("POSTed body is not OTLP JSON: %v", err)
	}
	if len(payload.ResourceSpans) != 1 {
		t.Fatalf("resourceSpans = %d, want 1", len(payload.ResourceSpans))
	}
	rs := payload.ResourceSpans[0]
	if rs.Resource.Attributes[0].Key != "service.name" || rs.Resource.Attributes[0].Value.StringValue != "rcserved" {
		t.Fatalf("resource attributes = %+v, want service.name=rcserved", rs.Resource.Attributes)
	}
	spans := rs.ScopeSpans[0].Spans
	if len(spans) != 2 || spans[0].TraceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("exported spans = %+v", spans)
	}
	if spans[0].Status.Code != 1 || spans[1].Status.Code != 2 {
		t.Fatalf("status codes = %d,%d, want ok=1 error=2", spans[0].Status.Code, spans[1].Status.Code)
	}
}
