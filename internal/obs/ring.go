package obs

// This file is the flight recorder's storage: a bounded,
// overwrite-oldest ring of decision-trace events that is cheap enough
// to leave attached on every run, plus the Tee fan-out that lets one
// tracer feed the ring and a human-readable sink at the same time.
// When a decider call blows past Options.SlowOpThreshold, the ring is
// what the slow-op log dumps — the last N decisions before the stall,
// retained even though -trace was never turned on.

import "sync"

// DefaultRingSize is the event capacity a CLI flight recorder uses
// when no explicit size is configured.
const DefaultRingSize = 256

// RingSink retains the most recent events emitted to it, overwriting
// the oldest once full. All methods are safe for concurrent use; Emit
// takes one short mutex-protected copy, so the sink is cheap enough to
// stay attached permanently ("always-on").
type RingSink struct {
	mu    sync.Mutex
	buf   []Event // len(buf) grows to cap(buf), then stays
	next  int     // overwrite position once full
	total int64   // events ever emitted
}

// NewRingSink returns a ring retaining the last n events
// (n <= 0 → DefaultRingSize).
func NewRingSink(n int) *RingSink {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &RingSink{buf: make([]Event, 0, n)}
}

// Emit implements Sink.
func (s *RingSink) Emit(ev Event) {
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[s.next] = ev
		s.next = (s.next + 1) % len(s.buf)
	}
	s.total++
	s.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// Len returns the number of retained events.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Cap returns the ring's capacity.
func (s *RingSink) Cap() int { return cap(s.buf) }

// Total returns the number of events ever emitted.
func (s *RingSink) Total() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Dropped returns how many events have been overwritten.
func (s *RingSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total - int64(len(s.buf))
}

// Tee fans one event stream out to several sinks; nil sinks are
// skipped. It returns nil when no sink remains and the sole sink
// itself when only one does, so Tee(ring) costs nothing extra.
func Tee(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeSink(live)
}

type teeSink []Sink

// Emit implements Sink.
func (t teeSink) Emit(ev Event) {
	for _, s := range t {
		s.Emit(ev)
	}
}
