package obs

import (
	"math"
	"strconv"
	"time"
)

// Histo identifies one fixed-boundary histogram in a Metrics instance.
// Like Counter, the inventory below is the single source of truth: the
// Prometheus metric names, Stats JSON and DESIGN.md §5.9 all derive
// from it. Values are recorded as int64 in the histogram's native unit
// (nanoseconds for the duration histograms); the exposition layer
// rescales to Prometheus base units (seconds) via the def's divisor.
type Histo int

const (
	// DeciderWallNs is the wall time of one decider entry-point call
	// (consistency, rcdp_*, minp_*, rcqp, certain_answers, ...), in ns.
	// The per-phase totals say where time went overall; this says how
	// it was distributed — one pathological c-instance shows up as a
	// tail bucket, not as a diluted average.
	DeciderWallNs Histo = iota
	// PlanExecNs is the wall time of one compiled-plan execution, in ns.
	PlanExecNs
	// ModelsAdmittedPerCall is the number of candidate models admitted
	// by the CCs during one decider call (observed only for calls that
	// checked at least one model).
	ModelsAdmittedPerCall
	// ModelsPrunedPerCall is the number of candidate models rejected by
	// the CCs during one decider call.
	ModelsPrunedPerCall
	// SearchItemsPerHit is the number of candidates the parallel search
	// engine probed before a decisive hit (observed on hits only).
	SearchItemsPerHit
	// IndexProbeRows is the fan-out of one index probe: how many rows a
	// LookupIndexed call returned.
	IndexProbeRows
	// CancelLatencyNs is the latency from a context deadline firing to
	// the decider returning its DeadlineError, in ns (observed only for
	// deadline-carrying contexts whose deadline has passed).
	CancelLatencyNs
	// QueueWaitNs is the time one decide request spent in the admission
	// queue before a worker slot freed up, in ns (internal/server). A
	// growing tail here with a flat DeciderWallNs means the concurrency
	// cap, not the deciders, is the bottleneck.
	QueueWaitNs
	// WALFsyncNs is the latency of one write-ahead-log fsync, in ns
	// (internal/durable). Every acknowledged PUT/DELETE pays exactly one
	// of these, so this histogram is the durability tax on the registry
	// mutation path.
	WALFsyncNs

	numHistos
)

// histoDef fixes one histogram's identity: its exposition base name
// (snake_case, unit-suffixed per Prometheus convention), help text,
// the divisor from recorded int64 values to the exposed unit (a
// divisor rather than a multiplier so ns→seconds stays exact in
// float64: 6e10/1e9 is exactly 60), and its ascending upper bucket
// bounds in recorded units. A final +Inf bucket is implicit.
type histoDef struct {
	name   string
	help   string
	div    float64
	bounds []int64
}

// maxHistoBuckets bounds len(bounds)+1 across all defs so Metrics can
// hold every histogram in one flat array of atomics.
const maxHistoBuckets = 12

var histoDefs = [numHistos]histoDef{
	DeciderWallNs: {
		name:   "decider_wall_seconds",
		help:   "wall time per decider entry-point call",
		div:    1e9,
		bounds: []int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 6e10}, // 10µs … 60s
	},
	PlanExecNs: {
		name:   "plan_exec_seconds",
		help:   "wall time per compiled query-plan execution",
		div:    1e9,
		bounds: []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}, // 1µs … 1s
	},
	ModelsAdmittedPerCall: {
		name:   "models_admitted_per_call",
		help:   "candidate models admitted by the CCs per decider call",
		div:    1,
		bounds: []int64{0, 1, 2, 4, 8, 16, 64, 256, 1024},
	},
	ModelsPrunedPerCall: {
		name:   "models_pruned_per_call",
		help:   "candidate models rejected by the CCs per decider call",
		div:    1,
		bounds: []int64{0, 1, 2, 4, 8, 16, 64, 256, 1024, 4096},
	},
	SearchItemsPerHit: {
		name:   "search_items_per_hit",
		help:   "candidates probed per decisive parallel search",
		div:    1,
		bounds: []int64{1, 2, 4, 8, 16, 64, 256, 1024, 4096, 16384},
	},
	IndexProbeRows: {
		name:   "index_probe_rows",
		help:   "rows returned per hash-index probe",
		div:    1,
		bounds: []int64{0, 1, 2, 4, 8, 16, 64, 256},
	},
	CancelLatencyNs: {
		name:   "cancel_latency_seconds",
		help:   "latency from context deadline to decider return",
		div:    1e9,
		bounds: []int64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10}, // 100µs … 10s
	},
	QueueWaitNs: {
		name:   "queue_wait_seconds",
		help:   "time spent in the admission queue before a decide slot",
		div:    1e9,
		bounds: []int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}, // 10µs … 10s
	},
	WALFsyncNs: {
		name:   "wal_fsync_seconds",
		help:   "write-ahead-log fsync latency per committed registry mutation",
		div:    1e9,
		bounds: []int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9}, // 10µs … 1s
	},
}

// String returns the histogram's canonical snake_case exposition name.
func (h Histo) String() string {
	if h < 0 || h >= numHistos {
		return "unknown"
	}
	return histoDefs[h].name
}

// HistoByName is the inverse of Histo.String.
func HistoByName(name string) (Histo, bool) {
	for h := Histo(0); h < numHistos; h++ {
		if histoDefs[h].name == name {
			return h, true
		}
	}
	return 0, false
}

// Observe records value v into histogram h. No-op on a nil receiver.
// Concurrent observations are atomic per bucket; a snapshot taken mid
// observation may see the bucket count and the sum momentarily out of
// step, which is the usual (and harmless) monitoring trade-off.
func (m *Metrics) Observe(h Histo, v int64) {
	if m == nil {
		return
	}
	m.histos[h].observe(&histoDefs[h], v, "")
}

// ObserveDuration records d into duration histogram h (recorded in ns).
func (m *Metrics) ObserveDuration(h Histo, d time.Duration) {
	m.Observe(h, d.Nanoseconds())
}

// HistoCount returns the number of observations recorded into h
// (0 on a nil receiver).
func (m *Metrics) HistoCount(h Histo) int64 {
	if m == nil {
		return 0
	}
	var total int64
	hg := &m.histos[h]
	for i := 0; i <= len(histoDefs[h].bounds); i++ {
		total += hg.counts[i].Load()
	}
	return total
}

// Merge adds src's counters, histograms and phase timings into m,
// making per-worker or per-run Metrics instances aggregatable. Both
// receivers may be nil (no-op). src should be quiescent; a concurrent
// writer on src yields a momentarily torn (but never corrupt) merge.
func (m *Metrics) Merge(src *Metrics) {
	if m == nil || src == nil {
		return
	}
	for c := Counter(0); c < numCounters; c++ {
		if v := src.counters[c].Load(); v != 0 {
			m.counters[c].Add(v)
		}
	}
	for h := Histo(0); h < numHistos; h++ {
		dst, s := &m.histos[h], &src.histos[h]
		for i := 0; i <= len(histoDefs[h].bounds); i++ {
			if v := s.counts[i].Load(); v != 0 {
				dst.counts[i].Add(v)
			}
			if ex := s.exemplars[i].Load(); ex != nil {
				dst.exemplars[i].Store(ex)
			}
		}
		if v := s.sum.Load(); v != 0 {
			dst.sum.Add(v)
		}
	}
	src.phaseMu.Lock()
	phases := make(map[string]phaseAgg, len(src.phases))
	for name, agg := range src.phases {
		phases[name] = *agg
	}
	src.phaseMu.Unlock()
	m.phaseMu.Lock()
	if m.phases == nil && len(phases) > 0 {
		m.phases = map[string]*phaseAgg{}
	}
	for name, agg := range phases {
		dst := m.phases[name]
		if dst == nil {
			dst = &phaseAgg{}
			m.phases[name] = dst
		}
		dst.count += agg.count
		dst.ns += agg.ns
	}
	m.phaseMu.Unlock()
}

// HistogramBucket is one cumulative bucket of a histogram snapshot:
// Count observations had a value ≤ LE (LE is rendered in the exposed
// unit; the final bucket is "+Inf").
type HistogramBucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramStat is one histogram's snapshot: total observation count,
// the sum of observed values in the exposed unit, and the cumulative
// buckets, exactly as Prometheus exposes histograms.
type HistogramStat struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets []HistogramBucket `json:"buckets"`
}

// histoStat builds the snapshot of one histogram; ok is false when it
// has no observations.
func (m *Metrics) histoStat(h Histo) (HistogramStat, bool) {
	d := &histoDefs[h]
	hg := &m.histos[h]
	st := HistogramStat{Name: d.name}
	var cum int64
	for i := 0; i <= len(d.bounds); i++ {
		cum += hg.counts[i].Load()
		le := "+Inf"
		if i < len(d.bounds) {
			le = formatBound(float64(d.bounds[i]) / d.div)
		}
		st.Buckets = append(st.Buckets, HistogramBucket{LE: le, Count: cum})
	}
	st.Count = cum
	st.Sum = float64(hg.sum.Load()) / d.div
	return st, cum > 0
}

// formatBound renders a bucket bound or sum the way Prometheus does:
// shortest float representation.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) of
// the recorded values, in the exposed unit: the smallest bucket bound
// whose cumulative count covers q of the observations, math.Inf(1)
// when only the +Inf bucket does. ok is false on an empty histogram or
// an out-of-range q. The bound is conservative the way Prometheus'
// histogram_quantile is: the true quantile lies at or below it.
func (st HistogramStat) Quantile(q float64) (float64, bool) {
	if st.Count == 0 || q <= 0 || q > 1 {
		return 0, false
	}
	target := int64(math.Ceil(q * float64(st.Count)))
	for _, b := range st.Buckets {
		if b.Count >= target {
			if b.LE == "+Inf" {
				return math.Inf(1), true
			}
			v, err := strconv.ParseFloat(b.LE, 64)
			if err != nil {
				return 0, false
			}
			return v, true
		}
	}
	return math.Inf(1), true
}
