package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilMetricsInert(t *testing.T) {
	var m *Metrics
	m.Inc(ValuationsEnumerated)
	m.Add(RowsProbed, 42)
	if got := m.Get(RowsProbed); got != 0 {
		t.Fatalf("nil Get = %d, want 0", got)
	}
	done := m.StartPhase("x")
	done()
	s := m.Snapshot()
	if s.Counters == nil || len(s.Counters) != 0 || len(s.Phases) != 0 {
		t.Fatalf("nil Snapshot = %+v, want empty", s)
	}
}

func TestMetricsCountersAndSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Inc(ValuationsEnumerated)
	m.Add(ValuationsEnumerated, 2)
	m.Add(CCChecks, 7)
	done := m.StartPhase("rcdp/strong")
	time.Sleep(time.Millisecond)
	done()
	m.StartPhase("rcdp/strong")()

	s := m.Snapshot()
	if got := s.Counters["valuations_enumerated"]; got != 3 {
		t.Errorf("valuations_enumerated = %d, want 3", got)
	}
	if got := s.Counters["cc_checks"]; got != 7 {
		t.Errorf("cc_checks = %d, want 7", got)
	}
	if _, ok := s.Counters["rows_probed"]; ok {
		t.Errorf("zero counter rows_probed should be omitted")
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "rcdp/strong" || s.Phases[0].Count != 2 {
		t.Errorf("phases = %+v, want one rcdp/strong with count 2", s.Phases)
	}
	if s.Phases[0].Ms <= 0 {
		t.Errorf("phase ms = %v, want > 0", s.Phases[0].Ms)
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	m := NewMetrics()
	m.Add(PlanRuns, 5)
	m.StartPhase("eval")()
	buf, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var s Stats
	if err := json.Unmarshal(buf, &s); err != nil {
		t.Fatalf("unmarshal %s: %v", buf, err)
	}
	if s.Counters["plan_runs"] != 5 {
		t.Errorf("round-trip plan_runs = %d, want 5", s.Counters["plan_runs"])
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "eval" {
		t.Errorf("round-trip phases = %+v", s.Phases)
	}
}

// TestCounterNamesComplete round-trips every counter constant through
// String and CounterByName. Adding a counter without a (unique) name
// entry fails here, so the inventory cannot silently drift from the
// exposition.
func TestCounterNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if counterNames[c] == "" || name == "unknown" {
			t.Errorf("counter %d has no name", c)
			continue
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
		back, ok := CounterByName(name)
		if !ok || back != c {
			t.Errorf("CounterByName(%q) = %v,%v, want %v", name, back, ok, c)
		}
	}
	if Counter(-1).String() != "unknown" || numCounters.String() != "unknown" {
		t.Errorf("out-of-range counters should stringify as unknown")
	}
	if _, ok := CounterByName("unknown"); ok {
		t.Error("CounterByName should reject the unknown placeholder")
	}
	if _, ok := CounterByName("nope"); ok {
		t.Error("CounterByName should reject unknown names")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Inc(SearchItems)
				m.StartPhase("p")()
			}
		}()
	}
	wg.Wait()
	if got := m.Get(SearchItems); got != 8000 {
		t.Fatalf("SearchItems = %d, want 8000", got)
	}
	s := m.Snapshot()
	if s.Phases[0].Count != 8000 {
		t.Fatalf("phase count = %d, want 8000", s.Phases[0].Count)
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit("x", F("k", 1))
	pop := tr.Push("y")
	pop()
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) should be nil")
	}
}

func TestTextSinkRendering(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewTextSink(&buf))
	pop := tr.Push("search.start", F("problem", "rcdp"))
	tr.Emit("cc.violation", F("cc", "onlyStocked"), F("gained", "a b"))
	pop()
	tr.Emit("verdict", F("complete", false))

	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "search.start problem=rcdp") {
		t.Errorf("line 0 = %q", lines[0])
	}
	// Nested event is indented; quoted value with a space.
	if !strings.Contains(lines[1], "  cc.violation cc=onlyStocked gained=\"a b\"") {
		t.Errorf("line 1 = %q", lines[1])
	}
	if strings.Contains(lines[2], "  verdict") || !strings.Contains(lines[2], "verdict complete=false") {
		t.Errorf("line 2 = %q", lines[2])
	}
}

func TestTracerConcurrent(t *testing.T) {
	sink := &CollectSink{}
	tr := NewTracer(sink)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.Emit("e", F("i", j))
			}
		}()
	}
	wg.Wait()
	if len(sink.Kinds()) != 1600 {
		t.Fatalf("events = %d, want 1600", len(sink.Kinds()))
	}
}
