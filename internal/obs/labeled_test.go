package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	m := NewMetrics()
	v := m.LabeledCounter(ServerDecides, "problem", "decider", "outcome")
	if v == nil {
		t.Fatal("nil vec from live metrics")
	}
	if again := m.LabeledCounter(ServerDecides, "problem", "decider", "outcome"); again != v {
		t.Error("re-registration returned a different vec")
	}
	v.Inc("orders", "rcdp_strong", "ok")
	v.Add(2, "orders", "rcdp_strong", "ok")
	v.Inc("orders", "rcdp_strong", "deadline")
	if got := v.Get("orders", "rcdp_strong", "ok"); got != 3 {
		t.Errorf("Get = %d, want 3", got)
	}
	if got := v.Get("inventory", "rcdp_strong", "ok"); got != 0 {
		t.Errorf("Get on absent series = %d, want 0 without creating it", got)
	}
	if got := v.Series(); got != 2 {
		t.Errorf("Series = %d, want 2", got)
	}
}

func TestCounterVecArityPanics(t *testing.T) {
	m := NewMetrics()
	v := m.LabeledCounter(ServerDecides, "problem", "decider", "outcome")
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	v.Inc("orders")
}

func TestLabeledReRegistrationMismatchPanics(t *testing.T) {
	m := NewMetrics()
	m.LabeledCounter(ServerDecides, "problem")
	defer func() {
		if recover() == nil {
			t.Error("label-name mismatch did not panic")
		}
	}()
	m.LabeledCounter(ServerDecides, "tenant")
}

func TestInvalidLabelNamePanics(t *testing.T) {
	m := NewMetrics()
	defer func() {
		if recover() == nil {
			t.Error("invalid label name did not panic")
		}
	}()
	m.LabeledCounter(ServerDecides, "bad-label")
}

func TestCounterVecOverflow(t *testing.T) {
	m := NewMetrics()
	v := m.LabeledCounter(ServerDecides, "problem").SetMaxSeries(2)
	v.Inc("a")
	v.Inc("b")
	v.Inc("c") // past the cap: folds into the overflow series
	v.Inc("d")
	v.Inc("a") // existing series stay addressable past the cap
	if got := v.Series(); got != 3 {
		t.Errorf("Series = %d, want 2 named + 1 overflow", got)
	}
	if got := v.Get(OverflowLabelValue); got != 2 {
		t.Errorf("overflow series = %d, want 2", got)
	}
	if got := v.Get("a"); got != 2 {
		t.Errorf("pre-cap series = %d, want 2", got)
	}
	if got := v.Get("c"); got != 0 {
		t.Errorf("folded series got its own count: %d", got)
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	m := NewMetrics()
	v := m.LabeledCounter(ServerDecides, "problem")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Inc("orders")
			}
		}()
	}
	wg.Wait()
	if got := v.Get("orders"); got != 800 {
		t.Errorf("Get = %d, want 800", got)
	}
}

func TestHistogramVecObserve(t *testing.T) {
	m := NewMetrics()
	v := m.LabeledHisto(DeciderWallNs, "problem")
	v.Observe(5e5, "orders") // 0.5ms
	v.Observe(2e9, "orders") // 2s
	v.Observe(1e6, "inventory")
	if got := v.SeriesCount("orders"); got != 2 {
		t.Errorf("SeriesCount(orders) = %d, want 2", got)
	}
	if got := v.SeriesCount("absent"); got != 0 {
		t.Errorf("SeriesCount(absent) = %d, want 0", got)
	}
	if got := v.Series(); got != 2 {
		t.Errorf("Series = %d, want 2", got)
	}
}

func TestNilMetricsLabeledInert(t *testing.T) {
	var m *Metrics
	cv := m.LabeledCounter(ServerDecides, "problem")
	if cv != nil {
		t.Fatal("nil metrics yielded a live counter vec")
	}
	cv.Inc("x")
	cv.Add(5, "x")
	cv.SetMaxSeries(1)
	if cv.Get("x") != 0 || cv.Series() != 0 {
		t.Error("nil counter vec not inert")
	}
	hv := m.LabeledHisto(DeciderWallNs, "problem")
	if hv != nil {
		t.Fatal("nil metrics yielded a live histogram vec")
	}
	hv.Observe(1, "x")
	hv.SetMaxSeries(1)
	if hv.SeriesCount("x") != 0 || hv.Series() != 0 {
		t.Error("nil histogram vec not inert")
	}
}

func TestLabeledExpositionValidates(t *testing.T) {
	m := NewMetrics()
	cv := m.LabeledCounter(ServerDecides, "problem", "decider", "outcome")
	cv.Inc("orders", "rcdp_strong", "ok")
	cv.Inc("orders", "rcdp_strong", "ok")
	cv.Inc(`we"ird\pro`+"\n"+`blem`, "rcqp", "budget")
	hv := m.LabeledHisto(DeciderWallNs, "problem")
	hv.Observe(5e5, "orders")
	m.Inc(ServerDecides)

	text := m.PrometheusText()
	if err := ValidatePrometheusText([]byte(text)); err != nil {
		t.Fatalf("labelled exposition rejected: %v\n%s", err, text)
	}
	wantLines := []string{
		`relcomplete_server_decides_total 1`,
		`relcomplete_server_decides_total{problem="orders",decider="rcdp_strong",outcome="ok"} 2`,
		`relcomplete_server_decides_total{problem="we\"ird\\pro\nblem",decider="rcqp",outcome="budget"} 1`,
		`relcomplete_decider_wall_seconds_bucket{problem="orders",le="+Inf"} 1`,
		`relcomplete_decider_wall_seconds_count{problem="orders"} 1`,
		`relcomplete_decider_wall_seconds_sum{problem="orders"} 0.0005`,
	}
	for _, want := range wantLines {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Labelled series share the family block: the unlabelled total and
	// its attribution samples must be contiguous under one TYPE line.
	idx := strings.Index(text, "# TYPE relcomplete_server_decides_total counter")
	if idx < 0 {
		t.Fatal("family TYPE line missing")
	}
	if n := strings.Count(text, "# TYPE relcomplete_server_decides_total counter"); n != 1 {
		t.Errorf("family declared %d times, want 1", n)
	}
}

func TestRuntimeGaugesExposed(t *testing.T) {
	m := NewMetrics()
	text := m.PrometheusText()
	if err := ValidatePrometheusText([]byte(text)); err != nil {
		t.Fatalf("exposition with runtime gauges rejected: %v", err)
	}
	for _, fam := range []string{
		"relcomplete_go_goroutines",
		"relcomplete_go_heap_objects_bytes",
		"relcomplete_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" gauge\n") {
			t.Errorf("missing gauge TYPE for %s", fam)
		}
		if !strings.Contains(text, "\n"+fam+" ") {
			t.Errorf("missing sample for %s", fam)
		}
	}
}

func TestHistogramVecOverflow(t *testing.T) {
	m := NewMetrics()
	v := m.LabeledHisto(DeciderWallNs, "problem").SetMaxSeries(1)
	v.Observe(1e6, "a")
	v.Observe(1e6, "b") // folds into "other"
	v.Observe(1e6, "c")
	if got := v.Series(); got != 2 {
		t.Errorf("Series = %d, want 1 named + 1 overflow", got)
	}
	if got := v.SeriesCount(OverflowLabelValue); got != 2 {
		t.Errorf("overflow series count = %d, want 2", got)
	}
	if got := v.SeriesCount("a"); got != 1 {
		t.Errorf("pre-cap series count = %d, want 1", got)
	}
}
