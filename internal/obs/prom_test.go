package obs

import (
	"strings"
	"testing"
	"time"
)

func TestPrometheusTextValidates(t *testing.T) {
	m := NewMetrics()
	m.Add(ModelsChecked, 17)
	m.Inc(CCViolations)
	done := m.StartPhase("rcdp_strong")
	done()
	m.ObserveDuration(DeciderWallNs, 42*time.Millisecond)
	m.Observe(ModelsAdmittedPerCall, 3)

	text := m.PrometheusText()
	if err := ValidatePrometheusText([]byte(text)); err != nil {
		t.Fatalf("exposition fails own grammar: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE relcomplete_models_checked_total counter",
		"relcomplete_models_checked_total 17",
		"relcomplete_cc_violations_total 1",
		`relcomplete_phase_calls_total{phase="rcdp_strong"} 1`,
		"# TYPE relcomplete_decider_wall_seconds histogram",
		`relcomplete_decider_wall_seconds_bucket{le="+Inf"} 1`,
		"relcomplete_decider_wall_seconds_sum 0.042",
		"relcomplete_decider_wall_seconds_count 1",
		`relcomplete_models_admitted_per_call_bucket{le="4"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// A nil *Metrics still renders the complete all-zero inventory, so a
// scrape endpoint is well-formed before any solving happens.
func TestPrometheusNilMetrics(t *testing.T) {
	var m *Metrics
	text := m.PrometheusText()
	if err := ValidatePrometheusText([]byte(text)); err != nil {
		t.Fatalf("nil exposition invalid: %v", err)
	}
	for c := Counter(0); c < numCounters; c++ {
		if !strings.Contains(text, MetricPrefix+c.String()+"_total 0") {
			t.Errorf("missing zero counter for %s", c)
		}
	}
	for h := Histo(0); h < numHistos; h++ {
		if !strings.Contains(text, MetricPrefix+h.String()+"_count 0") {
			t.Errorf("missing empty histogram %s", h)
		}
	}
}

// Every counter must carry HELP text: the exposition writes it
// unconditionally, so an empty entry would render "# HELP name " —
// caught here rather than by a human reading a dashboard.
func TestCounterHelpComplete(t *testing.T) {
	for c := Counter(0); c < numCounters; c++ {
		if counterHelp[c] == "" {
			t.Errorf("counter %s has no HELP text", c)
		}
	}
}

func TestValidatorAcceptsRealWorldShapes(t *testing.T) {
	good := strings.Join([]string{
		"# HELP x_total a counter",
		"# TYPE x_total counter",
		"x_total 3",
		"# TYPE h histogram",
		`h_bucket{le="1"} 1`,
		`h_bucket{le="+Inf"} 2`,
		"h_sum 2.5",
		"h_count 2",
		`lab{a="b",c="d e"} 1 1712345678`,
		"bare_untyped NaN",
		// A labelled histogram family: one independent bucket sequence
		// per label-set, all inside one family block. The bound sequence
		// restarting at le="0.5" for tenant b must not trip the
		// "not increasing" check that applies within a single set.
		"# TYPE lh histogram",
		`lh_bucket{tenant="a",le="1"} 1`,
		`lh_bucket{tenant="a",le="+Inf"} 2`,
		`lh_sum{tenant="a"} 2.5`,
		`lh_count{tenant="a"} 2`,
		`lh_bucket{tenant="b",le="0.5"} 4`,
		`lh_bucket{tenant="b",le="+Inf"} 4`,
		`lh_sum{tenant="b"} 0.9`,
		`lh_count{tenant="b"} 4`,
		// Escaped label values round-trip.
		`esc{v="a\"b\\c\nd"} 1`,
		"",
	}, "\n")
	if err := ValidatePrometheusText([]byte(good)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestValidatorRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"bad metric name", "1bad 3\n"},
		{"bad value", "x notafloat\n"},
		{"bad label name", `x{__name__="y"} 1` + "\n"},
		{"unterminated label", `x{a="y} 1` + "\n"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\nx 1\n"},
		{"TYPE after samples", "x 1\n# TYPE x counter\n"},
		{"unknown type", "# TYPE x thing\n"},
		{"interleaved families", "a 1\nb 1\na 2\n"},
		{"histogram without +Inf", "# TYPE h histogram\n" + `h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n"},
		{"non-cumulative buckets", "# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n"},
		{"unsorted bounds", "# TYPE h histogram\n" + `h_bucket{le="2"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" + `h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n"},
		{"count mismatch", "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n"},
		{"bucket without le", "# TYPE h histogram\n" + `h_bucket{x="1"} 1` + "\n"},
		{"bad timestamp", "x 1 notanint\n"},
		{"duplicate label", `x{a="1",a="2"} 1` + "\n"},
		{"bad escape in label value", `x{a="\t"} 1` + "\n"},
		{"dangling escape", `x{a="y\` + "\n"},
		{"labelled histogram missing per-set +Inf", "# TYPE h histogram\n" +
			`h_bucket{tenant="a",le="1"} 1` + "\n" +
			`h_bucket{tenant="a",le="+Inf"} 1` + "\n" +
			`h_count{tenant="a"} 1` + "\n" +
			`h_bucket{tenant="b",le="1"} 2` + "\n" +
			`h_count{tenant="b"} 2` + "\n"},
		{"labelled histogram per-set count mismatch", "# TYPE h histogram\n" +
			`h_bucket{tenant="a",le="+Inf"} 1` + "\n" +
			`h_count{tenant="a"} 1` + "\n" +
			`h_bucket{tenant="b",le="+Inf"} 2` + "\n" +
			`h_count{tenant="b"} 5` + "\n"},
		{"labelled histogram non-cumulative within one set", "# TYPE h histogram\n" +
			`h_bucket{tenant="a",le="1"} 5` + "\n" +
			`h_bucket{tenant="a",le="+Inf"} 3` + "\n" +
			`h_count{tenant="a"} 3` + "\n"},
	}
	for _, c := range cases {
		if err := ValidatePrometheusText([]byte(c.doc)); err == nil {
			t.Errorf("%s: validator accepted %q", c.name, c.doc)
		}
	}
}
