package obs

// This file is the OpenMetrics 1.0 text exposition for Metrics — the
// sibling of prom.go's 0.0.4 format, and the only format that can
// carry histogram exemplars (exemplar.go). The structural differences
// from the classic format are deliberate and small: counter families
// are declared under their bare name with samples suffixed _total,
// bucket samples may trail a `# {trace_id="…"} value timestamp`
// exemplar, and the document ends with the mandatory `# EOF`
// terminator. /metrics serves this format on content negotiation
// (Accept: application/openmetrics-text) and ValidateOpenMetricsText
// (promvalidate.go) is the in-repo grammar check CI runs against it.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ContentTypeOpenMetrics is the Content-Type of the OpenMetrics text
// exposition, for HTTP handlers serving WriteOpenMetrics output.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics renders the current counters, phase timings and
// histograms (with their bucket exemplars, where recorded) in the
// OpenMetrics text exposition format, terminated by `# EOF`. A nil
// receiver renders the full all-zero inventory, like WritePrometheus.
func (m *Metrics) WriteOpenMetrics(w io.Writer) error {
	bw := &errWriter{w: w}
	for c := Counter(0); c < numCounters; c++ {
		// OpenMetrics counters: the family is the bare name, the
		// samples carry the _total suffix.
		fam := MetricPrefix + c.String()
		fmt.Fprintf(bw, "# HELP %s %s\n", fam, counterHelp[c])
		fmt.Fprintf(bw, "# TYPE %s counter\n", fam)
		fmt.Fprintf(bw, "%s_total %d\n", fam, m.Get(c))
		m.counterVec(c).write(bw, fam+"_total")
	}

	var phases []PhaseStat
	if m != nil {
		phases = m.Snapshot().Phases // sorted by name
	}
	secs := MetricPrefix + "phase_seconds"
	fmt.Fprintf(bw, "# HELP %s accumulated wall time per solver phase\n", secs)
	fmt.Fprintf(bw, "# TYPE %s counter\n", secs)
	for _, ph := range phases {
		fmt.Fprintf(bw, "%s_total{phase=%q} %s\n", secs, ph.Name, formatBound(ph.Ms/1e3))
	}
	calls := MetricPrefix + "phase_calls"
	fmt.Fprintf(bw, "# HELP %s calls per solver phase\n", calls)
	fmt.Fprintf(bw, "# TYPE %s counter\n", calls)
	for _, ph := range phases {
		fmt.Fprintf(bw, "%s_total{phase=%q} %d\n", calls, ph.Name, ph.Count)
	}

	for h := Histo(0); h < numHistos; h++ {
		d := &histoDefs[h]
		name := MetricPrefix + d.name
		fmt.Fprintf(bw, "# HELP %s %s\n", name, d.help)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		st := histoExposition(m, h)
		for i, b := range st.Buckets {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d", name, b.LE, b.Count)
			if m != nil {
				if ex, ok := loadExemplar(&m.histos[h].exemplars[i]); ok {
					writeExemplar(bw, ex)
				}
			}
			io.WriteString(bw, "\n")
		}
		fmt.Fprintf(bw, "%s_sum %s\n", name, formatBound(st.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, st.Count)
		m.histoVec(h).writeExemplars(bw, name)
	}

	writeRuntimeGauges(bw)
	io.WriteString(bw, "# EOF\n")
	return bw.err
}

// OpenMetricsText is WriteOpenMetrics into a string.
func (m *Metrics) OpenMetricsText() string {
	var b strings.Builder
	m.WriteOpenMetrics(&b)
	return b.String()
}

// writeExemplar appends one ` # {trace_id="…"} value timestamp`
// exemplar suffix to a bucket sample line (no trailing newline — the
// caller owns the line).
func writeExemplar(w *errWriter, ex Exemplar) {
	ts := float64(ex.Time.UnixNano()) / 1e9
	fmt.Fprintf(w, " # {trace_id=\"%s\"} %s %s",
		promEscape(ex.TraceID), formatBound(ex.Value), strconv.FormatFloat(ts, 'f', 3, 64))
}

// WantsOpenMetrics reports whether an HTTP Accept header value (or the
// explicit format=openmetrics query override the debug mux also
// honours) selects the OpenMetrics exposition over the classic text
// format. The check is a containment test, not a full q-value
// negotiation: any client that lists application/openmetrics-text at
// all gets it.
func WantsOpenMetrics(accept, formatQuery string) bool {
	return formatQuery == "openmetrics" || strings.Contains(accept, "application/openmetrics-text")
}
