package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExemplarRecordAndReplace(t *testing.T) {
	m := NewMetrics()

	// Untraced observations never record an exemplar.
	m.ObserveExemplar(DeciderWallNs, int64(5*time.Millisecond), "")
	if _, ok := m.BucketExemplar(DeciderWallNs, int64(5*time.Millisecond)); ok {
		t.Fatal("exemplar recorded for an empty trace id")
	}

	// A traced observation lands in its value's bucket, scaled to the
	// exposed unit (seconds for duration histograms).
	m.ObserveExemplar(DeciderWallNs, int64(5*time.Millisecond), "aaaabbbbccccddddaaaabbbbccccdddd")
	ex, ok := m.BucketExemplar(DeciderWallNs, int64(5*time.Millisecond))
	if !ok {
		t.Fatal("no exemplar after a traced observation")
	}
	if ex.TraceID != "aaaabbbbccccddddaaaabbbbccccdddd" {
		t.Fatalf("exemplar trace = %q", ex.TraceID)
	}
	if ex.Value != 0.005 {
		t.Fatalf("exemplar value = %v, want 0.005 (seconds)", ex.Value)
	}
	if ex.Time.IsZero() {
		t.Fatal("exemplar timestamp not stamped")
	}

	// Latest traced observation in the same bucket wins.
	m.ObserveExemplar(DeciderWallNs, int64(7*time.Millisecond), "eeeeffff00001111eeeeffff00001111")
	ex, _ = m.BucketExemplar(DeciderWallNs, int64(6*time.Millisecond))
	if ex.TraceID != "eeeeffff00001111eeeeffff00001111" {
		t.Fatalf("exemplar not replaced: trace = %q", ex.TraceID)
	}

	// A different bucket keeps its own exemplar.
	m.ObserveExemplar(DeciderWallNs, int64(2*time.Second), "9999888877776666999988887777AAAA")
	ex, _ = m.BucketExemplar(DeciderWallNs, int64(6*time.Millisecond))
	if ex.TraceID != "eeeeffff00001111eeeeffff00001111" {
		t.Fatal("observation in another bucket clobbered this bucket's exemplar")
	}

	// The plain Observe path and nil receivers stay exemplar-free.
	var nilM *Metrics
	nilM.ObserveExemplar(DeciderWallNs, 1, "abc")
	if _, ok := nilM.BucketExemplar(DeciderWallNs, 1); ok {
		t.Fatal("nil Metrics produced an exemplar")
	}
}

func TestExemplarSurvivesMerge(t *testing.T) {
	src := NewMetrics()
	src.ObserveExemplar(DeciderWallNs, int64(3*time.Millisecond), "aaaabbbbccccddddaaaabbbbccccdddd")
	dst := NewMetrics()
	dst.Merge(src)
	ex, ok := dst.BucketExemplar(DeciderWallNs, int64(3*time.Millisecond))
	if !ok || ex.TraceID != "aaaabbbbccccddddaaaabbbbccccdddd" {
		t.Fatalf("exemplar lost in Merge: ok=%v trace=%q", ok, ex.TraceID)
	}
}

func TestExemplarConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			trace := strings.Repeat("ab", 16)
			for i := 0; i < 200; i++ {
				m.ObserveExemplar(DeciderWallNs, int64(i%10)*int64(time.Millisecond), trace)
				m.BucketExemplar(DeciderWallNs, int64(i%10)*int64(time.Millisecond))
			}
		}(g)
	}
	wg.Wait()
	if _, ok := m.BucketExemplar(DeciderWallNs, int64(5*time.Millisecond)); !ok {
		t.Fatal("no exemplar after concurrent traced observations")
	}
}

func TestOpenMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.Inc(ValuationsEnumerated)
	m.StartPhase("decide")()
	m.ObserveExemplar(DeciderWallNs, int64(5*time.Millisecond), "aaaabbbbccccddddaaaabbbbccccdddd")
	m.LabeledHisto(DeciderWallNs, "problem").ObserveExemplar(
		int64(5*time.Millisecond), "aaaabbbbccccddddaaaabbbbccccdddd", "orders")

	text := m.OpenMetricsText()
	if err := ValidateOpenMetricsText([]byte(text)); err != nil {
		t.Fatalf("own OpenMetrics exposition rejected: %v\n%s", err, text)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("exposition does not end with # EOF")
	}
	// Counters: family declared bare, sample suffixed _total.
	if !strings.Contains(text, "# TYPE relcomplete_valuations_enumerated counter\n") {
		t.Fatal("counter TYPE line is not the bare family name")
	}
	if !strings.Contains(text, "relcomplete_valuations_enumerated_total 1\n") {
		t.Fatal("counter sample is not _total-suffixed")
	}
	if strings.Contains(text, "relcomplete_valuations_enumerated 1\n") {
		t.Fatal("bare counter sample leaked into the OpenMetrics exposition")
	}
	// The traced bucket carries its exemplar, on the plain histogram and
	// on the labelled series.
	if !strings.Contains(text, `# {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"} 0.005`) {
		t.Fatalf("bucket exemplar missing:\n%s", text)
	}
	if !strings.Contains(text, `problem="orders"`) {
		t.Fatal("labelled histogram series missing")
	}
	idx := strings.Index(text, `problem="orders"`)
	if !strings.Contains(text[idx:], `# {trace_id="aaaabbbbccccddddaaaabbbbccccdddd"}`) {
		t.Fatal("labelled bucket exemplar missing")
	}

	// The classic exposition is unchanged by exemplars: still valid
	// 0.0.4, no exemplar syntax.
	prom := m.PrometheusText()
	if err := ValidatePrometheusText([]byte(prom)); err != nil {
		t.Fatalf("Prometheus exposition rejected: %v", err)
	}
	if strings.Contains(prom, "# {") {
		t.Fatal("exemplar syntax leaked into the Prometheus 0.0.4 exposition")
	}
}

func TestOpenMetricsNilMetrics(t *testing.T) {
	var m *Metrics
	text := m.OpenMetricsText()
	if err := ValidateOpenMetricsText([]byte(text)); err != nil {
		t.Fatalf("nil-Metrics OpenMetrics exposition rejected: %v", err)
	}
	if !strings.Contains(text, "relcomplete_valuations_enumerated_total 0\n") {
		t.Fatal("nil exposition missing the all-zero counter inventory")
	}
}

func TestWantsOpenMetrics(t *testing.T) {
	cases := []struct {
		accept, format string
		want           bool
	}{
		{"", "", false},
		{"text/plain", "", false},
		{"application/openmetrics-text", "", true},
		{"application/openmetrics-text; version=1.0.0; charset=utf-8", "", true},
		{"text/plain;q=0.5, application/openmetrics-text;q=0.9", "", true},
		{"", "openmetrics", true},
		{"", "prometheus", false},
	}
	for _, c := range cases {
		if got := WantsOpenMetrics(c.accept, c.format); got != c.want {
			t.Errorf("WantsOpenMetrics(%q, %q) = %v, want %v", c.accept, c.format, got, c.want)
		}
	}
}

func TestOpenMetricsValidatorRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{
			"missing EOF",
			"# TYPE relcomplete_x counter\nrelcomplete_x_total 1\n",
			"# EOF",
		},
		{
			"content after EOF",
			"# EOF\nrelcomplete_x_total 1\n",
			"after # EOF",
		},
		{
			"bare counter sample",
			"# TYPE relcomplete_x counter\nrelcomplete_x 1\n# EOF\n",
			"_total",
		},
		{
			"exemplar on a gauge",
			"# TYPE relcomplete_g gauge\nrelcomplete_g 1 # {trace_id=\"ab\"} 1\n# EOF\n",
			"exemplar",
		},
		{
			"exemplar on _sum",
			"# TYPE relcomplete_h histogram\nrelcomplete_h_bucket{le=\"+Inf\"} 1\nrelcomplete_h_sum 1 # {trace_id=\"ab\"} 1\nrelcomplete_h_count 1\n# EOF\n",
			"exemplar",
		},
		{
			"oversized exemplar label set",
			"# TYPE relcomplete_h histogram\nrelcomplete_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"" +
				strings.Repeat("a", 130) + "\"} 1\nrelcomplete_h_sum 1\nrelcomplete_h_count 1\n# EOF\n",
			"128",
		},
		{
			"malformed exemplar labels",
			"# TYPE relcomplete_h histogram\nrelcomplete_h_bucket{le=\"+Inf\"} 1 # {trace_id=} 1\n# EOF\n",
			"exemplar",
		},
	}
	for _, c := range cases {
		err := ValidateOpenMetricsText([]byte(c.doc))
		if err == nil {
			t.Errorf("%s: validator accepted\n%s", c.name, c.doc)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}

	// The Prometheus validator must reject exemplar syntax outright —
	// the 0.0.4 format has none.
	err := ValidatePrometheusText([]byte(
		"# TYPE relcomplete_h histogram\nrelcomplete_h_bucket{le=\"+Inf\"} 1 # {trace_id=\"ab\"} 1\n"))
	if err == nil {
		t.Error("Prometheus validator accepted exemplar syntax")
	}
}

func TestSpanRecorderConcurrentDrops(t *testing.T) {
	rec := NewSpanRecorder(8)
	root := rec.Root("root", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				root.StartChild("child").End()
			}
		}()
	}
	wg.Wait()
	root.End()
	// 201 finished spans against a cap of 8: every span is either
	// retained or counted dropped, with no loss to races.
	if got := int64(len(rec.Spans())) + rec.Dropped(); got != 201 {
		t.Fatalf("retained+dropped = %d, want 201", got)
	}
	if rec.Dropped() != 201-8 {
		t.Fatalf("Dropped = %d, want %d", rec.Dropped(), 201-8)
	}
}
