package obs

// This file is the Prometheus text exposition (format version 0.0.4)
// for Metrics. The encoder is hand-rolled on the stdlib — no client
// library — and emits one stable, grep-able document: every counter
// (zero or not, so scrape series never appear and disappear), the
// per-phase wall-clock totals as labelled counters, and every
// histogram in the standard _bucket/_sum/_count shape.
// ValidatePrometheusText (promvalidate.go) is the in-repo grammar
// check CI runs against this output.

import (
	"fmt"
	"io"
	"strings"
)

// MetricPrefix namespaces every exposed metric.
const MetricPrefix = "relcomplete_"

// ContentTypePrometheus is the Content-Type of the text exposition
// format, for HTTP handlers serving WritePrometheus output.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the current counters, phase timings and
// histograms in the Prometheus text exposition format. A nil receiver
// renders the full (all-zero) counter inventory, so a scrape endpoint
// stays well-formed before solving starts.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}
	for c := Counter(0); c < numCounters; c++ {
		name := MetricPrefix + c.String() + "_total"
		fmt.Fprintf(bw, "# HELP %s %s\n", name, counterHelp[c])
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, m.Get(c))
		// Labelled attribution series share the family block: same
		// TYPE, samples contiguous after the unlabelled total.
		m.counterVec(c).write(bw, name)
	}

	// Phase timings: two labelled counter families, mirroring the
	// _sum/_count halves of a summary without quantiles.
	var phases []PhaseStat
	if m != nil {
		phases = m.Snapshot().Phases // sorted by name
	}
	secs := MetricPrefix + "phase_seconds_total"
	fmt.Fprintf(bw, "# HELP %s accumulated wall time per solver phase\n", secs)
	fmt.Fprintf(bw, "# TYPE %s counter\n", secs)
	for _, ph := range phases {
		fmt.Fprintf(bw, "%s{phase=%q} %s\n", secs, ph.Name, formatBound(ph.Ms/1e3))
	}
	calls := MetricPrefix + "phase_calls_total"
	fmt.Fprintf(bw, "# HELP %s calls per solver phase\n", calls)
	fmt.Fprintf(bw, "# TYPE %s counter\n", calls)
	for _, ph := range phases {
		fmt.Fprintf(bw, "%s{phase=%q} %d\n", calls, ph.Name, ph.Count)
	}

	for h := Histo(0); h < numHistos; h++ {
		d := &histoDefs[h]
		name := MetricPrefix + d.name
		fmt.Fprintf(bw, "# HELP %s %s\n", name, d.help)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		st := histoExposition(m, h)
		for _, b := range st.Buckets {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, b.LE, b.Count)
		}
		fmt.Fprintf(bw, "%s_sum %s\n", name, formatBound(st.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, st.Count)
		m.histoVec(h).write(bw, name)
	}

	writeRuntimeGauges(bw)
	return bw.err
}

// PrometheusText is WritePrometheus into a string.
func (m *Metrics) PrometheusText() string {
	var b strings.Builder
	m.WritePrometheus(&b)
	return b.String()
}

// histoExposition is histoStat without the emptiness filter: scrape
// output exposes every histogram, observed or not.
func histoExposition(m *Metrics, h Histo) HistogramStat {
	if m != nil {
		st, _ := m.histoStat(h)
		return st
	}
	d := &histoDefs[h]
	st := HistogramStat{Name: d.name}
	for i := 0; i <= len(d.bounds); i++ {
		le := "+Inf"
		if i < len(d.bounds) {
			le = formatBound(float64(d.bounds[i]) / d.div)
		}
		st.Buckets = append(st.Buckets, HistogramBucket{LE: le})
	}
	return st
}

// counterHelp carries the HELP text per counter, kept alongside the
// name table so the round-trip test catches a counter added without
// documentation.
var counterHelp = [numCounters]string{
	ValuationsEnumerated:  "total valuations of c-table variables tried",
	ModelsChecked:         "candidate models tested against the CCs",
	ModelsAdmitted:        "candidates that satisfied every CC",
	ExtensionsTested:      "candidate extensions tested (RCDP/MINP searches)",
	CounterexamplesFound:  "witnesses of relative incompleteness found",
	CCChecks:              "containment-constraint evaluations",
	CCViolations:          "CC evaluations that failed",
	BudgetErrors:          "searches aborted by a budget cap",
	PlanCompilations:      "query plans compiled",
	PlanCacheHits:         "plan reuses from a problem- or CC-level cache",
	PlanRuns:              "executions of a compiled plan",
	RowsProbed:            "rows fetched by atom nodes (scan or index probe)",
	RowsEmitted:           "rows that survived an atom node's binding checks",
	ShortCircuits:         "first-witness short-circuits (Bool / exists / or)",
	NaiveEvaluations:      "evaluations through the naive (non-plan) evaluator",
	DerivedTuples:         "tuples derived by FP fixpoint evaluation",
	IndexBuilds:           "hash indexes built from scratch",
	IndexInserts:          "incremental index maintenance inserts",
	IndexProbes:           "LookupIndexed probes answered from an index",
	IndexProbeHits:        "probes that found at least one row",
	IndexProbeMisses:      "probes that found none",
	ValuesInterned:        "distinct values admitted into an interner",
	InternHits:            "intern calls answered by an existing id",
	RHSCacheHits:          "RHS answer-set reuses",
	RHSCacheMisses:        "RHS answer sets computed fresh",
	RHSCacheInvalidations: "cached RHS answer sets dropped as stale",
	SearchItems:           "items handed to search workers",
	SearchRacesResolved:   "hits discarded for a lower-index winner",
	SearchCancellations:   "early-stop signals issued",
	SearchCancelNs:        "total ns between stop signal and worker drain",
	DeadlineErrors:        "decisions aborted by context deadline or cancellation",
	ServerRequests:        "HTTP API requests received",
	ServerDecides:         "decide calls that reached a decider",
	ServerOverloads:       "decide requests rejected by admission control",
	ServerProblemsLoaded:  "problems loaded into the registry",
	ServerEvictions:       "problems evicted by the resident-bytes cap",
	WALAppends:            "registry mutations committed to the write-ahead log",
	WALReplayed:           "WAL records applied during recovery replay",
	SnapshotsWritten:      "registry snapshots written",
	Recoveries:            "successful snapshot+WAL recovery replays",
	RecoveryDiscards:      "torn or corrupt WAL tail records discarded at recovery",
	BreakerOpens:          "per-tenant circuit breakers tripped open",
	BreakerShortCircuits:  "decide requests answered 503 by an open breaker",
	RateLimited:           "decide requests rejected by a per-tenant token bucket",
	ShedTotal:             "decide requests shed by queue-delay overload control",
}

// errWriter latches the first write error so the exposition loop stays
// unconditional.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return len(p), nil
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
		return len(p), nil
	}
	return n, nil
}
