package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Event is one structured entry in a decision trace. Kind is a stable
// slug ("model.candidate", "cc.violation", "counterexample", ...);
// Fields carry the event's key/value payload in insertion order.
type Event struct {
	Time   time.Duration // elapsed since the tracer started
	Depth  int           // search-tree depth, for indentation
	Kind   string
	Fields []Field
}

// Field is one key/value pair of an Event.
type Field struct {
	Key   string
	Value string
}

// F builds a Field, formatting the value with %v.
func F(key string, value any) Field {
	return Field{Key: key, Value: fmt.Sprint(value)}
}

// Sink consumes trace events. Emit is called under the tracer's lock,
// so implementations need not synchronise among themselves.
type Sink interface {
	Emit(Event)
}

// Tracer serialises decision-trace events to a Sink. A nil *Tracer is
// inert, and every method nil-checks its receiver, so instrumented
// code traces unconditionally. Enabled() lets hot paths skip building
// expensive field payloads when no one is listening; Verbose()
// additionally gates the diagnosis-only re-derivations (naming the
// violated CC) that a flight-recorder tracer must not pay for.
type Tracer struct {
	mu      sync.Mutex
	sink    Sink
	start   time.Time
	depth   int
	verbose bool
}

// NewTracer returns a verbose tracer writing to sink (nil sink → nil
// tracer): the full diagnostic trace, including the re-derived detail
// events guarded by Verbose().
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, start: time.Now(), verbose: true}
}

// NewFlightTracer returns a non-verbose tracer for the always-on
// flight recorder: events flow to sink (typically a RingSink), but
// Verbose() stays false, so instrumented code skips the expensive
// diagnosis-only work (e.g. re-checking CCs constraint by constraint
// to name a violation).
func NewFlightTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, start: time.Now()}
}

// Enabled reports whether events will reach a sink. Use it to guard
// field construction that allocates:
//
//	if tr.Enabled() {
//	    tr.Emit("model.candidate", obs.F("valuation", mu))
//	}
func (t *Tracer) Enabled() bool { return t != nil }

// Verbose reports whether the tracer wants diagnosis-only detail that
// requires extra computation to produce (beyond formatting). False for
// flight-recorder tracers, which must stay cheap enough to leave on.
func (t *Tracer) Verbose() bool { return t != nil && t.verbose }

// Emit records one event at the tracer's current depth.
func (t *Tracer) Emit(kind string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev := Event{
		Time:   time.Since(t.start),
		Depth:  t.depth,
		Kind:   kind,
		Fields: fields,
	}
	t.sink.Emit(ev)
	t.mu.Unlock()
}

// Push emits an event and indents subsequent events one level; the
// returned function pops the level. Used to render the search tree.
func (t *Tracer) Push(kind string, fields ...Field) func() {
	if t == nil {
		return func() {}
	}
	t.Emit(kind, fields...)
	t.mu.Lock()
	t.depth++
	t.mu.Unlock()
	return func() {
		t.mu.Lock()
		if t.depth > 0 {
			t.depth--
		}
		t.mu.Unlock()
	}
}

// TextSink renders events as indented human-readable lines:
//
//	[  12.3ms]   cc.violation cc=onlyStocked violations=1
type TextSink struct {
	w io.Writer
}

// NewTextSink returns a sink writing one line per event to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit implements Sink.
func (s *TextSink) Emit(ev Event) {
	var b strings.Builder
	fmt.Fprintf(&b, "[%8.1fms] ", float64(ev.Time.Microseconds())/1000)
	b.WriteString(strings.Repeat("  ", ev.Depth))
	b.WriteString(ev.Kind)
	for _, f := range ev.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		if strings.ContainsAny(f.Value, " \t\n") {
			fmt.Fprintf(&b, "%q", f.Value)
		} else {
			b.WriteString(f.Value)
		}
	}
	b.WriteByte('\n')
	io.WriteString(s.w, b.String())
}

// DefaultCollectCap is the buffered-event cap a zero-valued
// CollectSink applies. Long traced runs emit one event per candidate
// model, so an unbounded collector is a memory leak by construction;
// callers that genuinely need more raise Cap explicitly.
const DefaultCollectCap = 4096

// CollectSink buffers events in memory, up to a cap; used by tests and
// short diagnostic captures. Events beyond the cap are counted in
// Dropped() and discarded (the prefix is kept — for a "last N" window
// use RingSink instead).
type CollectSink struct {
	mu      sync.Mutex
	Events  []Event
	dropped int64

	// Cap bounds len(Events); 0 means DefaultCollectCap.
	Cap int
}

// Emit implements Sink.
func (s *CollectSink) Emit(ev Event) {
	s.mu.Lock()
	limit := s.Cap
	if limit <= 0 {
		limit = DefaultCollectCap
	}
	if len(s.Events) >= limit {
		s.dropped++
	} else {
		s.Events = append(s.Events, ev)
	}
	s.mu.Unlock()
}

// Dropped returns the number of events discarded because the cap was
// reached.
func (s *CollectSink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Kinds returns the kinds of all buffered events, in order.
func (s *CollectSink) Kinds() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.Events))
	for i, ev := range s.Events {
		out[i] = ev.Kind
	}
	return out
}
