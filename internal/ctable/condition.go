// Package ctable implements conditional tables (c-tables) and
// c-instances as in the paper (Section 2.2, after Imieliński & Lipski
// and Grahne): tableaux whose entries are constants or variables, with
// a local condition ξ(t) per row built from x=y, x≠y, x=c, x≠c under
// conjunction. A valuation µ maps variables to constants; µ(T) keeps
// the rows whose condition evaluates to true, yielding a ground
// instance. Mod(T, Dm, V) — the partially closed ground instances a
// c-instance represents — is computed in internal/adom and
// internal/core, where the paper's active-domain construction lives.
package ctable

import (
	"fmt"
	"sort"
	"strings"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Valuation maps c-table variables to constants.
type Valuation map[string]relation.Value

// Clone returns an independent copy.
func (v Valuation) Clone() Valuation {
	c := make(Valuation, len(v))
	for k, val := range v {
		c[k] = val
	}
	return c
}

// String renders the valuation deterministically.
func (v Valuation) String() string {
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s↦%s", k, v[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// CondAtom is one conjunct of a local condition: term op term, where
// each term is a variable or a constant.
type CondAtom struct {
	Op   query.CmpOp
	L, R query.Term
}

// String renders the atom.
func (a CondAtom) String() string { return fmt.Sprintf("%s %s %s", a.L, a.Op, a.R) }

// Condition is a conjunction of condition atoms; the empty condition is
// true (the paper's (T, true)).
type Condition []CondAtom

// True is the empty (always true) condition.
var True = Condition(nil)

// CEq builds the condition atom l = r.
func CEq(l, r query.Term) CondAtom { return CondAtom{Op: query.Eq, L: l, R: r} }

// CNeq builds the condition atom l ≠ r.
func CNeq(l, r query.Term) CondAtom { return CondAtom{Op: query.Neq, L: l, R: r} }

// Cond builds a condition from atoms.
func Cond(atoms ...CondAtom) Condition { return Condition(atoms) }

// Eval evaluates the condition under a valuation that must cover every
// variable of the condition.
func (c Condition) Eval(v Valuation) (bool, error) {
	for _, a := range c {
		lv, ok := resolve(a.L, v)
		if !ok {
			return false, fmt.Errorf("ctable: condition variable %s unassigned", a.L.Name)
		}
		rv, ok := resolve(a.R, v)
		if !ok {
			return false, fmt.Errorf("ctable: condition variable %s unassigned", a.R.Name)
		}
		if (a.Op == query.Eq) != (lv == rv) {
			return false, nil
		}
	}
	return true, nil
}

func resolve(t query.Term, v Valuation) (relation.Value, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	val, ok := v[t.Name]
	return val, ok
}

// Vars returns the condition's variables, sorted.
func (c Condition) Vars() []string {
	seen := map[string]bool{}
	for _, a := range c {
		if a.L.IsVar {
			seen[a.L.Name] = true
		}
		if a.R.IsVar {
			seen[a.R.Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Constants collects the condition's constants into dst.
func (c Condition) Constants(dst *relation.ValueSet) *relation.ValueSet {
	if dst == nil {
		dst = relation.NewValueSet()
	}
	for _, a := range c {
		if !a.L.IsVar {
			dst.Add(a.L.Const)
		}
		if !a.R.IsVar {
			dst.Add(a.R.Const)
		}
	}
	return dst
}

// And returns the conjunction of two conditions.
func (c Condition) And(other Condition) Condition {
	out := make(Condition, 0, len(c)+len(other))
	out = append(out, c...)
	out = append(out, other...)
	return out
}

// String renders the condition; the empty condition prints as "true".
func (c Condition) String() string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Satisfiable decides whether some valuation satisfies the conjunction,
// with variables restricted by the optional finite domains in varDom.
// The procedure is exact over infinite domains (the paper's default
// setting): it unions equality classes, rejects classes holding two
// distinct constants, and rejects inequalities within a class. For
// finite domains it additionally intersects the domains of a class and
// subtracts constants excluded by inequalities; var-var inequalities
// between tiny finite domains (a graph-colouring situation) are treated
// conservatively, so Satisfiable may answer true where exhaustive
// valuation search (internal/adom) would answer false — never the
// reverse.
func (c Condition) Satisfiable(varDom map[string]*relation.Domain) bool {
	// Union-find over variables and constants.
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	key := func(t query.Term) string {
		if t.IsVar {
			return "v:" + t.Name
		}
		return "c:" + string(t.Const)
	}
	for _, a := range c {
		if a.Op == query.Eq {
			union(key(a.L), key(a.R))
		} else {
			// Make sure inequality endpoints are registered.
			find(key(a.L))
			find(key(a.R))
		}
	}
	// Each class may contain at most one constant.
	classConst := map[string]relation.Value{}
	for node := range parent {
		if strings.HasPrefix(node, "c:") {
			r := find(node)
			v := relation.Value(node[2:])
			if prev, ok := classConst[r]; ok && prev != v {
				return false
			}
			classConst[r] = v
		}
	}
	// Inequalities must not connect equal classes or equal constants.
	excluded := map[string]map[relation.Value]bool{} // class -> excluded constants
	for _, a := range c {
		if a.Op != query.Neq {
			continue
		}
		lr, rr := find(key(a.L)), find(key(a.R))
		if lr == rr {
			return false
		}
		lc, lok := classConst[lr]
		rc, rok := classConst[rr]
		if lok && rok && lc == rc {
			return false
		}
		// Track constants excluded from a class for the finite-domain check.
		if rok && !lok {
			addExcluded(excluded, lr, rc)
		}
		if lok && !rok {
			addExcluded(excluded, rr, lc)
		}
	}
	// Finite domains: intersect the finite domains of every variable of
	// a class; the intersection minus excluded constants must be
	// non-empty, and a pinned constant must be a member.
	classDom := map[string]*relation.ValueSet{} // class -> remaining members (nil = unrestricted)
	for node := range parent {
		if !strings.HasPrefix(node, "v:") {
			continue
		}
		dom := varDom[node[2:]]
		if !dom.IsFinite() {
			continue
		}
		r := find(node)
		if cur, ok := classDom[r]; !ok {
			classDom[r] = relation.NewValueSet(dom.Values()...)
		} else {
			next := relation.NewValueSet()
			for _, v := range cur.Values() {
				if dom.Contains(v) {
					next.Add(v)
				}
			}
			classDom[r] = next
		}
	}
	for r, dom := range classDom {
		if cst, ok := classConst[r]; ok {
			if !dom.Contains(cst) {
				return false
			}
			continue
		}
		avail := 0
		for _, v := range dom.Values() {
			if !excluded[r][v] {
				avail++
			}
		}
		if avail == 0 {
			return false
		}
	}
	return true
}

func addExcluded(m map[string]map[relation.Value]bool, class string, v relation.Value) {
	if m[class] == nil {
		m[class] = map[relation.Value]bool{}
	}
	m[class][v] = true
}
