package ctable

import (
	"fmt"
	"sort"
	"strings"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Row is one tableau row: a term per attribute plus the local condition
// ξ(t).
type Row struct {
	Terms []query.Term
	Cond  Condition
}

// String renders the row.
func (r Row) String() string {
	parts := make([]string, len(r.Terms))
	for i, t := range r.Terms {
		parts[i] = t.String()
	}
	s := "(" + strings.Join(parts, ", ") + ")"
	if len(r.Cond) > 0 {
		s += " [" + r.Cond.String() + "]"
	}
	return s
}

// CTable is a c-table (T, ξ) of one relation schema.
//
// The paper requires the variable namespaces var(A) of distinct
// attributes to be disjoint. We enforce the semantic content of that
// requirement: every variable is used at a single domain — its first
// occurrence fixes the domain, and later occurrences must carry a
// compatible one (identical finite domain, or both infinite).
type CTable struct {
	schema *relation.Schema
	rows   []Row
	varDom map[string]*relation.Domain
}

// NewCTable returns an empty c-table of the schema.
func NewCTable(schema *relation.Schema) *CTable {
	return &CTable{schema: schema, varDom: map[string]*relation.Domain{}}
}

// Schema returns the underlying relation schema.
func (t *CTable) Schema() *relation.Schema { return t.schema }

// Len returns the number of rows.
func (t *CTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.rows)
}

// Rows returns the rows in insertion order; callers must not mutate.
func (t *CTable) Rows() []Row {
	if t == nil {
		return nil
	}
	return t.rows
}

// AddRow validates and appends a row.
func (t *CTable) AddRow(r Row) error {
	if len(r.Terms) != t.schema.Arity() {
		return fmt.Errorf("ctable %s: row has %d terms, want %d", t.schema.Name, len(r.Terms), t.schema.Arity())
	}
	for i, term := range r.Terms {
		dom := t.schema.DomainAt(i)
		if term.IsVar {
			if err := t.bindVarDomain(term.Name, dom); err != nil {
				return err
			}
		} else if !dom.Contains(term.Const) {
			return fmt.Errorf("ctable %s: constant %s outside domain of attribute %s",
				t.schema.Name, term.Const, t.schema.Attrs[i].Name)
		}
	}
	// Condition variables must be table variables of known domains or
	// fresh; fresh condition-only variables are bound to an infinite
	// domain (they are compared, never placed in a column).
	for _, v := range r.Cond.Vars() {
		if _, ok := t.varDom[v]; !ok {
			t.varDom[v] = relation.Infinite("cond." + v)
		}
	}
	t.rows = append(t.rows, Row{Terms: append([]query.Term(nil), r.Terms...), Cond: append(Condition(nil), r.Cond...)})
	return nil
}

func (t *CTable) bindVarDomain(name string, dom *relation.Domain) error {
	prev, ok := t.varDom[name]
	if !ok {
		t.varDom[name] = dom
		return nil
	}
	if compatibleDomains(prev, dom) {
		return nil
	}
	return fmt.Errorf("ctable %s: variable %s used at incompatible domains %s and %s (the paper's var(A) namespaces are disjoint)",
		t.schema.Name, name, prev, dom)
}

func compatibleDomains(a, b *relation.Domain) bool {
	if !a.IsFinite() && !b.IsFinite() {
		return true
	}
	if a.IsFinite() != b.IsFinite() {
		return false
	}
	av, bv := a.Values(), b.Values()
	if len(av) != len(bv) {
		return false
	}
	for i := range av {
		if av[i] != bv[i] {
			return false
		}
	}
	return true
}

// MustAddRow is AddRow that panics on error.
func (t *CTable) MustAddRow(r Row) {
	if err := t.AddRow(r); err != nil {
		panic(err)
	}
}

// VarDomains returns the domain bound to each variable.
func (t *CTable) VarDomains() map[string]*relation.Domain {
	out := make(map[string]*relation.Domain, len(t.varDom))
	for k, v := range t.varDom {
		out[k] = v
	}
	return out
}

// Vars returns the table's variables, sorted.
func (t *CTable) Vars() []string {
	out := make([]string, 0, len(t.varDom))
	for v := range t.varDom {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Constants collects the table's constants (terms and conditions).
func (t *CTable) Constants(dst *relation.ValueSet) *relation.ValueSet {
	if dst == nil {
		dst = relation.NewValueSet()
	}
	if t == nil {
		return dst
	}
	for _, r := range t.rows {
		for _, term := range r.Terms {
			if !term.IsVar {
				dst.Add(term.Const)
			}
		}
		r.Cond.Constants(dst)
	}
	return dst
}

// IsGround reports whether the table has no variables and no
// conditions.
func (t *CTable) IsGround() bool {
	for _, r := range t.rows {
		if len(r.Cond) > 0 {
			return false
		}
		for _, term := range r.Terms {
			if term.IsVar {
				return false
			}
		}
	}
	return true
}

// Apply computes µ(T): rows whose condition holds under µ, with
// variables substituted. µ must assign every variable it touches.
func (t *CTable) Apply(mu Valuation) (*relation.Instance, error) {
	return t.applyWith(mu, nil)
}

// applyWith is Apply storing the result in an instance sharing it; a
// nil interner falls back to the process-default storage mode.
func (t *CTable) applyWith(mu Valuation, it *relation.Interner) (*relation.Instance, error) {
	var out *relation.Instance
	if it != nil {
		out = relation.NewInternedInstance(t.schema, it)
	} else {
		out = relation.NewInstance(t.schema)
	}
	for _, r := range t.rows {
		keep, err := r.Cond.Eval(mu)
		if err != nil {
			return nil, err
		}
		if !keep {
			continue
		}
		tup := make(relation.Tuple, len(r.Terms))
		for i, term := range r.Terms {
			if term.IsVar {
				v, ok := mu[term.Name]
				if !ok {
					return nil, fmt.Errorf("ctable %s: variable %s unassigned", t.schema.Name, term.Name)
				}
				tup[i] = v
			} else {
				tup[i] = term.Const
			}
		}
		if err := out.Insert(tup); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WithoutRow returns a copy of the table with row index i removed.
func (t *CTable) WithoutRow(i int) *CTable {
	c := NewCTable(t.schema)
	for j, r := range t.rows {
		if j != i {
			c.MustAddRow(r)
		}
	}
	return c
}

// Clone returns an independent copy.
func (t *CTable) Clone() *CTable {
	c := NewCTable(t.schema)
	for _, r := range t.rows {
		c.MustAddRow(r)
	}
	return c
}

// String renders the table.
func (t *CTable) String() string {
	parts := make([]string, len(t.rows))
	for i, r := range t.rows {
		parts[i] = r.String()
	}
	return t.schema.Name + "{" + strings.Join(parts, ", ") + "}"
}

// FromInstance lifts a ground instance to a (ground) c-table.
func FromInstance(in *relation.Instance) *CTable {
	t := NewCTable(in.Schema())
	for _, tup := range in.Tuples() {
		terms := make([]query.Term, len(tup))
		for i, v := range tup {
			terms[i] = query.C(v)
		}
		t.MustAddRow(Row{Terms: terms})
	}
	return t
}
