package ctable

import (
	"strings"
	"testing"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func TestConditionEval(t *testing.T) {
	c := Cond(CEq(query.V("x"), query.C("1")), CNeq(query.V("y"), query.V("x")))
	ok, err := c.Eval(Valuation{"x": "1", "y": "2"})
	if err != nil || !ok {
		t.Fatalf("should hold: %v %v", ok, err)
	}
	ok, _ = c.Eval(Valuation{"x": "1", "y": "1"})
	if ok {
		t.Fatal("y != x violated")
	}
	ok, _ = c.Eval(Valuation{"x": "2", "y": "3"})
	if ok {
		t.Fatal("x = 1 violated")
	}
	if _, err := c.Eval(Valuation{"x": "1"}); err == nil {
		t.Fatal("unassigned variable should error")
	}
	// Empty condition is true.
	ok, err = True.Eval(Valuation{})
	if err != nil || !ok {
		t.Fatal("empty condition should be true")
	}
}

func TestConditionVarsConstantsString(t *testing.T) {
	c := Cond(CEq(query.V("b"), query.C("1")), CNeq(query.V("a"), query.C("2")))
	if got := c.Vars(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Vars = %v", got)
	}
	cs := c.Constants(nil)
	if !cs.Contains("1") || !cs.Contains("2") {
		t.Fatalf("Constants = %v", cs)
	}
	if True.String() != "true" {
		t.Fatal("empty condition should print true")
	}
	if !strings.Contains(c.String(), "∧") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestConditionAnd(t *testing.T) {
	a := Cond(CEq(query.V("x"), query.C("1")))
	b := Cond(CNeq(query.V("y"), query.C("2")))
	ab := a.And(b)
	if len(ab) != 2 || len(a) != 1 || len(b) != 1 {
		t.Fatal("And wrong or mutated operands")
	}
}

func TestConditionSatisfiable(t *testing.T) {
	inf := map[string]*relation.Domain{}
	cases := []struct {
		cond Condition
		want bool
	}{
		{True, true},
		{Cond(CEq(query.V("x"), query.C("1"))), true},
		{Cond(CEq(query.V("x"), query.C("1")), CEq(query.V("x"), query.C("2"))), false},
		{Cond(CEq(query.V("x"), query.V("y")), CNeq(query.V("x"), query.V("y"))), false},
		{Cond(CNeq(query.V("x"), query.V("y"))), true},
		{Cond(CEq(query.C("1"), query.C("1"))), true},
		{Cond(CNeq(query.C("1"), query.C("1"))), false},
		{Cond(CEq(query.C("1"), query.C("2"))), false},
		{Cond(CEq(query.V("x"), query.V("y")), CEq(query.V("y"), query.C("3")), CNeq(query.V("x"), query.C("3"))), false},
	}
	for i, c := range cases {
		if got := c.cond.Satisfiable(inf); got != c.want {
			t.Errorf("case %d (%s): Satisfiable = %v, want %v", i, c.cond, got, c.want)
		}
	}
}

func TestConditionSatisfiableFiniteDomains(t *testing.T) {
	boolDom := map[string]*relation.Domain{"x": relation.Bool(), "y": relation.Bool()}
	// x != 0 and x != 1 exhausts the Boolean domain.
	c := Cond(CNeq(query.V("x"), query.C("0")), CNeq(query.V("x"), query.C("1")))
	if c.Satisfiable(boolDom) {
		t.Fatal("Boolean domain exhausted; should be unsatisfiable")
	}
	// x = 2 outside the Boolean domain.
	c = Cond(CEq(query.V("x"), query.C("2")))
	if c.Satisfiable(boolDom) {
		t.Fatal("constant outside finite domain")
	}
	// x = y with x Boolean, y over {2,3}: intersection empty.
	mixed := map[string]*relation.Domain{"x": relation.Bool(), "y": relation.Finite("d", "2", "3")}
	c = Cond(CEq(query.V("x"), query.V("y")))
	if c.Satisfiable(mixed) {
		t.Fatal("disjoint finite domains in one class")
	}
	// Still satisfiable with room left.
	c = Cond(CNeq(query.V("x"), query.C("0")))
	if !c.Satisfiable(boolDom) {
		t.Fatal("x = 1 remains")
	}
}

func patientSchema() *relation.Schema {
	return relation.MustSchema("P",
		relation.Attr("name", nil), relation.Attr("yob", nil))
}

func TestCTableAddRowValidation(t *testing.T) {
	tb := NewCTable(patientSchema())
	if err := tb.AddRow(Row{Terms: []query.Term{query.V("x")}}); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	boolSchema := relation.MustSchema("B", relation.Attr("v", relation.Bool()))
	tb2 := NewCTable(boolSchema)
	if err := tb2.AddRow(Row{Terms: []query.Term{query.C("7")}}); err == nil {
		t.Fatal("out-of-domain constant should fail")
	}
}

func TestCTableVarDomainDisjointness(t *testing.T) {
	sch := relation.MustSchema("R",
		relation.Attr("A", relation.Bool()), relation.Attr("B", nil))
	tb := NewCTable(sch)
	tb.MustAddRow(Row{Terms: []query.Term{query.V("x"), query.V("y")}})
	// Re-using x in the infinite-domain column violates var(A)∩var(B)=∅.
	err := tb.AddRow(Row{Terms: []query.Term{query.V("y"), query.V("x")}})
	if err == nil {
		t.Fatal("incompatible domain reuse should fail")
	}
	// Re-using x in another Boolean column elsewhere is fine.
	sch2 := relation.MustSchema("S", relation.Attr("C", relation.Bool()))
	tb2 := NewCTable(sch2)
	if err := tb2.AddRow(Row{Terms: []query.Term{query.V("x")}}); err != nil {
		t.Fatal(err)
	}
}

func TestCTableApply(t *testing.T) {
	tb := NewCTable(patientSchema())
	tb.MustAddRow(Row{Terms: []query.Term{query.C("john"), query.C("2000")}})
	tb.MustAddRow(Row{
		Terms: []query.Term{query.V("x"), query.V("z")},
		Cond:  Cond(CNeq(query.V("z"), query.C("2001"))),
	})

	inst, err := tb.Apply(Valuation{"x": "bob", "z": "2000"})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len() != 2 || !inst.Contains(relation.T("bob", "2000")) {
		t.Fatalf("Apply = %v", inst)
	}

	// Condition filters the row out.
	inst, err = tb.Apply(Valuation{"x": "bob", "z": "2001"})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len() != 1 {
		t.Fatalf("conditioned row should be dropped: %v", inst)
	}

	if _, err := tb.Apply(Valuation{"x": "bob"}); err == nil {
		t.Fatal("missing assignment should error")
	}
}

func TestCTableApplyMergesDuplicates(t *testing.T) {
	tb := NewCTable(patientSchema())
	tb.MustAddRow(Row{Terms: []query.Term{query.V("x"), query.C("2000")}})
	tb.MustAddRow(Row{Terms: []query.Term{query.C("john"), query.C("2000")}})
	inst, err := tb.Apply(Valuation{"x": "john"})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len() != 1 {
		t.Fatalf("valuation collapsing rows must merge: %v", inst)
	}
}

func TestCTableAccessors(t *testing.T) {
	tb := NewCTable(patientSchema())
	tb.MustAddRow(Row{
		Terms: []query.Term{query.V("x"), query.C("2000")},
		Cond:  Cond(CNeq(query.V("x"), query.C("eve")), CNeq(query.V("w"), query.C("0"))),
	})
	if got := tb.Vars(); len(got) != 2 || got[0] != "w" || got[1] != "x" {
		t.Fatalf("Vars = %v", got)
	}
	cs := tb.Constants(nil)
	for _, want := range []relation.Value{"2000", "eve", "0"} {
		if !cs.Contains(want) {
			t.Fatalf("Constants missing %s: %v", want, cs)
		}
	}
	if tb.IsGround() {
		t.Fatal("table with variables is not ground")
	}
	if tb.Len() != 1 {
		t.Fatal("Len wrong")
	}
	if !strings.Contains(tb.String(), "[") {
		t.Fatalf("String should show condition: %q", tb.String())
	}
}

func TestCTableWithoutRowAndClone(t *testing.T) {
	tb := NewCTable(patientSchema())
	tb.MustAddRow(Row{Terms: []query.Term{query.C("a"), query.C("1")}})
	tb.MustAddRow(Row{Terms: []query.Term{query.C("b"), query.C("2")}})
	less := tb.WithoutRow(0)
	if less.Len() != 1 || tb.Len() != 2 {
		t.Fatal("WithoutRow wrong or mutated receiver")
	}
	cl := tb.Clone()
	cl.MustAddRow(Row{Terms: []query.Term{query.C("c"), query.C("3")}})
	if tb.Len() != 2 {
		t.Fatal("Clone shares storage")
	}
}

func TestFromInstanceRoundTrip(t *testing.T) {
	in := relation.MustInstance(patientSchema(), relation.T("a", "1"), relation.T("b", "2"))
	tb := FromInstance(in)
	if !tb.IsGround() || tb.Len() != 2 {
		t.Fatal("FromInstance wrong")
	}
	back, err := tb.Apply(Valuation{})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(in) {
		t.Fatal("round trip lost tuples")
	}
}

func TestValuationCloneAndString(t *testing.T) {
	v := Valuation{"b": "2", "a": "1"}
	c := v.Clone()
	c["a"] = "9"
	if v["a"] != "1" {
		t.Fatal("Clone shares storage")
	}
	if v.String() != "{a↦1, b↦2}" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestCTableSchemaAccessor(t *testing.T) {
	sch := patientSchema()
	tb := NewCTable(sch)
	if tb.Schema() != sch {
		t.Fatal("Schema accessor wrong")
	}
	var nilT *CTable
	if nilT.Len() != 0 || nilT.Rows() != nil {
		t.Fatal("nil CTable reads should be empty")
	}
}

func TestCTableVarDomainsAccessor(t *testing.T) {
	sch := relation.MustSchema("B", relation.Attr("v", relation.Bool()))
	tb := NewCTable(sch)
	tb.MustAddRow(Row{Terms: []query.Term{query.V("x")}})
	doms := tb.VarDomains()
	if !doms["x"].IsFinite() {
		t.Fatal("VarDomains lost the Boolean binding")
	}
}
