package ctable

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"relcomplete/internal/relation"
)

// CInstance is a c-instance T = (T1, ..., Tn): one c-table per relation
// of a database schema. Variables are shared across tables (a valuation
// is global), so the same variable may correlate values in different
// relations as long as its domains are compatible.
type CInstance struct {
	schema *relation.DBSchema
	tables map[string]*CTable

	// internOnce/intern lazily create the one interner shared by every
	// database Apply produces: the deciders call Apply once per
	// enumerated valuation (possibly from parallel workers), and all
	// those candidates draw on the same small set of constants, so
	// re-interning per candidate would dominate the enumeration. nil
	// after internOnce fires means Apply builds boxed databases (the
	// storage ablation was the process default at first use).
	internOnce sync.Once
	intern     *relation.Interner
}

// applyInterner returns the shared interner for Apply results, created
// on first use; nil selects boxed storage.
func (ci *CInstance) applyInterner() *relation.Interner {
	ci.internOnce.Do(func() {
		if !relation.DefaultBoxed() {
			ci.intern = relation.NewInterner()
		}
	})
	return ci.intern
}

// NewCInstance returns an empty c-instance of the schema.
func NewCInstance(schema *relation.DBSchema) *CInstance {
	ci := &CInstance{schema: schema, tables: make(map[string]*CTable, schema.Len())}
	for _, r := range schema.Relations() {
		ci.tables[r.Name] = NewCTable(r)
	}
	return ci
}

// Schema returns the database schema.
func (ci *CInstance) Schema() *relation.DBSchema { return ci.schema }

// Table returns the c-table of the named relation, or nil.
func (ci *CInstance) Table(name string) *CTable {
	if ci == nil {
		return nil
	}
	return ci.tables[name]
}

// AddRow appends a row to the named relation's c-table, checking
// cross-table domain compatibility of shared variables.
func (ci *CInstance) AddRow(rel string, r Row) error {
	t := ci.tables[rel]
	if t == nil {
		return fmt.Errorf("ctable: no relation %s", rel)
	}
	// Cross-table compatibility: the same variable must not be bound to
	// incompatible domains in two tables.
	for i, term := range r.Terms {
		if !term.IsVar {
			continue
		}
		dom := t.schema.DomainAt(i)
		for other, ot := range ci.tables {
			if other == rel {
				continue
			}
			if prev, ok := ot.varDom[term.Name]; ok && !compatibleDomains(prev, dom) {
				return fmt.Errorf("ctable: variable %s used at incompatible domains across %s and %s",
					term.Name, other, rel)
			}
		}
	}
	return t.AddRow(r)
}

// MustAddRow is AddRow that panics on error.
func (ci *CInstance) MustAddRow(rel string, r Row) {
	if err := ci.AddRow(rel, r); err != nil {
		panic(err)
	}
}

// Size returns the total number of rows.
func (ci *CInstance) Size() int {
	n := 0
	for _, r := range ci.schema.Relations() {
		n += ci.tables[r.Name].Len()
	}
	return n
}

// Vars returns all variables across tables, sorted.
func (ci *CInstance) Vars() []string {
	seen := map[string]bool{}
	for _, r := range ci.schema.Relations() {
		for _, v := range ci.tables[r.Name].Vars() {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// VarDomains returns the domain bound to each variable across tables.
func (ci *CInstance) VarDomains() map[string]*relation.Domain {
	out := map[string]*relation.Domain{}
	for _, r := range ci.schema.Relations() {
		for v, d := range ci.tables[r.Name].varDom {
			if prev, ok := out[v]; !ok || (!prev.IsFinite() && d.IsFinite()) {
				out[v] = d
			}
		}
	}
	return out
}

// Constants collects every constant of the c-instance.
func (ci *CInstance) Constants(dst *relation.ValueSet) *relation.ValueSet {
	if dst == nil {
		dst = relation.NewValueSet()
	}
	for _, r := range ci.schema.Relations() {
		ci.tables[r.Name].Constants(dst)
	}
	return dst
}

// IsGround reports whether no table has variables or conditions.
func (ci *CInstance) IsGround() bool {
	for _, r := range ci.schema.Relations() {
		if !ci.tables[r.Name].IsGround() {
			return false
		}
	}
	return true
}

// Apply computes µ(T) as a ground database. All databases returned by
// one CInstance share one interner (see applyInterner).
func (ci *CInstance) Apply(mu Valuation) (*relation.Database, error) {
	it := ci.applyInterner()
	db := relation.NewDatabaseWith(ci.schema, it)
	for _, r := range ci.schema.Relations() {
		inst, err := ci.tables[r.Name].applyWith(mu, it)
		if err != nil {
			return nil, err
		}
		db.MustSetRelation(inst)
	}
	return db, nil
}

// RowRef addresses one row of a c-instance.
type RowRef struct {
	Rel   string
	Index int
}

// AllRows lists row references in deterministic order.
func (ci *CInstance) AllRows() []RowRef {
	var out []RowRef
	for _, r := range ci.schema.Relations() {
		for i := 0; i < ci.tables[r.Name].Len(); i++ {
			out = append(out, RowRef{Rel: r.Name, Index: i})
		}
	}
	return out
}

// WithoutRow returns a copy of the c-instance with one row removed.
func (ci *CInstance) WithoutRow(ref RowRef) *CInstance {
	c := NewCInstance(ci.schema)
	for _, r := range ci.schema.Relations() {
		t := ci.tables[r.Name]
		for i, row := range t.Rows() {
			if r.Name == ref.Rel && i == ref.Index {
				continue
			}
			c.MustAddRow(r.Name, row)
		}
	}
	return c
}

// WithoutRows returns a copy with every row in refs removed (refs is a
// set keyed by relation and index).
func (ci *CInstance) WithoutRows(refs map[RowRef]bool) *CInstance {
	c := NewCInstance(ci.schema)
	for _, r := range ci.schema.Relations() {
		t := ci.tables[r.Name]
		for i, row := range t.Rows() {
			if refs[RowRef{Rel: r.Name, Index: i}] {
				continue
			}
			c.MustAddRow(r.Name, row)
		}
	}
	return c
}

// Clone returns an independent copy.
func (ci *CInstance) Clone() *CInstance {
	c := NewCInstance(ci.schema)
	for _, r := range ci.schema.Relations() {
		for _, row := range ci.tables[r.Name].Rows() {
			c.MustAddRow(r.Name, row)
		}
	}
	return c
}

// FromDatabase lifts a ground database to a ground c-instance.
func FromDatabase(db *relation.Database) *CInstance {
	ci := NewCInstance(db.Schema())
	for _, r := range db.Schema().Relations() {
		ci.tables[r.Name] = FromInstance(db.Relation(r.Name))
	}
	return ci
}

// String renders the c-instance deterministically.
func (ci *CInstance) String() string {
	parts := make([]string, 0, ci.schema.Len())
	for _, r := range ci.schema.Relations() {
		parts = append(parts, ci.tables[r.Name].String())
	}
	return strings.Join(parts, "; ")
}
