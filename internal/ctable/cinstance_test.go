package ctable

import (
	"testing"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func twoRelSchema() *relation.DBSchema {
	return relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("C", relation.Bool())),
	)
}

func TestCInstanceBasics(t *testing.T) {
	ci := NewCInstance(twoRelSchema())
	ci.MustAddRow("R", Row{Terms: []query.Term{query.V("x"), query.C("1")}})
	ci.MustAddRow("S", Row{Terms: []query.Term{query.V("b")}})
	if ci.Size() != 2 {
		t.Fatalf("Size = %d", ci.Size())
	}
	if got := ci.Vars(); len(got) != 2 || got[0] != "b" || got[1] != "x" {
		t.Fatalf("Vars = %v", got)
	}
	if ci.IsGround() {
		t.Fatal("has variables")
	}
	if err := ci.AddRow("nope", Row{}); err == nil {
		t.Fatal("unknown relation should fail")
	}
}

func TestCInstanceCrossTableDomainCheck(t *testing.T) {
	ci := NewCInstance(twoRelSchema())
	// b bound to Bool in S.
	ci.MustAddRow("S", Row{Terms: []query.Term{query.V("b")}})
	// Using b in R's infinite-domain column must fail.
	if err := ci.AddRow("R", Row{Terms: []query.Term{query.V("b"), query.C("1")}}); err == nil {
		t.Fatal("cross-table incompatible domain should fail")
	}
}

func TestCInstanceApply(t *testing.T) {
	ci := NewCInstance(twoRelSchema())
	ci.MustAddRow("R", Row{Terms: []query.Term{query.V("x"), query.C("1")}})
	ci.MustAddRow("S", Row{
		Terms: []query.Term{query.V("b")},
		Cond:  Cond(CNeq(query.V("b"), query.C("0"))),
	})
	db, err := ci.Apply(Valuation{"x": "k", "b": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if !db.Relation("R").Contains(relation.T("k", "1")) || !db.Relation("S").Contains(relation.T("1")) {
		t.Fatalf("Apply = %v", db)
	}
	db, err = ci.Apply(Valuation{"x": "k", "b": "0"})
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("S").Len() != 0 {
		t.Fatal("condition should drop the S row")
	}
}

func TestCInstanceSharedVariableCorrelates(t *testing.T) {
	sch := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil)),
		relation.MustSchema("U", relation.Attr("B", nil)),
	)
	ci := NewCInstance(sch)
	ci.MustAddRow("R", Row{Terms: []query.Term{query.V("x")}})
	ci.MustAddRow("U", Row{Terms: []query.Term{query.V("x")}})
	db, err := ci.Apply(Valuation{"x": "v"})
	if err != nil {
		t.Fatal(err)
	}
	if !db.Relation("R").Contains(relation.T("v")) || !db.Relation("U").Contains(relation.T("v")) {
		t.Fatal("shared variable must correlate across tables")
	}
}

func TestCInstanceRowOps(t *testing.T) {
	ci := NewCInstance(twoRelSchema())
	ci.MustAddRow("R", Row{Terms: []query.Term{query.C("a"), query.C("1")}})
	ci.MustAddRow("R", Row{Terms: []query.Term{query.C("b"), query.C("2")}})
	ci.MustAddRow("S", Row{Terms: []query.Term{query.C("0")}})

	refs := ci.AllRows()
	if len(refs) != 3 {
		t.Fatalf("AllRows = %v", refs)
	}
	less := ci.WithoutRow(RowRef{Rel: "R", Index: 0})
	if less.Size() != 2 || ci.Size() != 3 {
		t.Fatal("WithoutRow wrong or mutated receiver")
	}
	if less.Table("R").Len() != 1 || less.Table("S").Len() != 1 {
		t.Fatal("wrong row removed")
	}

	none := ci.WithoutRows(map[RowRef]bool{
		{Rel: "R", Index: 0}: true,
		{Rel: "S", Index: 0}: true,
	})
	if none.Size() != 1 || none.Table("R").Len() != 1 {
		t.Fatalf("WithoutRows = %v", none)
	}

	cl := ci.Clone()
	cl.MustAddRow("S", Row{Terms: []query.Term{query.C("1")}})
	if ci.Size() != 3 {
		t.Fatal("Clone shares storage")
	}
}

func TestCInstanceFromDatabase(t *testing.T) {
	db := relation.NewDatabase(twoRelSchema())
	db.MustInsert("R", relation.T("a", "b"))
	db.MustInsert("S", relation.T("1"))
	ci := FromDatabase(db)
	if !ci.IsGround() || ci.Size() != 2 {
		t.Fatal("FromDatabase wrong")
	}
	back, err := ci.Apply(Valuation{})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(db) {
		t.Fatal("round trip lost tuples")
	}
}

func TestCInstanceVarDomains(t *testing.T) {
	ci := NewCInstance(twoRelSchema())
	ci.MustAddRow("R", Row{Terms: []query.Term{query.V("x"), query.V("y")}})
	ci.MustAddRow("S", Row{Terms: []query.Term{query.V("b")}})
	doms := ci.VarDomains()
	if !doms["b"].IsFinite() {
		t.Fatal("b should be Boolean")
	}
	if doms["x"].IsFinite() || doms["y"].IsFinite() {
		t.Fatal("x, y should be infinite")
	}
}

func TestCInstanceConstants(t *testing.T) {
	ci := NewCInstance(twoRelSchema())
	ci.MustAddRow("R", Row{
		Terms: []query.Term{query.C("k"), query.V("y")},
		Cond:  Cond(CNeq(query.V("y"), query.C("m"))),
	})
	cs := ci.Constants(nil)
	if !cs.Contains("k") || !cs.Contains("m") {
		t.Fatalf("Constants = %v", cs)
	}
}

func TestCInstanceSchemaAndString(t *testing.T) {
	ci := NewCInstance(twoRelSchema())
	if ci.Schema() == nil {
		t.Fatal("Schema accessor wrong")
	}
	ci.MustAddRow("R", Row{Terms: []query.Term{query.V("x"), query.C("1")}})
	s := ci.String()
	if s == "" || ci.Table("nope") != nil {
		t.Fatalf("String/Table wrong: %q", s)
	}
}
