package relation

import "fmt"

// This file implements the data half of Lemma 3.2: a linear-time
// bijective encoding fD of instances of a multi-relation schema
// R = (R1, ..., Rn) into instances of a single relation schema R.
//
// Each source relation Ri is made uniform by padding to the maximal
// arity with the reserved constant Pad, and a leading tag attribute AR
// records which source relation a tuple came from. The query and
// constraint halves (fQ, fC) live in internal/query and internal/cc.

// Pad is the reserved padding constant used by Merge. It must not occur
// in source data; Merge.Encode reports an error if it does.
const Pad Value = "⊥pad"

// TagAttr is the name of the leading relation-tag attribute of the
// merged schema (the paper's AR).
const TagAttr = "AR"

// Merger holds the merged single-relation schema for a database schema
// and converts instances back and forth.
type Merger struct {
	src    *DBSchema
	merged *Schema
	arity  int // max source arity
}

// NewMerger builds the merged schema for src. The merged relation is
// named "R_merged" and has 1 + max-arity attributes: the tag attribute
// AR with finite domain {R1, ..., Rn}, then A1..Ak where Ai's domain is
// infinite (source domain checks happen on the source side of the
// bijection).
func NewMerger(src *DBSchema) (*Merger, error) {
	if src.Len() == 0 {
		return nil, fmt.Errorf("relation: cannot merge empty database schema")
	}
	arity := 0
	tags := make([]Value, 0, src.Len())
	for _, r := range src.Relations() {
		if r.Arity() > arity {
			arity = r.Arity()
		}
		tags = append(tags, Value(r.Name))
	}
	attrs := make([]Attribute, 0, arity+1)
	attrs = append(attrs, Attr(TagAttr, Finite("reltag", tags...)))
	for i := 0; i < arity; i++ {
		attrs = append(attrs, Attr(fmt.Sprintf("A%d", i+1), nil))
	}
	merged, err := NewSchema("R_merged", attrs...)
	if err != nil {
		return nil, err
	}
	return &Merger{src: src, merged: merged, arity: arity}, nil
}

// Source returns the source database schema.
func (m *Merger) Source() *DBSchema { return m.src }

// Merged returns the single-relation target schema.
func (m *Merger) Merged() *Schema { return m.merged }

// PadWidth returns how many pad columns relation rel receives.
func (m *Merger) PadWidth(rel string) (int, error) {
	r := m.src.Relation(rel)
	if r == nil {
		return 0, fmt.Errorf("relation: merge: unknown relation %s", rel)
	}
	return m.arity - r.Arity(), nil
}

// EncodeTuple maps one source tuple of rel to a merged tuple.
func (m *Merger) EncodeTuple(rel string, t Tuple) (Tuple, error) {
	r := m.src.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("relation: merge: unknown relation %s", rel)
	}
	if len(t) != r.Arity() {
		return nil, fmt.Errorf("relation: merge: tuple %v has arity %d, want %d", t, len(t), r.Arity())
	}
	out := make(Tuple, 0, m.arity+1)
	out = append(out, Value(rel))
	for _, v := range t {
		if v == Pad {
			return nil, fmt.Errorf("relation: merge: reserved pad constant in source tuple %v", t)
		}
		out = append(out, v)
	}
	for len(out) < m.arity+1 {
		out = append(out, Pad)
	}
	return out, nil
}

// DecodeTuple inverts EncodeTuple, returning the source relation name
// and the original tuple.
func (m *Merger) DecodeTuple(t Tuple) (string, Tuple, error) {
	if len(t) != m.arity+1 {
		return "", nil, fmt.Errorf("relation: merge: merged tuple %v has arity %d, want %d", t, len(t), m.arity+1)
	}
	rel := string(t[0])
	r := m.src.Relation(rel)
	if r == nil {
		return "", nil, fmt.Errorf("relation: merge: unknown tag %q", rel)
	}
	body := t[1:]
	for i := r.Arity(); i < m.arity; i++ {
		if body[i] != Pad {
			return "", nil, fmt.Errorf("relation: merge: tuple %v has non-pad value in pad column %d", t, i+1)
		}
	}
	return rel, body[:r.Arity()].Clone(), nil
}

// Encode maps a source database to a merged single-relation instance
// (the paper's fD). It is a bijection onto well-formed merged instances.
// The merged instance inherits the source database's storage: it shares
// db's interner when there is one (the tag and pad constants intern
// alongside the data) and stays boxed when db is boxed, so the ablation
// modes never mix within one encoded problem.
func (m *Merger) Encode(db *Database) (*Instance, error) {
	if db.Schema() != m.src {
		return nil, fmt.Errorf("relation: merge: database has a different schema")
	}
	var out *Instance
	if it := db.Interner(); it != nil {
		out = NewInternedInstance(m.merged, it)
	} else {
		out = NewBoxedInstance(m.merged)
	}
	for _, r := range m.src.Relations() {
		for _, t := range db.Relation(r.Name).Tuples() {
			et, err := m.EncodeTuple(r.Name, t)
			if err != nil {
				return nil, err
			}
			out.insertUnchecked(et)
		}
	}
	return out, nil
}

// Decode inverts Encode.
func (m *Merger) Decode(inst *Instance) (*Database, error) {
	if inst.Schema() != m.merged {
		return nil, fmt.Errorf("relation: merge: instance has a different schema")
	}
	db := NewDatabase(m.src)
	for _, t := range inst.Tuples() {
		rel, body, err := m.DecodeTuple(t)
		if err != nil {
			return nil, err
		}
		if err := db.Insert(rel, body); err != nil {
			return nil, err
		}
	}
	return db, nil
}
