package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute is a named column with a domain of constants.
type Attribute struct {
	Name   string
	Domain *Domain
}

// Attr is shorthand for constructing an attribute.
func Attr(name string, dom *Domain) Attribute { return Attribute{Name: name, Domain: dom} }

// Schema is a relation schema: a relation name plus an ordered list of
// attributes. The paper writes R(A1, ..., An).
type Schema struct {
	Name  string
	Attrs []Attribute
	index map[string]int
}

// NewSchema builds a relation schema. Attribute names must be distinct;
// attributes with a nil domain get a fresh infinite domain named after
// the attribute.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema needs a name")
	}
	s := &Schema{Name: name, Attrs: append([]Attribute(nil), attrs...), index: make(map[string]int, len(attrs))}
	for i := range s.Attrs {
		a := &s.Attrs[i]
		if a.Name == "" {
			return nil, fmt.Errorf("relation: schema %s: attribute %d has no name", name, i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relation: schema %s: duplicate attribute %s", name, a.Name)
		}
		s.index[a.Name] = i
		if a.Domain == nil {
			a.Domain = Infinite(name + "." + a.Name)
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for literals in tests,
// reductions and examples where the schema is statically correct.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// AttrNames returns the attribute names in schema order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// DomainAt returns the domain of the i-th attribute.
func (s *Schema) DomainAt(i int) *Domain { return s.Attrs[i].Domain }

// Admits reports whether the tuple's values all lie in the respective
// attribute domains (and the arity matches).
func (s *Schema) Admits(t Tuple) bool {
	if len(t) != len(s.Attrs) {
		return false
	}
	for i, v := range t {
		if !s.Attrs[i].Domain.Contains(v) {
			return false
		}
	}
	return true
}

// String renders the schema as R(A:dom, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.Name
	}
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(parts, ", "))
}

// Database schema: an ordered collection of relation schemas, the
// paper's R = (R1, ..., Rn).
type DBSchema struct {
	rels  []*Schema
	index map[string]int
}

// NewDBSchema builds a database schema from relation schemas with
// pairwise distinct names.
func NewDBSchema(rels ...*Schema) (*DBSchema, error) {
	db := &DBSchema{index: make(map[string]int, len(rels))}
	for _, r := range rels {
		if err := db.Add(r); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MustDBSchema is NewDBSchema that panics on error.
func MustDBSchema(rels ...*Schema) *DBSchema {
	db, err := NewDBSchema(rels...)
	if err != nil {
		panic(err)
	}
	return db
}

// Add appends one relation schema.
func (db *DBSchema) Add(r *Schema) error {
	if r == nil {
		return fmt.Errorf("relation: nil schema")
	}
	if _, dup := db.index[r.Name]; dup {
		return fmt.Errorf("relation: duplicate relation %s", r.Name)
	}
	db.index[r.Name] = len(db.rels)
	db.rels = append(db.rels, r)
	return nil
}

// Relation returns the schema of the named relation, or nil.
func (db *DBSchema) Relation(name string) *Schema {
	if db == nil {
		return nil
	}
	if i, ok := db.index[name]; ok {
		return db.rels[i]
	}
	return nil
}

// Relations returns the relation schemas in declaration order.
func (db *DBSchema) Relations() []*Schema { return append([]*Schema(nil), db.rels...) }

// Names returns the relation names in declaration order.
func (db *DBSchema) Names() []string {
	out := make([]string, len(db.rels))
	for i, r := range db.rels {
		out[i] = r.Name
	}
	return out
}

// Len returns the number of relations.
func (db *DBSchema) Len() int { return len(db.rels) }

// String renders the database schema.
func (db *DBSchema) String() string {
	parts := make([]string, len(db.rels))
	for i, r := range db.rels {
		parts[i] = r.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "; ")
}
