package relation

import (
	"fmt"
	"strings"
	"testing"
)

// Distinct tuples must encode to distinct keys, including the
// separator-shaped values and prefix/suffix shifts that broke naive
// concatenation schemes.
func TestKeyCollisionFree(t *testing.T) {
	tuples := []Tuple{
		{},
		{""},
		{"", ""},
		{"a"},
		{"a", ""},
		{"", "a"},
		{"ab"},
		{"a", "b"},
		{"1:a"},
		{"1", ":a"},
		{"a;b"},
		{"a;", "b"},
		{"\x00"},
		{"\x00", "\x00"},
		{"\x01\x00"},
		{Value(strings.Repeat("x", 127))},
		{Value(strings.Repeat("x", 128))},
		{Value(strings.Repeat("x", 127)), "y"},
		{Value(strings.Repeat("x", 126)), "xy"},
	}
	seen := map[string]Tuple{}
	for _, tu := range tuples {
		k := tu.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision: %v and %v both encode to %q", prev, tu, k)
		}
		seen[k] = tu
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	tu := Tuple{"a", "", "long-value-with-separators:;", "b"}
	buf := make([]byte, 0, 64)
	if got := string(tu.AppendKey(buf)); got != tu.Key() {
		t.Fatalf("AppendKey %q != Key %q", got, tu.Key())
	}
	// Reusing the buffer must not corrupt earlier keys.
	k1 := string(Tuple{"x", "y"}.AppendKey(buf[:0]))
	k2 := string(Tuple{"z"}.AppendKey(buf[:0]))
	if k1 == k2 {
		t.Fatal("reused buffer produced equal keys for distinct tuples")
	}
}

func TestLookupIndexed(t *testing.T) {
	sch := MustSchema("R", Attr("A", nil), Attr("B", nil), Attr("C", nil))
	in := NewInstance(sch)
	for i := 0; i < 20; i++ {
		in.MustInsert(T(
			Value(fmt.Sprintf("a%d", i%4)),
			Value(fmt.Sprintf("b%d", i%5)),
			Value(fmt.Sprintf("c%d", i)),
		))
	}
	rows, ok := in.LookupIndexed([]int{0}, []Value{"a2"})
	if !ok {
		t.Fatal("single-column lookup must be indexable")
	}
	if len(rows) != 5 {
		t.Fatalf("a2 appears in 5 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r[0] != "a2" {
			t.Fatalf("index returned non-matching row %v", r)
		}
	}
	rows, ok = in.LookupIndexed([]int{0, 1}, []Value{"a1", "b2"})
	if !ok {
		t.Fatal("two-column lookup must be indexable")
	}
	for _, r := range rows {
		if r[0] != "a1" || r[1] != "b2" {
			t.Fatalf("index returned non-matching row %v", r)
		}
	}
	var scan int
	for _, r := range in.Tuples() {
		if r[0] == "a1" && r[1] == "b2" {
			scan++
		}
	}
	if len(rows) != scan {
		t.Fatalf("index found %d rows, scan found %d", len(rows), scan)
	}
	// No positions: the caller must scan.
	if _, ok := in.LookupIndexed(nil, nil); ok {
		t.Fatal("empty position set must refuse an index")
	}
	// Missing key: empty result, still indexed.
	rows, ok = in.LookupIndexed([]int{2}, []Value{"nope"})
	if !ok || len(rows) != 0 {
		t.Fatalf("missing key: got %v ok=%v", rows, ok)
	}
}

// Inserts after an index is built must be visible through it.
func TestLookupIndexedSeesInserts(t *testing.T) {
	sch := MustSchema("R", Attr("A", nil), Attr("B", nil))
	in := NewInstance(sch)
	in.MustInsert(T("k", "1"))
	rows, ok := in.LookupIndexed([]int{0}, []Value{"k"})
	if !ok || len(rows) != 1 {
		t.Fatalf("warmup lookup: %v ok=%v", rows, ok)
	}
	in.MustInsert(T("k", "2"))
	in.MustInsert(T("j", "3"))
	in.MustInsert(T("k", "2")) // duplicate: must not double-count
	rows, _ = in.LookupIndexed([]int{0}, []Value{"k"})
	if len(rows) != 2 {
		t.Fatalf("index stale after insert: got %d rows, want 2", len(rows))
	}
	rows, _ = in.LookupIndexed([]int{0}, []Value{"j"})
	if len(rows) != 1 {
		t.Fatalf("index missed new key: got %d rows, want 1", len(rows))
	}
}

// Concurrent readers may race to build the same index.
func TestLookupIndexedConcurrentReaders(t *testing.T) {
	sch := MustSchema("R", Attr("A", nil), Attr("B", nil))
	in := NewInstance(sch)
	for i := 0; i < 64; i++ {
		in.MustInsert(T(Value(fmt.Sprintf("a%d", i%8)), Value(fmt.Sprintf("b%d", i))))
	}
	done := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			total := 0
			for i := 0; i < 100; i++ {
				rows, ok := in.LookupIndexed([]int{0}, []Value{Value(fmt.Sprintf("a%d", i%8))})
				if !ok {
					t.Error("lookup refused")
				}
				total += len(rows)
			}
			done <- total
		}(g)
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if got := <-done; got != first {
			t.Fatalf("reader disagreement: %d vs %d", got, first)
		}
	}
}

// fmtKey is the fmt.Fprintf-based encoder the append encoder replaced;
// the benchmark below documents the win.
func fmtKey(t Tuple) string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%d:", len(v))
		b.WriteString(string(v))
	}
	return b.String()
}

func benchTuple() Tuple {
	return Tuple{"915-15-336", "John Doe", "EDI", "2007"}
}

func BenchmarkTupleKeyAppend(b *testing.B) {
	tu := benchTuple()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tu.AppendKey(buf[:0])
	}
	_ = buf
}

func BenchmarkTupleKeyString(b *testing.B) {
	tu := benchTuple()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tu.Key()
	}
}

func BenchmarkTupleKeyFmt(b *testing.B) {
	tu := benchTuple()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fmtKey(tu)
	}
}
