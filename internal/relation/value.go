// Package relation implements the relational substrate of the paper
// "Capturing Missing Tuples and Missing Values" (Deng, Fan, Geerts;
// PODS 2010 / TODS 2016): attributes with finite or infinite domains,
// relation schemas, tuples, set-semantics instances and multi-relation
// databases, together with the schema-merging construction of Lemma 3.2.
//
// All collections iterate deterministically so that the decision
// procedures built on top are reproducible.
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a constant drawn from some attribute domain. The paper works
// over uninterpreted constants with equality and inequality only, so a
// string representation is both sufficient and convenient.
type Value string

// CompareValues orders two values lexicographically. It exists so that
// callers sort values the same way everywhere.
func CompareValues(a, b Value) int { return strings.Compare(string(a), string(b)) }

// SortValues sorts a slice of values in place and returns it.
func SortValues(vs []Value) []Value {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// DedupValues sorts and removes duplicates from vs, returning the result.
func DedupValues(vs []Value) []Value {
	SortValues(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// ValueSet is a deterministic set of values.
type ValueSet struct {
	m map[Value]struct{}
}

// NewValueSet returns a set containing the given values.
func NewValueSet(vs ...Value) *ValueSet {
	s := &ValueSet{m: make(map[Value]struct{}, len(vs))}
	for _, v := range vs {
		s.m[v] = struct{}{}
	}
	return s
}

// Add inserts v and reports whether it was absent.
func (s *ValueSet) Add(v Value) bool {
	if _, ok := s.m[v]; ok {
		return false
	}
	s.m[v] = struct{}{}
	return true
}

// AddAll inserts every value of other into s.
func (s *ValueSet) AddAll(other *ValueSet) {
	if other == nil {
		return
	}
	for v := range other.m {
		s.m[v] = struct{}{}
	}
}

// Contains reports whether v is in the set.
func (s *ValueSet) Contains(v Value) bool {
	if s == nil {
		return false
	}
	_, ok := s.m[v]
	return ok
}

// Len returns the number of values in the set.
func (s *ValueSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.m)
}

// Values returns the members in sorted order.
func (s *ValueSet) Values() []Value {
	if s == nil {
		return nil
	}
	out := make([]Value, 0, len(s.m))
	for v := range s.m {
		out = append(out, v)
	}
	return SortValues(out)
}

// Clone returns an independent copy of the set.
func (s *ValueSet) Clone() *ValueSet {
	c := &ValueSet{m: make(map[Value]struct{}, s.Len())}
	if s != nil {
		for v := range s.m {
			c.m[v] = struct{}{}
		}
	}
	return c
}

// String renders the set as {a, b, c}.
func (s *ValueSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range s.Values() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(v))
	}
	b.WriteByte('}')
	return b.String()
}

// Domain describes the set of constants an attribute may take. A finite
// domain enumerates its members (e.g. the Boolean domain {0, 1}); an
// infinite domain admits every constant. The distinction matters for the
// active-domain construction Adom = S ∪ New ∪ df of Proposition 3.3:
// variables ranging over a finite-domain attribute may only be valuated
// inside that finite domain.
type Domain struct {
	name   string
	finite bool
	values []Value
	member map[Value]struct{}
}

// Infinite returns a fresh infinite domain with the given name.
func Infinite(name string) *Domain {
	return &Domain{name: name}
}

// Finite returns a finite domain with the given name and members.
// Members are deduplicated and kept in sorted order.
func Finite(name string, values ...Value) *Domain {
	vs := DedupValues(append([]Value(nil), values...))
	m := make(map[Value]struct{}, len(vs))
	for _, v := range vs {
		m[v] = struct{}{}
	}
	return &Domain{name: name, finite: true, values: vs, member: m}
}

// Bool is the Boolean domain {0, 1} used throughout the paper's
// reductions (Figure 2).
func Bool() *Domain { return Finite("bool", "0", "1") }

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// IsFinite reports whether the domain enumerates its members.
func (d *Domain) IsFinite() bool { return d != nil && d.finite }

// Values returns the members of a finite domain in sorted order, or nil
// for an infinite domain.
func (d *Domain) Values() []Value {
	if d == nil || !d.finite {
		return nil
	}
	return append([]Value(nil), d.values...)
}

// Contains reports whether v belongs to the domain. Every value belongs
// to an infinite domain.
func (d *Domain) Contains(v Value) bool {
	if d == nil || !d.finite {
		return true
	}
	_, ok := d.member[v]
	return ok
}

// String renders the domain for diagnostics.
func (d *Domain) String() string {
	if d == nil {
		return "⊤"
	}
	if !d.finite {
		return fmt.Sprintf("%s(∞)", d.name)
	}
	parts := make([]string, len(d.values))
	for i, v := range d.values {
		parts[i] = string(v)
	}
	return fmt.Sprintf("%s{%s}", d.name, strings.Join(parts, ","))
}
