package relation

import (
	"fmt"
	"strings"
)

// Database is a ground instance I = (I1, ..., In) of a database schema
// R = (R1, ..., Rn). Relations are addressed by name; every relation of
// the schema is present (possibly empty).
type Database struct {
	schema *DBSchema
	insts  map[string]*Instance
}

// NewDatabase returns an empty database of the given schema (each
// relation present and empty).
func NewDatabase(schema *DBSchema) *Database {
	db := &Database{schema: schema, insts: make(map[string]*Instance, schema.Len())}
	for _, r := range schema.Relations() {
		db.insts[r.Name] = NewInstance(r)
	}
	return db
}

// Schema returns the database schema.
func (db *Database) Schema() *DBSchema { return db.schema }

// Relation returns the instance of the named relation, or nil when the
// schema has no such relation.
func (db *Database) Relation(name string) *Instance {
	if db == nil {
		return nil
	}
	return db.insts[name]
}

// SetRelation replaces the instance of a relation; the instance's schema
// must be the schema's relation of that name.
func (db *Database) SetRelation(inst *Instance) error {
	r := db.schema.Relation(inst.Schema().Name)
	if r == nil {
		return fmt.Errorf("relation: schema has no relation %s", inst.Schema().Name)
	}
	if r != inst.Schema() {
		return fmt.Errorf("relation: instance schema %s is not the database's schema object", inst.Schema().Name)
	}
	db.insts[r.Name] = inst
	return nil
}

// MustSetRelation is SetRelation that panics on error.
func (db *Database) MustSetRelation(inst *Instance) {
	if err := db.SetRelation(inst); err != nil {
		panic(err)
	}
}

// Insert adds a tuple to the named relation.
func (db *Database) Insert(rel string, t Tuple) error {
	inst := db.insts[rel]
	if inst == nil {
		return fmt.Errorf("relation: no relation %s", rel)
	}
	return inst.Insert(t)
}

// MustInsert is Insert that panics on error.
func (db *Database) MustInsert(rel string, t Tuple) {
	if err := db.Insert(rel, t); err != nil {
		panic(err)
	}
}

// Size returns the total number of tuples across all relations.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.schema.Relations() {
		n += db.insts[r.Name].Len()
	}
	return n
}

// Clone returns an independent copy sharing schemas.
func (db *Database) Clone() *Database {
	c := &Database{schema: db.schema, insts: make(map[string]*Instance, len(db.insts))}
	for _, r := range db.schema.Relations() {
		c.insts[r.Name] = db.insts[r.Name].Clone()
	}
	return c
}

// SubsetOf reports componentwise containment: for all i, Ii ⊆ I'i.
func (db *Database) SubsetOf(other *Database) bool {
	for _, r := range db.schema.Relations() {
		if !db.insts[r.Name].SubsetOf(other.Relation(r.Name)) {
			return false
		}
	}
	return true
}

// Equal reports componentwise set equality.
func (db *Database) Equal(other *Database) bool {
	return db.SubsetOf(other) && other.SubsetOf(db)
}

// Extends reports the paper's I ⊊ I': componentwise containment of
// other in db with at least one relation strictly larger, i.e. db is a
// proper extension of other.
func (db *Database) Extends(other *Database) bool {
	proper := false
	for _, r := range db.schema.Relations() {
		mine, theirs := db.insts[r.Name], other.Relation(r.Name)
		if !theirs.SubsetOf(mine) {
			return false
		}
		if theirs.Len() < mine.Len() {
			proper = true
		}
	}
	return proper
}

// WithTuple returns a copy of the database with t added to rel.
func (db *Database) WithTuple(rel string, t Tuple) *Database {
	c := db.Clone()
	c.MustInsert(rel, t)
	return c
}

// WithoutTuple returns a copy of the database with t removed from rel.
func (db *Database) WithoutTuple(rel string, t Tuple) *Database {
	c := db.Clone()
	c.insts[rel] = c.insts[rel].WithoutTuple(t)
	return c
}

// ActiveDomain collects every constant occurring in the database.
func (db *Database) ActiveDomain(dst *ValueSet) *ValueSet {
	if dst == nil {
		dst = NewValueSet()
	}
	if db == nil {
		return dst
	}
	for _, r := range db.schema.Relations() {
		db.insts[r.Name].ActiveDomain(dst)
	}
	return dst
}

// Located identifies one tuple within a database, used when enumerating
// tuple removals (MINP) or single-tuple extensions (extensibility).
type Located struct {
	Rel   string
	Tuple Tuple
}

// AllTuples lists every tuple of the database with its relation, in
// deterministic (schema, insertion) order.
func (db *Database) AllTuples() []Located {
	var out []Located
	for _, r := range db.schema.Relations() {
		for _, t := range db.insts[r.Name].Tuples() {
			out = append(out, Located{Rel: r.Name, Tuple: t})
		}
	}
	return out
}

// String renders the database deterministically.
func (db *Database) String() string {
	parts := make([]string, 0, db.schema.Len())
	for _, r := range db.schema.Relations() {
		parts = append(parts, db.insts[r.Name].String())
	}
	return strings.Join(parts, "; ")
}
