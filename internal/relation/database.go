package relation

import (
	"fmt"
	"strings"
)

// Database is a ground instance I = (I1, ..., In) of a database schema
// R = (R1, ..., Rn). Relations are addressed by name; every relation of
// the schema is present (possibly empty).
type Database struct {
	schema *DBSchema
	insts  map[string]*Instance
	intern *Interner // shared by the database's instances; nil in boxed mode
}

// NewDatabase returns an empty database of the given schema (each
// relation present and empty). Unless SetDefaultBoxed selects the boxed
// oracle mode, all relations share one interner — values are interned
// once per database, and clones (the decider's candidate instances)
// keep sharing it.
func NewDatabase(schema *DBSchema) *Database {
	if boxedDefault.Load() {
		return NewBoxedDatabase(schema)
	}
	db := &Database{
		schema: schema,
		insts:  make(map[string]*Instance, schema.Len()),
		intern: NewInterner(),
	}
	for _, r := range schema.Relations() {
		db.insts[r.Name] = NewInternedInstance(r, db.intern)
	}
	return db
}

// NewDatabaseWith returns an empty database whose relations intern
// into it rather than a fresh interner — the constructor for the
// decider hot paths, where candidate databases are built per
// enumerated model and would otherwise re-intern the same small active
// domain each time. A nil interner selects boxed storage.
func NewDatabaseWith(schema *DBSchema, it *Interner) *Database {
	if it == nil {
		return NewBoxedDatabase(schema)
	}
	db := &Database{
		schema: schema,
		insts:  make(map[string]*Instance, schema.Len()),
		intern: it,
	}
	for _, r := range schema.Relations() {
		db.insts[r.Name] = NewInternedInstance(r, it)
	}
	return db
}

// NewBoxedDatabase returns an empty database whose relations use the
// boxed (non-interned) oracle storage, regardless of the process-wide
// default.
func NewBoxedDatabase(schema *DBSchema) *Database {
	db := &Database{schema: schema, insts: make(map[string]*Instance, schema.Len())}
	for _, r := range schema.Relations() {
		db.insts[r.Name] = NewBoxedInstance(r)
	}
	return db
}

// Boxed reports whether the database was built in boxed oracle mode.
func (db *Database) Boxed() bool { return db != nil && db.intern == nil }

// Interner returns the interner shared by the database's relations, or
// nil in boxed mode.
func (db *Database) Interner() *Interner {
	if db == nil {
		return nil
	}
	return db.intern
}

// CloneBoxed returns a copy of the database rebuilt with boxed storage,
// sharing schemas. It is the entry point of the storage ablation: a
// problem flagged Boxed rebuilds its master data through it so every
// derived candidate instance inherits the oracle representation.
func (db *Database) CloneBoxed() *Database {
	c := NewBoxedDatabase(db.schema)
	for _, r := range db.schema.Relations() {
		for _, t := range db.insts[r.Name].Tuples() {
			c.insts[r.Name].insertUnchecked(t)
		}
	}
	return c
}

// ResidentBytes estimates the heap bytes the database retains: each
// relation's own storage plus each distinct interner, counted once no
// matter how many relations share it. The charges use the fixed
// constants of intern.go, so the estimate is identical on every
// platform — it is what the rcserved registry cap accounts.
func (db *Database) ResidentBytes() int64 {
	if db == nil {
		return 0
	}
	var b int64
	counted := make(map[*Interner]bool, 1)
	for _, r := range db.schema.Relations() {
		in := db.insts[r.Name]
		b += in.ResidentBytes()
		if it := in.Interner(); it != nil && !counted[it] {
			counted[it] = true
			b += it.ResidentBytes()
		}
	}
	return b
}

// Schema returns the database schema.
func (db *Database) Schema() *DBSchema { return db.schema }

// Relation returns the instance of the named relation, or nil when the
// schema has no such relation.
func (db *Database) Relation(name string) *Instance {
	if db == nil {
		return nil
	}
	return db.insts[name]
}

// SetRelation replaces the instance of a relation; the instance's schema
// must be the schema's relation of that name.
func (db *Database) SetRelation(inst *Instance) error {
	r := db.schema.Relation(inst.Schema().Name)
	if r == nil {
		return fmt.Errorf("relation: schema has no relation %s", inst.Schema().Name)
	}
	if r != inst.Schema() {
		return fmt.Errorf("relation: instance schema %s is not the database's schema object", inst.Schema().Name)
	}
	db.insts[r.Name] = inst
	return nil
}

// MustSetRelation is SetRelation that panics on error.
func (db *Database) MustSetRelation(inst *Instance) {
	if err := db.SetRelation(inst); err != nil {
		panic(err)
	}
}

// Insert adds a tuple to the named relation.
func (db *Database) Insert(rel string, t Tuple) error {
	inst := db.insts[rel]
	if inst == nil {
		return fmt.Errorf("relation: no relation %s", rel)
	}
	return inst.Insert(t)
}

// MustInsert is Insert that panics on error.
func (db *Database) MustInsert(rel string, t Tuple) {
	if err := db.Insert(rel, t); err != nil {
		panic(err)
	}
}

// Size returns the total number of tuples across all relations.
func (db *Database) Size() int {
	n := 0
	for _, r := range db.schema.Relations() {
		n += db.insts[r.Name].Len()
	}
	return n
}

// Clone returns an independent copy sharing schemas (and, in interned
// mode, the interner).
func (db *Database) Clone() *Database {
	c := &Database{schema: db.schema, insts: make(map[string]*Instance, len(db.insts)), intern: db.intern}
	for _, r := range db.schema.Relations() {
		c.insts[r.Name] = db.insts[r.Name].Clone()
	}
	return c
}

// SubsetOf reports componentwise containment: for all i, Ii ⊆ I'i.
func (db *Database) SubsetOf(other *Database) bool {
	for _, r := range db.schema.Relations() {
		if !db.insts[r.Name].SubsetOf(other.Relation(r.Name)) {
			return false
		}
	}
	return true
}

// Equal reports componentwise set equality.
func (db *Database) Equal(other *Database) bool {
	return db.SubsetOf(other) && other.SubsetOf(db)
}

// Extends reports the paper's I ⊊ I': componentwise containment of
// other in db with at least one relation strictly larger, i.e. db is a
// proper extension of other.
func (db *Database) Extends(other *Database) bool {
	proper := false
	for _, r := range db.schema.Relations() {
		mine, theirs := db.insts[r.Name], other.Relation(r.Name)
		if !theirs.SubsetOf(mine) {
			return false
		}
		if theirs.Len() < mine.Len() {
			proper = true
		}
	}
	return proper
}

// WithTuple returns a copy of the database with t added to rel.
func (db *Database) WithTuple(rel string, t Tuple) *Database {
	c := db.Clone()
	c.MustInsert(rel, t)
	return c
}

// WithoutTuple returns a copy of the database with t removed from rel.
func (db *Database) WithoutTuple(rel string, t Tuple) *Database {
	c := db.Clone()
	c.insts[rel] = c.insts[rel].WithoutTuple(t)
	return c
}

// ActiveDomain collects every constant occurring in the database.
func (db *Database) ActiveDomain(dst *ValueSet) *ValueSet {
	if dst == nil {
		dst = NewValueSet()
	}
	if db == nil {
		return dst
	}
	for _, r := range db.schema.Relations() {
		db.insts[r.Name].ActiveDomain(dst)
	}
	return dst
}

// Located identifies one tuple within a database, used when enumerating
// tuple removals (MINP) or single-tuple extensions (extensibility).
type Located struct {
	Rel   string
	Tuple Tuple
}

// AllTuples lists every tuple of the database with its relation, in
// deterministic (schema, insertion) order.
func (db *Database) AllTuples() []Located {
	var out []Located
	for _, r := range db.schema.Relations() {
		for _, t := range db.insts[r.Name].Tuples() {
			out = append(out, Located{Rel: r.Name, Tuple: t})
		}
	}
	return out
}

// String renders the database deterministically.
func (db *Database) String() string {
	parts := make([]string, 0, db.schema.Len())
	for _, r := range db.schema.Relations() {
		parts = append(parts, db.insts[r.Name].String())
	}
	return strings.Join(parts, "; ")
}
