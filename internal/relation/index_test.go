package relation

import (
	"testing"

	"relcomplete/internal/obs"
)

func TestIndexMetrics(t *testing.T) {
	m := obs.NewMetrics()
	SetMetrics(m)
	defer SetMetrics(nil)

	s, err := NewSchema("R", Attr("a", nil), Attr("b", nil))
	if err != nil {
		t.Fatal(err)
	}
	in := MustInstance(s, T("1", "x"), T("2", "y"))
	if _, ok := in.LookupIndexed([]int{0}, []Value{"1"}); !ok {
		t.Fatal("lookup not indexable")
	}
	if _, ok := in.LookupIndexed([]int{0}, []Value{"zzz"}); !ok {
		t.Fatal("lookup not indexable")
	}
	in.MustInsert(T("3", "z"))

	if got := m.Get(obs.IndexBuilds); got != 1 {
		t.Errorf("IndexBuilds = %d, want 1", got)
	}
	if got := m.Get(obs.IndexProbes); got != 2 {
		t.Errorf("IndexProbes = %d, want 2", got)
	}
	if got := m.Get(obs.IndexProbeHits); got != 1 {
		t.Errorf("IndexProbeHits = %d, want 1", got)
	}
	if got := m.Get(obs.IndexProbeMisses); got != 1 {
		t.Errorf("IndexProbeMisses = %d, want 1", got)
	}
	if got := m.Get(obs.IndexInserts); got != 1 {
		t.Errorf("IndexInserts = %d, want 1", got)
	}
}
