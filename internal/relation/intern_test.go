package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func internSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("R", Attr("A", nil), Attr("B", nil))
}

func TestInternerRoundTrip(t *testing.T) {
	it := NewInterner()
	vals := []Value{"", "a", "b", "a", "⊥pad", "b"}
	ids := make([]uint32, len(vals))
	for i, v := range vals {
		ids[i] = it.Intern(v)
	}
	if it.Len() != 4 {
		t.Fatalf("Len = %d, want 4 distinct", it.Len())
	}
	if ids[0] != 0 || ids[1] != 1 || ids[2] != 2 || ids[4] != 3 {
		t.Fatalf("ids not dense first-sight: %v", ids)
	}
	if ids[3] != ids[1] || ids[5] != ids[2] {
		t.Fatalf("re-interning must reuse ids: %v", ids)
	}
	for i, v := range vals {
		if got := it.ValueOf(ids[i]); got != v {
			t.Fatalf("ValueOf(%d) = %q, want %q", ids[i], got, v)
		}
		if id, ok := it.Lookup(v); !ok || id != ids[i] {
			t.Fatalf("Lookup(%q) = %d,%v want %d,true", v, id, ok, ids[i])
		}
	}
	if _, ok := it.Lookup("never"); ok {
		t.Fatal("Lookup must miss on never-interned values")
	}
}

// The interner is the one mutable structure shared across the parallel
// candidate searches; hammer mixed Intern/Lookup/ValueOf from many
// goroutines (meaningful under -race).
func TestInternerConcurrent(t *testing.T) {
	it := NewInterner()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := Value(fmt.Sprintf("v%d", i%97))
				id := it.Intern(v)
				if got := it.ValueOf(id); got != v {
					panic(fmt.Sprintf("ValueOf(%d) = %q, want %q", id, got, v))
				}
				it.Lookup(Value(fmt.Sprintf("v%d", (i+g)%193)))
			}
		}(g)
	}
	wg.Wait()
	if it.Len() != 97 {
		t.Fatalf("Len = %d, want 97", it.Len())
	}
}

// The resident-byte charges are deterministic by construction (fixed
// constants, no platform probing); pin them for a known instance so the
// rcserved registry accounting cannot drift silently.
func TestResidentBytesPinned(t *testing.T) {
	it := NewInterner()
	it.Intern("ab")  // 2 bytes
	it.Intern("cde") // 3 bytes
	// Per value: bytes + 2 string headers + 4-byte id + map entry charge.
	wantIt := int64(2*(2*16+4+48) + 2 + 3)
	if got := it.ResidentBytes(); got != wantIt {
		t.Fatalf("interner ResidentBytes = %d, want %d", got, wantIt)
	}

	in := NewInternedInstance(internSchema(t), NewInterner())
	in.MustInsert(T("ab", "cde"))
	in.MustInsert(T("ab", "ab"))
	// Per row: slice header (24) + 2 string headers (32); flat ids 2×4
	// bytes per row; membership key 8 bytes per row + map entry charge.
	wantIn := int64(2*(24+2*16) + 4*4 + 2*(8+48))
	if got := in.ResidentBytes(); got != wantIn {
		t.Fatalf("interned instance ResidentBytes = %d, want %d", got, wantIn)
	}

	// Boxed instances own their value bytes and use value-encoded keys
	// (1-byte uvarint length + bytes per value at these lengths).
	bx := NewBoxedInstance(internSchema(t))
	bx.MustInsert(T("ab", "cde"))
	bx.MustInsert(T("ab", "ab"))
	wantBx := int64(2*(24+2*16) + ((1 + 2) + (1 + 3) + 48) + ((1 + 2) + (1 + 2) + 48) + (2 + 3 + 2 + 2))
	if got := bx.ResidentBytes(); got != wantBx {
		t.Fatalf("boxed instance ResidentBytes = %d, want %d", got, wantBx)
	}
}

// A database charges each shared interner once, not once per relation.
func TestDatabaseResidentBytesSharedInterner(t *testing.T) {
	sch := MustDBSchema(
		MustSchema("R", Attr("A", nil)),
		MustSchema("S", Attr("B", nil)),
	)
	db := NewDatabase(sch)
	db.MustInsert("R", T("v"))
	db.MustInsert("S", T("v"))
	if db.Boxed() {
		t.Fatal("NewDatabase must default to interned storage")
	}
	if db.Relation("R").Interner() != db.Relation("S").Interner() {
		t.Fatal("relations of one database must share the interner")
	}
	want := db.Relation("R").ResidentBytes() + db.Relation("S").ResidentBytes() + db.Interner().ResidentBytes()
	if got := db.ResidentBytes(); got != want {
		t.Fatalf("database ResidentBytes = %d, want %d (interner counted once)", got, want)
	}
}

func TestDistinctStats(t *testing.T) {
	in := NewInstance(internSchema(t))
	if got := in.DistinctAt(0); got != 0 {
		t.Fatalf("empty instance DistinctAt = %d, want 0", got)
	}
	in.MustInsert(T("a", "x"))
	in.MustInsert(T("b", "x"))
	in.MustInsert(T("c", "x"))
	in.MustInsert(T("a", "y")) // duplicate value at 0
	in.MustInsert(T("a", "y")) // duplicate tuple: no stats change
	if got := in.DistinctAt(0); got != 3 {
		t.Fatalf("DistinctAt(0) = %d, want 3", got)
	}
	if got := in.DistinctAt(1); got != 2 {
		t.Fatalf("DistinctAt(1) = %d, want 2", got)
	}
	if got := in.DistinctAt(7); got != 0 {
		t.Fatalf("out-of-range DistinctAt = %d, want 0", got)
	}
	c := in.Clone()
	c.MustInsert(T("d", "x"))
	if got, orig := c.DistinctAt(0), in.DistinctAt(0); got != 4 || orig != 3 {
		t.Fatalf("clone stats must be independent: clone=%d orig=%d", got, orig)
	}
	// Boxed instances expose no statistics.
	bx := NewBoxedInstance(internSchema(t))
	bx.MustInsert(T("a", "x"))
	if got := bx.DistinctAt(0); got != 0 {
		t.Fatalf("boxed DistinctAt = %d, want 0", got)
	}
}

// Randomised equivalence of the two storage modes across the whole
// Instance API surface: interned and boxed instances fed the same
// operations must be indistinguishable.
func TestInternedBoxedInstanceEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	vals := []Value{"", "a", "b", "c", "d", "⊥pad"}
	v := func() Value { return vals[r.Intn(len(vals))] }
	for iter := 0; iter < 200; iter++ {
		sch := internSchema(t)
		itn, bx := NewInternedInstance(sch, NewInterner()), NewBoxedInstance(sch)
		for op := 0; op < 12; op++ {
			tup := T(v(), v())
			switch r.Intn(5) {
			case 0, 1:
				itn.MustInsert(tup)
				bx.MustInsert(tup)
			case 2:
				itn, bx = itn.WithTuple(tup), bx.WithTuple(tup)
			case 3:
				itn, bx = itn.WithoutTuple(tup), bx.WithoutTuple(tup)
			default:
				itn, bx = itn.Clone(), bx.Clone()
			}
			if itn.Len() != bx.Len() {
				t.Fatalf("iter %d: Len %d vs %d", iter, itn.Len(), bx.Len())
			}
			probe := T(v(), v())
			if itn.Contains(probe) != bx.Contains(probe) {
				t.Fatalf("iter %d: Contains(%v) diverges", iter, probe)
			}
			ir, iok := itn.LookupIndexed([]int{0}, []Value{probe[0]})
			br, bok := bx.LookupIndexed([]int{0}, []Value{probe[0]})
			if iok != bok || len(ir) != len(br) {
				t.Fatalf("iter %d: LookupIndexed diverges: %v,%v vs %v,%v", iter, ir, iok, br, bok)
			}
		}
		if itn.String() != bx.String() {
			t.Fatalf("iter %d: render diverges:\n%s\n%s", iter, itn, bx)
		}
		if !itn.Equal(bx) || !bx.Equal(itn) {
			t.Fatalf("iter %d: set equality diverges", iter)
		}
		u1, u2 := itn.Union(bx), bx.Union(itn)
		if !u1.Equal(u2) || u1.Len() != itn.Len() {
			t.Fatalf("iter %d: union diverges", iter)
		}
	}
}

// The key-building hot paths must not allocate: AppendKey and
// AppendValueKey into a reused scratch buffer, AppendIDKey, interned
// membership tests, and warm index probes.
func TestHotPathZeroAlloc(t *testing.T) {
	prevMetrics := Metrics()
	SetMetrics(nil)
	defer SetMetrics(prevMetrics)

	tup := T("alpha", "beta", "gamma")
	buf := make([]byte, 0, 128)
	if n := testing.AllocsPerRun(200, func() {
		buf = tup.AppendKey(buf[:0])
	}); n != 0 {
		t.Errorf("Tuple.AppendKey allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendValueKey(buf[:0], "alpha")
	}); n != 0 {
		t.Errorf("AppendValueKey allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendIDKey(buf[:0], 12345)
	}); n != 0 {
		t.Errorf("AppendIDKey allocs/op = %v, want 0", n)
	}

	sch := MustSchema("R", Attr("A", nil), Attr("B", nil))
	in := NewInternedInstance(sch, NewInterner())
	for i := 0; i < 64; i++ {
		in.MustInsert(T(Value(fmt.Sprintf("k%d", i%8)), Value(fmt.Sprintf("v%d", i))))
	}
	hit, missVal := T("k3", "v3"), T("k3", "nope")
	if n := testing.AllocsPerRun(200, func() {
		if !in.Contains(hit) || in.Contains(missVal) {
			panic("Contains wrong")
		}
	}); n != 0 {
		t.Errorf("interned Contains allocs/op = %v, want 0", n)
	}

	pos, valsHit, valsMiss := []int{0}, []Value{"k3"}, []Value{"zzz"}
	in.LookupIndexed(pos, valsHit) // build the index outside the measurement
	if n := testing.AllocsPerRun(200, func() {
		rows, ok := in.LookupIndexed(pos, valsHit)
		if !ok || len(rows) == 0 {
			panic("probe wrong")
		}
		if rows, ok := in.LookupIndexed(pos, valsMiss); !ok || len(rows) != 0 {
			panic("miss probe wrong")
		}
	}); n != 0 {
		t.Errorf("interned LookupIndexed probe allocs/op = %v, want 0", n)
	}
}

// A probe for a value the interner has never seen answers without
// building or touching an index.
func TestLookupIndexedUninternedFastMiss(t *testing.T) {
	in := NewInternedInstance(internSchema(t), NewInterner())
	in.MustInsert(T("a", "b"))
	rows, ok := in.LookupIndexed([]int{0}, []Value{"unseen"})
	if !ok || rows != nil {
		t.Fatalf("fast miss = %v,%v want nil,true", rows, ok)
	}
}

// SetDefaultBoxed flips the storage mode of subsequent constructors.
func TestDefaultBoxedFlag(t *testing.T) {
	SetDefaultBoxed(true)
	defer SetDefaultBoxed(false)
	if in := NewInstance(internSchema(t)); !in.Boxed() {
		t.Fatal("NewInstance must honour the boxed default")
	}
	sch := MustDBSchema(MustSchema("R", Attr("A", nil)))
	if db := NewDatabase(sch); !db.Boxed() || !db.Relation("R").Boxed() {
		t.Fatal("NewDatabase must honour the boxed default")
	}
	SetDefaultBoxed(false)
	if in := NewInstance(internSchema(t)); in.Boxed() {
		t.Fatal("NewInstance must return to interned storage")
	}
}
