package relation

import (
	"reflect"
	"testing"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := NewSchema("R", Attr("A", nil), Attr("A", nil)); err == nil {
		t.Fatal("duplicate attribute should fail")
	}
	if _, err := NewSchema("R", Attr("", nil)); err == nil {
		t.Fatal("unnamed attribute should fail")
	}
}

func TestSchemaDefaultsInfiniteDomain(t *testing.T) {
	s := MustSchema("R", Attr("A", nil), Attr("B", Bool()))
	if s.DomainAt(0).IsFinite() {
		t.Fatal("nil domain should default to infinite")
	}
	if !s.DomainAt(1).IsFinite() {
		t.Fatal("explicit finite domain lost")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := MustSchema("R", Attr("A", nil), Attr("B", nil), Attr("C", nil))
	if s.Arity() != 3 {
		t.Fatalf("Arity = %d", s.Arity())
	}
	if s.AttrIndex("B") != 1 || s.AttrIndex("Z") != -1 {
		t.Fatal("AttrIndex wrong")
	}
	if got := s.AttrNames(); !reflect.DeepEqual(got, []string{"A", "B", "C"}) {
		t.Fatalf("AttrNames = %v", got)
	}
	if got := s.String(); got != "R(A, B, C)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSchemaAdmits(t *testing.T) {
	s := MustSchema("R", Attr("A", Bool()), Attr("B", nil))
	if !s.Admits(T("0", "anything")) {
		t.Fatal("valid tuple rejected")
	}
	if s.Admits(T("2", "x")) {
		t.Fatal("out-of-domain value accepted")
	}
	if s.Admits(T("0")) {
		t.Fatal("wrong arity accepted")
	}
}

func TestDBSchema(t *testing.T) {
	r1 := MustSchema("R1", Attr("A", nil))
	r2 := MustSchema("R2", Attr("A", nil), Attr("B", nil))
	db := MustDBSchema(r1, r2)
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if db.Relation("R1") != r1 || db.Relation("R2") != r2 {
		t.Fatal("lookup failed")
	}
	if db.Relation("nope") != nil {
		t.Fatal("missing relation should be nil")
	}
	if got := db.Names(); !reflect.DeepEqual(got, []string{"R1", "R2"}) {
		t.Fatalf("Names = %v", got)
	}
	if err := db.Add(r1); err == nil {
		t.Fatal("duplicate relation should fail")
	}
	if err := db.Add(nil); err == nil {
		t.Fatal("nil schema should fail")
	}
}

func TestDBSchemaString(t *testing.T) {
	db := MustDBSchema(MustSchema("B", Attr("X", nil)), MustSchema("A", Attr("Y", nil)))
	if got := db.String(); got != "A(Y); B(X)" {
		t.Fatalf("String = %q", got)
	}
}
