package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pairSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("R", Attr("A", nil), Attr("B", nil))
}

func TestTupleKeyInjective(t *testing.T) {
	// Classic separator-collision cases must key differently.
	cases := [][2]Tuple{
		{T("a", "bc"), T("ab", "c")},
		{T("", "x"), T("x", "")},
		{T("1:1"), T("1", "1")[:1]},
	}
	for _, c := range cases {
		if c[0].Key() == c[1].Key() {
			t.Fatalf("Key collision between %v and %v", c[0], c[1])
		}
	}
}

func TestTupleCompareAndEqual(t *testing.T) {
	if T("a", "b").Compare(T("a", "c")) >= 0 {
		t.Fatal("compare order wrong")
	}
	if T("a").Compare(T("a", "b")) >= 0 {
		t.Fatal("prefix should sort first")
	}
	if T("a", "b").Compare(T("a", "b")) != 0 {
		t.Fatal("equal tuples should compare 0")
	}
	if !T("a", "b").Equal(T("a", "b")) || T("a").Equal(T("a", "b")) {
		t.Fatal("Equal wrong")
	}
}

func TestInstanceSetSemantics(t *testing.T) {
	in := NewInstance(pairSchema(t))
	in.MustInsert(T("1", "2"))
	in.MustInsert(T("1", "2"))
	in.MustInsert(T("3", "4"))
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (set semantics)", in.Len())
	}
	if !in.Contains(T("1", "2")) || in.Contains(T("9", "9")) {
		t.Fatal("Contains wrong")
	}
}

func TestInstanceInsertValidates(t *testing.T) {
	s := MustSchema("R", Attr("A", Bool()))
	in := NewInstance(s)
	if err := in.Insert(T("7")); err == nil {
		t.Fatal("out-of-domain insert should fail")
	}
	if err := in.Insert(T("0", "1")); err == nil {
		t.Fatal("wrong-arity insert should fail")
	}
}

func TestInstanceSetOps(t *testing.T) {
	s := pairSchema(t)
	a := MustInstance(s, T("1", "1"), T("2", "2"))
	b := MustInstance(s, T("2", "2"), T("3", "3"))

	u := a.Union(b)
	if u.Len() != 3 {
		t.Fatalf("union Len = %d", u.Len())
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatal("union mutated operands")
	}

	if !a.SubsetOf(u) || u.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if !a.ProperSubsetOf(u) || a.ProperSubsetOf(a) {
		t.Fatal("ProperSubsetOf wrong")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Fatal("Equal wrong")
	}

	w := a.WithTuple(T("9", "9"))
	if !w.Contains(T("9", "9")) || a.Contains(T("9", "9")) {
		t.Fatal("WithTuple wrong or mutated receiver")
	}
	wo := a.WithoutTuple(T("1", "1"))
	if wo.Contains(T("1", "1")) || wo.Len() != 1 || a.Len() != 2 {
		t.Fatal("WithoutTuple wrong or mutated receiver")
	}
}

func TestInstanceActiveDomain(t *testing.T) {
	a := MustInstance(pairSchema(t), T("1", "2"), T("2", "3"))
	got := a.ActiveDomain(nil).Values()
	want := []Value{"1", "2", "3"}
	if len(got) != len(want) {
		t.Fatalf("ActiveDomain = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ActiveDomain = %v", got)
		}
	}
}

func TestInstanceStringDeterministic(t *testing.T) {
	s := pairSchema(t)
	a := MustInstance(s, T("2", "2"), T("1", "1"))
	b := MustInstance(s, T("1", "1"), T("2", "2"))
	if a.String() != b.String() {
		t.Fatalf("String depends on insertion order: %q vs %q", a.String(), b.String())
	}
	if a.String() != "R{(1, 1), (2, 2)}" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestInstanceCloneIsDeep(t *testing.T) {
	a := MustInstance(pairSchema(t), T("1", "1"))
	c := a.Clone()
	c.MustInsert(T("2", "2"))
	if a.Contains(T("2", "2")) {
		t.Fatal("clone shares storage")
	}
}

func TestNilInstanceReads(t *testing.T) {
	var in *Instance
	if in.Len() != 0 || in.Contains(T("x")) || in.Tuples() != nil {
		t.Fatal("nil instance reads should be empty")
	}
	other := MustInstance(pairSchema(t), T("1", "1"))
	if !in.SubsetOf(other) {
		t.Fatal("nil ⊆ anything")
	}
}

// Property: union is commutative, associative and idempotent up to set
// equality; insertion order never matters.
func TestInstanceUnionProperties(t *testing.T) {
	s := MustSchema("P", Attr("A", Bool()), Attr("B", Bool()))
	gen := func(r *rand.Rand) *Instance {
		in := NewInstance(s)
		for i := 0; i < r.Intn(6); i++ {
			in.MustInsert(T(Value(rune('0'+r.Intn(2))), Value(rune('0'+r.Intn(2)))))
		}
		return in
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		if !a.Union(b).Equal(b.Union(a)) {
			t.Fatal("union not commutative")
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			t.Fatal("union not associative")
		}
		if !a.Union(a).Equal(a) {
			t.Fatal("union not idempotent")
		}
	}
}

// Property (testing/quick): a tuple round-trips through Key uniquely —
// distinct tuples over a small alphabet have distinct keys.
func TestTupleKeyQuick(t *testing.T) {
	f := func(a, b []byte) bool {
		ta := make(Tuple, len(a))
		for i, x := range a {
			ta[i] = Value(string([]byte{x % 3, ':'}))
		}
		tb := make(Tuple, len(b))
		for i, x := range b {
			tb[i] = Value(string([]byte{x % 3, ':'}))
		}
		if ta.Equal(tb) {
			return ta.Key() == tb.Key()
		}
		return ta.Key() != tb.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
