package relation

import "sync"

// This file implements the interned value domain: a bijection between
// Values and dense uint32 ids. Interning buys the storage layer three
// things at once. First, every occurrence of a value shares one string
// backing, so a 10M-tuple master instance holds each distinct constant
// once. Second, tuple identity reduces to fixed-width id sequences —
// 4 bytes per column instead of a uvarint-length-prefixed copy of the
// value bytes — which makes membership keys and index bucket keys both
// smaller and cheaper to hash. Third, a probe for a value the interner
// has never seen can answer "no rows" without touching any index,
// because an un-interned value cannot occur in any instance sharing the
// interner.
//
// One interner is shared by all instances of a Database (and every
// clone derived from it — candidate instances in the decider searches
// keep their parent's interner). Ids are assigned densely in first-
// intern order and are never reused, so readers may hold ids across
// concurrent interns.

// Interner maps Values to dense uint32 ids and back. All methods are
// safe for concurrent use: the parallel candidate searches intern new
// values into a shared interner while sibling workers resolve probes
// against it. Ids are stable — once assigned, an id always names the
// same value.
type Interner struct {
	mu   sync.RWMutex
	ids  map[Value]uint32
	vals []Value
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Value]uint32, 64)}
}

// Intern returns the id of v, assigning the next dense id on first
// sight.
func (it *Interner) Intern(v Value) uint32 {
	id, _ := it.intern(v)
	return id
}

// intern is Intern plus a freshness flag, so the insert hot path can
// batch hit/size counter updates per tuple instead of per value.
func (it *Interner) intern(v Value) (uint32, bool) {
	id, _, fresh := it.internCanonical(v)
	return id, fresh
}

// internCanonical interns v and additionally returns the canonical
// Value sharing the interner's string backing, saving the insert hot
// path a second lock round-trip through ValueOf.
func (it *Interner) internCanonical(v Value) (uint32, Value, bool) {
	it.mu.RLock()
	id, ok := it.ids[v]
	var canon Value
	if ok {
		canon = it.vals[id]
	}
	it.mu.RUnlock()
	if ok {
		return id, canon, false
	}
	it.mu.Lock()
	if id, ok = it.ids[v]; ok {
		canon = it.vals[id]
		it.mu.Unlock()
		return id, canon, false
	}
	id = uint32(len(it.vals))
	it.vals = append(it.vals, v)
	it.ids[v] = id
	it.mu.Unlock()
	return id, v, true
}

// Lookup returns the id of v without interning it; ok is false when v
// has never been interned — and therefore occurs in no instance sharing
// this interner.
func (it *Interner) Lookup(v Value) (uint32, bool) {
	it.mu.RLock()
	id, ok := it.ids[v]
	it.mu.RUnlock()
	return id, ok
}

// ValueOf returns the canonical Value for an id previously returned by
// Intern. The canonical Value shares the interner's string backing, so
// rows built from it deduplicate their storage. Panics on an id the
// interner never issued.
func (it *Interner) ValueOf(id uint32) Value {
	it.mu.RLock()
	v := it.vals[id]
	it.mu.RUnlock()
	return v
}

// Len is the number of distinct values interned so far.
func (it *Interner) Len() int {
	it.mu.RLock()
	n := len(it.vals)
	it.mu.RUnlock()
	return n
}

// Resident-size accounting constants. These are deliberately fixed
// (not unsafe.Sizeof probes) so the byte charges that feed the rcserved
// registry cap are identical on every platform and can be pinned by
// tests: a slice header, a string header, and a flat per-map-entry
// bookkeeping charge covering bucket space and the hash seed share.
const (
	sliceHeaderBytes  = 24
	stringHeaderBytes = 16
	mapEntryBytes     = 48
)

// ResidentBytes estimates the heap bytes the interner retains: each
// distinct value's bytes stored once, plus a string header in the id
// table, a string header and 4-byte id in the reverse map entry, and
// the per-entry map bookkeeping charge.
func (it *Interner) ResidentBytes() int64 {
	if it == nil {
		return 0
	}
	it.mu.RLock()
	b := int64(len(it.vals)) * (2*stringHeaderBytes + 4 + mapEntryBytes)
	for _, v := range it.vals {
		b += int64(len(v))
	}
	it.mu.RUnlock()
	return b
}
