package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDedupValues(t *testing.T) {
	got := DedupValues([]Value{"b", "a", "b", "c", "a"})
	want := []Value{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DedupValues = %v, want %v", got, want)
	}
	if out := DedupValues(nil); len(out) != 0 {
		t.Fatalf("DedupValues(nil) = %v, want empty", out)
	}
}

func TestValueSetBasics(t *testing.T) {
	s := NewValueSet("x", "y")
	if !s.Contains("x") || !s.Contains("y") || s.Contains("z") {
		t.Fatal("membership wrong after construction")
	}
	if !s.Add("z") {
		t.Fatal("Add of fresh value should report true")
	}
	if s.Add("z") {
		t.Fatal("Add of duplicate should report false")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.Values(); !reflect.DeepEqual(got, []Value{"x", "y", "z"}) {
		t.Fatalf("Values = %v", got)
	}
}

func TestValueSetCloneIndependence(t *testing.T) {
	s := NewValueSet("a")
	c := s.Clone()
	c.Add("b")
	if s.Contains("b") {
		t.Fatal("mutating clone changed original")
	}
	if !c.Contains("a") {
		t.Fatal("clone lost original member")
	}
}

func TestValueSetAddAll(t *testing.T) {
	s := NewValueSet("a")
	s.AddAll(NewValueSet("b", "c"))
	s.AddAll(nil)
	if got := s.Values(); !reflect.DeepEqual(got, []Value{"a", "b", "c"}) {
		t.Fatalf("Values = %v", got)
	}
}

func TestValueSetNilReceiverSafety(t *testing.T) {
	var s *ValueSet
	if s.Contains("a") || s.Len() != 0 || s.Values() != nil {
		t.Fatal("nil ValueSet should behave as empty for reads")
	}
}

func TestValueSetString(t *testing.T) {
	if got := NewValueSet("b", "a").String(); got != "{a, b}" {
		t.Fatalf("String = %q", got)
	}
}

func TestFiniteDomain(t *testing.T) {
	d := Finite("color", "red", "blue", "red")
	if !d.IsFinite() {
		t.Fatal("Finite domain should be finite")
	}
	if got := d.Values(); !reflect.DeepEqual(got, []Value{"blue", "red"}) {
		t.Fatalf("Values = %v", got)
	}
	if !d.Contains("red") || d.Contains("green") {
		t.Fatal("membership wrong")
	}
}

func TestInfiniteDomain(t *testing.T) {
	d := Infinite("any")
	if d.IsFinite() {
		t.Fatal("Infinite domain should not be finite")
	}
	if d.Values() != nil {
		t.Fatal("infinite domain enumerates no values")
	}
	if !d.Contains("anything at all") {
		t.Fatal("infinite domain contains everything")
	}
}

func TestBoolDomain(t *testing.T) {
	d := Bool()
	if got := d.Values(); !reflect.DeepEqual(got, []Value{"0", "1"}) {
		t.Fatalf("Bool() = %v", got)
	}
}

func TestDomainString(t *testing.T) {
	if got := Finite("b", "0", "1").String(); got != "b{0,1}" {
		t.Fatalf("finite String = %q", got)
	}
	if got := Infinite("x").String(); got != "x(∞)" {
		t.Fatalf("infinite String = %q", got)
	}
	var d *Domain
	if got := d.String(); got != "⊤" {
		t.Fatalf("nil String = %q", got)
	}
}

// Property: DedupValues output is sorted and duplicate-free, and
// preserves the underlying set.
func TestDedupValuesProperty(t *testing.T) {
	f := func(raw []string) bool {
		vs := make([]Value, len(raw))
		set := map[Value]bool{}
		for i, s := range raw {
			vs[i] = Value(s)
			set[Value(s)] = true
		}
		out := DedupValues(vs)
		if len(out) != len(set) {
			return false
		}
		for i, v := range out {
			if !set[v] {
				return false
			}
			if i > 0 && !(out[i-1] < v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
