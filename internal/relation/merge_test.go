package relation

import (
	"math/rand"
	"testing"
)

func TestMergerRoundTrip(t *testing.T) {
	sch := MustDBSchema(
		MustSchema("R", Attr("A", nil), Attr("B", nil), Attr("C", nil)),
		MustSchema("S", Attr("X", nil)),
	)
	m, err := NewMerger(sch)
	if err != nil {
		t.Fatal(err)
	}
	if m.Merged().Arity() != 4 { // tag + max arity 3
		t.Fatalf("merged arity = %d", m.Merged().Arity())
	}

	db := NewDatabase(sch)
	db.MustInsert("R", T("1", "2", "3"))
	db.MustInsert("S", T("x"))

	enc, err := m.Encode(db)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Len() != 2 {
		t.Fatalf("encoded Len = %d", enc.Len())
	}
	dec, err := m.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(db) {
		t.Fatalf("round trip mismatch: %v vs %v", dec, db)
	}
}

func TestMergerPadWidth(t *testing.T) {
	sch := MustDBSchema(
		MustSchema("R", Attr("A", nil), Attr("B", nil)),
		MustSchema("S", Attr("X", nil)),
	)
	m, _ := NewMerger(sch)
	if w, _ := m.PadWidth("R"); w != 0 {
		t.Fatalf("PadWidth(R) = %d", w)
	}
	if w, _ := m.PadWidth("S"); w != 1 {
		t.Fatalf("PadWidth(S) = %d", w)
	}
	if _, err := m.PadWidth("nope"); err == nil {
		t.Fatal("unknown relation should fail")
	}
}

func TestMergerRejectsPadConstant(t *testing.T) {
	sch := MustDBSchema(MustSchema("R", Attr("A", nil)))
	m, _ := NewMerger(sch)
	if _, err := m.EncodeTuple("R", T(Pad)); err == nil {
		t.Fatal("pad constant in source data should be rejected")
	}
}

func TestMergerDecodeValidation(t *testing.T) {
	sch := MustDBSchema(
		MustSchema("R", Attr("A", nil), Attr("B", nil)),
		MustSchema("S", Attr("X", nil)),
	)
	m, _ := NewMerger(sch)
	if _, _, err := m.DecodeTuple(T("R", "1")); err == nil {
		t.Fatal("short merged tuple should fail")
	}
	if _, _, err := m.DecodeTuple(T("nope", "1", "2")); err == nil {
		t.Fatal("unknown tag should fail")
	}
	// Non-pad value in a pad column of the shorter relation S.
	if _, _, err := m.DecodeTuple(T("S", "x", "junk")); err == nil {
		t.Fatal("non-pad value in pad column should fail")
	}
}

func TestMergerEmptySchema(t *testing.T) {
	if _, err := NewMerger(MustDBSchema()); err == nil {
		t.Fatal("empty schema should fail to merge")
	}
}

func TestMergerTagDomainIsFinite(t *testing.T) {
	sch := MustDBSchema(MustSchema("R", Attr("A", nil)), MustSchema("S", Attr("B", nil)))
	m, _ := NewMerger(sch)
	tag := m.Merged().Attrs[0]
	if tag.Name != TagAttr || !tag.Domain.IsFinite() {
		t.Fatal("tag attribute must be finite over relation names")
	}
	if !tag.Domain.Contains("R") || !tag.Domain.Contains("S") || tag.Domain.Contains("T") {
		t.Fatal("tag domain members wrong")
	}
}

// Property: Encode is a bijection on random databases — Decode∘Encode
// is the identity and sizes are preserved.
func TestMergerRoundTripRandom(t *testing.T) {
	sch := MustDBSchema(
		MustSchema("R", Attr("A", nil), Attr("B", nil)),
		MustSchema("S", Attr("X", nil)),
		MustSchema("U", Attr("P", nil), Attr("Q", nil), Attr("Z", nil)),
	)
	m, _ := NewMerger(sch)
	r := rand.New(rand.NewSource(99))
	vals := []Value{"a", "b", "c", "d"}
	pick := func() Value { return vals[r.Intn(len(vals))] }
	for trial := 0; trial < 100; trial++ {
		db := NewDatabase(sch)
		for i := 0; i < r.Intn(8); i++ {
			db.MustInsert("R", T(pick(), pick()))
		}
		for i := 0; i < r.Intn(8); i++ {
			db.MustInsert("S", T(pick()))
		}
		for i := 0; i < r.Intn(8); i++ {
			db.MustInsert("U", T(pick(), pick(), pick()))
		}
		enc, err := m.Encode(db)
		if err != nil {
			t.Fatal(err)
		}
		if enc.Len() != db.Size() {
			t.Fatalf("size not preserved: %d vs %d", enc.Len(), db.Size())
		}
		dec, err := m.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(db) {
			t.Fatalf("round trip mismatch at trial %d", trial)
		}
	}
}
