package relation

import "encoding/binary"

// This file is the one place that encodes values and tuples into the
// collision-free string keys used for set membership throughout the
// system. The encoding is a length-prefixed concatenation — a uvarint
// length followed by the raw value bytes — so no value content can
// collide with a separator, and encoding is a pure append: callers on
// hot paths reuse a scratch buffer and pay zero allocations per key.

// AppendValueKey appends the collision-free encoding of one value.
func AppendValueKey(dst []byte, v Value) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// AppendKey appends the collision-free encoding of the tuple. Encoding
// a prefix of a tuple never yields the encoding of a different tuple,
// and distinct tuples encode to distinct byte strings.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = AppendValueKey(dst, v)
	}
	return dst
}

// Key encodes the tuple as a collision-free string, used for set
// membership. It is AppendKey materialised as a string; code that
// builds many keys should keep a scratch buffer and use AppendKey.
func (t Tuple) Key() string {
	return string(t.AppendKey(make([]byte, 0, 8*len(t)+16)))
}

// AppendIDKey appends the fixed-width (4-byte big-endian) encoding of
// one interned value id. Id keys are collision-free by construction —
// the interner is a bijection and every column contributes exactly four
// bytes — and hash faster than the variable-width value encoding, which
// is why interned instances key their membership sets and index buckets
// with them.
func AppendIDKey(dst []byte, id uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, id)
}
