package relation

import (
	"sync/atomic"

	"relcomplete/internal/obs"
)

// metrics is the package-wide observability hook. Instances are
// created ubiquitously and threading a per-instance metrics reference
// through every constructor would bloat the relational substrate's
// API, so the index instrumentation reports to one process-global
// *obs.Metrics instead. An atomic pointer keeps concurrent
// SetMetrics/readers race-clean; the nil default costs one atomic
// load on the instrumented paths.
var metrics atomic.Pointer[obs.Metrics]

// SetMetrics installs m (nil to disable) as the sink for index-build,
// index-maintenance and index-probe counters. Safe to call
// concurrently with readers; typically called once by a CLI or test
// before solving starts.
func SetMetrics(m *obs.Metrics) { metrics.Store(m) }

// Metrics returns the currently installed sink (nil when disabled).
func Metrics() *obs.Metrics { return metrics.Load() }
