package relation

import (
	"sync/atomic"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// metrics is the package-wide observability hook. Instances are
// created ubiquitously and threading a per-instance metrics reference
// through every constructor would bloat the relational substrate's
// API, so the index instrumentation reports to one process-global
// *obs.Metrics instead. An atomic pointer keeps concurrent
// SetMetrics/readers race-clean; the nil default costs one atomic
// load on the instrumented paths.
var metrics atomic.Pointer[obs.Metrics]

// SetMetrics installs m (nil to disable) as the sink for index-build,
// index-maintenance and index-probe counters. Safe to call
// concurrently with readers; typically called once by a CLI or test
// before solving starts.
func SetMetrics(m *obs.Metrics) { metrics.Store(m) }

// Metrics returns the currently installed sink (nil when disabled).
func Metrics() *obs.Metrics { return metrics.Load() }

// faultPlan is the package-wide fault-injection hook, mirroring the
// metrics hook for the same reason: instances are created everywhere
// and the harness is tests-only, so one process-global armed plan
// beats threading a plan through every constructor. nil (the default,
// always in production) is inert.
var faultPlan atomic.Pointer[fault.Plan]

// SetFaultPlan arms p (nil to disarm) at the relation-layer injection
// sites. Tests that arm it must disarm it again (defer
// SetFaultPlan(nil)) — the hook is process-global.
func SetFaultPlan(p *fault.Plan) { faultPlan.Store(p) }

// FaultPlan returns the currently armed plan (nil when disarmed).
func FaultPlan() *fault.Plan { return faultPlan.Load() }

// boxedDefault selects the storage mode of instances whose constructor
// does not choose one: false (the default, always in production) builds
// interned instances; true builds boxed ones. Like the metrics and
// fault hooks it is process-global because instances are created
// ubiquitously — the flag exists so `rcbench -boxed` and the
// RELCOMPLETE_BOXED bench environment can run the whole system on the
// boxed oracle path, mirroring the -naivejoin convention.
var boxedDefault atomic.Bool

// SetDefaultBoxed selects boxed (true) or interned (false) storage for
// subsequently created instances and databases. Tests that set it must
// restore it (defer SetDefaultBoxed(false)) — the flag is
// process-global.
func SetDefaultBoxed(boxed bool) { boxedDefault.Store(boxed) }

// DefaultBoxed reports the current process-wide default storage mode.
func DefaultBoxed() bool { return boxedDefault.Load() }
