package relation

import (
	"fmt"
	"strings"
	"sync"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// Tuple is a row of constants; position i belongs to attribute i of the
// owning schema.
type Tuple []Value

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Compare orders tuples lexicographically (shorter first on prefix tie).
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := CompareValues(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// String renders the tuple as (a, b, c).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = string(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// T builds a tuple from string literals; convenience for tests and
// reductions.
func T(vals ...Value) Tuple { return Tuple(vals) }

// Instance is a set-semantics instance of a single relation schema.
// Iteration order is insertion order, which makes every derived
// computation deterministic.
type Instance struct {
	schema *Schema
	rows   []Tuple
	seen   map[string]int // tuple key -> index in rows

	// idxMu guards indexes. Indexes are built lazily by the first query
	// that joins on a given position set and maintained incrementally on
	// insert, so concurrent READERS (the parallel candidate searches
	// evaluate queries against shared instances) may race to build one;
	// the mutex serialises them. Concurrent mutation with reads remains
	// unsupported, as it always was for rows and seen.
	idxMu   sync.Mutex
	indexes map[uint64]*posIndex // bitmask of key positions -> index
}

// posIndex is a hash index of the instance on a fixed set of column
// positions: the encoded values at those positions map to the rows that
// carry them, in insertion order.
type posIndex struct {
	positions []int // ascending
	buckets   map[string][]Tuple
}

func (ix *posIndex) add(t Tuple) {
	key := make([]byte, 0, 8*len(ix.positions)+16)
	for _, p := range ix.positions {
		key = AppendValueKey(key, t[p])
	}
	ix.buckets[string(key)] = append(ix.buckets[string(key)], t)
}

// maxIndexedArity bounds the position bitmask; wider relations (which
// the paper never produces) fall back to scans.
const maxIndexedArity = 64

// posMask folds ascending positions into a bitmask key.
func posMask(positions []int) uint64 {
	var m uint64
	for _, p := range positions {
		m |= 1 << uint(p)
	}
	return m
}

// LookupIndexed returns the rows whose columns at positions (ascending)
// equal vals, using a lazily built hash index. The second result is
// false when the instance cannot serve the lookup from an index (no
// positions, or arity beyond the bitmask width) and the caller must
// scan. The returned slice is shared with the index; callers must not
// mutate it.
func (in *Instance) LookupIndexed(positions []int, vals []Value) ([]Tuple, bool) {
	if in == nil {
		return nil, true // vacuously indexable: no rows match
	}
	if len(positions) == 0 || in.schema.Arity() > maxIndexedArity {
		return nil, false
	}
	if err := faultPlan.Load().Visit(fault.SiteRelationProbe); err != nil {
		// Graceful degradation: an injected probe error demotes the
		// lookup to "not indexable" and the caller falls back to a scan,
		// so the verdict is unaffected (delays and panics hit directly).
		return nil, false
	}
	m := metrics.Load()
	mask := posMask(positions)
	in.idxMu.Lock()
	ix := in.indexes[mask]
	if ix == nil {
		ix = &posIndex{
			positions: append([]int(nil), positions...),
			buckets:   make(map[string][]Tuple, len(in.rows)),
		}
		for _, t := range in.rows {
			ix.add(t)
		}
		if in.indexes == nil {
			in.indexes = make(map[uint64]*posIndex, 4)
		}
		in.indexes[mask] = ix
		m.Inc(obs.IndexBuilds)
	}
	in.idxMu.Unlock()
	key := make([]byte, 0, 8*len(vals)+16)
	for _, v := range vals {
		key = AppendValueKey(key, v)
	}
	rows := ix.buckets[string(key)]
	if m != nil {
		m.Inc(obs.IndexProbes)
		if len(rows) > 0 {
			m.Inc(obs.IndexProbeHits)
		} else {
			m.Inc(obs.IndexProbeMisses)
		}
		m.Observe(obs.IndexProbeRows, int64(len(rows)))
	}
	return rows, true
}

// NewInstance returns an empty instance of the given schema.
func NewInstance(schema *Schema) *Instance {
	return &Instance{schema: schema, seen: make(map[string]int)}
}

// InstanceOf builds an instance of schema containing the given tuples;
// it returns an error if a tuple does not fit the schema.
func InstanceOf(schema *Schema, tuples ...Tuple) (*Instance, error) {
	inst := NewInstance(schema)
	for _, t := range tuples {
		if err := inst.Insert(t); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// MustInstance is InstanceOf that panics on error.
func MustInstance(schema *Schema, tuples ...Tuple) *Instance {
	inst, err := InstanceOf(schema, tuples...)
	if err != nil {
		panic(err)
	}
	return inst
}

// Schema returns the instance's relation schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Len returns the number of tuples.
func (in *Instance) Len() int {
	if in == nil {
		return 0
	}
	return len(in.rows)
}

// IsEmpty reports whether the instance has no tuples.
func (in *Instance) IsEmpty() bool { return in.Len() == 0 }

// Insert adds t (validated against the schema); duplicates are ignored.
func (in *Instance) Insert(t Tuple) error {
	if !in.schema.Admits(t) {
		return fmt.Errorf("relation: tuple %v does not fit schema %s", t, in.schema)
	}
	in.insertUnchecked(t)
	return nil
}

// MustInsert is Insert that panics on error.
func (in *Instance) MustInsert(t Tuple) {
	if err := in.Insert(t); err != nil {
		panic(err)
	}
}

func (in *Instance) insertUnchecked(t Tuple) bool {
	k := t.Key()
	if _, ok := in.seen[k]; ok {
		return false
	}
	in.seen[k] = len(in.rows)
	row := t.Clone()
	in.rows = append(in.rows, row)
	// Keep live indexes exact: appending to each bucket is cheaper than
	// invalidating and re-scanning on the next lookup.
	in.idxMu.Lock()
	if len(in.indexes) > 0 {
		for _, ix := range in.indexes {
			ix.add(row)
		}
		metrics.Load().Add(obs.IndexInserts, int64(len(in.indexes)))
	}
	in.idxMu.Unlock()
	return true
}

// Contains reports whether the instance holds t.
func (in *Instance) Contains(t Tuple) bool {
	if in == nil {
		return false
	}
	_, ok := in.seen[t.Key()]
	return ok
}

// Tuples returns the tuples in insertion order. The returned slice is
// shared with the instance; callers must not mutate it.
func (in *Instance) Tuples() []Tuple {
	if in == nil {
		return nil
	}
	return in.rows
}

// Clone returns an independent copy.
func (in *Instance) Clone() *Instance {
	c := NewInstance(in.schema)
	for _, t := range in.rows {
		c.insertUnchecked(t)
	}
	return c
}

// Union returns a new instance holding the tuples of both operands.
func (in *Instance) Union(other *Instance) *Instance {
	c := in.Clone()
	if other != nil {
		for _, t := range other.rows {
			c.insertUnchecked(t)
		}
	}
	return c
}

// WithTuple returns a copy of the instance with t added.
func (in *Instance) WithTuple(t Tuple) *Instance {
	c := in.Clone()
	c.insertUnchecked(t)
	return c
}

// WithoutTuple returns a copy of the instance with t removed.
func (in *Instance) WithoutTuple(t Tuple) *Instance {
	c := NewInstance(in.schema)
	k := t.Key()
	for _, u := range in.rows {
		if u.Key() != k {
			c.insertUnchecked(u)
		}
	}
	return c
}

// SubsetOf reports in ⊆ other.
func (in *Instance) SubsetOf(other *Instance) bool {
	if in == nil {
		return true
	}
	for _, t := range in.rows {
		if !other.Contains(t) {
			return false
		}
	}
	return true
}

// Equal reports set equality with other.
func (in *Instance) Equal(other *Instance) bool {
	return in.Len() == other.Len() && in.SubsetOf(other)
}

// ProperSubsetOf reports in ⊊ other.
func (in *Instance) ProperSubsetOf(other *Instance) bool {
	return in.Len() < other.Len() && in.SubsetOf(other)
}

// ActiveDomain collects every constant appearing in the instance into dst
// (allocating it when nil) and returns dst.
func (in *Instance) ActiveDomain(dst *ValueSet) *ValueSet {
	if dst == nil {
		dst = NewValueSet()
	}
	if in == nil {
		return dst
	}
	for _, t := range in.rows {
		for _, v := range t {
			dst.Add(v)
		}
	}
	return dst
}

// Sorted returns the tuples in lexicographic order (a fresh slice).
func (in *Instance) Sorted() []Tuple {
	out := make([]Tuple, len(in.rows))
	copy(out, in.rows)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Compare(out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// String renders the instance deterministically.
func (in *Instance) String() string {
	var b strings.Builder
	b.WriteString(in.schema.Name)
	b.WriteByte('{')
	for i, t := range in.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
