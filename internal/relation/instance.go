package relation

import (
	"fmt"
	"maps"
	"strings"
	"sync"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
)

// Tuple is a row of constants; position i belongs to attribute i of the
// owning schema.
type Tuple []Value

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Compare orders tuples lexicographically (shorter first on prefix tie).
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := CompareValues(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// String renders the tuple as (a, b, c).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = string(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// T builds a tuple from string literals; convenience for tests and
// reductions.
func T(vals ...Value) Tuple { return Tuple(vals) }

// Instance is a set-semantics instance of a single relation schema.
// Iteration order is insertion order, which makes every derived
// computation deterministic.
//
// Instances come in two storage modes. The default, interned mode keys
// its membership set and hash indexes by dense value ids (4 bytes per
// column, see Interner) and additionally keeps the rows as a flat
// []uint32 id array plus per-position distinct-value statistics that
// feed the query planner's cost estimates. Boxed mode is the original
// representation — variable-width value-encoded keys, no id storage,
// no statistics — kept behind NewBoxedInstance / SetDefaultBoxed as a
// differential oracle and ablation baseline, exactly like the
// NaiveJoin evaluator. Both modes expose identical semantics.
type Instance struct {
	schema *Schema
	rows   []Tuple
	seen   map[string]int // tuple key -> index in rows

	// Interned storage. intern == nil means boxed mode; otherwise ids
	// holds the rows flattened as len(rows)×arity interned ids.
	intern *Interner
	ids    []uint32

	// Per-position distinct-value statistics, computed lazily from ids
	// on the first DistinctAt/indexSizeHint call and cached until the
	// row count changes. Guarded by idxMu (the planner reads statistics
	// from instances shared across parallel workers).
	statRows     int
	statDistinct []int

	// Distinct values in first-occurrence order, computed lazily by
	// ActiveDomain and cached until the row count changes — the eval
	// engine recomputes its domain per plan run, so on instances that
	// are queried repeatedly (every candidate model is checked against
	// each containment constraint) this turns O(rows×arity) hash inserts
	// per run into O(distinct). Guarded by idxMu.
	adomRows int
	adomVals []Value

	// idxMu guards indexes. Indexes are built lazily by the first query
	// that joins on a given position set and maintained incrementally on
	// insert, so concurrent READERS (the parallel candidate searches
	// evaluate queries against shared instances) may race to build one;
	// the mutex serialises them. Concurrent mutation with reads remains
	// unsupported, as it always was for rows and seen.
	idxMu   sync.Mutex
	indexes map[uint64]*posIndex // bitmask of key positions -> index
}

// posIndex is a hash index of the instance on a fixed set of column
// positions: the encoded values at those positions map to the rows that
// carry them, in insertion order. Interned instances key buckets by
// fixed-width ids; boxed instances by the value encoding.
type posIndex struct {
	positions []int // ascending
	buckets   map[string][]Tuple
}

// add indexes the row at rowIdx. The instance supplies the id row in
// interned mode; t is the boxed view either way.
func (ix *posIndex) add(in *Instance, rowIdx int, t Tuple) {
	var arr [scratchKeyBytes]byte
	key := arr[:0]
	if in.intern != nil {
		base := rowIdx * in.schema.Arity()
		for _, p := range ix.positions {
			key = AppendIDKey(key, in.ids[base+p])
		}
	} else {
		for _, p := range ix.positions {
			key = AppendValueKey(key, t[p])
		}
	}
	ix.buckets[string(key)] = append(ix.buckets[string(key)], t)
}

// maxIndexedArity bounds the position bitmask; wider relations (which
// the paper never produces) fall back to scans.
const maxIndexedArity = 64

// scratchKeyBytes sizes the stack scratch buffers of the key-building
// hot paths: 64 bytes hold 16 id-encoded columns, far beyond any key
// the paper's reductions build. Longer keys silently spill to the heap.
const scratchKeyBytes = 64

// posMask folds ascending positions into a bitmask key.
func posMask(positions []int) uint64 {
	var m uint64
	for _, p := range positions {
		m |= 1 << uint(p)
	}
	return m
}

// statsLocked returns the per-position distinct counts, recomputing
// them from the flat id array when the cache is stale. Callers must
// hold idxMu; the result is nil in boxed mode.
func (in *Instance) statsLocked() []int {
	if in.intern == nil || len(in.rows) == 0 {
		return nil
	}
	arity := in.schema.Arity()
	if in.statDistinct != nil && in.statRows == len(in.rows) {
		return in.statDistinct
	}
	seen := make(map[uint32]struct{}, len(in.rows))
	counts := make([]int, arity)
	for p := 0; p < arity; p++ {
		clear(seen)
		for base := p; base < len(in.ids); base += arity {
			seen[in.ids[base]] = struct{}{}
		}
		counts[p] = len(seen)
	}
	in.statDistinct, in.statRows = counts, len(in.rows)
	return counts
}

// indexSizeHint estimates the bucket count of an index on positions:
// the product of per-position distinct counts, clamped by the row
// count. Boxed instances have no statistics and fall back to the row
// count (one bucket per row is the worst case). Callers hold idxMu.
func (in *Instance) indexSizeHint(positions []int) int {
	stats := in.statsLocked()
	if stats == nil {
		return len(in.rows)
	}
	est := 1
	for _, p := range positions {
		if p >= len(stats) || stats[p] == 0 {
			return len(in.rows)
		}
		est *= stats[p]
		if est >= len(in.rows) {
			return len(in.rows)
		}
	}
	return est
}

// LookupIndexed returns the rows whose columns at positions (ascending)
// equal vals, using a lazily built hash index. The second result is
// false when the instance cannot serve the lookup from an index (no
// positions, or arity beyond the bitmask width) and the caller must
// scan. The returned slice is shared with the index; callers must not
// mutate it.
func (in *Instance) LookupIndexed(positions []int, vals []Value) ([]Tuple, bool) {
	if in == nil {
		return nil, true // vacuously indexable: no rows match
	}
	if len(positions) == 0 || in.schema.Arity() > maxIndexedArity {
		return nil, false
	}
	if err := faultPlan.Load().Visit(fault.SiteRelationProbe); err != nil {
		// Graceful degradation: an injected probe error demotes the
		// lookup to "not indexable" and the caller falls back to a scan,
		// so the verdict is unaffected (delays and panics hit directly).
		return nil, false
	}
	m := metrics.Load()
	var arr [scratchKeyBytes]byte
	key := arr[:0]
	if in.intern != nil {
		for _, v := range vals {
			id, ok := in.intern.Lookup(v)
			if !ok {
				// v was never interned, so no instance sharing this
				// interner holds it anywhere: answer the miss without
				// even building the index.
				if m != nil {
					m.Inc(obs.IndexProbes)
					m.Inc(obs.IndexProbeMisses)
					m.Observe(obs.IndexProbeRows, 0)
				}
				return nil, true
			}
			key = AppendIDKey(key, id)
		}
	} else {
		for _, v := range vals {
			key = AppendValueKey(key, v)
		}
	}
	mask := posMask(positions)
	in.idxMu.Lock()
	ix := in.indexes[mask]
	if ix == nil {
		ix = &posIndex{
			positions: append([]int(nil), positions...),
			buckets:   make(map[string][]Tuple, in.indexSizeHint(positions)),
		}
		for i, t := range in.rows {
			ix.add(in, i, t)
		}
		if in.indexes == nil {
			in.indexes = make(map[uint64]*posIndex, 4)
		}
		in.indexes[mask] = ix
		m.Inc(obs.IndexBuilds)
	}
	in.idxMu.Unlock()
	rows := ix.buckets[string(key)]
	if m != nil {
		m.Inc(obs.IndexProbes)
		if len(rows) > 0 {
			m.Inc(obs.IndexProbeHits)
		} else {
			m.Inc(obs.IndexProbeMisses)
		}
		m.Observe(obs.IndexProbeRows, int64(len(rows)))
	}
	return rows, true
}

// NewInstance returns an empty instance of the given schema, interned
// (with its own interner) unless SetDefaultBoxed has selected the boxed
// oracle mode process-wide. Instances that should share a Database's
// interner are built by NewDatabase or NewInternedInstance.
func NewInstance(schema *Schema) *Instance {
	if boxedDefault.Load() {
		return NewBoxedInstance(schema)
	}
	return NewInternedInstance(schema, NewInterner())
}

// NewInternedInstance returns an empty interned instance storing its
// values in it, which must not be nil. Instances meant to share storage
// (the relations of one database, a clone lineage) pass the same
// interner.
func NewInternedInstance(schema *Schema, it *Interner) *Instance {
	if it == nil {
		panic("relation: NewInternedInstance with nil interner")
	}
	return &Instance{schema: schema, seen: make(map[string]int), intern: it}
}

// NewBoxedInstance returns an empty instance using the boxed (original,
// non-interned) storage representation. It is the differential oracle
// and ablation baseline for the interned path; semantics are identical.
func NewBoxedInstance(schema *Schema) *Instance {
	return &Instance{schema: schema, seen: make(map[string]int)}
}

// emptyLike returns an empty instance with in's schema, storage mode
// and interner.
func (in *Instance) emptyLike(sizeHint int) *Instance {
	return &Instance{
		schema: in.schema,
		seen:   make(map[string]int, sizeHint),
		intern: in.intern,
	}
}

// Boxed reports whether the instance uses the boxed oracle storage.
func (in *Instance) Boxed() bool { return in != nil && in.intern == nil }

// Interner returns the instance's interner (nil in boxed mode).
func (in *Instance) Interner() *Interner {
	if in == nil {
		return nil
	}
	return in.intern
}

// InstanceOf builds an instance of schema containing the given tuples;
// it returns an error if a tuple does not fit the schema.
func InstanceOf(schema *Schema, tuples ...Tuple) (*Instance, error) {
	inst := NewInstance(schema)
	for _, t := range tuples {
		if err := inst.Insert(t); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// MustInstance is InstanceOf that panics on error.
func MustInstance(schema *Schema, tuples ...Tuple) *Instance {
	inst, err := InstanceOf(schema, tuples...)
	if err != nil {
		panic(err)
	}
	return inst
}

// Schema returns the instance's relation schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Len returns the number of tuples.
func (in *Instance) Len() int {
	if in == nil {
		return 0
	}
	return len(in.rows)
}

// IsEmpty reports whether the instance has no tuples.
func (in *Instance) IsEmpty() bool { return in.Len() == 0 }

// Insert adds t (validated against the schema); duplicates are ignored.
func (in *Instance) Insert(t Tuple) error {
	if !in.schema.Admits(t) {
		return fmt.Errorf("relation: tuple %v does not fit schema %s", t, in.schema)
	}
	in.insertUnchecked(t)
	return nil
}

// MustInsert is Insert that panics on error.
func (in *Instance) MustInsert(t Tuple) {
	if err := in.Insert(t); err != nil {
		panic(err)
	}
}

func (in *Instance) insertUnchecked(t Tuple) bool {
	if in.intern == nil {
		return in.insertBoxed(t)
	}
	arity := len(t)
	var keyArr [scratchKeyBytes]byte
	var idArr [scratchKeyBytes / 4]uint32
	var rowArr [scratchKeyBytes / 4]Value
	key := keyArr[:0]
	ids := idArr[:0]
	canon := rowArr[:0]
	var hits, fresh int64
	for _, v := range t {
		// The canonical value shares the interner's string backing, so
		// every occurrence of a value deduplicates its storage.
		id, cv, isNew := in.intern.internCanonical(v)
		if isNew {
			fresh++
		} else {
			hits++
		}
		ids = append(ids, id)
		canon = append(canon, cv)
		key = AppendIDKey(key, id)
	}
	m := metrics.Load()
	if m != nil {
		m.Add(obs.InternHits, hits)
		m.Add(obs.ValuesInterned, fresh)
	}
	if _, ok := in.seen[string(key)]; ok {
		return false
	}
	in.seen[string(key)] = len(in.rows)
	row := make(Tuple, arity)
	copy(row, canon)
	rowIdx := len(in.rows)
	in.rows = append(in.rows, row)
	in.ids = append(in.ids, ids...)
	in.maintainIndexes(m, rowIdx, row)
	return true
}

// insertBoxed is the boxed-mode insert: the original value-encoded
// membership key and no id or statistics maintenance.
func (in *Instance) insertBoxed(t Tuple) bool {
	k := t.Key()
	if _, ok := in.seen[k]; ok {
		return false
	}
	in.seen[k] = len(in.rows)
	row := t.Clone()
	rowIdx := len(in.rows)
	in.rows = append(in.rows, row)
	in.maintainIndexes(metrics.Load(), rowIdx, row)
	return true
}

// maintainIndexes keeps live indexes exact after an insert: appending
// to each bucket is cheaper than invalidating and re-scanning on the
// next lookup.
func (in *Instance) maintainIndexes(m *obs.Metrics, rowIdx int, row Tuple) {
	in.idxMu.Lock()
	if len(in.indexes) > 0 {
		for _, ix := range in.indexes {
			ix.add(in, rowIdx, row)
		}
		m.Add(obs.IndexInserts, int64(len(in.indexes)))
	}
	in.idxMu.Unlock()
}

// Contains reports whether the instance holds t.
func (in *Instance) Contains(t Tuple) bool {
	if in == nil {
		return false
	}
	if in.intern == nil {
		_, ok := in.seen[t.Key()]
		return ok
	}
	var arr [scratchKeyBytes]byte
	key := arr[:0]
	for _, v := range t {
		id, ok := in.intern.Lookup(v)
		if !ok {
			return false // never interned ⇒ occurs in no row
		}
		key = AppendIDKey(key, id)
	}
	_, ok := in.seen[string(key)]
	return ok
}

// Tuples returns the tuples in insertion order. The returned slice is
// shared with the instance; callers must not mutate it.
func (in *Instance) Tuples() []Tuple {
	if in == nil {
		return nil
	}
	return in.rows
}

// DistinctAt returns the number of distinct values at position pos, or
// 0 when statistics are unavailable (boxed mode, nil or empty
// instance). The planner treats 0 as "no statistics" and falls back to
// its guessed selectivities. Statistics are computed on demand and
// cached until the row count changes, so candidate instances that are
// never planned against pay nothing for them.
func (in *Instance) DistinctAt(pos int) int {
	if in == nil || in.intern == nil || pos < 0 || pos >= in.schema.Arity() {
		return 0
	}
	in.idxMu.Lock()
	stats := in.statsLocked()
	in.idxMu.Unlock()
	if stats == nil {
		return 0
	}
	return stats[pos]
}

// ResidentBytes estimates the heap bytes of the instance's own storage
// using the fixed platform-independent charges of intern.go: the boxed
// row view (a slice header per row, a string header per value), the
// flat id array, and the membership map (key bytes plus the per-entry
// charge). Interned instances do not charge value bytes — those live in
// the interner, which is shared and accounted once per database by
// Database.ResidentBytes. Boxed instances own their value bytes and
// charge them here.
func (in *Instance) ResidentBytes() int64 {
	if in == nil {
		return 0
	}
	arity := int64(in.schema.Arity())
	rows := int64(len(in.rows))
	b := rows * (sliceHeaderBytes + arity*stringHeaderBytes)
	b += int64(len(in.ids)) * 4
	for k := range in.seen {
		b += int64(len(k)) + mapEntryBytes
	}
	if in.intern == nil {
		for _, t := range in.rows {
			for _, v := range t {
				b += int64(len(v))
			}
		}
	}
	return b
}

// Clone returns an independent copy. Rows are immutable after insert,
// so the clone shares the tuple backing arrays (as index buckets and
// Tuples() callers already do) and bulk-copies the membership map and
// ids instead of re-keying every row. Statistics and indexes are not
// copied; the clone rebuilds them lazily if queried.
func (in *Instance) Clone() *Instance {
	c := &Instance{schema: in.schema, intern: in.intern}
	c.rows = append([]Tuple(nil), in.rows...)
	if in.seen != nil {
		c.seen = maps.Clone(in.seen)
	} else {
		c.seen = make(map[string]int)
	}
	if in.intern != nil {
		c.ids = append([]uint32(nil), in.ids...)
	}
	return c
}

// Union returns a new instance holding the tuples of both operands.
func (in *Instance) Union(other *Instance) *Instance {
	c := in.Clone()
	if other != nil {
		for _, t := range other.rows {
			c.insertUnchecked(t)
		}
	}
	return c
}

// WithTuple returns a copy of the instance with t added.
func (in *Instance) WithTuple(t Tuple) *Instance {
	c := in.Clone()
	c.insertUnchecked(t)
	return c
}

// WithoutTuple returns a copy of the instance with t removed.
func (in *Instance) WithoutTuple(t Tuple) *Instance {
	c := in.emptyLike(len(in.rows))
	for _, u := range in.rows {
		if !u.Equal(t) {
			c.insertUnchecked(u)
		}
	}
	return c
}

// SubsetOf reports in ⊆ other.
func (in *Instance) SubsetOf(other *Instance) bool {
	if in == nil {
		return true
	}
	for _, t := range in.rows {
		if !other.Contains(t) {
			return false
		}
	}
	return true
}

// Equal reports set equality with other.
func (in *Instance) Equal(other *Instance) bool {
	return in.Len() == other.Len() && in.SubsetOf(other)
}

// ProperSubsetOf reports in ⊊ other.
func (in *Instance) ProperSubsetOf(other *Instance) bool {
	return in.Len() < other.Len() && in.SubsetOf(other)
}

// activeValuesLocked returns the distinct values of the instance in
// first-occurrence order, recomputing the cache when the row count
// changed. Interned instances deduplicate by id (integer hashing);
// boxed instances by value. Callers must hold idxMu and must not
// mutate the result.
func (in *Instance) activeValuesLocked() []Value {
	if in.adomVals != nil && in.adomRows == len(in.rows) {
		return in.adomVals
	}
	vals := make([]Value, 0, 16)
	if in.intern != nil {
		seen := make(map[uint32]struct{}, 16)
		arity := in.schema.Arity()
		for i, id := range in.ids {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				vals = append(vals, in.rows[i/arity][i%arity])
			}
		}
	} else {
		seen := make(map[Value]struct{}, 16)
		for _, t := range in.rows {
			for _, v := range t {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					vals = append(vals, v)
				}
			}
		}
	}
	in.adomVals, in.adomRows = vals, len(in.rows)
	return vals
}

// ActiveDomain collects every constant appearing in the instance into dst
// (allocating it when nil) and returns dst.
func (in *Instance) ActiveDomain(dst *ValueSet) *ValueSet {
	if dst == nil {
		dst = NewValueSet()
	}
	if in == nil || len(in.rows) == 0 {
		return dst
	}
	in.idxMu.Lock()
	vals := in.activeValuesLocked()
	in.idxMu.Unlock()
	for _, v := range vals {
		dst.Add(v)
	}
	return dst
}

// Sorted returns the tuples in lexicographic order (a fresh slice).
func (in *Instance) Sorted() []Tuple {
	out := make([]Tuple, len(in.rows))
	copy(out, in.rows)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Compare(out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// String renders the instance deterministically.
func (in *Instance) String() string {
	var b strings.Builder
	b.WriteString(in.schema.Name)
	b.WriteByte('{')
	for i, t := range in.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
