package relation

import (
	"fmt"
	"strings"
)

// Tuple is a row of constants; position i belongs to attribute i of the
// owning schema.
type Tuple []Value

// Key encodes the tuple as a collision-free string, used for set
// membership. Values are length-prefixed so no separator can collide.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%d:", len(v))
		b.WriteString(string(v))
	}
	return b.String()
}

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Compare orders tuples lexicographically (shorter first on prefix tie).
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := CompareValues(t[i], u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// String renders the tuple as (a, b, c).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = string(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// T builds a tuple from string literals; convenience for tests and
// reductions.
func T(vals ...Value) Tuple { return Tuple(vals) }

// Instance is a set-semantics instance of a single relation schema.
// Iteration order is insertion order, which makes every derived
// computation deterministic.
type Instance struct {
	schema *Schema
	rows   []Tuple
	seen   map[string]int // tuple key -> index in rows
}

// NewInstance returns an empty instance of the given schema.
func NewInstance(schema *Schema) *Instance {
	return &Instance{schema: schema, seen: make(map[string]int)}
}

// InstanceOf builds an instance of schema containing the given tuples;
// it returns an error if a tuple does not fit the schema.
func InstanceOf(schema *Schema, tuples ...Tuple) (*Instance, error) {
	inst := NewInstance(schema)
	for _, t := range tuples {
		if err := inst.Insert(t); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// MustInstance is InstanceOf that panics on error.
func MustInstance(schema *Schema, tuples ...Tuple) *Instance {
	inst, err := InstanceOf(schema, tuples...)
	if err != nil {
		panic(err)
	}
	return inst
}

// Schema returns the instance's relation schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Len returns the number of tuples.
func (in *Instance) Len() int {
	if in == nil {
		return 0
	}
	return len(in.rows)
}

// IsEmpty reports whether the instance has no tuples.
func (in *Instance) IsEmpty() bool { return in.Len() == 0 }

// Insert adds t (validated against the schema); duplicates are ignored.
func (in *Instance) Insert(t Tuple) error {
	if !in.schema.Admits(t) {
		return fmt.Errorf("relation: tuple %v does not fit schema %s", t, in.schema)
	}
	in.insertUnchecked(t)
	return nil
}

// MustInsert is Insert that panics on error.
func (in *Instance) MustInsert(t Tuple) {
	if err := in.Insert(t); err != nil {
		panic(err)
	}
}

func (in *Instance) insertUnchecked(t Tuple) bool {
	k := t.Key()
	if _, ok := in.seen[k]; ok {
		return false
	}
	in.seen[k] = len(in.rows)
	in.rows = append(in.rows, t.Clone())
	return true
}

// Contains reports whether the instance holds t.
func (in *Instance) Contains(t Tuple) bool {
	if in == nil {
		return false
	}
	_, ok := in.seen[t.Key()]
	return ok
}

// Tuples returns the tuples in insertion order. The returned slice is
// shared with the instance; callers must not mutate it.
func (in *Instance) Tuples() []Tuple {
	if in == nil {
		return nil
	}
	return in.rows
}

// Clone returns an independent copy.
func (in *Instance) Clone() *Instance {
	c := NewInstance(in.schema)
	for _, t := range in.rows {
		c.insertUnchecked(t)
	}
	return c
}

// Union returns a new instance holding the tuples of both operands.
func (in *Instance) Union(other *Instance) *Instance {
	c := in.Clone()
	if other != nil {
		for _, t := range other.rows {
			c.insertUnchecked(t)
		}
	}
	return c
}

// WithTuple returns a copy of the instance with t added.
func (in *Instance) WithTuple(t Tuple) *Instance {
	c := in.Clone()
	c.insertUnchecked(t)
	return c
}

// WithoutTuple returns a copy of the instance with t removed.
func (in *Instance) WithoutTuple(t Tuple) *Instance {
	c := NewInstance(in.schema)
	k := t.Key()
	for _, u := range in.rows {
		if u.Key() != k {
			c.insertUnchecked(u)
		}
	}
	return c
}

// SubsetOf reports in ⊆ other.
func (in *Instance) SubsetOf(other *Instance) bool {
	if in == nil {
		return true
	}
	for _, t := range in.rows {
		if !other.Contains(t) {
			return false
		}
	}
	return true
}

// Equal reports set equality with other.
func (in *Instance) Equal(other *Instance) bool {
	return in.Len() == other.Len() && in.SubsetOf(other)
}

// ProperSubsetOf reports in ⊊ other.
func (in *Instance) ProperSubsetOf(other *Instance) bool {
	return in.Len() < other.Len() && in.SubsetOf(other)
}

// ActiveDomain collects every constant appearing in the instance into dst
// (allocating it when nil) and returns dst.
func (in *Instance) ActiveDomain(dst *ValueSet) *ValueSet {
	if dst == nil {
		dst = NewValueSet()
	}
	if in == nil {
		return dst
	}
	for _, t := range in.rows {
		for _, v := range t {
			dst.Add(v)
		}
	}
	return dst
}

// Sorted returns the tuples in lexicographic order (a fresh slice).
func (in *Instance) Sorted() []Tuple {
	out := make([]Tuple, len(in.rows))
	copy(out, in.rows)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Compare(out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// String renders the instance deterministically.
func (in *Instance) String() string {
	var b strings.Builder
	b.WriteString(in.schema.Name)
	b.WriteByte('{')
	for i, t := range in.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}
