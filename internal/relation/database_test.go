package relation

import (
	"reflect"
	"testing"
)

func twoRelSchema() *DBSchema {
	return MustDBSchema(
		MustSchema("R", Attr("A", nil), Attr("B", nil)),
		MustSchema("S", Attr("C", nil)),
	)
}

func TestDatabaseBasics(t *testing.T) {
	sch := twoRelSchema()
	db := NewDatabase(sch)
	if db.Size() != 0 {
		t.Fatal("fresh database should be empty")
	}
	db.MustInsert("R", T("1", "2"))
	db.MustInsert("S", T("x"))
	if db.Size() != 2 {
		t.Fatalf("Size = %d", db.Size())
	}
	if !db.Relation("R").Contains(T("1", "2")) {
		t.Fatal("insert lost")
	}
	if err := db.Insert("nope", T("1")); err == nil {
		t.Fatal("insert into unknown relation should fail")
	}
}

func TestDatabaseExtends(t *testing.T) {
	sch := twoRelSchema()
	base := NewDatabase(sch)
	base.MustInsert("R", T("1", "2"))

	same := base.Clone()
	if same.Extends(base) {
		t.Fatal("equal database is not a proper extension")
	}

	ext := base.WithTuple("S", T("x"))
	if !ext.Extends(base) {
		t.Fatal("adding a tuple should extend")
	}
	if base.Extends(ext) {
		t.Fatal("extension is not symmetric")
	}

	// Removing from one relation while adding to another is not an extension.
	other := base.WithoutTuple("R", T("1", "2")).WithTuple("S", T("x"))
	if other.Extends(base) {
		t.Fatal("incomparable databases must not extend")
	}
}

func TestDatabaseSubsetEqual(t *testing.T) {
	sch := twoRelSchema()
	a := NewDatabase(sch)
	a.MustInsert("R", T("1", "2"))
	b := a.WithTuple("S", T("y"))
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Fatal("Equal wrong")
	}
}

func TestDatabaseWithWithoutTupleImmutability(t *testing.T) {
	sch := twoRelSchema()
	a := NewDatabase(sch)
	a.MustInsert("R", T("1", "2"))
	_ = a.WithTuple("R", T("3", "4"))
	_ = a.WithoutTuple("R", T("1", "2"))
	if a.Size() != 1 || !a.Relation("R").Contains(T("1", "2")) {
		t.Fatal("With/WithoutTuple mutated the receiver")
	}
}

func TestDatabaseAllTuples(t *testing.T) {
	sch := twoRelSchema()
	db := NewDatabase(sch)
	db.MustInsert("R", T("1", "2"))
	db.MustInsert("S", T("x"))
	got := db.AllTuples()
	want := []Located{{Rel: "R", Tuple: T("1", "2")}, {Rel: "S", Tuple: T("x")}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AllTuples = %v", got)
	}
}

func TestDatabaseActiveDomain(t *testing.T) {
	sch := twoRelSchema()
	db := NewDatabase(sch)
	db.MustInsert("R", T("1", "2"))
	db.MustInsert("S", T("2"))
	if got := db.ActiveDomain(nil).Values(); !reflect.DeepEqual(got, []Value{"1", "2"}) {
		t.Fatalf("ActiveDomain = %v", got)
	}
}

func TestDatabaseSetRelation(t *testing.T) {
	sch := twoRelSchema()
	db := NewDatabase(sch)
	repl := MustInstance(sch.Relation("R"), T("9", "9"))
	if err := db.SetRelation(repl); err != nil {
		t.Fatal(err)
	}
	if !db.Relation("R").Contains(T("9", "9")) {
		t.Fatal("SetRelation lost data")
	}
	// An instance over a structurally identical but different schema
	// object must be rejected (schemas are compared by identity).
	alien := MustInstance(MustSchema("R", Attr("A", nil), Attr("B", nil)), T("1", "1"))
	if err := db.SetRelation(alien); err == nil {
		t.Fatal("foreign schema object should be rejected")
	}
}
