package probjson

import (
	"strings"
	"testing"

	"relcomplete/internal/core"
)

const sampleDoc = `{
  "schema": {"relations": [
    {"name": "Order", "attrs": [{"name": "item"}, {"name": "qty"}]}]},
  "master": {
    "relations": [{"name": "Catalog", "attrs": [{"name": "item"}]}],
    "rows": {"Catalog": [["widget"], ["gadget"]]}},
  "ccs": [{"name": "item_bound",
           "left":  "q(i) := Order(i, q)",
           "right": "p(i) := Catalog(i)"}],
  "query": {"calc": "Q(q) := Order('widget', q)"},
  "cinstance": {"rows": [
    {"rel": "Order", "terms": ["widget", "?x"],
     "cond": [["?x", "!=", "0"]]}]}
}`

func TestDecodeSample(t *testing.T) {
	p, ci, err := Decode([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Query.Lang() != core.CQ {
		t.Fatalf("lang = %v", p.Query.Lang())
	}
	if ci.Size() != 1 || len(ci.Vars()) != 1 {
		t.Fatalf("c-instance wrong: %v", ci)
	}
	if p.Master.Relation("Catalog").Len() != 2 {
		t.Fatal("master rows lost")
	}
	ok, err := p.Consistent(ci)
	if err != nil || !ok {
		t.Fatalf("decoded problem should be consistent: %v %v", ok, err)
	}
}

func TestDecodeFiniteDomain(t *testing.T) {
	doc := `{
	  "schema": {"relations": [
	    {"name": "B", "attrs": [{"name": "v", "domain": ["0", "1"]}]}]},
	  "master": {"relations": [], "rows": {}},
	  "ccs": [],
	  "query": {"calc": "Q(x) := B(x)"},
	  "cinstance": {"rows": [{"rel": "B", "terms": ["?b"]}]}
	}`
	p, ci, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	models, err := p.Models(ci, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 { // b ranges over the finite domain {0, 1}
		t.Fatalf("models = %d, want 2", len(models))
	}
}

func TestDecodeFPQuery(t *testing.T) {
	doc := `{
	  "schema": {"relations": [
	    {"name": "edge", "attrs": [{"name": "a"}, {"name": "b"}]}]},
	  "master": {"relations": [], "rows": {}},
	  "ccs": [],
	  "query": {"fp": "reach(x, y) :- edge(x, y). reach(x, z) :- reach(x, y), edge(y, z). output reach."},
	  "cinstance": {"rows": []}
	}`
	p, _, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Query.Lang() != core.FP {
		t.Fatalf("lang = %v", p.Query.Lang())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"nope": 1}`,
		"missing query":   `{"schema": {"relations": []}, "master": {"relations": [], "rows": {}}, "ccs": [], "cinstance": {"rows": []}}`,
		"both queries":    strings.Replace(sampleDoc, `"calc": "Q(q) := Order('widget', q)"`, `"calc": "Q(q) := Order('widget', q)", "fp": "r(x) :- Order(x, y). output r."`, 1),
		"bad cc":          strings.Replace(sampleDoc, `"q(i) := Order(i, q)"`, `"q(i) := Order(i"`, 1),
		"bad query":       strings.Replace(sampleDoc, `Q(q) := Order('widget', q)`, `Q(q) := `, 1),
		"unknown rel row": strings.Replace(sampleDoc, `"rel": "Order"`, `"rel": "Nope"`, 1),
		"bad cond op":     strings.Replace(sampleDoc, `"!="`, `"<"`, 1),
		"bad master row":  strings.Replace(sampleDoc, `[["widget"], ["gadget"]]`, `[["widget", "extra"]]`, 1),
	}
	for name, doc := range cases {
		if _, _, err := Decode([]byte(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestParseTermEscapes(t *testing.T) {
	if tm := parseTerm("?x"); !tm.IsVar || tm.Name != "x" {
		t.Fatal("?x should be a variable")
	}
	if tm := parseTerm("plain"); tm.IsVar || tm.Const != "plain" {
		t.Fatal("plain should be a constant")
	}
	if tm := parseTerm("\\?literal"); tm.IsVar || tm.Const != "?literal" {
		t.Fatal("escaped question mark should be a constant")
	}
}
