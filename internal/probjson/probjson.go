// Package probjson decodes decision-problem instances from a JSON
// document, the input format of cmd/rcheck. The document describes the
// data schema, master data, containment constraints, the query and a
// c-instance:
//
//	{
//	  "schema": {"relations": [
//	    {"name": "Order", "attrs": [
//	      {"name": "item"},
//	      {"name": "qty", "domain": ["1", "2", "3"]}]}]},
//	  "master": {
//	    "relations": [{"name": "Catalog", "attrs": [{"name": "item"}]}],
//	    "rows": {"Catalog": [["widget"], ["gadget"]]}},
//	  "ccs": [{"name": "item_bound",
//	           "left":  "q(i) := Order(i, q)",
//	           "right": "p(i) := Catalog(i)"}],
//	  "query": {"calc": "Q(q) := Order('widget', q)"},
//	  "cinstance": {"rows": [
//	    {"rel": "Order", "terms": ["widget", "?x"],
//	     "cond": [["?x", "!=", "0"]]}]}
//	}
//
// Terms starting with "?" are c-table variables; everything else is a
// constant. A literal leading question mark can be written as "\\?".
package probjson

import (
	"encoding/json"
	"fmt"
	"strings"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Document is the top-level JSON structure.
type Document struct {
	Schema    SchemaDoc    `json:"schema"`
	Master    MasterDoc    `json:"master"`
	CCs       []CCDoc      `json:"ccs"`
	Query     QueryDoc     `json:"query"`
	CInstance CInstanceDoc `json:"cinstance"`
	Options   OptionsDoc   `json:"options"`
}

// SchemaDoc lists relation schemas.
type SchemaDoc struct {
	Relations []RelationDoc `json:"relations"`
}

// RelationDoc is one relation schema.
type RelationDoc struct {
	Name  string    `json:"name"`
	Attrs []AttrDoc `json:"attrs"`
}

// AttrDoc is one attribute; a nil Domain means infinite.
type AttrDoc struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain,omitempty"`
}

// MasterDoc is the master data: its schema plus ground rows.
type MasterDoc struct {
	Relations []RelationDoc         `json:"relations"`
	Rows      map[string][][]string `json:"rows"`
}

// CCDoc is one containment constraint in text syntax.
type CCDoc struct {
	Name  string `json:"name"`
	Left  string `json:"left"`
	Right string `json:"right"`
}

// QueryDoc holds exactly one of a calculus query or an FP program.
type QueryDoc struct {
	Calc string `json:"calc,omitempty"`
	FP   string `json:"fp,omitempty"`
}

// CInstanceDoc lists c-table rows.
type CInstanceDoc struct {
	Rows []RowDoc `json:"rows"`
}

// RowDoc is one c-table row; Cond atoms are [left, op, right] with op
// "=" or "!=".
type RowDoc struct {
	Rel   string      `json:"rel"`
	Terms []string    `json:"terms"`
	Cond  [][3]string `json:"cond,omitempty"`
}

// OptionsDoc mirrors core.Options.
type OptionsDoc struct {
	MaxValuations int `json:"max_valuations,omitempty"`
	MaxSubsets    int `json:"max_subsets,omitempty"`
	RCQPSizeBound int `json:"rcqp_size_bound,omitempty"`
	MaxDerived    int `json:"max_derived,omitempty"`
	Parallelism   int `json:"parallelism,omitempty"`
}

// Decode parses the JSON document and builds the problem and
// c-instance.
func Decode(data []byte) (*core.Problem, *ctable.CInstance, error) {
	var doc Document
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("probjson: %w", err)
	}
	return Build(&doc)
}

// Build assembles a decoded document.
func Build(doc *Document) (*core.Problem, *ctable.CInstance, error) {
	schema, err := buildSchema(doc.Schema.Relations)
	if err != nil {
		return nil, nil, fmt.Errorf("probjson: schema: %w", err)
	}
	masterSchema, err := buildSchema(doc.Master.Relations)
	if err != nil {
		return nil, nil, fmt.Errorf("probjson: master schema: %w", err)
	}
	master := relation.NewDatabase(masterSchema)
	for rel, rows := range doc.Master.Rows {
		for _, row := range rows {
			t := make(relation.Tuple, len(row))
			for i, v := range row {
				t[i] = relation.Value(v)
			}
			if err := master.Insert(rel, t); err != nil {
				return nil, nil, fmt.Errorf("probjson: master rows: %w", err)
			}
		}
	}
	ccSet := cc.NewSet()
	for _, c := range doc.CCs {
		parsed, err := cc.Parse(c.Name, c.Left, c.Right)
		if err != nil {
			return nil, nil, fmt.Errorf("probjson: %w", err)
		}
		ccSet.Add(parsed)
	}
	var qry core.Qry
	switch {
	case doc.Query.Calc != "" && doc.Query.FP != "":
		return nil, nil, fmt.Errorf("probjson: query must be calc or fp, not both")
	case doc.Query.Calc != "":
		q, err := query.ParseQuery(doc.Query.Calc)
		if err != nil {
			return nil, nil, fmt.Errorf("probjson: query: %w", err)
		}
		qry = core.CalcQuery(q)
	case doc.Query.FP != "":
		p, err := query.ParseProgram("fp", schema, doc.Query.FP)
		if err != nil {
			return nil, nil, fmt.Errorf("probjson: fp query: %w", err)
		}
		qry = core.FPQuery(p)
	default:
		return nil, nil, fmt.Errorf("probjson: missing query")
	}
	opts := core.Options{
		MaxValuations: doc.Options.MaxValuations,
		MaxSubsets:    doc.Options.MaxSubsets,
		RCQPSizeBound: doc.Options.RCQPSizeBound,
		MaxDerived:    doc.Options.MaxDerived,
		Parallelism:   doc.Options.Parallelism,
	}
	problem, err := core.NewProblem(schema, qry, master, ccSet, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("probjson: %w", err)
	}

	ci := ctable.NewCInstance(schema)
	for i, row := range doc.CInstance.Rows {
		terms := make([]query.Term, len(row.Terms))
		for j, s := range row.Terms {
			terms[j] = parseTerm(s)
		}
		var cond ctable.Condition
		for _, atom := range row.Cond {
			l, r := parseTerm(atom[0]), parseTerm(atom[2])
			switch atom[1] {
			case "=":
				cond = append(cond, ctable.CEq(l, r))
			case "!=":
				cond = append(cond, ctable.CNeq(l, r))
			default:
				return nil, nil, fmt.Errorf("probjson: row %d: unknown operator %q", i, atom[1])
			}
		}
		if err := ci.AddRow(row.Rel, ctable.Row{Terms: terms, Cond: cond}); err != nil {
			return nil, nil, fmt.Errorf("probjson: row %d: %w", i, err)
		}
	}
	return problem, ci, nil
}

func buildSchema(rels []RelationDoc) (*relation.DBSchema, error) {
	db, err := relation.NewDBSchema()
	if err != nil {
		return nil, err
	}
	for _, r := range rels {
		attrs := make([]relation.Attribute, len(r.Attrs))
		for i, a := range r.Attrs {
			var dom *relation.Domain
			if a.Domain != nil {
				vals := make([]relation.Value, len(a.Domain))
				for j, v := range a.Domain {
					vals[j] = relation.Value(v)
				}
				dom = relation.Finite(r.Name+"."+a.Name, vals...)
			}
			attrs[i] = relation.Attr(a.Name, dom)
		}
		sch, err := relation.NewSchema(r.Name, attrs...)
		if err != nil {
			return nil, err
		}
		if err := db.Add(sch); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// parseTerm interprets "?x" as a variable and everything else as a
// constant; "\\?" escapes a literal leading question mark.
func parseTerm(s string) query.Term {
	if strings.HasPrefix(s, "?") {
		return query.V(s[1:])
	}
	if strings.HasPrefix(s, "\\?") {
		return query.C(relation.Value(s[1:]))
	}
	return query.C(relation.Value(s))
}
