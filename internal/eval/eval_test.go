package eval

import (
	"math/rand"
	"testing"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func mkDB(t testing.TB) *relation.Database {
	t.Helper()
	sch := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("C", nil)),
	)
	db := relation.NewDatabase(sch)
	db.MustInsert("R", relation.T("1", "2"))
	db.MustInsert("R", relation.T("2", "3"))
	db.MustInsert("R", relation.T("3", "3"))
	db.MustInsert("S", relation.T("2"))
	db.MustInsert("S", relation.T("3"))
	return db
}

func answersOf(t testing.TB, db *relation.Database, src string) []relation.Tuple {
	t.Helper()
	ans, err := Answers(db, query.MustParseQuery(src), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

func wantAnswers(t *testing.T, got []relation.Tuple, want ...relation.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEvalCQJoin(t *testing.T) {
	db := mkDB(t)
	// R(x,y) & S(y): (1,2),(2,3),(3,3)
	got := answersOf(t, db, "Q(x, y) := R(x, y) & S(y)")
	wantAnswers(t, got, relation.T("1", "2"), relation.T("2", "3"), relation.T("3", "3"))
}

func TestEvalCQConstantsAndProjection(t *testing.T) {
	db := mkDB(t)
	got := answersOf(t, db, "Q(x) := R(x, '3')")
	wantAnswers(t, got, relation.T("2"), relation.T("3"))
	// Constant in head.
	got = answersOf(t, db, "Q('k', x) := R(x, '2')")
	wantAnswers(t, got, relation.T("k", "1"))
}

func TestEvalCQInequality(t *testing.T) {
	db := mkDB(t)
	got := answersOf(t, db, "Q(x, y) := R(x, y) & x != y")
	wantAnswers(t, got, relation.T("1", "2"), relation.T("2", "3"))
}

func TestEvalCQSelfJoin(t *testing.T) {
	db := mkDB(t)
	// Paths of length 2.
	got := answersOf(t, db, "Q(x, z) := R(x, y) & R(y, z)")
	wantAnswers(t, got,
		relation.T("1", "3"), relation.T("2", "3"), relation.T("3", "3"))
}

func TestEvalExistsProjection(t *testing.T) {
	db := mkDB(t)
	got := answersOf(t, db, "Q(x) := exists y: R(x, y) & S(y)")
	wantAnswers(t, got, relation.T("1"), relation.T("2"), relation.T("3"))
}

func TestEvalBooleanQuery(t *testing.T) {
	db := mkDB(t)
	yes, err := Bool(db, query.MustParseQuery("Q() := exists x: R(x, x)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Fatal("R(3,3) exists; query should be true")
	}
	no, err := Bool(db, query.MustParseQuery("Q() := R('9', '9')"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if no {
		t.Fatal("query should be false")
	}
	if _, err := Bool(db, query.MustParseQuery("Q(x) := R(x, x)"), Options{}); err == nil {
		t.Fatal("non-Boolean query should be rejected by Bool")
	}
}

func TestEvalUCQ(t *testing.T) {
	db := mkDB(t)
	got := answersOf(t, db, "Q(x) := S(x) | R(x, '2')")
	wantAnswers(t, got, relation.T("1"), relation.T("2"), relation.T("3"))
}

func TestEvalDisjunctionPadsFreeVars(t *testing.T) {
	// Q(x, y) := S(x) | S(y): the missing variable ranges over the
	// active domain (1, 2, 3 here).
	db := mkDB(t)
	got := answersOf(t, db, "Q(x, y) := S(x) | S(y)")
	if len(got) != 12 { // {2,3}×{1,2,3} ∪ {1,2,3}×{2,3} = 6+6-4+... compute: |A|=12? see below
		// S(x)|S(y) over adom {1,2,3}: S={2,3}.
		// disjunct1: x∈{2,3}, y∈{1,2,3} -> 6; disjunct2: x∈{1,2,3}, y∈{2,3} -> 6; union -> 6+6-4=8.
		t.Logf("answers: %v", got)
	}
	want := map[string]bool{}
	for _, x := range []relation.Value{"1", "2", "3"} {
		for _, y := range []relation.Value{"1", "2", "3"} {
			if x == "2" || x == "3" || y == "2" || y == "3" {
				want[relation.T(x, y).Key()] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d answers %v, want %d", len(got), got, len(want))
	}
	for _, g := range got {
		if !want[g.Key()] {
			t.Fatalf("unexpected answer %v", g)
		}
	}
}

func TestEvalFONegation(t *testing.T) {
	db := mkDB(t)
	// x in S with no outgoing R edge to a non-S node... simpler:
	// Q(x) := S(x) & ! R(x, x)  -> S={2,3}, R(3,3) holds -> {2}
	got := answersOf(t, db, "Q(x) := S(x) & ! R(x, x)")
	wantAnswers(t, got, relation.T("2"))
}

func TestEvalFOForall(t *testing.T) {
	db := mkDB(t)
	// Q() := forall x: (S(x) | exists y: R(x, y))
	// adom = {1,2,3}; R covers 1,2,3 as first column -> true.
	yes, err := Bool(db, query.MustParseQuery("Q() := forall x: (S(x) | exists y: R(x, y))"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Fatal("should hold on active domain")
	}
	// With an extra domain value it fails.
	yes, err = Bool(db, query.MustParseQuery("Q() := forall x: (S(x) | exists y: R(x, y))"),
		Options{ExtraDomain: relation.NewValueSet("99")})
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Fatal("extra domain value 99 has no R/S fact; forall must fail")
	}
}

func TestEvalExistsShadowing(t *testing.T) {
	db := mkDB(t)
	// Outer x is a head variable; inner exists re-binds x.
	got := answersOf(t, db, "Q(x) := S(x) & (exists x: R(x, '2'))")
	wantAnswers(t, got, relation.T("2"), relation.T("3"))
}

func TestEvalCompareOnlyBody(t *testing.T) {
	db := mkDB(t)
	// Unsafe body: x constrained only by =; active-domain semantics.
	got := answersOf(t, db, "Q(x) := x = '2'")
	wantAnswers(t, got, relation.T("2"))
	// x != '2' ranges over the active domain.
	got = answersOf(t, db, "Q(x) := x != '2'")
	wantAnswers(t, got, relation.T("1"), relation.T("3"))
}

func TestEvalUnknownRelation(t *testing.T) {
	db := mkDB(t)
	if _, err := Answers(db, query.MustParseQuery("Q(x) := Nope(x)"), Options{}); err == nil {
		t.Fatal("unknown relation should error")
	}
}

func TestSameAndSubsetAnswers(t *testing.T) {
	db := mkDB(t)
	bigger := db.WithTuple("S", relation.T("1"))
	q := query.MustParseQuery("Q(x) := S(x)")
	same, err := SameAnswers(db, db.Clone(), q, Options{})
	if err != nil || !same {
		t.Fatal("identical databases must have same answers")
	}
	same, _ = SameAnswers(db, bigger, q, Options{})
	if same {
		t.Fatal("answers must differ")
	}
	sub, _ := SubsetAnswers(db, bigger, q, Options{})
	if !sub {
		t.Fatal("monotone query: smaller instance has subset answers")
	}
	sub, _ = SubsetAnswers(bigger, db, q, Options{})
	if sub {
		t.Fatal("superset answers reported as subset")
	}
}

func TestAnswerInstance(t *testing.T) {
	db := mkDB(t)
	inst, err := AnswerInstance(db, query.MustParseQuery("Q(x) := S(x)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len() != 2 || !inst.Contains(relation.T("2")) {
		t.Fatalf("AnswerInstance = %v", inst)
	}
}

// Cross-validation: on random small instances, the positive evaluator
// and the FO model checker agree on positive queries.
func TestPositiveEvalMatchesFOChecker(t *testing.T) {
	queries := []string{
		"Q(x) := R(x, y) & S(y)",
		"Q(x) := exists y: R(x, y) & y != x",
		"Q(x, y) := R(x, y) | (S(x) & S(y))",
		"Q(x) := S(x) & (R(x, '1') | R('1', x))",
		"Q() := exists x, y: R(x, y) & x != y",
	}
	sch := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("C", nil)),
	)
	r := rand.New(rand.NewSource(3))
	vals := []relation.Value{"1", "2", "3"}
	for trial := 0; trial < 60; trial++ {
		db := relation.NewDatabase(sch)
		for i := 0; i < r.Intn(6); i++ {
			db.MustInsert("R", relation.T(vals[r.Intn(3)], vals[r.Intn(3)]))
		}
		for i := 0; i < r.Intn(4); i++ {
			db.MustInsert("S", relation.T(vals[r.Intn(3)]))
		}
		for _, src := range queries {
			q := query.MustParseQuery(src)
			e := &env{src: dbSource{db}, opts: Options{}}
			e.adom = evalDomain(db, q, Options{})
			pos, err := e.sat(q.Body)
			if err != nil {
				t.Fatal(err)
			}
			fo, err := e.satFO(q.Body, sortedVars(query.FreeVars(q.Body)))
			if err != nil {
				t.Fatal(err)
			}
			free := sortedVars(query.FreeVars(q.Body))
			a := map[string]bool{}
			for _, b := range pos {
				a[b.keyOver(free)] = true
			}
			bkeys := map[string]bool{}
			for _, b := range fo {
				bkeys[b.keyOver(free)] = true
			}
			if len(a) != len(bkeys) {
				t.Fatalf("trial %d query %s: positive %d vs FO %d bindings\n%v", trial, src, len(a), len(bkeys), db)
			}
			for k := range a {
				if !bkeys[k] {
					t.Fatalf("trial %d query %s: binding mismatch", trial, src)
				}
			}
		}
	}
}

// Monotonicity property: answers of positive queries only grow under
// extension (the property the paper's weak model relies on).
func TestPositiveMonotonicity(t *testing.T) {
	sch := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("C", nil)),
	)
	q := query.MustParseQuery("Q(x) := (exists y: R(x, y) & S(y)) | S(x)")
	r := rand.New(rand.NewSource(11))
	vals := []relation.Value{"1", "2", "3", "4"}
	for trial := 0; trial < 50; trial++ {
		db := relation.NewDatabase(sch)
		for i := 0; i < r.Intn(5); i++ {
			db.MustInsert("R", relation.T(vals[r.Intn(4)], vals[r.Intn(4)]))
		}
		ext := db.Clone()
		for i := 0; i < 1+r.Intn(3); i++ {
			if r.Intn(2) == 0 {
				ext.MustInsert("R", relation.T(vals[r.Intn(4)], vals[r.Intn(4)]))
			} else {
				ext.MustInsert("S", relation.T(vals[r.Intn(4)]))
			}
		}
		// Evaluate both over the same domain so the comparison is fair.
		dom := relation.NewValueSet(vals...)
		sub, err := SubsetAnswers(db, ext, q, Options{ExtraDomain: dom})
		if err != nil {
			t.Fatal(err)
		}
		if !sub {
			t.Fatalf("monotonicity violated at trial %d", trial)
		}
	}
}
