package eval

// This file is the compiled evaluation path for the positive-existential
// fragment (CQ, UCQ, ∃FO+): a one-shot query→plan compiler plus an
// executor that joins through the per-relation hash indexes of
// relation.Instance.
//
// The compiler assigns every variable a fixed slot, so a partial
// assignment is a flat frame ([]relation.Value plus a bound bitmap)
// instead of the map[string]relation.Value the naive evaluator carries;
// quantifier shadowing is resolved at compile time by scoping names to
// slots, so no runtime alpha-renaming is needed. The executor is a
// backtracking depth-first search in continuation-passing style: a node
// extends the frame and calls its continuation once per satisfying
// extension, which gives Boolean evaluation a genuine first-witness
// short circuit. Conjunctions are ordered greedily at run time by bound
// -variable coverage and relation cardinality (replacing the naive
// evaluator's static syntactic rank); the order depends only on the
// database and the plan, so evaluation stays deterministic.
//
// A Plan is immutable after Compile and safe for concurrent Run/Answers
// /Bool calls: all execution state lives in a per-call planRun.
//
// Options.NaiveJoin bypasses this path entirely and keeps the original
// evaluator as a differential-testing oracle, mirroring Options.NaiveFP.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Stop, returned from a ForEach callback, ends the enumeration early
// without error.
var Stop = fmt.Errorf("eval: stop enumeration")

// errFound is the internal first-witness sentinel of Bool and of the
// semi-join short circuits.
var errFound = fmt.Errorf("eval: witness found")

// planTerm is a compiled query.Term: a constant or a frame slot.
type planTerm struct {
	isConst bool
	c       relation.Value
	slot    int
}

// planNode is one operator of a compiled plan. exec extends the frame
// of rt with every satisfying extension, calling k once per extension
// with the bindings in place, and restores the frame before returning.
type planNode interface {
	exec(rt *planRun, k cont) error
	// explain renders the node; rt is nil for the static rendering and
	// carries per-node statistics after an ExplainRun execution.
	explain(b *strings.Builder, indent string, slotNames []string, rt *planRun)
}

type cont func() error

// Plan is a compiled query: slot layout, head recipe and operator tree.
type Plan struct {
	q         *query.Query
	nSlots    int
	slotNames []string   // slot -> variable name (diagnostics)
	head      []planTerm // compiled head terms
	relNames  []string   // relIdx -> relation name
	root      planNode
}

// compiler carries the scope and slot state of one Compile call.
type compiler struct {
	slotNames []string
	scope     map[string][]int // variable name -> slot stack (shadowing)
	relIdx    map[string]int
	relNames  []string
}

func (c *compiler) pushVar(name string) int {
	s := len(c.slotNames)
	c.slotNames = append(c.slotNames, name)
	c.scope[name] = append(c.scope[name], s)
	return s
}

func (c *compiler) popVar(name string) {
	st := c.scope[name]
	c.scope[name] = st[:len(st)-1]
}

func (c *compiler) slotOf(name string) (int, error) {
	st := c.scope[name]
	if len(st) == 0 {
		return 0, fmt.Errorf("eval: variable %s out of scope", name)
	}
	return st[len(st)-1], nil
}

func (c *compiler) term(t query.Term) (planTerm, error) {
	if !t.IsVar {
		return planTerm{isConst: true, c: t.Const}, nil
	}
	s, err := c.slotOf(t.Name)
	if err != nil {
		return planTerm{}, err
	}
	return planTerm{slot: s}, nil
}

func (c *compiler) relation(name string) int {
	if i, ok := c.relIdx[name]; ok {
		return i
	}
	i := len(c.relNames)
	c.relIdx[name] = i
	c.relNames = append(c.relNames, name)
	return i
}

// freeSlots maps the free variables of f to their current slots, in
// sorted variable order (deterministic plan shape).
func (c *compiler) freeSlots(f query.Formula) ([]int, error) {
	names := sortedVars(query.FreeVars(f))
	out := make([]int, len(names))
	for i, n := range names {
		s, err := c.slotOf(n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Compile builds the indexed-join plan for a positive-existential
// query. Queries outside ∃FO+ are rejected; callers fall back to the
// active-domain model checker.
func Compile(q *query.Query) (*Plan, error) {
	if query.Classify(q) > query.ClassEFOPlus {
		return nil, fmt.Errorf("eval: query %s is not positive existential; no plan", q.Name)
	}
	c := &compiler{scope: map[string][]int{}, relIdx: map[string]int{}}
	// Free variables of the body get the first slots, in sorted order.
	for _, v := range sortedVars(query.FreeVars(q.Body)) {
		c.pushVar(v)
	}
	root, err := c.compile(q.Body)
	if err != nil {
		return nil, err
	}
	head := make([]planTerm, len(q.Head))
	for i, h := range q.Head {
		head[i], err = c.term(h)
		if err != nil {
			return nil, err
		}
	}
	return &Plan{
		q:         q,
		nSlots:    len(c.slotNames),
		slotNames: c.slotNames,
		head:      head,
		relNames:  c.relNames,
		root:      root,
	}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(q *query.Query) *Plan {
	p, err := Compile(q)
	if err != nil {
		panic(err)
	}
	return p
}

func (c *compiler) compile(f query.Formula) (planNode, error) {
	switch x := f.(type) {
	case *query.Atom:
		terms := make([]planTerm, len(x.Terms))
		var err error
		for i, t := range x.Terms {
			terms[i], err = c.term(t)
			if err != nil {
				return nil, err
			}
		}
		free, err := c.freeSlots(x)
		if err != nil {
			return nil, err
		}
		return &atomNode{rel: x.Rel, relIdx: c.relation(x.Rel), terms: terms, free: free}, nil
	case *query.Compare:
		l, err := c.term(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.term(x.R)
		if err != nil {
			return nil, err
		}
		free, err := c.freeSlots(x)
		if err != nil {
			return nil, err
		}
		return &cmpNode{op: x.Op, l: l, r: r, free: free}, nil
	case *query.And:
		kids := make([]planNode, len(x.Kids))
		for i, k := range x.Kids {
			n, err := c.compile(k)
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		free, err := c.freeSlots(x)
		if err != nil {
			return nil, err
		}
		return &andNode{kids: kids, free: free}, nil
	case *query.Or:
		kids := make([]planNode, len(x.Kids))
		for i, k := range x.Kids {
			n, err := c.compile(k)
			if err != nil {
				return nil, err
			}
			kids[i] = n
		}
		free, err := c.freeSlots(x)
		if err != nil {
			return nil, err
		}
		return &orNode{kids: kids, free: free}, nil
	case *query.Exists:
		free, err := c.freeSlots(x)
		if err != nil {
			return nil, err
		}
		varSlots := make([]int, len(x.Vars))
		for i, v := range x.Vars {
			varSlots[i] = c.pushVar(v)
		}
		sub, err := c.compile(x.Sub)
		for i := len(x.Vars) - 1; i >= 0; i-- {
			c.popVar(x.Vars[i])
		}
		if err != nil {
			return nil, err
		}
		return &existsNode{varSlots: varSlots, sub: sub, free: free}, nil
	default:
		return nil, fmt.Errorf("eval: %T in positive plan compilation", f)
	}
}

// freeOf reports the slots a node binds when it succeeds (its free
// variables' slots): the unit the greedy conjunct ordering reasons in.
func freeOf(n planNode) []int {
	switch x := n.(type) {
	case *atomNode:
		return x.free
	case *cmpNode:
		return x.free
	case *andNode:
		return x.free
	case *orNode:
		return x.free
	case *existsNode:
		return x.free
	}
	return nil
}

// ---------------------------------------------------------------------------
// Runtime state.
// ---------------------------------------------------------------------------

// planRun is the per-evaluation state of one Plan execution. It is
// single-goroutine; concurrent evaluations each build their own.
type planRun struct {
	frame []relation.Value
	bound []bool
	adom  []relation.Value
	insts []*relation.Instance // by relIdx; nil for unknown relations

	// Derived decisions, computed on the first frame that reaches a node
	// and reused for the rest of the run. The set of bound slots at any
	// node is invariant across the frames of one run (every operator
	// binds exactly its unbound free slots), so these are run constants.
	orders     map[*andNode][]int
	targets    map[planNode][]int
	strategies map[*atomNode]*atomStrategy

	keyBuf []byte
	tupBuf relation.Tuple
	valBuf []relation.Value

	// Run-local counters flushed once by finish(): plain ints keep the
	// hot row loop free of atomic operations when metrics are enabled
	// and of everything but dead stores when they are not.
	m             *obs.Metrics
	started       time.Time // set only when m != nil; feeds PlanExecNs
	rowsProbed    int64
	rowsEmitted   int64
	shortCircuits int64

	// stats, when non-nil, collects per-node runtime statistics for the
	// annotated rendering of ExplainRun and for sampled profiling. nil
	// on ordinary runs.
	stats map[planNode]*nodeStat
	// timed adds per-node wall-time collection to stats: every exec
	// call pays one boolean test, timed ones a clock pair. Set by
	// ExplainRun and by sampled profiling runs.
	timed bool
	// profile, when non-nil, receives this run's tallies at finish
	// (the run was selected by PlanProfile.sampleNow).
	profile *PlanProfile
}

// nodeStat is one operator's runtime tally in an ExplainRun or
// profiled execution.
type nodeStat struct {
	execs  int64 // times the operator was entered
	rows   int64 // candidate rows probed (atoms only)
	emits  int64 // satisfying extensions passed to the continuation
	wallNs int64 // inclusive wall time inside exec (timed runs only)
}

func (rt *planRun) statFor(n planNode) *nodeStat {
	st := rt.stats[n]
	if st == nil {
		st = &nodeStat{}
		rt.stats[n] = st
	}
	return st
}

// timeNode starts an inclusive wall-time measurement of one exec call;
// the returned stop adds the elapsed time to the node's tally.
// "Inclusive" covers everything the call frames: children and the
// continuation downstream of the node. Only called on timed runs, so
// ordinary runs pay a single boolean test per operator call.
func (rt *planRun) timeNode(n planNode) func() {
	st := rt.statFor(n)
	start := time.Now()
	return func() { st.wallNs += time.Since(start).Nanoseconds() }
}

// finish flushes the run-local counters to the metrics sink and folds
// sampled-profiling runs into their plan's profile.
func (rt *planRun) finish() {
	if rt.profile != nil {
		rt.profile.fold(rt, time.Since(rt.started).Nanoseconds())
	}
	if rt.m == nil {
		return
	}
	rt.m.Inc(obs.PlanRuns)
	rt.m.Add(obs.RowsProbed, rt.rowsProbed)
	rt.m.Add(obs.RowsEmitted, rt.rowsEmitted)
	rt.m.Add(obs.ShortCircuits, rt.shortCircuits)
	rt.m.Observe(obs.PlanExecNs, time.Since(rt.started).Nanoseconds())
}

func (p *Plan) newRun(db *relation.Database, opts Options) (*planRun, error) {
	insts := make([]*relation.Instance, len(p.relNames))
	for i, name := range p.relNames {
		inst := db.Relation(name)
		if inst == nil {
			return nil, fmt.Errorf("eval: unknown relation %s", name)
		}
		insts[i] = inst
	}
	rt := &planRun{
		frame:      make([]relation.Value, p.nSlots),
		bound:      make([]bool, p.nSlots),
		adom:       evalDomain(db, p.q, opts),
		insts:      insts,
		orders:     make(map[*andNode][]int, 4),
		targets:    make(map[planNode][]int, 4),
		strategies: make(map[*atomNode]*atomStrategy, 8),
		keyBuf:     make([]byte, 0, 64),
		m:          opts.Obs,
	}
	if opts.Profiles != nil {
		if prof := opts.Profiles.profileFor(p); prof.sampleNow() {
			rt.profile = prof
			rt.timed = true
			rt.stats = make(map[planNode]*nodeStat, 8)
		}
	}
	if rt.m != nil || rt.profile != nil {
		rt.started = time.Now() // clock read only on instrumented runs
	}
	return rt, nil
}

// unboundOf filters slots down to the ones not bound in rt.
func (rt *planRun) unboundOf(slots []int) []int {
	out := make([]int, 0, len(slots))
	for _, s := range slots {
		if !rt.bound[s] {
			out = append(out, s)
		}
	}
	return out
}

// targetsFor returns (and caches) the slots a padding node must bind:
// its free slots that are unbound on entry.
func (rt *planRun) targetsFor(n planNode) []int {
	if t, ok := rt.targets[n]; ok {
		return t
	}
	t := rt.unboundOf(freeOf(n))
	rt.targets[n] = t
	return t
}

// ---------------------------------------------------------------------------
// Atoms.
// ---------------------------------------------------------------------------

type atomNode struct {
	rel    string
	relIdx int
	terms  []planTerm
	free   []int
}

// atomStrategy is the per-run join strategy of one atom: which
// positions carry values known before a row is chosen (constants and
// bound slots — the index key), whether every position does (a pure
// membership test), and the statistics-fed estimate of how many rows
// one probe should return (rendered by ExplainRun next to the measured
// row counts, so mis-estimates are visible).
type atomStrategy struct {
	boundPos  []int // ascending positions with entry-known values
	fullBound bool
	arity     int
	estRows   float64 // estimated rows per probe under this strategy
}

func (rt *planRun) strategyFor(a *atomNode) *atomStrategy {
	if s, ok := rt.strategies[a]; ok {
		return s
	}
	s := &atomStrategy{arity: len(a.terms)}
	seen := make(map[int]bool, len(a.terms))
	full := true
	for i, t := range a.terms {
		known := t.isConst || rt.bound[t.slot]
		if !t.isConst && !rt.bound[t.slot] {
			// A repeated unbound variable's later occurrences are not
			// entry-known either: the row itself supplies the value.
			if seen[t.slot] {
				full = false
				continue
			}
			seen[t.slot] = true
		}
		if known {
			s.boundPos = append(s.boundPos, i)
		} else {
			full = false
		}
	}
	s.fullBound = full && len(s.boundPos) == len(a.terms)
	inst := rt.insts[a.relIdx]
	switch {
	case s.fullBound:
		s.estRows = 1
		if inst.Len() == 0 {
			s.estRows = 0
		}
	default:
		s.estRows = estimateRows(inst, s.boundPos)
	}
	rt.strategies[a] = s
	return s
}

// estimateRows is the shared selectivity model of the planner: the
// instance's cardinality scaled by the per-position selectivity of each
// entry-known column. Interned instances supply measured distinct
// counts (a uniform-distribution estimate: binding a column with d
// distinct values keeps 1/d of the rows); boxed instances have no
// statistics and fall back to the historical guess of 1/8 per bound
// column.
func estimateRows(inst *relation.Instance, boundPos []int) float64 {
	est := float64(inst.Len())
	for _, p := range boundPos {
		if d := inst.DistinctAt(p); d > 0 {
			est /= float64(d)
		} else {
			est /= 8
		}
	}
	return est
}

func (a *atomNode) exec(rt *planRun, k cont) error {
	if rt.timed {
		defer rt.timeNode(a)()
	}
	inst := rt.insts[a.relIdx]
	if inst.Schema().Arity() != len(a.terms) {
		return nil // arity mismatch matches nothing, as in the naive path
	}
	s := rt.strategyFor(a)
	if s.fullBound {
		// Every position is known: a pure membership test against the
		// instance's tuple set.
		if cap(rt.tupBuf) < len(a.terms) {
			rt.tupBuf = make(relation.Tuple, len(a.terms))
		}
		tup := rt.tupBuf[:len(a.terms)]
		for i, t := range a.terms {
			if t.isConst {
				tup[i] = t.c
			} else {
				tup[i] = rt.frame[t.slot]
			}
		}
		rt.rowsProbed++
		if inst.Contains(tup) {
			rt.rowsEmitted++
			if rt.stats != nil {
				rt.statFor(a).note(1, 1)
			}
			return k()
		}
		if rt.stats != nil {
			rt.statFor(a).note(1, 0)
		}
		return nil
	}
	var candidates []relation.Tuple
	if len(s.boundPos) > 0 {
		rt.valBuf = rt.valBuf[:0]
		for _, p := range s.boundPos {
			t := a.terms[p]
			if t.isConst {
				rt.valBuf = append(rt.valBuf, t.c)
			} else {
				rt.valBuf = append(rt.valBuf, rt.frame[t.slot])
			}
		}
		var ok bool
		candidates, ok = inst.LookupIndexed(s.boundPos, rt.valBuf)
		if !ok {
			candidates = inst.Tuples()
		}
	} else {
		candidates = inst.Tuples()
	}
	var newly [8]int
	var probed, emitted int64
	var retErr error
	for _, row := range candidates {
		probed++
		nb := newly[:0]
		match := true
		for i, t := range a.terms {
			switch {
			case t.isConst:
				if t.c != row[i] {
					match = false
				}
			case rt.bound[t.slot]:
				if rt.frame[t.slot] != row[i] {
					match = false
				}
			default:
				rt.frame[t.slot] = row[i]
				rt.bound[t.slot] = true
				nb = append(nb, t.slot)
			}
			if !match {
				break
			}
		}
		var err error
		if match {
			emitted++
			err = k()
		}
		for _, sl := range nb {
			rt.bound[sl] = false
		}
		if err != nil {
			retErr = err
			break
		}
	}
	rt.rowsProbed += probed
	rt.rowsEmitted += emitted
	if rt.stats != nil {
		rt.statFor(a).note(probed, emitted)
	}
	return retErr
}

// note accumulates one exec call's tallies.
func (st *nodeStat) note(rows, emits int64) {
	st.execs++
	st.rows += rows
	st.emits += emits
}

func (a *atomNode) explain(b *strings.Builder, indent string, slotNames []string, rt *planRun) {
	fmt.Fprintf(b, "%satom %s(", indent, a.rel)
	for i, t := range a.terms {
		if i > 0 {
			b.WriteString(", ")
		}
		writeTerm(b, t, slotNames)
	}
	b.WriteString(")")
	if rt != nil {
		if s := rt.strategies[a]; s != nil {
			switch {
			case s.fullBound:
				b.WriteString(" via=member")
			case len(s.boundPos) > 0:
				fmt.Fprintf(b, " via=index%v", s.boundPos)
			default:
				b.WriteString(" via=scan")
			}
		}
		if st := rt.stats[a]; st != nil {
			if s := rt.strategies[a]; s != nil {
				// Estimated rows per probe beside the measured totals:
				// est×execs ≈ rows when the estimate was good.
				fmt.Fprintf(b, " [est=%.3g execs=%d rows=%d emits=%d%s]", s.estRows, st.execs, st.rows, st.emits, nodeTime(st))
			} else {
				fmt.Fprintf(b, " [execs=%d rows=%d emits=%d%s]", st.execs, st.rows, st.emits, nodeTime(st))
			}
		}
	}
	b.WriteString("\n")
}

func writeTerm(b *strings.Builder, t planTerm, slotNames []string) {
	if t.isConst {
		fmt.Fprintf(b, "'%s'", string(t.c))
	} else {
		fmt.Fprintf(b, "%s#%d", slotNames[t.slot], t.slot)
	}
}

// ---------------------------------------------------------------------------
// Comparisons.
// ---------------------------------------------------------------------------

type cmpNode struct {
	op   query.CmpOp
	l, r planTerm
	free []int
}

func (c *cmpNode) resolve(rt *planRun, t planTerm) (relation.Value, bool) {
	if t.isConst {
		return t.c, true
	}
	if rt.bound[t.slot] {
		return rt.frame[t.slot], true
	}
	return "", false
}

func (c *cmpNode) exec(rt *planRun, k cont) error {
	if rt.timed {
		defer rt.timeNode(c)()
	}
	k = countEmits(rt, c, k)
	lv, lok := c.resolve(rt, c.l)
	rv, rok := c.resolve(rt, c.r)
	switch {
	case lok && rok:
		if (c.op == query.Eq) == (lv == rv) {
			return k()
		}
		return nil
	case lok:
		return c.bindAgainst(rt, c.r.slot, lv, k)
	case rok:
		return c.bindAgainst(rt, c.l.slot, rv, k)
	default:
		// Both sides unbound variables: range the left over the domain,
		// then bind the right against it (the naive evaluator's rule).
		for _, v := range rt.adom {
			rt.frame[c.l.slot] = v
			rt.bound[c.l.slot] = true
			err := c.bindAgainst(rt, c.r.slot, v, k)
			rt.bound[c.l.slot] = false
			if err != nil {
				return err
			}
		}
		return nil
	}
}

// bindAgainst assigns slot so that (slot op val) holds: pinned for =,
// ranging over the active domain for ≠.
func (c *cmpNode) bindAgainst(rt *planRun, slot int, val relation.Value, k cont) error {
	if c.op == query.Eq {
		rt.frame[slot] = val
		rt.bound[slot] = true
		err := k()
		rt.bound[slot] = false
		return err
	}
	for _, v := range rt.adom {
		if v == val {
			continue
		}
		rt.frame[slot] = v
		rt.bound[slot] = true
		err := k()
		rt.bound[slot] = false
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *cmpNode) explain(b *strings.Builder, indent string, slotNames []string, rt *planRun) {
	b.WriteString(indent)
	b.WriteString("cmp ")
	writeTerm(b, c.l, slotNames)
	fmt.Fprintf(b, " %s ", c.op)
	writeTerm(b, c.r, slotNames)
	writeStat(b, rt, c)
	b.WriteString("\n")
}

// writeStat appends an operator's runtime tally when one was collected.
func writeStat(b *strings.Builder, rt *planRun, n planNode) {
	if rt == nil {
		return
	}
	if st := rt.stats[n]; st != nil {
		fmt.Fprintf(b, " [execs=%d emits=%d%s]", st.execs, st.emits, nodeTime(st))
	}
}

// ---------------------------------------------------------------------------
// Conjunction with greedy runtime ordering.
// ---------------------------------------------------------------------------

type andNode struct {
	kids []planNode
	free []int
}

// orderFor computes (once per run) the execution order of the
// conjuncts: repeatedly pick the cheapest conjunct under the simulated
// bound set, estimating atoms by cardinality discounted per bound
// column and scheduling unbound comparisons and padding operators last.
// Ties break on syntactic position, so the order is deterministic.
func (rt *planRun) orderFor(a *andNode) []int {
	if o, ok := rt.orders[a]; ok {
		return o
	}
	boundSim := make([]bool, len(rt.bound))
	copy(boundSim, rt.bound)
	order := make([]int, 0, len(a.kids))
	picked := make([]bool, len(a.kids))
	for len(order) < len(a.kids) {
		best, bestCost := -1, 0.0
		for i, kid := range a.kids {
			if picked[i] {
				continue
			}
			cost := conjCost(rt, kid, boundSim)
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		picked[best] = true
		order = append(order, best)
		for _, s := range freeOf(a.kids[best]) {
			boundSim[s] = true
		}
	}
	rt.orders[a] = order
	return order
}

// conjCost estimates the fan-out of executing kid under the simulated
// bound set: 0 for pure filters, cardinality-scaled for atoms, and
// large penalties for operators that enumerate the active domain. Atom
// estimates come from the storage layer's per-position distinct counts
// (estimateRows), so the greedy order reacts to the actual data shape
// rather than a fixed per-bound-column discount.
func conjCost(rt *planRun, kid planNode, boundSim []bool) float64 {
	known := func(t planTerm) bool { return t.isConst || boundSim[t.slot] }
	unboundFree := func(slots []int) int {
		n := 0
		for _, s := range slots {
			if !boundSim[s] {
				n++
			}
		}
		return n
	}
	switch n := kid.(type) {
	case *atomNode:
		var posArr [16]int
		bound := posArr[:0]
		for i, t := range n.terms {
			if known(t) {
				bound = append(bound, i)
			}
		}
		if len(bound) == len(n.terms) {
			return 0 // membership filter
		}
		return 2 + estimateRows(rt.insts[n.relIdx], bound)
	case *cmpNode:
		lb, rb := known(n.l), known(n.r)
		switch {
		case lb && rb:
			return 0
		case lb || rb:
			if n.op == query.Eq {
				return 1 // pins one variable
			}
			return 50000 + float64(len(rt.adom)) // ≠ ranges the domain
		default:
			return 100000 + float64(len(rt.adom))*float64(len(rt.adom))
		}
	case *existsNode:
		if u := unboundFree(n.free); u > 0 {
			return 10000 + float64(u)
		}
		return 1 // semi-join filter
	case *orNode:
		if u := unboundFree(n.free); u > 0 {
			return 20000 + float64(u)
		}
		return 1
	case *andNode:
		if u := unboundFree(n.free); u > 0 {
			return 30000 + float64(u)
		}
		return 1
	}
	return 1e9
}

func (a *andNode) exec(rt *planRun, k cont) error {
	if rt.timed {
		defer rt.timeNode(a)()
	}
	k = countEmits(rt, a, k)
	order := rt.orderFor(a)
	var step func(i int) error
	step = func(i int) error {
		if i == len(order) {
			return k()
		}
		return a.kids[order[i]].exec(rt, func() error { return step(i + 1) })
	}
	return step(0)
}

func (a *andNode) explain(b *strings.Builder, indent string, slotNames []string, rt *planRun) {
	b.WriteString(indent)
	b.WriteString("and")
	order := []int(nil)
	if rt != nil {
		if o, ok := rt.orders[a]; ok {
			fmt.Fprintf(b, " order=%v", o)
			order = o
		}
		writeStat(b, rt, a)
	}
	b.WriteString("\n")
	if order != nil {
		// Render the conjuncts in the order the run executed them.
		for _, i := range order {
			a.kids[i].explain(b, indent+"  ", slotNames, rt)
		}
		return
	}
	for _, kid := range a.kids {
		kid.explain(b, indent+"  ", slotNames, rt)
	}
}

// ---------------------------------------------------------------------------
// Disjunction and existential quantification: per-frame deduplicated
// extension sets, with a first-witness short circuit when the operator
// binds nothing new.
// ---------------------------------------------------------------------------

type orNode struct {
	kids []planNode
	free []int
}

func (o *orNode) exec(rt *planRun, k cont) error {
	if rt.timed {
		defer rt.timeNode(o)()
	}
	k = countEmits(rt, o, k)
	targets := rt.targetsFor(o)
	if len(targets) == 0 {
		// Pure filter: succeed once if any disjunct matches.
		for _, kid := range o.kids {
			found, err := probe(rt, kid)
			if err != nil {
				return err
			}
			if found {
				return k()
			}
		}
		return nil
	}
	col := collector{rt: rt, targets: targets, seen: map[string]struct{}{}}
	for _, kid := range o.kids {
		if err := kid.exec(rt, col.collect); err != nil {
			return err
		}
	}
	return col.emit(k)
}

func (o *orNode) explain(b *strings.Builder, indent string, slotNames []string, rt *planRun) {
	b.WriteString(indent)
	b.WriteString("or")
	writeStat(b, rt, o)
	b.WriteString("\n")
	for _, kid := range o.kids {
		kid.explain(b, indent+"  ", slotNames, rt)
	}
}

type existsNode struct {
	varSlots []int
	sub      planNode
	free     []int
}

func (e *existsNode) exec(rt *planRun, k cont) error {
	if rt.timed {
		defer rt.timeNode(e)()
	}
	k = countEmits(rt, e, k)
	targets := rt.targetsFor(e)
	if len(targets) == 0 {
		// Semi-join: one witness of the subformula suffices.
		found, err := probe(rt, e.sub)
		if err != nil {
			return err
		}
		if found {
			return k()
		}
		return nil
	}
	col := collector{rt: rt, targets: targets, seen: map[string]struct{}{}}
	if err := e.sub.exec(rt, col.collect); err != nil {
		return err
	}
	return col.emit(k)
}

func (e *existsNode) explain(b *strings.Builder, indent string, slotNames []string, rt *planRun) {
	b.WriteString(indent)
	b.WriteString("exists")
	for _, s := range e.varSlots {
		fmt.Fprintf(b, " %s#%d", slotNames[s], s)
	}
	writeStat(b, rt, e)
	b.WriteString("\n")
	e.sub.explain(b, indent+"  ", slotNames, rt)
}

// probe reports whether n has at least one satisfying extension,
// stopping at the first.
func probe(rt *planRun, n planNode) (bool, error) {
	err := n.exec(rt, func() error { return errFound })
	if err == errFound {
		rt.shortCircuits++
		return true, nil
	}
	return false, err
}

// countEmits instruments an operator's continuation for ExplainRun; on
// ordinary runs (rt.stats == nil) it returns k unchanged.
func countEmits(rt *planRun, n planNode, k cont) cont {
	if rt.stats == nil {
		return k
	}
	st := rt.statFor(n)
	st.execs++
	return func() error { st.emits++; return k() }
}

// collector deduplicates the extensions an Or or Exists contributes
// over its target slots; target slots the subformula left unbound are
// padded over the active domain, as in the naive evaluator.
type collector struct {
	rt      *planRun
	targets []int
	seen    map[string]struct{}
	exts    []relation.Value // flattened rows of len(targets)
}

func (c *collector) collect() error {
	return c.pad(0)
}

func (c *collector) pad(i int) error {
	rt := c.rt
	if i == len(c.targets) {
		rt.keyBuf = rt.keyBuf[:0]
		for _, s := range c.targets {
			rt.keyBuf = relation.AppendValueKey(rt.keyBuf, rt.frame[s])
		}
		if _, dup := c.seen[string(rt.keyBuf)]; dup {
			return nil
		}
		c.seen[string(rt.keyBuf)] = struct{}{}
		for _, s := range c.targets {
			c.exts = append(c.exts, rt.frame[s])
		}
		return nil
	}
	s := c.targets[i]
	if rt.bound[s] {
		return c.pad(i + 1)
	}
	for _, v := range rt.adom {
		rt.frame[s] = v
		rt.bound[s] = true
		err := c.pad(i + 1)
		rt.bound[s] = false
		if err != nil {
			return err
		}
	}
	return nil
}

// emit replays the distinct extensions through the continuation.
func (c *collector) emit(k cont) error {
	rt := c.rt
	w := len(c.targets)
	for i := 0; i < len(c.exts); i += w {
		for j, s := range c.targets {
			rt.frame[s] = c.exts[i+j]
			rt.bound[s] = true
		}
		err := k()
		for _, s := range c.targets {
			rt.bound[s] = false
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Plan entry points.
// ---------------------------------------------------------------------------

// ForEach runs the plan on db and calls fn once per distinct answer
// tuple, in first-derivation order (not sorted). fn may return Stop to
// end the enumeration early. The tuple passed to fn is fresh and may be
// retained.
func (p *Plan) ForEach(db *relation.Database, opts Options, fn func(relation.Tuple) error) error {
	rt, err := p.newRun(db, opts)
	if err != nil {
		return err
	}
	return p.forEach(rt, fn)
}

// forEach enumerates distinct answers on a caller-built run (shared by
// ForEach and ExplainRun) and flushes the run's counters.
func (p *Plan) forEach(rt *planRun, fn func(relation.Tuple) error) error {
	seen := map[string]bool{}
	err := p.root.exec(rt, func() error {
		t := make(relation.Tuple, len(p.head))
		for i, h := range p.head {
			if h.isConst {
				t[i] = h.c
				continue
			}
			if !rt.bound[h.slot] {
				return nil // defensively skip, as the naive path does
			}
			t[i] = rt.frame[h.slot]
		}
		rt.keyBuf = t.AppendKey(rt.keyBuf[:0])
		if seen[string(rt.keyBuf)] {
			return nil
		}
		seen[string(rt.keyBuf)] = true
		return fn(t)
	})
	rt.finish()
	if err == Stop {
		return nil
	}
	return err
}

// Answers runs the plan on db and returns the answer set in the same
// deterministic order as Answers.
func (p *Plan) Answers(db *relation.Database, opts Options) ([]relation.Tuple, error) {
	if err := opts.Fault.Visit(fault.SiteEvalAnswers); err != nil {
		return nil, err
	}
	if err := opts.interrupted(); err != nil {
		return nil, err
	}
	var out []relation.Tuple
	err := p.ForEach(db, opts, func(t relation.Tuple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// Bool evaluates a Boolean query with a first-witness short circuit.
func (p *Plan) Bool(db *relation.Database, opts Options) (bool, error) {
	if err := opts.Fault.Visit(fault.SiteEvalAnswers); err != nil {
		return false, err
	}
	if !p.q.IsBoolean() {
		return false, fmt.Errorf("eval: query %s is not Boolean", p.q.Name)
	}
	rt, err := p.newRun(db, opts)
	if err != nil {
		return false, err
	}
	found, err := probe(rt, p.root)
	rt.finish()
	return found, err
}

// Explain renders the compiled plan: the slot table and operator tree.
// The rendering is deterministic for a given query, which the plan
// stability test and the golden test rely on.
func (p *Plan) Explain() string { return p.render(nil) }

// ExplainRun executes the plan on db to completion and renders the
// operator tree annotated with runtime decisions and statistics: the
// conjunct order each and-node chose, every atom's access path
// (index probe, membership test or scan) and per-operator probe/emit
// tallies. This is the runtime counterpart of Explain, used by the
// -trace mode of the CLIs.
func (p *Plan) ExplainRun(db *relation.Database, opts Options) (string, error) {
	rt, err := p.newRun(db, opts)
	if err != nil {
		return "", err
	}
	rt.stats = map[planNode]*nodeStat{}
	rt.timed = true
	answers := 0
	if err := p.forEach(rt, func(relation.Tuple) error { answers++; return nil }); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(p.render(rt))
	fmt.Fprintf(&b, "  run: answers=%d rows_probed=%d rows_emitted=%d short_circuits=%d adom=%d\n",
		answers, rt.rowsProbed, rt.rowsEmitted, rt.shortCircuits, len(rt.adom))
	return b.String(), nil
}

// render writes the slot table header and operator tree; a non-nil rt
// annotates the tree with that run's statistics.
func (p *Plan) render(rt *planRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: %d slots [", p.q.Name, p.nSlots)
	for i, n := range p.slotNames {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d=%s", i, n)
	}
	b.WriteString("] head(")
	for i, h := range p.head {
		if i > 0 {
			b.WriteString(", ")
		}
		writeTerm(&b, h, p.slotNames)
	}
	b.WriteString(")\n")
	p.root.explain(&b, "  ", p.slotNames, rt)
	return b.String()
}
