package eval

import (
	"errors"
	"math/rand"
	"testing"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func edgeDB(t testing.TB, edges ...[2]relation.Value) *relation.Database {
	t.Helper()
	sch := relation.MustDBSchema(relation.MustSchema("edge", relation.Attr("A", nil), relation.Attr("B", nil)))
	db := relation.NewDatabase(sch)
	for _, e := range edges {
		db.MustInsert("edge", relation.T(e[0], e[1]))
	}
	return db
}

const reachSrc = `
	reach(x, y) :- edge(x, y).
	reach(x, z) :- reach(x, y), edge(y, z).
	output reach.
`

func TestFPTransitiveClosure(t *testing.T) {
	db := edgeDB(t, [2]relation.Value{"a", "b"}, [2]relation.Value{"b", "c"}, [2]relation.Value{"c", "d"})
	p := query.MustParseProgram("reach", db.Schema(), reachSrc)
	ans, err := FPAnswers(db, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		relation.T("a", "b").Key(): true, relation.T("a", "c").Key(): true, relation.T("a", "d").Key(): true,
		relation.T("b", "c").Key(): true, relation.T("b", "d").Key(): true,
		relation.T("c", "d").Key(): true,
	}
	if len(ans) != len(want) {
		t.Fatalf("reach = %v", ans)
	}
	for _, a := range ans {
		if !want[a.Key()] {
			t.Fatalf("unexpected fact %v", a)
		}
	}
}

func TestFPCycle(t *testing.T) {
	db := edgeDB(t, [2]relation.Value{"a", "b"}, [2]relation.Value{"b", "a"})
	p := query.MustParseProgram("reach", db.Schema(), reachSrc)
	ans, err := FPAnswers(db, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 4 { // all pairs over {a, b}
		t.Fatalf("reach on 2-cycle = %v", ans)
	}
}

func TestFPEmptyEDB(t *testing.T) {
	db := edgeDB(t)
	p := query.MustParseProgram("reach", db.Schema(), reachSrc)
	ans, err := FPAnswers(db, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("reach on empty EDB = %v", ans)
	}
}

func TestFPWithComparison(t *testing.T) {
	db := edgeDB(t, [2]relation.Value{"a", "a"}, [2]relation.Value{"a", "b"})
	p := query.MustParseProgram("p", db.Schema(), `
		strict(x, y) :- edge(x, y), x != y.
		output strict.
	`)
	ans, err := FPAnswers(db, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Equal(relation.T("a", "b")) {
		t.Fatalf("strict = %v", ans)
	}
}

func TestFPIDBChaining(t *testing.T) {
	// Two IDB layers: pair of reachable endpoints both reachable from a.
	db := edgeDB(t, [2]relation.Value{"a", "b"}, [2]relation.Value{"a", "c"})
	p := query.MustParseProgram("p", db.Schema(), `
		reach(x, y) :- edge(x, y).
		reach(x, z) :- reach(x, y), edge(y, z).
		sib(y, z) :- reach(x, y), reach(x, z), y != z.
		output sib.
	`)
	ans, err := FPAnswers(db, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 { // (b,c) and (c,b)
		t.Fatalf("sib = %v", ans)
	}
}

func TestFPBool(t *testing.T) {
	db := edgeDB(t, [2]relation.Value{"a", "b"})
	p := query.MustParseProgram("p", db.Schema(), `
		hit(x) :- edge(x, y).
		output hit.
	`)
	yes, err := FPBool(db, p, Options{})
	if err != nil || !yes {
		t.Fatal("non-empty output should be true")
	}
	empty := edgeDB(t)
	no, err := FPBool(empty, p, Options{})
	if err != nil || no {
		t.Fatal("empty output should be false")
	}
}

func TestFPBudget(t *testing.T) {
	// Complete graph on 6 nodes: reach derives 36 facts; cap at 10.
	var edges [][2]relation.Value
	names := []relation.Value{"1", "2", "3", "4", "5", "6"}
	for _, a := range names {
		for _, b := range names {
			edges = append(edges, [2]relation.Value{a, b})
		}
	}
	db := edgeDB(t, edges...)
	p := query.MustParseProgram("reach", db.Schema(), reachSrc)
	_, err := FPAnswers(db, p, Options{MaxDerived: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestFPMonotone(t *testing.T) {
	p := query.MustParseProgram("reach", nil, reachSrc)
	small := edgeDB(t, [2]relation.Value{"a", "b"})
	big := small.WithTuple("edge", relation.T("b", "c"))
	a1, err := FPAnswers(small, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := FPAnswers(big, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, x := range a2 {
		seen[x.Key()] = true
	}
	for _, x := range a1 {
		if !seen[x.Key()] {
			t.Fatalf("FP not monotone: %v lost", x)
		}
	}
}

func TestSameFPAnswers(t *testing.T) {
	p := query.MustParseProgram("reach", nil, reachSrc)
	a := edgeDB(t, [2]relation.Value{"a", "b"})
	same, err := SameFPAnswers(a, a.Clone(), p, Options{})
	if err != nil || !same {
		t.Fatal("identical databases must agree")
	}
	b := a.WithTuple("edge", relation.T("b", "c"))
	same, _ = SameFPAnswers(a, b, p, Options{})
	if same {
		t.Fatal("answers must differ")
	}
}

// Differential test: semi-naive (default) and naive fixpoint
// evaluation agree on random graphs, including multi-IDB programs.
func TestSemiNaiveMatchesNaive(t *testing.T) {
	progs := []string{
		reachSrc,
		`
		reach(x, y) :- edge(x, y).
		reach(x, z) :- reach(x, y), reach(y, z).
		output reach.
		`,
		`
		reach(x, y) :- edge(x, y).
		reach(x, z) :- reach(x, y), edge(y, z).
		sib(y, z) :- reach(x, y), reach(x, z), y != z.
		output sib.
		`,
	}
	names := []relation.Value{"a", "b", "c", "d", "e"}
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var edges [][2]relation.Value
		for i := 0; i < 2+r.Intn(10); i++ {
			edges = append(edges, [2]relation.Value{names[r.Intn(5)], names[r.Intn(5)]})
		}
		db := edgeDB(t, edges...)
		for pi, src := range progs {
			p := query.MustParseProgram("p", db.Schema(), src)
			semi, err := FPAnswers(db, p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			naive, err := FPAnswers(db, p, Options{NaiveFP: true})
			if err != nil {
				t.Fatal(err)
			}
			if !sameTupleSets(semi, naive) {
				t.Fatalf("seed %d prog %d: semi-naive %v vs naive %v", seed, pi, semi, naive)
			}
		}
	}
}

func TestNaiveFPBudget(t *testing.T) {
	var edges [][2]relation.Value
	names := []relation.Value{"1", "2", "3", "4", "5", "6"}
	for _, a := range names {
		for _, b := range names {
			edges = append(edges, [2]relation.Value{a, b})
		}
	}
	db := edgeDB(t, edges...)
	p := query.MustParseProgram("reach", db.Schema(), reachSrc)
	if _, err := FPAnswers(db, p, Options{MaxDerived: 10, NaiveFP: true}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}
