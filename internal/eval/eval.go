// Package eval implements query evaluation over ground instances for
// every language of the paper: conjunctive queries and their positive
// extensions (CQ, UCQ, ∃FO+) by backtracking homomorphism search,
// full first-order queries (FO) by active-domain model checking, and
// FP programs by inflational fixpoint iteration.
//
// All evaluation uses the active-domain semantics standard in the
// incomplete-information literature: quantifiers range over the
// constants of the instance and the query (plus any extra values the
// caller supplies), which is the semantics under which the paper's
// small-model characterisations are stated.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// factSource abstracts where relation tuples come from: a plain
// database for relational-calculus queries, or database + IDB store for
// FP programs.
type factSource interface {
	tuples(rel string) ([]relation.Tuple, error)
}

type dbSource struct{ db *relation.Database }

func (s dbSource) tuples(rel string) ([]relation.Tuple, error) {
	inst := s.db.Relation(rel)
	if inst == nil {
		return nil, fmt.Errorf("eval: unknown relation %s", rel)
	}
	return inst.Tuples(), nil
}

// Options tunes evaluation.
type Options struct {
	// ExtraDomain adds values to the quantification domain beyond the
	// active domain of instance and query. The completeness deciders
	// use this to evaluate over the paper's Adom.
	ExtraDomain *relation.ValueSet
	// MaxDerived caps the number of facts an FP fixpoint may derive
	// (0 = no cap); exceeded caps return ErrBudget.
	MaxDerived int
	// NaiveFP selects the textbook naive fixpoint iteration instead of
	// the default semi-naive evaluation (used by the ablation benchmark
	// and the differential-testing oracle).
	NaiveFP bool
	// NaiveJoin disables the compiled indexed-join engine (plan.go) for
	// positive-existential queries and evaluates with the original
	// nested-loop map-binding evaluator instead. It is the
	// differential-testing oracle and the ablation baseline, mirroring
	// NaiveFP.
	NaiveJoin bool
	// Obs receives evaluation metrics (plan compilations and runs, rows
	// probed/emitted, short circuits, derived FP facts). nil disables
	// collection at negligible cost.
	Obs *obs.Metrics
	// Fault arms the fault-injection harness at the evaluation entry
	// points (internal/fault) — tests only; nil is inert.
	Fault *fault.Plan
	// Interrupt, when non-nil, is polled at evaluation entry and between
	// FP rule derivations; a non-nil return aborts the evaluation with
	// that error. The deciders install ctx.Err here so that deadlines
	// interrupt long fixpoint computations mid-flight instead of waiting
	// for the evaluation to run to completion.
	Interrupt func() error
	// Span is the active request-trace span, if any; the FP fixpoint
	// hangs an "eval.fp" sub-span off it so a traced decide shows where
	// evaluation time went. nil (the common case) is inert.
	Span *obs.Span
	// Profiles, when non-nil, enables sampled per-node plan profiling
	// (profile.go): one in every ProfileRegistry.Sample plan executions
	// runs timed and folds its node tallies into the registry. nil (the
	// common case) keeps plan execution free of it.
	Profiles *ProfileRegistry
}

// interrupted polls the Interrupt hook, returning its error if any.
func (o Options) interrupted() error {
	if o.Interrupt == nil {
		return nil
	}
	return o.Interrupt()
}

// ErrBudget is returned when a configured resource cap is exceeded.
var ErrBudget = fmt.Errorf("eval: resource budget exceeded")

// binding is a partial assignment of variables to constants.
type binding map[string]relation.Value

func (b binding) clone() binding {
	c := make(binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// keyOver canonically serialises the binding restricted to vars (which
// must be sorted).
func (b binding) keyOver(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		val := b[v]
		fmt.Fprintf(&sb, "%d:%s;", len(val), val)
	}
	return sb.String()
}

type env struct {
	src  factSource
	adom []relation.Value
	opts Options
}

// Answers evaluates q on db and returns the set of answer tuples in
// deterministic order. Positive-existential queries go through the
// compiled indexed-join engine (see plan.go) unless Options.NaiveJoin
// asks for the original evaluator; callers that evaluate the same query
// against many databases should Compile once and reuse the Plan.
func Answers(db *relation.Database, q *query.Query, opts Options) ([]relation.Tuple, error) {
	if err := opts.Fault.Visit(fault.SiteEvalAnswers); err != nil {
		return nil, err
	}
	if err := opts.interrupted(); err != nil {
		return nil, err
	}
	if !opts.NaiveJoin && query.IsPositiveExistential(q) {
		plan, err := Compile(q)
		if err == nil {
			opts.Obs.Inc(obs.PlanCompilations)
			return plan.Answers(db, opts)
		}
	}
	opts.Obs.Inc(obs.NaiveEvaluations)
	e := &env{src: dbSource{db}, opts: opts}
	e.adom = evalDomain(db, q, opts)
	return e.answers(q)
}

// Bool evaluates a Boolean query, reporting whether the answer is {()}.
// The compiled engine stops at the first witness; the naive oracle path
// still joins level by level but skips materialising, projecting and
// sorting the answer set.
func Bool(db *relation.Database, q *query.Query, opts Options) (bool, error) {
	if err := opts.Fault.Visit(fault.SiteEvalAnswers); err != nil {
		return false, err
	}
	if !q.IsBoolean() {
		return false, fmt.Errorf("eval: query %s is not Boolean", q.Name)
	}
	if !opts.NaiveJoin && query.IsPositiveExistential(q) {
		plan, err := Compile(q)
		if err == nil {
			opts.Obs.Inc(obs.PlanCompilations)
			return plan.Bool(db, opts)
		}
	}
	opts.Obs.Inc(obs.NaiveEvaluations)
	e := &env{src: dbSource{db}, opts: opts}
	e.adom = evalDomain(db, q, opts)
	if query.Classify(q) <= query.ClassEFOPlus {
		rows, err := e.extend([]binding{{}}, q.Body)
		if err != nil {
			return false, err
		}
		return len(rows) > 0, nil
	}
	// Full FO with an empty head: a single model check.
	return e.check(q.Body, binding{})
}

// evalDomain collects the quantification domain: active domain of the
// instance, constants of the query, and caller-supplied extras.
func evalDomain(db *relation.Database, q *query.Query, opts Options) []relation.Value {
	set := relation.NewValueSet()
	db.ActiveDomain(set)
	if q != nil {
		query.QueryConstants(q, set)
	}
	set.AddAll(opts.ExtraDomain)
	return set.Values()
}

func (e *env) answers(q *query.Query) ([]relation.Tuple, error) {
	free := sortedVars(query.FreeVars(q.Body))
	var rows []binding
	var err error
	if query.Classify(q) <= query.ClassEFOPlus {
		rows, err = e.sat(q.Body)
	} else {
		rows, err = e.satFO(q.Body, free)
	}
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []relation.Tuple
	for _, b := range rows {
		t := make(relation.Tuple, len(q.Head))
		ok := true
		for i, h := range q.Head {
			if h.IsVar {
				v, bound := b[h.Name]
				if !bound {
					ok = false
					break
				}
				t[i] = v
			} else {
				t[i] = h.Const
			}
		}
		if !ok {
			continue
		}
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out, nil
}

// AnswerInstance packages the answers of q as an instance over a fresh
// result schema, convenient for set comparisons.
func AnswerInstance(db *relation.Database, q *query.Query, opts Options) (*relation.Instance, error) {
	ans, err := Answers(db, q, opts)
	if err != nil {
		return nil, err
	}
	attrs := make([]relation.Attribute, q.Arity())
	for i := range attrs {
		attrs[i] = relation.Attr(fmt.Sprintf("C%d", i+1), nil)
	}
	sch := relation.MustSchema("ans_"+q.Name, attrs...)
	inst := relation.NewInstance(sch)
	for _, t := range ans {
		inst.MustInsert(t)
	}
	return inst, nil
}

// SameAnswers reports whether q has identical answers on db1 and db2.
func SameAnswers(db1, db2 *relation.Database, q *query.Query, opts Options) (bool, error) {
	a1, err := Answers(db1, q, opts)
	if err != nil {
		return false, err
	}
	a2, err := Answers(db2, q, opts)
	if err != nil {
		return false, err
	}
	return sameTupleSets(a1, a2), nil
}

func sameTupleSets(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]bool, len(a))
	for _, t := range a {
		seen[t.Key()] = true
	}
	for _, t := range b {
		if !seen[t.Key()] {
			return false
		}
	}
	return true
}

// SubsetAnswers reports whether every answer of q on db1 is an answer
// on db2.
func SubsetAnswers(db1, db2 *relation.Database, q *query.Query, opts Options) (bool, error) {
	a1, err := Answers(db1, q, opts)
	if err != nil {
		return false, err
	}
	a2, err := Answers(db2, q, opts)
	if err != nil {
		return false, err
	}
	seen := make(map[string]bool, len(a2))
	for _, t := range a2 {
		seen[t.Key()] = true
	}
	for _, t := range a1 {
		if !seen[t.Key()] {
			return false, nil
		}
	}
	return true, nil
}

func sortedVars(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Positive fragment: bindings-set evaluation with backtracking joins.
// ---------------------------------------------------------------------------

// sat returns the set of bindings over exactly FreeVars(f) that
// satisfy f (active-domain semantics for variables constrained only by
// comparisons or unshared disjunct variables).
func (e *env) sat(f query.Formula) ([]binding, error) {
	rows, err := e.extend([]binding{{}}, f)
	if err != nil {
		return nil, err
	}
	free := sortedVars(query.FreeVars(f))
	return projectDedup(rows, free), nil
}

// extend grows each accumulated binding with the satisfying
// assignments of f; the result bindings cover dom(acc) ∪ FreeVars(f).
func (e *env) extend(acc []binding, f query.Formula) ([]binding, error) {
	if len(acc) == 0 {
		return nil, nil
	}
	switch x := f.(type) {
	case *query.Atom:
		return e.extendAtom(acc, x)
	case *query.Compare:
		return e.extendCompare(acc, x)
	case *query.And:
		kids := orderKids(x.Kids)
		var err error
		for _, k := range kids {
			acc, err = e.extend(acc, k)
			if err != nil {
				return nil, err
			}
			if len(acc) == 0 {
				return nil, nil
			}
		}
		return acc, nil
	case *query.Or:
		// Each disjunct contributes its satisfying extensions; free
		// variables of the disjunction missing from a disjunct range
		// over the active domain.
		freeAll := sortedVars(query.FreeVars(x))
		var out []binding
		seen := map[string]bool{}
		for _, k := range x.Kids {
			rows, err := e.extend(acc, k)
			if err != nil {
				return nil, err
			}
			rows, err = e.padMissing(rows, freeAll)
			if err != nil {
				return nil, err
			}
			for _, b := range rows {
				key := b.keyOver(sortedVars(domainOf(b)))
				if !seen[key] {
					seen[key] = true
					out = append(out, b)
				}
			}
		}
		return out, nil
	case *query.Exists:
		// Alpha-rename quantified variables that collide with names
		// already bound in the accumulator, so the sub-evaluation does
		// not confuse the two.
		vars, sub := x.Vars, x.Sub
		if ren := collisionRenaming(acc, vars); ren != nil {
			sub = query.RenameSpecific(sub, ren)
			fresh := make([]string, len(vars))
			for i, v := range vars {
				if n, ok := ren[v]; ok {
					fresh[i] = n
				} else {
					fresh[i] = v
				}
			}
			vars = fresh
		}
		// Satisfy the subformula, then forget the quantified variables.
		rows, err := e.extend(acc, sub)
		if err != nil {
			return nil, err
		}
		var out []binding
		seen := map[string]bool{}
		for _, b := range rows {
			c := b.clone()
			for _, v := range vars {
				delete(c, v)
			}
			key := c.keyOver(sortedVars(domainOf(c)))
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("eval: %T in positive evaluation", f)
	}
}

// collisionRenaming returns a renaming of the quantified vars that
// collide with variables bound in the accumulator, or nil when there is
// no collision. Fresh names use a reserved "·" infix no parser-produced
// variable contains.
func collisionRenaming(acc []binding, vars []string) map[string]string {
	bound := map[string]bool{}
	for _, b := range acc {
		for v := range b {
			bound[v] = true
		}
	}
	var ren map[string]string
	for i, v := range vars {
		if bound[v] {
			if ren == nil {
				ren = map[string]string{}
			}
			ren[v] = fmt.Sprintf("%s·%d", v, i)
		}
	}
	return ren
}

func domainOf(b binding) map[string]bool {
	m := make(map[string]bool, len(b))
	for k := range b {
		m[k] = true
	}
	return m
}

// orderKids sorts conjunction kids so relation atoms bind variables
// before comparisons and complex subformulas filter them.
func orderKids(kids []query.Formula) []query.Formula {
	rank := func(f query.Formula) int {
		switch f.(type) {
		case *query.Atom:
			return 0
		case *query.And, *query.Exists:
			return 1
		case *query.Or:
			return 2
		case *query.Compare:
			return 3
		default:
			return 4
		}
	}
	out := make([]query.Formula, len(kids))
	copy(out, kids)
	sort.SliceStable(out, func(i, j int) bool { return rank(out[i]) < rank(out[j]) })
	return out
}

func (e *env) extendAtom(acc []binding, a *query.Atom) ([]binding, error) {
	tuples, err := e.src.tuples(a.Rel)
	if err != nil {
		return nil, err
	}
	var out []binding
	for _, b := range acc {
		for _, t := range tuples {
			if nb, ok := unify(b, a, t); ok {
				out = append(out, nb)
			}
		}
	}
	return out, nil
}

// unify matches tuple t against the atom pattern under binding b,
// returning the extended binding.
func unify(b binding, a *query.Atom, t relation.Tuple) (binding, bool) {
	if len(t) != len(a.Terms) {
		return nil, false
	}
	var nb binding
	for i, term := range a.Terms {
		if !term.IsVar {
			if term.Const != t[i] {
				return nil, false
			}
			continue
		}
		if v, bound := b[term.Name]; bound {
			if v != t[i] {
				return nil, false
			}
			continue
		}
		if nb != nil {
			if v, bound := nb[term.Name]; bound {
				if v != t[i] {
					return nil, false
				}
				continue
			}
		}
		if nb == nil {
			nb = b.clone()
		}
		nb[term.Name] = t[i]
	}
	if nb == nil {
		nb = b
	}
	return nb, true
}

func (e *env) extendCompare(acc []binding, c *query.Compare) ([]binding, error) {
	var out []binding
	for _, b := range acc {
		lv, lok := resolveTerm(c.L, b)
		rv, rok := resolveTerm(c.R, b)
		switch {
		case lok && rok:
			if (c.Op == query.Eq) == (lv == rv) {
				out = append(out, b)
			}
		case lok && !rok:
			out = append(out, e.bindAgainst(b, c.R.Name, lv, c.Op)...)
		case !lok && rok:
			out = append(out, e.bindAgainst(b, c.L.Name, rv, c.Op)...)
		default:
			// Both sides unbound variables: range both over the domain.
			for _, v := range e.adom {
				nb := b.clone()
				nb[c.L.Name] = v
				out = append(out, e.bindAgainst(nb, c.R.Name, v, c.Op)...)
			}
		}
	}
	return out, nil
}

// bindAgainst extends b by assigning var so that (var op val) holds,
// ranging over the active domain for ≠ and pinning for =.
func (e *env) bindAgainst(b binding, varName string, val relation.Value, op query.CmpOp) []binding {
	if op == query.Eq {
		nb := b.clone()
		nb[varName] = val
		return []binding{nb}
	}
	var out []binding
	for _, v := range e.adom {
		if v != val {
			nb := b.clone()
			nb[varName] = v
			out = append(out, nb)
		}
	}
	return out
}

func resolveTerm(t query.Term, b binding) (relation.Value, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	v, ok := b[t.Name]
	return v, ok
}

// padMissing extends bindings so they cover all of vars, ranging
// unbound variables over the active domain.
func (e *env) padMissing(rows []binding, vars []string) ([]binding, error) {
	for _, v := range vars {
		var next []binding
		for _, b := range rows {
			if _, ok := b[v]; ok {
				next = append(next, b)
				continue
			}
			for _, val := range e.adom {
				nb := b.clone()
				nb[v] = val
				next = append(next, nb)
			}
		}
		rows = next
	}
	return rows, nil
}

func projectDedup(rows []binding, vars []string) []binding {
	seen := map[string]bool{}
	var out []binding
	for _, b := range rows {
		c := make(binding, len(vars))
		for _, v := range vars {
			if val, ok := b[v]; ok {
				c[v] = val
			}
		}
		key := c.keyOver(vars)
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Full FO: active-domain model checking.
// ---------------------------------------------------------------------------

// satFO enumerates assignments of the free variables over the active
// domain and model-checks the formula under each.
func (e *env) satFO(f query.Formula, free []string) ([]binding, error) {
	var out []binding
	b := binding{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(free) {
			ok, err := e.check(f, b)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, b.clone())
			}
			return nil
		}
		for _, v := range e.adom {
			b[free[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(b, free[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// check model-checks f under a total binding of its free variables.
func (e *env) check(f query.Formula, b binding) (bool, error) {
	switch x := f.(type) {
	case *query.Atom:
		tuples, err := e.src.tuples(x.Rel)
		if err != nil {
			return false, err
		}
		want := make(relation.Tuple, len(x.Terms))
		for i, t := range x.Terms {
			v, ok := resolveTerm(t, b)
			if !ok {
				return false, fmt.Errorf("eval: unbound variable %s in FO check", t.Name)
			}
			want[i] = v
		}
		for _, t := range tuples {
			if t.Equal(want) {
				return true, nil
			}
		}
		return false, nil
	case *query.Compare:
		lv, lok := resolveTerm(x.L, b)
		rv, rok := resolveTerm(x.R, b)
		if !lok || !rok {
			return false, fmt.Errorf("eval: unbound variable in FO comparison %s", x)
		}
		return (x.Op == query.Eq) == (lv == rv), nil
	case *query.And:
		for _, k := range x.Kids {
			ok, err := e.check(k, b)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case *query.Or:
		for _, k := range x.Kids {
			ok, err := e.check(k, b)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *query.Not:
		ok, err := e.check(x.Sub, b)
		return !ok, err
	case *query.Exists:
		return e.quantify(x.Vars, x.Sub, b, false)
	case *query.Forall:
		ok, err := e.quantify(x.Vars, x.Sub, b, true)
		return ok, err
	}
	return false, fmt.Errorf("eval: unknown formula node %T", f)
}

// quantify checks ∃ (universal=false) or ∀ (universal=true) over the
// active domain.
func (e *env) quantify(vars []string, sub query.Formula, b binding, universal bool) (bool, error) {
	if len(vars) == 0 {
		return e.check(sub, b)
	}
	v, rest := vars[0], vars[1:]
	saved, had := b[v]
	defer func() {
		if had {
			b[v] = saved
		} else {
			delete(b, v)
		}
	}()
	for _, val := range e.adom {
		b[v] = val
		ok, err := e.quantify(rest, sub, b, universal)
		if err != nil {
			return false, err
		}
		if universal && !ok {
			return false, nil
		}
		if !universal && ok {
			return true, nil
		}
	}
	return universal, nil
}
