package eval

import (
	"fmt"
	"sort"
	"strings"

	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// This file evaluates FP programs: the inflational fixpoint semantics
// of the paper (Section 2.3). Starting from empty IDB relations, rules
// are applied and their head facts accumulated until nothing new is
// derivable; the program's answer is the final value of the output
// predicate. Facts are only ever added, so the operator is inflational
// and the semantics monotone in the EDB.
//
// Evaluation is semi-naive by default: after the first round, a rule
// with IDB body atoms only fires with at least one of them bound to the
// facts derived in the previous round, which avoids re-deriving the
// whole fixpoint every iteration. Options.NaiveFP selects the textbook
// naive iteration instead (kept for the ablation benchmark and as a
// differential-testing oracle).

// idbStore holds derived facts per IDB predicate.
type idbStore struct {
	arity map[string]int
	facts map[string]map[string]relation.Tuple // pred -> key -> tuple
	count int
}

func newIDBStore(arity map[string]int) *idbStore {
	s := &idbStore{arity: arity, facts: make(map[string]map[string]relation.Tuple, len(arity))}
	for p := range arity {
		s.facts[p] = map[string]relation.Tuple{}
	}
	return s
}

func (s *idbStore) add(pred string, t relation.Tuple) bool {
	k := t.Key()
	m := s.facts[pred]
	if _, ok := m[k]; ok {
		return false
	}
	m[k] = t.Clone()
	s.count++
	return true
}

func (s *idbStore) tuples(pred string) []relation.Tuple {
	m := s.facts[pred]
	out := make([]relation.Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// deltaPrefix marks a body atom rewritten to read the previous round's
// delta instead of the full IDB relation.
const deltaPrefix = "Δ·"

// fpSource resolves atoms against the EDB first, then the IDB store;
// delta-prefixed predicates read the delta store.
type fpSource struct {
	db    *relation.Database
	idb   *idbStore
	delta *idbStore // may be nil (naive mode)
}

func (s fpSource) tuples(rel string) ([]relation.Tuple, error) {
	if s.delta != nil && strings.HasPrefix(rel, deltaPrefix) {
		return s.delta.tuples(strings.TrimPrefix(rel, deltaPrefix)), nil
	}
	if _, isIDB := s.idb.arity[rel]; isIDB {
		return s.idb.tuples(rel), nil
	}
	inst := s.db.Relation(rel)
	if inst == nil {
		return nil, fmt.Errorf("eval: unknown relation %s", rel)
	}
	return inst.Tuples(), nil
}

// FPAnswers evaluates the FP program on db, returning the output
// relation of the inflational fixpoint in deterministic order.
func FPAnswers(db *relation.Database, p *query.Program, opts Options) ([]relation.Tuple, error) {
	if err := opts.Fault.Visit(fault.SiteEvalFP); err != nil {
		return nil, err
	}
	if sp := opts.Span.StartChild("eval.fp"); sp != nil {
		defer sp.End()
	}
	if opts.NaiveFP {
		return fpNaive(db, p, opts)
	}
	return fpSemiNaive(db, p, opts)
}

func fpEnv(db *relation.Database, p *query.Program, opts Options, src factSource) *env {
	set := relation.NewValueSet()
	db.ActiveDomain(set)
	p.Constants(set)
	set.AddAll(opts.ExtraDomain)
	return &env{src: src, adom: set.Values(), opts: opts}
}

// deriveRule evaluates one rule body and adds the head facts, recording
// genuinely new facts into delta (when non-nil).
func deriveRule(e *env, idb *idbStore, delta *idbStore, r *query.Rule, opts Options, progName string) error {
	if err := opts.interrupted(); err != nil {
		return err
	}
	rows, err := e.ruleBindings(r)
	if err != nil {
		return err
	}
	for _, b := range rows {
		t := make(relation.Tuple, len(r.Head.Terms))
		for i, term := range r.Head.Terms {
			v, ok := resolveTerm(term, b)
			if !ok {
				return fmt.Errorf("eval: fp rule %s: head variable %s unbound", r, term.Name)
			}
			t[i] = v
		}
		if idb.add(r.Head.Rel, t) {
			opts.Obs.Inc(obs.DerivedTuples)
			if delta != nil {
				delta.add(r.Head.Rel, t)
			}
		}
		if opts.MaxDerived > 0 && idb.count > opts.MaxDerived {
			return fmt.Errorf("fp %s: %w (derived > %d facts)", progName, ErrBudget, opts.MaxDerived)
		}
	}
	return nil
}

// fpNaive is the textbook inflational iteration: every rule against the
// full store, until a round derives nothing.
func fpNaive(db *relation.Database, p *query.Program, opts Options) ([]relation.Tuple, error) {
	idb := newIDBStore(p.IDBArity())
	e := fpEnv(db, p, opts, fpSource{db: db, idb: idb})
	for {
		before := idb.count
		for ri := range p.Rules {
			if err := deriveRule(e, idb, nil, &p.Rules[ri], opts, p.Name); err != nil {
				return nil, err
			}
		}
		if idb.count == before {
			break
		}
	}
	return idb.tuples(p.Output), nil
}

// fpSemiNaive fires every rule once to seed the store, then iterates
// delta-rewritten variants: for each IDB body atom occurrence, a copy
// of the rule with that occurrence reading the previous round's new
// facts. A fact joined only from old facts was derivable in an earlier
// round, so the rewriting loses nothing.
func fpSemiNaive(db *relation.Database, p *query.Program, opts Options) ([]relation.Tuple, error) {
	arity := p.IDBArity()
	idb := newIDBStore(arity)
	delta := newIDBStore(arity)
	src := fpSource{db: db, idb: idb, delta: delta}
	e := fpEnv(db, p, opts, src)

	// Seed round: all rules on the (empty-IDB) store.
	for ri := range p.Rules {
		if err := deriveRule(e, idb, delta, &p.Rules[ri], opts, p.Name); err != nil {
			return nil, err
		}
	}

	// Delta rule variants, precomputed per rule and IDB occurrence.
	type variant struct{ rule query.Rule }
	var variants []variant
	for _, r := range p.Rules {
		for li, lit := range r.Body {
			if lit.Atom == nil {
				continue
			}
			if _, isIDB := arity[lit.Atom.Rel]; !isIDB {
				continue
			}
			body := make([]query.Literal, len(r.Body))
			copy(body, r.Body)
			body[li] = query.LitAtom(query.NewAtom(deltaPrefix+lit.Atom.Rel, lit.Atom.Terms...))
			variants = append(variants, variant{rule: query.Rule{Head: r.Head, Body: body}})
		}
	}

	for delta.count > 0 {
		next := newIDBStore(arity)
		// The source reads the CURRENT delta while new facts accumulate
		// in next; swap afterwards.
		for vi := range variants {
			if err := deriveRule(e, idb, next, &variants[vi].rule, opts, p.Name); err != nil {
				return nil, err
			}
		}
		*delta = *next
	}
	return idb.tuples(p.Output), nil
}

// ruleBindings evaluates a rule body as a conjunction.
func (e *env) ruleBindings(r *query.Rule) ([]binding, error) {
	kids := make([]query.Formula, 0, len(r.Body))
	for _, l := range r.Body {
		if l.Atom != nil {
			kids = append(kids, l.Atom)
		} else {
			kids = append(kids, l.Cmp)
		}
	}
	return e.extend([]binding{{}}, query.Conj(kids...))
}

// FPBool evaluates a Boolean FP program (output arity 0 or non-empty
// output treated as true).
func FPBool(db *relation.Database, p *query.Program, opts Options) (bool, error) {
	ans, err := FPAnswers(db, p, opts)
	if err != nil {
		return false, err
	}
	return len(ans) > 0, nil
}

// SameFPAnswers reports whether p has identical answers on db1 and db2.
func SameFPAnswers(db1, db2 *relation.Database, p *query.Program, opts Options) (bool, error) {
	a1, err := FPAnswers(db1, p, opts)
	if err != nil {
		return false, err
	}
	a2, err := FPAnswers(db2, p, opts)
	if err != nil {
		return false, err
	}
	return sameTupleSets(a1, a2), nil
}
