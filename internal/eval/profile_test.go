package eval

import (
	"strings"
	"sync"
	"testing"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func profileDB(t testing.TB) *relation.Database {
	t.Helper()
	schema := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("B", nil)),
	)
	db := relation.NewDatabase(schema)
	db.MustInsert("R", relation.T("1", "2"))
	db.MustInsert("R", relation.T("3", "2"))
	db.MustInsert("S", relation.T("2"))
	return db
}

func TestProfileSamplingAndStat(t *testing.T) {
	db := profileDB(t)
	plan := MustCompile(query.MustParseQuery("Q(x) := R(x, y) & S(y)"))
	reg := &ProfileRegistry{Sample: 4}
	opts := Options{Profiles: reg}
	for i := 0; i < 8; i++ {
		if _, err := plan.Answers(db, opts); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	top := reg.Top(0)
	if len(top) != 1 {
		t.Fatalf("registry holds %d profiles, want 1", len(top))
	}
	st := top[0]
	if st.Query != "Q" {
		t.Fatalf("profile query = %q", st.Query)
	}
	if st.Runs != 8 {
		t.Fatalf("Runs = %d, want every execution counted (8)", st.Runs)
	}
	// Sampled runs: the first, then every 4th (4 and 8).
	if st.Sampled != 3 {
		t.Fatalf("Sampled = %d, want 3 (first + every 4th of 8)", st.Sampled)
	}
	if st.WallMS <= 0 {
		t.Fatalf("WallMS = %v, want > 0 after sampled runs", st.WallMS)
	}
	if st.EstWallMS < st.WallMS {
		t.Fatalf("EstWallMS %v < WallMS %v: estimate must scale up to all runs", st.EstWallMS, st.WallMS)
	}
	// The rendered profile carries the per-node stats of the sampled
	// runs, including the t= inclusive wall-time annotation.
	for _, want := range []string{"atom R", "execs=", " t="} {
		if !strings.Contains(st.Explain, want) {
			t.Errorf("profile Explain missing %q:\n%s", want, st.Explain)
		}
	}
}

func TestProfileDisabledPathUntouched(t *testing.T) {
	db := profileDB(t)
	plan := MustCompile(query.MustParseQuery("Q(x) := R(x, y) & S(y)"))
	if _, err := plan.Answers(db, Options{}); err != nil {
		t.Fatal(err)
	}
	reg := &ProfileRegistry{}
	if got := reg.Top(0); len(got) != 0 {
		t.Fatalf("unwired registry collected %d profiles", len(got))
	}
}

func TestProfileTopRanking(t *testing.T) {
	db := profileDB(t)
	reg := &ProfileRegistry{Sample: 1} // every run sampled: deterministic counts
	opts := Options{Profiles: reg}
	cheap := MustCompile(query.MustParseQuery("QA(x) := S(x)"))
	costly := MustCompile(query.MustParseQuery("QB(x) := R(x, y) & S(y)"))
	if _, err := cheap.Answers(db, opts); err != nil {
		t.Fatal(err)
	}
	// Run the join plan many more times so its estimated total wall time
	// dominates regardless of scheduling noise.
	for i := 0; i < 200; i++ {
		if _, err := costly.Answers(db, opts); err != nil {
			t.Fatal(err)
		}
	}
	top := reg.Top(0)
	if len(top) != 2 {
		t.Fatalf("Top(0) returned %d profiles, want 2", len(top))
	}
	if top[0].Query != "QB" {
		t.Fatalf("Top ranks %q first, want the 200-run join plan QB", top[0].Query)
	}
	if got := reg.Top(1); len(got) != 1 || got[0].Query != "QB" {
		t.Fatalf("Top(1) = %+v, want just QB", got)
	}
}

func TestProfileConcurrentRuns(t *testing.T) {
	db := profileDB(t)
	plan := MustCompile(query.MustParseQuery("Q(x) := R(x, y) & S(y)"))
	reg := &ProfileRegistry{Sample: 2}
	opts := Options{Profiles: reg}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := plan.Answers(db, opts); err != nil {
					t.Error(err)
					return
				}
				reg.Top(1) // concurrent snapshots must not race the folds
			}
		}()
	}
	wg.Wait()
	top := reg.Top(0)
	if len(top) != 1 || top[0].Runs != 200 {
		t.Fatalf("profile after concurrent runs = %+v, want one plan with 200 runs", top)
	}
	if top[0].Sampled < 100 {
		t.Fatalf("Sampled = %d, want ≥ half of 200 runs at Sample=2", top[0].Sampled)
	}
}

func TestExplainRunRendersNodeTimes(t *testing.T) {
	db := profileDB(t)
	plan := MustCompile(query.MustParseQuery("Q(x) := R(x, y) & S(y)"))
	out, err := plan.ExplainRun(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, " t=") {
		t.Errorf("ExplainRun missing per-node t= wall times:\n%s", out)
	}
	// The static Explain never shows timings: there is no run to time.
	if strings.Contains(plan.Explain(), " t=") {
		t.Error("static Explain rendered a t= annotation")
	}
}
