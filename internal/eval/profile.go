package eval

// This file is the sampled plan profiler: the runtime counterpart of
// ExplainRun that stays cheap enough to leave on in production. One in
// every DefaultProfileSample executions of a plan runs with per-node
// wall-time collection (planRun.timed) and folds its tallies into a
// PlanProfile; the untimed majority pays one boolean test per operator
// call and one atomic increment per run. A ProfileRegistry aggregates
// the profiles of every plan executed under one owner — core.Problem
// keeps one per problem — and answers "which plans are the wall-clock
// cost of this tenant, and which conjunct inside them" as a ranked
// JSON snapshot for the /debug/plans endpoints of rcserved and
// rcbench -http.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultProfileSample is the profiling sample period: one in every N
// executions of a plan is timed per node. The first execution is
// always timed so a profile exists as soon as a plan has run at all.
const DefaultProfileSample = 16

// ProfileRegistry aggregates sampled plan profiles. The zero value is
// ready to use and all methods are safe for concurrent use; wire one
// into Options.Profiles to enable profiling, leave it nil to keep the
// disabled path free of it entirely.
type ProfileRegistry struct {
	// Sample overrides the sampling period (≤0 = DefaultProfileSample).
	// Read on each plan's first registration; set it before running.
	Sample int

	plans sync.Map // *Plan → *PlanProfile
}

// profileFor returns (creating on first use) the profile of p. The
// fast path is one lock-free map read per plan execution.
func (r *ProfileRegistry) profileFor(p *Plan) *PlanProfile {
	if v, ok := r.plans.Load(p); ok {
		return v.(*PlanProfile)
	}
	sample := int64(r.Sample)
	if sample <= 0 {
		sample = DefaultProfileSample
	}
	v, _ := r.plans.LoadOrStore(p, &PlanProfile{plan: p, sample: sample})
	return v.(*PlanProfile)
}

// PlanProfile accumulates one plan's sampled execution profile.
type PlanProfile struct {
	plan   *Plan
	sample int64
	runs   atomic.Int64 // every execution, sampled or not

	mu      sync.Mutex
	sampled int64
	wallNs  int64 // whole-run wall time across sampled runs
	nodes   map[planNode]*nodeStat
	// Derived decisions of the latest sampled run, so the rendered
	// profile carries the via=/order= annotations ExplainRun shows.
	// They belong to a finished run and are never written again.
	orders     map[*andNode][]int
	strategies map[*atomNode]*atomStrategy
}

// sampleNow counts one execution and reports whether it should run
// timed: the plan's first execution, then every sample-th one.
func (p *PlanProfile) sampleNow() bool {
	n := p.runs.Add(1)
	return n == 1 || n%p.sample == 0
}

// fold merges a finished timed run into the profile.
func (p *PlanProfile) fold(rt *planRun, wallNs int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sampled++
	p.wallNs += wallNs
	if p.nodes == nil {
		p.nodes = make(map[planNode]*nodeStat, len(rt.stats))
	}
	for n, st := range rt.stats {
		dst := p.nodes[n]
		if dst == nil {
			dst = &nodeStat{}
			p.nodes[n] = dst
		}
		dst.execs += st.execs
		dst.rows += st.rows
		dst.emits += st.emits
		dst.wallNs += st.wallNs
	}
	p.orders = rt.orders
	p.strategies = rt.strategies
}

// PlanProfileStat is one plan's profile snapshot, shaped for the
// /debug/plans JSON endpoints.
type PlanProfileStat struct {
	// Problem is filled by aggregators that merge the registries of
	// several problems (the rcserved endpoint); empty from Top.
	Problem string `json:"problem,omitempty"`
	Query   string `json:"query"`
	Runs    int64  `json:"runs"`
	Sampled int64  `json:"sampled"`
	// WallMS is the wall time measured across the sampled runs;
	// EstWallMS scales it to all runs, the ranking key across plans.
	WallMS    float64 `json:"wall_ms"`
	EstWallMS float64 `json:"est_wall_ms"`
	// Explain is the plan rendering annotated with the accumulated
	// per-node statistics and inclusive wall times.
	Explain string `json:"explain,omitempty"`
}

func (p *PlanProfile) stat() PlanProfileStat {
	runs := p.runs.Load()
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PlanProfileStat{
		Query:   p.plan.q.Name,
		Runs:    runs,
		Sampled: p.sampled,
		WallMS:  float64(p.wallNs) / 1e6,
	}
	if p.sampled > 0 {
		st.EstWallMS = st.WallMS * float64(runs) / float64(p.sampled)
		st.Explain = p.plan.render(&planRun{
			stats:      p.nodes,
			orders:     p.orders,
			strategies: p.strategies,
		})
	}
	return st
}

// Top returns the k slowest plans by estimated total wall time,
// descending (ties break on query name; k ≤ 0 returns all). Safe to
// call while plans are executing.
func (r *ProfileRegistry) Top(k int) []PlanProfileStat {
	var out []PlanProfileStat
	r.plans.Range(func(_, v any) bool {
		out = append(out, v.(*PlanProfile).stat())
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstWallMS != out[j].EstWallMS {
			return out[i].EstWallMS > out[j].EstWallMS
		}
		return out[i].Query < out[j].Query
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// nodeTime renders a node's accumulated inclusive wall time as a
// " t=…" stat suffix, empty on untimed runs.
func nodeTime(st *nodeStat) string {
	if st.wallNs <= 0 {
		return ""
	}
	return " t=" + time.Duration(st.wallNs).Round(time.Microsecond).String()
}
