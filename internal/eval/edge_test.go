package eval

import (
	"testing"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Edge cases of the positive evaluator's comparison handling and
// disjunct padding.

func TestEvalCompareBothUnbound(t *testing.T) {
	db := mkDB(t)
	// Both sides of the comparison are otherwise-unconstrained
	// variables: active-domain semantics ranges both.
	got := answersOf(t, db, "Q(x, y) := x = y")
	// adom = {1, 2, 3}: the diagonal.
	wantAnswers(t, got, relation.T("1", "1"), relation.T("2", "2"), relation.T("3", "3"))

	got = answersOf(t, db, "Q(x, y) := x != y & x = '1'")
	wantAnswers(t, got, relation.T("1", "2"), relation.T("1", "3"))
}

func TestEvalCompareConstConst(t *testing.T) {
	db := mkDB(t)
	yes, err := Bool(db, query.MustParseQuery("Q() := '1' = '1'"), Options{})
	if err != nil || !yes {
		t.Fatal("constant equality should hold")
	}
	no, err := Bool(db, query.MustParseQuery("Q() := '1' = '2'"), Options{})
	if err != nil || no {
		t.Fatal("constant equality should fail")
	}
}

func TestEvalEqualityPinsBeforeAtoms(t *testing.T) {
	// The conjunction orderer runs atoms first; the equality then
	// filters. Semantics must be unchanged whichever side is written
	// first.
	db := mkDB(t)
	a := answersOf(t, db, "Q(x) := x = '2' & S(x)")
	b := answersOf(t, db, "Q(x) := S(x) & x = '2'")
	if len(a) != 1 || len(b) != 1 || !a[0].Equal(b[0]) {
		t.Fatalf("order sensitivity: %v vs %v", a, b)
	}
}

func TestEvalNestedOrUnderExists(t *testing.T) {
	db := mkDB(t)
	got := answersOf(t, db, "Q(x) := exists y: (R(x, y) | R(y, x)) & S(y)")
	// y ∈ S = {2, 3}: R(x,y) gives x ∈ {1,2,3}; R(y,x) gives x ∈ {3}.
	wantAnswers(t, got, relation.T("1"), relation.T("2"), relation.T("3"))
}

func TestEvalForallEmptyDomain(t *testing.T) {
	// Empty instance and constant-free query: the active domain is
	// empty, so ∀ holds vacuously and ∃ fails.
	sch := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	db := relation.NewDatabase(sch)
	yes, err := Bool(db, query.MustParseQuery("Q() := forall x: R(x)"), Options{})
	if err != nil || !yes {
		t.Fatal("∀ over the empty domain holds vacuously")
	}
	no, err := Bool(db, query.MustParseQuery("Q() := exists x: x = x"), Options{})
	if err != nil || no {
		t.Fatal("∃ over the empty domain fails")
	}
}

func TestEvalBooleanDisjunctionPadding(t *testing.T) {
	// Boolean query with a disjunction where one disjunct has no free
	// variables at all.
	db := mkDB(t)
	yes, err := Bool(db, query.MustParseQuery("Q() := R('9', '9') | S('2')"), Options{})
	if err != nil || !yes {
		t.Fatal("second disjunct holds")
	}
}

func TestEvalRepeatedVariableAtom(t *testing.T) {
	db := mkDB(t) // R contains (3,3)
	got := answersOf(t, db, "Q(x) := R(x, x)")
	wantAnswers(t, got, relation.T("3"))
}

func TestEvalConstantOnlyAtom(t *testing.T) {
	db := mkDB(t)
	yes, err := Bool(db, query.MustParseQuery("Q() := R('1', '2')"), Options{})
	if err != nil || !yes {
		t.Fatal("ground atom lookup failed")
	}
}

func TestAnswersDeterministicOrder(t *testing.T) {
	db := mkDB(t)
	a := answersOf(t, db, "Q(x, y) := R(x, y)")
	b := answersOf(t, db, "Q(x, y) := R(x, y)")
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("answer order must be deterministic")
		}
		if i > 0 && a[i-1].Compare(a[i]) >= 0 {
			t.Fatal("answers must be sorted")
		}
	}
}
