package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// ---------------------------------------------------------------------------
// Randomized differential testing: the compiled indexed engine must be
// bit-identical to the naive evaluator (Options.NaiveJoin) on random
// databases and random CQ/UCQ/∃FO+ queries.
// ---------------------------------------------------------------------------

var genVars = []string{"x", "y", "z"}
var genConsts = []relation.Value{"1", "2", "3", "9"}

// qgen generates random positive-existential formulas over the schema
// {R/2, S/1, T/3}. Quantified variables reuse the same name pool, so
// shadowing occurs naturally.
type qgen struct{ r *rand.Rand }

func (g *qgen) term() query.Term {
	if g.r.Intn(4) == 0 {
		return query.C(genConsts[g.r.Intn(len(genConsts))])
	}
	return query.V(genVars[g.r.Intn(len(genVars))])
}

func (g *qgen) formula(depth int) query.Formula {
	roll := g.r.Intn(10)
	if depth <= 0 {
		roll = g.r.Intn(4) // leaves only
	}
	switch {
	case roll < 3: // atom
		switch g.r.Intn(3) {
		case 0:
			return query.NewAtom("R", g.term(), g.term())
		case 1:
			return query.NewAtom("S", g.term())
		default:
			return query.NewAtom("T", g.term(), g.term(), g.term())
		}
	case roll < 4: // comparison
		if g.r.Intn(2) == 0 {
			return query.EqT(g.term(), g.term())
		}
		return query.NeqT(g.term(), g.term())
	case roll < 7: // conjunction
		n := 2 + g.r.Intn(2)
		kids := make([]query.Formula, n)
		for i := range kids {
			kids[i] = g.formula(depth - 1)
		}
		return &query.And{Kids: kids}
	case roll < 9: // disjunction
		kids := []query.Formula{g.formula(depth - 1), g.formula(depth - 1)}
		return &query.Or{Kids: kids}
	default: // existential
		n := 1 + g.r.Intn(2)
		vars := make([]string, 0, n)
		for _, v := range g.r.Perm(len(genVars))[:n] {
			vars = append(vars, genVars[v])
		}
		sort.Strings(vars)
		return &query.Exists{Vars: vars, Sub: g.formula(depth - 1)}
	}
}

func (g *qgen) query(name string) *query.Query {
	body := g.formula(2)
	free := sortedVars(query.FreeVars(body))
	// Random subset of the free variables as head (possibly empty:
	// Boolean query), always in sorted order.
	head := make([]query.Term, 0, len(free))
	for _, v := range free {
		if g.r.Intn(3) > 0 {
			head = append(head, query.V(v))
		}
	}
	q, err := query.NewQuery(name, head, body)
	if err != nil {
		// Head shape rejected (e.g. free var constraints): retry as
		// Boolean, which is always admissible.
		q = query.MustQuery(name, nil, body)
	}
	return q
}

func randPlanDB(r *rand.Rand) *relation.Database {
	sch := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("C", nil)),
		relation.MustSchema("T", relation.Attr("D", nil), relation.Attr("E", nil), relation.Attr("F", nil)),
	)
	db := relation.NewDatabase(sch)
	val := func() relation.Value {
		return relation.Value(fmt.Sprintf("%d", 1+r.Intn(5)))
	}
	for i, n := 0, r.Intn(8); i < n; i++ {
		db.MustInsert("R", relation.T(val(), val()))
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		db.MustInsert("S", relation.T(val()))
	}
	for i, n := 0, r.Intn(6); i < n; i++ {
		db.MustInsert("T", relation.T(val(), val(), val()))
	}
	return db
}

func sameTuples(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestPlanDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := &qgen{r: r}
	extra := relation.NewValueSet()
	extra.Add("7")
	extra.Add("8")
	for i := 0; i < 400; i++ {
		db := randPlanDB(r)
		q := g.query(fmt.Sprintf("Q%d", i))
		opts := Options{}
		if i%5 == 0 {
			// The quantification domain beyond the active domain must
			// flow identically through both engines.
			opts.ExtraDomain = extra
		}
		naive := opts
		naive.NaiveJoin = true
		got, errC := Answers(db, q, opts)
		want, errN := Answers(db, q, naive)
		if (errC != nil) != (errN != nil) {
			t.Fatalf("#%d %s: error divergence: compiled=%v naive=%v", i, q, errC, errN)
		}
		if errC != nil {
			continue
		}
		if !sameTuples(got, want) {
			t.Fatalf("#%d %s on %s:\ncompiled %v\nnaive    %v", i, q, db, got, want)
		}
		if q.IsBoolean() {
			bc, err := Bool(db, q, opts)
			if err != nil {
				t.Fatalf("#%d compiled Bool: %v", i, err)
			}
			bn, err := Bool(db, q, naive)
			if err != nil {
				t.Fatalf("#%d naive Bool: %v", i, err)
			}
			if bc != bn || bc != (len(want) > 0) {
				t.Fatalf("#%d %s: Bool divergence: compiled=%v naive=%v answers=%d", i, q, bc, bn, len(want))
			}
		}
	}
}

// boxedCopy rebuilds db with boxed (non-interned) oracle storage.
func boxedCopy(t *testing.T, db *relation.Database) *relation.Database {
	t.Helper()
	c := relation.NewBoxedDatabase(db.Schema())
	for _, lt := range db.AllTuples() {
		c.MustInsert(lt.Rel, lt.Tuple)
	}
	if !c.Boxed() || db.Boxed() {
		t.Fatal("storage modes not as constructed")
	}
	return c
}

// rowSet folds tuples into an order-independent set: the greedy
// conjunct order may legitimately differ between storage modes (the
// interned instance feeds measured statistics into conjCost), so
// ForEach emission order is not comparable — the row set is.
func rowSet(rows []relation.Tuple) map[string]int {
	set := make(map[string]int, len(rows))
	for _, r := range rows {
		set[r.Key()]++
	}
	return set
}

func sameRowSet(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// The interned storage layer is a pure representation change: on random
// databases and random ∃FO+ queries, interned and boxed instances must
// produce identical answer sets and identical Plan.ForEach row sets.
func TestPlanDifferentialInternedBoxed(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := &qgen{r: r}
	extra := relation.NewValueSet()
	extra.Add("7")
	extra.Add("8")
	for i := 0; i < 400; i++ {
		db := randPlanDB(r)
		boxed := boxedCopy(t, db)
		q := g.query(fmt.Sprintf("Q%d", i))
		opts := Options{}
		if i%5 == 0 {
			opts.ExtraDomain = extra
		}
		got, errI := Answers(db, q, opts)
		want, errB := Answers(boxed, q, opts)
		if (errI != nil) != (errB != nil) {
			t.Fatalf("#%d %s: error divergence: interned=%v boxed=%v", i, q, errI, errB)
		}
		if errI != nil {
			continue
		}
		// Answers are sorted, so the comparison can be positional.
		if !sameTuples(got, want) {
			t.Fatalf("#%d %s on %s:\ninterned %v\nboxed    %v", i, q, db, got, want)
		}
		plan, err := Compile(q)
		if err != nil {
			t.Fatalf("#%d %s: compile: %v", i, q, err)
		}
		collect := func(d *relation.Database) []relation.Tuple {
			var rows []relation.Tuple
			err := plan.ForEach(d, opts, func(tup relation.Tuple) error {
				rows = append(rows, tup.Clone())
				return nil
			})
			if err != nil {
				t.Fatalf("#%d %s: ForEach: %v", i, q, err)
			}
			return rows
		}
		if !sameRowSet(rowSet(collect(db)), rowSet(collect(boxed))) {
			t.Fatalf("#%d %s: ForEach row sets diverge between interned and boxed storage", i, q)
		}
	}
}

// The corpus pins the corner cases the random generator may miss.
func TestPlanDifferentialCorpus(t *testing.T) {
	db := mkDB(t)
	for _, src := range []string{
		"Q(x, y) := R(x, y) & S(y)",
		"Q(x) := R(x, x)",
		"Q(x) := R(x, '3')",
		"Q('k', x) := R(x, '2')",
		"Q(x) := S(x) | R(x, '2')",
		"Q(x, y) := S(x) | R(x, y)", // y free in one disjunct only: padded
		"Q(x) := exists y: R(x, y) & S(y)",
		"Q(x) := S(x) & exists x: R(x, x)", // inner x shadows the head x
		"Q(x, y) := R(x, y) & x != y",
		"Q(x, y) := S(x) & x = y",
		"Q(x, y) := x != y",        // both sides range the domain
		"Q() := exists x: R(x, x)", // Boolean semi-join
		"Q() := exists x, y: R(x, y) & x != y & S(y)",
		"Q(x) := (S(x) | R(x, '2')) & exists y: R(x, y)",
	} {
		q := query.MustParseQuery(src)
		got, err := Answers(db, q, Options{})
		if err != nil {
			t.Fatalf("%s: compiled: %v", src, err)
		}
		want, err := Answers(db, q, Options{NaiveJoin: true})
		if err != nil {
			t.Fatalf("%s: naive: %v", src, err)
		}
		if !sameTuples(got, want) {
			t.Fatalf("%s:\ncompiled %v\nnaive    %v", src, got, want)
		}
	}
}

// Both engines must reject a query over a relation the database lacks.
func TestPlanUnknownRelationParity(t *testing.T) {
	db := mkDB(t)
	q := query.MustParseQuery("Q(x) := Nope(x)")
	if _, err := Answers(db, q, Options{}); err == nil {
		t.Fatal("compiled: unknown relation should error")
	}
	if _, err := Answers(db, q, Options{NaiveJoin: true}); err == nil {
		t.Fatal("naive: unknown relation should error")
	}
}

// ---------------------------------------------------------------------------
// Determinism: compiling twice yields the same plan, and running twice
// yields the same answers in the same order — including the unsorted
// first-derivation order of ForEach, which depends on the greedy
// conjunct ordering being a pure function of (plan, database).
// ---------------------------------------------------------------------------

func TestPlanDeterministic(t *testing.T) {
	src := "Q(x) := (S(x) | R(x, '2')) & (exists y: R(x, y) & S(y)) & x != '9'"
	q := query.MustParseQuery(src)
	p1 := MustCompile(q)
	p2 := MustCompile(query.MustParseQuery(src))
	if p1.Explain() != p2.Explain() {
		t.Fatalf("plan shape not deterministic:\n%s\nvs\n%s", p1.Explain(), p2.Explain())
	}
	db := mkDB(t)
	order := func(p *Plan) []string {
		var out []string
		if err := p.ForEach(db, Options{}, func(tu relation.Tuple) error {
			out = append(out, tu.String())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	o1, o2, o3 := order(p1), order(p1), order(p2)
	if fmt.Sprint(o1) != fmt.Sprint(o2) || fmt.Sprint(o1) != fmt.Sprint(o3) {
		t.Fatalf("derivation order not deterministic: %v vs %v vs %v", o1, o2, o3)
	}
}

// One compiled plan must be reusable across databases; the greedy order
// adapts per run without leaking state between runs.
func TestPlanReuseAcrossDatabases(t *testing.T) {
	q := query.MustParseQuery("Q(x, y) := R(x, y) & S(y)")
	p := MustCompile(q)
	db1 := mkDB(t)
	db2 := mkDB(t)
	db2.MustInsert("R", relation.T("7", "2"))
	a1, err := p.Answers(db1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Answers(db2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a2) != len(a1)+1 {
		t.Fatalf("reused plan: got %v then %v", a1, a2)
	}
	a1again, err := p.Answers(db1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(a1, a1again) {
		t.Fatalf("plan state leaked between runs: %v vs %v", a1, a1again)
	}
}

func TestPlanForEachStop(t *testing.T) {
	db := mkDB(t)
	p := MustCompile(query.MustParseQuery("Q(x, y) := R(x, y)"))
	var n int
	err := p.ForEach(db, Options{}, func(relation.Tuple) error {
		n++
		return Stop
	})
	if err != nil {
		t.Fatalf("Stop must not surface as an error: %v", err)
	}
	if n != 1 {
		t.Fatalf("Stop after first tuple: callback ran %d times", n)
	}
}

func TestCompileRejectsFullFO(t *testing.T) {
	q := query.MustParseQuery("Q(x) := S(x) & !(exists y: R(x, y))")
	if _, err := Compile(q); err == nil {
		t.Fatal("negation is outside the compiled fragment")
	}
}

// Boolean evaluation through the public entry must short-circuit: on a
// database where the first witness is immediate, Bool must not pay for
// the full answer set. This is a semantic test (the perf claim lives in
// the benchmarks): it pins that both modes agree with Answers.
func TestBoolAgreesWithAnswers(t *testing.T) {
	db := mkDB(t)
	for _, src := range []string{
		"Q() := exists x: S(x)",
		"Q() := exists x: R(x, x)",
		"Q() := exists x: R(x, '7')",
		"Q() := exists x, y: R(x, y) & x != y",
	} {
		q := query.MustParseQuery(src)
		want := len(answersOf(t, db, src)) > 0
		for _, naive := range []bool{false, true} {
			got, err := Bool(db, q, Options{NaiveJoin: naive})
			if err != nil {
				t.Fatalf("%s naive=%v: %v", src, naive, err)
			}
			if got != want {
				t.Fatalf("%s naive=%v: Bool=%v, answers say %v", src, naive, got, want)
			}
		}
	}
}

// TestPlanExplainGolden pins the exact static rendering of a fixed
// 3-atom CQ. The slot table, head and operator tree are part of the
// observability surface (rcheck/rcbench -trace builds on them), so a
// change here is an intentional format change, not noise.
func TestPlanExplainGolden(t *testing.T) {
	q := query.MustParseQuery("Q(x, z) := R(x, y) & S(y, z) & T(z)")
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `plan Q: 3 slots [0=x 1=y 2=z] head(x#0, z#2)
  and
    atom R(x#0, y#1)
    atom S(y#1, z#2)
    atom T(z#2)
`
	if got := plan.Explain(); got != golden {
		t.Errorf("Explain drifted from golden output.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestPlanExplainRunStats checks the runtime rendering: ExplainRun must
// report the chosen conjunct order, each atom's access path, and a
// final tally line consistent with the actual answer count.
func TestPlanExplainRunStats(t *testing.T) {
	q := query.MustParseQuery("Q(x, z) := R(x, y) & S(y, z) & T(z)")
	plan, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	schema := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("B", nil), relation.Attr("C", nil)),
		relation.MustSchema("T", relation.Attr("C", nil)),
	)
	db := relation.NewDatabase(schema)
	db.MustInsert("R", relation.T("1", "2"))
	db.MustInsert("R", relation.T("3", "2"))
	db.MustInsert("S", relation.T("2", "4"))
	db.MustInsert("T", relation.T("4"))
	out, err := plan.ExplainRun(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"and order=", "via=scan", "via=index[1]", "via=member",
		"run: answers=2", "rows_probed=", "rows_emitted=",
		// Statistics-fed estimates rendered beside the measured rows: R
		// probed on its bound position 1 (both rows carry "2" there, so
		// distinct=1 and est = 2/1), the scan and membership atoms est=1.
		"est=2", "est=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainRun missing %q:\n%s", want, out)
		}
	}
}
