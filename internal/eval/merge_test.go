package eval

// Verification of Lemma 3.2(a): Q(I) = fQ(Q)(fD(I)) — the merged
// single-relation encoding preserves query answers. This lives in the
// eval package because it needs the evaluation engine.

import (
	"math/rand"
	"testing"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func TestLemma32QueryEquivalence(t *testing.T) {
	sch := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("C", nil)),
	)
	m, err := relation.NewMerger(sch)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"Q(x) := R(x, y) & S(y)",
		"Q(x, y) := R(x, y) & x != y",
		"Q(x) := S(x) | R(x, '1')",
		"Q() := exists x, y: R(x, y) & S(x) & S(y)",
	}
	r := rand.New(rand.NewSource(21))
	vals := []relation.Value{"1", "2", "3"}
	for trial := 0; trial < 40; trial++ {
		db := relation.NewDatabase(sch)
		for i := 0; i < r.Intn(6); i++ {
			db.MustInsert("R", relation.T(vals[r.Intn(3)], vals[r.Intn(3)]))
		}
		for i := 0; i < r.Intn(4); i++ {
			db.MustInsert("S", relation.T(vals[r.Intn(3)]))
		}
		enc, err := m.Encode(db)
		if err != nil {
			t.Fatal(err)
		}
		mergedDB := relation.NewDatabase(relation.MustDBSchema(m.Merged()))
		for _, tup := range enc.Tuples() {
			mergedDB.MustInsert(m.Merged().Name, tup)
		}
		for _, src := range queries {
			q := query.MustParseQuery(src)
			mq, err := query.MergeQuery(m, q)
			if err != nil {
				t.Fatal(err)
			}
			// Evaluate over a common extra domain so the active-domain
			// padding of disjunctions agrees on both sides.
			dom := relation.NewValueSet(vals...)
			a1, err := Answers(db, q, Options{ExtraDomain: dom})
			if err != nil {
				t.Fatal(err)
			}
			a2, err := Answers(mergedDB, mq, Options{ExtraDomain: dom})
			if err != nil {
				t.Fatal(err)
			}
			if !sameTupleSets(a1, a2) {
				t.Fatalf("trial %d query %s: %v vs merged %v\ndb: %v", trial, src, a1, a2, db)
			}
		}
	}
}

func TestLemma32FPEquivalence(t *testing.T) {
	sch := relation.MustDBSchema(
		relation.MustSchema("edge", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("mark", relation.Attr("X", nil)),
	)
	m, err := relation.NewMerger(sch)
	if err != nil {
		t.Fatal(err)
	}
	p := query.MustParseProgram("p", sch, `
		reach(x, y) :- edge(x, y).
		reach(x, z) :- reach(x, y), edge(y, z).
		hot(y) :- reach(x, y), mark(x).
		output hot.
	`)
	mp, err := query.MergeProgram(m, p)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	vals := []relation.Value{"a", "b", "c", "d"}
	for trial := 0; trial < 30; trial++ {
		db := relation.NewDatabase(sch)
		for i := 0; i < r.Intn(8); i++ {
			db.MustInsert("edge", relation.T(vals[r.Intn(4)], vals[r.Intn(4)]))
		}
		for i := 0; i < r.Intn(3); i++ {
			db.MustInsert("mark", relation.T(vals[r.Intn(4)]))
		}
		enc, _ := m.Encode(db)
		mergedDB := relation.NewDatabase(relation.MustDBSchema(m.Merged()))
		for _, tup := range enc.Tuples() {
			mergedDB.MustInsert(m.Merged().Name, tup)
		}
		a1, err := FPAnswers(db, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		a2, err := FPAnswers(mergedDB, mp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTupleSets(a1, a2) {
			t.Fatalf("trial %d: %v vs merged %v", trial, a1, a2)
		}
	}
}
