package reduction

import (
	"context"
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/sat"
)

// WeakRCDPGadget is the Theorem 5.1(3) construction: from ∃X ∀Y ∃Z ψ
// it builds schema R = (R01, R¬, R∨, R∧, RY(Y1..Ym)), the ground
// instance I holding the Figure 2 relations with RY empty, master data
// and CCs forcing every partially closed extension of I to store
// exactly one truth assignment of Y, and the CQ
//
//	Q(x⃗) = ∃y⃗, z⃗ (QX(x⃗) ∧ RY(y⃗) ∧ QZ(z⃗) ∧ Qψ(x⃗, y⃗, z⃗, w) ∧ w = 1)
//
// such that   ϕ is true  ⟺  I is NOT weakly complete.
type WeakRCDPGadget struct {
	QBF     *sat.QBF
	Bool    *BoolRels
	RY      *relation.Schema
	Problem *core.Problem
	I       *ctable.CInstance // ground instance (as a c-instance)
}

// NewWeakRCDPGadget builds the gadget from an ∃∀∃ QBF with non-empty
// blocks.
func NewWeakRCDPGadget(q *sat.QBF) (*WeakRCDPGadget, error) {
	if len(q.Blocks) != 3 ||
		q.Blocks[0].Q != sat.Exists || q.Blocks[1].Q != sat.ForAll || q.Blocks[2].Q != sat.Exists {
		return nil, fmt.Errorf("reduction: weak RCDP gadget needs an ∃*∀*∃* prefix, got %v", q.Blocks)
	}
	nX := q.Blocks[0].To - q.Blocks[0].From + 1
	nY := q.Blocks[1].To - q.Blocks[1].From + 1
	nZ := q.Blocks[2].To - q.Blocks[2].From + 1
	if nX == 0 || nY == 0 || nZ == 0 {
		return nil, fmt.Errorf("reduction: all three blocks must be non-empty")
	}
	b := NewBoolRels()

	attrs := make([]relation.Attribute, nY)
	for i := range attrs {
		attrs[i] = relation.Attr(fmt.Sprintf("Y%d", i+1), relation.Bool())
	}
	ry := relation.MustSchema("RY", attrs...)

	dataSchema := relation.MustDBSchema(append(b.DataSchemas(), ry)...)
	// Master: Figure 2 copies, the empty unary Rm∅ and the empty binary
	// Rm∅2 used by the singleton constraint.
	mempty2 := relation.MustSchema("Mempty2", relation.Attr("W", nil), relation.Attr("W2", nil))
	masterSchema := relation.MustDBSchema(append(b.MasterSchemas(), mempty2)...)
	dm := relation.NewDatabase(masterSchema)
	b.PopulateMaster(dm)

	v := cc.NewSet(b.ContainmentCCs()...)
	// φi: ∃ other columns RY(y1..ym) ⊆ R(0,1)(yi).
	for i := 0; i < nY; i++ {
		terms := make([]query.Term, nY)
		for j := range terms {
			terms[j] = query.V(fmt.Sprintf("y%d", j+1))
		}
		v.Add(cc.Must(fmt.Sprintf("y01_%d", i+1),
			query.MustQuery("q", []query.Term{terms[i]}, query.NewAtom(ry.Name, terms...)),
			query.MustQuery("p", []query.Term{query.V("y")}, query.NewAtom(b.M01.Name, query.V("y")))))
	}
	// φ'i: two RY rows differing at column i ⊆ Rm∅2 — RY is a
	// singleton in every partially closed instance.
	for i := 0; i < nY; i++ {
		t1 := make([]query.Term, nY)
		t2 := make([]query.Term, nY)
		for j := range t1 {
			t1[j] = query.V(fmt.Sprintf("a%d", j+1))
			t2[j] = query.V(fmt.Sprintf("b%d", j+1))
		}
		v.Add(cc.Must(fmt.Sprintf("ysingle_%d", i+1),
			query.MustQuery("q", []query.Term{t1[i], t2[i]},
				query.Conj(query.NewAtom(ry.Name, t1...), query.NewAtom(ry.Name, t2...),
					query.NeqT(t1[i], t2[i]))),
			query.MustQuery("p", []query.Term{query.V("w"), query.V("w2")},
				query.NewAtom(mempty2.Name, query.V("w"), query.V("w2")))))
	}

	// The query.
	varName := func(v int) string {
		switch {
		case v <= q.Blocks[0].To:
			return fmt.Sprintf("x%d", v)
		case v <= q.Blocks[1].To:
			return fmt.Sprintf("y%d", v-nX)
		default:
			return fmt.Sprintf("z%d", v-nX-nY)
		}
	}
	var kids []query.Formula
	var xNames, zNames []string
	for i := 1; i <= nX; i++ {
		xNames = append(xNames, fmt.Sprintf("x%d", i))
	}
	for i := 1; i <= nZ; i++ {
		zNames = append(zNames, fmt.Sprintf("z%d", i))
	}
	kids = append(kids, b.AssignmentAtoms(xNames)...)
	yTerms := make([]query.Term, nY)
	for i := range yTerms {
		yTerms[i] = query.V(fmt.Sprintf("y%d", i+1))
	}
	kids = append(kids, query.NewAtom(ry.Name, yTerms...))
	kids = append(kids, b.AssignmentAtoms(zNames)...)
	atoms, err := EncodeCNFValue(b, q.Matrix, func(v int) query.Term { return query.V(varName(v)) }, "e_", "1")
	if err != nil {
		return nil, err
	}
	kids = append(kids, atoms...)
	head := make([]query.Term, nX)
	for i := range head {
		head[i] = query.V(xNames[i])
	}
	qry, err := query.NewQuery("Qweak", head, query.Conj(kids...))
	if err != nil {
		return nil, err
	}

	p, err := core.NewProblem(dataSchema, core.CalcQuery(qry), dm, v, core.Options{})
	if err != nil {
		return nil, err
	}
	inst := ctable.NewCInstance(dataSchema)
	b.PopulateData(inst) // RY stays empty
	return &WeakRCDPGadget{QBF: q, Bool: b, RY: ry, Problem: p, I: inst}, nil
}

// WeaklyComplete decides RCDPw(I). Per Theorem 5.1(3): true iff the
// QBF is FALSE.
func (g *WeakRCDPGadget) WeaklyComplete() (bool, error) {
	return g.WeaklyCompleteCtx(context.Background())
}

// WeaklyCompleteCtx is WeaklyComplete honoring ctx.
func (g *WeakRCDPGadget) WeaklyCompleteCtx(ctx context.Context) (bool, error) {
	return g.Problem.RCDPCtx(ctx, g.I, core.Weak)
}
