package reduction

import (
	"testing"

	"relcomplete/internal/sat"
)

func TestCircuitFPGadgetKnown(t *testing.T) {
	// Tautology: in0 ∨ ¬in0.
	taut := sat.MustCircuit(
		sat.Gate{Kind: sat.GateIn},
		sat.Gate{Kind: sat.GateNot, L: 0},
		sat.Gate{Kind: sat.GateOr, L: 0, R: 1},
	)
	if ok, _ := taut.Tautology(); !ok {
		t.Fatal("oracle: should be a tautology")
	}
	g, err := NewCircuitFPGadget(taut)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.WeaklyComplete()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tautology: I must be weakly complete (Theorem 5.1(2))")
	}

	// Non-tautology: in0 ∧ in1.
	notTaut := sat.MustCircuit(
		sat.Gate{Kind: sat.GateIn},
		sat.Gate{Kind: sat.GateIn},
		sat.Gate{Kind: sat.GateAnd, L: 0, R: 1},
	)
	g2, err := NewCircuitFPGadget(notTaut)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = g2.WeaklyComplete()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("non-tautology: I must not be weakly complete")
	}
}

func TestCircuitFPGadgetRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential decider on reduction gadgets")
	}
	for seed := int64(0); seed < 8; seed++ {
		f := sat.RandomCNF(3, 4, seed)
		base := sat.FromCNF(f)
		circ := sat.OrNot(base, seed%2 == 0) // half are forced tautologies
		want, err := circ.Tautology()
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewCircuitFPGadget(circ)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.WeaklyComplete()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: RCDPw %v, tautology oracle %v", seed, got, want)
		}
	}
}

func TestCircuitFPGadgetValidation(t *testing.T) {
	noInput := sat.MustCircuit(sat.Gate{Kind: sat.GateIn}) // has an input; build a truly inputless one manually
	_ = noInput
	c, err := sat.NewCircuit([]sat.Gate{{Kind: sat.GateIn}, {Kind: sat.GateNot, L: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCircuitFPGadget(c); err != nil {
		t.Fatal("valid circuit should build")
	}
	inputless := &sat.Circuit{Gates: []sat.Gate{{Kind: sat.GateNot, L: 0}}}
	if _, err := NewCircuitFPGadget(inputless); err == nil {
		t.Fatal("inputless circuit should be rejected")
	}
}
