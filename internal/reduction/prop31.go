package reduction

import (
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/eval"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Prop31Gadget is the Proposition 3.1 construction: in the presence of
// a set Θ of FDs and INDs as integrity constraints (master data and
// CCs both empty!), the empty instance I∅ is complete for the CQ
//
//	Q() = ∃x⃗, y⃗1, y⃗2, w, w' (R(x⃗, w, y⃗1) ∧ R(x⃗, w', y⃗2) ∧ w ≠ w')
//
// relative to (∅, ∅, Θ) iff Θ ⊨ φ, where φ: X → A is the FD under
// test. Because FD+IND implication is undecidable, so are RCDP and
// RCQP in this setting — there is no exact decider to call; the gadget
// instead exposes CompleteUpTo(k, pool), the definition checked over
// all Θ-satisfying extensions with at most k tuples over the given
// value pool. For FD-only Θ, k = 2 with a binary pool is exact
// (Armstrong's two-tuple witness), which the tests verify against the
// closure-based oracle.
type Prop31Gadget struct {
	Schema *relation.Schema
	FDs    []cc.FD
	INDs   []cc.IND
	Phi    cc.FD
	Query  *query.Query
}

// NewProp31Gadget builds the gadget for constraints over a single
// relation schema; phi must be an FD on that relation with a single
// RHS attribute.
func NewProp31Gadget(sch *relation.Schema, fds []cc.FD, inds []cc.IND, phi cc.FD) (*Prop31Gadget, error) {
	if len(phi.RHS) != 1 {
		return nil, fmt.Errorf("reduction: φ must have a single RHS attribute")
	}
	if sch.AttrIndex(phi.RHS[0]) < 0 {
		return nil, fmt.Errorf("reduction: φ's RHS %s not in schema", phi.RHS[0])
	}
	for _, a := range phi.LHS {
		if sch.AttrIndex(a) < 0 {
			return nil, fmt.Errorf("reduction: φ's LHS attribute %s not in schema", a)
		}
	}
	q, err := violationQuery(sch, phi)
	if err != nil {
		return nil, err
	}
	return &Prop31Gadget{Schema: sch, FDs: fds, INDs: inds, Phi: phi, Query: q}, nil
}

// violationQuery builds the Boolean CQ detecting a violation of φ.
func violationQuery(sch *relation.Schema, phi cc.FD) (*query.Query, error) {
	onLHS := map[string]bool{}
	for _, a := range phi.LHS {
		onLHS[a] = true
	}
	rhs := phi.RHS[0]
	t1 := make([]query.Term, sch.Arity())
	t2 := make([]query.Term, sch.Arity())
	// When the RHS attribute also occurs in the LHS, the two copies
	// share its variable and the final inequality becomes v ≠ v:
	// exactly the (unsatisfiable) violation condition of a trivial FD.
	wTerm, wpTerm := query.V("w"), query.V("wp")
	for i, a := range sch.AttrNames() {
		switch {
		case onLHS[a]:
			v := query.V(fmt.Sprintf("x%d", i))
			t1[i], t2[i] = v, v
			if a == rhs {
				wTerm, wpTerm = v, v
			}
		case a == rhs:
			t1[i], t2[i] = wTerm, wpTerm
		default:
			t1[i], t2[i] = query.V(fmt.Sprintf("u%d", i)), query.V(fmt.Sprintf("v%d", i))
		}
	}
	return query.NewQuery("Qviol", nil, query.Conj(
		query.NewAtom(sch.Name, t1...),
		query.NewAtom(sch.Name, t2...),
		query.NeqT(wTerm, wpTerm),
	))
}

// SatisfiesTheta reports whether an instance satisfies every FD and
// IND of Θ (INDs are checked within the single-relation database).
func (g *Prop31Gadget) SatisfiesTheta(inst *relation.Instance) (bool, error) {
	for _, fd := range g.FDs {
		ok, err := fd.Holds(inst)
		if err != nil || !ok {
			return false, err
		}
	}
	if len(g.INDs) > 0 {
		db := relation.NewDatabase(relation.MustDBSchema(g.Schema))
		for _, t := range inst.Tuples() {
			db.MustInsert(g.Schema.Name, t)
		}
		for _, ind := range g.INDs {
			ok, err := ind.HoldsWithin(db)
			if err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}

// CompleteUpTo checks whether I∅ is complete for Q relative to
// (∅, ∅, Θ) over all Θ-satisfying extensions of at most k tuples
// drawn from pool — i.e. whether no such extension makes Q true.
// It is exact whenever a smallest Θ-satisfying φ-violation (if any)
// fits in k tuples over pool; for FD-only Θ that holds at k = 2 with
// |pool| = 2.
func (g *Prop31Gadget) CompleteUpTo(k int, pool []relation.Value) (bool, error) {
	// Materialise the tuple lattice over the pool.
	var lattice []relation.Tuple
	t := make(relation.Tuple, g.Schema.Arity())
	var build func(i int)
	build = func(i int) {
		if i == g.Schema.Arity() {
			lattice = append(lattice, t.Clone())
			return
		}
		for _, v := range pool {
			t[i] = v
			build(i + 1)
		}
	}
	build(0)

	complete := true
	cur := relation.NewInstance(g.Schema)
	var rec func(start, remaining int) error
	rec = func(start, remaining int) error {
		if !complete {
			return nil
		}
		if cur.Len() > 0 {
			ok, err := g.SatisfiesTheta(cur)
			if err != nil {
				return err
			}
			if ok {
				db := relation.NewDatabase(relation.MustDBSchema(g.Schema))
				for _, tt := range cur.Tuples() {
					db.MustInsert(g.Schema.Name, tt)
				}
				violated, err := eval.Bool(db, g.Query, eval.Options{})
				if err != nil {
					return err
				}
				if violated {
					complete = false
					return nil
				}
			}
		}
		if remaining == 0 {
			return nil
		}
		for i := start; i < len(lattice); i++ {
			if cur.Contains(lattice[i]) {
				continue
			}
			next := cur.WithTuple(lattice[i])
			saved := cur
			cur = next
			if err := rec(i+1, remaining-1); err != nil {
				return err
			}
			cur = saved
			if !complete {
				return nil
			}
		}
		return nil
	}
	if err := rec(0, k); err != nil {
		return false, err
	}
	return complete, nil
}
