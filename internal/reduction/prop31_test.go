package reduction

import (
	"math/rand"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/relation"
)

func prop31Schema() *relation.Schema {
	return relation.MustSchema("R",
		relation.Attr("A", nil), relation.Attr("B", nil),
		relation.Attr("C", nil), relation.Attr("D", nil))
}

func TestFDImplicationClosure(t *testing.T) {
	fds := []cc.FD{
		{Rel: "R", LHS: []string{"A"}, RHS: []string{"B"}},
		{Rel: "R", LHS: []string{"B"}, RHS: []string{"C"}},
	}
	if !cc.FDImplies(fds, cc.FD{Rel: "R", LHS: []string{"A"}, RHS: []string{"C"}}) {
		t.Fatal("transitivity: A→B, B→C ⊨ A→C")
	}
	if cc.FDImplies(fds, cc.FD{Rel: "R", LHS: []string{"C"}, RHS: []string{"A"}}) {
		t.Fatal("C→A is not implied")
	}
	got := cc.FDClosure(fds, "R", []string{"A"})
	if len(got) != 3 { // A, B, C
		t.Fatalf("closure(A) = %v", got)
	}
}

func TestFDCounterexample(t *testing.T) {
	sch := prop31Schema()
	theta := []cc.FD{{Rel: "R", LHS: []string{"A"}, RHS: []string{"B"}}}
	phi := cc.FD{Rel: "R", LHS: []string{"A"}, RHS: []string{"C"}}
	wit, err := cc.FDCounterexample(theta, phi, sch)
	if err != nil {
		t.Fatal(err)
	}
	if wit == nil {
		t.Fatal("Θ ⊭ φ: witness expected")
	}
	for _, fd := range theta {
		ok, _ := fd.Holds(wit)
		if !ok {
			t.Fatal("witness must satisfy Θ")
		}
	}
	ok, _ := phi.Holds(wit)
	if ok {
		t.Fatal("witness must violate φ")
	}
	// Implied FD: no witness.
	wit2, err := cc.FDCounterexample(theta, cc.FD{Rel: "R", LHS: []string{"A"}, RHS: []string{"B"}}, sch)
	if err != nil || wit2 != nil {
		t.Fatal("implied FD must have no witness")
	}
}

// Proposition 3.1 iff on FD-only Θ, where the bounded check is exact:
// I∅ is complete for the violation query iff Θ ⊨ φ.
func TestProp31GadgetFDOnly(t *testing.T) {
	sch := prop31Schema()
	attrs := sch.AttrNames()
	r := rand.New(rand.NewSource(17))
	pool := []relation.Value{"0", "1"}
	for trial := 0; trial < 40; trial++ {
		var theta []cc.FD
		for i := 0; i < 1+r.Intn(3); i++ {
			lhs := []string{attrs[r.Intn(4)]}
			rhs := []string{attrs[r.Intn(4)]}
			theta = append(theta, cc.FD{Rel: "R", LHS: lhs, RHS: rhs})
		}
		phi := cc.FD{Rel: "R", LHS: []string{attrs[r.Intn(4)]}, RHS: []string{attrs[r.Intn(4)]}}
		g, err := NewProp31Gadget(sch, theta, nil, phi)
		if err != nil {
			t.Fatal(err)
		}
		want := cc.FDImplies(theta, phi)
		got, err := g.CompleteUpTo(2, pool)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: complete %v, FDImplies %v\nΘ = %v\nφ = %v", trial, got, want, theta, phi)
		}
	}
}

// With an IND in Θ the bounded check still agrees with hand-computed
// cases: the IND R[B] ⊆ R[A] plus A→B forces chains; on a binary pool
// two tuples still witness non-implication when present.
func TestProp31GadgetWithIND(t *testing.T) {
	sch := prop31Schema()
	theta := []cc.FD{{Rel: "R", LHS: []string{"A"}, RHS: []string{"B"}}}
	inds := []cc.IND{{FromRel: "R", FromAttrs: []string{"B"}, ToRel: "R", ToAttrs: []string{"A"}}}
	phi := cc.FD{Rel: "R", LHS: []string{"A"}, RHS: []string{"C"}}
	g, err := NewProp31Gadget(sch, theta, inds, phi)
	if err != nil {
		t.Fatal(err)
	}
	// A→C is not implied even with the IND: the Armstrong witness
	// {(0,0,0,0),(0,0,1,0)} satisfies A→B and B ⊆ A.
	got, err := g.CompleteUpTo(2, []relation.Value{"0", "1"})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("a Θ-satisfying φ-violation of 2 tuples exists")
	}
}

func TestProp31GadgetValidation(t *testing.T) {
	sch := prop31Schema()
	if _, err := NewProp31Gadget(sch, nil, nil, cc.FD{Rel: "R", LHS: []string{"A"}, RHS: []string{"B", "C"}}); err == nil {
		t.Fatal("multi-attribute RHS should be rejected")
	}
	if _, err := NewProp31Gadget(sch, nil, nil, cc.FD{Rel: "R", LHS: []string{"Z"}, RHS: []string{"B"}}); err == nil {
		t.Fatal("unknown LHS attribute should be rejected")
	}
	if _, err := NewProp31Gadget(sch, nil, nil, cc.FD{Rel: "R", LHS: []string{"A"}, RHS: []string{"Z"}}); err == nil {
		t.Fatal("unknown RHS attribute should be rejected")
	}
}
