package reduction

import (
	"context"
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/sat"
)

// WeakMINPGadget is the Theorem 5.6(4) construction reducing the
// DP-complete SAT-UNSAT problem to MINPw(CQ): a single relation
// R(X1..Xn, X'1..Xn', Y), the empty instance I, master data (Rm(0,1)
// and Rm∅) and CCs such that a single tuple t may enter a partially
// closed instance only when its X columns satisfy ϕ and, whenever
// t[Y] = 1, its X' columns satisfy ϕ'; the query is πY(R). Then
//
//	I = ∅ is a minimal weakly complete instance ⟺ NOT (ϕ sat ∧ ϕ' unsat).
type WeakMINPGadget struct {
	Instance *sat.SATUNSAT
	R        *relation.Schema
	Problem  *core.Problem
	I        *ctable.CInstance // the empty instance
}

// NewWeakMINPGadget builds the gadget. Both CNFs must be non-empty;
// tautological clauses (a variable and its negation) are dropped, as
// they induce no falsifying assignment.
func NewWeakMINPGadget(inst sat.SATUNSAT) (*WeakMINPGadget, error) {
	if inst.Phi == nil || inst.Psi == nil || inst.Phi.Vars == 0 || inst.Psi.Vars == 0 {
		return nil, fmt.Errorf("reduction: SAT-UNSAT gadget needs two non-trivial CNFs")
	}
	if err := inst.Phi.Validate(); err != nil {
		return nil, err
	}
	if err := inst.Psi.Validate(); err != nil {
		return nil, err
	}
	n, n2 := inst.Phi.Vars, inst.Psi.Vars

	attrs := make([]relation.Attribute, 0, n+n2+1)
	for i := 1; i <= n; i++ {
		attrs = append(attrs, relation.Attr(fmt.Sprintf("X%d", i), relation.Bool()))
	}
	for i := 1; i <= n2; i++ {
		attrs = append(attrs, relation.Attr(fmt.Sprintf("XP%d", i), relation.Bool()))
	}
	attrs = append(attrs, relation.Attr("Y", relation.Bool()))
	r := relation.MustSchema("R", attrs...)
	arity := r.Arity()
	yPos := arity - 1

	dataSchema := relation.MustDBSchema(r)
	masterSchema := relation.MustDBSchema(
		relation.MustSchema("M01", relation.Attr("X", relation.Bool())),
		relation.MustSchema("Mempty", relation.Attr("W", nil)),
	)
	dm := relation.NewDatabase(masterSchema)
	dm.MustInsert("M01", relation.T("0"))
	dm.MustInsert("M01", relation.T("1"))

	v := cc.NewSet()
	// (i) Every column draws from {0, 1}.
	for i := 0; i < arity; i++ {
		terms := make([]query.Term, arity)
		for j := range terms {
			terms[j] = query.V(fmt.Sprintf("v%d", j))
		}
		v.Add(cc.Must(fmt.Sprintf("col01_%d", i),
			query.MustQuery("q", []query.Term{terms[i]}, query.NewAtom(r.Name, terms...)),
			query.MustQuery("p", []query.Term{query.V("x")}, query.NewAtom("M01", query.V("x")))))
	}
	// (ii) Per clause of ϕ: the falsifying selection over the X
	// columns must be empty.
	addDenials := func(f *sat.CNF, offset int, pinY bool, label string) error {
		for ci, clause := range f.Clauses {
			pin := map[int]relation.Value{}
			tautological := false
			for _, lit := range clause {
				// The clause is false when every literal is false.
				want := relation.Value("0")
				if !lit.Positive() {
					want = "1"
				}
				pos := offset + lit.Var() - 1
				if prev, ok := pin[pos]; ok && prev != want {
					tautological = true
					break
				}
				pin[pos] = want
			}
			if tautological {
				continue
			}
			if pinY {
				pin[yPos] = "1"
			}
			terms := make([]query.Term, arity)
			var exVars []string
			for j := range terms {
				if val, ok := pin[j]; ok {
					terms[j] = query.C(val)
				} else {
					name := fmt.Sprintf("u%d", j)
					terms[j] = query.V(name)
					exVars = append(exVars, name)
				}
			}
			left := query.MustQuery("q", nil,
				query.Ex(exVars, query.NewAtom(r.Name, terms...)))
			right := query.MustQuery("p", nil,
				query.Ex([]string{"w"}, query.NewAtom("Mempty", query.V("w"))))
			cst, err := cc.New(fmt.Sprintf("%s_clause%d", label, ci), left, right)
			if err != nil {
				return err
			}
			v.Add(cst)
		}
		return nil
	}
	if err := addDenials(inst.Phi, 0, false, "phi"); err != nil {
		return nil, err
	}
	if err := addDenials(inst.Psi, n, true, "psi"); err != nil {
		return nil, err
	}

	// Q(y) := πY(R).
	terms := make([]query.Term, arity)
	var exVars []string
	for j := 0; j < arity-1; j++ {
		name := fmt.Sprintf("h%d", j)
		terms[j] = query.V(name)
		exVars = append(exVars, name)
	}
	terms[yPos] = query.V("y")
	qry := query.MustQuery("Qy", []query.Term{query.V("y")},
		query.Ex(exVars, query.NewAtom(r.Name, terms...)))

	p, err := core.NewProblem(dataSchema, core.CalcQuery(qry), dm, v, core.Options{})
	if err != nil {
		return nil, err
	}
	return &WeakMINPGadget{Instance: &inst, R: r, Problem: p, I: ctable.NewCInstance(dataSchema)}, nil
}

// MinimalWeaklyComplete decides MINPw(∅). Per Theorem 5.6(4): true iff
// the SAT-UNSAT instance is a NO-instance (ϕ unsat or ϕ' sat).
func (g *WeakMINPGadget) MinimalWeaklyComplete() (bool, error) {
	return g.MinimalWeaklyCompleteCtx(context.Background())
}

// MinimalWeaklyCompleteCtx is MinimalWeaklyComplete honoring ctx.
func (g *WeakMINPGadget) MinimalWeaklyCompleteCtx(ctx context.Context) (bool, error) {
	return g.Problem.MINPCtx(ctx, g.I, core.Weak)
}
