package reduction

import (
	"math/rand"
	"testing"

	"relcomplete/internal/sat"
)

// Theorem 5.1(3): ϕ true ⟺ I not weakly complete.
func TestWeakRCDPGadgetKnown(t *testing.T) {
	qTrue, _ := sat.ExistsForallExists(1, 1, 1, []sat.Clause{{1}, {2, 3}, {-2, -3}})
	g, err := NewWeakRCDPGadget(qTrue)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.WeaklyComplete()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("true QBF: I must NOT be weakly complete (Theorem 5.1(3))")
	}

	qFalse, _ := sat.ExistsForallExists(1, 1, 1, []sat.Clause{{1}, {2}, {3, -3}})
	g2, err := NewWeakRCDPGadget(qFalse)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = g2.WeaklyComplete()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("false QBF: I must be weakly complete (Theorem 5.1(3))")
	}
}

func TestWeakRCDPGadgetRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential decider on reduction gadgets")
	}
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		q := randomEFE(r, 1+r.Intn(2), 1, 1, 2+r.Intn(2))
		g, err := NewWeakRCDPGadget(q)
		if err != nil {
			t.Fatal(err)
		}
		want := !q.Eval()
		got, err := g.WeaklyComplete()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: RCDPw %v, oracle(¬ϕ) %v for %s", trial, got, want, q)
		}
	}
}

func TestWeakRCDPGadgetValidation(t *testing.T) {
	m := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{1}}}
	q := sat.MustQBF(m, sat.Block{Q: sat.Exists, From: 1, To: 1})
	if _, err := NewWeakRCDPGadget(q); err == nil {
		t.Fatal("wrong prefix should be rejected")
	}
}

// Theorem 5.6(4): ∅ minimal weakly complete ⟺ ¬SAT-UNSAT.
func TestWeakMINPGadgetKnown(t *testing.T) {
	satF := &sat.CNF{Vars: 2, Clauses: []sat.Clause{{1, 2, 2}}}
	unsatF := &sat.CNF{Vars: 2, Clauses: []sat.Clause{{1, 1, 1}, {-1, -1, -1}}}

	cases := []struct {
		inst sat.SATUNSAT
		want bool // expected MINPw(∅)
	}{
		{sat.SATUNSAT{Phi: satF, Psi: unsatF}, false},  // yes-instance
		{sat.SATUNSAT{Phi: satF, Psi: satF}, true},     // ϕ' satisfiable
		{sat.SATUNSAT{Phi: unsatF, Psi: unsatF}, true}, // ϕ unsatisfiable
		{sat.SATUNSAT{Phi: unsatF, Psi: satF}, true},
	}
	for i, c := range cases {
		g, err := NewWeakMINPGadget(c.inst)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.MinimalWeaklyComplete()
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("case %d: MINPw(∅) = %v, want %v (oracle SAT-UNSAT = %v)",
				i, got, c.want, c.inst.Eval())
		}
		if got == c.inst.Eval() {
			t.Fatalf("case %d: MINPw(∅) must be the complement of SAT-UNSAT", i)
		}
	}
}

func TestWeakMINPGadgetRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential decider on reduction gadgets")
	}
	for seed := int64(0); seed < 10; seed++ {
		inst := sat.SATUNSAT{
			Phi: sat.RandomCNF(2, 2+int(seed%3), seed),
			Psi: sat.RandomCNF(2, 2+int(seed%4), seed+100),
		}
		g, err := NewWeakMINPGadget(inst)
		if err != nil {
			t.Fatal(err)
		}
		want := !inst.Eval()
		got, err := g.MinimalWeaklyComplete()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: MINPw(∅) %v, oracle(¬SAT-UNSAT) %v\nϕ: %s\nϕ': %s",
				seed, got, want, inst.Phi, inst.Psi)
		}
	}
}

func TestWeakMINPGadgetValidation(t *testing.T) {
	if _, err := NewWeakMINPGadget(sat.SATUNSAT{}); err == nil {
		t.Fatal("nil CNFs should be rejected")
	}
	bad := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{}}}
	good := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{1}}}
	if _, err := NewWeakMINPGadget(sat.SATUNSAT{Phi: bad, Psi: good}); err == nil {
		t.Fatal("invalid CNF should be rejected")
	}
}

// A tautological clause (x ∨ ¬x ∨ x) has no falsifying assignment and
// must be dropped, not mis-encoded.
func TestWeakMINPGadgetTautologicalClause(t *testing.T) {
	phi := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{1, -1, 1}}} // tautology: satisfiable
	psi := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{1, 1, 1}, {-1, -1, -1}}}
	g, err := NewWeakMINPGadget(sat.SATUNSAT{Phi: phi, Psi: psi})
	if err != nil {
		t.Fatal(err)
	}
	// ϕ sat ∧ ϕ' unsat → yes-instance → ∅ not minimal weakly complete.
	got, err := g.MinimalWeaklyComplete()
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("yes-instance: ∅ must not be minimal weakly complete")
	}
}
