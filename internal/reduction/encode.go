package reduction

import (
	"fmt"

	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/sat"
)

// EncodeCNF compiles a CNF ψ into the paper's Qψ: a conjunction of
// R¬/R∨/R∧ atoms whose variables compute the truth value of ψ bottom
// up, given a term per propositional variable. It returns the atom
// list and the name of the output variable w holding ψ's value; every
// auxiliary variable is prefixed to keep namespaces disjoint.
//
// CQ supports neither ∨ nor ¬ directly; exactly as in the proof of
// Proposition 3.3, the Figure 2 relations turn both into joins.
func EncodeCNF(b *BoolRels, f *sat.CNF, varTerm func(v int) query.Term, prefix string) ([]query.Formula, string, error) {
	if err := f.Validate(); err != nil {
		return nil, "", err
	}
	if len(f.Clauses) == 0 {
		return nil, "", fmt.Errorf("reduction: cannot encode an empty CNF")
	}
	var atoms []query.Formula
	aux := 0
	fresh := func() string {
		aux++
		return fmt.Sprintf("%st%d", prefix, aux)
	}
	// litTerm yields a term carrying the literal's truth value.
	litTerm := func(l sat.Literal) query.Term {
		base := varTerm(l.Var())
		if l.Positive() {
			return base
		}
		neg := query.V(fresh())
		atoms = append(atoms, query.NewAtom(b.Rneg.Name, base, neg))
		return neg
	}
	// fold combines a list of terms with a binary truth-table relation.
	fold := func(rel string, terms []query.Term) query.Term {
		cur := terms[0]
		for _, t := range terms[1:] {
			out := query.V(fresh())
			atoms = append(atoms, query.NewAtom(rel, cur, t, out))
			cur = out
		}
		return cur
	}
	clauseOuts := make([]query.Term, 0, len(f.Clauses))
	for _, cl := range f.Clauses {
		lits := make([]query.Term, len(cl))
		for i, l := range cl {
			lits[i] = litTerm(l)
		}
		clauseOuts = append(clauseOuts, fold(b.Ror.Name, lits))
	}
	out := fold(b.Rand.Name, clauseOuts)
	if !out.IsVar {
		// Degenerate single positive literal bound to a constant term;
		// route it through a conjunction with itself to expose a
		// variable output.
		w := query.V(fresh())
		atoms = append(atoms, query.NewAtom(b.Rand.Name, out, out, w))
		out = w
	}
	return atoms, out.Name, nil
}

// EncodeCNFValue is EncodeCNF plus a pinned output: it appends the
// comparison w = value ('1' to assert ψ, '0' to refute it).
func EncodeCNFValue(b *BoolRels, f *sat.CNF, varTerm func(v int) query.Term, prefix string, value relation.Value) ([]query.Formula, error) {
	atoms, w, err := EncodeCNF(b, f, varTerm, prefix)
	if err != nil {
		return nil, err
	}
	atoms = append(atoms, query.EqT(query.V(w), query.C(value)))
	return atoms, nil
}
