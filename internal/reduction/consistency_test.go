package reduction

import (
	"math/rand"
	"testing"

	"relcomplete/internal/sat"
)

// randomForallExists generates a small random ∀*∃*3SAT instance.
func randomForallExists(r *rand.Rand, nX, nY, clauses int) *sat.QBF {
	total := nX + nY
	var cls []sat.Clause
	for i := 0; i < clauses; i++ {
		c := make(sat.Clause, 3)
		for j := range c {
			v := r.Intn(total) + 1
			if r.Intn(2) == 0 {
				c[j] = sat.Literal(v)
			} else {
				c[j] = sat.Literal(-v)
			}
		}
		cls = append(cls, c)
	}
	q, err := sat.ForallExists(nX, nY, cls)
	if err != nil {
		panic(err)
	}
	return q
}

func TestConsistencyGadgetKnownInstances(t *testing.T) {
	// ∀x ∃y: y ↔ x — true, so Mod(T) must be EMPTY.
	qTrue, _ := sat.ForallExists(1, 1, []sat.Clause{{-1, 2}, {1, -2}})
	g, err := NewConsistencyGadget(qTrue)
	if err != nil {
		t.Fatal(err)
	}
	if !qTrue.Eval() {
		t.Fatal("oracle: formula should be true")
	}
	ok, err := g.ConsistencyHolds()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("true QBF: Mod(T) must be empty (Proposition 3.3)")
	}

	// ∀x ∃y: x — false (x = 0 refutes), so Mod(T) must be non-empty.
	qFalse, _ := sat.ForallExists(1, 1, []sat.Clause{{1, 1, 1}, {2, -2}})
	g2, err := NewConsistencyGadget(qFalse)
	if err != nil {
		t.Fatal(err)
	}
	if qFalse.Eval() {
		t.Fatal("oracle: formula should be false")
	}
	ok, err = g2.ConsistencyHolds()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("false QBF: Mod(T) must be non-empty (Proposition 3.3)")
	}
}

// The iff of Proposition 3.3 on random instances, against the
// brute-force QBF oracle.
func TestConsistencyGadgetRandom(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		q := randomForallExists(r, 1+r.Intn(2), 1+r.Intn(2), 2+r.Intn(3))
		g, err := NewConsistencyGadget(q)
		if err != nil {
			t.Fatal(err)
		}
		want := !q.Eval()
		got, err := g.ConsistencyHolds()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: consistency %v, oracle(¬ϕ) %v for %s", trial, got, want, q)
		}
	}
}

func TestExtensibilityGadgetKnownInstances(t *testing.T) {
	// True QBF → Ext(I0) empty.
	qTrue, _ := sat.ForallExists(1, 1, []sat.Clause{{-1, 2}, {1, -2}})
	g, _ := NewConsistencyGadget(qTrue)
	ok, err := g.ExtensibilityHolds()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("true QBF: I0 must be unextendable")
	}
	// False QBF → Ext(I0) non-empty.
	qFalse, _ := sat.ForallExists(1, 1, []sat.Clause{{1, 1, 1}, {2, -2}})
	g2, _ := NewConsistencyGadget(qFalse)
	ok, err = g2.ExtensibilityHolds()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("false QBF: I0 must be extensible")
	}
}

func TestExtensibilityGadgetRandom(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		q := randomForallExists(r, 1+r.Intn(2), 1+r.Intn(2), 2+r.Intn(3))
		g, err := NewConsistencyGadget(q)
		if err != nil {
			t.Fatal(err)
		}
		want := !q.Eval()
		got, err := g.ExtensibilityHolds()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: extensibility %v, oracle(¬ϕ) %v for %s", trial, got, want, q)
		}
	}
}

func TestConsistencyGadgetValidation(t *testing.T) {
	// Wrong prefix shape.
	m := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{1}}}
	q := sat.MustQBF(m, sat.Block{Q: sat.Exists, From: 1, To: 1})
	if _, err := NewConsistencyGadget(q); err == nil {
		t.Fatal("∃-only prefix should be rejected")
	}
	q2 := sat.MustQBF(&sat.CNF{Vars: 2, Clauses: []sat.Clause{{1, 2}}},
		sat.Block{Q: sat.ForAll, From: 1, To: 0}, sat.Block{Q: sat.Exists, From: 1, To: 2})
	if _, err := NewConsistencyGadget(q2); err == nil {
		t.Fatal("empty ∀ block should be rejected")
	}
}
