package reduction

import (
	"context"
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/sat"
)

// CircuitFPGadget is the Theorem 5.1(2) construction reducing
// SUCCINCT-TAUT to RCDPw(FP): a single wide relation
// R(A0, A1, ..., A30) whose one-and-only data tuple juxtaposes the
// Figure 2 relations (A1..A30) behind a flag A0 = 1; the only
// partially closed extension adds the same tuple with A0 = 0. The FP
// program evaluates the circuit gate by gate against the in-tuple
// truth tables and dumps *all* input vectors into the answer whenever
// a flag-0 tuple exists. Then
//
//	C is a tautology  ⟺  I ∈ RCQw(Q, Dm, V).
type CircuitFPGadget struct {
	Circuit *sat.Circuit
	R       *relation.Schema
	Problem *core.Problem
	I       *ctable.CInstance
}

// encodingValues returns the A1..A30 payload: I(0,1), I∨, I∧, I¬
// flattened in the paper's layout.
func encodingValues() []relation.Value {
	vals := []relation.Value{"1", "0"} // A1, A2: I(0,1)
	for _, t := range orTuples() {     // A3..A14
		vals = append(vals, t...)
	}
	for _, t := range andTuples() { // A15..A26
		vals = append(vals, t...)
	}
	for _, t := range negTuples() { // A27..A30
		vals = append(vals, t...)
	}
	return vals
}

// NewCircuitFPGadget builds the gadget; the circuit must have at least
// one input gate.
func NewCircuitFPGadget(circ *sat.Circuit) (*CircuitFPGadget, error) {
	if circ.Inputs == 0 {
		return nil, fmt.Errorf("reduction: circuit gadget needs at least one input gate")
	}
	enc := encodingValues()
	attrs := make([]relation.Attribute, 0, len(enc)+1)
	attrs = append(attrs, relation.Attr("A0", relation.Bool()))
	for i, v := range enc {
		name := fmt.Sprintf("A%d", i+1)
		attrs = append(attrs, relation.Attr(name, relation.Finite("pin"+name, v)))
	}
	r := relation.MustSchema("R", attrs...)

	dataSchema := relation.MustDBSchema(r)
	// Master: the pinned payload (redundant with the singleton domains,
	// kept for fidelity to the CC-based construction) and a Boolean
	// bound for A0.
	menc := relation.MustSchema("Menc", attrs[1:]...)
	m01 := relation.MustSchema("M01", relation.Attr("X", relation.Bool()))
	masterSchema := relation.MustDBSchema(menc, m01)
	dm := relation.NewDatabase(masterSchema)
	dm.MustInsert("Menc", relation.Tuple(enc))
	dm.MustInsert("M01", relation.T("0"))
	dm.MustInsert("M01", relation.T("1"))

	payloadTerms := func(prefix string) []query.Term {
		out := make([]query.Term, len(enc))
		for i := range out {
			out[i] = query.V(fmt.Sprintf("%s%d", prefix, i+1))
		}
		return out
	}
	pt := payloadTerms("a")
	v := cc.NewSet(
		cc.Must("payload",
			query.MustQuery("q", pt, query.NewAtom(r.Name, append([]query.Term{query.V("a0")}, pt...)...)),
			query.MustQuery("p", pt, query.NewAtom(menc.Name, pt...))),
		cc.Must("flag01",
			query.MustQuery("q", []query.Term{query.V("a0")},
				query.NewAtom(r.Name, append([]query.Term{query.V("a0")}, pt...)...)),
			query.MustQuery("p", []query.Term{query.V("x")}, query.NewAtom(m01.Name, query.V("x")))),
	)

	prog, err := circuitProgram(circ, r)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(dataSchema, core.FPQuery(prog), dm, v, core.Options{})
	if err != nil {
		return nil, err
	}

	db := relation.NewDatabase(dataSchema)
	db.MustInsert(r.Name, append(relation.Tuple{"1"}, enc...))
	return &CircuitFPGadget{Circuit: circ, R: r, Problem: p, I: ctable.FromDatabase(db)}, nil
}

// circuitProgram compiles the circuit into the paper's FP query.
func circuitProgram(circ *sat.Circuit, r *relation.Schema) (*query.Program, error) {
	arity := r.Arity() // 31
	// wideAtom builds R(t0, ..., t30) with the given pinned positions
	// and anonymous variables elsewhere.
	var freshCounter int
	wideAtom := func(pins map[int]query.Term) *query.Atom {
		terms := make([]query.Term, arity)
		for i := range terms {
			if t, ok := pins[i]; ok {
				terms[i] = t
			} else {
				freshCounter++
				terms[i] = query.V(fmt.Sprintf("f%d", freshCounter))
			}
		}
		return query.NewAtom(r.Name, terms...)
	}

	var rules []query.Rule
	// I(x) ← R(_, x, _, ...) and I(x) ← R(_, _, x, ...): the Boolean
	// domain read off positions A1 and A2.
	for _, pos := range []int{1, 2} {
		rules = append(rules, query.Rule{
			Head: *query.NewAtom("ival", query.V("x")),
			Body: []query.Literal{query.LitAtom(wideAtom(map[int]query.Term{pos: query.V("x")}))},
		})
	}
	// RX(x1..xn) ← I(x1), ..., I(xn).
	n := circ.Inputs
	xTerms := make([]query.Term, n)
	rxBody := make([]query.Literal, n)
	for i := 0; i < n; i++ {
		xTerms[i] = query.V(fmt.Sprintf("x%d", i+1))
		rxBody[i] = query.LitAtom(query.NewAtom("ival", xTerms[i]))
	}
	rules = append(rules, query.Rule{Head: *query.NewAtom("rx", xTerms...), Body: rxBody})

	gatePred := func(i int) string { return fmt.Sprintf("g%d", i) }
	gateHead := func(i int) query.Atom {
		return *query.NewAtom(gatePred(i), append([]query.Term{query.V("b")}, xTerms...)...)
	}
	inputIndex := 0
	for gi, g := range circ.Gates {
		switch g.Kind {
		case sat.GateIn:
			idx := inputIndex
			inputIndex++
			rules = append(rules, query.Rule{
				Head: gateHead(gi),
				Body: []query.Literal{
					query.LitAtom(query.NewAtom("rx", xTerms...)),
					query.LitCmp(query.EqT(query.V("b"), xTerms[idx])),
				},
			})
		case sat.GateOr, sat.GateAnd:
			base := 3 // first ∨ column (A3)
			if g.Kind == sat.GateAnd {
				base = 15
			}
			for row := 0; row < 4; row++ {
				pins := map[int]query.Term{
					base + 3*row:     query.V("b1"),
					base + 3*row + 1: query.V("b2"),
					base + 3*row + 2: query.V("b"),
				}
				rules = append(rules, query.Rule{
					Head: gateHead(gi),
					Body: []query.Literal{
						query.LitAtom(query.NewAtom(gatePred(g.L), append([]query.Term{query.V("b1")}, xTerms...)...)),
						query.LitAtom(query.NewAtom(gatePred(g.R), append([]query.Term{query.V("b2")}, xTerms...)...)),
						query.LitAtom(wideAtom(pins)),
					},
				})
			}
		case sat.GateNot:
			for row := 0; row < 2; row++ {
				pins := map[int]query.Term{
					27 + 2*row:     query.V("b1"),
					27 + 2*row + 1: query.V("b"),
				}
				rules = append(rules, query.Rule{
					Head: gateHead(gi),
					Body: []query.Literal{
						query.LitAtom(query.NewAtom(gatePred(g.L), append([]query.Term{query.V("b1")}, xTerms...)...)),
						query.LitAtom(wideAtom(pins)),
					},
				})
			}
		}
	}
	out := len(circ.Gates) - 1
	// G(x⃗) ← GM(b, x⃗), R('0', ...): a flag-0 tuple floods the answer.
	rules = append(rules, query.Rule{
		Head: *query.NewAtom("gout", xTerms...),
		Body: []query.Literal{
			query.LitAtom(query.NewAtom(gatePred(out), append([]query.Term{query.V("b")}, xTerms...)...)),
			query.LitAtom(wideAtom(map[int]query.Term{0: query.C("0")})),
		},
	})
	// G(x⃗) ← GM(b, x⃗), b = 1.
	rules = append(rules, query.Rule{
		Head: *query.NewAtom("gout", xTerms...),
		Body: []query.Literal{
			query.LitAtom(query.NewAtom(gatePred(out), append([]query.Term{query.V("b")}, xTerms...)...)),
			query.LitCmp(query.EqT(query.V("b"), query.C("1"))),
		},
	})
	return query.NewProgram("circuit", nil, "gout", rules...)
}

// WeaklyComplete decides RCDPw(I). Per Theorem 5.1(2): true iff the
// circuit is a tautology.
func (g *CircuitFPGadget) WeaklyComplete() (bool, error) {
	return g.WeaklyCompleteCtx(context.Background())
}

// WeaklyCompleteCtx is WeaklyComplete honoring ctx.
func (g *CircuitFPGadget) WeaklyCompleteCtx(ctx context.Context) (bool, error) {
	return g.Problem.RCDPCtx(ctx, g.I, core.Weak)
}
