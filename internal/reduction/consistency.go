package reduction

import (
	"context"
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/sat"
)

// ConsistencyGadget is the Proposition 3.3 construction: from a
// ∀X∃Y ψ sentence it builds a schema R = (R01, R¬, R∨, R∧, RX),
// master data, a CC set V and
//
//   - a c-instance T (Figure 2 relations plus the single all-variable
//     row TX) such that   ϕ is false  ⟺  Mod(T, Dm, V) ≠ ∅;
//   - a ground instance I0 (Figure 2 relations, empty RX) such that
//     ϕ is true  ⟺  Ext(I0, Dm, V) = ∅.
type ConsistencyGadget struct {
	QBF     *sat.QBF
	Bool    *BoolRels
	RX      *relation.Schema
	Problem *core.Problem
	T       *ctable.CInstance  // consistency input
	I0      *relation.Database // extensibility input
}

// NewConsistencyGadget builds the gadget; the QBF must have exactly
// two blocks, ∀ then ∃.
func NewConsistencyGadget(q *sat.QBF) (*ConsistencyGadget, error) {
	if len(q.Blocks) != 2 || q.Blocks[0].Q != sat.ForAll || q.Blocks[1].Q != sat.Exists {
		return nil, fmt.Errorf("reduction: consistency gadget needs a ∀*∃* prefix, got %v", q.Blocks)
	}
	n := q.Blocks[0].To - q.Blocks[0].From + 1
	if n == 0 {
		return nil, fmt.Errorf("reduction: need at least one ∀ variable")
	}
	b := NewBoolRels()

	// RX(X1, ..., Xn) holds one candidate truth assignment of X.
	attrs := make([]relation.Attribute, n)
	for i := range attrs {
		attrs[i] = relation.Attr(fmt.Sprintf("X%d", i+1), relation.Bool())
	}
	rx := relation.MustSchema("RX", attrs...)

	dataSchema := relation.MustDBSchema(append(b.DataSchemas(), rx)...)
	masterSchema := relation.MustDBSchema(b.MasterSchemas()...)
	dm := relation.NewDatabase(masterSchema)
	b.PopulateMaster(dm)

	v := cc.NewSet(b.ContainmentCCs()...)
	// For each i: ∃ other columns RX(x1..xn) ⊆ Rm(0,1)(xi), asserting
	// every stored assignment is over {0, 1}. (Redundant with the Bool
	// attribute domains we give RX, but kept for fidelity to the
	// construction — the CC is what pins the values in the paper.)
	for i := 0; i < n; i++ {
		xTerms := make([]query.Term, n)
		for j := range xTerms {
			xTerms[j] = query.V(fmt.Sprintf("x%d", j+1))
		}
		left := query.MustQuery(fmt.Sprintf("qx%d", i+1), []query.Term{xTerms[i]},
			query.NewAtom(rx.Name, xTerms...))
		right := query.MustQuery("p01", []query.Term{query.V("x")}, query.NewAtom(b.M01.Name, query.V("x")))
		cst, err := cc.New(fmt.Sprintf("assign%d", i+1), left, right)
		if err != nil {
			return nil, err
		}
		v.Add(cst)
	}
	// q(w) ⊆ Rm∅(w): whenever the stored assignment µX admits a µY
	// with ψ(µX, µY) = 1, the CC is violated.
	sel, err := satisfactionQuery(b, rx, q, "c_")
	if err != nil {
		return nil, err
	}
	right := query.MustQuery("pempty", []query.Term{query.V("w")},
		query.NewAtom(b.Mempty.Name, query.V("w")))
	noSat, err := cc.New("no_satisfying_Y", sel, right)
	if err != nil {
		return nil, err
	}
	v.Add(noSat)

	// A decision-problem query is not part of Proposition 3.3; any CQ
	// over the schema completes the Problem value.
	dummy := core.CalcQuery(query.MustQuery("Qdummy", nil, query.NewAtom(b.R01.Name, query.C("1"))))
	p, err := core.NewProblem(dataSchema, dummy, dm, v, core.Options{})
	if err != nil {
		return nil, err
	}

	// T: Figure 2 rows plus TX = {(x1, ..., xn)}.
	t := ctable.NewCInstance(dataSchema)
	b.PopulateData(t)
	xTerms := make([]query.Term, n)
	for i := range xTerms {
		xTerms[i] = query.V(fmt.Sprintf("x%d", i+1))
	}
	t.MustAddRow(rx.Name, ctable.Row{Terms: xTerms})

	// I0: Figure 2 rows, empty RX.
	i0 := relation.NewDatabase(dataSchema)
	b.PopulateDatabase(i0)

	return &ConsistencyGadget{QBF: q, Bool: b, RX: rx, Problem: p, T: t, I0: i0}, nil
}

// satisfactionQuery builds the paper's q(w) = ∃x⃗, y⃗ (QX ∧ QY ∧
// Qψ(x⃗, y⃗, w) ∧ w = 1): it returns (1) iff the assignment stored in
// RX extends to a satisfying assignment of ψ.
func satisfactionQuery(b *BoolRels, rx *relation.Schema, q *sat.QBF, prefix string) (*query.Query, error) {
	n := q.Blocks[0].To - q.Blocks[0].From + 1
	xVar := func(i int) string { return fmt.Sprintf("%sx%d", prefix, i) }
	yVar := func(i int) string { return fmt.Sprintf("%sy%d", prefix, i) }

	xTerms := make([]query.Term, n)
	for i := range xTerms {
		xTerms[i] = query.V(xVar(i + 1))
	}
	var kids []query.Formula
	kids = append(kids, query.NewAtom(rx.Name, xTerms...)) // QX
	var yNames []string
	for v := q.Blocks[1].From; v <= q.Blocks[1].To; v++ {
		yNames = append(yNames, yVar(v))
	}
	kids = append(kids, b.AssignmentAtoms(yNames)...) // QY

	varTerm := func(v int) query.Term {
		if v <= n {
			return query.V(xVar(v))
		}
		return query.V(yVar(v))
	}
	atoms, w, err := EncodeCNF(b, q.Matrix, varTerm, prefix+"e_")
	if err != nil {
		return nil, err
	}
	kids = append(kids, atoms...)
	kids = append(kids, query.EqT(query.V(w), query.C("1")))
	return query.NewQuery("q_sat", []query.Term{query.V(w)}, query.Conj(kids...))
}

// ConsistencyHolds runs the decider on T. Per Proposition 3.3:
// the c-instance is consistent iff the QBF is FALSE.
func (g *ConsistencyGadget) ConsistencyHolds() (bool, error) {
	return g.ConsistencyHoldsCtx(context.Background())
}

// ConsistencyHoldsCtx is ConsistencyHolds honoring ctx.
func (g *ConsistencyGadget) ConsistencyHoldsCtx(ctx context.Context) (bool, error) {
	return g.Problem.ConsistentCtx(ctx, g.T)
}

// ExtensibilityHolds runs the decider on I0. Per Proposition 3.3:
// I0 is extensible iff the QBF is FALSE.
func (g *ConsistencyGadget) ExtensibilityHolds() (bool, error) {
	return g.ExtensibilityHoldsCtx(context.Background())
}

// ExtensibilityHoldsCtx is ExtensibilityHolds honoring ctx.
func (g *ConsistencyGadget) ExtensibilityHoldsCtx(ctx context.Context) (bool, error) {
	return g.Problem.ExtensibleCtx(ctx, g.I0)
}
