package reduction

import (
	"context"
	"fmt"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/sat"
)

// ExistsForallExistsGadget is the shared ∃X ∀Y ∃Z ψ construction of
// Theorem 4.8 (MINPs), Theorem 6.1 (RCDPv) and Corollary 6.3 (MINPv):
// schema R = (R01, R¬, R∨, R∧, RX(id, X), Rs(W)), the c-instance
// holding the Figure 2 relations, the keyed assignment tableau TX with
// one variable per X variable, and the answer-inspection relation Rs.
//
// With Is = {(0), (1)} (Theorem 4.8):
//
//	ϕ is false  ⟺  T is a minimal c-instance in RCQs.
//
// With Is = {(1)} (Theorem 6.1 / Corollary 6.3):
//
//	ϕ is true   ⟺  T ∈ RCQv  ⟺  T is a minimal c-instance in RCQv.
type ExistsForallExistsGadget struct {
	QBF     *sat.QBF
	Bool    *BoolRels
	RX, Rs  *relation.Schema
	Problem *core.Problem
	T       *ctable.CInstance
}

// NewExistsForallExistsGadget builds the gadget. The QBF must have an
// ∃∀∃ prefix with non-empty blocks; rsBoth selects Is = {(0), (1)}
// (Theorem 4.8) versus Is = {(1)} (Theorem 6.1, Corollary 6.3).
func NewExistsForallExistsGadget(q *sat.QBF, rsBoth bool) (*ExistsForallExistsGadget, error) {
	if len(q.Blocks) != 3 ||
		q.Blocks[0].Q != sat.Exists || q.Blocks[1].Q != sat.ForAll || q.Blocks[2].Q != sat.Exists {
		return nil, fmt.Errorf("reduction: gadget needs an ∃*∀*∃* prefix, got %v", q.Blocks)
	}
	nX := q.Blocks[0].To - q.Blocks[0].From + 1
	nY := q.Blocks[1].To - q.Blocks[1].From + 1
	nZ := q.Blocks[2].To - q.Blocks[2].From + 1
	if nX == 0 || nY == 0 || nZ == 0 {
		return nil, fmt.Errorf("reduction: all three blocks must be non-empty")
	}
	b := NewBoolRels()

	// RX(id, X): id ranges over the finite domain {1..nX} (the paper
	// uses an abstract domain plus a key CC; the finite domain removes
	// only query-neutral extensions and keeps the key CC below).
	ids := make([]relation.Value, nX)
	for i := range ids {
		ids[i] = relation.Value(fmt.Sprintf("%d", i+1))
	}
	rx := relation.MustSchema("RX",
		relation.Attr("id", relation.Finite("id", ids...)),
		relation.Attr("X", relation.Bool()))
	rs := relation.MustSchema("Rs", relation.Attr("W", relation.Bool()))

	dataSchema := relation.MustDBSchema(append(b.DataSchemas(), rx, rs)...)
	masterSchema := relation.MustDBSchema(b.MasterSchemas()...)
	dm := relation.NewDatabase(masterSchema)
	b.PopulateMaster(dm)

	v := cc.NewSet(b.ContainmentCCs()...)
	v.Add(cc.MustFullContainment("fix_Rs", rs, b.M01))
	// ∃id RX(id, x) ⊆ Rm(0,1)(x).
	v.Add(cc.Must("assign01",
		query.MustQuery("qa", []query.Term{query.V("x")},
			query.Ex([]string{"i"}, query.NewAtom(rx.Name, query.V("i"), query.V("x")))),
		query.MustQuery("pa", []query.Term{query.V("x")}, query.NewAtom(b.M01.Name, query.V("x")))))
	// qid(i) := ∃x, x' RX(i, x) ∧ RX(i, x') ∧ x ≠ x' ⊆ Rm∅: id is a key.
	v.Add(cc.Must("key_id",
		query.MustQuery("qk", []query.Term{query.V("i")},
			query.Ex([]string{"x", "xp"}, query.Conj(
				query.NewAtom(rx.Name, query.V("i"), query.V("x")),
				query.NewAtom(rx.Name, query.V("i"), query.V("xp")),
				query.NeqT(query.V("x"), query.V("xp"))))),
		query.MustQuery("pk", []query.Term{query.V("w")}, query.NewAtom(b.Mempty.Name, query.V("w")))))

	qry, err := efeQuery(b, rx, rs, q)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(dataSchema, core.CalcQuery(qry), dm, v, core.Options{})
	if err != nil {
		return nil, err
	}

	t := ctable.NewCInstance(dataSchema)
	b.PopulateData(t)
	for i := 0; i < nX; i++ {
		t.MustAddRow(rx.Name, ctable.Row{Terms: []query.Term{
			query.C(ids[i]), query.V(fmt.Sprintf("x%d", i+1)),
		}})
	}
	t.MustAddRow(rs.Name, ctable.Row{Terms: []query.Term{query.C("1")}})
	if rsBoth {
		t.MustAddRow(rs.Name, ctable.Row{Terms: []query.Term{query.C("0")}})
	}

	return &ExistsForallExistsGadget{QBF: q, Bool: b, RX: rx, Rs: rs, Problem: p, T: t}, nil
}

// efeQuery builds the Theorem 4.8 query
//
//	Q(y⃗) = ∃x⃗, z⃗ (QX(x⃗) ∧ QY(y⃗) ∧ QZ(z⃗) ∧ Qψ(x⃗, y⃗, z⃗, w) ∧ Rs(w) ∧ Qall)
func efeQuery(b *BoolRels, rx, rs *relation.Schema, q *sat.QBF) (*query.Query, error) {
	nX := q.Blocks[0].To - q.Blocks[0].From + 1
	nY := q.Blocks[1].To - q.Blocks[1].From + 1

	varName := func(v int) string {
		switch {
		case v <= q.Blocks[0].To:
			return fmt.Sprintf("x%d", v)
		case v <= q.Blocks[1].To:
			return fmt.Sprintf("y%d", v-nX)
		default:
			return fmt.Sprintf("z%d", v-nX-nY)
		}
	}
	var kids []query.Formula
	// QX: ⋀i RX(i, xi).
	for i := 1; i <= nX; i++ {
		kids = append(kids, query.NewAtom(rx.Name,
			query.C(relation.Value(fmt.Sprintf("%d", i))), query.V(fmt.Sprintf("x%d", i))))
	}
	// QY, QZ: assignment atoms.
	var yNames, zNames []string
	for i := 1; i <= nY; i++ {
		yNames = append(yNames, fmt.Sprintf("y%d", i))
	}
	for v := q.Blocks[2].From; v <= q.Blocks[2].To; v++ {
		zNames = append(zNames, varName(v))
	}
	kids = append(kids, b.AssignmentAtoms(yNames)...)
	kids = append(kids, b.AssignmentAtoms(zNames)...)
	// Qψ with output inspected through Rs.
	atoms, w, err := EncodeCNF(b, q.Matrix, func(v int) query.Term { return query.V(varName(v)) }, "e_")
	if err != nil {
		return nil, err
	}
	kids = append(kids, atoms...)
	kids = append(kids, query.NewAtom(rs.Name, query.V(w)))
	// Qall: every Figure 2 tuple and Rs(1) must be present.
	kids = append(kids, allTuplesAtoms(b)...)
	kids = append(kids, query.NewAtom(rs.Name, query.C("1")))

	head := make([]query.Term, nY)
	for i := range head {
		head[i] = query.V(yNames[i])
	}
	return query.NewQuery("Qefe", head, query.Conj(kids...))
}

// allTuplesAtoms asserts the presence of every Figure 2 tuple (the
// paper's Qall components Q(0,1), Q¬, Q∨, Q∧).
func allTuplesAtoms(b *BoolRels) []query.Formula {
	var out []query.Formula
	add := func(rel string, tuples []relation.Tuple) {
		for _, t := range tuples {
			terms := make([]query.Term, len(t))
			for i, v := range t {
				terms[i] = query.C(v)
			}
			out = append(out, query.NewAtom(rel, terms...))
		}
	}
	add(b.R01.Name, boolTuples())
	add(b.Rneg.Name, negTuples())
	add(b.Ror.Name, orTuples())
	add(b.Rand.Name, andTuples())
	return out
}

// MINPStrongHolds decides MINPs(T). Per Theorem 4.8 (rsBoth = true):
// true iff the QBF is FALSE.
func (g *ExistsForallExistsGadget) MINPStrongHolds() (bool, error) {
	return g.MINPStrongHoldsCtx(context.Background())
}

// MINPStrongHoldsCtx is MINPStrongHolds honoring ctx.
func (g *ExistsForallExistsGadget) MINPStrongHoldsCtx(ctx context.Context) (bool, error) {
	return g.Problem.MINPCtx(ctx, g.T, core.Strong)
}

// RCDPViableHolds decides RCDPv(T). Per Theorem 6.1 (rsBoth = false):
// true iff the QBF is TRUE.
func (g *ExistsForallExistsGadget) RCDPViableHolds() (bool, error) {
	return g.RCDPViableHoldsCtx(context.Background())
}

// RCDPViableHoldsCtx is RCDPViableHolds honoring ctx.
func (g *ExistsForallExistsGadget) RCDPViableHoldsCtx(ctx context.Context) (bool, error) {
	return g.Problem.RCDPCtx(ctx, g.T, core.Viable)
}

// MINPViableHolds decides MINPv(T). Per Corollary 6.3 (rsBoth =
// false): true iff the QBF is TRUE.
func (g *ExistsForallExistsGadget) MINPViableHolds() (bool, error) {
	return g.MINPViableHoldsCtx(context.Background())
}

// MINPViableHoldsCtx is MINPViableHolds honoring ctx.
func (g *ExistsForallExistsGadget) MINPViableHoldsCtx(ctx context.Context) (bool, error) {
	return g.Problem.MINPCtx(ctx, g.T, core.Viable)
}
