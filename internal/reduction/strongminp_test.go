package reduction

import (
	"math/rand"
	"testing"

	"relcomplete/internal/sat"
)

func randomEFE(r *rand.Rand, nX, nY, nZ, clauses int) *sat.QBF {
	total := nX + nY + nZ
	var cls []sat.Clause
	for i := 0; i < clauses; i++ {
		c := make(sat.Clause, 3)
		for j := range c {
			v := r.Intn(total) + 1
			if r.Intn(2) == 0 {
				c[j] = sat.Literal(v)
			} else {
				c[j] = sat.Literal(-v)
			}
		}
		cls = append(cls, c)
	}
	q, err := sat.ExistsForallExists(nX, nY, nZ, cls)
	if err != nil {
		panic(err)
	}
	return q
}

func TestEFEGadgetValidation(t *testing.T) {
	m := &sat.CNF{Vars: 1, Clauses: []sat.Clause{{1}}}
	q := sat.MustQBF(m, sat.Block{Q: sat.ForAll, From: 1, To: 1})
	if _, err := NewExistsForallExistsGadget(q, true); err == nil {
		t.Fatal("wrong prefix should be rejected")
	}
	empty := sat.MustQBF(&sat.CNF{Vars: 2, Clauses: []sat.Clause{{1, 2}}},
		sat.Block{Q: sat.Exists, From: 1, To: 1},
		sat.Block{Q: sat.ForAll, From: 2, To: 1},
		sat.Block{Q: sat.Exists, From: 2, To: 2})
	if _, err := NewExistsForallExistsGadget(empty, true); err == nil {
		t.Fatal("empty ∀ block should be rejected")
	}
}

// Theorem 4.8: ϕ false ⟺ T minimal strongly complete.
func TestMINPStrongGadgetKnown(t *testing.T) {
	// ∃x ∀y ∃z: (x) ∧ (y ∨ z) ∧ (¬y ∨ ¬z) — true (x=1, z=¬y).
	qTrue, _ := sat.ExistsForallExists(1, 1, 1, []sat.Clause{{1}, {2, 3}, {-2, -3}})
	if !qTrue.Eval() {
		t.Fatal("oracle: should be true")
	}
	g, err := NewExistsForallExistsGadget(qTrue, true)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.MINPStrongHolds()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("true QBF: T must NOT be minimal (Theorem 4.8)")
	}

	// ∃x ∀y ∃z: (x) ∧ (y) — false (y = 0 refutes for every x).
	qFalse, _ := sat.ExistsForallExists(1, 1, 1, []sat.Clause{{1}, {2}, {3, -3}})
	if qFalse.Eval() {
		t.Fatal("oracle: should be false")
	}
	g2, err := NewExistsForallExistsGadget(qFalse, true)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = g2.MINPStrongHolds()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("false QBF: T must be minimal (Theorem 4.8)")
	}
}

func TestMINPStrongGadgetRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential decider on reduction gadgets")
	}
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		q := randomEFE(r, 1, 1, 1, 2+r.Intn(2))
		g, err := NewExistsForallExistsGadget(q, true)
		if err != nil {
			t.Fatal(err)
		}
		want := !q.Eval()
		got, err := g.MINPStrongHolds()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: MINPs %v, oracle(¬ϕ) %v for %s", trial, got, want, q)
		}
	}
}

// Theorem 6.1: ϕ true ⟺ T viably complete (Is = {(1)}).
func TestRCDPViableGadgetKnown(t *testing.T) {
	qTrue, _ := sat.ExistsForallExists(1, 1, 1, []sat.Clause{{1}, {2, 3}, {-2, -3}})
	g, err := NewExistsForallExistsGadget(qTrue, false)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.RCDPViableHolds()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("true QBF: T must be viably complete (Theorem 6.1)")
	}

	qFalse, _ := sat.ExistsForallExists(1, 1, 1, []sat.Clause{{1}, {2}, {3, -3}})
	g2, _ := NewExistsForallExistsGadget(qFalse, false)
	ok, err = g2.RCDPViableHolds()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("false QBF: T must not be viably complete (Theorem 6.1)")
	}
}

func TestRCDPViableGadgetRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential decider on reduction gadgets")
	}
	r := rand.New(rand.NewSource(56))
	for trial := 0; trial < 6; trial++ {
		q := randomEFE(r, 1, 1, 1, 2+r.Intn(2))
		g, err := NewExistsForallExistsGadget(q, false)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Eval()
		got, err := g.RCDPViableHolds()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: RCDPv %v, oracle(ϕ) %v for %s", trial, got, want, q)
		}
	}
}

// Corollary 6.3: ϕ true ⟺ T minimal viably complete (Is = {(1)}).
func TestMINPViableGadgetKnown(t *testing.T) {
	qTrue, _ := sat.ExistsForallExists(1, 1, 1, []sat.Clause{{1}, {2, 3}, {-2, -3}})
	g, _ := NewExistsForallExistsGadget(qTrue, false)
	ok, err := g.MINPViableHolds()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("true QBF: T must be minimal viably complete (Corollary 6.3)")
	}
	qFalse, _ := sat.ExistsForallExists(1, 1, 1, []sat.Clause{{1}, {2}, {3, -3}})
	g2, _ := NewExistsForallExistsGadget(qFalse, false)
	ok, err = g2.MINPViableHolds()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("false QBF: T must not be minimal viably complete (Corollary 6.3)")
	}
}
