// Package reduction implements the reductions used in the paper's
// lower-bound proofs as executable constructions:
//
//   - the Figure 2 ground relations encoding Boolean logic in CQ;
//   - ∀*∃*3SAT → consistency and → extensibility (Proposition 3.3);
//   - ∃*∀*∃*3SAT → MINPs (Theorem 4.8), → RCDPv (Theorem 6.1),
//     → MINPv (Corollary 6.3) and → RCDPw (Theorem 5.1(3));
//   - SAT-UNSAT → MINPw(CQ) (Theorem 5.6(4));
//   - Boolean circuits → FP queries (SUCCINCT-TAUT, Theorem 5.1(2));
//   - the FD+IND gadget of Proposition 3.1.
//
// Each gadget records the iff-statement of its theorem; the test-suite
// validates the statement against the brute-force oracles of
// internal/sat, and the benchmark harness scales the gadgets to
// reproduce the shape of the paper's Table I.
package reduction

import (
	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// BoolRels bundles the Figure 2 apparatus: data-side relation schemas
// R(0,1), R¬, R∨, R∧, their master-side copies, the empty master
// relation Rm∅, and the containment CCs fixing the data side to the
// Figure 2 contents.
type BoolRels struct {
	R01, Rneg, Ror, Rand *relation.Schema // data side
	M01, Mneg, Mor, Mand *relation.Schema // master side
	Mempty               *relation.Schema // the empty master relation
}

// NewBoolRels builds the schemas. The paper gives every attribute an
// abstract domain and pins values by CCs; we give the truth-value
// columns the finite Boolean domain {0, 1} as well (the paper's df),
// which leaves every gadget's semantics unchanged while keeping the
// valuation space of the deciders at its information-theoretic size.
func NewBoolRels() *BoolRels {
	b := func(name string) relation.Attribute { return relation.Attr(name, relation.Bool()) }
	return &BoolRels{
		R01:    relation.MustSchema("R01", b("X")),
		Rneg:   relation.MustSchema("Rneg", b("A"), b("NA")),
		Ror:    relation.MustSchema("Ror", b("A1"), b("A2"), b("B")),
		Rand:   relation.MustSchema("Rand", b("A1"), b("A2"), b("B")),
		M01:    relation.MustSchema("M01", b("X")),
		Mneg:   relation.MustSchema("Mneg", b("A"), b("NA")),
		Mor:    relation.MustSchema("Mor", b("A1"), b("A2"), b("B")),
		Mand:   relation.MustSchema("Mand", b("A1"), b("A2"), b("B")),
		Mempty: relation.MustSchema("Mempty", relation.Attr("W", nil)),
	}
}

// DataSchemas returns the data-side schemas in declaration order.
func (b *BoolRels) DataSchemas() []*relation.Schema {
	return []*relation.Schema{b.R01, b.Rneg, b.Ror, b.Rand}
}

// MasterSchemas returns the master-side schemas (including Rm∅).
func (b *BoolRels) MasterSchemas() []*relation.Schema {
	return []*relation.Schema{b.M01, b.Mneg, b.Mor, b.Mand, b.Mempty}
}

// orTuples is the truth table of ∨ (Figure 2's I∨).
func orTuples() []relation.Tuple {
	return []relation.Tuple{
		relation.T("0", "0", "0"), relation.T("0", "1", "1"),
		relation.T("1", "0", "1"), relation.T("1", "1", "1"),
	}
}

// andTuples is the truth table of ∧ (Figure 2's I∧).
func andTuples() []relation.Tuple {
	return []relation.Tuple{
		relation.T("0", "0", "0"), relation.T("0", "1", "0"),
		relation.T("1", "0", "0"), relation.T("1", "1", "1"),
	}
}

// negTuples is the truth table of ¬ (Figure 2's I¬).
func negTuples() []relation.Tuple {
	return []relation.Tuple{relation.T("0", "1"), relation.T("1", "0")}
}

// boolTuples is Figure 2's I(0,1).
func boolTuples() []relation.Tuple {
	return []relation.Tuple{relation.T("0"), relation.T("1")}
}

// PopulateData adds the Figure 2 ground rows to a c-instance whose
// schema includes the data-side relations.
func (b *BoolRels) PopulateData(ci *ctable.CInstance) {
	add := func(rel string, tuples []relation.Tuple) {
		for _, t := range tuples {
			terms := make([]query.Term, len(t))
			for i, v := range t {
				terms[i] = query.C(v)
			}
			ci.MustAddRow(rel, ctable.Row{Terms: terms})
		}
	}
	add(b.R01.Name, boolTuples())
	add(b.Rneg.Name, negTuples())
	add(b.Ror.Name, orTuples())
	add(b.Rand.Name, andTuples())
}

// PopulateDatabase adds the Figure 2 ground rows to a ground database.
func (b *BoolRels) PopulateDatabase(db *relation.Database) {
	add := func(rel string, tuples []relation.Tuple) {
		for _, t := range tuples {
			db.MustInsert(rel, t)
		}
	}
	add(b.R01.Name, boolTuples())
	add(b.Rneg.Name, negTuples())
	add(b.Ror.Name, orTuples())
	add(b.Rand.Name, andTuples())
}

// PopulateMaster adds the master copies Im(0,1), Im¬, Im∨, Im∧ (and
// leaves Rm∅ empty) to a master database.
func (b *BoolRels) PopulateMaster(dm *relation.Database) {
	add := func(rel string, tuples []relation.Tuple) {
		for _, t := range tuples {
			dm.MustInsert(rel, t)
		}
	}
	add(b.M01.Name, boolTuples())
	add(b.Mneg.Name, negTuples())
	add(b.Mor.Name, orTuples())
	add(b.Mand.Name, andTuples())
}

// ContainmentCCs builds the CCs R(0,1) ⊆ Rm(0,1), R¬ ⊆ Rm¬, R∨ ⊆ Rm∨,
// R∧ ⊆ Rm∧ fixing the Boolean apparatus.
func (b *BoolRels) ContainmentCCs() []*cc.Constraint {
	pairs := [][2]*relation.Schema{
		{b.R01, b.M01}, {b.Rneg, b.Mneg}, {b.Ror, b.Mor}, {b.Rand, b.Mand},
	}
	out := make([]*cc.Constraint, 0, len(pairs))
	for _, pr := range pairs {
		out = append(out, cc.MustFullContainment("fix_"+pr[0].Name, pr[0], pr[1]))
	}
	return out
}

// AssignmentAtoms builds the CQ formula R(0,1)(v1) ∧ ... ∧ R(0,1)(vk)
// generating all truth assignments of the given variables (the paper's
// QY / QZ Cartesian products of I(0,1)).
func (b *BoolRels) AssignmentAtoms(vars []string) []query.Formula {
	out := make([]query.Formula, len(vars))
	for i, v := range vars {
		out[i] = query.NewAtom(b.R01.Name, query.V(v))
	}
	return out
}
