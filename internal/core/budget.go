package core

import (
	"fmt"

	"relcomplete/internal/obs"
)

// BudgetError reports that a decider stopped because a configured
// resource cap ran out, carrying enough detail to act on: which
// operation hit the cap, which Options field it was, the configured
// limit and how much had been consumed when it triggered.
//
// BudgetError wraps one of the package sentinels, so existing checks
// keep working unchanged:
//
//	errors.Is(err, core.ErrBudget)       // enumeration caps
//	errors.Is(err, core.ErrInconclusive) // bounded RCQP search exhausted
//
// and errors.As(err, *(*BudgetError)) recovers the detail.
type BudgetError struct {
	// Op names the operation that ran out, e.g. "tuple lattice" or
	// "RCQP search".
	Op string
	// Cap is the Options field that supplied the limit, e.g.
	// "MaxValuations", "MaxSubsets" or "RCQPSizeBound".
	Cap string
	// Limit is the configured cap; Consumed is how much the operation
	// had used when it gave up (Consumed > Limit for enumeration caps,
	// Consumed == Limit for exhausted bounded searches).
	Limit    int64
	Consumed int64

	sentinel error // ErrBudget or ErrInconclusive
}

// Error renders the failure with its cap detail.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("%s: %v (%s=%d, consumed %d)", e.Op, e.sentinel, e.Cap, e.Limit, e.Consumed)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *BudgetError) Unwrap() error { return e.sentinel }

// budgetErr builds a BudgetError around ErrBudget and counts it.
func (p *Problem) budgetErr(op, cap string, limit, consumed int64) error {
	p.Options.Obs.Inc(obs.BudgetErrors)
	return &BudgetError{Op: op, Cap: cap, Limit: limit, Consumed: consumed, sentinel: ErrBudget}
}

// inconclusiveErr builds a BudgetError around ErrInconclusive (the
// bounded RCQP search exhausted its size bound) and counts it.
func (p *Problem) inconclusiveErr(op, cap string, limit, consumed int64) error {
	p.Options.Obs.Inc(obs.BudgetErrors)
	return &BudgetError{Op: op, Cap: cap, Limit: limit, Consumed: consumed, sentinel: ErrInconclusive}
}
