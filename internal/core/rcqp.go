package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"relcomplete/internal/adom"
	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/search"
)

// This file implements RCQP in the strong and viable models (they
// coincide by Lemma 4.4 / Corollary 6.2, and equal the ground problem).
// The general problem is NEXPTIME-complete (Theorem 4.5); two exact
// procedures are provided:
//
//   - when every CC is a projection (IND-shaped) constraint, the
//     boundedness characterisation of Corollary 7.2 / [Fan & Geerts
//     2009, Prop. 4.3] decides the problem in PTIME for fixed queries;
//   - otherwise a bounded witness search over instances drawn from the
//     active domain: sound for "yes", and ErrInconclusive when no
//     witness exists within Options.RCQPSizeBound (the exact witness
//     bound of the NEXPTIME procedure is exponential in |Q| + |V|).
//
// FO and FP are undecidable (Theorem 4.5).

func (p *Problem) rcqpStrongOrViable(ctx context.Context, m Model) (bool, error) {
	ctx, endSpan := p.span(ctx, "rcqp")
	defer endSpan()
	switch p.Query.Lang() {
	case FO, FP:
		return false, fmt.Errorf("RCQP(%s), %s model: %w", p.Query.Lang(), m, ErrUndecidable)
	}
	if p.allProjectionCCs() {
		return p.rcqpViaBoundedness(ctx)
	}
	return p.rcqpBoundedSearch(ctx)
}

func (p *Problem) allProjectionCCs() bool {
	if p.CCs == nil {
		return true
	}
	for _, c := range p.CCs.Constraints {
		if !cc.IsProjectionCC(c) {
			return false
		}
	}
	return true
}

// rcqpViaBoundedness decides RCQPs exactly when CCs are INDs:
// RCQ(Q, Dm, V) is non-empty iff every disjunct of Q is bounded by
// (Dm, V), or Q has no valid valuation over Adom consistent with V.
func (p *Problem) rcqpViaBoundedness(ctx context.Context) (bool, error) {
	g := p.beginOp(ctx, "rcqp_boundedness", "")
	bounded, err := p.QueryBounded()
	if err != nil {
		return false, err
	}
	if bounded {
		return true, nil
	}
	sat, err := p.querySatisfiableUnderCCs(ctx)
	if err != nil {
		return false, g.wrap(err)
	}
	return !sat, nil
}

// QueryBounded reports whether every CQ disjunct of the query is
// bounded by (Dm, V): each head variable appears either at an attribute
// with a finite domain, or at an attribute position covered by the
// projection list of some IND-shaped CC from that relation (so master
// data caps the values the answer may take).
func (p *Problem) QueryBounded() (bool, error) {
	tabs, err := p.disjunctTableaux()
	if err != nil {
		return false, err
	}
	for _, tab := range tabs {
		for _, h := range tab.Head {
			if !h.IsVar {
				continue
			}
			if !p.varBounded(tab, h.Name) {
				return false, nil
			}
		}
	}
	return true, nil
}

// varBounded reports whether variable y of the tableau occurs at some
// bounded position.
func (p *Problem) varBounded(tab *query.Tableau, y string) bool {
	for _, a := range tab.Atoms {
		rel := p.Schema.Relation(a.Rel)
		if rel == nil {
			continue
		}
		for i, t := range a.Terms {
			if !t.IsVar || t.Name != y {
				continue
			}
			if rel.DomainAt(i).IsFinite() {
				return true
			}
			if p.positionCoveredByIND(a.Rel, i) {
				return true
			}
		}
	}
	// A head variable pinned to a constant by an equality condition is
	// also bounded.
	for _, c := range tab.Compares {
		if c.Op != query.Eq {
			continue
		}
		if c.L.IsVar && c.L.Name == y && !c.R.IsVar {
			return true
		}
		if c.R.IsVar && c.R.Name == y && !c.L.IsVar {
			return true
		}
	}
	return false
}

// positionCoveredByIND reports whether some projection CC q(R) ⊆ p(Rm)
// in V projects relation rel on a list including attribute position i.
func (p *Problem) positionCoveredByIND(rel string, pos int) bool {
	if p.CCs == nil {
		return false
	}
	for _, c := range p.CCs.Constraints {
		tab, err := query.TableauOf(c.Left)
		if err != nil || len(tab.Atoms) != 1 || tab.Atoms[0].Rel != rel {
			continue
		}
		atom := tab.Atoms[0]
		if pos >= len(atom.Terms) || !atom.Terms[pos].IsVar {
			continue
		}
		target := atom.Terms[pos].Name
		for _, h := range c.Left.Head {
			if h.IsVar && h.Name == target {
				return true
			}
		}
	}
	return false
}

// querySatisfiableUnderCCs reports whether some valuation µ of a
// disjunct tableau over Adom yields a non-empty answer with
// (µ(TQ), Dm) ⊨ V — a "valid valuation" in the terminology of
// [Fan & Geerts 2009].
func (p *Problem) querySatisfiableUnderCCs(ctx context.Context) (bool, error) {
	tabs, err := p.disjunctTableaux()
	if err != nil {
		return false, err
	}
	a, err := p.adomFor(nil, true, false)
	if err != nil {
		return false, err
	}
	for _, tab := range tabs {
		found := false
		err := a.Enumerate(tab.Vars, nil, p.Options.MaxValuations, func(mu ctable.Valuation) (bool, error) {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			if !tab.SatisfiedBy(mu) {
				return true, nil
			}
			db, ok, err := p.factsToDatabase(tab, mu)
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil
			}
			closed, err := p.satisfiesCCs(ctx, db)
			if err != nil {
				return false, err
			}
			if closed {
				found = true
				return false, nil
			}
			return true, nil
		})
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	return false, nil
}

// factsToDatabase materialises µ(TQ) as a database; ok is false when a
// fact leaves its attribute's finite domain.
func (p *Problem) factsToDatabase(tab *query.Tableau, mu ctable.Valuation) (*relation.Database, bool, error) {
	facts, err := tab.Instantiate(mu)
	if err != nil {
		return nil, false, err
	}
	db := relation.NewDatabaseWith(p.Schema, p.Master.Interner())
	for _, f := range facts {
		rel := p.Schema.Relation(f.Rel)
		if rel == nil {
			return nil, false, fmt.Errorf("relcomplete: query atom over unknown relation %s", f.Rel)
		}
		if !rel.Admits(f.Tuple) {
			return nil, false, nil
		}
		db.MustInsert(f.Rel, f.Tuple)
	}
	return db, true, nil
}

// rcqpBoundedSearch hunts for a complete ground instance of size at
// most Options.RCQPSizeBound whose values come from Adom extended with
// a few anonymous fresh constants. Finding one proves RCQ non-empty
// (Lemma 4.4); exhausting the bound returns ErrInconclusive.
func (p *Problem) rcqpBoundedSearch(ctx context.Context) (bool, error) {
	g := p.beginOp(ctx, "rcqp_search", "no witness found in %d models")
	bound := p.Options.rcqpSizeBound()
	builder := adom.NewBuilder().
		AddDatabase(p.Master).
		AddCCs(p.CCs).
		AddSchemaFiniteDomains(p.Schema)
	qc := relation.NewValueSet()
	p.Query.Constants(qc)
	builder.AddConstants(qc)
	for i := 0; i < p.Options.rcqpFreshValues(); i++ {
		builder.AddVars([]string{fmt.Sprintf("rcqp_fresh_%d", i)})
	}
	if query.IsPositiveExistential(p.Query.Calc) {
		tabs, err := p.disjunctTableaux()
		if err != nil {
			return false, err
		}
		for _, tab := range tabs {
			builder.AddVars(tab.Vars)
		}
	}
	a := builder.Build()
	ty, err := p.computeTyping(nil, a)
	if err != nil {
		return false, err
	}
	d := &domains{a: a, ty: ty}

	// Materialise the tuple lattice.
	var lattice []relation.Located
	for _, r := range p.Schema.Relations() {
		done, err := p.latticeOver(ctx, r, d, func(t relation.Tuple) (bool, error) {
			lattice = append(lattice, relation.Located{Rel: r.Name, Tuple: t})
			return true, nil
		})
		if err != nil {
			return false, g.wrap(err)
		}
		if !done {
			return false, p.budgetErr("RCQP lattice over "+r.Name, "MaxValuations",
				int64(p.Options.MaxValuations), int64(p.Options.MaxValuations))
		}
	}

	// The DFS over candidate instances fans out at its first level: each
	// choice of lowest lattice tuple roots an independent subtree, probed
	// in parallel with its own local instance. The check budget is a
	// shared atomic so the total work stays capped; at workers=1 the
	// inline first-hit loop replays the exact sequential DFS pre-order.
	var tried atomic.Int64
	check := func(cctx context.Context, db *relation.Database) (bool, error) {
		if err := cctx.Err(); err != nil {
			return false, err
		}
		if n := tried.Add(1); p.Options.MaxValuations > 0 && n > int64(p.Options.MaxValuations) {
			return false, p.budgetErr("RCQP search", "MaxValuations",
				int64(p.Options.MaxValuations), n)
		}
		closed, err := p.satisfiesCCs(ctx, db)
		if err != nil || !closed {
			return false, err
		}
		// The search's own Adom is a valid bounded-check domain for
		// every candidate (their constants come from it), so the
		// single-tuple candidate set is computed once and shared.
		cex, err := p.boundedCounterexample(cctx, db, d)
		if err != nil {
			return false, err
		}
		return cex == nil, nil
	}
	var subtree func(sctx context.Context, cur *relation.Database, start, remaining int) (bool, error)
	subtree = func(sctx context.Context, cur *relation.Database, start, remaining int) (bool, error) {
		ok, err := check(sctx, cur)
		if err != nil || ok {
			return ok, err
		}
		if remaining == 0 {
			return false, nil
		}
		for i := start; i < len(lattice); i++ {
			loc := lattice[i]
			if cur.Relation(loc.Rel).Contains(loc.Tuple) {
				continue
			}
			ok, err := subtree(sctx, cur.WithTuple(loc.Rel, loc.Tuple), i+1, remaining-1)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	empty := relation.NewDatabaseWith(p.Schema, p.Master.Interner())
	ok, err := check(ctx, empty)
	if err != nil {
		return false, g.wrap(err)
	}
	found := ok
	if !found && bound > 0 {
		gen := func(yield func(int) bool) {
			for i := range lattice {
				if !yield(i) {
					return
				}
			}
		}
		probe := func(pctx context.Context, idx int, first int) (struct{}, bool, error) {
			ok, err := subtree(pctx, empty.WithTuple(lattice[first].Rel, lattice[first].Tuple), first+1, bound-1)
			return struct{}{}, ok, err
		}
		_, found, err = search.FirstHit(ctx, p.Options.workers(), p.Options.Obs, gen, probe)
		if err != nil {
			return false, g.wrap(err)
		}
	}
	if found {
		return true, nil
	}
	return false, p.inconclusiveErr(fmt.Sprintf("RCQP: searched instances of size ≤ %d", bound),
		"RCQPSizeBound", int64(bound), tried.Load())
}
