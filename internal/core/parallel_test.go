package core

import (
	"errors"
	"fmt"
	"testing"
)

// Parallel equivalence: every decider must return bit-identical
// results at Parallelism: 1 (the exact sequential code path) and
// Parallelism: N. The searches dispatch candidates in enumeration
// order and accept only the lowest-index decisive outcome (see
// internal/search), so this holds not just for verdicts but for the
// counterexamples and certain-answer slices too.

const parWorkers = 8

// atWorkers runs fn twice on the same problem, first sequentially then
// with the worker pool, and hands both results to compare.
func atWorkers[R any](t *testing.T, p *Problem, fn func() (R, error)) (seq R, seqErr error, par R, parErr error) {
	t.Helper()
	p.Options.Parallelism = 1
	seq, seqErr = fn()
	p.Options.Parallelism = parWorkers
	par, parErr = fn()
	p.Options.Parallelism = 0
	return seq, seqErr, par, parErr
}

func sameErr(t *testing.T, label string, seqErr, parErr error) {
	t.Helper()
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("%s: sequential err %v, parallel err %v", label, seqErr, parErr)
	}
	if seqErr != nil && seqErr.Error() != parErr.Error() {
		t.Fatalf("%s: error text diverged:\n  seq: %v\n  par: %v", label, seqErr, parErr)
	}
}

func TestParallelRCDPMatchesSequential(t *testing.T) {
	for i, rp := range randomProblems(t, 301, 80) {
		for _, m := range []Model{Strong, Weak, Viable} {
			label := fmt.Sprintf("case %d model %s", i, m)
			type res struct {
				ok  bool
				cex string
			}
			seq, seqErr, par, parErr := atWorkers(t, rp.p, func() (res, error) {
				ok, cex, err := rp.p.RCDPExplain(rp.ci, m)
				return res{ok: ok, cex: cex.String()}, err
			})
			sameErr(t, label, seqErr, parErr)
			if seq != par {
				t.Fatalf("%s: sequential %+v, parallel %+v", label, seq, par)
			}
		}
	}
}

func TestParallelCertainAnswersMatchSequential(t *testing.T) {
	for i, rp := range randomProblems(t, 302, 60) {
		label := fmt.Sprintf("case %d", i)
		seq, seqErr, par, parErr := atWorkers(t, rp.p, func() (string, error) {
			ans, err := rp.p.CertainAnswers(rp.ci)
			return fmt.Sprint(ans), err
		})
		sameErr(t, label, seqErr, parErr)
		if seq != par {
			t.Fatalf("%s: sequential %s, parallel %s (order included)", label, seq, par)
		}
	}
}

func TestParallelCertainExtensionsMatchSequential(t *testing.T) {
	for i, rp := range randomProblems(t, 303, 50) {
		label := fmt.Sprintf("case %d", i)
		type res struct {
			ans    string
			anyExt bool
		}
		seq, seqErr, par, parErr := atWorkers(t, rp.p, func() (res, error) {
			ans, anyExt, err := rp.p.CertainAnswersOfExtensions(rp.ci)
			return res{ans: fmt.Sprint(ans), anyExt: anyExt}, err
		})
		sameErr(t, label, seqErr, parErr)
		if seq != par {
			t.Fatalf("%s: sequential %+v, parallel %+v", label, seq, par)
		}
	}
}

func TestParallelMINPMatchesSequential(t *testing.T) {
	for i, rp := range randomProblems(t, 304, 40) {
		for _, m := range []Model{Strong, Weak, Viable} {
			label := fmt.Sprintf("case %d model %s", i, m)
			seq, seqErr, par, parErr := atWorkers(t, rp.p, func() (bool, error) {
				return rp.p.MINP(rp.ci, m)
			})
			if errors.Is(seqErr, ErrInconsistent) && errors.Is(parErr, ErrInconsistent) {
				continue
			}
			sameErr(t, label, seqErr, parErr)
			if seq != par {
				t.Fatalf("%s: sequential %v, parallel %v", label, seq, par)
			}
		}
	}
}

func TestParallelConsistentMatchesSequential(t *testing.T) {
	for i, rp := range randomProblems(t, 305, 60) {
		label := fmt.Sprintf("case %d", i)
		seq, seqErr, par, parErr := atWorkers(t, rp.p, func() (bool, error) {
			return rp.p.Consistent(rp.ci)
		})
		sameErr(t, label, seqErr, parErr)
		if seq != par {
			t.Fatalf("%s: sequential %v, parallel %v", label, seq, par)
		}
	}
}

func TestParallelRCQPMatchesSequential(t *testing.T) {
	for i, rp := range randomProblems(t, 306, 30) {
		for _, m := range []Model{Strong, Viable} {
			label := fmt.Sprintf("case %d model %s", i, m)
			seq, seqErr, par, parErr := atWorkers(t, rp.p, func() (bool, error) {
				return rp.p.RCQP(m)
			})
			if errors.Is(seqErr, ErrInconclusive) && errors.Is(parErr, ErrInconclusive) {
				continue
			}
			sameErr(t, label, seqErr, parErr)
			if seq != par {
				t.Fatalf("%s: sequential %v, parallel %v", label, seq, par)
			}
		}
	}
}

func TestParallelOracleMatchesSequential(t *testing.T) {
	for i, rp := range randomProblems(t, 307, 25) {
		for _, m := range []Model{Strong, Weak, Viable} {
			label := fmt.Sprintf("case %d model %s", i, m)
			seq, seqErr, par, parErr := atWorkers(t, rp.p, func() (bool, error) {
				return rp.p.ReferenceRCDP(rp.ci, m, 2)
			})
			if errors.Is(seqErr, ErrInconsistent) && errors.Is(parErr, ErrInconsistent) {
				continue
			}
			sameErr(t, label, seqErr, parErr)
			if seq != par {
				t.Fatalf("%s: sequential %v, parallel %v", label, seq, par)
			}
		}
	}
}

// TestParallelCounterexampleDeterministic re-runs failing RCDPs at
// workers=N: the counterexample must be the same object on every run
// (the lowest-index decisive candidate, regardless of scheduling).
func TestParallelCounterexampleDeterministic(t *testing.T) {
	var failing []randomProblem
	for _, rp := range randomProblems(t, 308, 60) {
		rp.p.Options.Parallelism = 1
		ok, cex, err := rp.p.RCDPExplain(rp.ci, Strong)
		rp.p.Options.Parallelism = 0
		if err == nil && !ok && cex != nil {
			failing = append(failing, rp)
		}
		if len(failing) >= 5 {
			break
		}
	}
	if len(failing) == 0 {
		t.Fatal("no failing RCDP instance found; weaken the corpus filter")
	}
	for i, rp := range failing {
		rp.p.Options.Parallelism = parWorkers
		var first string
		for run := 0; run < 6; run++ {
			_, cex, err := rp.p.RCDPExplain(rp.ci, Strong)
			if err != nil {
				t.Fatal(err)
			}
			s := cex.String()
			if run == 0 {
				first = s
			} else if s != first {
				t.Fatalf("case %d run %d: counterexample changed:\n  first: %s\n  now:   %s", i, run, first, s)
			}
		}
		rp.p.Options.Parallelism = 0
	}
}
