// Package core implements the paper's primary contribution: deciding
// relative information completeness for partially closed c-instances.
//
// It provides the two basic analyses of Proposition 3.3 (consistency
// and extensibility), and the three decision problems RCDP, RCQP and
// MINP in each of the paper's three completeness models — strong, weak
// and viable — for the query languages CQ, UCQ, ∃FO+, FO and FP.
//
// Every decidable cell of the paper's Table I is implemented as an
// exact procedure built on the paper's own small-model
// characterisations (active-domain valuations, Lemmas 4.2/4.3/4.7,
// Lemma 5.2, Lemma 5.7); every undecidable cell returns ErrUndecidable,
// and the paper's open problem (RCQP, weak model, FO, c-instances)
// returns ErrOpen. The procedures are exponential in the worst case —
// they decide Πp2- to Πp4-complete problems — and polynomial in the
// paper's tractable special cases (see internal/tractable).
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"relcomplete/internal/adom"
	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/eval"
	"relcomplete/internal/fault"
	"relcomplete/internal/obs"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Model selects one of the paper's three completeness models.
type Model int

// The completeness models of Section 2.2.
const (
	Strong Model = iota
	Weak
	Viable
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Strong:
		return "strong"
	case Weak:
		return "weak"
	default:
		return "viable"
	}
}

// Lang is the query-language parameter LQ of the decision problems.
type Lang int

// The query languages of the paper.
const (
	CQ Lang = iota
	UCQ
	EFOPlus
	FO
	FP
)

// String names the language as in the paper.
func (l Lang) String() string {
	switch l {
	case CQ:
		return "CQ"
	case UCQ:
		return "UCQ"
	case EFOPlus:
		return "∃FO+"
	case FO:
		return "FO"
	default:
		return "FP"
	}
}

// Sentinel errors.
var (
	// ErrUndecidable marks a (problem, model, language) combination the
	// paper proves undecidable.
	ErrUndecidable = errors.New("relcomplete: problem undecidable for this language and model (Table I)")
	// ErrOpen marks the paper's open problem: RCQP in the weak model
	// for FO over c-instances.
	ErrOpen = errors.New("relcomplete: precise status open (RCQP, weak model, FO, c-instances)")
	// ErrInconsistent is returned when a decider requires Mod(T, Dm, V)
	// to be non-empty (a partially closed c-instance) and it is empty.
	ErrInconsistent = errors.New("relcomplete: c-instance is inconsistent (Mod(T, Dm, V) is empty)")
	// ErrBudget is returned when a configured enumeration cap is hit.
	ErrBudget = errors.New("relcomplete: search budget exceeded")
	// ErrInconclusive is returned by the bounded RCQP search when no
	// witness exists within the configured size bound (the general
	// problem is NEXPTIME-complete; see Options.RCQPSizeBound).
	ErrInconclusive = errors.New("relcomplete: no witness within the configured RCQP size bound")
)

// Qry wraps a query of any of the paper's languages: a relational
// calculus query (CQ/UCQ/∃FO+/FO) or an FP program.
type Qry struct {
	Calc *query.Query
	Prog *query.Program
}

// CalcQuery wraps a relational-calculus query.
func CalcQuery(q *query.Query) Qry { return Qry{Calc: q} }

// FPQuery wraps an FP program.
func FPQuery(p *query.Program) Qry { return Qry{Prog: p} }

// Lang returns the smallest language tier containing the query.
func (q Qry) Lang() Lang {
	if q.Prog != nil {
		return FP
	}
	switch query.Classify(q.Calc) {
	case query.ClassCQ:
		return CQ
	case query.ClassUCQ:
		return UCQ
	case query.ClassEFOPlus:
		return EFOPlus
	default:
		return FO
	}
}

// Monotone reports whether the query language guarantees monotonicity.
func (q Qry) Monotone() bool { return q.Lang() != FO }

// Arity returns the query's output arity.
func (q Qry) Arity() int {
	if q.Prog != nil {
		return q.Prog.OutputArity()
	}
	return q.Calc.Arity()
}

// Name returns the query's name for diagnostics.
func (q Qry) Name() string {
	if q.Prog != nil {
		return q.Prog.Name
	}
	return q.Calc.Name
}

// Constants collects the query's constants into dst.
func (q Qry) Constants(dst *relation.ValueSet) *relation.ValueSet {
	if q.Prog != nil {
		return q.Prog.Constants(dst)
	}
	return query.QueryConstants(q.Calc, dst)
}

// String renders the query.
func (q Qry) String() string {
	if q.Prog != nil {
		return q.Prog.String()
	}
	return q.Calc.String()
}

// Options tunes the deciders.
type Options struct {
	// MaxValuations caps each valuation enumeration (0 = unlimited).
	// Enumerations beyond the cap fail with ErrBudget.
	MaxValuations int
	// MaxSubsets caps subset enumerations in the generic weak-model
	// MINP algorithm (0 = unlimited).
	MaxSubsets int
	// RCQPSizeBound bounds the candidate-instance size of the general
	// strong/viable RCQP search (default 2 when zero). The search is
	// sound: a "yes" is always correct; when no witness of the bounded
	// size exists the search returns ErrInconclusive (the exact bound
	// of the paper's NEXPTIME procedure is exponential).
	RCQPSizeBound int
	// RCQPFreshValues is how many anonymous fresh constants the RCQP
	// search may use when inventing instances (default 2 when zero).
	RCQPFreshValues int
	// MaxDerived caps FP fixpoint derivations (0 = unlimited).
	MaxDerived int
	// NoTypedDomains disables the typed-domain pruning (see
	// internal/core/typing.go) and enumerates every variable and
	// lattice column over the full Adom, as the paper's procedures are
	// stated. The default (typed) is exact; the flag exists for the
	// differential test-suite and the ablation benchmark.
	NoTypedDomains bool
	// NaiveJoin evaluates queries and CCs with the original
	// nested-loop map-binding evaluator instead of the compiled
	// indexed-join plans. It is the differential-testing oracle and the
	// ablation baseline; verdicts are identical either way.
	NaiveJoin bool
	// Boxed rebuilds the master data with boxed (non-interned) relation
	// storage, so every candidate instance derived from it inherits the
	// original boxed representation instead of the interned id-based
	// one. Like NaiveJoin it is a differential-testing oracle and
	// ablation baseline; verdicts are identical either way. The
	// process-wide relation.SetDefaultBoxed covers instances built
	// outside the problem (rcbench -boxed sets both).
	Boxed bool
	// Parallelism is the worker count for the candidate searches
	// (counterexample, witness and certain-answer enumerations). 0
	// defaults to runtime.GOMAXPROCS(0); 1 forces the exact sequential
	// code path. Verdicts, counterexamples and certain answers are
	// identical at every setting (see internal/search); only the
	// point at which a search budget triggers may shift by at most the
	// dispatch window when MaxValuations is set.
	Parallelism int
	// Obs receives solver metrics: valuation/model/extension counts,
	// plan and index statistics, search engine activity and per-phase
	// timings. nil (the default) disables collection; every
	// instrumentation site is nil-safe and the disabled path costs a
	// single pointer test.
	Obs *obs.Metrics
	// Trace receives structured decision events (candidate valuations,
	// CC violations, counterexamples, verdicts) rendering the decider's
	// search tree. nil disables tracing. A verbose tracer (obs.NewTracer)
	// re-checks CCs on the violation path to name the violated
	// constraint, so it is for diagnosis, not benchmarking; a flight
	// tracer (obs.NewFlightTracer) skips that re-derivation and is
	// cheap enough to leave attached.
	Trace *obs.Tracer
	// FlightRecorder is the always-on ring of recent decision events
	// dumped by the slow-op log. Typically the same obs.RingSink that
	// Trace's sink feeds (directly or via obs.Tee); the deciders never
	// write to it — they only read it when dumping a slow op.
	FlightRecorder *obs.RingSink
	// SlowOpThreshold, when > 0, turns on the slow-op log: any decider
	// entry-point call whose wall time meets the threshold dumps the
	// flight recorder and the histogram snapshot to SlowOpSink.
	SlowOpThreshold time.Duration
	// SlowOpSink receives slow-op dumps (nil → os.Stderr).
	SlowOpSink io.Writer
	// FaultPlan arms the deterministic fault-injection harness at the
	// deciders' instrumented sites (internal/fault) — tests only. nil
	// (the default, always in production) is inert and costs one nil
	// test per site.
	FaultPlan *fault.Plan
	// Profiles overrides the per-problem plan-profile registry with a
	// shared one, aggregating sampled plan-node timings across problems
	// that come and go (rcbench builds a fresh problem per experiment
	// but serves one /debug/plans). nil (the default) keeps profiles
	// per-problem; either way profiling is armed only while Obs is set.
	Profiles *eval.ProfileRegistry
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) rcqpSizeBound() int {
	if o.RCQPSizeBound <= 0 {
		return 2
	}
	return o.RCQPSizeBound
}

func (o Options) rcqpFreshValues() int {
	if o.RCQPFreshValues <= 0 {
		return 2
	}
	return o.RCQPFreshValues
}

// Problem bundles the fixed inputs of the paper's decision problems: a
// data schema, a query Q, master data Dm and a set V of CCs.
type Problem struct {
	Schema  *relation.DBSchema
	Query   Qry
	Master  *relation.Database
	CCs     *cc.Set
	Options Options

	// cacheMu guards the three lazy caches below. Search probes run on
	// worker goroutines (internal/search) and share the Problem; every
	// cache access goes through a compute-under-lock accessor, and the
	// computations never touch another cache, so the single mutex
	// cannot recurse.
	cacheMu       sync.Mutex
	disjTabs      []*query.Tableau            // cached renamed disjunct tableaux
	atomCandCache map[string][]relation.Tuple // constant-pinned closed lattice per atom
	closureCache  map[string]bool             // single-tuple closure verdicts
	plan          *eval.Plan                  // compiled query plan (positive existential only)
	planTried     bool                        // whether plan compilation was attempted
	domCache      map[domainsKey]*domains     // adom+typing per (c-instance, flags)

	// profiles aggregates sampled per-node wall-time profiles of the
	// plans this problem executes (eval/profile.go). Profiling rides the
	// observability switch: it is armed only while Options.Obs is set,
	// so the uninstrumented path never touches it. The zero value is
	// ready; read through PlanProfiles.
	profiles eval.ProfileRegistry
}

// domainsKey fingerprints a domainsFor computation: the c-instance
// identity and mode flags, plus the row counts of the c-instance and
// the master data. Row counts are a sound freshness check because both
// structures are append-only — the same convention the plan and RHS
// answer-set caches rely on.
type domainsKey struct {
	ci           *ctable.CInstance
	queryVars    bool
	extRow       bool
	ciRows       int
	master       *relation.Database
	masterTuples int
}

// NewProblem validates and builds a problem instance.
func NewProblem(schema *relation.DBSchema, q Qry, master *relation.Database, ccs *cc.Set, opts Options) (*Problem, error) {
	if schema == nil {
		return nil, fmt.Errorf("relcomplete: nil schema")
	}
	if q.Calc == nil && q.Prog == nil {
		return nil, fmt.Errorf("relcomplete: empty query")
	}
	if q.Calc != nil && q.Prog != nil {
		return nil, fmt.Errorf("relcomplete: query must be calculus or FP, not both")
	}
	if q.Calc != nil {
		for _, rel := range query.RelationsUsed(q.Calc) {
			if schema.Relation(rel) == nil {
				return nil, fmt.Errorf("relcomplete: query uses unknown relation %s", rel)
			}
		}
	}
	if q.Prog != nil {
		for _, rel := range q.Prog.EDBRelations() {
			if schema.Relation(rel) == nil {
				return nil, fmt.Errorf("relcomplete: FP program reads unknown relation %s", rel)
			}
		}
	}
	if master == nil {
		// An absent master data instance is the fully open-world case.
		master = relation.NewDatabase(relation.MustDBSchema())
	}
	if opts.Boxed && !master.Boxed() {
		master = master.CloneBoxed()
	}
	return &Problem{Schema: schema, Query: q, Master: master, CCs: ccs, Options: opts}, nil
}

// MustProblem is NewProblem that panics on error.
func MustProblem(schema *relation.DBSchema, q Qry, master *relation.Database, ccs *cc.Set, opts Options) *Problem {
	p, err := NewProblem(schema, q, master, ccs, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// evalOpts builds the evaluation options used throughout.
func (p *Problem) evalOpts() eval.Options {
	o := eval.Options{MaxDerived: p.Options.MaxDerived, NaiveJoin: p.Options.NaiveJoin,
		Obs: p.Options.Obs, Fault: p.Options.FaultPlan}
	if p.Options.Obs != nil {
		if p.Options.Profiles != nil {
			o.Profiles = p.Options.Profiles
		} else {
			o.Profiles = &p.profiles
		}
	}
	return o
}

// PlanProfiles exposes the problem's sampled plan-profile registry for
// the /debug/plans endpoints — the Options.Profiles override when set,
// the problem's own otherwise. Never nil; it only accumulates data
// while Options.Obs is set (profiling rides the observability switch).
func (p *Problem) PlanProfiles() *eval.ProfileRegistry {
	if p.Options.Profiles != nil {
		return p.Options.Profiles
	}
	return &p.profiles
}

// evalOptsCtx is evalOpts with the context's cancellation wired into
// the evaluator's Interrupt hook, so that a deadline interrupts even a
// single long evaluation (an FP fixpoint on a large model) instead of
// waiting for it to finish. The Background fast path (no Done channel)
// leaves the hook nil and costs nothing.
func (p *Problem) evalOptsCtx(ctx context.Context) eval.Options {
	o := p.evalOpts()
	if ctx != nil && ctx.Done() != nil {
		o.Interrupt = ctx.Err
	}
	o.Span = obs.SpanFromContext(ctx)
	return o
}

// nopSpan is the shared no-op closer for uninstrumented spans.
var nopSpan = func() {}

// span brackets one decider entry-point call. It subsumes the phase
// timing (obs.Metrics.StartPhase) and adds the distribution layer:
// the call's wall time lands in the decider_wall_seconds histogram,
// the candidate models it admitted/pruned land in the per-call
// histograms, and — when Options.SlowOpThreshold is set — a call that
// exceeds the threshold dumps the flight recorder and the histogram
// snapshot to Options.SlowOpSink. When the context carries a request
// trace (obs.SpanFromContext), the call additionally becomes a child
// span of it, and the returned context carries that child so eval and
// search sub-spans nest under the phase; the slow-op dump then carries
// the request's trace id. With Obs nil, no threshold and no active
// trace the returned closer is a shared no-op and ctx is returned
// untouched, so the disabled path stays one context lookup plus one
// branch (the overhead contract of BenchmarkObsOverhead).
func (p *Problem) span(ctx context.Context, name string) (context.Context, func()) {
	o := &p.Options
	sp := obs.SpanFromContext(ctx)
	if o.Obs == nil && o.SlowOpThreshold <= 0 && sp == nil {
		return ctx, nopSpan
	}
	child := sp.StartChild(name)
	if child != nil {
		ctx = obs.ContextWithSpan(ctx, child)
	}
	m := o.Obs
	start := time.Now()
	endPhase := m.StartPhase(name)
	checked0 := m.Get(obs.ModelsChecked)
	admitted0 := m.Get(obs.ModelsAdmitted)
	return ctx, func() {
		endPhase()
		elapsed := time.Since(start)
		var traceID string
		if t := child.Trace(); !t.IsZero() {
			traceID = t.String()
		}
		// Traced calls stamp the wall-time bucket with their trace id,
		// so a tail-bucket spike in the OpenMetrics exposition carries
		// an exemplar pointing at a request that caused it.
		m.ObserveExemplar(obs.DeciderWallNs, elapsed.Nanoseconds(), traceID)
		// Per-call admission distribution. Deltas over the shared
		// counters: nested or concurrent decider calls may attribute
		// each other's models — the histogram is a distribution sketch,
		// not an exact ledger.
		checked := m.Get(obs.ModelsChecked) - checked0
		if checked > 0 {
			admitted := m.Get(obs.ModelsAdmitted) - admitted0
			m.Observe(obs.ModelsAdmittedPerCall, admitted)
			m.Observe(obs.ModelsPrunedPerCall, checked-admitted)
		}
		if child != nil {
			child.SetAttr("models_checked", checked)
			child.End()
		}
		if o.SlowOpThreshold > 0 && elapsed >= o.SlowOpThreshold {
			w := o.SlowOpSink
			if w == nil {
				w = os.Stderr
			}
			obs.WriteSlowOp(w, name, traceID, elapsed, o.SlowOpThreshold, o.FlightRecorder, m)
		}
	}
}

// queryPlan returns the compiled plan for the problem's calculus query,
// compiling it on first use. It returns nil when the query is outside
// the compiled fragment (FP, full FO) or NaiveJoin is requested; the
// caller then takes the generic eval path. Safe for concurrent use: the
// deciders evaluate the same query on thousands of candidate databases
// from worker goroutines, and compiling once is the point of plans.
func (p *Problem) queryPlan() *eval.Plan {
	if p.Options.NaiveJoin || p.Query.Calc == nil || !query.IsPositiveExistential(p.Query.Calc) {
		return nil
	}
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if !p.planTried {
		p.planTried = true
		p.plan, _ = eval.Compile(p.Query.Calc) // nil on error: generic path
		if p.plan != nil {
			p.Options.Obs.Inc(obs.PlanCompilations)
		}
	} else if p.plan != nil {
		p.Options.Obs.Inc(obs.PlanCacheHits)
	}
	return p.plan
}

// answers evaluates the problem's query on a ground database.
func (p *Problem) answers(ctx context.Context, db *relation.Database) ([]relation.Tuple, error) {
	if p.Query.Prog != nil {
		return eval.FPAnswers(db, p.Query.Prog, p.evalOptsCtx(ctx))
	}
	if plan := p.queryPlan(); plan != nil {
		return plan.Answers(db, p.evalOptsCtx(ctx))
	}
	return eval.Answers(db, p.Query.Calc, p.evalOptsCtx(ctx))
}

// sameAnswers reports whether Q agrees on two databases.
func (p *Problem) sameAnswers(ctx context.Context, db1, db2 *relation.Database) (bool, error) {
	a1, err := p.answers(ctx, db1)
	if err != nil {
		return false, err
	}
	a2, err := p.answers(ctx, db2)
	if err != nil {
		return false, err
	}
	return equalTupleSets(a1, a2), nil
}

func equalTupleSets(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]bool, len(a))
	for _, t := range a {
		seen[t.Key()] = true
	}
	for _, t := range b {
		if !seen[t.Key()] {
			return false
		}
	}
	return true
}

// diffTuples returns the tuples of b missing from a, sorted.
func diffTuples(a, b []relation.Tuple) []relation.Tuple {
	seen := make(map[string]bool, len(a))
	for _, t := range a {
		seen[t.Key()] = true
	}
	var out []relation.Tuple
	for _, t := range b {
		if !seen[t.Key()] {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// intersectTuples intersects a (nil = universe) with b.
func intersectTuples(a []relation.Tuple, universe bool, b []relation.Tuple) ([]relation.Tuple, bool) {
	if universe {
		return append([]relation.Tuple(nil), b...), false
	}
	seen := make(map[string]bool, len(b))
	for _, t := range b {
		seen[t.Key()] = true
	}
	var out []relation.Tuple
	for _, t := range a {
		if seen[t.Key()] {
			out = append(out, t)
		}
	}
	return out, false
}

// disjunctTableaux returns the tableaux of the query's CQ disjuncts,
// with variables renamed into a reserved namespace so they cannot
// collide with c-instance variables. Only valid for ∃FO+ and below.
// Safe for concurrent use: the first caller computes under cacheMu.
func (p *Problem) disjunctTableaux() ([]*query.Tableau, error) {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if p.disjTabs != nil {
		return p.disjTabs, nil
	}
	if p.Query.Calc == nil {
		return nil, fmt.Errorf("relcomplete: FP queries have no disjunct tableaux")
	}
	it := query.NewDisjunctIterator(p.Query.Calc)
	if it == nil {
		return nil, fmt.Errorf("relcomplete: query %s is not positive existential", p.Query.Name())
	}
	var tabs []*query.Tableau
	for d := it.Next(); d != nil; d = it.Next() {
		renamed := query.RenameQuery(d, "qv_")
		tab, err := query.TableauOf(renamed)
		if err != nil {
			return nil, err
		}
		tab, alive := propagateEqualities(tab)
		if !alive {
			continue // contradictory conditions: the disjunct is dead
		}
		tabs = append(tabs, tab)
	}
	p.disjTabs = tabs
	return tabs, nil
}

// propagateEqualities folds the tableau's equality conditions into its
// atoms and head: x = 'c' pins the variable, x = y merges the
// variables. Contradictory equalities (c = c' with distinct constants)
// kill the disjunct. Inequalities are kept. Pinned columns shrink the
// counterexample search space dramatically — an equality selection
// behaves like an atom constant.
func propagateEqualities(tab *query.Tableau) (*query.Tableau, bool) {
	// Union-find over variable names with an optional constant per class.
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return x
	}
	pinned := map[string]relation.Value{}
	for _, c := range tab.Compares {
		if c.Op != query.Eq {
			continue
		}
		switch {
		case c.L.IsVar && c.R.IsVar:
			parent[find(c.L.Name)] = find(c.R.Name)
		case c.L.IsVar && !c.R.IsVar:
			pinned[find(c.L.Name)] = c.R.Const
		case !c.L.IsVar && c.R.IsVar:
			pinned[find(c.R.Name)] = c.L.Const
		default:
			if c.L.Const != c.R.Const {
				return nil, false
			}
		}
	}
	// Re-root pins (pins recorded against possibly stale roots).
	val := map[string]relation.Value{}
	for v, c := range pinned {
		r := find(v)
		if prev, ok := val[r]; ok && prev != c {
			return nil, false
		}
		val[r] = c
	}
	subst := func(t query.Term) query.Term {
		if !t.IsVar {
			return t
		}
		r := find(t.Name)
		if c, ok := val[r]; ok {
			return query.C(c)
		}
		return query.V(r)
	}
	out := &query.Tableau{}
	for _, h := range tab.Head {
		out.Head = append(out.Head, subst(h))
	}
	for _, a := range tab.Atoms {
		terms := make([]query.Term, len(a.Terms))
		for i, t := range a.Terms {
			terms[i] = subst(t)
		}
		out.Atoms = append(out.Atoms, query.NewAtom(a.Rel, terms...))
	}
	for _, c := range tab.Compares {
		l, r := subst(c.L), subst(c.R)
		if !l.IsVar && !r.IsVar {
			if (c.Op == query.Eq) != (l.Const == r.Const) {
				return nil, false // condition statically false
			}
			continue // statically true: drop
		}
		out.Compares = append(out.Compares, &query.Compare{Op: c.Op, L: l, R: r})
	}
	seen := map[string]bool{}
	add := func(t query.Term) {
		if t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			out.Vars = append(out.Vars, t.Name)
		}
	}
	for _, a := range out.Atoms {
		for _, t := range a.Terms {
			add(t)
		}
	}
	for _, c := range out.Compares {
		add(c.L)
		add(c.R)
	}
	for _, h := range out.Head {
		add(h)
	}
	sort.Strings(out.Vars)
	return out, true
}

// adomFor builds the paper's Adom for this problem and a c-instance
// (which may be nil). withQueryVars additionally mints fresh values for
// the query's tableau variables (the Theorem 4.1 construction); it is
// ignored for FP and FO queries, whose procedures do not use tableaux.
//
// When withExtRow is set, one synthetic variable per column of the
// widest relation is additionally contributed: they represent the
// tuple a procedure constructs (the single-tuple extension of the
// extensibility check and of the Lemma 5.2 weak-model stream), so
// fresh values exist even for ground inputs. The paper obtains the
// same effect from the New values of V's variables; the synthetic row
// is the lean sufficient stand-in. The strong-model procedures build
// their extensions from query tableaux instead and do not need it.
func (p *Problem) adomFor(ci *ctable.CInstance, withQueryVars, withExtRow bool) (*adom.Adom, error) {
	b := adom.NewBuilder().
		AddCInstance(ci).
		AddDatabase(p.Master).
		AddCCs(p.CCs).
		AddSchemaFiniteDomains(p.Schema)
	if withExtRow {
		maxArity := 0
		for _, r := range p.Schema.Relations() {
			if r.Arity() > maxArity {
				maxArity = r.Arity()
			}
		}
		rowVars := make([]string, maxArity)
		for i := range rowVars {
			rowVars[i] = fmt.Sprintf("xrow%d", i)
		}
		b.AddVars(rowVars)
	}
	qc := relation.NewValueSet()
	p.Query.Constants(qc)
	b.AddConstants(qc)
	if withQueryVars && p.Query.Calc != nil && query.IsPositiveExistential(p.Query.Calc) {
		tabs, err := p.disjunctTableaux()
		if err != nil {
			return nil, err
		}
		for _, tab := range tabs {
			b.AddVars(tab.Vars)
		}
	}
	return b.Build(), nil
}

// satisfiesCCs reports (I, Dm) ⊨ V.
func (p *Problem) satisfiesCCs(ctx context.Context, db *relation.Database) (bool, error) {
	m := p.Options.Obs
	m.Inc(obs.CCChecks)
	ok, err := p.CCs.Satisfied(db, p.Master, p.evalOptsCtx(ctx))
	if err == nil && !ok {
		m.Inc(obs.CCViolations)
	}
	return ok, err
}

// traceCCViolation re-runs the CC check constraint by constraint to
// name the one that pruned db, emitting a cc_violation event. Only
// done for verbose tracers; the extra evaluation is the price of the
// diagnosis, and the always-on flight recorder must not pay it.
func (p *Problem) traceCCViolation(ctx context.Context, db *relation.Database) {
	tr := p.Options.Trace
	if !tr.Verbose() || p.CCs == nil {
		return
	}
	for _, c := range p.CCs.Constraints {
		ok, err := c.Satisfied(db, p.Master, p.evalOptsCtx(ctx))
		if err == nil && !ok {
			tr.Emit("cc_violation", obs.F("cc", c.String()))
			return
		}
	}
}

// checkModel is satisfiesCCs applied to a candidate model of the
// c-instance: the same verdict, with the candidate-level counters and
// decision-trace events attached. Every decider probe routes its
// model admission through here.
func (p *Problem) checkModel(ctx context.Context, db *relation.Database) (bool, error) {
	if err := p.Options.FaultPlan.Visit(fault.SiteSearchWorker); err != nil {
		return false, err
	}
	m := p.Options.Obs
	tr := p.Options.Trace
	m.Inc(obs.ModelsChecked)
	ok, err := p.satisfiesCCs(ctx, db)
	if err != nil {
		return false, err
	}
	if ok {
		m.Inc(obs.ModelsAdmitted)
		if tr.Enabled() {
			tr.Emit("model", obs.F("db", db.String()))
		}
	} else if tr.Enabled() {
		tr.Emit("model_pruned", obs.F("db", db.String()))
		p.traceCCViolation(ctx, db)
	}
	return ok, nil
}

// domains bundles an active domain with its typed pruning.
type domains struct {
	a  *adom.Adom
	ty *typing
}

// domainsCacheCap bounds the memoised domains computations; the cache
// is wiped wholesale when full (deciders cycle over a handful of
// c-instances, so eviction order is irrelevant).
const domainsCacheCap = 32

// domainsFor builds the Adom and its typing for a c-instance. The
// result is memoised per (c-instance, flags): deciders are routinely
// re-run against the same inputs (the reductions call several deciders
// over one gadget, benchmarks and servers repeat calls), and both the
// Adom and the typing are read-only after construction, so cached
// values are shared freely across concurrent runs. Freshness rides on
// the append-only row counts, as for the plan caches.
func (p *Problem) domainsFor(ci *ctable.CInstance, withQueryVars, withExtRow bool) (*domains, error) {
	key := domainsKey{
		ci:           ci,
		queryVars:    withQueryVars,
		extRow:       withExtRow,
		master:       p.Master,
		masterTuples: p.Master.Size(),
	}
	if ci != nil {
		key.ciRows = ci.Size()
	}
	p.cacheMu.Lock()
	d, ok := p.domCache[key]
	p.cacheMu.Unlock()
	if ok {
		return d, nil
	}
	a, err := p.adomFor(ci, withQueryVars, withExtRow)
	if err != nil {
		return nil, err
	}
	ty, err := p.computeTyping(ci, a)
	if err != nil {
		return nil, err
	}
	d = &domains{a: a, ty: ty}
	p.cacheMu.Lock()
	if len(p.domCache) >= domainsCacheCap {
		p.domCache = nil
	}
	if p.domCache == nil {
		p.domCache = make(map[domainsKey]*domains, 8)
	}
	p.domCache[key] = d
	p.cacheMu.Unlock()
	return d, nil
}
