package core

import (
	"errors"
	"testing"
)

// The boxed storage oracle: rebuilding a problem's master data with
// Options.Boxed must leave every decider verdict unchanged. The
// randomised problems reuse the reference-oracle corpus; together with
// eval's TestPlanDifferentialInternedBoxed this is the interned-vs-
// boxed differential suite.
func TestRCDPBoxedStorageDifferential(t *testing.T) {
	for i, rp := range randomProblems(t, 303, 60) {
		boxedP := MustProblem(rp.p.Schema, rp.p.Query, rp.p.Master, rp.p.CCs, Options{Boxed: true})
		if !boxedP.Master.Boxed() {
			t.Fatal("Options.Boxed must rebuild the master data boxed")
		}
		if rp.p.Master.Boxed() {
			t.Fatal("the baseline problem must stay interned")
		}
		for _, m := range []Model{Strong, Weak, Viable} {
			got, errI := rp.p.RCDP(rp.ci, m)
			want, errB := boxedP.RCDP(rp.ci, m)
			if errors.Is(errI, ErrInconsistent) || errors.Is(errB, ErrInconsistent) {
				if !errors.Is(errI, ErrInconsistent) || !errors.Is(errB, ErrInconsistent) {
					t.Fatalf("case %d model %v: inconsistency disagreement %v vs %v", i, m, errI, errB)
				}
				continue
			}
			if errI != nil || errB != nil {
				t.Fatalf("case %d model %v: errors interned=%v boxed=%v", i, m, errI, errB)
			}
			if got != want {
				t.Fatalf("case %d model %v: interned %v vs boxed %v\nquery: %s\nci: %v\nmaster: %v",
					i, m, got, want, rp.p.Query, rp.ci, rp.p.Master)
			}
		}
	}
}

// GroundComplete must agree across storage modes too — it exercises the
// membership (Contains) and index-probe fast paths on candidate models.
func TestGroundCompleteBoxedStorageDifferential(t *testing.T) {
	for i, rp := range randomProblems(t, 404, 40) {
		db, err := rp.p.AnyModel(rp.ci)
		if err != nil {
			t.Fatal(err)
		}
		if db == nil {
			continue
		}
		boxedP := MustProblem(rp.p.Schema, rp.p.Query, rp.p.Master, rp.p.CCs, Options{Boxed: true})
		got, _, errI := rp.p.GroundComplete(db)
		want, _, errB := boxedP.GroundComplete(db.CloneBoxed())
		if errI != nil || errB != nil {
			t.Fatalf("case %d: errors interned=%v boxed=%v", i, errI, errB)
		}
		if got != want {
			t.Fatalf("case %d: interned %v vs boxed %v\nquery: %s\ndb: %v", i, got, want, rp.p.Query, db)
		}
	}
}
